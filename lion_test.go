package lion_test

import (
	"math"
	"testing"

	lion "github.com/rfid-lion/lion"
)

// TestEndToEndCalibrationPipeline drives the whole public API the way a
// downstream user would: simulate a scan, preprocess, locate, calibrate.
func TestEndToEndCalibrationPipeline(t *testing.T) {
	env, err := lion.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{RateHz: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ant := &lion.Antenna{
		ID:                "A1",
		PhysicalCenter:    lion.V3(0, 0.8, 0),
		PhaseCenterOffset: lion.V3(0.02, -0.015, 0.025),
		PhaseOffset:       2.74,
	}
	tag := &lion.Tag{ID: "T1", PhaseOffset: 0.4}

	scan, err := lion.NewThreeLineScan(lion.ThreeLineConfig{
		XMin: -0.6, XMax: 0.6, YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, tag, scan)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := lion.Preprocess(lion.Positions(samples), lion.Phases(samples), 9)
	if err != nil {
		t.Fatal(err)
	}
	in := lion.ThreeLineInput{Lambda: env.Wavelength()}
	for i, s := range samples {
		switch s.Segment {
		case lion.LineL1:
			in.L1 = append(in.L1, obs[i])
		case lion.LineL2:
			in.L2 = append(in.L2, obs[i])
		case lion.LineL3:
			in.L3 = append(in.L3, obs[i])
		}
	}
	sol, err := lion.LocateThreeLine(in, lion.DefaultStructuredOptions())
	if err != nil {
		t.Fatal(err)
	}
	truth := ant.PhaseCenter()
	if got := sol.Position.Dist(truth); got > 0.03 {
		t.Errorf("estimated phase center off by %v m", got)
	}
	calib := lion.CenterCalibration{
		AntennaID:       ant.ID,
		PhysicalCenter:  ant.PhysicalCenter,
		EstimatedCenter: sol.Position,
	}
	if got := calib.Displacement().Sub(ant.PhaseCenterOffset).Norm(); got > 0.03 {
		t.Errorf("displacement estimate off by %v m", got)
	}

	// Offset calibration (the tag and antenna offsets combine).
	offset, err := lion.PhaseOffset(lion.Positions(samples), lion.Phases(samples),
		sol.Position, env.Wavelength())
	if err != nil {
		t.Fatal(err)
	}
	wantOffset := lion.WrapPhase(2.74 + 0.4)
	diff := math.Abs(lion.WrapPhase(offset-wantOffset+math.Pi) - math.Pi)
	if diff > 0.4 {
		t.Errorf("offset = %v, want ~%v", offset, wantOffset)
	}
}

func TestPublicLocate2DLine(t *testing.T) {
	lambda := lion.DefaultBand().Wavelength()
	ant := lion.V3(0.2, 1, 0)
	n := 150
	positions := make([]lion.Vec3, n)
	wrapped := make([]float64, n)
	for i := range positions {
		positions[i] = lion.V3(-0.4+0.8*float64(i)/float64(n-1), 0, 0)
		wrapped[i] = lion.WrapPhase(lion.PhaseOfDistance(ant.Dist(positions[i]), lambda))
	}
	obs, err := lion.Preprocess(positions, wrapped, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := lion.Locate2DLine(obs, lambda, 0.2, true, lion.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-6 {
		t.Errorf("error %v m", got)
	}
}

func TestPairStrategies(t *testing.T) {
	if got := lion.StridePairs(10, 3); len(got) != 7 {
		t.Errorf("StridePairs = %d", len(got))
	}
	positions := []lion.Vec3{lion.V3(0, 0, 0), lion.V3(0.1, 0, 0), lion.V3(0.5, 0, 0)}
	if got := lion.SeparationPairs(positions, 0.3); len(got) == 0 {
		t.Error("SeparationPairs empty")
	}
	if got := lion.SubsampledAllPairs(6, 100); len(got) != 15 {
		t.Errorf("SubsampledAllPairs = %d", len(got))
	}
}
