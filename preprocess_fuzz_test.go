package lion_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	lion "github.com/rfid-lion/lion"
)

// FuzzPreprocess drives lion.Preprocess with generated phase profiles over
// the full window-parameter space, covering the edge cases n = 0 and 1,
// even windows, and windows longer than the profile. Invariants: even
// windows > 1 are rejected; everything else succeeds with one output record
// per input whose positions pass through unchanged; without smoothing the
// unwrapped profile re-wraps to the input and stays 2π-jump free.
func FuzzPreprocess(f *testing.F) {
	f.Add(uint8(0), 0, int64(1))
	f.Add(uint8(1), 1, int64(2))
	f.Add(uint8(5), 4, int64(3)) // even window → error
	f.Add(uint8(3), 9, int64(4)) // window > len, odd → truncated, fine
	f.Add(uint8(50), 101, int64(5))
	f.Add(uint8(200), 7, int64(6))
	f.Fuzz(func(t *testing.T, n uint8, window int, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		positions := make([]lion.Vec3, n)
		wrapped := make([]float64, n)
		theta := rng.Float64() * 2 * math.Pi
		for i := range positions {
			positions[i] = lion.V3(float64(i)*0.01, rng.Float64(), rng.Float64())
			// A bounded random walk keeps consecutive samples within π, the
			// regime unwrapping is defined for.
			theta += rng.NormFloat64() * 0.5
			wrapped[i] = lion.WrapPhase(theta)
		}

		obs, err := lion.Preprocess(positions, wrapped, window)
		if window > 1 && window%2 == 0 {
			if err == nil {
				t.Fatalf("even window %d accepted", window)
			}
			return
		}
		if err != nil {
			t.Fatalf("Preprocess(n=%d, window=%d): %v", n, window, err)
		}
		if len(obs) != int(n) {
			t.Fatalf("%d records for %d inputs", len(obs), n)
		}
		for i, o := range obs {
			if o.Pos != positions[i] {
				t.Fatalf("record %d position changed: %v vs %v", i, o.Pos, positions[i])
			}
			if math.IsNaN(o.Theta) || math.IsInf(o.Theta, 0) {
				t.Fatalf("record %d non-finite theta %v", i, o.Theta)
			}
		}
		if window <= 1 {
			// No smoothing: the unwrapped profile must re-wrap to the input
			// and be free of 2π jumps between consecutive samples.
			for i, o := range obs {
				diff := math.Abs(lion.WrapPhase(o.Theta) - wrapped[i])
				if diff > math.Pi {
					diff = 2*math.Pi - diff
				}
				if diff > 1e-6 {
					t.Fatalf("record %d: unwrap changed the angle by %v", i, diff)
				}
				if i > 0 {
					if d := math.Abs(o.Theta - obs[i-1].Theta); d >= math.Pi+1e-9 {
						t.Fatalf("jump of %v rad between records %d and %d", d, i-1, i)
					}
				}
			}
		}
	})
}

// TestPreprocessFuzzSeedsDirect pins the documented edge cases so they are
// exercised even in plain `go test` runs without the fuzzing engine.
func TestPreprocessFuzzSeedsDirect(t *testing.T) {
	if obs, err := lion.Preprocess(nil, nil, 0); err != nil || len(obs) != 0 {
		t.Errorf("empty input: obs %v err %v", obs, err)
	}
	one := []lion.Vec3{lion.V3(0, 0, 0)}
	if obs, err := lion.Preprocess(one, []float64{1.5}, 1); err != nil || len(obs) != 1 {
		t.Errorf("single sample: obs %v err %v", obs, err)
	}
	// Odd window longer than the profile truncates at the boundaries.
	if _, err := lion.Preprocess(one, []float64{1.5}, 9); err != nil {
		t.Errorf("window > len rejected: %v", err)
	}
	if _, err := lion.Preprocess(one, []float64{1.5}, 2); err == nil {
		t.Error("even window accepted")
	}
	if _, err := lion.Preprocess(one, []float64{1, 2}, 0); !errors.Is(err, lion.ErrTooFewObservations) {
		t.Error("length mismatch accepted")
	}
}
