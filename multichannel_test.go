package lion_test

import (
	"math"
	"testing"

	lion "github.com/rfid-lion/lion"
)

// TestHoppedLocalizationPublicAPI drives the frequency-hopping pipeline
// through the facade: hopped scan → split by channel → per-channel
// preprocess → joint multi-channel solve.
func TestHoppedLocalizationPublicAPI(t *testing.T) {
	env, err := lion.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{
		RateHz: 100,
		Seed:   4,
		Hopping: &lion.HopPlan{
			FrequenciesHz: []float64{902.75e6, 915.25e6, 927.25e6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ant := &lion.Antenna{PhysicalCenter: lion.V3(0.2, 0.9, 0), PhaseOffset: 2.2}
	tag := &lion.Tag{PhaseOffset: 0.6}
	trj, err := lion.NewCircularXY(lion.V3(0, 0, 0), 0.3, 0.1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}

	// Group raw samples by channel, preprocess per channel, and split.
	byChannel := map[int][]lion.Sample{}
	for _, s := range samples {
		byChannel[s.Channel] = append(byChannel[s.Channel], s)
	}
	wl := reader.ChannelWavelengths()
	var chans []lion.ChannelObservations
	for c, chSamples := range byChannel {
		obs, err := lion.Preprocess(lion.Positions(chSamples), lion.Phases(chSamples), 9)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, lion.ChannelObservations{Lambda: wl[c], Obs: obs})
	}
	// Pair samples roughly a quarter of each channel's sweep apart: long
	// pairs keep the radical lines well conditioned under noise.
	stride := len(chans[0].Obs) / 4
	sol, err := lion.Locate2DMultiChannel(chans, stride, lion.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant.PhaseCenter()); got > 0.04 {
		t.Errorf("hopped localization error %v m", got)
	}
	if len(sol.RefDistances) != len(chans) {
		t.Errorf("RefDistances = %d, want %d", len(sol.RefDistances), len(chans))
	}
}

func TestSplitChannelsPublicAPI(t *testing.T) {
	obs := []lion.PosPhase{
		{Pos: lion.V3(0, 0, 0), Theta: 1},
		{Pos: lion.V3(0.1, 0, 0), Theta: 2},
	}
	chans, err := lion.SplitChannels(obs, []int{0, 1}, map[int]float64{
		0: 0.32, 1: 0.33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(chans) != 2 {
		t.Fatalf("channels = %d", len(chans))
	}
	if math.Abs(chans[1].Lambda-0.33) > 1e-12 {
		t.Errorf("lambda = %v", chans[1].Lambda)
	}
}
