package lion_test

import (
	"errors"
	"math"
	"testing"
	"time"

	lion "github.com/rfid-lion/lion"
)

// BenchmarkSolverMultiChannel measures the frequency-hopping solve: three
// channels, one shared coordinate pair, one d_r per channel.
func BenchmarkSolverMultiChannel(b *testing.B) {
	ant := lion.V3(0.9, 0.3, 0)
	lambdas := []float64{0.332, 0.3276, 0.3233}
	chans := make([]lion.ChannelObservations, 3)
	for c := range chans {
		chans[c].Lambda = lambdas[c]
	}
	n := 240
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		p := lion.V3(0.3*math.Cos(a), 0.3*math.Sin(a), 0)
		c := (i / 10) % 3
		chans[c].Obs = append(chans[c].Obs, lion.PosPhase{
			Pos:   p,
			Theta: lion.PhaseOfDistance(ant.Dist(p), lambdas[c]),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lion.Locate2DMultiChannel(chans, 20, lion.DefaultSolveOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrackerPush measures the steady-state cost of one streaming
// update including the periodic re-solve (one solve per 10 pushes here).
func BenchmarkTrackerPush(b *testing.B) {
	lambda := lion.DefaultBand().Wavelength()
	trk, err := lion.NewTracker(lion.TrackerConfig{
		Lambda:       lambda,
		AntennaPos:   lion.V3(0, 0.8, 0),
		TrackDir:     lion.V3(1, 0, 0),
		Speed:        0.1,
		WindowSize:   400,
		MinWindow:    200,
		Every:        10,
		PositiveSide: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ant := lion.V3(0, 0.8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One synthetic item per 1000 reads; reset between items as a real
		// deployment would when a new EPC enters the read zone.
		step := i % 1000
		if step == 0 {
			trk.Reset()
		}
		at := time.Duration(step) * 10 * time.Millisecond
		pos := lion.V3(-0.5+0.001*float64(step), 0, 0)
		phase := lion.WrapPhase(lion.PhaseOfDistance(ant.Dist(pos), lambda))
		if _, err := trk.Push(at, phase); err != nil && !errors.Is(err, lion.ErrTrackerNotReady) {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibrationPipeline measures one full three-line calibration:
// preprocess, structured solve, and offset estimation on a realistic scan.
func BenchmarkCalibrationPipeline(b *testing.B) {
	env, err := lion.NewEnvironment()
	if err != nil {
		b.Fatal(err)
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{RateHz: 100, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	ant := &lion.Antenna{
		PhysicalCenter:    lion.V3(0, 0.8, 0),
		PhaseCenterOffset: lion.V3(0.02, -0.015, 0.025),
		PhaseOffset:       2.0,
	}
	tag := &lion.Tag{PhaseOffset: 0.3}
	scan, err := lion.NewThreeLineScan(lion.ThreeLineConfig{
		XMin: -0.6, XMax: 0.6, YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.1,
	})
	if err != nil {
		b.Fatal(err)
	}
	samples, err := reader.Scan(ant, tag, scan)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs, err := lion.Preprocess(lion.Positions(samples), lion.Phases(samples), 9)
		if err != nil {
			b.Fatal(err)
		}
		in := lion.ThreeLineInput{Lambda: env.Wavelength()}
		for j, s := range samples {
			switch s.Segment {
			case lion.LineL1:
				in.L1 = append(in.L1, obs[j])
			case lion.LineL2:
				in.L2 = append(in.L2, obs[j])
			case lion.LineL3:
				in.L3 = append(in.L3, obs[j])
			}
		}
		sol, err := lion.LocateThreeLine(in, lion.DefaultStructuredOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lion.PhaseOffset(lion.Positions(samples), lion.Phases(samples),
			sol.Position, env.Wavelength()); err != nil {
			b.Fatal(err)
		}
	}
}
