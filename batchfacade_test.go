package lion_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	lion "github.com/rfid-lion/lion"
)

// batchThreeLineInput builds a noiseless three-line scan seen from ant.
func batchThreeLineInput(ant lion.Vec3) (lion.ThreeLineInput, float64) {
	lambda := lion.DefaultBand().Wavelength()
	mk := func(y, z float64) []lion.PosPhase {
		n := 120
		out := make([]lion.PosPhase, n)
		for i := range out {
			p := lion.V3(-0.6+1.2*float64(i)/float64(n-1), y, z)
			out[i] = lion.PosPhase{Pos: p, Theta: lion.PhaseOfDistance(ant.Dist(p), lambda)}
		}
		return out
	}
	return lion.ThreeLineInput{
		L1: mk(0, 0), L2: mk(0, 0.2), L3: mk(-0.2, 0), Lambda: lambda,
	}, lambda
}

// batchRequests builds a mixed workload of n requests around distinct
// antenna positions.
func batchRequests(n int) []lion.LocateRequest {
	reqs := make([]lion.LocateRequest, n)
	for i := range reqs {
		ant := lion.V3(0.05*float64(i%5), 0.8+0.02*float64(i%3), 0.1)
		in, _ := batchThreeLineInput(ant)
		reqs[i] = lion.LocateRequest{
			Kind:       lion.KindThreeLine,
			ThreeLine:  in,
			Structured: lion.DefaultStructuredOptions(),
		}
	}
	return reqs
}

func TestBatchLocateParallelMatchesSerial(t *testing.T) {
	reqs := batchRequests(12)
	serial := lion.BatchLocate(context.Background(), reqs, lion.BatchOptions{Workers: 1})
	parallel := lion.BatchLocate(context.Background(), reqs, lion.BatchOptions{Workers: 4})
	if len(serial) != len(parallel) {
		t.Fatalf("%d serial vs %d parallel outcomes", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("outcome %d errs: serial %v parallel %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Solution, parallel[i].Solution) {
			t.Fatalf("outcome %d differs between serial and parallel", i)
		}
	}
}

func TestBatchLocateSolvesCorrectly(t *testing.T) {
	ant := lion.V3(0, 0.8, 0.1)
	in, _ := batchThreeLineInput(ant)
	out := lion.BatchLocate(context.Background(), []lion.LocateRequest{{
		Kind:       lion.KindThreeLine,
		ThreeLine:  in,
		Structured: lion.DefaultStructuredOptions(),
	}}, lion.BatchOptions{})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if d := out[0].Solution.Position.Dist(ant); d > 0.01 {
		t.Fatalf("batch solve missed the antenna by %.4f m", d)
	}
}

func TestBatchLocateUnknownKind(t *testing.T) {
	out := lion.BatchLocate(context.Background(), []lion.LocateRequest{{}}, lion.BatchOptions{})
	if !errors.Is(out[0].Err, lion.ErrUnknownRequestKind) {
		t.Fatalf("err = %v", out[0].Err)
	}
}

func TestBatchLocateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := lion.BatchLocate(ctx, batchRequests(4), lion.BatchOptions{Workers: 2})
	for i, o := range out {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("outcome %d err = %v, want canceled", i, o.Err)
		}
	}
}

func TestBatchAdaptiveMatchesDirectCalls(t *testing.T) {
	ant := lion.V3(0, 0.8, 0.1)
	in, _ := batchThreeLineInput(ant)
	ranges := []float64{0.6, 0.8, 1.0}
	intervals := []float64{0.15, 0.2, 0.25}
	base := lion.StructuredOptions{Solve: lion.DefaultSolveOptions()}

	want, err := lion.AdaptiveLocateThreeLine(in, ranges, intervals, base)
	if err != nil {
		t.Fatal(err)
	}
	out := lion.BatchAdaptive(context.Background(), []lion.AdaptiveRequest{{
		Kind:      lion.KindAdaptiveThreeLine,
		ThreeLine: in,
		Ranges:    ranges,
		Intervals: intervals,
		Base:      base,
	}}, lion.BatchOptions{Workers: 4})
	if out[0].Err != nil {
		t.Fatal(out[0].Err)
	}
	if !reflect.DeepEqual(out[0].Result, want) {
		t.Fatal("BatchAdaptive result differs from direct AdaptiveLocateThreeLine")
	}
	if math.IsNaN(out[0].Result.Position.X) {
		t.Fatal("NaN position")
	}
}
