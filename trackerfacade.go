package lion

import (
	"github.com/rfid-lion/lion/internal/tracker"
)

// Streaming tracker re-exports: a sliding-window estimator for conveyor
// deployments, built on the linear localization model.
type (
	// TrackerConfig describes the deployment the tracker runs in.
	TrackerConfig = tracker.Config
	// Tracker is the streaming estimator (not safe for concurrent use).
	Tracker = tracker.Tracker
	// TrackEstimate is one tracker output.
	TrackEstimate = tracker.Estimate
)

// ErrTrackerNotReady is returned by Tracker.Push until the sliding window
// holds enough reads.
var ErrTrackerNotReady = tracker.ErrNotReady

// NewTracker builds a streaming tracker.
func NewTracker(cfg TrackerConfig) (*Tracker, error) { return tracker.New(cfg) }

// UnwrapSafe reports whether a belt speed and read rate keep consecutive
// reads within the phase-unwrapping limit (tag displacement well under a
// quarter wavelength per read).
func UnwrapSafe(lambda, speed, rateHz float64) bool {
	return tracker.UnwrapSanity(lambda, speed, rateHz)
}
