GO ?= go

## BENCH_BASELINE: the committed lionbench snapshot bench-guard compares
## against. Bump when a PR lands a new snapshot.
BENCH_BASELINE ?= BENCH_10.json

.PHONY: check fmt vet build test race bench bench-guard fuzz serve-smoke cluster-smoke recal-smoke load-smoke metriclint

## check: the CI gate — formatting, vet, build, metric-name linting, the
## full suite under the race detector (includes the 1k-job batch stress test,
## the stream concurrent-publisher stress test, and the serial/parallel
## equivalence tests), the multi-process cluster smoke, the closed-loop
## recalibration smoke, the load-harness smoke, and the benchmark
## regression guard.
check: fmt vet build metriclint race cluster-smoke recal-smoke load-smoke bench-guard

## metriclint: every registered metric name matches lion_[a-z_]+ and is
## documented in DESIGN.md section 9.
metriclint:
	$(GO) run ./tools/metriclint

## fmt: fail if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

## bench-guard: re-measure the lionbench micro-suite and fail on a >10%
## regression of the guarded hot paths (ns/op for the latency-critical
## benchmarks, allocs/op for all — a zero-alloc baseline fails on the first
## allocation) against the committed $(BENCH_BASELINE).
bench-guard:
	$(GO) run ./cmd/lionbench -json /tmp/lion-bench-current.json
	$(GO) run ./tools/benchguard -baseline $(BENCH_BASELINE) -current /tmp/lion-bench-current.json

## serve-smoke: end-to-end liond check — start the daemon on a random port,
## push a replayed NDJSON trace over HTTP, assert a 200 estimate, and verify
## the graceful drain.
serve-smoke:
	$(GO) test ./cmd/liond -run TestServeSmoke -count=1 -v

## cluster-smoke: multi-process cluster check — build the real liond and
## lionroute binaries, run a router in front of two shard processes, ingest
## a binary wire stream, read an estimate back through the router, and
## verify every process drains cleanly on SIGTERM.
cluster-smoke:
	$(GO) test ./cmd/lionroute -run TestClusterSmoke -count=1 -v

## recal-smoke: closed-loop recalibration check — start liond with -recal and
## a deliberately stale calibration, push a drifted trace over HTTP, trigger a
## recalibration, and assert the antenna profile hot-swaps with audit log and
## metrics intact.
recal-smoke:
	$(GO) test ./cmd/liond -run TestRecalSmoke -count=1 -v

## load-smoke: load-harness check — run the 2-phase smoke scenario against a
## real liond process through the lionload CLI (open-loop paced fleet, SLO
## scrape, macro merge) and assert the scored verdict passes.
load-smoke:
	$(GO) test ./cmd/lionload -run TestLoadSmokeLiond -count=1 -v

## fuzz: short fuzzing passes over the phase-wrap, preprocessing, and ingest
## decoding invariants (their seed corpora also run in every plain `go test`).
fuzz:
	$(GO) test -fuzz FuzzWrapPhase -fuzztime 30s ./internal/rf
	$(GO) test -run '^$$' -fuzz FuzzPreprocess -fuzztime 30s .
	$(GO) test -run '^$$' -fuzz FuzzIngestDecode -fuzztime 30s ./internal/dataset
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 30s ./internal/wire
