GO ?= go

.PHONY: check vet build test race bench fuzz

## check: the CI gate — vet, build, and the full suite under the race
## detector (includes the 1k-job batch stress test and the serial/parallel
## equivalence tests).
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

## fuzz: short fuzzing passes over the phase-wrap and preprocessing
## invariants (their seed corpora also run in every plain `go test`).
fuzz:
	$(GO) test -fuzz FuzzWrapPhase -fuzztime 30s ./internal/rf
	$(GO) test -run '^$$' -fuzz FuzzPreprocess -fuzztime 30s .
