package lion

import (
	"context"
	"errors"
	"time"

	"github.com/rfid-lion/lion/internal/batch"
	"github.com/rfid-lion/lion/internal/core"
)

// Batch engine re-exports: the bounded worker pool behind BatchLocate,
// BatchAdaptive, the adaptive parameter sweeps, and the experiment harness.
type (
	// BatchEngine is a bounded worker pool with deterministic ordering.
	BatchEngine = batch.Engine
	// BatchEngineOptions configures a BatchEngine.
	BatchEngineOptions = batch.Options
	// BatchJob is one unit of work for a BatchEngine.
	BatchJob = batch.Job
	// BatchOutcome is one job's result, keyed by submission index.
	BatchOutcome = batch.Outcome
)

// ErrJobPanicked wraps a panic recovered inside a batch job.
var ErrJobPanicked = batch.ErrPanic

// NewBatchEngine builds a worker pool; zero Workers means GOMAXPROCS.
func NewBatchEngine(opts BatchEngineOptions) *BatchEngine { return batch.New(opts) }

// BatchOptions configures the high-level batch localization calls.
type BatchOptions struct {
	// Workers is the pool size. Zero means runtime.GOMAXPROCS(0); one
	// forces a serial run (useful for equivalence checks).
	Workers int
	// JobTimeout, when positive, bounds each request's solve time.
	JobTimeout time.Duration
}

// ErrUnknownRequestKind is returned for a request whose Kind is unset or
// out of range.
var ErrUnknownRequestKind = errors.New("lion: unknown batch request kind")

// LocateKind selects which solver a LocateRequest runs.
type LocateKind int

const (
	// KindLocate2D runs Locate2D on Obs/Lambda/Pairs.
	KindLocate2D LocateKind = iota + 1
	// KindLocate3D runs Locate3D on Obs/Lambda/Pairs.
	KindLocate3D
	// KindLocate2DLine runs Locate2DLine on Obs/Lambda with Interval.
	KindLocate2DLine
	// KindThreeLine runs LocateThreeLine on the ThreeLine input.
	KindThreeLine
	// KindTwoLine runs LocateTwoLine on the TwoLine input.
	KindTwoLine
)

// LocateRequest is one localization job for BatchLocate. Kind selects the
// solver; only the fields that solver consumes need to be set.
type LocateRequest struct {
	Kind LocateKind

	// Obs/Lambda/Pairs feed KindLocate2D, KindLocate3D and KindLocate2DLine.
	Obs    []PosPhase
	Lambda float64
	Pairs  []Pair
	// Interval is the pairing separation for KindLocate2DLine.
	Interval float64
	// PositiveSide selects the recovery branch for KindLocate2DLine.
	PositiveSide bool
	// Solve configures the least-squares solver for the unstructured kinds.
	Solve SolveOptions

	// ThreeLine feeds KindThreeLine.
	ThreeLine ThreeLineInput
	// TwoLine and AbovePlane feed KindTwoLine.
	TwoLine    TwoLineInput
	AbovePlane bool
	// Structured configures the structured kinds.
	Structured StructuredOptions
}

// LocateOutcome is one BatchLocate result; Index matches the request slice.
type LocateOutcome struct {
	Index    int
	Solution *Solution
	Err      error
}

// solve dispatches the request to its solver.
func (r LocateRequest) solve() (*Solution, error) {
	switch r.Kind {
	case KindLocate2D:
		return core.Locate2D(r.Obs, r.Lambda, r.Pairs, r.Solve)
	case KindLocate3D:
		return core.Locate3D(r.Obs, r.Lambda, r.Pairs, r.Solve)
	case KindLocate2DLine:
		return core.Locate2DLine(r.Obs, r.Lambda, r.Interval, r.PositiveSide, r.Solve)
	case KindThreeLine:
		return core.LocateThreeLine(r.ThreeLine, r.Structured)
	case KindTwoLine:
		return core.LocateTwoLine(r.TwoLine, r.AbovePlane, r.Structured)
	default:
		return nil, ErrUnknownRequestKind
	}
}

// BatchLocate fans the requests across a bounded worker pool and returns one
// outcome per request in submission order: out[i] always belongs to reqs[i],
// so a parallel run reproduces a serial run exactly. Cancelling ctx stops
// unstarted requests with ctx's error.
func BatchLocate(ctx context.Context, reqs []LocateRequest, opts BatchOptions) []LocateOutcome {
	return runRequests(ctx, opts, reqs, LocateRequest.solve,
		func(i int, sol *Solution, err error) LocateOutcome {
			return LocateOutcome{Index: i, Solution: sol, Err: err}
		})
}

// AdaptiveKind selects which adaptive sweep an AdaptiveRequest runs.
type AdaptiveKind int

const (
	// KindAdaptiveThreeLine runs AdaptiveLocateThreeLine.
	KindAdaptiveThreeLine AdaptiveKind = iota + 1
	// KindAdaptiveTwoLine runs AdaptiveLocateTwoLine.
	KindAdaptiveTwoLine
	// KindAdaptive2DLine runs AdaptiveLocate2DLine.
	KindAdaptive2DLine
)

// AdaptiveRequest is one adaptive-sweep job for BatchAdaptive. Each request
// runs its grid serially inside one worker — the batch layer provides the
// parallelism, so a batch of sweeps does not oversubscribe the CPU.
type AdaptiveRequest struct {
	Kind AdaptiveKind

	// ThreeLine feeds KindAdaptiveThreeLine.
	ThreeLine ThreeLineInput
	// TwoLine and AbovePlane feed KindAdaptiveTwoLine.
	TwoLine    TwoLineInput
	AbovePlane bool
	// Ranges and Intervals define the parameter grid (Intervals alone for
	// KindAdaptive2DLine).
	Ranges    []float64
	Intervals []float64
	// Base carries the shared structured options for the structured kinds.
	Base StructuredOptions

	// Obs/Lambda/PositiveSide/Solve feed KindAdaptive2DLine.
	Obs          []PosPhase
	Lambda       float64
	PositiveSide bool
	Solve        SolveOptions
}

// AdaptiveOutcome is one BatchAdaptive result; Index matches the requests.
type AdaptiveOutcome struct {
	Index  int
	Result *AdaptiveResult
	Err    error
}

func (r AdaptiveRequest) solve() (*AdaptiveResult, error) {
	switch r.Kind {
	case KindAdaptiveThreeLine:
		return core.AdaptiveLocateThreeLineWorkers(r.ThreeLine, r.Ranges, r.Intervals, r.Base, 1)
	case KindAdaptiveTwoLine:
		return core.AdaptiveLocateTwoLineWorkers(r.TwoLine, r.AbovePlane, r.Ranges, r.Intervals, r.Base, 1)
	case KindAdaptive2DLine:
		return core.AdaptiveLocate2DLineWorkers(r.Obs, r.Lambda, r.Intervals, r.PositiveSide, r.Solve, 1)
	default:
		return nil, ErrUnknownRequestKind
	}
}

// BatchAdaptive fans adaptive parameter sweeps across a bounded worker pool
// with the same ordering and cancellation contract as BatchLocate.
func BatchAdaptive(ctx context.Context, reqs []AdaptiveRequest, opts BatchOptions) []AdaptiveOutcome {
	return runRequests(ctx, opts, reqs, AdaptiveRequest.solve,
		func(i int, res *AdaptiveResult, err error) AdaptiveOutcome {
			return AdaptiveOutcome{Index: i, Result: res, Err: err}
		})
}

// runRequests is the shared fan-out: solve every request on the pool and
// wrap each result into the caller's outcome type, preserving indices.
func runRequests[Req any, Res any, Out any](
	ctx context.Context,
	opts BatchOptions,
	reqs []Req,
	solve func(Req) (*Res, error),
	wrap func(int, *Res, error) Out,
) []Out {
	eng := batch.New(batch.Options{Workers: opts.Workers, JobTimeout: opts.JobTimeout})
	jobs := make([]batch.Job, len(reqs))
	for i := range reqs {
		req := reqs[i]
		jobs[i] = func(jctx context.Context) (any, error) {
			if err := jctx.Err(); err != nil {
				return nil, err
			}
			return solve(req)
		}
	}
	outcomes := eng.Run(ctx, jobs)
	out := make([]Out, len(reqs))
	for i, o := range outcomes {
		var res *Res
		if o.Err == nil {
			res, _ = o.Value.(*Res)
		}
		out[i] = wrap(i, res, o.Err)
	}
	return out
}
