package lion_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	lion "github.com/rfid-lion/lion"
	"github.com/rfid-lion/lion/internal/experiment"
)

// benchCfg keeps every experiment bench at a size that completes within a
// normal -bench run while exercising the identical code paths as the full
// lionbench CLI (which uses the paper-scale configuration).
var benchCfg = experiment.Config{Seed: 1, Fast: true}

// --- One benchmark per paper table/figure (see DESIGN.md §4). ---

func BenchmarkFig2PhaseCenter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig2PhaseCenter(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3PhaseOffsets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig3PhaseOffsets(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Hologram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig4Hologram(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Directions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig6Directions(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9LowerDim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig9LowerDim(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig13Overall(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14a3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig14a3D(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14b2DDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig14b2DDepth(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15WLSvsLS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig15Weights(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16Range(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig16_17Range(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18Interval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig18Interval(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiment.Fig19_20MultiAntenna(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21Turntable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.Fig21Turntable(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out. ---

func BenchmarkAblationSolvers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.AblationSolvers(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIRWLS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.AblationIRWLS(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSmoothing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiment.AblationSmoothing(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver micro-benchmarks (the Fig. 13b cost story in isolation). ---

// circleObs builds a noiseless circle workload once per benchmark.
func circleObs(n int) ([]lion.PosPhase, float64, lion.Vec3) {
	lambda := lion.DefaultBand().Wavelength()
	ant := lion.V3(1, 0, 0)
	obs := make([]lion.PosPhase, n)
	for i := range obs {
		a := 2 * math.Pi * float64(i) / float64(n)
		p := lion.V3(0.3*math.Cos(a), 0.3*math.Sin(a), 0)
		obs[i] = lion.PosPhase{
			Pos:   p,
			Theta: lion.PhaseOfDistance(ant.Dist(p), lambda),
		}
	}
	return obs, lambda, ant
}

func BenchmarkSolverLION2D(b *testing.B) {
	obs, lambda, _ := circleObs(120)
	pairs := lion.StridePairs(len(obs), 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lion.Locate2D(obs, lambda, pairs, lion.DefaultSolveOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverLION2DPlainLS(b *testing.B) {
	obs, lambda, _ := circleObs(120)
	pairs := lion.StridePairs(len(obs), 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lion.Locate2D(obs, lambda, pairs, lion.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverHyperbolaGN(b *testing.B) {
	obs, lambda, _ := circleObs(120)
	pairs := lion.StridePairs(len(obs), 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lion.LocateHyperbola(obs, lambda, pairs, lion.V3(0.5, 0.5, 0),
			lion.HyperbolaOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverDAH2D(b *testing.B) {
	obs, lambda, ant := circleObs(120)
	cfg := lion.HologramConfig{
		Lambda:   lambda,
		GridMin:  ant.Add(lion.V3(-0.1, -0.1, 0)),
		GridMax:  ant.Add(lion.V3(0.1, 0.1, 0)),
		GridStep: 0.002, // the paper's 20 cm box near 1 mm resolution
		Weighted: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lion.LocateHologram(obs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolverThreeLine3D(b *testing.B) {
	lambda := lion.DefaultBand().Wavelength()
	ant := lion.V3(0, 0.8, 0.1)
	mk := func(y, z float64) []lion.PosPhase {
		n := 240
		out := make([]lion.PosPhase, n)
		for i := range out {
			p := lion.V3(-0.6+1.2*float64(i)/float64(n-1), y, z)
			out[i] = lion.PosPhase{Pos: p, Theta: lion.PhaseOfDistance(ant.Dist(p), lambda)}
		}
		return out
	}
	in := lion.ThreeLineInput{
		L1: mk(0, 0), L2: mk(0, 0.2), L3: mk(-0.2, 0), Lambda: lambda,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lion.LocateThreeLine(in, lion.DefaultStructuredOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batch engine benchmarks: serial vs parallel fan-out. ---

// batchBenchWorkload builds a fixed seeded batch of structured three-line
// localizations, the workload class the adaptive calibration pipeline
// submits in bulk. Results are identical for every worker count; only
// wall-clock changes, which is exactly what this guard tracks.
func batchBenchWorkload(n int) []lion.LocateRequest {
	lambda := lion.DefaultBand().Wavelength()
	reqs := make([]lion.LocateRequest, n)
	for r := range reqs {
		ant := lion.V3(0.03*float64(r%7), 0.8+0.02*float64(r%5), 0.1)
		mk := func(y, z float64) []lion.PosPhase {
			const m = 240
			out := make([]lion.PosPhase, m)
			for i := range out {
				p := lion.V3(-0.6+1.2*float64(i)/float64(m-1), y, z)
				out[i] = lion.PosPhase{Pos: p, Theta: lion.PhaseOfDistance(ant.Dist(p), lambda)}
			}
			return out
		}
		reqs[r] = lion.LocateRequest{
			Kind: lion.KindThreeLine,
			ThreeLine: lion.ThreeLineInput{
				L1: mk(0, 0), L2: mk(0, 0.2), L3: mk(-0.2, 0), Lambda: lambda,
			},
			Structured: lion.DefaultStructuredOptions(),
		}
	}
	return reqs
}

// BenchmarkBatchLocate is the serial-vs-parallel speedup guard: the same
// 64-job seeded workload at pool sizes 1/2/4/8.
func BenchmarkBatchLocate(b *testing.B) {
	reqs := batchBenchWorkload(64)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := lion.BatchLocate(context.Background(), reqs, lion.BatchOptions{Workers: workers})
				for _, o := range out {
					if o.Err != nil {
						b.Fatal(o.Err)
					}
				}
			}
		})
	}
}

// BenchmarkBatchAdaptive fans full adaptive sweeps (9 candidates each)
// across the pool — the calibration-scale job mix.
func BenchmarkBatchAdaptive(b *testing.B) {
	locates := batchBenchWorkload(16)
	reqs := make([]lion.AdaptiveRequest, len(locates))
	for i, lr := range locates {
		reqs[i] = lion.AdaptiveRequest{
			Kind:      lion.KindAdaptiveThreeLine,
			ThreeLine: lr.ThreeLine,
			Ranges:    []float64{0.6, 0.8, 1.0},
			Intervals: []float64{0.15, 0.2, 0.25},
			Base:      lion.StructuredOptions{Solve: lion.DefaultSolveOptions()},
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := lion.BatchAdaptive(context.Background(), reqs, lion.BatchOptions{Workers: workers})
				for _, o := range out {
					if o.Err != nil {
						b.Fatal(o.Err)
					}
				}
			}
		})
	}
}

func BenchmarkPreprocess(b *testing.B) {
	lambda := lion.DefaultBand().Wavelength()
	ant := lion.V3(0, 1, 0)
	n := 2000
	positions := make([]lion.Vec3, n)
	wrapped := make([]float64, n)
	for i := range positions {
		positions[i] = lion.V3(-1+2*float64(i)/float64(n-1), 0, 0)
		wrapped[i] = lion.WrapPhase(lion.PhaseOfDistance(ant.Dist(positions[i]), lambda))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lion.Preprocess(positions, wrapped, 9); err != nil {
			b.Fatal(err)
		}
	}
}
