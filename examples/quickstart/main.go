// Command quickstart is the smallest end-to-end LION run: simulate a tag
// sliding past an antenna, preprocess the reported phases, and locate the
// antenna with the linear model — all in a few milliseconds, no hardware.
package main

import (
	"fmt"
	"log"

	lion "github.com/rfid-lion/lion"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A free-space environment on the paper's 920.625 MHz carrier with
	// Gaussian phase noise N(0, 0.1) rad.
	env, err := lion.NewEnvironment()
	if err != nil {
		return err
	}
	reader, err := lion.NewReader(env, lion.DefaultReaderConfig())
	if err != nil {
		return err
	}

	// The antenna whose position we want to find. Its true phase center is
	// displaced ~3 cm from the mounting position, as on real hardware.
	antenna := &lion.Antenna{
		ID:                "A1",
		PhysicalCenter:    lion.V3(0.20, 1.00, 0),
		PhaseCenterOffset: lion.V3(0.025, -0.015, 0),
		PhaseOffset:       2.74, // hardware-dependent constant
	}
	tag := &lion.Tag{ID: "T1", PhaseOffset: 0.4}

	// The tag slides 1 m along the x-axis at 10 cm/s — the paper's
	// conveyor setup.
	track, err := lion.NewLinear(lion.V3(-0.5, 0, 0), lion.V3(0.5, 0, 0), 0.1)
	if err != nil {
		return err
	}
	samples, err := reader.Scan(antenna, tag, track)
	if err != nil {
		return err
	}
	fmt.Printf("collected %d phase reads over %.0f s\n",
		len(samples), lion.ScanDuration(track).Seconds())

	// Preprocess: unwrap the modulo-2π phases and smooth.
	obs, err := lion.Preprocess(lion.Positions(samples), lion.Phases(samples), 9)
	if err != nil {
		return err
	}

	// Locate: a single linear trajectory is the lower-dimension case; the
	// perpendicular coordinate comes from the reference distance d_r.
	sol, err := lion.Locate2DLine(obs, env.Wavelength(), 0.2, true,
		lion.DefaultSolveOptions())
	if err != nil {
		return err
	}

	truth := antenna.PhaseCenter()
	fmt.Printf("true phase center:      %v\n", truth)
	fmt.Printf("estimated phase center: %v\n", sol.Position)
	fmt.Printf("error: %.2f cm (IRWLS iterations: %d)\n",
		sol.Position.Dist(truth)*100, sol.Iterations)
	return nil
}
