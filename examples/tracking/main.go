// Command tracking streams a tag's phase reads through the sliding-window
// tracker while the tag rides past the antenna, printing a live position
// estimate every quarter second — the real-time edge-node deployment the
// paper motivates (high time efficiency with limited computing resources).
package main

import (
	"errors"
	"fmt"
	"log"

	lion "github.com/rfid-lion/lion"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := lion.NewEnvironment()
	if err != nil {
		return err
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{RateHz: 100, Seed: 21})
	if err != nil {
		return err
	}
	antenna := &lion.Antenna{
		ID:                "gate",
		PhysicalCenter:    lion.V3(0, 0.8, 0),
		PhaseCenterOffset: lion.V3(0.02, -0.01, 0),
	}
	tag := &lion.Tag{ID: "parcel-0042", PhaseOffset: 1.3}

	// Sanity-check the deployment before going live: at this belt speed
	// and read rate, consecutive reads stay within the unwrap limit.
	if !lion.UnwrapSafe(env.Wavelength(), 0.1, 100) {
		return errors.New("belt too fast for this read rate")
	}

	trk, err := lion.NewTracker(lion.TrackerConfig{
		Lambda:       env.Wavelength(),
		AntennaPos:   antenna.PhaseCenter(), // calibrated in advance
		TrackDir:     lion.V3(1, 0, 0),
		Speed:        0.1,
		WindowSize:   500,
		MinWindow:    200,
		Every:        25, // one estimate per quarter second at 100 Hz
		PositiveSide: true,
	})
	if err != nil {
		return err
	}

	// The parcel rides 1.6 m of belt through the read zone.
	track, err := lion.NewLinear(lion.V3(-0.8, 0, 0), lion.V3(0.8, 0, 0), 0.1)
	if err != nil {
		return err
	}
	samples, err := reader.Scan(antenna, tag, track)
	if err != nil {
		return err
	}

	fmt.Println("time (s)  est x (cm)  true x (cm)  err (cm)  |residual|")
	count := 0
	for _, s := range samples {
		est, err := trk.Push(s.Time, s.Phase)
		if errors.Is(err, lion.ErrTrackerNotReady) {
			continue
		}
		if err != nil {
			return err
		}
		count++
		if count%4 != 0 {
			continue // print once per second
		}
		fmt.Printf("%8.2f  %10.1f  %11.1f  %8.2f  %10.4f\n",
			est.Time.Seconds(),
			est.Position.X*100,
			s.TagPos.X*100,
			est.Position.Dist(s.TagPos)*100,
			est.MeanAbsResidual,
		)
	}
	fmt.Printf("\n%d estimates over %.0f s of belt travel\n",
		count, lion.ScanDuration(track).Seconds())
	return nil
}
