// Command multiantenna reproduces the paper's case study (Sec. V-F-1) as a
// runnable program: three antennas in a line are phase-calibrated with a
// three-line tag scan, and a static tag is then located with the
// differential hologram under increasing levels of calibration. The tag
// error drops as first the phase centers and then the phase offsets are
// calibrated — the paper's Fig. 20.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	lion "github.com/rfid-lion/lion"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := lion.NewEnvironment()
	if err != nil {
		return err
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{RateHz: 100, Seed: 11})
	if err != nil {
		return err
	}
	lambda := env.Wavelength()

	// Three antennas at 0.3 m spacing, each with its own phase-center
	// displacement and hardware offset (A2's differs strongly: it is
	// mounted on the integrated reader machine).
	displacements := []lion.Vec3{
		lion.V3(0.021, -0.017, 0.019),
		lion.V3(-0.025, 0.020, -0.016),
		lion.V3(0.018, 0.023, -0.024),
	}
	offsets := []float64{3.98, 2.74, 4.07} // the paper's measured values
	antennas := make([]*lion.Antenna, 3)
	for i := range antennas {
		antennas[i] = &lion.Antenna{
			ID:                fmt.Sprintf("A%d", i+1),
			PhysicalCenter:    lion.V3(-0.3+0.3*float64(i), 0, 0),
			PhaseCenterOffset: displacements[i],
			PhaseOffset:       offsets[i],
		}
	}
	calibTag := &lion.Tag{ID: "calib", PhaseOffset: 0.5}

	// --- Calibration pass: three-line scan in front of each antenna. ---
	fmt.Println("calibration (three-line scan, depth 0.7 m, y_o = z_o = 0.2 m):")
	estCenters := make([]lion.Vec3, 3)
	estOffsets := make([]float64, 3)
	for i, ant := range antennas {
		scan, err := lion.NewThreeLineScan(lion.ThreeLineConfig{
			XMin: ant.PhysicalCenter.X - 0.6, XMax: ant.PhysicalCenter.X + 0.6,
			YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.1,
		})
		if err != nil {
			return err
		}
		samples, err := reader.Scan(ant, calibTag, &shifted{scan, lion.V3(0, 0.7, 0)})
		if err != nil {
			return err
		}
		obs, err := lion.Preprocess(lion.Positions(samples), lion.Phases(samples), 9)
		if err != nil {
			return err
		}
		in := lion.ThreeLineInput{Lambda: lambda}
		for j, s := range samples {
			switch s.Segment {
			case lion.LineL1:
				in.L1 = append(in.L1, obs[j])
			case lion.LineL2:
				in.L2 = append(in.L2, obs[j])
			case lion.LineL3:
				in.L3 = append(in.L3, obs[j])
			}
		}
		res, err := lion.AdaptiveLocateThreeLine(in,
			[]float64{0.6, 0.8, 1.0}, []float64{0.15, 0.2, 0.25},
			lion.StructuredOptions{Solve: lion.DefaultSolveOptions()})
		if err != nil {
			return err
		}
		estCenters[i] = res.Position
		estOffsets[i], err = lion.PhaseOffset(
			lion.Positions(samples), lion.Phases(samples), res.Position, lambda)
		if err != nil {
			return err
		}
		calib := lion.CenterCalibration{
			AntennaID:       ant.ID,
			PhysicalCenter:  ant.PhysicalCenter,
			EstimatedCenter: res.Position,
		}
		fmt.Printf("  %s: displacement est %v (true %v), offset est %.2f rad\n",
			ant.ID, calib.Displacement(), displacements[i], estOffsets[i])
	}

	// --- Localization pass: static tag, differential hologram. ---
	targetTag := &lion.Tag{ID: "target", PhaseOffset: 1.1}
	tagPos := lion.V3(-0.10, 0.80, 0)
	meanPhases := make([]float64, 3)
	for i, ant := range antennas {
		samples, err := reader.ReadStatic(ant, targetTag, tagPos, 500)
		if err != nil {
			return err
		}
		var s, c float64
		for _, smp := range samples {
			s += math.Sin(smp.Phase)
			c += math.Cos(smp.Phase)
		}
		meanPhases[i] = lion.WrapPhase(math.Atan2(s, c))
	}

	locate := func(label string, centers []lion.Vec3, offs []float64) error {
		readings := make([]lion.AntennaReading, 3)
		for i := range readings {
			readings[i] = lion.AntennaReading{
				Center: centers[i], Phase: meanPhases[i], Offset: offs[i],
			}
		}
		res, err := lion.LocateTagMultiAntenna(readings, lion.HologramConfig{
			Lambda:   lambda,
			GridMin:  tagPos.Add(lion.V3(-0.15, -0.15, 0)),
			GridMax:  tagPos.Add(lion.V3(0.15, 0.15, 0)),
			GridStep: 0.002,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-14s tag error %.2f cm (est %v)\n",
			label, res.Position.Dist(tagPos)*100, res.Position)
		return nil
	}

	physCenters := make([]lion.Vec3, 3)
	zeros := make([]float64, 3)
	for i, ant := range antennas {
		physCenters[i] = ant.PhysicalCenter
	}
	fmt.Printf("\nlocating static tag at %v with three antennas:\n", tagPos)
	if err := locate("no calibration", physCenters, zeros); err != nil {
		return err
	}
	if err := locate("center only", estCenters, zeros); err != nil {
		return err
	}
	return locate("center+offset", estCenters, estOffsets)
}

// shifted translates a segmented trajectory by a constant offset.
type shifted struct {
	inner  lion.Segmented
	offset lion.Vec3
}

func (s *shifted) Position(t time.Duration) lion.Vec3 { return s.inner.Position(t).Add(s.offset) }
func (s *shifted) Duration() time.Duration            { return s.inner.Duration() }
func (s *shifted) SegmentAt(t time.Duration) int      { return s.inner.SegmentAt(t) }
