// Command turntable demonstrates rotating-tag scanning (the paper's
// Sec. V-F-2): when multiple linear passes are inconvenient, a tag spinning
// on a turntable supplies the trajectory instead. LION accepts any known
// trajectory shape, so the same linear model applies unchanged — and
// because the trajectory is planar, it also fixes the out-of-plane
// coordinate through d_r (full 3-D from a turntable).
package main

import (
	"fmt"
	"log"

	lion "github.com/rfid-lion/lion"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := lion.NewEnvironment()
	if err != nil {
		return err
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{RateHz: 100, Seed: 5})
	if err != nil {
		return err
	}
	antenna := &lion.Antenna{
		ID:             "A1",
		PhysicalCenter: lion.V3(0.1, 0.7, 0),
	}
	tag := &lion.Tag{ID: "T1", PhaseOffset: 0.9}

	fmt.Println("2-D localization, one full rotation per radius:")
	fmt.Println("radius (cm)  x err (cm)  y err (cm)  dist err (cm)")
	for _, radius := range []float64{0.10, 0.15, 0.20, 0.25} {
		trj, err := lion.NewCircularXY(lion.V3(0, 0, 0), radius, 0.1, 0, 1)
		if err != nil {
			return err
		}
		samples, err := reader.Scan(antenna, tag, trj)
		if err != nil {
			return err
		}
		obs, err := lion.Preprocess(lion.Positions(samples), lion.Phases(samples), 9)
		if err != nil {
			return err
		}
		// Pair samples a quarter-turn apart for well-conditioned radical
		// lines.
		pairs := lion.StridePairs(len(obs), len(obs)/4)
		sol, err := lion.Locate2D(obs, env.Wavelength(), pairs,
			lion.DefaultSolveOptions())
		if err != nil {
			return err
		}
		truth := antenna.PhaseCenter()
		fmt.Printf("%11.0f  %10.2f  %10.2f  %13.2f\n",
			radius*100,
			100*abs(sol.Position.X-truth.X),
			100*abs(sol.Position.Y-truth.Y),
			100*sol.Position.XY().Dist(truth.XY()))
	}

	// Bonus: the same circular data pins the antenna in 3-D — the circle is
	// planar, so the height comes from the reference distance.
	antenna3D := &lion.Antenna{ID: "A2", PhysicalCenter: lion.V3(0.1, 0.7, 0.3)}
	trj, err := lion.NewCircularXY(lion.V3(0, 0, 0), 0.25, 0.1, 0, 1)
	if err != nil {
		return err
	}
	samples, err := reader.Scan(antenna3D, tag, trj)
	if err != nil {
		return err
	}
	obs, err := lion.Preprocess(lion.Positions(samples), lion.Phases(samples), 9)
	if err != nil {
		return err
	}
	pairs := lion.StridePairs(len(obs), len(obs)/4)
	sol, err := lion.Locate3DPlanar(obs, env.Wavelength(), pairs, true,
		lion.DefaultSolveOptions())
	if err != nil {
		return err
	}
	fmt.Printf("\n3-D from the same turntable: antenna at %v, estimated %v (err %.2f cm)\n",
		antenna3D.PhaseCenter(), sol.Position,
		100*sol.Position.Dist(antenna3D.PhaseCenter()))
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
