// Command conveyor demonstrates the paper's industrial motivation: tagged
// items ride a conveyor past a calibrated antenna, and LION pins down each
// item's position on the belt from its phase stream — in real time, on
// edge-class compute.
//
// The unknown is each item's start position on the belt; the belt geometry
// and speed are known. LION therefore locates the antenna in the item's
// track frame and subtracts, which also shows why phase-center calibration
// matters: anchoring on the physical center instead of the calibrated phase
// center shifts every item estimate by the displacement.
package main

import (
	"fmt"
	"log"
	"time"

	lion "github.com/rfid-lion/lion"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env, err := lion.NewEnvironment()
	if err != nil {
		return err
	}
	// A mildly hostile hall: bursty multipath fades on top of the noise.
	env.Fading = &lion.FadeModel{
		RatePerMeter: 0.3, RefDistance: 0.8,
		MinLength: 0.05, MaxLength: 0.12, MaxBias: 1.2,
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{RateHz: 100, Seed: 42})
	if err != nil {
		return err
	}
	beam, err := lion.NewBeam(lion.V3(0, -1, 0), 70*3.14159/180)
	if err != nil {
		return err
	}
	antenna := &lion.Antenna{
		ID:                "gate",
		PhysicalCenter:    lion.V3(0, 0.8, 0),
		PhaseCenterOffset: lion.V3(0.022, -0.018, 0),
		Beam:              beam,
	}
	// Assume the antenna was calibrated in advance (see the multiantenna
	// example for the calibration pipeline); here we idealise a perfect
	// calibration and compare against the uncalibrated anchor.
	calibratedCenter := antenna.PhaseCenter()

	items := []struct {
		epc   string
		start lion.Vec3
	}{
		{"E280-1160-0001", lion.V3(-0.15, 0, 0)},
		{"E280-1160-0002", lion.V3(0.05, 0, 0)},
		{"E280-1160-0003", lion.V3(0.20, 0, 0)},
	}

	fmt.Println("item             true x (cm)  est x (cm)  err calibrated  err uncalibrated  time")
	for i, item := range items {
		tag := &lion.Tag{ID: item.epc, PhaseOffset: 0.3 + 0.2*float64(i)}
		// The item rides 1.2 m of belt through the read zone.
		track, err := lion.NewLinear(
			item.start.Add(lion.V3(-0.6, 0, 0)),
			item.start.Add(lion.V3(0.6, 0, 0)), 0.1)
		if err != nil {
			return err
		}
		samples, err := reader.Scan(antenna, tag, track)
		if err != nil {
			return err
		}
		obs, err := lion.Preprocess(lion.Positions(samples), lion.Phases(samples), 9)
		if err != nil {
			return err
		}
		// Shift into the item's track frame (relative belt motion is known
		// from the encoder; the absolute start is what we estimate).
		rel := make([]lion.PosPhase, len(obs))
		for j, o := range obs {
			rel[j] = lion.PosPhase{Pos: o.Pos.Sub(item.start), Theta: o.Theta}
		}

		begin := time.Now()
		sol, err := lion.Locate2DLineIntervals(rel, env.Wavelength(),
			[]float64{0.2, 0.4, 0.6}, true, lion.DefaultSolveOptions())
		if err != nil {
			return err
		}
		elapsed := time.Since(begin)

		estCal := calibratedCenter.Sub(sol.Position)
		estRaw := antenna.PhysicalCenter.Sub(sol.Position)
		fmt.Printf("%s   %8.1f  %10.1f  %14.2f  %16.2f  %s\n",
			item.epc,
			item.start.X*100,
			estCal.X*100,
			estCal.XY().Dist(item.start.XY())*100,
			estRaw.XY().Dist(item.start.XY())*100,
			elapsed.Round(10*time.Microsecond),
		)
	}
	fmt.Println("\n(errors in cm; calibration removes the phase-center displacement bias)")
	return nil
}
