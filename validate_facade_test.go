package lion_test

import (
	"context"
	"errors"
	"math"
	"testing"

	lion "github.com/rfid-lion/lion"
)

// The facade must surface the typed validation errors so callers can match
// them with errors.Is without importing internal packages.
func TestFacadeRejectsNonFiniteInput(t *testing.T) {
	pos := make([]lion.Vec3, 8)
	phases := make([]float64, 8)
	for i := range pos {
		pos[i] = lion.V3(float64(i)*0.02, 0, 0)
		phases[i] = float64(i) * 0.1
	}

	bad := append([]float64(nil), phases...)
	bad[2] = math.NaN()
	if _, err := lion.Preprocess(pos, bad, 0); !errors.Is(err, lion.ErrNonFiniteInput) {
		t.Errorf("NaN phase: err = %v, want lion.ErrNonFiniteInput", err)
	}

	badPos := append([]lion.Vec3(nil), pos...)
	badPos[5] = lion.V3(0, math.Inf(1), 0)
	if _, err := lion.Preprocess(badPos, phases, 0); !errors.Is(err, lion.ErrNonFiniteInput) {
		t.Errorf("Inf position: err = %v, want lion.ErrNonFiniteInput", err)
	}

	if _, err := lion.Preprocess(pos, phases[:7], 0); !errors.Is(err, lion.ErrTooFewObservations) {
		t.Errorf("mismatched lengths: err = %v, want lion.ErrTooFewObservations", err)
	}

	obs, err := lion.Preprocess(pos, phases, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lion.Locate2D(obs, math.NaN(), lion.StridePairs(len(obs), 2), lion.DefaultSolveOptions()); !errors.Is(err, lion.ErrBadLambda) {
		t.Errorf("NaN lambda: err = %v, want lion.ErrBadLambda", err)
	}
}

// The streaming facade rejects bad samples with its own typed error.
func TestStreamFacadeRejectsBadSample(t *testing.T) {
	eng, err := lion.NewStreamEngine(lion.StreamConfig{
		WindowSize: 8,
		Solver: lion.StreamLine2DSolver(lion.DefaultBand().Wavelength(),
			[]float64{0.1}, true, lion.DefaultSolveOptions()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close(context.Background())
	err = eng.Ingest("T1", lion.StreamSample{Phase: math.Inf(1)})
	if !errors.Is(err, lion.ErrStreamBadSample) {
		t.Errorf("Inf phase: err = %v, want lion.ErrStreamBadSample", err)
	}
}
