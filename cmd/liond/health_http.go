// Health and alerting endpoints: /v1/alerts, /readyz, /debug/flight/{id}.
// The liveness/readiness split follows the usual orchestration contract —
// /healthz answers 200 for as long as the process can serve HTTP at all,
// while /readyz reports whether this instance should receive traffic: it
// returns 503 once the daemon starts draining or while any critical-severity
// alert (ill-conditioned solves, solver failures, calibration drift) fires.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"github.com/rfid-lion/lion/internal/health"
)

// alertJSON is the wire form of one alert. Timestamps are stream time,
// seconds since the stream's epoch — the clock alert hysteresis runs on.
type alertJSON struct {
	Rule      string  `json:"rule"`
	Signal    string  `json:"signal"`
	Severity  string  `json:"severity"`
	Scope     string  `json:"scope"`
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	RawValue  float64 `json:"raw_value"`
	Baseline  float64 `json:"baseline,omitempty"`
	Threshold float64 `json:"threshold"`
	StartedS  float64 `json:"started_s"`
	FiredS    float64 `json:"fired_s,omitempty"`
	ResolvedS float64 `json:"resolved_s,omitempty"`
	UpdatedS  float64 `json:"updated_s"`
	Evidence  int     `json:"evidence_traces,omitempty"`
}

// driftJSON is the wire form of one antenna's drift status.
type driftJSON struct {
	Antenna     string  `json:"antenna"`
	CalibratedR float64 `json:"calibrated_rad"`
	EstimatedR  float64 `json:"estimated_rad"`
	DriftR      float64 `json:"drift_rad"`
	DriftLambda float64 `json:"drift_lambda"`
	Samples     int     `json:"samples"`
	Valid       bool    `json:"valid"`
}

func toAlertJSON(a health.Alert) alertJSON {
	return alertJSON{
		Rule:      a.Rule,
		Signal:    string(a.Signal),
		Severity:  a.Severity.String(),
		Scope:     a.Scope,
		State:     a.State.String(),
		Value:     a.Value,
		RawValue:  a.RawValue,
		Baseline:  a.Baseline,
		Threshold: a.Threshold,
		StartedS:  a.StartedAt.Seconds(),
		FiredS:    a.FiredAt.Seconds(),
		ResolvedS: a.ResolvedAt.Seconds(),
		UpdatedS:  a.UpdatedAt.Seconds(),
		Evidence:  len(a.Evidence),
	}
}

// handleAlerts serves the active alerts, the recently-resolved history, and
// the per-antenna drift status as one JSON document.
func (s *server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.mon == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("monitoring disabled (liond runs with -monitor=false)"))
		return
	}
	active := []alertJSON{}
	resolved := []alertJSON{}
	for _, a := range s.mon.Alerts() {
		if a.State == health.StateResolved {
			resolved = append(resolved, toAlertJSON(a))
		} else {
			active = append(active, toAlertJSON(a))
		}
	}
	drifts := []driftJSON{}
	for _, d := range s.mon.Drifts() {
		drifts = append(drifts, driftJSON{
			Antenna:     d.Antenna,
			CalibratedR: d.Calibrated,
			EstimatedR:  d.Estimated,
			DriftR:      d.DriftRad,
			DriftLambda: d.DriftLambda,
			Samples:     d.Samples,
			Valid:       d.Valid,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"active":   active,
		"resolved": resolved,
		"drifts":   drifts,
	})
}

// handleReady is the readiness probe. A nil monitor never blocks readiness:
// the daemon is ready unless it is draining.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.mon.CriticalFiring():
		// The exact status string is part of the cluster protocol: lionroute
		// parses it and parks the shard query-only (internal/cluster).
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "critical-alert"})
	default:
		doc := map[string]any{"status": "ready"}
		if s.wireTrace {
			// Advertise that POST /v1/samples decodes the FlagTrace wire
			// extension. lionroute's health probe reads this field and only
			// puts trace extensions on the wire to shards that opted in, so
			// old decoders never see flagged frames.
			doc["wire_trace"] = true
		}
		writeJSON(w, http.StatusOK, doc)
	}
}

// handleFlight serves the tag's flight-recorder traces as NDJSON: one JSON
// object per retained solve, oldest first, each carrying its full event
// list in the frozen obs.Tracer schema.
func (s *server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.mon == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("monitoring disabled (liond runs with -monitor=false)"))
		return
	}
	tag := r.PathValue("id")
	records := s.mon.Flight(tag)
	if len(records) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("no flight records for tag %q", tag))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, rec := range records {
		enc.Encode(map[string]any{
			"tag":    rec.Tag,
			"seq":    rec.Seq,
			"t_s":    rec.Time.Seconds(),
			"window": rec.Window,
			"error":  rec.Err,
			"events": rec.Events,
		})
	}
}
