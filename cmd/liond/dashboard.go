// The /debug/dashboard endpoint: a single self-contained HTML page — no
// external scripts, stylesheets, or fonts — summarising the daemon's health
// at a glance. It renders counter gauges from the stream engine, the alert
// table and per-antenna drift from the monitor, and inline SVG sparklines
// from the obs registry's windowed histograms and the monitor's per-tag
// residual series. Everything is computed server-side per request; the page
// re-polls itself with a meta refresh.
package main

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"strings"
	"time"

	"github.com/rfid-lion/lion/internal/health"
)

// sparkW/sparkH size the inline sparklines.
const (
	sparkW = 220
	sparkH = 36
)

// svgSparkline renders values as a polyline scaled into a fixed viewBox.
// Non-finite values are clamped; a flat or empty series renders a midline.
func svgSparkline(values []float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg width="%d" height="%d" viewBox="0 0 %d %d" class="spark">`,
		sparkW, sparkH, sparkW, sparkH)
	if len(values) > 1 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if hi <= lo {
			hi = lo + 1
		}
		sb.WriteString(`<polyline fill="none" stroke="#2a7" stroke-width="1.5" points="`)
		for i, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = lo
			}
			x := float64(i) / float64(len(values)-1) * float64(sparkW-4)
			y := (1 - (v-lo)/(hi-lo)) * float64(sparkH-6)
			fmt.Fprintf(&sb, "%.1f,%.1f ", x+2, y+3)
		}
		sb.WriteString(`"/>`)
	} else {
		fmt.Fprintf(&sb, `<line x1="0" y1="%d" x2="%d" y2="%d" stroke="#ccc"/>`,
			sparkH/2, sparkW, sparkH/2)
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

// histogramSpark returns the sparkline of a registry histogram's recent raw
// observations, or an empty string when the histogram is absent or empty.
func (s *server) histogramSpark(name string) string {
	h, ok := s.eng.Registry().FindHistogram(name)
	if !ok {
		return ""
	}
	win := h.WindowSnapshot()
	if len(win) == 0 {
		return ""
	}
	return svgSparkline(win)
}

func stateClass(st health.State) string {
	switch st {
	case health.StateFiring:
		return "firing"
	case health.StatePending:
		return "pending"
	default:
		return "resolved"
	}
}

func (s *server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Metrics()
	var sb strings.Builder
	sb.WriteString(`<!doctype html><html><head><meta charset="utf-8">` +
		`<meta http-equiv="refresh" content="5"><title>liond dashboard</title><style>` +
		`body{font:14px/1.4 system-ui,sans-serif;margin:1.5em;color:#222}` +
		`h1{font-size:1.3em}h2{font-size:1.05em;margin-top:1.4em}` +
		`table{border-collapse:collapse;margin-top:.5em}` +
		`td,th{border:1px solid #ddd;padding:.25em .6em;text-align:left;font-variant-numeric:tabular-nums}` +
		`th{background:#f5f5f5}` +
		`.gauges{display:flex;flex-wrap:wrap;gap:.8em;margin-top:.5em}` +
		`.gauge{border:1px solid #ddd;border-radius:6px;padding:.5em .8em;min-width:9em}` +
		`.gauge .v{font-size:1.4em;font-weight:600}` +
		`.gauge .l{color:#666;font-size:.85em}` +
		`.firing{background:#fdd}.pending{background:#ffe9c9}.resolved{background:#e8f6e8}` +
		`.ok{color:#2a7}.bad{color:#c22}.spark{vertical-align:middle}` +
		`</style></head><body><h1>liond</h1>`)

	status, class := "ready", "ok"
	switch {
	case s.draining.Load():
		status, class = "draining", "bad"
	case s.mon.CriticalFiring():
		status, class = "critical alert firing", "bad"
	}
	fmt.Fprintf(&sb, `<p>status <span class="%s">%s</span> · uptime %s · monitoring %v</p>`,
		class, status, time.Since(s.start).Round(time.Second), s.mon != nil)

	sb.WriteString(`<h2>Stream</h2><div class="gauges">`)
	gauge := func(label string, value string) {
		fmt.Fprintf(&sb, `<div class="gauge"><div class="v">%s</div><div class="l">%s</div></div>`,
			value, html.EscapeString(label))
	}
	gauge("tags", fmt.Sprint(m.Tags))
	gauge("ingested", fmt.Sprint(m.Ingested))
	gauge("solves", fmt.Sprint(m.Solves))
	gauge("solve errors", fmt.Sprint(m.SolveErrors))
	gauge("dropped", fmt.Sprint(m.DroppedOverflow+m.DroppedAge))
	gauge("queue depth", fmt.Sprint(m.QueueDepth))
	if m.LatencyCount > 0 {
		gauge("p50 latency", fmt.Sprintf("%.2g s", m.LatencyP50))
		gauge("p99 latency", fmt.Sprintf("%.2g s", m.LatencyP99))
	}
	sb.WriteString(`</div>`)
	if spark := s.histogramSpark("lion_stream_solve_latency_seconds"); spark != "" {
		fmt.Fprintf(&sb, `<p>solve latency %s</p>`, spark)
	}
	if spark := s.histogramSpark("lion_health_eval_seconds"); spark != "" {
		fmt.Fprintf(&sb, `<p>health eval %s</p>`, spark)
	}

	// Per-tag freshness: how stale each tag's estimates are at publication,
	// measured from the upstream receive clock (bounded so the page stays
	// small). The latest cell is the most recent published estimate's age.
	staleTags := s.eng.Tags()
	if len(staleTags) > 8 {
		staleTags = staleTags[:8]
	}
	var staleRows []string
	for _, tag := range staleTags {
		series := s.eng.StalenessSeries(tag)
		if len(series) == 0 {
			continue
		}
		staleRows = append(staleRows, fmt.Sprintf(`<tr><td>%s</td><td>%s</td><td>%.4g s</td></tr>`,
			html.EscapeString(tag), svgSparkline(series), series[len(series)-1]))
	}
	if len(staleRows) > 0 {
		sb.WriteString(`<h2>Staleness</h2><table><tr><th>tag</th><th>staleness</th><th>latest</th></tr>`)
		for _, row := range staleRows {
			sb.WriteString(row)
		}
		sb.WriteString(`</table>`)
	}

	if s.mon != nil {
		sb.WriteString(`<h2>Calibration drift</h2>`)
		drifts := s.mon.Drifts()
		if len(drifts) == 0 {
			sb.WriteString(`<p>no calibrations configured (-cal-center)</p>`)
		} else {
			sb.WriteString(`<table><tr><th>antenna</th><th>calibrated</th><th>estimated</th>` +
				`<th>drift (λ)</th><th>samples</th></tr>`)
			for _, d := range drifts {
				est := "—"
				drift := "—"
				if d.Valid {
					est = fmt.Sprintf("%.4f rad", d.Estimated)
					drift = fmt.Sprintf("%+.4f", math.Copysign(d.DriftLambda, d.DriftRad))
				}
				fmt.Fprintf(&sb, `<tr><td>%s</td><td>%.4f rad</td><td>%s</td><td>%s</td><td>%d</td></tr>`,
					html.EscapeString(d.Antenna), d.Calibrated, est, drift, d.Samples)
			}
			sb.WriteString(`</table>`)
		}

		sb.WriteString(`<h2>Alerts</h2>`)
		alerts := s.mon.Alerts()
		if len(alerts) == 0 {
			sb.WriteString(`<p class="ok">no active or recent alerts</p>`)
		} else {
			sb.WriteString(`<table><tr><th>state</th><th>rule</th><th>scope</th><th>severity</th>` +
				`<th>value</th><th>threshold</th><th>since</th></tr>`)
			for _, a := range alerts {
				fmt.Fprintf(&sb,
					`<tr class="%s"><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%.4g</td><td>%.4g</td><td>%s</td></tr>`,
					stateClass(a.State), a.State, html.EscapeString(a.Rule),
					html.EscapeString(a.Scope), a.Severity, a.Value, a.Threshold,
					a.StartedAt.Round(time.Millisecond))
			}
			sb.WriteString(`</table>`)
		}

		// Per-tag residual sparklines for the tags the flight recorder has
		// seen most recently (bounded, so the page stays small).
		tags := s.mon.FlightTags()
		if len(tags) > 8 {
			tags = tags[:8]
		}
		var rows []string
		for _, tag := range tags {
			series := s.mon.Series(tag, health.SignalResidual)
			if len(series) == 0 {
				continue
			}
			rows = append(rows, fmt.Sprintf(`<tr><td>%s</td><td>%s</td><td>%.4g</td></tr>`,
				html.EscapeString(tag), svgSparkline(series), series[len(series)-1]))
		}
		if len(rows) > 0 {
			sb.WriteString(`<h2>Residuals</h2><table><tr><th>tag</th><th>residual norm</th><th>latest</th></tr>`)
			for _, row := range rows {
				sb.WriteString(row)
			}
			sb.WriteString(`</table>`)
		}
	}

	sb.WriteString(`</body></html>`)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(sb.String()))
}
