package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/wire"
)

// traceServer builds a full liond pipeline + server from flags, in-process
// (no listener — handlers run through httptest).
func traceServer(t *testing.T, args ...string) *server {
	t.Helper()
	cfg, err := parseFlags(append([]string{"-intervals", "0.1", "-every", "32", "-workers", "1"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	eng, mon, ctrl, err := buildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close(context.Background()) })
	return newServer(eng, mon, ctrl, cfg)
}

// TestTracedWireIngest posts a wire batch carrying the FlagTrace extension and
// follows the trace through the daemon: the ingest response surfaces the trace
// id, the span ring collects decode/enqueue/solve/publish spans served at
// /debug/pipespans, the staleness clock starts at the router's receive time,
// and /v1/slo summarises every latency dimension in the rollup schema.
func TestTracedWireIngest(t *testing.T) {
	s := traceServer(t)
	trace := smokeTrace(t)
	tagged := make([]dataset.TaggedSample, len(trace))
	for i, sm := range trace {
		tagged[i] = dataset.Tagged("T1", sm)
	}

	ext := wire.Ext{TraceID: 0xbeef, RouterRecvUnixNano: time.Now().Add(-40 * time.Millisecond).UnixNano()}
	var body bytes.Buffer
	if err := wire.NewWriter(&body, 0).WriteBatchExt(tagged, &ext); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/samples", &body)
	req.Header.Set("Content-Type", wire.ContentType)
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
	}
	var res struct {
		Accepted int    `json:"accepted"`
		TraceID  string `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != len(trace) || res.TraceID != "000000000000beef" {
		t.Fatalf("ingest result = %+v", res)
	}
	if err := s.eng.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The daemon recorded its own stages plus the engine's pipeline stages
	// under the router's trace id.
	stages := map[string]bool{}
	for _, sp := range s.spans.Spans(0xbeef) {
		stages[sp.Stage] = true
		if sp.Service != "liond" {
			t.Errorf("span service = %q", sp.Service)
		}
	}
	for _, want := range []string{"ingest_decode", "engine_enqueue", "queue_wait", "solve", "publish"} {
		if !stages[want] {
			t.Errorf("missing %q span; got %v", want, stages)
		}
	}

	// Staleness is measured from the wire extension's receive clock, so the
	// series must include the 40 ms the batch spent "upstream".
	series := s.eng.StalenessSeries("T1")
	if len(series) == 0 || series[len(series)-1] < 0.04 {
		t.Fatalf("staleness series %v, want last >= 0.04", series)
	}

	rec = httptest.NewRecorder()
	s.routes().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pipespans?trace=000000000000beef", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pipespans status %d", rec.Code)
	}
	for _, want := range []string{`"ingest_decode"`, `"solve"`, `"000000000000beef"`} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("pipespans export lacks %s:\n%s", want, rec.Body.String())
		}
	}
	rec = httptest.NewRecorder()
	s.routes().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pipespans?trace=zzz", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad trace filter: status %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.routes().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/slo status %d", rec.Code)
	}
	var doc map[string]sloQuantiles
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, dim := range []string{"staleness_seconds", "queue_wait_seconds",
		"solve_latency_seconds", "publish_latency_seconds", "ingest_decode_seconds",
		"ingest_request_seconds"} {
		q, ok := doc[dim]
		if !ok || q.Count == 0 {
			t.Errorf("/v1/slo %s = %+v (present %v)", dim, q, ok)
		}
		if q.P50 > q.P99 {
			t.Errorf("/v1/slo %s quantiles inverted: %+v", dim, q)
		}
	}
	if _, ok := doc["alert_latency_seconds"]; ok {
		t.Error("/v1/slo reports alert latency with no fired alert")
	}

	// The staleness exemplar carries the trace id onto /metrics, and the
	// dashboard renders the per-tag staleness sparkline.
	rec = httptest.NewRecorder()
	s.routes().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `trace_id="000000000000beef"`) {
		t.Error("metrics exposition lacks staleness exemplar")
	}
	rec = httptest.NewRecorder()
	s.routes().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dashboard", nil))
	if !strings.Contains(rec.Body.String(), "Staleness") {
		t.Error("dashboard lacks the staleness section")
	}
}

// TestLocalTraceSampling: without an upstream router, -trace-sample n=1 makes
// the daemon start its own traces on NDJSON ingest.
func TestLocalTraceSampling(t *testing.T) {
	s := traceServer(t, "-trace-sample", "1")
	trace := smokeTrace(t)
	tagged := make([]dataset.TaggedSample, len(trace))
	for i, sm := range trace {
		tagged[i] = dataset.Tagged("T1", sm)
	}
	var body bytes.Buffer
	if err := (dataset.NDJSON{}).Encode(&body, tagged); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/samples", &body)
	req.Header.Set("Content-Type", dataset.NDJSONContentType)
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, req)
	var res struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	id, err := obs.ParseTraceID(res.TraceID)
	if err != nil || id == 0 {
		t.Fatalf("locally sampled ingest returned trace id %q (%v)", res.TraceID, err)
	}
	if err := s.eng.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.spans.Spans(id); len(got) == 0 {
		t.Error("no spans recorded for locally sampled trace")
	}
}

// TestReadyzAdvertisesWireTrace: the readiness document advertises FlagTrace
// decode capability exactly when -wire is on — the negotiation bit lionroute's
// probe consumes.
func TestReadyzAdvertisesWireTrace(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want bool
	}{
		{nil, true},
		{[]string{"-wire=false"}, false},
	} {
		s := traceServer(t, tc.args...)
		rec := httptest.NewRecorder()
		s.routes().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("readyz status %d", rec.Code)
		}
		var doc struct {
			Status    string `json:"status"`
			WireTrace bool   `json:"wire_trace"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status != "ready" || doc.WireTrace != tc.want {
			t.Errorf("readyz %v = %+v, want ready/%v", tc.args, doc, tc.want)
		}
	}
}
