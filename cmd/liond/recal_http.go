package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"github.com/rfid-lion/lion/internal/recal"
)

// errRecalDisabled answers the recal endpoints when the daemon runs
// without -recal.
var errRecalDisabled = errors.New("recalibration disabled (start liond with -recal)")

// handleRecalHistory serves the controller's audit log, newest first.
func (s *server) handleRecalHistory(w http.ResponseWriter, r *http.Request) {
	if s.ctrl == nil {
		writeError(w, http.StatusNotFound, errRecalDisabled)
		return
	}
	events := s.ctrl.History()
	writeJSON(w, http.StatusOK, map[string]any{
		"probation": s.ctrl.OnProbation(),
		"events":    events,
	})
}

// handleRecalTrigger runs one recalibration synchronously and returns its
// audit event: 200 on a swap, 422 when the candidate was rejected or the
// evidence insufficient (the event body says which).
func (s *server) handleRecalTrigger(w http.ResponseWriter, r *http.Request) {
	if s.ctrl == nil {
		writeError(w, http.StatusNotFound, errRecalDisabled)
		return
	}
	reason := "manual"
	var body struct {
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&body); err == nil && body.Reason != "" {
		reason = "manual:" + body.Reason
	}
	ev, err := s.ctrl.Trigger(reason)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	status := http.StatusOK
	if ev.Outcome != recal.OutcomeSwapped {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, ev)
}
