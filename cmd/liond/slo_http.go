// SLO and pipeline-trace endpoints: /v1/slo and /debug/pipespans.
//
// /v1/slo is the per-shard half of the cluster SLO contract: it reports the
// windowed p50/p95/p99 of every pipeline latency dimension this daemon
// measures, in exactly the shape lionroute's rollup parses — one
// {"p50","p95","p99","count"} object per dimension plus a scalar
// "alert_latency_seconds". Dimensions with no observations yet are reported
// with an explicit zero count and zero quantiles — never omitted, and never
// with garbage quantiles from an empty window. The zero count is the
// consumer's signal: lionroute's rollup and lionload's scraper both treat
// count==0 as "no evidence", so an idle shard can never be mistaken for a
// fast one.
package main

import (
	"net/http"
	"time"

	"github.com/rfid-lion/lion/internal/obs"
)

// sloQuantiles is one latency dimension of the /v1/slo document. The field
// set mirrors internal/cluster's parser; changing it is a cluster protocol
// change.
type sloQuantiles struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Count uint64  `json:"count"`
}

// sloDimensions maps /v1/slo document keys to the registry histograms they
// summarise. Quantiles come from each histogram's sliding window of raw
// observations, so they track current behaviour, not lifetime averages.
var sloDimensions = []struct{ key, metric string }{
	{"staleness_seconds", "lion_stream_staleness_seconds"},
	{"queue_wait_seconds", "lion_stream_queue_wait_seconds"},
	{"solve_latency_seconds", "lion_stream_solve_latency_seconds"},
	{"publish_latency_seconds", "lion_stream_publish_latency_seconds"},
	{"ingest_decode_seconds", "lion_ingest_decode_seconds"},
	{"ingest_request_seconds", "lion_http_ingest_seconds"},
}

func (s *server) handleSLO(w http.ResponseWriter, r *http.Request) {
	doc := make(map[string]any, len(sloDimensions)+1)
	for _, dim := range sloDimensions {
		h, ok := s.eng.Registry().FindHistogram(dim.metric)
		if !ok {
			continue
		}
		// An empty window reports the explicit zero document. Quantile's ok
		// flag gates every read so an empty window can never leak whatever an
		// unobserved recorder would interpolate.
		q := sloQuantiles{Count: h.Count()}
		if q.Count > 0 {
			// Histogram.Quantile takes a percentile in [0, 100].
			if v, ok := h.Quantile(50); ok {
				q.P50 = v
			}
			if v, ok := h.Quantile(95); ok {
				q.P95 = v
			}
			if v, ok := h.Quantile(99); ok {
				q.P99 = v
			}
		}
		doc[dim.key] = q
	}
	if lat, ok := s.alertLatency(); ok {
		doc["alert_latency_seconds"] = lat
	}
	writeJSON(w, http.StatusOK, doc)
}

// alertLatency reports how long the most recently fired alert took to fire:
// FiredAt − StartedAt on the monitor's stream-time clock, i.e. hold-down plus
// detection lag. Pending alerts have no latency yet and a nil monitor has no
// alerts at all; both report ok=false and the dimension is omitted.
func (s *server) alertLatency() (float64, bool) {
	if s.mon == nil {
		return 0, false
	}
	var latest, lat time.Duration
	found := false
	for _, a := range s.mon.Alerts() {
		if a.FiredAt == 0 {
			continue
		}
		if !found || a.FiredAt > latest {
			latest, lat, found = a.FiredAt, a.FiredAt-a.StartedAt, true
		}
	}
	return lat.Seconds(), found
}

// handlePipeSpans exports the daemon's pipeline span ring as NDJSON in the
// frozen obs.PipeSpan schema. ?trace=<16 hex digits> restricts the export to
// one trace — the form lionroute fetches when assembling a cross-process
// trace for /v1/trace/{id}.
func (s *server) handlePipeSpans(w http.ResponseWriter, r *http.Request) {
	var id uint64
	if q := r.URL.Query().Get("trace"); q != "" {
		v, err := obs.ParseTraceID(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		id = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.spans != nil {
		s.spans.WriteNDJSON(w, id)
	}
}
