package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/stream"
	"github.com/rfid-lion/lion/internal/traject"
)

func smokeTrace(t *testing.T) []sim.Sample {
	t.Helper()
	env, err := sim.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := sim.NewReader(env, sim.ReaderConfig{RateHz: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ant := &sim.Antenna{
		PhysicalCenter:    geom.V3(0.1, 0.8, 0),
		PhaseCenterOffset: geom.V3(0.02, -0.015, 0),
		PhaseOffset:       2.74,
	}
	trj, err := traject.NewLinear(geom.V3(-0.6, 0, 0), geom.V3(0.6, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, &sim.Tag{PhaseOffset: 0.4}, trj)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestServeSmoke is the end-to-end daemon check behind `make serve-smoke`:
// start the production serve loop on a random port, push an NDJSON trace
// over real HTTP, read the estimate back, and shut down cleanly.
func TestServeSmoke(t *testing.T) {
	cfg, err := parseFlags([]string{"-intervals", "0.1", "-every", "32", "-workers", "2", "-trace"})
	if err != nil {
		t.Fatal(err)
	}
	eng, mon, ctrl, err := buildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	cfg.drain = 5 * time.Second
	go func() { serveDone <- serve(ctx, ln, eng, mon, ctrl, cfg) }()
	base := "http://" + ln.Addr().String()

	// healthz answers before any traffic.
	body := getOK(t, base+"/healthz")
	if !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz: %s", body)
	}

	// Unknown tag before ingest: 404.
	if code, _ := get(t, base+"/v1/tags/NOPE/estimate"); code != http.StatusNotFound {
		t.Fatalf("unknown tag status %d, want 404", code)
	}

	// Garbage body: 400, daemon survives.
	resp, err := http.Post(base+"/v1/samples", "application/x-ndjson",
		strings.NewReader("this is not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage ingest status %d, want 400", resp.StatusCode)
	}

	// Replay the recorded trace as one NDJSON POST.
	trace := smokeTrace(t)
	var buf bytes.Buffer
	if err := dataset.WriteNDJSON(&buf, "T1", trace); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/samples", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	ingest := struct{ Accepted, Dropped int }{}
	if err := json.NewDecoder(resp.Body).Decode(&ingest); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ingest.Accepted != len(trace) || ingest.Dropped != 0 {
		t.Fatalf("ingest: status %d accepted %d dropped %d (want 200/%d/0)",
			resp.StatusCode, ingest.Accepted, ingest.Dropped, len(trace))
	}

	// Solves run asynchronously; poll briefly for the estimate.
	var est estimateJSON
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := get(t, base+"/v1/tags/T1/estimate")
		if code == http.StatusOK {
			if err := json.Unmarshal([]byte(body), &est); err != nil {
				t.Fatalf("estimate decode: %v in %s", err, body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no estimate after ingest (last status %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if est.Tag != "T1" || est.Error != "" || est.X == nil || est.Y == nil {
		t.Fatalf("estimate: %+v", est)
	}
	if *est.Y < 0.5 || *est.Y > 1.1 {
		t.Errorf("estimated depth %.3f m implausible for a 0.785 m truth", *est.Y)
	}

	// Tag listing includes T1.
	if body := getOK(t, base+"/v1/tags"); !strings.Contains(body, `"T1"`) {
		t.Errorf("tags: %s", body)
	}

	// Metrics exposition comes from the obs registry.
	metrics := getOK(t, base+"/metrics")
	want := fmt.Sprintf("lion_stream_ingested_total %d", len(trace))
	if !strings.Contains(metrics, want) {
		t.Errorf("metrics missing %q:\n%s", want, metrics)
	}
	for _, name := range []string{
		"lion_stream_solve_latency_seconds_count",
		"lion_uptime_seconds",
		"lion_batch_jobs_total",
		"# TYPE lion_stream_solve_latency_seconds histogram",
		"lion_go_goroutines",
		"lion_go_heap_inuse_bytes",
		"lion_health_solves_observed_total",
		"lion_health_alerts_active",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("metrics missing %q", name)
		}
	}

	// The solve trace endpoint serves NDJSON with per-iteration solver
	// events (the daemon was started with -trace).
	traceBody := getOK(t, base+"/debug/trace/T1")
	var sawIter bool
	for _, line := range strings.Split(strings.TrimSpace(traceBody), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev["event"] == "irls_iter" {
			sawIter = true
		}
	}
	if !sawIter {
		t.Errorf("trace has no irls_iter events:\n%s", traceBody)
	}
	if code, _ := get(t, base+"/debug/trace/NOPE"); code != http.StatusNotFound {
		t.Errorf("trace for unknown tag: status %d, want 404", code)
	}

	// pprof is mounted: a short CPU profile comes back as a valid pprof
	// protobuf (gzip magic), and the index page lists profiles.
	if body := getOK(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("pprof index missing profile listing")
	}
	profResp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := io.ReadAll(profResp.Body)
	profResp.Body.Close()
	if profResp.StatusCode != http.StatusOK {
		t.Fatalf("pprof profile status %d: %s", profResp.StatusCode, prof)
	}
	if len(prof) < 2 || prof[0] != 0x1f || prof[1] != 0x8b {
		t.Errorf("pprof profile is not gzip-compressed protobuf (got % x...)", prof[:min(8, len(prof))])
	}

	// Graceful shutdown: cancel the serve context and wait for the drain.
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	// The engine refuses ingest after the drain: fully closed.
	if err := eng.Ingest("T1", stream.Sample{Phase: 1}); err != stream.ErrClosed {
		t.Errorf("post-shutdown ingest err = %v, want ErrClosed", err)
	}
}

func TestParseFlagsRejectsBadSolver(t *testing.T) {
	if _, err := parseFlags([]string{"-solver", "warp"}); err == nil {
		t.Error("unknown solver accepted")
	}
	if _, err := parseFlags([]string{"-intervals", "abc"}); err == nil {
		t.Error("malformed interval accepted")
	}
	if _, err := parseFlags([]string{"-solver", "line", "-intervals", ""}); err == nil {
		t.Error("line solver with no intervals accepted")
	}
}

func TestParseFlagsIncremental(t *testing.T) {
	cfg, err := parseFlags([]string{"-incremental"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.cfg.SolverFactory == nil || cfg.cfg.Solver != nil {
		t.Error("-incremental did not select the session-solver factory")
	}
	if cfg.cfg.Smooth != 0 {
		t.Errorf("-incremental left Smooth = %d, want 0", cfg.cfg.Smooth)
	}
	// The resulting config must pass engine validation as-is.
	e, err := stream.New(cfg.cfg)
	if err != nil {
		t.Fatalf("engine rejects -incremental config: %v", err)
	}
	e.Close(context.Background())

	if _, err := parseFlags([]string{"-incremental", "-solver", "2d"}); err == nil {
		t.Error("-incremental with -solver 2d accepted")
	}
	if _, err := parseFlags([]string{"-incremental", "-smooth", "9"}); err == nil {
		t.Error("-incremental with explicit -smooth accepted")
	}
	if _, err := parseFlags([]string{"-incremental", "-intervals", ""}); err == nil {
		t.Error("-incremental with no intervals accepted")
	}
	if cfg, err := parseFlags([]string{"-incremental", "-smooth", "0"}); err != nil || cfg.cfg.Smooth != 0 {
		t.Errorf("-incremental with explicit -smooth 0 rejected: %v", err)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func getOK(t *testing.T, url string) string {
	t.Helper()
	code, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, code, body)
	}
	return body
}
