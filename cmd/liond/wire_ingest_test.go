package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/stream"
	"github.com/rfid-lion/lion/internal/wire"
)

// TestIngestWireCodec pushes the same trace once as NDJSON and once as
// binary wire frames into two identical daemons and asserts both engines
// end up in the same state — the codec must be invisible to the pipeline.
func TestIngestWireCodec(t *testing.T) {
	trace := smokeTrace(t)
	tagged := make([]dataset.TaggedSample, len(trace))
	for i, sm := range trace {
		tagged[i] = dataset.Tagged("T1", sm)
	}

	type node struct {
		base string
		eng  *stream.Engine
		stop func()
	}
	start := func() node {
		cfg, err := parseFlags([]string{"-intervals", "0.1", "-every", "32", "-workers", "1"})
		if err != nil {
			t.Fatal(err)
		}
		eng, mon, ctrl, err := buildPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		cfg.drain = 5 * time.Second
		go func() { done <- serve(ctx, ln, eng, mon, ctrl, cfg) }()
		return node{base: "http://" + ln.Addr().String(), eng: eng, stop: func() {
			cancel()
			<-done
		}}
	}
	nd, wr := start(), start()
	defer nd.stop()
	defer wr.stop()

	var ndBody bytes.Buffer
	if err := (dataset.NDJSON{}).Encode(&ndBody, tagged); err != nil {
		t.Fatal(err)
	}
	var wireBody bytes.Buffer
	if err := (wire.Codec{}).Encode(&wireBody, tagged); err != nil {
		t.Fatal(err)
	}
	if wireBody.Len() >= ndBody.Len() {
		t.Errorf("wire body %d B not smaller than NDJSON %d B", wireBody.Len(), ndBody.Len())
	}

	post := func(base, contentType string, body *bytes.Buffer) (accepted int) {
		t.Helper()
		resp, err := http.Post(base+"/v1/samples", contentType, body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res struct{ Accepted, Dropped int }
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || res.Dropped != 0 {
			t.Fatalf("ingest %s: status %d, %+v", contentType, resp.StatusCode, res)
		}
		return res.Accepted
	}
	if got := post(nd.base, dataset.NDJSONContentType, &ndBody); got != len(trace) {
		t.Fatalf("ndjson accepted %d, want %d", got, len(trace))
	}
	if got := post(wr.base, wire.ContentType, &wireBody); got != len(trace) {
		t.Fatalf("wire accepted %d, want %d", got, len(trace))
	}

	for _, n := range []node{nd, wr} {
		if err := n.eng.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ea, aok := nd.eng.Latest("T1")
	eb, bok := wr.eng.Latest("T1")
	if !aok || !bok {
		t.Fatalf("estimates missing: ndjson %v wire %v", aok, bok)
	}
	if ea.Window != eb.Window || ea.From != eb.From || ea.To != eb.To {
		t.Fatalf("window state diverges: %+v vs %+v", ea, eb)
	}
	if ea.Solution == nil || eb.Solution == nil || ea.Solution.Position != eb.Solution.Position {
		t.Fatalf("positions diverge: %+v vs %+v", ea.Solution, eb.Solution)
	}

	// A wire body posted to a daemon started with -wire=false must fail
	// cleanly (falls back to the NDJSON parser, which rejects the binary).
	cfg, err := parseFlags([]string{"-intervals", "0.1", "-wire=false"})
	if err != nil {
		t.Fatal(err)
	}
	eng, mon, ctrl, err := buildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srvNoWire := newServer(eng, mon, ctrl, cfg)
	defer eng.Close(context.Background())
	var again bytes.Buffer
	if err := (wire.Codec{}).Encode(&again, tagged); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", "/v1/samples", &again)
	req.Header.Set("Content-Type", wire.ContentType)
	rec := httptest.NewRecorder()
	srvNoWire.routes().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("-wire=false wire ingest: status %d, want 400", rec.Code)
	}
}
