package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/recal"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
)

// driftedTrace synthesizes n clean Eq. 2 samples of a tag marching past the
// antenna with a constant phase offset — monotonic 5 mm steps so any window
// spans the pairing interval.
func driftedTrace(center geom.Vec3, lambda, offset float64, n int) []sim.Sample {
	out := make([]sim.Sample, n)
	for i := range out {
		pos := geom.V3(-1.0+0.005*float64(i), 0, 0)
		out[i] = sim.Sample{
			Time:   time.Duration(i) * 10 * time.Millisecond,
			TagPos: pos,
			Phase:  rf.WrapPhase(rf.PhaseOfDistance(center.Dist(pos), lambda) + offset),
			RSSI:   -55,
		}
	}
	return out
}

// TestRecalSmoke is the end-to-end daemon check behind `make recal-smoke`:
// start liond with -recal and a deliberately stale calibration offset, push
// a drifted trace over real HTTP, trigger a recalibration, and watch the
// profile hot-swap land — audit log, metrics, and all — with no restart.
func TestRecalSmoke(t *testing.T) {
	antenna := geom.V3(0.05, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	const staleOffset = 1.2
	trueOffset := staleOffset + 0.05*4*math.Pi

	cfg, err := parseFlags([]string{
		"-recal",
		"-cal-center", "0.05,0.8,0",
		"-cal-offset", fmt.Sprintf("%g", staleOffset),
		"-window", "128", "-min", "32", "-every", "16", "-smooth", "0",
		"-workers", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, mon, ctrl, err := buildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mon == nil || ctrl == nil {
		t.Fatal("-recal pipeline missing monitor or controller")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	cfg.drain = 5 * time.Second
	go func() { serveDone <- serve(ctx, ln, eng, mon, ctrl, cfg) }()
	base := "http://" + ln.Addr().String()

	// The calibration seeds the engine's initial antenna profile.
	if _, version, ok := eng.ActiveProfile(); !ok || version != 1 {
		t.Fatalf("initial profile version=%d ok=%v, want 1", version, ok)
	}

	// Empty history while nothing has run.
	var hist struct {
		Probation bool          `json:"probation"`
		Events    []recal.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(getOK(t, base+"/v1/recal/history")), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Events) != 0 {
		t.Fatalf("fresh daemon has recal history: %+v", hist.Events)
	}

	// Replay a trace whose offset drifted 0.05 λ past the calibration.
	var buf bytes.Buffer
	if err := dataset.WriteNDJSON(&buf, "T1", driftedTrace(antenna, lambda, trueOffset, 128)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/samples", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	// Estimates name the profile that corrected their window.
	if est := getOK(t, base+"/v1/tags/T1/estimate"); !strings.Contains(est, `"profile_version":1`) {
		t.Errorf("pre-swap estimate missing profile_version 1: %s", est)
	}

	// Trigger a recalibration over the live window.
	resp, err = http.Post(base+"/v1/recal/trigger", "application/json",
		strings.NewReader(`{"reason":"smoke"}`))
	if err != nil {
		t.Fatal(err)
	}
	var ev recal.Event
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ev.Outcome != recal.OutcomeSwapped {
		t.Fatalf("trigger: status %d event %+v, want 200/swapped", resp.StatusCode, ev)
	}
	if ev.Reason != "manual:smoke" {
		t.Errorf("trigger reason = %q, want manual:smoke", ev.Reason)
	}
	if d := math.Abs(rf.WrapPhaseSigned(ev.NewOffset - rf.WrapPhase(trueOffset))); d > 0.05 {
		t.Errorf("re-solved offset %v, want ≈%v", ev.NewOffset, rf.WrapPhase(trueOffset))
	}
	prof, version, ok := eng.ActiveProfile()
	if !ok || version != 2 {
		t.Fatalf("post-swap profile version=%d ok=%v, want 2", version, ok)
	}
	if d := math.Abs(rf.WrapPhaseSigned(prof.Offset - rf.WrapPhase(trueOffset))); d > 0.05 {
		t.Errorf("active profile offset %v, want ≈%v", prof.Offset, rf.WrapPhase(trueOffset))
	}

	// History reflects the swap and the probation window.
	if err := json.Unmarshal([]byte(getOK(t, base+"/v1/recal/history")), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Events) != 1 || hist.Events[0].Outcome != recal.OutcomeSwapped {
		t.Fatalf("history after swap: %+v", hist)
	}
	if !hist.Probation {
		t.Error("history does not report probation after a swap")
	}

	// The recal metrics live on the shared registry.
	metrics := getOK(t, base+"/metrics")
	for _, want := range []string{
		`lion_recal_runs_total{outcome="swapped"} 1`,
		"lion_recal_solve_seconds_count 1",
		"lion_recal_active_version 2",
		"lion_stream_profile_swaps_total 1",
		"lion_stream_profile_version 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

func TestParseFlagsRecal(t *testing.T) {
	if _, err := parseFlags([]string{"-recal"}); err == nil {
		t.Error("-recal without -cal-center accepted")
	}
	if _, err := parseFlags([]string{"-recal", "-cal-center", "0,0.8,0", "-monitor=false"}); err == nil {
		t.Error("-recal without the monitor accepted")
	}
	cfg, err := parseFlags([]string{"-recal", "-cal-center", "0,0.8,0", "-cal-offset", "1.5"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.recal || cfg.recalMargin != 0.05 || cfg.recalMin != 64 {
		t.Errorf("recal defaults wrong: %+v", cfg)
	}
}
