package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
)

// driftSamples synthesizes clean linear-model reads for the daemon's default
// antenna: phase = 4π·d/λ + offset, tag marching along x. The scan position
// derives from the start time, so consecutive phases produce one continuous
// trajectory with no position jumps at phase boundaries.
func driftSamples(center geom.Vec3, lambda, offset float64, n int, start time.Duration) []sim.Sample {
	base := int(start / (10 * time.Millisecond))
	out := make([]sim.Sample, n)
	for i := range out {
		pos := geom.V3(-0.6+0.001*float64((base+i)%1200), 0, 0)
		out[i] = sim.Sample{
			Time:   start + time.Duration(i)*10*time.Millisecond,
			TagPos: pos,
			Phase:  rf.WrapPhase(rf.PhaseOfDistance(center.Dist(pos), lambda) + offset),
		}
	}
	return out
}

// newHealthServer builds a server through the production flag path with drift
// monitoring armed, handling requests via httptest (no real listener).
func newHealthServer(t *testing.T, extra ...string) (*server, http.Handler) {
	t.Helper()
	args := append([]string{
		// -min 128: at 1 mm sample spacing the 0.1 m pairing interval needs
		// ≥100 samples of aperture, so smaller windows cannot pair.
		"-intervals", "0.1", "-every", "16", "-min", "128", "-workers", "2",
		"-antenna", "A1",
		"-cal-center", "0.1,0.8,0",
		"-cal-offset", "2.74",
		"-drift-frac", "0.02",
		"-drift-window", "64",
		"-hold-down", "200ms",
	}, extra...)
	cfg, err := parseFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	eng, mon, ctrl, err := buildPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, mon, ctrl, cfg)
	return s, s.routes()
}

func doGet(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func postSamples(t *testing.T, h http.Handler, tag string, samples []sim.Sample) {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.WriteNDJSON(&buf, tag, samples); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/samples", &buf)
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
	}
}

// feedChunks posts the trace in bursts, letting queued solves finish between
// bursts so alert evaluation ticks land at distinct stream times — what
// paced replay would deliver naturally.
func feedChunks(t *testing.T, s *server, h http.Handler, tag string, samples []sim.Sample) {
	t.Helper()
	for i := 0; i < len(samples); i += 40 {
		postSamples(t, h, tag, samples[i:min(i+40, len(samples))])
		if err := s.eng.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// waitDrained polls until the engine has no queued solves, so monitor state
// is settled before assertions.
func waitDrained(t *testing.T, s *server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := s.eng.Metrics()
		if m.QueueDepth == 0 {
			// One more settle pass for in-flight completions.
			time.Sleep(20 * time.Millisecond)
			if s.eng.Metrics().Solves == m.Solves {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadyzTransitions walks the readiness contract: ready while healthy,
// 503 while a critical alert fires, ready again after it resolves, and 503
// permanently once draining — while /healthz stays 200 throughout.
func TestReadyzTransitions(t *testing.T) {
	s, h := newHealthServer(t)
	center := geom.V3(0.1, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()

	if code, body := doGet(t, h, "/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("fresh daemon readyz = %d %s", code, body)
	}
	if code, _ := doGet(t, h, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz not 200 on fresh daemon")
	}

	// Healthy replay, chunked so solve ticks land at distinct stream times.
	feedChunks(t, s, h, "T1", driftSamples(center, lambda, 2.74, 400, 0))
	if code, body := doGet(t, h, "/readyz"); code != http.StatusOK {
		t.Fatalf("healthy replay readyz = %d %s", code, body)
	}

	// Drift step: 0.05 λ with a 0.02 λ critical rule. Readiness must drop.
	feedChunks(t, s, h, "T1", driftSamples(center, lambda, 2.74+0.05*4*math.Pi, 400, 4*time.Second))
	if code, body := doGet(t, h, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during critical drift = %d %s", code, body)
	}
	if code, _ := doGet(t, h, "/healthz"); code != http.StatusOK {
		t.Error("healthz must stay 200 while a critical alert fires")
	}

	// Correction: drift resolves, readiness returns.
	feedChunks(t, s, h, "T1", driftSamples(center, lambda, 2.74, 400, 8*time.Second))
	if code, body := doGet(t, h, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after correction = %d %s", code, body)
	}

	// Draining wins over health.
	s.draining.Store(true)
	if code, body := doGet(t, h, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("readyz while draining = %d %s", code, body)
	}
	if code, _ := doGet(t, h, "/healthz"); code != http.StatusOK {
		t.Error("healthz must stay 200 while draining")
	}
}

// TestAlertsAndFlightEndpoints drives a drift alert through HTTP and checks
// /v1/alerts names the offending antenna with the drift estimate and
// /debug/flight serves the retained traces as NDJSON.
func TestAlertsAndFlightEndpoints(t *testing.T) {
	s, h := newHealthServer(t)
	center := geom.V3(0.1, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()

	// Empty state: well-formed, no alerts.
	code, body := doGet(t, h, "/v1/alerts")
	if code != http.StatusOK {
		t.Fatalf("alerts status %d", code)
	}
	var empty struct {
		Active   []alertJSON `json:"active"`
		Resolved []alertJSON `json:"resolved"`
		Drifts   []driftJSON `json:"drifts"`
	}
	if err := json.Unmarshal([]byte(body), &empty); err != nil {
		t.Fatalf("alerts decode: %v in %s", err, body)
	}
	if len(empty.Active) != 0 || len(empty.Drifts) != 1 || empty.Drifts[0].Valid {
		t.Fatalf("fresh alerts = %+v", empty)
	}

	feedChunks(t, s, h, "T1", driftSamples(center, lambda, 2.74, 200, 0))
	feedChunks(t, s, h, "T1", driftSamples(center, lambda, 2.74+0.05*4*math.Pi, 400, 2*time.Second))

	code, body = doGet(t, h, "/v1/alerts")
	if code != http.StatusOK {
		t.Fatalf("alerts status %d", code)
	}
	var got struct {
		Active   []alertJSON `json:"active"`
		Resolved []alertJSON `json:"resolved"`
		Drifts   []driftJSON `json:"drifts"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("alerts decode: %v in %s", err, body)
	}
	var drift *alertJSON
	for i := range got.Active {
		if got.Active[i].Rule == "calibration_drift" {
			drift = &got.Active[i]
		}
	}
	if drift == nil {
		t.Fatalf("no calibration_drift alert in %s", body)
	}
	if drift.State != "firing" || drift.Scope != "antenna:A1" || drift.Severity != "critical" {
		t.Errorf("drift alert = %+v", drift)
	}
	if math.Abs(drift.Value-0.05) > 0.01 {
		t.Errorf("drift alert value = %v λ, want ≈0.05", drift.Value)
	}
	if drift.Evidence == 0 {
		t.Error("drift alert carries no evidence traces")
	}
	if len(got.Drifts) != 1 || !got.Drifts[0].Valid || math.Abs(got.Drifts[0].DriftLambda-0.05) > 0.01 {
		t.Errorf("drift status = %+v", got.Drifts)
	}

	// Flight recorder over HTTP: NDJSON, one record per line, each with
	// trace events in the frozen schema.
	code, body = doGet(t, h, "/debug/flight/T1")
	if code != http.StatusOK {
		t.Fatalf("flight status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 {
		t.Fatal("flight NDJSON empty")
	}
	for _, line := range lines {
		var rec struct {
			Tag    string           `json:"tag"`
			Seq    uint64           `json:"seq"`
			TS     float64          `json:"t_s"`
			Window int              `json:"window"`
			Events []map[string]any `json:"events"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("flight line %q: %v", line, err)
		}
		if rec.Tag != "T1" || rec.Window == 0 || len(rec.Events) == 0 {
			t.Fatalf("flight record = %s", line)
		}
		if _, ok := rec.Events[0]["event"]; !ok {
			t.Fatalf("flight event missing schema field: %s", line)
		}
	}
	if code, _ := doGet(t, h, "/debug/flight/NOPE"); code != http.StatusNotFound {
		t.Errorf("flight for unknown tag: %d, want 404", code)
	}
}

// TestDashboard checks the HTML dashboard renders the gauges, drift table,
// alert table, and sparklines without external assets.
func TestDashboard(t *testing.T) {
	s, h := newHealthServer(t)
	center := geom.V3(0.1, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	feedChunks(t, s, h, "T1", driftSamples(center, lambda, 2.74, 200, 0))
	feedChunks(t, s, h, "T1", driftSamples(center, lambda, 2.74+0.05*4*math.Pi, 400, 2*time.Second))

	code, body := doGet(t, h, "/debug/dashboard")
	if code != http.StatusOK {
		t.Fatalf("dashboard status %d", code)
	}
	for _, want := range []string{
		"<!doctype html",
		"liond",
		"ingested",          // gauges
		"calibration_drift", // alert table
		"antenna:A1",
		"<svg", // sparklines
		"<polyline",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	for _, banned := range []string{"<script src", "<link rel", "http://", "https://"} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard references external asset: %q", banned)
		}
	}
}

// TestMonitorDisabled covers -monitor=false: health endpoints 404, readyz
// still answers, solve path runs monitor-free.
func TestMonitorDisabled(t *testing.T) {
	s, h := newHealthServer(t, "-monitor=false")
	if s.mon != nil {
		t.Fatal("monitor built despite -monitor=false")
	}
	if code, _ := doGet(t, h, "/v1/alerts"); code != http.StatusNotFound {
		t.Errorf("alerts with monitoring disabled: %d, want 404", code)
	}
	if code, _ := doGet(t, h, "/debug/flight/T1"); code != http.StatusNotFound {
		t.Errorf("flight with monitoring disabled: %d, want 404", code)
	}
	if code, _ := doGet(t, h, "/readyz"); code != http.StatusOK {
		t.Errorf("readyz with monitoring disabled: %d, want 200", code)
	}
	if code, body := doGet(t, h, "/debug/dashboard"); code != http.StatusOK || !strings.Contains(body, "monitoring false") {
		t.Errorf("dashboard with monitoring disabled: %d", code)
	}
	center := geom.V3(0.1, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	postSamples(t, h, "T1", driftSamples(center, lambda, 2.74, 200, 0))
	waitDrained(t, s)
	if got := s.eng.Metrics().Solves; got == 0 {
		t.Error("no solves with monitoring disabled")
	}
}

func TestParseFlagsHealth(t *testing.T) {
	if _, err := parseFlags([]string{"-cal-center", "1,2"}); err == nil {
		t.Error("2-component cal-center accepted")
	}
	if _, err := parseFlags([]string{"-cal-center", "a,b,c"}); err == nil {
		t.Error("non-numeric cal-center accepted")
	}
	cfg, err := parseFlags([]string{"-cal-center", "0.1, 0.8, 0", "-cal-offset", "2.74", "-antenna", "A7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.health.Calibrations) != 1 {
		t.Fatalf("calibrations = %+v", cfg.health.Calibrations)
	}
	cal := cfg.health.Calibrations[0]
	if cal.Antenna != "A7" || cal.Offset != 2.74 || cal.Center != geom.V3(0.1, 0.8, 0) {
		t.Errorf("calibration = %+v", cal)
	}
	if cfg.cfg.Antenna != "A7" {
		t.Errorf("stream antenna = %q", cfg.cfg.Antenna)
	}
	// Without -cal-center no calibration is armed.
	cfg, err = parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.health.Calibrations) != 0 {
		t.Errorf("calibrations without -cal-center: %+v", cfg.health.Calibrations)
	}
}
