package main

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
)

// getSLO fetches and parses /v1/slo from an in-process server.
func getSLO(t *testing.T, s *server) map[string]json.RawMessage {
	t.Helper()
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("/v1/slo status %d: %s", rec.Code, rec.Body.String())
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSLOEmptyWindowsExplicitZero: a daemon that has ingested nothing reports
// every dimension with an explicit zero count and zero quantiles — never
// omitted, never NaN, never whatever an empty window would interpolate.
func TestSLOEmptyWindowsExplicitZero(t *testing.T) {
	s := traceServer(t)
	doc := getSLO(t, s)
	for _, dim := range sloDimensions {
		raw, ok := doc[dim.key]
		if !ok {
			t.Errorf("idle /v1/slo omits %s, want explicit zero document", dim.key)
			continue
		}
		var q sloQuantiles
		if err := json.Unmarshal(raw, &q); err != nil {
			t.Errorf("%s does not parse: %v (%s)", dim.key, err, raw)
			continue
		}
		if q.Count != 0 || q.P50 != 0 || q.P95 != 0 || q.P99 != 0 {
			t.Errorf("idle %s = %+v, want all-zero", dim.key, q)
		}
	}
	if _, ok := doc["alert_latency_seconds"]; ok {
		t.Error("idle /v1/slo reports an alert latency")
	}
}

// TestSLOQuantilesArePercentiles feeds a known distribution into the ingest
// request histogram and checks /v1/slo reports the actual upper quantiles.
// This is the regression test for the percentile-argument bug where
// Quantile(0.95) — a fraction handed to a [0,100]-percentile API — reported
// roughly the p1 of every dimension.
func TestSLOQuantilesArePercentiles(t *testing.T) {
	s := traceServer(t)
	h, ok := s.eng.Registry().FindHistogram("lion_http_ingest_seconds")
	if !ok {
		t.Fatal("lion_http_ingest_seconds not registered")
	}
	// 1ms..100ms uniform: p50 ~ 50ms, p95 ~ 95ms, p99 ~ 99ms.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	doc := getSLO(t, s)
	var q sloQuantiles
	if err := json.Unmarshal(doc["ingest_request_seconds"], &q); err != nil {
		t.Fatalf("ingest_request_seconds missing: %v", err)
	}
	if q.Count != 100 {
		t.Fatalf("count = %d, want 100", q.Count)
	}
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 0.005 {
			t.Errorf("%s = %.4fs, want ~%.3fs", name, got, want)
		}
	}
	check("p50", q.P50, 0.050)
	check("p95", q.P95, 0.095)
	check("p99", q.P99, 0.099)
	if q.P95 <= q.P50 || q.P99 < q.P95 {
		t.Errorf("quantiles not ordered: %+v", q)
	}
}
