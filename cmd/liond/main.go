// Command liond is the real-time streaming localization daemon: it ingests
// timestamped phase reports over HTTP/JSON, maintains per-tag sliding
// windows, solves them continuously with the LION linear localizer, and
// serves the latest estimate per tag.
//
// Example session (see README.md for the full quickstart):
//
//	liond -addr :8077 &
//	lionsim -scenario linear -format ndjson |
//	    curl -s --data-binary @- http://localhost:8077/v1/samples
//	curl -s http://localhost:8077/v1/tags/T1/estimate
//
// Endpoints:
//
//	POST /v1/samples               NDJSON lines or {"samples":[...]}
//	GET  /v1/tags                  known tag ids
//	GET  /v1/tags/{id}/estimate    latest estimate for one tag
//	GET  /v1/alerts                health alerts + per-antenna drift status
//	GET  /v1/slo                   latency/freshness quantiles + alert latency
//	GET  /v1/recal/history         closed-loop recalibration audit log (-recal)
//	POST /v1/recal/trigger         run one recalibration now (-recal)
//	GET  /healthz                  liveness (always 200 while the process runs)
//	GET  /readyz                   readiness (503 while draining or a critical alert fires)
//	GET  /metrics                  Prometheus exposition (obs registry)
//	GET  /debug/trace/{id}         last solve trace for one tag, NDJSON (-trace)
//	GET  /debug/flight/{id}        flight-recorder traces for one tag, NDJSON
//	GET  /debug/pipespans          pipeline spans, NDJSON (?trace= filters)
//	GET  /debug/dashboard          dependency-free HTML health dashboard
//	GET  /debug/pprof/...          net/http/pprof profiles
//
// On SIGINT/SIGTERM the daemon stops accepting requests, gives every dirty
// window a final solve, waits for in-flight solves to drain, and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/health"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/recal"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stream"
	"github.com/rfid-lion/lion/internal/wire"
)

// logx is the daemon's structured logger; one JSON object per line on stderr.
var logx = obs.NewLogger(os.Stderr)

// maxIngestBody bounds one POST /v1/samples body (64 MiB).
const maxIngestBody = 64 << 20

// spanLogCap bounds the in-memory pipeline span ring served at
// /debug/pipespans; old spans are overwritten, never spilled.
const spanLogCap = 4096

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "liond:", err)
		os.Exit(1)
	}
}

type config struct {
	addr    string
	drain   time.Duration
	cfg     stream.Config
	monitor bool
	wire    bool
	health  health.Config

	// traceSample samples 1 in N locally-originated ingest batches for
	// end-to-end tracing (0 = off). Wire frames carrying a trace extension
	// from lionroute are always honoured regardless of this knob.
	traceSample int

	// Closed-loop recalibration (-recal): solver geometry the controller
	// re-solves with, plus its acceptance tuning.
	recal        bool
	recalMargin  float64
	recalMin     int
	lambda       float64
	intervals    []float64
	positiveSide bool
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("liond", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", ":8077", "listen address")
		lambda = fs.Float64("lambda", 0, "carrier wavelength, m (0 = paper's 920.625 MHz band)")
		solver = fs.String("solver", "line",
			"window solver: line (2-D lower-dimension), 2d, 3d")
		incremental = fs.Bool("incremental", false,
			"line solver only: per-tag incremental sliding-window sessions "+
				"(zero-alloc steady-state re-solves; implies -smooth 0)")
		intervals = fs.String("intervals", "0.2",
			"comma-separated pairing intervals for the line solver, m")
		stride = fs.Int("stride", 0,
			"pairing stride for the 2d/3d solvers (0 = quarter window)")
		side = fs.Bool("positive-side", true,
			"line solver: target on the +90° side of the scan direction")
		window = fs.Int("window", 256, "sliding window capacity, samples")
		span   = fs.Duration("span", 0, "sliding window time-span (0 = unbounded)")
		minS   = fs.Int("min", 8, "minimum window length before solving")
		every  = fs.Int("every", 16, "solve every N accepted samples")
		smooth = fs.Int("smooth", 9, "phase smoothing window (odd, 0 = off)")
		reject = fs.Bool("reject-newest", false,
			"refuse samples at a full window instead of evicting the oldest")
		workers = fs.Int("workers", 0, "solve pool size (0 = GOMAXPROCS)")
		timeout = fs.Duration("solve-timeout", 0, "per-window solve timeout (0 = none)")
		drain   = fs.Duration("drain", 10*time.Second, "shutdown drain timeout")
		trace   = fs.Bool("trace", false,
			"record each window's solve trace, served at /debug/trace/{tag}")
		monitor = fs.Bool("monitor", true,
			"run the solve-health monitor (alerts, flight recorder, /v1/alerts)")
		wireOK = fs.Bool("wire", true,
			"accept binary wire frames (Content-Type "+wire.ContentType+") on POST /v1/samples")
		antenna = fs.String("antenna", "A1",
			"antenna id this daemon ingests for (alert scope and drift gauge label)")
		calCenter = fs.String("cal-center", "",
			"calibrated antenna phase center as x,y,z metres (enables drift detection)")
		calOffset = fs.Float64("cal-offset", 0,
			"calibrated phase offset Δθ = θ_T + θ_R, radians")
		driftFrac = fs.Float64("drift-frac", 0.02,
			"drift alert threshold as a fraction of the wavelength")
		driftWindow = fs.Int("drift-window", 256,
			"sliding sample window of the drift re-estimate")
		holdDown = fs.Duration("hold-down", 2*time.Second,
			"drift must persist this long (stream time) before the alert fires")
		recalOn = fs.Bool("recal", false,
			"closed-loop recalibration: when the drift alert fires, re-solve the "+
				"antenna calibration from live windows and hot-swap the profile "+
				"(requires -cal-center and -monitor)")
		recalMargin = fs.Float64("recal-margin", 0.05,
			"accept a recalibration candidate only if it improves the held-out "+
				"residual by this fraction")
		recalMin = fs.Int("recal-min", 64,
			"minimum live-window samples a recalibration re-solve needs")
		traceSample = fs.Int("trace-sample", 0,
			"pipeline tracing: sample 1 in N local ingest batches (0 = off; "+
				"traced wire frames from lionroute are always honoured)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	lam := *lambda
	if lam == 0 {
		lam = rf.DefaultBand().Wavelength()
	}
	var ivs []float64
	for _, part := range strings.Split(*intervals, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("interval %q: %w", part, err)
		}
		ivs = append(ivs, v)
	}
	var (
		sv      stream.Solver
		factory func() stream.SessionSolver
	)
	smoothW := *smooth
	if *incremental {
		if *solver != "line" {
			return nil, fmt.Errorf("-incremental requires -solver line, got %q", *solver)
		}
		if len(ivs) == 0 {
			return nil, errors.New("line solver needs at least one interval")
		}
		smoothSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "smooth" {
				smoothSet = true
			}
		})
		if smoothSet && *smooth > 1 {
			return nil, errors.New("-incremental is incompatible with -smooth: " +
				"centred smoothing rewrites the window overlap and defeats slide detection")
		}
		smoothW = 0
		var err error
		factory, err = stream.IncrementalLine2DFactory(lam, ivs, *side, core.DefaultSolveOptions())
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		sv, err = buildSolver(*solver, lam, ivs, *stride, *side)
		if err != nil {
			return nil, err
		}
	}
	policy := stream.EvictOldest
	if *reject {
		policy = stream.RejectNewest
	}
	hcfg := health.Config{Rules: health.DefaultRules()}
	for i := range hcfg.Rules {
		if hcfg.Rules[i].Signal == health.SignalDrift {
			hcfg.Rules[i].Threshold = *driftFrac
			hcfg.Rules[i].HoldDown = *holdDown
		}
	}
	if *calCenter != "" {
		center, err := parseVec3(*calCenter)
		if err != nil {
			return nil, fmt.Errorf("cal-center: %w", err)
		}
		hcfg.Calibrations = []health.Calibration{{
			Antenna: *antenna,
			Center:  center,
			Offset:  *calOffset,
			Lambda:  lam,
			Window:  *driftWindow,
		}}
	}
	hcfg.Logger = logx
	if *recalOn {
		if len(hcfg.Calibrations) == 0 {
			return nil, errors.New("-recal needs -cal-center (a calibration to recalibrate)")
		}
		if !*monitor {
			return nil, errors.New("-recal needs the monitor (-monitor=true) for drift alerts")
		}
	}
	if *traceSample < 0 {
		return nil, fmt.Errorf("-trace-sample must be >= 0, got %d", *traceSample)
	}
	return &config{
		addr:    *addr,
		drain:   *drain,
		monitor: *monitor,
		wire:    *wireOK,
		health:  hcfg,

		traceSample: *traceSample,

		recal:        *recalOn,
		recalMargin:  *recalMargin,
		recalMin:     *recalMin,
		lambda:       lam,
		intervals:    ivs,
		positiveSide: *side,
		cfg: stream.Config{
			WindowSize:    *window,
			WindowSpan:    *span,
			MinSamples:    *minS,
			SolveEvery:    *every,
			Smooth:        smoothW,
			Policy:        policy,
			Workers:       *workers,
			JobTimeout:    *timeout,
			Solver:        sv,
			SolverFactory: factory,
			TraceSolves:   *trace,
			Antenna:       *antenna,
		},
	}, nil
}

// parseVec3 parses "x,y,z" into a vector.
func parseVec3(s string) (geom.Vec3, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return geom.Vec3{}, fmt.Errorf("want x,y,z, got %q", s)
	}
	var out [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Vec3{}, err
		}
		out[i] = v
	}
	return geom.V3(out[0], out[1], out[2]), nil
}

func buildSolver(name string, lambda float64, intervals []float64, stride int, positiveSide bool) (stream.Solver, error) {
	opts := core.DefaultSolveOptions()
	switch name {
	case "line":
		if len(intervals) == 0 {
			return nil, errors.New("line solver needs at least one interval")
		}
		return stream.Line2DSolver(lambda, intervals, positiveSide, opts), nil
	case "2d":
		return stream.Free2DSolver(lambda, stride, opts), nil
	case "3d":
		return stream.Free3DSolver(lambda, stride, opts), nil
	default:
		return nil, fmt.Errorf("unknown solver %q (want line, 2d or 3d)", name)
	}
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	eng, mon, ctrl, err := buildPipeline(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logx.Info("listening",
		"addr", ln.Addr().String(),
		"window", cfg.cfg.WindowSize,
		"every", cfg.cfg.SolveEvery,
		"workers", cfg.cfg.Workers,
		"trace", cfg.cfg.TraceSolves,
		"monitor", mon != nil,
		"calibrations", len(cfg.health.Calibrations),
		"recal", ctrl != nil)
	return serve(ctx, ln, eng, mon, ctrl, cfg)
}

// buildPipeline assembles the shared registry, the health monitor (unless
// disabled), the stream engine wired to both, and (with -recal) the
// closed-loop recalibration controller subscribed to the monitor's alert
// transitions. A configured calibration also becomes the engine's initial
// antenna profile, so solves run on offset-corrected phases from the start.
func buildPipeline(cfg *config) (*stream.Engine, *health.Monitor, *recal.Controller, error) {
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	var mon *health.Monitor
	if cfg.monitor {
		cfg.health.Registry = reg
		var err error
		if mon, err = health.New(cfg.health); err != nil {
			return nil, nil, nil, err
		}
	}
	if len(cfg.health.Calibrations) > 0 {
		cal := cfg.health.Calibrations[0]
		cfg.cfg.Profile = &stream.Profile{
			Antenna: cal.Antenna, Center: cal.Center, Offset: cal.Offset, Lambda: cal.Lambda,
		}
	}
	cfg.cfg.Registry = reg
	cfg.cfg.Monitor = mon
	// The span log is always wired in: recording is gated per batch by the
	// trace context, so an untraced steady state pays nothing for it, and a
	// router that negotiated the wire trace extension can light it up without
	// any local flag.
	cfg.cfg.Spans = obs.NewSpanLog("liond", spanLogCap)
	eng, err := stream.New(cfg.cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	var ctrl *recal.Controller
	if cfg.recal {
		ctrl, err = recal.New(recal.Config{
			Engine:       eng,
			Monitor:      mon,
			Antenna:      cfg.cfg.Antenna,
			Lambda:       cfg.lambda,
			Margin:       cfg.recalMargin,
			MinSamples:   cfg.recalMin,
			Intervals:    cfg.intervals,
			PositiveSide: cfg.positiveSide,
			Registry:     reg,
			Logger:       logx,
		})
		if err != nil {
			eng.Close(context.Background())
			return nil, nil, nil, err
		}
		mon.SetOnTransition(ctrl.OnTransition)
	}
	return eng, mon, ctrl, nil
}

// serve runs the HTTP server on ln until ctx is cancelled, then shuts down
// gracefully: readiness flips to draining first (load balancers stop routing
// here), the listener closes so no new samples arrive, and the engine drains
// every in-flight and dirty window before serve returns.
func serve(ctx context.Context, ln net.Listener, eng *stream.Engine, mon *health.Monitor, ctrl *recal.Controller, cfg *config) error {
	s := newServer(eng, mon, ctrl, cfg)
	drain := cfg.drain
	srv := &http.Server{
		Handler:           s.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		ctrl.Close()
		eng.Close(context.Background())
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	// Stop the recal worker before draining so no profile swap lands in the
	// middle of the final solves.
	ctrl.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logx.Warn("http shutdown", "err", err)
	}
	if err := eng.Close(shutCtx); err != nil && !errors.Is(err, stream.ErrClosed) {
		return fmt.Errorf("drain: %w", err)
	}
	m := eng.Metrics()
	logx.Info("drained",
		"ingested", m.Ingested,
		"solves", m.Solves,
		"solve_errors", m.SolveErrors,
		"dropped", m.DroppedOverflow+m.DroppedAge)
	return nil
}

type server struct {
	eng      *stream.Engine
	mon      *health.Monitor   // nil when -monitor=false
	ctrl     *recal.Controller // nil without -recal
	codecs   []dataset.Codec   // ingest codecs; first is the fallback (NDJSON)
	start    time.Time
	draining atomic.Bool

	// Pipeline tracing: the engine's span ring, the local 1-in-N sampler
	// (nil without -trace-sample), and whether /readyz advertises FlagTrace
	// decode capability to lionroute.
	spans        *obs.SpanLog
	sampler      *obs.Sampler
	wireTrace    bool
	ingestDecode *obs.Histogram
	ingestReq    *obs.Histogram
}

func newServer(eng *stream.Engine, mon *health.Monitor, ctrl *recal.Controller, cfg *config) *server {
	s := &server{
		eng: eng, mon: mon, ctrl: ctrl, start: time.Now(),
		spans:     cfg.cfg.Spans,
		wireTrace: cfg.wire,
	}
	if cfg.traceSample > 0 {
		s.sampler = obs.NewSampler(cfg.traceSample, uint64(s.start.UnixNano()))
	}
	s.codecs = []dataset.Codec{dataset.NDJSON{}}
	if cfg.wire {
		s.codecs = append(s.codecs, wire.Codec{})
	}
	s.ingestDecode = eng.Registry().Histogram("lion_ingest_decode_seconds",
		"Time decoding one POST /v1/samples body, wire or NDJSON.", obs.DefBuckets)
	s.ingestReq = eng.Registry().Histogram("lion_http_ingest_seconds",
		"Wall time of one POST /v1/samples request, receive to response.", obs.DefBuckets)
	eng.Registry().GaugeFunc("lion_uptime_seconds", "Seconds since the daemon started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/samples", s.handleIngest)
	mux.HandleFunc("GET /v1/tags", s.handleTags)
	mux.HandleFunc("GET /v1/tags/{id}/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/recal/history", s.handleRecalHistory)
	mux.HandleFunc("POST /v1/recal/trigger", s.handleRecalTrigger)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /metrics", s.eng.Registry().Handler())
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /debug/flight/{id}", s.handleFlight)
	mux.HandleFunc("GET /debug/pipespans", s.handlePipeSpans)
	mux.HandleFunc("GET /debug/dashboard", s.handleDashboard)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	recv := time.Now()
	// The full request wall time — the server-side twin of a load
	// generator's client-observed ingest latency (error paths included,
	// since the client's clock cannot tell them apart).
	defer func() { s.ingestReq.Observe(time.Since(recv).Seconds()) }()
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	codec := dataset.SelectCodec(s.codecs, r.Header.Get("Content-Type"))
	var (
		samples []dataset.TaggedSample
		ext     *wire.Ext
		err     error
	)
	if _, isWire := codec.(wire.Codec); isWire {
		samples, ext, err = wire.DecodeIngestExt(body)
	} else {
		samples, err = codec.Decode(body)
	}
	decodeTook := time.Since(recv)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Trace context and staleness origin: a wire trace extension from the
	// router wins (its receive clock started this batch's staleness budget);
	// otherwise the local sampler decides and the origin is our own accept.
	var tc obs.TraceContext
	origin := recv
	if ext != nil {
		tc = obs.TraceContext{ID: ext.TraceID, Sampled: true}
		origin = time.Unix(0, ext.RouterRecvUnixNano)
	} else if s.sampler != nil {
		tc = s.sampler.Next()
	}
	s.ingestDecode.ObserveExemplar(decodeTook.Seconds(), tc)
	s.spans.Record(tc, "ingest_decode", "", recv, decodeTook)
	// The whole batch enters the engine under one lock acquisition; bad
	// samples (RejectNewest overflow, non-finite floats) are counted and
	// skipped so one cannot poison the rest of the batch.
	batch := make([]stream.Tagged, len(samples))
	for i, ts := range samples {
		batch[i] = stream.Tagged{Tag: ts.Tag, Sample: stream.FromSim(ts.Sample())}
	}
	enq := time.Now()
	accepted, dropped, err := s.eng.IngestTaggedTraced(batch, tc, origin)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.spans.Record(tc, "engine_enqueue", "", enq, time.Since(enq))
	resp := map[string]any{"accepted": accepted, "dropped": dropped}
	if tc.Sampled {
		resp["trace_id"] = obs.TraceIDString(tc.ID)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleTags(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tags": s.eng.Tags()})
}

// estimateJSON is the wire form of one estimate. Unknown coordinates (NaN)
// marshal as null.
type estimateJSON struct {
	Tag       string   `json:"tag"`
	Seq       uint64   `json:"seq"`
	Window    int      `json:"window"`
	FromS     float64  `json:"from_s"`
	ToS       float64  `json:"to_s"`
	X         *float64 `json:"x_m"`
	Y         *float64 `json:"y_m"`
	Z         *float64 `json:"z_m"`
	RefDist   *float64 `json:"ref_distance_m,omitempty"`
	RMSResid  *float64 `json:"rms_residual,omitempty"`
	LatencyMS float64  `json:"solve_latency_ms"`
	// ProfileVersion names the antenna profile that corrected this window
	// (0 = no profile), so operators can tell pre- from post-swap estimates.
	ProfileVersion uint64 `json:"profile_version,omitempty"`
	Error          string `json:"error,omitempty"`
}

func fnum(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	tag := r.PathValue("id")
	est, ok := s.eng.Latest(tag)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no estimate for tag %q", tag))
		return
	}
	out := estimateJSON{
		Tag:            est.Tag,
		Seq:            est.Seq,
		Window:         est.Window,
		FromS:          est.From.Seconds(),
		ToS:            est.To.Seconds(),
		LatencyMS:      float64(est.Latency) / float64(time.Millisecond),
		ProfileVersion: est.ProfileVersion,
	}
	if est.Err != nil {
		out.Error = est.Err.Error()
	}
	if sol := est.Solution; sol != nil {
		out.X = fnum(sol.Position.X)
		out.Y = fnum(sol.Position.Y)
		out.Z = fnum(sol.Position.Z)
		out.RefDist = fnum(sol.RefDistance)
		out.RMSResid = fnum(sol.RMSResidual)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleTrace serves the tag's last solve trace as NDJSON. Traces exist only
// when the daemon runs with -trace.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tag := r.PathValue("id")
	events, ok := s.eng.LastTrace(tag)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no trace for tag %q (is liond running with -trace?)", tag))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	obs.WriteEventsNDJSON(w, events)
}
