// Command lionroute is the cluster front door: it consistent-hashes tag ids
// onto a static ring of liond shards, forwards ingest batches over
// persistent connections with per-shard bounded queues, and routes queries
// to the owning shard.
//
// Example session (see README.md "Running a cluster"):
//
//	liond -addr :9001 & liond -addr :9002 &
//	cat > cluster.json <<'EOF'
//	{"shards": [
//	  {"id": "s1", "url": "http://127.0.0.1:9001"},
//	  {"id": "s2", "url": "http://127.0.0.1:9002"}
//	]}
//	EOF
//	lionroute -addr :8080 -config cluster.json &
//	lionsim -scenario linear -format wire |
//	    curl -s -H 'Content-Type: application/x-lion-wire' \
//	         --data-binary @- http://localhost:8080/v1/samples
//	curl -s http://localhost:8080/v1/tags/T1/estimate
//
// Endpoints:
//
//	POST /v1/samples               NDJSON or binary wire frames
//	GET  /v1/tags                  union of tag ids across live shards
//	GET  /v1/tags/{id}/estimate    proxied to the shard owning the tag
//	GET  /v1/alerts                every live shard's alert document
//	GET  /v1/cluster               shard states, queue depths
//	GET  /v1/slo                   cluster SLO rollup (worst shard per dimension)
//	GET  /v1/trace/{id}            assembled cross-process pipeline trace
//	GET  /debug/pipespans          router-side spans, NDJSON (?trace= filters)
//	GET  /healthz                  router liveness
//	GET  /readyz                   503 until at least one shard takes ingest
//	GET  /metrics                  lion_cluster_* Prometheus exposition
//
// On SIGINT/SIGTERM the router stops accepting ingest, flushes every
// shard's forward queue, and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rfid-lion/lion/internal/cluster"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/wire"
)

// logx is the router's structured logger; one JSON object per line on stderr.
var logx = obs.NewLogger(os.Stderr)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lionroute:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lionroute", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		cfgPath = fs.String("config", "", "cluster config JSON (required; see DESIGN.md section 12)")
		forward = fs.String("forward", "wire",
			"codec for shard-bound batches: wire (binary frames) or ndjson")
		drain       = fs.Duration("drain", 10*time.Second, "shutdown queue-flush timeout")
		traceSample = fs.Int("trace-sample", 0,
			"pipeline tracing: sample 1 in N ingest requests end-to-end (0 = off); "+
				"sampled traces are served at /v1/trace/{id}")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return errors.New("-config is required")
	}
	cfg, err := cluster.LoadConfig(*cfgPath)
	if err != nil {
		return err
	}
	var codec dataset.Codec
	switch *forward {
	case "wire":
		codec = wire.Codec{}
	case "ndjson":
		codec = dataset.NDJSON{}
	default:
		return fmt.Errorf("unknown -forward codec %q (want wire or ndjson)", *forward)
	}

	if *traceSample < 0 {
		return fmt.Errorf("-trace-sample must be >= 0, got %d", *traceSample)
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	opts := cluster.Options{
		Registry: reg,
		Codec:    codec,
		Logger:   logx,
	}
	if *traceSample > 0 {
		opts.Sampler = obs.NewSampler(*traceSample, uint64(time.Now().UnixNano()))
		opts.Spans = obs.NewSpanLog("lionroute", 4096)
	}
	rt, err := cluster.New(*cfg, opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logx.Info("listening",
		"addr", ln.Addr().String(),
		"shards", len(cfg.Shards),
		"forward", codec.Name(),
		"queue_samples", cfg.QueueSamples,
		"config", *cfgPath)

	srv := &http.Server{
		Handler:           rt.Routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		rt.Close(context.Background())
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logx.Warn("http shutdown", "err", err)
	}
	// Close flushes every queued batch to its shard before returning, so a
	// clean shutdown loses nothing that was acknowledged to a client.
	if err := rt.Close(shutCtx); err != nil && !errors.Is(err, cluster.ErrClosed) {
		return fmt.Errorf("flush queues: %w", err)
	}
	logx.Info("drained", "shards", len(cfg.Shards))
	return nil
}
