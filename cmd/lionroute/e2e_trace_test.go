package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/wire"
)

// postTraced posts one wire batch through the router and returns the trace id
// the sampler assigned to the request.
func postTraced(t *testing.T, base string, batch []dataset.TaggedSample) string {
	t.Helper()
	var buf bytes.Buffer
	if err := (wire.Codec{}).Encode(&buf, batch); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/samples", wire.ContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		Accepted int    `json:"accepted"`
		TraceID  string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || res.Accepted != len(batch) {
		t.Fatalf("traced ingest: status %d accepted %d/%d", resp.StatusCode, res.Accepted, len(batch))
	}
	if res.TraceID == "" {
		t.Fatal("-trace-sample 1 ingest returned no trace id")
	}
	return res.TraceID
}

// traceDoc is the /v1/trace/{id} response shape these tests consume.
type traceDoc struct {
	TraceID string `json:"trace_id"`
	Spans   []struct {
		Service string `json:"service"`
		Stage   string `json:"stage"`
		Start   int64  `json:"start_unix_ns"`
		Dur     int64  `json:"duration_ns"`
	} `json:"spans"`
}

// TestPipelineTraceE2E proves the tracing contract across real process
// boundaries: a router started with -trace-sample 1 samples an ingest batch,
// negotiates the wire trace extension with its shards via /readyz, and
// GET /v1/trace/{id} then assembles one trace whose spans come from BOTH
// services — the router's decode/queue/forward stages and the shard's
// decode/enqueue/solve/publish stages — on a single absolute time axis.
func TestPipelineTraceE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	liond, lionroute := binaries(t)
	shards := []*proc{
		startProc(t, liond, shardFlags...),
		startProc(t, liond, shardFlags...),
	}
	for _, p := range shards {
		waitReady(t, p.base())
	}
	router := startProc(t, lionroute,
		"-addr", "127.0.0.1:0", "-config", writeClusterConfig(t, shards), "-trace-sample", "1")
	waitReady(t, router.base())

	// The router forwards trace extensions only after its health probe has
	// read the shard's wire_trace advertisement, and the shard-side solve
	// spans land only once the batch's solves publish — so keep feeding
	// sampled batches (fresh tag each pass, 64-sample chunks to cross the
	// -every 32 solve cadence) until one trace assembles end to end.
	wantShard := map[string]bool{
		"ingest_decode": true, "engine_enqueue": true,
		"queue_wait": true, "solve": true, "publish": true,
	}
	var full traceDoc
	deadline := time.Now().Add(30 * time.Second)
	found := false
	for pass := 0; !found; pass++ {
		if time.Now().After(deadline) {
			t.Fatalf("no end-to-end trace assembled; last doc %+v", full)
		}
		trace := tagTrace(t, fmt.Sprintf("TRACE-%d", pass), int64(42+pass))
		for i := 0; i+64 <= len(trace) && !found; i += 64 {
			id := postTraced(t, router.base(), trace[i:i+64])
			waitQueuesDrained(t, router.base())
			poll := time.Now().Add(2 * time.Second)
			for time.Now().Before(poll) {
				var doc traceDoc
				if getJSON(t, router.base()+"/v1/trace/"+id, &doc) == http.StatusOK {
					got := map[string]bool{}
					for _, sp := range doc.Spans {
						if sp.Service == "liond" {
							got[sp.Stage] = true
						}
					}
					done := true
					for stage := range wantShard {
						done = done && got[stage]
					}
					if done {
						full, found = doc, true
						break
					}
					full = doc
				}
				time.Sleep(25 * time.Millisecond)
			}
		}
	}

	// The assembled trace spans both processes, in pipeline order on the
	// shared clock.
	services := map[string]map[string]bool{}
	for i, sp := range full.Spans {
		if services[sp.Service] == nil {
			services[sp.Service] = map[string]bool{}
		}
		services[sp.Service][sp.Stage] = true
		if i > 0 && sp.Start < full.Spans[i-1].Start {
			t.Errorf("spans not sorted on the shared time axis: %+v", full.Spans)
		}
		if sp.Dur < 0 {
			t.Errorf("negative span duration: %+v", sp)
		}
	}
	for _, stage := range []string{"ingest_decode", "queue_wait", "forward"} {
		if !services["lionroute"][stage] {
			t.Errorf("router side missing %q span: %v", stage, services["lionroute"])
		}
	}
	for stage := range wantShard {
		if !services["liond"][stage] {
			t.Errorf("shard side missing %q span: %v", stage, services["liond"])
		}
	}

	// The cluster SLO rollup reflects the traffic: staleness and solve
	// latency dimensions carry observations from the shards.
	var slo struct {
		Cluster map[string]json.RawMessage `json:"cluster"`
	}
	if getJSON(t, router.base()+"/v1/slo", &slo) != http.StatusOK {
		t.Fatal("/v1/slo unavailable")
	}
	for _, dim := range []string{"staleness_seconds", "solve_latency_seconds", "queue_wait_seconds"} {
		var q struct {
			P50   float64 `json:"p50"`
			Count uint64  `json:"count"`
		}
		if raw, ok := slo.Cluster[dim]; !ok || json.Unmarshal(raw, &q) != nil || q.Count == 0 {
			t.Errorf("cluster SLO rollup missing %s: %s", dim, slo.Cluster[dim])
		}
	}

	// At least one shard exposes the trace id as a staleness exemplar.
	sawExemplar := false
	for _, p := range shards {
		resp, err := http.Get(p.base() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `trace_id="`+full.TraceID+`"`) {
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Error("no shard exposition carries the trace exemplar")
	}

	stopProc(t, router)
	for _, p := range shards {
		stopProc(t, p)
	}
}
