package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/cluster"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
	"github.com/rfid-lion/lion/internal/wire"
)

// The e2e harness builds the real liond and lionroute binaries once per test
// run and drives them as separate OS processes, which is the only way to
// prove the cluster contract end to end: codec negotiation over real HTTP,
// per-shard placement, and bit-identical estimates versus a single node.

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func binaries(t *testing.T) (liond, lionroute string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lion-e2e-bin")
		if err != nil {
			buildErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir,
			"github.com/rfid-lion/lion/cmd/liond",
			"github.com/rfid-lion/lion/cmd/lionroute")
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build: %v\n%s", err, out)
			return
		}
		binDir = dir
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(binDir, "liond"), filepath.Join(binDir, "lionroute")
}

// proc is one daemon subprocess whose listen address was scraped from its
// structured "listening" log line.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

func (p *proc) base() string { return "http://" + p.addr }

// startProc launches bin and waits for its "listening" log line.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, addr: addr}
	case <-time.After(15 * time.Second):
		t.Fatalf("%s never logged its listen address", bin)
		return nil
	}
}

// stopProc sends SIGTERM and requires a clean (exit 0) drain.
func stopProc(t *testing.T, p *proc) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exited uncleanly: %v", err)
		}
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill()
		t.Fatal("process did not drain after SIGTERM")
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

// shardFlags is the deterministic solver configuration every node in these
// tests runs with; the single-node reference must match the shards exactly.
var shardFlags = []string{
	"-addr", "127.0.0.1:0",
	"-intervals", "0.1", "-every", "32", "-workers", "1", "-monitor=false",
}

func writeClusterConfig(t *testing.T, shards []*proc) string {
	t.Helper()
	cfg := cluster.Config{}
	for i, p := range shards {
		cfg.Shards = append(cfg.Shards, cluster.ShardConfig{
			ID:  fmt.Sprintf("s%d", i+1),
			URL: p.base(),
		})
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// tagTrace generates one deterministic scan for a tag, truncated to a
// multiple of the solve cadence so the final dispatched solve covers the
// last sample and the published estimate is a fixed point.
func tagTrace(t *testing.T, tag string, seed int64) []dataset.TaggedSample {
	t.Helper()
	env, err := sim.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := sim.NewReader(env, sim.ReaderConfig{RateHz: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ant := &sim.Antenna{
		PhysicalCenter:    geom.V3(0.1, 0.8, 0),
		PhaseCenterOffset: geom.V3(0.02, -0.015, 0),
		PhaseOffset:       2.74,
	}
	trj, err := traject.NewLinear(geom.V3(-0.6, 0, 0), geom.V3(0.6, 0, 0), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, &sim.Tag{PhaseOffset: 0.4}, trj)
	if err != nil {
		t.Fatal(err)
	}
	samples = samples[:len(samples)-len(samples)%32]
	out := make([]dataset.TaggedSample, len(samples))
	for i, sm := range samples {
		out[i] = dataset.Tagged(tag, sm)
	}
	return out
}

// interleave round-robins the per-tag traces into one mixed stream, the
// arrival pattern a real reader field produces.
func interleave(traces [][]dataset.TaggedSample) []dataset.TaggedSample {
	var out []dataset.TaggedSample
	for i := 0; ; i++ {
		alive := false
		for _, tr := range traces {
			if i < len(tr) {
				out = append(out, tr[i])
				alive = true
			}
		}
		if !alive {
			return out
		}
	}
}

func postWire(t *testing.T, base string, batch []dataset.TaggedSample) {
	t.Helper()
	var buf bytes.Buffer
	if err := (wire.Codec{}).Encode(&buf, batch); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/samples", wire.ContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res struct {
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
		Dropped  int `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || res.Accepted != len(batch) {
		t.Fatalf("ingest to %s: status %d, %+v (want accepted=%d)", base, resp.StatusCode, res, len(batch))
	}
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: %v in %s", url, err, body)
		}
	}
	return resp.StatusCode
}

// waitQueuesDrained polls /v1/cluster until no shard has queued samples.
func waitQueuesDrained(t *testing.T, routerBase string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var doc struct {
			Shards []cluster.ShardStatus `json:"shards"`
		}
		if getJSON(t, routerBase+"/v1/cluster", &doc) == http.StatusOK {
			pending := int64(0)
			for _, s := range doc.Shards {
				pending += s.Queued
			}
			if pending == 0 {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("forward queues never drained")
}

// estimate fetches one tag's estimate and strips the per-process fields
// (seq counts coalesced dispatches, latency is wall time) so what remains
// must be bit-identical across deployments.
func estimate(t *testing.T, base, tag string) (map[string]any, bool) {
	t.Helper()
	var doc map[string]any
	code := getJSON(t, base+"/v1/tags/"+tag+"/estimate", &doc)
	if code == http.StatusNotFound {
		return nil, false
	}
	if code != http.StatusOK {
		t.Fatalf("estimate %s/%s: status %d", base, tag, code)
	}
	delete(doc, "seq")
	delete(doc, "solve_latency_ms")
	return doc, true
}

// TestClusterE2E is the full harness: three shard processes behind a router
// process, a mixed eight-tag stream ingested as binary wire frames through
// the router and replayed into a fourth, single liond. Tags must land on
// exactly the shard the ring predicts, and every tag's final estimate must
// be bit-identical between the cluster and the single node.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	liond, lionroute := binaries(t)

	var shards []*proc
	for i := 0; i < 3; i++ {
		shards = append(shards, startProc(t, liond, shardFlags...))
	}
	single := startProc(t, liond, shardFlags...)
	for _, p := range append(append([]*proc{}, shards...), single) {
		waitReady(t, p.base())
	}
	cfgPath := writeClusterConfig(t, shards)
	router := startProc(t, lionroute, "-addr", "127.0.0.1:0", "-config", cfgPath)
	waitReady(t, router.base())

	tags := []string{"E2E-A", "E2E-B", "E2E-C", "E2E-D", "E2E-E", "E2E-F", "E2E-G", "E2E-H"}
	var traces [][]dataset.TaggedSample
	for i, tag := range tags {
		traces = append(traces, tagTrace(t, tag, int64(100+i)))
	}
	stream := interleave(traces)

	// Same chunked stream into the router (wire codec) and the single node.
	const chunk = 500
	for i := 0; i < len(stream); i += chunk {
		batch := stream[i:min(i+chunk, len(stream))]
		postWire(t, router.base(), batch)
		postWire(t, single.base(), batch)
	}
	waitQueuesDrained(t, router.base())

	// Placement: every tag must be known to exactly the shard the ring
	// predicts, and to no other.
	ring, err := cluster.NewRing([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range tags {
		owner := ring.Owner(tag)
		for i, p := range shards {
			var doc struct {
				Tags []string `json:"tags"`
			}
			deadline := time.Now().Add(10 * time.Second)
			for {
				getJSON(t, p.base()+"/v1/tags", &doc)
				has := false
				for _, got := range doc.Tags {
					if got == tag {
						has = true
					}
				}
				if i == owner && !has {
					if time.Now().After(deadline) {
						t.Fatalf("tag %s missing from owning shard s%d (tags %v)", tag, i+1, doc.Tags)
					}
					time.Sleep(20 * time.Millisecond)
					continue
				}
				if i != owner && has {
					t.Fatalf("tag %s leaked onto shard s%d (owner s%d)", tag, i+1, owner+1)
				}
				break
			}
		}
	}

	// Estimates through the router must be bit-identical to the single node.
	for _, tag := range tags {
		lastTime := traces[0][0].TimeS // placeholder, replaced below
		for _, tr := range traces {
			if tr[0].Tag == tag {
				lastTime = tr[len(tr)-1].TimeS
			}
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			viaRouter, ok1 := estimate(t, router.base(), tag)
			viaSingle, ok2 := estimate(t, single.base(), tag)
			if ok1 && ok2 &&
				viaRouter["to_s"] == lastTime && viaSingle["to_s"] == lastTime &&
				reflect.DeepEqual(viaRouter, viaSingle) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tag %s estimates never converged:\nrouter: %v\nsingle: %v (want to_s=%v)",
					tag, viaRouter, viaSingle, lastTime)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// Router metrics account for every forwarded sample.
	resp, err := http.Get(router.base() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf("lion_cluster_forwarded_samples_total %d", len(stream))
	if !bytes.Contains(metrics, []byte(want)) {
		t.Errorf("router metrics missing %q", want)
	}

	// Clean shutdown, router first so queues flush against live shards.
	stopProc(t, router)
	for _, p := range shards {
		stopProc(t, p)
	}
	stopProc(t, single)
}

// TestClusterSmoke is the light harness behind `make cluster-smoke`: a
// router and two shards, one wire ingest, a routed query, a fanned query,
// and a clean SIGTERM shutdown of all three processes.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke")
	}
	liond, lionroute := binaries(t)
	shards := []*proc{
		startProc(t, liond, shardFlags...),
		startProc(t, liond, shardFlags...),
	}
	for _, p := range shards {
		waitReady(t, p.base())
	}
	router := startProc(t, lionroute, "-addr", "127.0.0.1:0", "-config", writeClusterConfig(t, shards))
	waitReady(t, router.base())

	trace := tagTrace(t, "SMOKE-1", 7)
	postWire(t, router.base(), trace)
	waitQueuesDrained(t, router.base())

	deadline := time.Now().Add(15 * time.Second)
	for {
		if doc, ok := estimate(t, router.base(), "SMOKE-1"); ok {
			if doc["error"] == nil && doc["x_m"] != nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no estimate through the router")
		}
		time.Sleep(25 * time.Millisecond)
	}
	var tagsDoc struct {
		Tags []string `json:"tags"`
	}
	if getJSON(t, router.base()+"/v1/tags", &tagsDoc) != http.StatusOK || len(tagsDoc.Tags) != 1 {
		t.Fatalf("fanned tag listing: %+v", tagsDoc)
	}

	stopProc(t, router)
	for _, p := range shards {
		stopProc(t, p)
	}
}
