package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/benchfmt"
	"github.com/rfid-lion/lion/internal/cluster"
	"github.com/rfid-lion/lion/internal/load"
	"github.com/rfid-lion/lion/internal/wire"
)

func TestRunFlags(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer

	if err := run(ctx, []string{"-list"}, &buf); err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, name := range []string{"portal", "conveyor", "dockdoor", "turntable", "smoke"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output missing scenario %q:\n%s", name, buf.String())
		}
	}

	if err := run(ctx, nil, &buf); err == nil || !strings.Contains(err.Error(), "-target") {
		t.Errorf("missing -target: err = %v", err)
	}
	if err := run(ctx, []string{"-target", "http://x", "-scenario", "nope"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown scenario: err = %v", err)
	}
	if err := run(ctx, []string{"-target", "http://x", "-format", "xml"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "xml") {
		t.Errorf("unknown format: err = %v", err)
	}
}

// The e2e tests below drive the real liond and lionroute binaries as
// subprocesses, mirroring the harness in cmd/lionroute.

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func binaries(t *testing.T) (liond, lionroute string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lionload-e2e-bin")
		if err != nil {
			buildErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir,
			"github.com/rfid-lion/lion/cmd/liond",
			"github.com/rfid-lion/lion/cmd/lionroute")
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build: %v\n%s", err, out)
			return
		}
		binDir = dir
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(binDir, "liond"), filepath.Join(binDir, "lionroute")
}

type proc struct {
	cmd  *exec.Cmd
	addr string
}

func (p *proc) base() string { return "http://" + p.addr }

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, addr: addr}
	case <-time.After(15 * time.Second):
		t.Fatalf("%s never logged its listen address", bin)
		return nil
	}
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

var shardFlags = []string{
	"-addr", "127.0.0.1:0",
	"-intervals", "0.1", "-every", "32", "-workers", "1", "-monitor=false",
}

func writeClusterConfig(t *testing.T, shards []*proc) string {
	t.Helper()
	cfg := cluster.Config{}
	for i, p := range shards {
		cfg.Shards = append(cfg.Shards, cluster.ShardConfig{
			ID:  fmt.Sprintf("s%d", i+1),
			URL: p.base(),
		})
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadSmokeLiond is the harness behind `make load-smoke`: the smoke
// scenario against one real liond, run through the CLI entry point, with the
// macro section merged into a fresh snapshot. The verdict must pass (run
// returns nil only on a passing verdict).
func TestLoadSmokeLiond(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	liond, _ := binaries(t)
	node := startProc(t, liond, shardFlags...)
	waitReady(t, node.base())

	snapPath := filepath.Join(t.TempDir(), "BENCH_test.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-target", node.base(),
		"-scenario", "smoke",
		"-duration", "2s",
		"-rate", "300",
		"-batch", "16",
		"-workers", "1",
		"-scrape-every", "250ms",
		"-merge", snapPath,
	}, &buf)
	if err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "verdict: PASS") {
		t.Errorf("report missing passing verdict:\n%s", out)
	}
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "steady") {
		t.Errorf("report missing per-phase rows:\n%s", out)
	}

	snap, err := benchfmt.Read(snapPath)
	if err != nil {
		t.Fatalf("merged snapshot: %v", err)
	}
	found := false
	for _, m := range snap.Macro {
		if m.Scenario == "smoke" && m.Metric == "ingest_p99" {
			found = true
			if !m.Pass() {
				t.Errorf("merged macro entry fails its own target: %+v", m)
			}
		}
	}
	if !found {
		t.Errorf("snapshot has no smoke/ingest_p99 macro entry: %+v", snap.Macro)
	}
}

// TestLoadClusterAgreement is the acceptance check: the portal scenario
// against a router fronting two shards must produce a passing verdict whose
// p99 agreement check actually ran — the client-observed ingest p99 and the
// cluster's served ingest_request_seconds p99 agree within tolerance.
func TestLoadClusterAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	liond, lionroute := binaries(t)
	shards := []*proc{
		startProc(t, liond, shardFlags...),
		startProc(t, liond, shardFlags...),
	}
	for _, p := range shards {
		waitReady(t, p.base())
	}
	router := startProc(t, lionroute, "-addr", "127.0.0.1:0", "-config", writeClusterConfig(t, shards))
	waitReady(t, router.base())

	sc, err := load.Lookup("portal")
	if err != nil {
		t.Fatal(err)
	}
	res, err := load.Run(context.Background(), load.Config{
		Target:      router.base(),
		Scenario:    sc,
		Rate:        400,
		Duration:    6 * time.Second,
		Batch:       32,
		Workers:     1,
		Codec:       wire.Codec{},
		ScrapeEvery: 500 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	verdict := load.Evaluate(res)
	var report bytes.Buffer
	load.Report(&report, res, verdict)
	if !verdict.Pass {
		t.Fatalf("portal verdict failed against the cluster:\n%s", report.String())
	}

	agreed := false
	for _, c := range verdict.Checks {
		if c.Name == "p99_agreement" {
			if c.Skipped {
				t.Fatalf("p99 agreement check was skipped — cluster /v1/slo served no "+
					"ingest_request_seconds evidence:\n%s", report.String())
			}
			if !c.OK {
				t.Fatalf("client and server p99 disagree: %s\n%s", c.Detail, report.String())
			}
			agreed = true
		}
	}
	if !agreed {
		t.Fatalf("verdict has no p99_agreement check: %+v", verdict.Checks)
	}
	if total := res.Recorder.Total(); total.Samples == 0 || total.Accepted == 0 {
		t.Fatalf("no samples made it through the cluster: %+v", total)
	}
}
