// Command lionload is the load harness CLI: it drives a synthetic tag fleet
// from a scenario library against a liond node or a lionroute cluster on an
// open-loop schedule, scrapes the target's /v1/slo and /metrics while doing
// so, scores the run against the scenario's SLO targets, and exits non-zero
// on a failed verdict.
//
//	lionload -target http://localhost:8080 -scenario portal -duration 10s
//	lionload -target http://localhost:9000 -scenario smoke -merge BENCH_10.json
//
// The schedule is fixed before the first send (tick i due at start +
// i·interval), so a stalling server inflates the recorded tail by the whole
// backlog it caused — coordinated omission cannot hide it. See DESIGN.md §15.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/rfid-lion/lion/internal/benchfmt"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/load"
	"github.com/rfid-lion/lion/internal/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lionload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lionload", flag.ContinueOnError)
	var (
		target   = fs.String("target", "", "base URL of a liond node or lionroute router (required)")
		scenario = fs.String("scenario", "portal", "scenario name from the library (see -list)")
		list     = fs.Bool("list", false, "list the scenario library and exit")
		rate     = fs.Float64("rate", 0, "peak samples/sec (0 = scenario default)")
		duration = fs.Duration("duration", 0, "total run length (0 = scenario default)")
		batch    = fs.Int("batch", 64, "samples per POST")
		workers  = fs.Int("workers", 2, "sender goroutines")
		format   = fs.String("format", "wire", "ingest codec: wire or ndjson")
		seed     = fs.Int64("seed", 1, "fleet generation seed")
		scrape   = fs.Duration("scrape-every", time.Second, "/v1/slo + /metrics poll interval")
		merge    = fs.String("merge", "", "merge the run's macro SLO fields into this BENCH_*.json snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, sc := range load.Scenarios() {
			fmt.Fprintf(stdout, "%-10s %4d tags, %2d phases, peak %5.0f/s for %-4s  %s\n",
				sc.Name, sc.Tags(), len(sc.Phases), sc.DefaultRate, sc.DefaultDuration, sc.Description)
		}
		return nil
	}
	if *target == "" {
		return fmt.Errorf("-target is required (or -list)")
	}
	sc, err := load.Lookup(*scenario)
	if err != nil {
		return err
	}
	var codec dataset.Codec
	switch *format {
	case "wire":
		codec = wire.Codec{}
	case "ndjson":
		codec = dataset.NDJSON{}
	default:
		return fmt.Errorf("unknown -format %q (want wire or ndjson)", *format)
	}

	res, err := load.Run(ctx, load.Config{
		Target:      *target,
		Scenario:    sc,
		Rate:        *rate,
		Duration:    *duration,
		Batch:       *batch,
		Workers:     *workers,
		Codec:       codec,
		ScrapeEvery: *scrape,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	verdict := load.Evaluate(res)
	load.Report(stdout, res, verdict)

	if *merge != "" {
		if err := mergeMacro(*merge, sc.Name, load.Macro(res, verdict)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "macro SLO fields merged into %s\n", *merge)
	}
	if !verdict.Pass {
		return fmt.Errorf("scenario %s failed its SLO verdict", sc.Name)
	}
	return nil
}

// mergeMacro folds the run's macro entries into a BENCH_*.json snapshot,
// creating a minimal one when the file does not exist yet. Existing micro
// benchmark entries and other scenarios' macro entries are preserved.
func mergeMacro(path, scenario string, entries []benchfmt.Macro) error {
	snap, err := benchfmt.Read(path)
	if os.IsNotExist(err) {
		snap = &benchfmt.Snapshot{
			Schema:    benchfmt.Schema,
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			MaxProcs:  runtime.GOMAXPROCS(0),
		}
	} else if err != nil {
		return err
	}
	snap.MergeMacro(scenario, entries)
	return snap.Write(path)
}
