package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunTracePerScenario runs every scenario with -trace and checks the
// NDJSON dump contains solver iteration events.
func TestRunTracePerScenario(t *testing.T) {
	for _, scenario := range []string{"linear", "threeline", "twoline", "circle"} {
		t.Run(scenario, func(t *testing.T) {
			dir := t.TempDir()
			out := filepath.Join(dir, "scan.csv")
			trace := filepath.Join(dir, "trace.ndjson")
			err := run([]string{
				"-scenario", scenario, "-o", out, "-trace", trace,
				"-span", "1.2", "-rate", "100",
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			f, err := os.Open(trace)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var iters int
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				var ev struct {
					Event string `json:"event"`
				}
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
				}
				if ev.Event == "irls_iter" {
					iters++
				}
			}
			if iters == 0 {
				t.Error("trace has no irls_iter events")
			}
		})
	}
}
