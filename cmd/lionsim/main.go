// Command lionsim generates synthetic RFID scan datasets with the software
// testbed and writes them as CSV for lioncal (or any other consumer).
//
// Example — a three-line calibration scan of an antenna whose phase center
// is displaced 2.5 cm from its mounting position:
//
//	lionsim -scenario threeline -ay 0.8 -dx 0.025 -o scan.csv
//
// With -pace the scan streams at a target sample rate on an ideal-clock
// schedule instead of being written at once, so a replay file can feed a
// live liond at field-realistic tags/sec:
//
//	lionsim -scenario linear -format ndjson -pace 500 |
//	    curl -sS -X POST --data-binary @- http://localhost:8080/v1/samples
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	lion "github.com/rfid-lion/lion"
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/experiment"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/load"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
	"github.com/rfid-lion/lion/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lionsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lionsim", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "threeline",
			"trajectory: linear, threeline, twoline, circle")
		out    = fs.String("o", "", "output path (default stdout)")
		format = fs.String("format", "csv",
			"output format: csv, ndjson (liond ingest lines), or wire (binary ingest frames)")
		tagID = fs.String("tag", "T1", "tag id (stamped on ndjson output)")
		seed  = fs.Int64("seed", 1, "random seed")
		noise = fs.Float64("noise", sim.DefaultPhaseNoiseStd,
			"phase noise std, radians")
		rate  = fs.Float64("rate", 100, "read rate, Hz")
		speed = fs.Float64("speed", 0.1, "tag speed, m/s")

		ax = fs.Float64("ax", 0, "antenna physical center x, m")
		ay = fs.Float64("ay", 0.8, "antenna physical center y (depth), m")
		az = fs.Float64("az", 0, "antenna physical center z, m")
		dx = fs.Float64("dx", 0.02, "phase-center displacement x, m")
		dy = fs.Float64("dy", -0.015, "phase-center displacement y, m")
		dz = fs.Float64("dz", 0.025, "phase-center displacement z, m")

		offset    = fs.Float64("offset", 2.74, "antenna phase offset, radians")
		tagOffset = fs.Float64("tag-offset", 0.4, "tag phase offset, radians")

		span    = fs.Float64("span", 1.2, "scan extent along x, m")
		spacing = fs.Float64("spacing", 0.2, "line spacing y_o/z_o, m")
		radius  = fs.Float64("radius", 0.2, "circle radius, m")

		hop = fs.String("hop", "",
			"comma-separated hop frequencies in Hz (empty = fixed carrier)")
		dwell = fs.Duration("dwell", 200*time.Millisecond, "hop dwell time")

		pace = fs.Float64("pace", 0,
			"stream output at this many samples/sec on an ideal clock (ndjson or wire only; 0 = write at once)")
		paceBatch = fs.Int("pace-batch", 32, "samples per paced chunk")

		trace = fs.String("trace", "",
			"also localize the generated scan and write the solve trace (NDJSON) to this file")
		profile = fs.String("profile", "",
			"write CPU and heap profiles to <prefix>.cpu.pprof / <prefix>.heap.pprof")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profile != "" {
		stop, perr := obs.StartProfiles(*profile)
		if perr != nil {
			return perr
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "lionsim: profile:", err)
			}
		}()
	}

	env, err := lion.NewEnvironment()
	if err != nil {
		return err
	}
	env.PhaseNoiseStd = *noise
	readerCfg := lion.ReaderConfig{RateHz: *rate, Seed: *seed}
	if *hop != "" {
		plan := &lion.HopPlan{Dwell: *dwell}
		for _, part := range strings.Split(*hop, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("hop frequency %q: %w", part, err)
			}
			plan.FrequenciesHz = append(plan.FrequenciesHz, f)
		}
		readerCfg.Hopping = plan
	}
	reader, err := lion.NewReader(env, readerCfg)
	if err != nil {
		return err
	}
	ant := &lion.Antenna{
		ID:                "A1",
		PhysicalCenter:    geom.V3(*ax, *ay, *az),
		PhaseCenterOffset: geom.V3(*dx, *dy, *dz),
		PhaseOffset:       *offset,
	}
	tag := &lion.Tag{ID: *tagID, PhaseOffset: *tagOffset}

	var trj traject.Trajectory
	half := *span / 2
	switch *scenario {
	case "linear":
		trj, err = traject.NewLinear(geom.V3(-half, 0, 0), geom.V3(half, 0, 0), *speed)
	case "threeline":
		trj, err = traject.NewThreeLineScan(traject.ThreeLineConfig{
			XMin: -half, XMax: half,
			YSpacing: *spacing, ZSpacing: *spacing, Speed: *speed,
		})
	case "twoline":
		trj, err = traject.NewTwoLineScan(-half, half, *spacing, *speed)
	case "circle":
		trj, err = traject.NewCircularXY(geom.V3(0, 0, 0), *radius, *speed, 0, 1)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}

	samples, err := reader.Scan(ant, tag, trj)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch {
	case *pace > 0:
		err = emitPaced(w, *format, tag.ID, samples, *pace, *paceBatch)
	default:
		switch *format {
		case "csv":
			err = dataset.Write(w, samples)
		case "ndjson":
			err = dataset.WriteNDJSON(w, tag.ID, samples)
		case "wire":
			tagged := make([]dataset.TaggedSample, len(samples))
			for i, sm := range samples {
				tagged[i] = dataset.Tagged(tag.ID, sm)
			}
			err = wire.Codec{}.Encode(w, tagged)
		default:
			err = fmt.Errorf("unknown format %q (want csv, ndjson or wire)", *format)
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"lionsim: %d reads, scenario %s, true phase center %v, offset %.3f rad\n",
		len(samples), *scenario, ant.PhaseCenter(), *offset+*tagOffset)
	if *trace != "" {
		if err := writeTrace(*trace, *scenario, samples, env.Wavelength()); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// emitPaced streams the scan in fixed-size chunks on an ideal-clock schedule
// (chunk i due at start + i·interval), the same load.Pacer lionload's
// generator runs on: replay keeps the target rate even when a write stalls,
// because the next chunk's due time never moves. CSV is a batch file format,
// so pacing supports only the streaming ingest formats.
func emitPaced(w io.Writer, format, tagID string, samples []sim.Sample, rate float64, batch int) error {
	if batch <= 0 {
		return fmt.Errorf("-pace-batch must be positive (got %d)", batch)
	}
	var emit func(chunk []sim.Sample) error
	switch format {
	case "ndjson":
		emit = func(chunk []sim.Sample) error {
			return dataset.WriteNDJSON(w, tagID, chunk)
		}
	case "wire":
		buf := make([]dataset.TaggedSample, 0, batch)
		emit = func(chunk []sim.Sample) error {
			buf = buf[:0]
			for _, sm := range chunk {
				buf = append(buf, dataset.Tagged(tagID, sm))
			}
			return wire.Codec{}.Encode(w, buf)
		}
	default:
		return fmt.Errorf("-pace requires -format ndjson or wire (got %q)", format)
	}
	pacer := load.PacerForRate(time.Now(), rate/float64(batch))
	for i, off := 0, 0; off < len(samples); i, off = i+1, off+batch {
		pacer.Wait(i)
		end := off + batch
		if end > len(samples) {
			end = len(samples)
		}
		if err := emit(samples[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// traceSmooth matches the experiments' preprocessing window.
const traceSmooth = 9

// writeTrace localizes the generated scan with the scenario's natural solver,
// recording every adaptive candidate and IRWLS iteration, and dumps the trace
// as NDJSON.
func writeTrace(path, scenario string, samples []sim.Sample, lambda float64) error {
	obsv, err := core.Preprocess(sim.Positions(samples), sim.Phases(samples), traceSmooth)
	if err != nil {
		return err
	}
	tr := obs.NewTracer()
	solve := core.DefaultSolveOptions()
	solve.Trace = tr
	switch scenario {
	case "linear":
		_, err = core.AdaptiveLocate2DLine(obsv, lambda, []float64{0.15, 0.2, 0.25}, true, solve)
	case "threeline":
		var in core.ThreeLineInput
		if in, err = experiment.SplitThreeLine(obsv, samples, lambda); err == nil {
			_, err = core.AdaptiveLocateThreeLine(in,
				[]float64{0.6, 0.8, 1.0}, []float64{0.15, 0.2, 0.25},
				core.StructuredOptions{Solve: solve})
		}
	case "twoline":
		var in core.TwoLineInput
		if in, err = experiment.SplitTwoLine(obsv, samples, lambda); err == nil {
			_, err = core.AdaptiveLocateTwoLine(in, true,
				[]float64{0.6, 0.8, 1.0}, []float64{0.15, 0.2, 0.25},
				core.StructuredOptions{Solve: solve})
		}
	case "circle":
		_, err = core.Locate2D(obsv, lambda, core.StridePairs(len(obsv), len(obsv)/4), solve)
	default:
		return fmt.Errorf("no trace solver for scenario %q", scenario)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteNDJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lionsim: %d trace events written to %s\n", tr.Len(), path)
	return nil
}
