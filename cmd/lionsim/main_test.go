package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/traject"
)

func TestRunScenarios(t *testing.T) {
	for _, scenario := range []string{"linear", "threeline", "twoline", "circle"} {
		t.Run(scenario, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "scan.csv")
			err := run([]string{
				"-scenario", scenario, "-o", out,
				"-span", "0.8", "-rate", "50",
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			f, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			samples, err := dataset.Read(f)
			if err != nil {
				t.Fatal(err)
			}
			if len(samples) < 50 {
				t.Errorf("only %d samples", len(samples))
			}
			for _, s := range samples {
				if s.Phase < 0 || s.Phase >= 6.2832 {
					t.Fatalf("phase %v out of range", s.Phase)
				}
			}
			if scenario == "threeline" {
				labels := map[int]bool{}
				for _, s := range samples {
					labels[s.Segment] = true
				}
				for _, want := range []int{traject.LineL1, traject.LineL2, traject.LineL3} {
					if !labels[want] {
						t.Errorf("segment %d missing", want)
					}
				}
			}
		})
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "spiral"}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRunBadRate(t *testing.T) {
	if err := run([]string{"-rate", "0"}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestRoundTripWithLioncalFormat(t *testing.T) {
	// lionsim output must be readable by the dataset package (and hence by
	// lioncal) without loss.
	out := filepath.Join(t.TempDir(), "scan.csv")
	if err := run([]string{"-scenario", "linear", "-o", out, "-noise", "0"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	// Noiseless linear scan: positions strictly increasing in x.
	for i := 1; i < len(samples); i++ {
		if samples[i].TagPos.X <= samples[i-1].TagPos.X {
			t.Fatalf("positions not increasing at %d", i)
		}
	}
}

func TestNDJSONFormatRoundTrip(t *testing.T) {
	// `lionsim -format ndjson` output must decode through the liond ingest
	// path with the tag id preserved and samples intact.
	out := filepath.Join(t.TempDir(), "scan.ndjson")
	err := run([]string{
		"-scenario", "linear", "-format", "ndjson", "-tag", "DOCK-7",
		"-o", out, "-rate", "50",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tagged, err := dataset.DecodeIngest(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) < 50 {
		t.Fatalf("only %d samples", len(tagged))
	}
	for i, ts := range tagged {
		if ts.Tag != "DOCK-7" {
			t.Fatalf("sample %d tagged %q", i, ts.Tag)
		}
		s := ts.Sample()
		if s.Phase < 0 || s.Phase >= 6.2832 {
			t.Fatalf("phase %v out of range", s.Phase)
		}
		if i > 0 && s.TagPos.X <= tagged[i-1].Sample().TagPos.X {
			t.Fatalf("positions not increasing at %d", i)
		}
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestPacedNDJSONEmission(t *testing.T) {
	// -pace must stretch emission to the ideal-clock schedule without
	// changing the bytes: same samples, same tag, but wall time at least
	// (chunks-1) * chunk-interval.
	out := filepath.Join(t.TempDir(), "scan.ndjson")
	start := time.Now()
	err := run([]string{
		"-scenario", "linear", "-format", "ndjson", "-tag", "PACE-1",
		"-o", out, "-rate", "50",
		"-pace", "400", "-pace-batch", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tagged, err := dataset.DecodeIngest(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) < 50 {
		t.Fatalf("only %d samples", len(tagged))
	}
	for _, ts := range tagged {
		if ts.Tag != "PACE-1" {
			t.Fatalf("sample tagged %q", ts.Tag)
		}
	}
	// 16-sample chunks at 400 samples/s = one chunk per 40ms; the last chunk
	// is due at (ceil(n/16)-1) * 40ms after start.
	chunks := (len(tagged) + 15) / 16
	min := time.Duration(chunks-1) * 40 * time.Millisecond
	if elapsed < min {
		t.Errorf("paced run finished in %v, schedule requires at least %v for %d samples",
			elapsed, min, len(tagged))
	}
}

func TestPacedRejectsCSV(t *testing.T) {
	if err := run([]string{"-pace", "100"}); err == nil {
		t.Error("-pace with csv format accepted")
	}
	if err := run([]string{"-format", "ndjson", "-pace", "100", "-pace-batch", "0"}); err == nil {
		t.Error("zero -pace-batch accepted")
	}
}
