package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/wire"
)

// TestRunWireFormat checks that -format wire produces frames the wire codec
// decodes back to the same samples -format ndjson would carry.
func TestRunWireFormat(t *testing.T) {
	dir := t.TempDir()
	wirePath := filepath.Join(dir, "scan.wire")
	ndPath := filepath.Join(dir, "scan.ndjson")
	common := []string{"-scenario", "linear", "-rate", "50", "-tag", "W1", "-seed", "42"}
	if err := run(append(common, "-format", "wire", "-o", wirePath)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(common, "-format", "ndjson", "-o", ndPath)); err != nil {
		t.Fatal(err)
	}

	wf, err := os.Open(wirePath)
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()
	fromWire, err := wire.DecodeIngest(wf)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := os.Open(ndPath)
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	fromND, err := dataset.DecodeIngest(nf)
	if err != nil {
		t.Fatal(err)
	}

	if len(fromWire) == 0 || len(fromWire) != len(fromND) {
		t.Fatalf("wire %d samples, ndjson %d", len(fromWire), len(fromND))
	}
	for i := range fromWire {
		if fromWire[i] != fromND[i] {
			t.Fatalf("sample %d differs: wire %+v ndjson %+v", i, fromWire[i], fromND[i])
		}
		if fromWire[i].Tag != "W1" {
			t.Fatalf("sample %d tag %q, want W1", i, fromWire[i].Tag)
		}
	}
}
