package main

import (
	"os"
	"path/filepath"
	"testing"

	lion "github.com/rfid-lion/lion"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/traject"
)

func TestParseVec3(t *testing.T) {
	tests := []struct {
		in      string
		want    geom.Vec3
		wantErr bool
	}{
		{"1,2,3", geom.V3(1, 2, 3), false},
		{" 0.5 , -0.25 , 0 ", geom.V3(0.5, -0.25, 0), false},
		{"1,2", geom.Vec3{}, true},
		{"1,2,3,4", geom.Vec3{}, true},
		{"a,2,3", geom.Vec3{}, true},
	}
	for _, tt := range tests {
		got, err := parseVec3(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseVec3(%q) err = %v", tt.in, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("parseVec3(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// writeScanDataset simulates a three-line calibration scan and writes it as
// CSV, returning the path and the true phase center.
func writeScanDataset(t *testing.T) (string, geom.Vec3) {
	t.Helper()
	env, err := lion.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{RateHz: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ant := &lion.Antenna{
		ID:                "A1",
		PhysicalCenter:    geom.V3(0, 0.8, 0),
		PhaseCenterOffset: geom.V3(0.02, -0.015, 0.025),
		PhaseOffset:       2.0,
	}
	tag := &lion.Tag{ID: "T1", PhaseOffset: 0.3}
	scan, err := traject.NewThreeLineScan(traject.ThreeLineConfig{
		XMin: -0.6, XMax: 0.6, YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shift the scan 0.8 m in front of the antenna? The antenna is at
	// y=0.8 looking at the track at y=0 — the scan stays at y=0.
	samples, err := reader.Scan(ant, tag, scan)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scan.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.Write(f, samples); err != nil {
		t.Fatal(err)
	}
	return path, ant.PhaseCenter()
}

func TestRunEndToEnd(t *testing.T) {
	path, _ := writeScanDataset(t)
	if err := run([]string{"-in", path, "-mode", "threeline", "-physical", "0,0.8,0"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.csv"}); err == nil {
		t.Error("nonexistent file accepted")
	}
}

func TestRunBadMode(t *testing.T) {
	path, _ := writeScanDataset(t)
	if err := run([]string{"-in", path, "-mode", "bogus"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestRunBadFrequency(t *testing.T) {
	path, _ := writeScanDataset(t)
	if err := run([]string{"-in", path, "-freq", "-1"}); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestLocateDispatch(t *testing.T) {
	path, truth := writeScanDataset(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	lambda := lion.DefaultBand().Wavelength()
	obs, err := lion.Preprocess(lion.Positions(samples), lion.Phases(samples), 9)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := locate("threeline", obs, samples, lambda, 0.2, 0.8, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := pos.Dist(truth); d > 0.03 {
		t.Errorf("threeline estimate off by %v m", d)
	}
	if _, err := locate("nope", obs, samples, lambda, 0.2, 0.8, true, true); err == nil {
		t.Error("unknown mode accepted")
	}
}
