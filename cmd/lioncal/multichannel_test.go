package main

import (
	"os"
	"path/filepath"
	"testing"

	lion "github.com/rfid-lion/lion"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/traject"
)

const hopList = "902.75e6,915.25e6,927.25e6"

// writeHoppedDataset simulates a hopped circular scan and writes it as CSV.
func writeHoppedDataset(t *testing.T) (string, geom.Vec3) {
	t.Helper()
	env, err := lion.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := lion.NewReader(env, lion.ReaderConfig{
		RateHz: 100,
		Seed:   8,
		Hopping: &lion.HopPlan{
			FrequenciesHz: []float64{902.75e6, 915.25e6, 927.25e6},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ant := &lion.Antenna{PhysicalCenter: geom.V3(0.1, 0.8, 0), PhaseOffset: 1.3}
	tag := &lion.Tag{PhaseOffset: 0.5}
	trj, err := traject.NewCircularXY(geom.V3(0, 0, 0), 0.3, 0.1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hop.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.Write(f, samples); err != nil {
		t.Fatal(err)
	}
	return path, ant.PhaseCenter()
}

func TestRunMultiChannelMode(t *testing.T) {
	path, _ := writeHoppedDataset(t)
	if err := run([]string{
		"-in", path, "-mode", "multichannel", "-channels", hopList,
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestMultiChannelModeRequiresChannels(t *testing.T) {
	path, _ := writeHoppedDataset(t)
	if err := run([]string{"-in", path, "-mode", "multichannel"}); err == nil {
		t.Error("missing -channels accepted")
	}
}

func TestLocateMultiChannelAccuracy(t *testing.T) {
	path, truth := writeHoppedDataset(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := locateMultiChannel(samples, hopList, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d := pos.XY().Dist(truth.XY()); d > 0.04 {
		t.Errorf("multichannel estimate off by %v m", d)
	}
}

func TestLocateMultiChannelValidation(t *testing.T) {
	path, _ := writeHoppedDataset(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := locateMultiChannel(samples, "abc", 9); err == nil {
		t.Error("malformed channel list accepted")
	}
	// A channel index beyond the list must be rejected.
	if _, err := locateMultiChannel(samples, "902.75e6", 9); err == nil {
		t.Error("short channel list accepted")
	}
}
