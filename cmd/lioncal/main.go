// Command lioncal runs the LION calibration pipeline on a CSV scan dataset
// (as produced by lionsim or a real LLRP logger): it estimates the
// antenna's phase center with the linear localization model, reports the
// displacement from a user-supplied physical center, and estimates the
// phase offset.
//
// Example:
//
//	lionsim -scenario threeline -o scan.csv
//	lioncal -in scan.csv -mode threeline -physical 0,0.8,0
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	lion "github.com/rfid-lion/lion"
	"github.com/rfid-lion/lion/internal/calib"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lioncal:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lioncal", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "input CSV dataset (required)")
		mode = fs.String("mode", "threeline",
			"scan type: threeline, twoline, line, planar, multichannel")
		freq     = fs.Float64("freq", 920.625e6, "carrier frequency, Hz")
		physical = fs.String("physical", "",
			"physical center as x,y,z to report the displacement against")
		smooth    = fs.Int("smooth", 9, "moving-average window (odd), 0 = off")
		interval  = fs.Float64("interval", 0.2, "pairing interval x_o, m")
		scanRange = fs.Float64("range", 0.8,
			"scanning range, m (0 = use everything)")
		adaptive = fs.Bool("adaptive", true,
			"sweep range/interval and fuse by the residual rule")
		side = fs.Bool("above", true,
			"target on the positive side (above the plane / +90° of the line)")
		hopFreqs = fs.String("channels", "",
			"comma-separated hop frequencies in Hz, indexed by the dataset's channel column (multichannel mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := dataset.Read(f)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("dataset %s is empty", *in)
	}

	band := lion.Band{FrequencyHz: *freq}
	if err := band.Validate(); err != nil {
		return err
	}
	lambda := band.Wavelength()

	var sol lion.Vec3
	if *mode == "multichannel" {
		sol, err = locateMultiChannel(samples, *hopFreqs, *smooth)
	} else {
		var obs []lion.PosPhase
		obs, err = lion.Preprocess(sim.Positions(samples), sim.Phases(samples), *smooth)
		if err != nil {
			return err
		}
		sol, err = locate(*mode, obs, samples, lambda, *interval, *scanRange, *adaptive, *side)
	}
	if err != nil {
		return err
	}

	fmt.Printf("reads:            %d\n", len(samples))
	fmt.Printf("wavelength:       %.4f m\n", lambda)
	fmt.Printf("estimated center: %v\n", sol)
	if *physical != "" {
		phys, err := parseVec3(*physical)
		if err != nil {
			return err
		}
		calib := lion.CenterCalibration{
			PhysicalCenter:  phys,
			EstimatedCenter: sol,
		}
		fmt.Printf("physical center:  %v\n", phys)
		fmt.Printf("displacement:     %v (%.2f cm)\n",
			calib.Displacement(), calib.DisplacementNorm()*100)
	}
	if *mode == "multichannel" {
		// Offsets are channel-specific under hopping; a single figure
		// against one carrier would be misleading.
		fmt.Println("phase offset:     per-channel under hopping (not reported)")
		return nil
	}
	offset, err := lion.PhaseOffset(sim.Positions(samples), sim.Phases(samples), sol, lambda)
	if err != nil {
		return err
	}
	fmt.Printf("phase offset:     %.4f rad (tag + antenna combined)\n", offset)
	return nil
}

// locate dispatches on the scan mode and returns the estimated center via
// the shared internal/calib solver core (the same code path the online
// recalibration controller uses).
func locate(mode string, obs []lion.PosPhase, samples []sim.Sample, lambda, interval, scanRange float64, adaptive, side bool) (lion.Vec3, error) {
	labels := make([]int, len(samples))
	for i, s := range samples {
		labels[i] = s.Segment
	}
	return calib.LocateScan(mode, obs, labels, calib.ScanConfig{
		Lambda:       lambda,
		Interval:     interval,
		ScanRange:    scanRange,
		Adaptive:     adaptive,
		PositiveSide: side,
	})
}

// locateMultiChannel splits a channel-hopped dataset by channel, unwraps
// each channel's profile separately, and runs the joint multi-channel solve.
func locateMultiChannel(samples []sim.Sample, hopFreqs string, smooth int) (lion.Vec3, error) {
	if hopFreqs == "" {
		return lion.Vec3{}, fmt.Errorf("multichannel mode needs -channels")
	}
	var freqs []float64
	for _, part := range strings.Split(hopFreqs, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return lion.Vec3{}, fmt.Errorf("channel frequency %q: %w", part, err)
		}
		freqs = append(freqs, f)
	}
	byChannel := map[int][]sim.Sample{}
	for _, s := range samples {
		byChannel[s.Channel] = append(byChannel[s.Channel], s)
	}
	var chans []lion.ChannelObservations
	minLen := 0
	for c, chSamples := range byChannel {
		if c < 0 || c >= len(freqs) {
			return lion.Vec3{}, fmt.Errorf("channel index %d outside -channels list", c)
		}
		band := lion.Band{FrequencyHz: freqs[c]}
		if err := band.Validate(); err != nil {
			return lion.Vec3{}, err
		}
		obs, err := lion.Preprocess(sim.Positions(chSamples), sim.Phases(chSamples), smooth)
		if err != nil {
			return lion.Vec3{}, err
		}
		chans = append(chans, lion.ChannelObservations{Lambda: band.Wavelength(), Obs: obs})
		if minLen == 0 || len(obs) < minLen {
			minLen = len(obs)
		}
	}
	sol, err := lion.Locate2DMultiChannel(chans, minLen/4, lion.DefaultSolveOptions())
	if err != nil {
		return lion.Vec3{}, err
	}
	return sol.Position, nil
}

// parseVec3 parses "x,y,z".
func parseVec3(s string) (geom.Vec3, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return geom.Vec3{}, fmt.Errorf("want x,y,z, got %q", s)
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Vec3{}, fmt.Errorf("component %d of %q: %w", i, s, err)
		}
		vals[i] = v
	}
	return geom.V3(vals[0], vals[1], vals[2]), nil
}
