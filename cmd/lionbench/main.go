// Command lionbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed and prints the results. Use -fast for
// a quick smoke run, -only to select individual experiments, -workers N to
// size the per-trial solver pool (results are identical at any size; only
// wall-clock changes, which is how the serial-vs-parallel speedup is
// measured), and -o to write the report to a file (the source of
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/rfid-lion/lion/internal/experiment"
	"github.com/rfid-lion/lion/internal/obs"
)

// runner names one experiment and its driver.
type runner struct {
	name string
	run  func(experiment.Config) (*experiment.Table, error)
}

func runners() []runner {
	return []runner{
		{"fig2", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig2PhaseCenter(c)
			return t, err
		}},
		{"fig3", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig3PhaseOffsets(c)
			return t, err
		}},
		{"fig4", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig4Hologram(c)
			return t, err
		}},
		{"fig6", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig6Directions(c)
			return t, err
		}},
		{"fig9", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig9LowerDim(c)
			return t, err
		}},
		{"fig13", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig13Overall(c)
			return t, err
		}},
		{"fig14a", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig14a3D(c)
			return t, err
		}},
		{"fig14b", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig14b2DDepth(c)
			return t, err
		}},
		{"fig15", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig15Weights(c)
			return t, err
		}},
		{"fig16-17", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig16_17Range(c)
			return t, err
		}},
		{"fig18", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig18Interval(c)
			return t, err
		}},
		{"fig19-20", func(c experiment.Config) (*experiment.Table, error) {
			_, _, t, err := experiment.Fig19_20MultiAntenna(c)
			return t, err
		}},
		{"fig21", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.Fig21Turntable(c)
			return t, err
		}},
		{"ablation", func(c experiment.Config) (*experiment.Table, error) {
			_, t, err := experiment.AblationSolvers(c)
			return t, err
		}},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lionbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lionbench", flag.ContinueOnError)
	var (
		fast    = fs.Bool("fast", false, "reduced grids and trial counts")
		seed    = fs.Int64("seed", 1, "random seed")
		trials  = fs.Int("trials", 0, "override repetition count (0 = default)")
		only    = fs.String("only", "", "comma-separated experiment names (e.g. fig13,fig21)")
		out     = fs.String("o", "", "also write the report to this file")
		workers = fs.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS, 1 = serial); results are identical, only wall-clock changes")
		trace   = fs.String("trace", "", "run one instrumented calibration solve and write its NDJSON trace to this file")
		profile = fs.String("profile", "", "write CPU and heap profiles to <prefix>.cpu.pprof / <prefix>.heap.pprof")
		jsonOut = fs.String("json", "", "run the micro-benchmark suite and write a machine-readable snapshot to this file ('-' for stdout), skipping the experiment tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut != "" {
		return writeBenchJSON(*jsonOut, stdout)
	}
	cfg := experiment.Config{Seed: *seed, Trials: *trials, Fast: *fast, Workers: *workers}

	if *profile != "" {
		stop, err := obs.StartProfiles(*profile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "lionbench: profile:", err)
			} else {
				fmt.Fprintf(os.Stderr, "lionbench: profiles written to %s.cpu.pprof and %s.heap.pprof\n", *profile, *profile)
			}
		}()
	}
	if *trace != "" {
		if err := writeTrace(*trace, *seed, stdout); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}

	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}

	w := stdout
	var file *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		file = f
		w = io.MultiWriter(stdout, f)
	}

	start := time.Now()
	for _, r := range runners() {
		if len(selected) > 0 && !selected[r.name] {
			continue
		}
		t0 := time.Now()
		tbl, err := r.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "  [%s completed in %s]\n\n", r.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "total: %s\n", time.Since(start).Round(time.Millisecond))
	if file != nil {
		fmt.Fprintf(stdout, "report written to %s\n", file.Name())
	}
	return nil
}

// writeTrace runs the instrumented calibration solve and dumps its trace.
func writeTrace(path string, seed int64, stdout io.Writer) error {
	tr := obs.NewTracer()
	res, err := experiment.TraceCalibration(seed, tr)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteNDJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trace: %d events from %d candidates written to %s (estimate %v)\n",
		tr.Len(), len(res.All), path, res.Position)
	return nil
}
