package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rfid-lion/lion/internal/benchfmt"
)

// TestRunJSONSnapshot drives the -json mode end to end: the file decodes,
// carries the frozen schema tag, and every suite benchmark reports sane
// numbers. Skipped under -short — the suite runs each benchmark for the full
// testing.Benchmark second.
func TestRunJSONSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark suite is slow")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Fig. 2") {
		t.Error("-json must skip the experiment tables")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchfmt.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if snap.Schema != "lionbench/1" || snap.GoVersion == "" {
		t.Errorf("snapshot header = %+v", snap)
	}
	if len(snap.Benchmarks) != len(benchSuite()) {
		t.Fatalf("%d benchmarks, want %d", len(snap.Benchmarks), len(benchSuite()))
	}
	seen := map[string]bool{}
	for _, b := range snap.Benchmarks {
		if b.Name == "" || b.Iterations <= 0 || b.NsPerOp <= 0 || b.AllocsPerOp < 0 {
			t.Errorf("implausible result %+v", b)
		}
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
	// The nil-monitor path must stay allocation-free — the same contract
	// TestNilMonitorZeroOverhead pins, visible in the committed trajectory.
	for _, b := range snap.Benchmarks {
		if b.Name == "health_observe_solve_nil" && b.AllocsPerOp != 0 {
			t.Errorf("nil monitor allocates %d/op in snapshot", b.AllocsPerOp)
		}
	}
}
