// The -json mode: a fixed suite of micro-benchmarks over the hot solve and
// monitoring paths, run through testing.Benchmark and emitted as one JSON
// document. Committed snapshots (BENCH_<pr>.json) accumulate the perf
// trajectory across PRs; the schema is additive-only.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/health"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
)

// benchResult is one benchmark's measurements in the JSON snapshot.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchSnapshot is the top-level -json document.
type benchSnapshot struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	MaxProcs   int           `json:"gomaxprocs"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchObs builds the standard 120-read line scan used by every solver
// micro-benchmark: tag marching along x at 0.4 m height, antenna at
// (0, 0.9, 0.4), exact linear-model phases plus N(0, 0.02) noise.
func benchObs(lambda float64) []core.PosPhase {
	ant := geom.V3(0, 0.9, 0.4)
	rng := stats.NewRNG(13)
	obs := make([]core.PosPhase, 120)
	for i := range obs {
		pos := geom.V3(-0.4+0.8*float64(i)/119, 0, 0.4)
		theta := rf.PhaseOfDistance(ant.Dist(pos), lambda) + rng.Normal(0, 0.02)
		obs[i] = core.PosPhase{Pos: pos, Theta: theta}
	}
	return obs
}

// benchSuite enumerates the tracked micro-benchmarks. Names are stable
// identifiers: comparisons across snapshots key on them.
func benchSuite() []struct {
	name string
	fn   func(*testing.B)
} {
	lambda := rf.DefaultBand().Wavelength()
	obs := benchObs(lambda)
	opts := core.DefaultSolveOptions()

	monitored, err := health.New(health.Config{Calibrations: []health.Calibration{{
		Antenna: "A1", Center: geom.V3(0, 0.9, 0.4), Offset: 1.3, Lambda: lambda,
	}}})
	if err != nil {
		panic(err) // static config; cannot fail
	}
	solveObs := health.SolveObservation{
		Tag: "T1", Window: 64, Residual: 0.01,
		Condition: 10, Iterations: 3, Latency: 100 * time.Microsecond,
	}

	return []struct {
		name string
		fn   func(*testing.B)
	}{
		{"locate_2d_line", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Locate2DLine(obs, lambda, 0.2, true, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"phase_offset_calibration", func(b *testing.B) {
			positions := make([]geom.Vec3, len(obs))
			wrapped := make([]float64, len(obs))
			for i, o := range obs {
				positions[i] = o.Pos
				wrapped[i] = rf.WrapPhase(o.Theta + 1.3)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.PhaseOffset(positions, wrapped, geom.V3(0, 0.9, 0.4), lambda); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"health_observe_solve_monitored", func(b *testing.B) {
			o := solveObs
			for i := 0; i < b.N; i++ {
				o.Time = time.Duration(i) * time.Millisecond
				monitored.ObserveSolve(o)
			}
		}},
		{"health_observe_sample_monitored", func(b *testing.B) {
			pos := geom.V3(0.5, 0, 0)
			for i := 0; i < b.N; i++ {
				monitored.ObserveSample("A1", time.Duration(i), pos, 1.0)
			}
		}},
		{"health_observe_solve_nil", func(b *testing.B) {
			var m *health.Monitor
			for i := 0; i < b.N; i++ {
				m.ObserveSolve(solveObs)
			}
		}},
	}
}

// writeBenchJSON runs the suite and writes the snapshot to path ("-" for
// stdout).
func writeBenchJSON(path string, stdout io.Writer) error {
	snap := benchSnapshot{
		Schema:    "lionbench/1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, bm := range benchSuite() {
		fn := bm.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		snap.Benchmarks = append(snap.Benchmarks, benchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(stdout, "bench %s: %d iters, %.0f ns/op, %d allocs/op\n",
			bm.name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchmark snapshot written to %s\n", path)
	return nil
}
