// The -json mode: a fixed suite of micro-benchmarks over the hot solve and
// monitoring paths, run through testing.Benchmark and emitted as one JSON
// document. Committed snapshots (BENCH_<pr>.json) accumulate the perf
// trajectory across PRs; the schema is additive-only.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/benchfmt"
	"github.com/rfid-lion/lion/internal/calib"
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/health"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
	"github.com/rfid-lion/lion/internal/stream"
	"github.com/rfid-lion/lion/internal/wire"
)

// benchObs builds the standard 120-read line scan used by every solver
// micro-benchmark: tag marching along x at 0.4 m height, antenna at
// (0, 0.9, 0.4), exact linear-model phases plus N(0, 0.02) noise.
func benchObs(lambda float64) []core.PosPhase {
	ant := geom.V3(0, 0.9, 0.4)
	rng := stats.NewRNG(13)
	obs := make([]core.PosPhase, 120)
	for i := range obs {
		pos := geom.V3(-0.4+0.8*float64(i)/119, 0, 0.4)
		theta := rf.PhaseOfDistance(ant.Dist(pos), lambda) + rng.Normal(0, 0.02)
		obs[i] = core.PosPhase{Pos: pos, Theta: theta}
	}
	return obs
}

// benchStream extends benchObs to a longer march for the sliding-window
// benchmarks: n reads from x = −1.2 m to +1.2 m at the same height and noise.
// PhaseOfDistance is already unwrapped, so consecutive windows of the slice
// are phase-coherent and the incremental session can slide.
func benchStream(lambda float64, n int) []core.PosPhase {
	ant := geom.V3(0, 0.9, 0.4)
	rng := stats.NewRNG(13)
	obs := make([]core.PosPhase, n)
	for i := range obs {
		pos := geom.V3(-1.2+2.4*float64(i)/float64(n-1), 0, 0.4)
		theta := rf.PhaseOfDistance(ant.Dist(pos), lambda) + rng.Normal(0, 0.02)
		obs[i] = core.PosPhase{Pos: pos, Theta: theta}
	}
	return obs
}

// benchIngestBatch builds the standard ingest body for the codec decode
// benchmarks: one wire frame's worth of samples spread over eight tags, the
// mixed-stream shape lionroute forwards.
func benchIngestBatch() []dataset.TaggedSample {
	rng := stats.NewRNG(29)
	batch := make([]dataset.TaggedSample, 4096)
	for i := range batch {
		batch[i] = dataset.TaggedSample{
			Tag:     fmt.Sprintf("BENCH-%d", i%8),
			TimeS:   float64(i) * 0.01,
			X:       -1.2 + 2.4*float64(i)/float64(len(batch)),
			Y:       0.05 * rng.Normal(0, 1),
			Z:       0.4,
			Phase:   rf.WrapPhase(rng.Normal(3, 1)),
			RSSI:    -55 + rng.Normal(0, 2),
			Segment: i / 512,
			Channel: i % 16,
		}
	}
	return batch
}

// benchSuite enumerates the tracked micro-benchmarks. Names are stable
// identifiers: comparisons across snapshots key on them.
func benchSuite() []struct {
	name string
	fn   func(*testing.B)
} {
	lambda := rf.DefaultBand().Wavelength()
	lineObs := benchObs(lambda)
	opts := core.DefaultSolveOptions()

	monitored, err := health.New(health.Config{Calibrations: []health.Calibration{{
		Antenna: "A1", Center: geom.V3(0, 0.9, 0.4), Offset: 1.3, Lambda: lambda,
	}}})
	if err != nil {
		panic(err) // static config; cannot fail
	}
	solveObs := health.SolveObservation{
		Tag: "T1", Window: 64, Residual: 0.01,
		Condition: 10, Iterations: 3, Latency: 100 * time.Microsecond,
	}

	return []struct {
		name string
		fn   func(*testing.B)
	}{
		{"locate_2d_line", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Locate2DLine(lineObs, lambda, 0.2, true, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"solve_system_ws", func(b *testing.B) {
			// The workspace solve over the same reduced line system that
			// locate_2d_line assembles per call: steady-state re-solves of a
			// fixed-shape system must be allocation-free.
			prof, err := core.NewProfile(lineObs, lambda)
			if err != nil {
				b.Fatal(err)
			}
			positions := make([]geom.Vec3, len(lineObs))
			for i, o := range lineObs {
				positions[i] = o.Pos
			}
			pairs := core.SeparationPairs(positions, 0.2)
			sys, err := core.BuildSystem(prof, pairs, 2)
			if err != nil {
				b.Fatal(err)
			}
			var ws core.SolveWorkspace
			var sol core.Solution
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.SolveSystemInto(&ws, sys, opts, &sol); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"stream_resolve_incremental", func(b *testing.B) {
			// One slid window per op through a warm core.LineSession: the
			// per-re-solve cost of the incremental linear path (rank-1
			// update/downdate plus the 2×2 normal solve), with the periodic
			// rebuild amortised in. Unweighted on purpose — IRLS refinement
			// re-solves the full weighted system every iteration, which is
			// inherently O(window) and measured by stream_engine_resolve.
			// Target: <10 µs, 0 allocs.
			strm := benchStream(lambda, 960)
			const window = 120
			sess, err := core.NewLineSession(lambda, []float64{0.05, 0.12}, true)
			if err != nil {
				b.Fatal(err)
			}
			unweighted := core.SolveOptions{}
			var sol core.Solution
			lo := 0
			step := func() {
				if lo+window > len(strm) {
					lo = 0 // disjoint restart: exercises the rebuild path too
				}
				if err := sess.Locate(strm[lo:lo+window], unweighted, &sol); err != nil {
					b.Fatal(err)
				}
				lo++
			}
			for i := 0; i < 400; i++ {
				step() // warm: size every buffer, cross a rebuild
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		}},
		{"stream_engine_resolve", func(b *testing.B) {
			// The full engine path per accepted sample: Ingest, snapshot
			// dispatch, unwrap, incremental locate, publication, Flush. The
			// tag ping-pongs along the track so the stream never has a
			// position seam regardless of b.N.
			factory, err := stream.IncrementalLine2DFactory(lambda, []float64{0.05, 0.12}, true, opts)
			if err != nil {
				b.Fatal(err)
			}
			e, err := stream.New(stream.Config{
				WindowSize: 120, MinSamples: 16, SolveEvery: 1, Workers: 1,
				SolverFactory: factory,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close(context.Background())
			ant := geom.V3(0, 0.9, 0.4)
			ctx := context.Background()
			n := 0
			step := func() {
				const half = 960 // samples per one-way pass
				k := n % (2 * half)
				if k > half {
					k = 2*half - k
				}
				pos := geom.V3(-1.2+2.4*float64(k)/half, 0, 0.4)
				phase := rf.WrapPhase(rf.PhaseOfDistance(ant.Dist(pos), lambda))
				s := stream.Sample{Time: time.Duration(n) * time.Millisecond, Pos: pos, Phase: phase}
				if err := e.Ingest("T1", s); err != nil {
					b.Fatal(err)
				}
				if err := e.Flush(ctx); err != nil {
					b.Fatal(err)
				}
				n++
			}
			for n < 400 {
				step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		}},
		{"staleness_overhead", func(b *testing.B) {
			// The same per-sample engine step as stream_engine_resolve, but
			// through the traced ingest entry point with the full pipeline
			// instrumentation armed: span log configured, per-batch sampling
			// decision, queue-wait/staleness/publish-latency observation.
			// The batch is never sampled, so the delta against
			// stream_engine_resolve is the steady-state cost of the tracing
			// layer — and the guarded allocation count is 0: tracing must be
			// free until a batch is actually sampled.
			factory, err := stream.IncrementalLine2DFactory(lambda, []float64{0.05, 0.12}, true, opts)
			if err != nil {
				b.Fatal(err)
			}
			e, err := stream.New(stream.Config{
				WindowSize: 120, MinSamples: 16, SolveEvery: 1, Workers: 1,
				SolverFactory: factory,
				Spans:         obs.NewSpanLog("bench", 256),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close(context.Background())
			ant := geom.V3(0, 0.9, 0.4)
			ctx := context.Background()
			sampler := obs.NewSampler(1<<30, 5) // samples once, then never again
			sampler.Next()
			batch := make([]stream.Tagged, 1)
			n := 0
			step := func() {
				const half = 960
				k := n % (2 * half)
				if k > half {
					k = 2*half - k
				}
				pos := geom.V3(-1.2+2.4*float64(k)/half, 0, 0.4)
				phase := rf.WrapPhase(rf.PhaseOfDistance(ant.Dist(pos), lambda))
				batch[0] = stream.Tagged{Tag: "T1", Sample: stream.Sample{
					Time: time.Duration(n) * time.Millisecond, Pos: pos, Phase: phase,
				}}
				if acc, _, err := e.IngestTaggedTraced(batch, sampler.Next(), time.Time{}); err != nil || acc != 1 {
					b.Fatalf("ingest: accepted %d err %v", acc, err)
				}
				if err := e.Flush(ctx); err != nil {
					b.Fatal(err)
				}
				n++
			}
			for n < 400 {
				step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		}},
		{"wire_decode", func(b *testing.B) {
			// One 4096-sample binary ingest body decoded per op — the
			// cluster forwarding hot path. The ≥5x margin over
			// ndjson_decode is the wire codec's reason to exist; the
			// committed snapshot records both sides of the ratio.
			var body bytes.Buffer
			if err := (wire.Codec{}).Encode(&body, benchIngestBatch()); err != nil {
				b.Fatal(err)
			}
			raw := body.Bytes()
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := wire.DecodeIngest(bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ndjson_decode", func(b *testing.B) {
			// The same 4096 samples as NDJSON — the compatibility format's
			// decode cost, the denominator of the wire speedup.
			var body bytes.Buffer
			if err := (dataset.NDJSON{}).Encode(&body, benchIngestBatch()); err != nil {
				b.Fatal(err)
			}
			raw := body.Bytes()
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dataset.DecodeIngest(bytes.NewReader(raw)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"phase_offset_calibration", func(b *testing.B) {
			positions := make([]geom.Vec3, len(lineObs))
			wrapped := make([]float64, len(lineObs))
			for i, o := range lineObs {
				positions[i] = o.Pos
				wrapped[i] = rf.WrapPhase(o.Theta + 1.3)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.PhaseOffset(positions, wrapped, geom.V3(0, 0.9, 0.4), lambda); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"recal_solve", func(b *testing.B) {
			// One closed-loop recalibration re-solve per op: the adaptive
			// Eq. 17 center+offset estimate plus residual scoring over a
			// 128-sample live window — the cost of acting on one drift
			// alert (internal/recal), paid off the solve path on the
			// controller's own goroutine.
			strm := benchStream(lambda, 128)
			positions := make([]geom.Vec3, len(strm))
			wrapped := make([]float64, len(strm))
			for i, o := range strm {
				positions[i] = o.Pos
				wrapped[i] = rf.WrapPhase(o.Theta + 1.3)
			}
			cfg := calib.Config{Lambda: lambda, Adaptive: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := calib.EstimateLine(positions, wrapped, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if calib.OffsetResidualRMS(positions, wrapped, res.Center, res.Offset, lambda) > 0.1 {
					b.Fatal("recalibration did not fit the window")
				}
			}
		}},
		{"health_observe_solve_monitored", func(b *testing.B) {
			o := solveObs
			for i := 0; i < b.N; i++ {
				o.Time = time.Duration(i) * time.Millisecond
				monitored.ObserveSolve(o)
			}
		}},
		{"health_observe_sample_monitored", func(b *testing.B) {
			pos := geom.V3(0.5, 0, 0)
			for i := 0; i < b.N; i++ {
				monitored.ObserveSample("A1", time.Duration(i), pos, 1.0)
			}
		}},
		{"health_observe_solve_nil", func(b *testing.B) {
			var m *health.Monitor
			for i := 0; i < b.N; i++ {
				m.ObserveSolve(solveObs)
			}
		}},
	}
}

// writeBenchJSON runs the suite and writes the snapshot to path ("-" for
// stdout).
func writeBenchJSON(path string, stdout io.Writer) error {
	snap := benchfmt.Snapshot{
		Schema:    benchfmt.Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, bm := range benchSuite() {
		fn := bm.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		snap.Benchmarks = append(snap.Benchmarks, benchfmt.Bench{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(stdout, "bench %s: %d iters, %.0f ns/op, %d allocs/op\n",
			bm.name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}
	if path == "-" {
		return writeSnapshotTo(stdout, &snap)
	}
	if err := snap.Write(path); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "benchmark snapshot written to %s\n", path)
	return nil
}

// writeSnapshotTo renders the snapshot to a stream, for -json -.
func writeSnapshotTo(w io.Writer, snap *benchfmt.Snapshot) error {
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}
