package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTraceWritesNDJSON is the acceptance check for `lionbench -trace`:
// the dump must be valid NDJSON carrying per-IRWLS-iteration residuals for
// the adaptive calibration sweep.
func TestRunTraceWritesNDJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	var out strings.Builder
	// "-only none" selects no experiment tables, leaving just the trace run.
	if err := run([]string{"-trace", path, "-only", "none"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace:") {
		t.Errorf("no trace summary printed: %s", out.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var iters, cands, spans int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev struct {
			TMicros  int64   `json:"t_us"`
			Event    string  `json:"event"`
			Span     string  `json:"span"`
			Iter     int     `json:"iter"`
			Residual float64 `json:"residual_norm"`
			Interval float64 `json:"interval_m"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Event {
		case "irls_iter":
			iters++
			if ev.Iter < 1 {
				t.Errorf("irls_iter with iter %d", ev.Iter)
			}
		case "candidate":
			cands++
			if ev.Interval <= 0 {
				t.Error("candidate event without interval")
			}
		case "span_start":
			if ev.Span == "adaptive_three_line" {
				spans++
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if iters == 0 {
		t.Error("trace has no per-iteration solver events")
	}
	if cands != 9 {
		t.Errorf("trace has %d candidate events, want 9 (3 ranges x 3 intervals)", cands)
	}
	if spans != 1 {
		t.Errorf("trace has %d adaptive_three_line spans, want 1", spans)
	}
}

// TestRunProfileWritesPprof checks the -profile flag produces both profile
// files in pprof's gzip container format.
func TestRunProfileWritesPprof(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "bench")
	var out strings.Builder
	if err := run([]string{"-profile", prefix, "-fast", "-only", "fig21"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		data, err := os.ReadFile(prefix + suffix)
		if err != nil {
			t.Fatalf("%s: %v", suffix, err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s is not a gzip-compressed profile", suffix)
		}
	}
}
