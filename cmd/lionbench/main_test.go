package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunnersCoverEveryExperiment(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig4", "fig6", "fig9", "fig13",
		"fig14a", "fig14b", "fig15", "fig16-17", "fig18",
		"fig19-20", "fig21", "ablation",
	}
	rs := runners()
	if len(rs) != len(want) {
		t.Fatalf("%d runners, want %d", len(rs), len(want))
	}
	for i, w := range want {
		if rs[i].name != w {
			t.Errorf("runner %d = %q, want %q", i, rs[i].name, w)
		}
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-fast", "-only", "fig2,fig21"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Fig. 2") {
		t.Error("fig2 table missing")
	}
	if !strings.Contains(text, "Fig. 21") {
		t.Error("fig21 table missing")
	}
	if strings.Contains(text, "Fig. 13") {
		t.Error("unselected fig13 ran")
	}
}

func TestRunWritesReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out strings.Builder
	if err := run([]string{"-fast", "-only", "fig2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Fig. 2") {
		t.Error("report file missing content")
	}
}

// TestRunWorkersEquivalence runs the same experiment serially and with a
// 4-worker pool; the rendered error columns must be identical (solver-time
// columns vary, so compare a figure whose table has no timing column).
func TestRunWorkersEquivalence(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run([]string{"-fast", "-only", "fig21", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fast", "-only", "fig21", "-workers", "4"}, &parallel); err != nil {
		t.Fatal(err)
	}
	stripTiming := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "completed in") || strings.HasPrefix(line, "total:") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if stripTiming(serial.String()) != stripTiming(parallel.String()) {
		t.Error("serial and 4-worker runs rendered different tables")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
