package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %v", got)
	}
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := SampleVariance(xs); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("SampleVariance = %v", got)
	}
	if got := SampleVariance([]float64{1}); got != 0 {
		t.Errorf("SampleVariance(single) = %v", got)
	}
}

func TestMeanStdMatchesTwoPass(t *testing.T) {
	xs := []float64{1.5, -2, 0.25, 7, 3, 3, -1}
	m, s := MeanStd(xs)
	if !almostEq(m, Mean(xs), 1e-12) {
		t.Errorf("MeanStd mean = %v, want %v", m, Mean(xs))
	}
	if !almostEq(s, StdDev(xs), 1e-12) {
		t.Errorf("MeanStd std = %v, want %v", s, StdDev(xs))
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Errorf("MeanStd(nil) = %v, %v", m, s)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 5 {
		t.Errorf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max(nil) err = %v", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("percentile > 100 accepted")
	}
	single, err := Percentile([]float64{7}, 33)
	if err != nil || single != 7 {
		t.Errorf("single-element percentile = %v, %v", single, err)
	}
	// Input must not be reordered.
	orig := []float64{5, 1, 3}
	if _, err := Percentile(orig, 50); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || !almostEq(s.Mean, 5.5, 1e-12) || s.Min != 1 || s.Max != 10 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEq(s.Median, 5.5, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
}

func TestECDF(t *testing.T) {
	pts := ECDF([]float64{3, 1, 2, 2})
	if len(pts) != 3 {
		t.Fatalf("ECDF len = %d, want 3 (duplicates collapsed)", len(pts))
	}
	if pts[0].X != 1 || !almostEq(pts[0].P, 0.25, 1e-12) {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	if pts[1].X != 2 || !almostEq(pts[1].P, 0.75, 1e-12) {
		t.Errorf("pts[1] = %+v", pts[1])
	}
	if pts[2].X != 3 || !almostEq(pts[2].P, 1, 1e-12) {
		t.Errorf("pts[2] = %+v", pts[2])
	}
	if got := ECDF(nil); got != nil {
		t.Errorf("ECDF(nil) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts, err := Histogram([]float64{0, 0.1, 0.9, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("shapes: %d edges, %d counts", len(edges), len(counts))
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if _, _, err := Histogram(nil, 2); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v", err)
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("nbins=0 accepted")
	}
	// Degenerate constant input must not divide by zero.
	if _, counts, err := Histogram([]float64{2, 2, 2}, 3); err != nil || counts[0] != 3 {
		t.Errorf("constant histogram = %v, %v", counts, err)
	}
}

func TestRMSAndMeanAbs(t *testing.T) {
	if got := RMS([]float64{3, 4}); !almostEq(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", got)
	}
	if got := MeanAbs([]float64{-3, 3}); got != 3 {
		t.Errorf("MeanAbs = %v", got)
	}
	if RMS(nil) != 0 || MeanAbs(nil) != 0 {
		t.Error("empty RMS/MeanAbs not zero")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Fork().Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		a := g.Angle()
		if a < 0 || a >= 2*math.Pi {
			t.Fatalf("Angle out of range: %v", a)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(7)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.Normal(2, 0.5)
	}
	m, s := MeanStd(xs)
	if math.Abs(m-2) > 0.02 {
		t.Errorf("Normal mean = %v, want ~2", m)
	}
	if math.Abs(s-0.5) > 0.02 {
		t.Errorf("Normal std = %v, want ~0.5", s)
	}
}

func TestRNGFork(t *testing.T) {
	g := NewRNG(5)
	f1 := g.Fork()
	f2 := g.Fork()
	if f1.Float64() == f2.Float64() && f1.Float64() == f2.Float64() {
		t.Error("forked streams identical")
	}
}

// Property: ECDF is monotone non-decreasing in both X and P and ends at 1.
func TestECDFPropertyMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		pts := ECDF(xs)
		if len(xs) == 0 {
			return pts == nil
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].P < pts[i-1].P {
				return false
			}
		}
		return almostEq(pts[len(pts)-1].P, 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanPropertyBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
