package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source for reproducible simulations. It
// wraps math/rand with domain-specific samplers. RNG is not safe for
// concurrent use; create one per goroutine.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Angle returns a uniform angle in [0, 2π).
func (g *RNG) Angle() float64 { return g.r.Float64() * 2 * math.Pi }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Fork returns a new RNG deterministically derived from this one. Use it to
// give each simulated device an independent but reproducible stream.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// SplitSeed derives a decorrelated seed for one worker of a pool from a base
// seed, using a splitmix64-style finalising mix. Nearby (seed, worker)
// pairs map to distant seeds, so worker streams do not overlap in practice,
// and the derivation is pure: the same pair always yields the same seed,
// independent of the order workers start in.
func SplitSeed(seed int64, worker int) int64 {
	z := uint64(seed) + uint64(worker+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// NewWorkerRNG returns the deterministic generator for one worker of a
// pool. RNG is not safe for concurrent use (see the type comment), so
// parallel code must create exactly one per worker; this constructor makes
// the per-worker split explicit and reproducible.
func NewWorkerRNG(seed int64, worker int) *RNG {
	return NewRNG(SplitSeed(seed, worker))
}
