package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source for reproducible simulations. It
// wraps math/rand with domain-specific samplers. RNG is not safe for
// concurrent use; create one per goroutine.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Angle returns a uniform angle in [0, 2π).
func (g *RNG) Angle() float64 { return g.r.Float64() * 2 * math.Pi }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Fork returns a new RNG deterministically derived from this one. Use it to
// give each simulated device an independent but reproducible stream.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }
