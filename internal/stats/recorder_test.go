package stats

import (
	"reflect"
	"testing"
)

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder(4)
	if r.Snapshot() != nil {
		t.Errorf("empty snapshot = %v, want nil", r.Snapshot())
	}
	if r.Count() != 0 || r.Len() != 0 {
		t.Errorf("empty count/len = %d/%d", r.Count(), r.Len())
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(4)
	r.Add(1)
	r.Add(2)
	if got := r.Snapshot(); !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Errorf("snapshot = %v, want [1 2]", got)
	}
}

func TestRecorderEvictsOldest(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Add(float64(i))
	}
	if got := r.Snapshot(); !reflect.DeepEqual(got, []float64{3, 4, 5}) {
		t.Errorf("snapshot = %v, want [3 4 5]", got)
	}
	if r.Count() != 5 {
		t.Errorf("count = %d, want 5", r.Count())
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 2000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 1024 {
		t.Errorf("len = %d, want default 1024", r.Len())
	}
	snap := r.Snapshot()
	if snap[0] != 976 || snap[len(snap)-1] != 1999 {
		t.Errorf("window [%v, %v], want [976, 1999]", snap[0], snap[len(snap)-1])
	}
}
