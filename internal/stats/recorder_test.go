package stats

import (
	"reflect"
	"testing"
)

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder(4)
	if r.Snapshot() != nil {
		t.Errorf("empty snapshot = %v, want nil", r.Snapshot())
	}
	if r.Count() != 0 || r.Len() != 0 {
		t.Errorf("empty count/len = %d/%d", r.Count(), r.Len())
	}
}

func TestRecorderPartialFill(t *testing.T) {
	r := NewRecorder(4)
	r.Add(1)
	r.Add(2)
	if got := r.Snapshot(); !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Errorf("snapshot = %v, want [1 2]", got)
	}
}

func TestRecorderEvictsOldest(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Add(float64(i))
	}
	if got := r.Snapshot(); !reflect.DeepEqual(got, []float64{3, 4, 5}) {
		t.Errorf("snapshot = %v, want [3 4 5]", got)
	}
	if r.Count() != 5 {
		t.Errorf("count = %d, want 5", r.Count())
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}
}

func TestRecorderPercentileInterpolates(t *testing.T) {
	r := NewRecorder(8)
	for _, x := range []float64{4, 1, 3, 2} {
		r.Add(x)
	}
	p50, ok := r.Percentile(50)
	if !ok || p50 != 2.5 {
		t.Errorf("p50 = %v ok=%v, want 2.5 (interpolated)", p50, ok)
	}
	p25, ok := r.Percentile(25)
	if !ok || p25 != 1.75 {
		t.Errorf("p25 = %v ok=%v, want 1.75", p25, ok)
	}
	if p0, _ := r.Percentile(0); p0 != 1 {
		t.Errorf("p0 = %v, want 1", p0)
	}
	if p100, _ := r.Percentile(100); p100 != 4 {
		t.Errorf("p100 = %v, want 4", p100)
	}
	if m := r.Mean(); m != 2.5 {
		t.Errorf("mean = %v, want 2.5", m)
	}
}

// TestRecorderDegenerateWindows pins the n<2 behaviour: an empty ring answers
// every query without panicking, and a single-sample window returns that
// sample for every percentile.
func TestRecorderDegenerateWindows(t *testing.T) {
	r := NewRecorder(4)
	if _, ok := r.Percentile(50); ok {
		t.Error("empty ring reported a percentile")
	}
	if m := r.Mean(); m != 0 {
		t.Errorf("empty mean = %v, want 0", m)
	}
	r.Add(7)
	for _, p := range []float64{0, 50, 99, 100} {
		if v, ok := r.Percentile(p); !ok || v != 7 {
			t.Errorf("single-sample p%v = %v ok=%v, want 7", p, v, ok)
		}
	}
	if _, ok := r.Percentile(101); ok {
		t.Error("out-of-range percentile accepted")
	}
}

// TestRecorderZeroValue ensures the zero value works: the ring allocates
// lazily instead of panicking with a modulo-by-zero on the first Add.
func TestRecorderZeroValue(t *testing.T) {
	var r Recorder
	if _, ok := r.Percentile(50); ok {
		t.Error("zero-value ring reported a percentile")
	}
	r.Add(3)
	if r.Len() != 1 || r.Count() != 1 {
		t.Errorf("len/count = %d/%d, want 1/1", r.Len(), r.Count())
	}
	if v, ok := r.Percentile(90); !ok || v != 3 {
		t.Errorf("p90 = %v ok=%v, want 3", v, ok)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 2000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 1024 {
		t.Errorf("len = %d, want default 1024", r.Len())
	}
	snap := r.Snapshot()
	if snap[0] != 976 || snap[len(snap)-1] != 1999 {
		t.Errorf("window [%v, %v], want [976, 1999]", snap[0], snap[len(snap)-1])
	}
}
