package stats

import "math"

// Hist is an HDR-style log-linear histogram for latency-like positive
// values, built for high-rate recording: Record is a handful of integer
// operations into a fixed bucket array — no allocation, no sorting, no
// sampling window to overflow — so a load generator can record hundreds of
// thousands of observations per second without the measurement distorting
// the workload it measures (the obs.Histogram keeps a bounded raw window
// and takes a lock per observation; fine for a daemon, wrong for a blaster).
//
// Layout: values are bucketed into octaves (powers of two) starting at
// histMin, each octave split into histSub linear sub-buckets, giving a
// constant relative error of 1/histSub (~3%) across the whole range —
// the same trick as HdrHistogram's bucket/sub-bucket split. Values below
// histMin land in a dedicated underflow bucket (recorded as histMin);
// values beyond the top land in an overflow bucket (recorded at the top
// bound). The exact maximum is tracked separately so tail quantiles never
// under-report the worst observation past bucket resolution.
//
// Hist is not safe for concurrent use. The intended high-rate pattern is
// one Hist per worker, merged with Merge after the run — merging is exact
// (bucket counts add).
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	max    float64
	min    float64
}

const (
	// histMin is the smallest resolvable value, 1 µs in seconds.
	histMin = 1e-6
	// histSub is the linear sub-bucket count per octave; relative
	// quantile error is bounded by 1/histSub.
	histSub = 32
	// histOctaves spans histMin × 2^28 ≈ 268 s, comfortably past any
	// latency or staleness this system reports.
	histOctaves = 28
	// histBuckets adds the underflow (index 0) and overflow (last) buckets.
	histBuckets = histOctaves*histSub + 2
)

// histIndex maps a value to its bucket index.
func histIndex(v float64) int {
	if v < histMin {
		return 0
	}
	// frac in [0.5, 1), exp such that v = frac × 2^exp.
	frac, exp := math.Frexp(v / histMin)
	// Octave o = floor(log2(v/histMin)) = exp − 1; sub-bucket from the
	// mantissa: frac×2 in [1, 2) → (frac×2 − 1) × histSub in [0, histSub).
	o := exp - 1
	if o >= histOctaves {
		return histBuckets - 1
	}
	sub := int((frac*2 - 1) * histSub)
	if sub >= histSub { // guard the frac == 1-ulp edge
		sub = histSub - 1
	}
	return 1 + o*histSub + sub
}

// histBound returns the upper bound of bucket i (the value Record clamps
// into it), used as the quantile estimate for observations in that bucket.
func histBound(i int) float64 {
	if i <= 0 {
		return histMin
	}
	if i >= histBuckets-1 {
		return histMin * math.Exp2(histOctaves)
	}
	i--
	o, sub := i/histSub, i%histSub
	// Bucket upper edge: histMin × 2^o × (1 + (sub+1)/histSub).
	return histMin * math.Exp2(float64(o)) * (1 + float64(sub+1)/histSub)
}

// Record adds one observation. Negative and NaN values are recorded as the
// minimum resolvable value (they indicate a clock anomaly, not a latency,
// and must not poison the distribution with NaN).
func (h *Hist) Record(v float64) {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v > h.max {
		h.max = v
	}
	if h.count == 1 || v < h.min {
		h.min = v
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the sum of recorded observations.
func (h *Hist) Sum() float64 { return h.sum }

// Mean returns the mean observation, or 0 when empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the exact largest recorded observation, or 0 when empty.
func (h *Hist) Max() float64 { return h.max }

// Min returns the exact smallest recorded observation, or 0 when empty.
func (h *Hist) Min() float64 { return h.min }

// Quantile returns the q-th quantile (q in [0, 1]) as the upper bound of
// the bucket holding the q-th observation — a ≤3% overestimate by
// construction, never an underestimate beyond bucket resolution. The top
// quantile is clamped to the exact tracked maximum, and ok is false when
// the histogram is empty or q is out of range.
func (h *Hist) Quantile(q float64) (v float64, ok bool) {
	if h.count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return 0, false
	}
	// Rank of the target observation, 1-based, ceil(q×n) with the q=0 floor.
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			if i == histBuckets-1 {
				// Overflow bucket: the bound is meaningless, the exact
				// tracked maximum is the only honest answer.
				return h.max, true
			}
			b := histBound(i)
			if b > h.max {
				b = h.max
			}
			if b < h.min {
				b = h.min
			}
			return b, true
		}
	}
	return h.max, true // unreachable: seen ends at h.count ≥ rank
}

// Merge adds other's observations into h. Bucket counts add exactly, so a
// merged histogram reports the same quantiles as one that recorded every
// observation itself.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	h.count += other.count
	h.sum += other.sum
}

// Reset returns the histogram to its empty state without releasing memory.
func (h *Hist) Reset() {
	*h = Hist{}
}
