package stats

import (
	"sync"
	"testing"
)

func drawSequence(g *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Float64()
	}
	return out
}

func TestSplitSeedDeterministic(t *testing.T) {
	for worker := 0; worker < 8; worker++ {
		if SplitSeed(42, worker) != SplitSeed(42, worker) {
			t.Fatalf("SplitSeed(42, %d) not deterministic", worker)
		}
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	seen := map[int64]int{}
	for seed := int64(0); seed < 16; seed++ {
		for worker := 0; worker < 64; worker++ {
			s := SplitSeed(seed, worker)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: SplitSeed(%d,%d) == earlier entry %d", seed, worker, prev)
			}
			seen[s] = worker
		}
	}
}

// TestWorkerRNGsNeverShareASequence draws long sequences from every worker
// of a pool and asserts no two workers produce the same stream — including
// shifted overlaps, which is how naive seed+worker arithmetic fails (worker
// k's stream re-emerging inside worker k+1's).
func TestWorkerRNGsNeverShareASequence(t *testing.T) {
	const workers = 8
	const n = 1000
	seqs := make([][]float64, workers)
	for w := range seqs {
		seqs[w] = drawSequence(NewWorkerRNG(7, w), n)
	}
	// Index every value of every stream; identical float64 draws across
	// streams are already vanishingly unlikely, so any repeated window
	// would show up as repeated values.
	for a := 0; a < workers; a++ {
		for b := a + 1; b < workers; b++ {
			shared := 0
			inB := make(map[float64]bool, n)
			for _, v := range seqs[b] {
				inB[v] = true
			}
			for _, v := range seqs[a] {
				if inB[v] {
					shared++
				}
			}
			if shared > 0 {
				t.Errorf("workers %d and %d share %d of %d draws", a, b, shared, n)
			}
		}
	}
}

func TestWorkerRNGReproducible(t *testing.T) {
	a := drawSequence(NewWorkerRNG(3, 2), 100)
	b := drawSequence(NewWorkerRNG(3, 2), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical worker RNGs", i)
		}
	}
}

// TestWorkerRNGConcurrentUse exercises the documented contract — one RNG
// per goroutine — under -race: concurrent workers using their own split
// generators must not trip the race detector.
func TestWorkerRNGConcurrentUse(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	sums := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := NewWorkerRNG(11, w)
			for i := 0; i < 10000; i++ {
				sums[w] += g.Float64()
			}
		}(w)
	}
	wg.Wait()
	for w, s := range sums {
		// Each sum is ~5000; anything near 0 means a worker drew nothing.
		if s < 1000 {
			t.Errorf("worker %d sum %v implausibly low", w, s)
		}
	}
}
