package stats

// Recorder keeps the most recent observations of a metric in a fixed-size
// ring, so long-running services (the liond daemon) can report latency
// percentiles over a bounded, recent window instead of accumulating samples
// forever. It is not safe for concurrent use; callers hold their own lock.
type Recorder struct {
	buf   []float64
	n     int
	next  int
	total uint64
}

// NewRecorder returns a recorder keeping the last capacity observations.
// Non-positive capacity defaults to 1024.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{buf: make([]float64, capacity)}
}

// Add records one observation, evicting the oldest when the ring is full.
func (r *Recorder) Add(x float64) {
	r.buf[r.next] = x
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
}

// Count returns the total number of observations ever recorded (not just the
// retained window).
func (r *Recorder) Count() uint64 { return r.total }

// Len returns the number of retained observations.
func (r *Recorder) Len() int { return r.n }

// Snapshot returns a copy of the retained observations in insertion order
// (oldest first), or nil when empty.
func (r *Recorder) Snapshot() []float64 {
	if r.n == 0 {
		return nil
	}
	out := make([]float64, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
