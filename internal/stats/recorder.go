package stats

import "sort"

// Recorder keeps the most recent observations of a metric in a fixed-size
// ring, so long-running services (the liond daemon, the obs histogram) can
// report latency percentiles over a bounded, recent window instead of
// accumulating samples forever. It is not safe for concurrent use; callers
// hold their own lock.
//
// The zero value is usable: the ring is allocated at the default capacity on
// the first Add, and every query is defined (and panic-free) on an empty
// ring.
type Recorder struct {
	buf   []float64
	n     int
	next  int
	total uint64
}

// defaultRecorderCap is the ring size used when none is given.
const defaultRecorderCap = 1024

// NewRecorder returns a recorder keeping the last capacity observations.
// Non-positive capacity defaults to 1024.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultRecorderCap
	}
	return &Recorder{buf: make([]float64, capacity)}
}

// Add records one observation, evicting the oldest when the ring is full.
func (r *Recorder) Add(x float64) {
	if len(r.buf) == 0 {
		r.buf = make([]float64, defaultRecorderCap)
	}
	r.buf[r.next] = x
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
}

// Count returns the total number of observations ever recorded (not just the
// retained window).
func (r *Recorder) Count() uint64 { return r.total }

// Len returns the number of retained observations.
func (r *Recorder) Len() int { return r.n }

// Snapshot returns a copy of the retained observations in insertion order
// (oldest first), or nil when empty.
func (r *Recorder) Snapshot() []float64 {
	if r.n == 0 {
		return nil
	}
	out := make([]float64, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Mean returns the mean of the retained window, or 0 when empty.
func (r *Recorder) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	var s float64
	for i := 0; i < r.n; i++ {
		s += r.buf[(start+i)%len(r.buf)]
	}
	return s / float64(r.n)
}

// Percentile returns the p-th percentile (p in [0, 100]) of the retained
// window using linear interpolation between closest ranks. Degenerate
// windows are handled without error or panic: ok is false when the window is
// empty (or p is out of range), and a single-sample window returns that
// sample for every p.
func (r *Recorder) Percentile(p float64) (v float64, ok bool) {
	if r.n == 0 || p < 0 || p > 100 {
		return 0, false
	}
	sorted := r.Snapshot()
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], true
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1], true
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac, true
}
