package stats

import (
	"math"
	"sort"
	"testing"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if _, ok := h.Quantile(0.99); ok {
		t.Fatal("empty histogram reported a quantile")
	}
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not zeroed: count=%d max=%v mean=%v", h.Count(), h.Max(), h.Mean())
	}
}

// TestHistQuantileAccuracy checks the log-linear layout's contract: every
// quantile is within the 1/histSub relative error of the exact value, and
// never below it (bucket upper bounds only overestimate).
func TestHistQuantileAccuracy(t *testing.T) {
	rng := NewRNG(11)
	var h Hist
	exact := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over 2 µs .. 2 s: exercises many octaves.
		v := 2e-6 * math.Pow(1e6, rng.Float64())
		h.Record(v)
		exact = append(exact, v)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1} {
		got, ok := h.Quantile(q)
		if !ok {
			t.Fatalf("q=%v: not ok", q)
		}
		rank := int(math.Ceil(q*float64(len(exact)))) - 1
		if rank < 0 {
			rank = 0
		}
		want := exact[rank]
		if got < want*(1-1e-12) {
			t.Errorf("q=%v: got %v below exact %v", q, got, want)
		}
		if got > want*(1+2.0/histSub) {
			t.Errorf("q=%v: got %v, exact %v — beyond the %v relative bound",
				q, got, want, 2.0/histSub)
		}
	}
	if got, _ := h.Quantile(1); got != h.Max() {
		t.Errorf("q=1 returned %v, want exact max %v", got, h.Max())
	}
}

func TestHistUnderOverflow(t *testing.T) {
	var h Hist
	h.Record(1e-9)       // below histMin
	h.Record(1e9)        // beyond the top octave
	h.Record(math.NaN()) // clock anomaly
	h.Record(-1)         // clock anomaly
	if h.Count() != 4 {
		t.Fatalf("count %d, want 4", h.Count())
	}
	if got, _ := h.Quantile(0.01); got > histMin {
		// The three sub-histMin observations land in the underflow bucket,
		// whose bound is the minimum resolvable value.
		t.Errorf("low quantile %v, want <= %v", got, histMin)
	}
	if got, _ := h.Quantile(1); got != 1e9 {
		t.Errorf("q=1 %v, want the exact max 1e9", got)
	}
}

func TestHistMergeExact(t *testing.T) {
	rng := NewRNG(7)
	var all, a, b Hist
	for i := 0; i < 5000; i++ {
		v := math.Abs(rng.Normal(0.01, 0.005))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Max() != all.Max() || a.Min() != all.Min() {
		t.Fatalf("merge lost mass: count %d vs %d", a.count, all.count)
	}
	if math.Abs(a.Sum()-all.Sum()) > 1e-9*all.Sum() {
		t.Fatalf("merge sum %v vs %v", a.Sum(), all.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		ga, _ := a.Quantile(q)
		gb, _ := all.Quantile(q)
		if ga != gb {
			t.Errorf("q=%v: merged %v != direct %v", q, ga, gb)
		}
	}
}

func TestHistMergeIntoEmpty(t *testing.T) {
	var a, b Hist
	b.Record(0.25)
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != 1 || a.Max() != 0.25 || a.Min() != 0.25 {
		t.Fatalf("merge into empty: count=%d max=%v min=%v", a.Count(), a.Max(), a.Min())
	}
}

// TestHistRecordZeroAlloc is the load-generator requirement: recording must
// not allocate, or the harness would distort the tail it measures.
func TestHistRecordZeroAlloc(t *testing.T) {
	var h Hist
	v := 0.001
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v *= 1.0001
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func BenchmarkHistRecord(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(float64(i%1000) * 1e-5)
	}
}
