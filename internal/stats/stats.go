// Package stats provides the small descriptive-statistics toolkit used by
// the experiment harness: means, standard deviations, percentiles, CDFs,
// histograms, and a deterministic random source for reproducible
// simulations.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n), or 0 for
// samples with fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleVariance returns the unbiased sample variance (divisor n−1). It
// returns 0 for samples with fewer than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// MeanStd returns the mean and population standard deviation in one pass
// over the data (Welford's algorithm).
func MeanStd(xs []float64) (mean, std float64) {
	var m, m2 float64
	for i, x := range xs {
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	if len(xs) > 0 {
		std = math.Sqrt(m2 / float64(len(xs)))
	}
	return m, std
}

// Min returns the smallest element. It returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element. It returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics the experiment tables report.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, std := MeanStd(xs)
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	p25, _ := Percentile(xs, 25)
	med, _ := Median(xs)
	p75, _ := Percentile(xs, 75)
	p90, _ := Percentile(xs, 90)
	return Summary{
		N:      len(xs),
		Mean:   mean,
		Std:    std,
		Min:    mn,
		P25:    p25,
		Median: med,
		P75:    p75,
		P90:    p90,
		Max:    mx,
	}, nil
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in (0, 1]
}

// ECDF returns the empirical cumulative distribution function of xs as a
// sorted list of points. Duplicate values collapse to the highest
// probability.
func ECDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	out := make([]CDFPoint, 0, len(sorted))
	for i, x := range sorted {
		p := float64(i+1) / n
		if len(out) > 0 && out[len(out)-1].X == x {
			out[len(out)-1].P = p
			continue
		}
		out = append(out, CDFPoint{X: x, P: p})
	}
	return out
}

// Histogram bins xs into nbins equal-width bins over [min, max] and returns
// the bin edges (nbins+1 values) and counts (nbins values).
func Histogram(xs []float64, nbins int) (edges []float64, counts []int, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	if nbins <= 0 {
		return nil, nil, errors.New("stats: nbins must be positive")
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn == mx {
		mx = mn + 1
	}
	edges = make([]float64, nbins+1)
	width := (mx - mn) / float64(nbins)
	for i := range edges {
		edges[i] = mn + float64(i)*width
	}
	counts = make([]int, nbins)
	for _, x := range xs {
		b := int((x - mn) / width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts, nil
}

// RMS returns the root mean square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MeanAbs returns the mean absolute value of xs.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}
