package geom

import (
	"fmt"
	"math"
)

// Vec2 is a point or displacement in the plane.
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s*v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the inner product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar cross product v×w (the z-component of the 3-D
// cross product of the embedded vectors).
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared Euclidean length of v.
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// DistSq returns the squared Euclidean distance between v and w.
func (v Vec2) DistSq(w Vec2) float64 { return v.Sub(w).NormSq() }

// Unit returns v normalised to length one. The zero vector is returned
// unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Perp returns v rotated by +90 degrees.
func (v Vec2) Perp() Vec2 { return Vec2{-v.Y, v.X} }

// Rotate returns v rotated counter-clockwise by the given angle in radians.
func (v Vec2) Rotate(rad float64) Vec2 {
	s, c := math.Sincos(rad)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + t*(w.X-v.X), v.Y + t*(w.Y-v.Y)}
}

// Angle returns the angle of v in radians, in (-pi, pi].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// IsFinite reports whether both components are finite numbers.
func (v Vec2) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.6g, %.6g)", v.X, v.Y) }

// XYZ returns the vector lifted into 3-D with the given z-coordinate.
func (v Vec2) XYZ(z float64) Vec3 { return Vec3{v.X, v.Y, z} }

// Vec3 is a point or displacement in 3-D space.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.NormSq()) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.X*v.X + v.Y*v.Y + v.Z*v.Z }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// DistSq returns the squared Euclidean distance between v and w.
func (v Vec3) DistSq(w Vec3) float64 { return v.Sub(w).NormSq() }

// Unit returns v normalised to length one. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// XY projects v onto the xy-plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	for _, c := range [3]float64{v.X, v.Y, v.Z} {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", v.X, v.Y, v.Z)
}
