package geom

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoIntersection is returned when two geometric objects do not intersect
// (or are parallel / coincident so that no unique intersection exists).
var ErrNoIntersection = errors.New("geom: no unique intersection")

// Line2 is an infinite line in the plane in implicit form A·x + B·y = C.
// The coefficient pair (A, B) is the line normal; it need not be normalised.
type Line2 struct {
	A, B, C float64
}

// LineThrough returns the line through two distinct points p and q.
func LineThrough(p, q Vec2) Line2 {
	d := q.Sub(p)
	// Normal is perpendicular to the direction.
	n := d.Perp()
	return Line2{A: n.X, B: n.Y, C: n.Dot(p)}
}

// LinePointDir returns the line through p with direction dir.
func LinePointDir(p, dir Vec2) Line2 {
	n := dir.Perp()
	return Line2{A: n.X, B: n.Y, C: n.Dot(p)}
}

// Normalize scales the line so that the normal (A, B) has unit length.
// Degenerate lines (A==B==0) are returned unchanged.
func (l Line2) Normalize() Line2 {
	n := math.Hypot(l.A, l.B)
	if n == 0 {
		return l
	}
	return Line2{l.A / n, l.B / n, l.C / n}
}

// IsDegenerate reports whether the line has a zero normal and therefore does
// not describe a line at all.
func (l Line2) IsDegenerate() bool { return l.A == 0 && l.B == 0 }

// Eval returns A·x + B·y − C, the signed (unnormalised) residual of p.
func (l Line2) Eval(p Vec2) float64 { return l.A*p.X + l.B*p.Y - l.C }

// Dist returns the Euclidean distance from p to the line.
func (l Line2) Dist(p Vec2) float64 {
	n := math.Hypot(l.A, l.B)
	if n == 0 {
		return math.Inf(1)
	}
	return math.Abs(l.Eval(p)) / n
}

// Contains reports whether p lies on the line within tolerance tol (distance
// in the same units as the coordinates).
func (l Line2) Contains(p Vec2, tol float64) bool { return l.Dist(p) <= tol }

// Direction returns a unit vector along the line.
func (l Line2) Direction() Vec2 { return Vec2{-l.B, l.A}.Unit() }

// Intersect returns the unique intersection point of two lines. It returns
// ErrNoIntersection when the lines are parallel or coincident.
func (l Line2) Intersect(m Line2) (Vec2, error) {
	det := l.A*m.B - l.B*m.A
	scale := math.Max(math.Hypot(l.A, l.B), 1) * math.Max(math.Hypot(m.A, m.B), 1)
	if math.Abs(det) <= 1e-14*scale {
		return Vec2{}, ErrNoIntersection
	}
	x := (l.C*m.B - l.B*m.C) / det
	y := (l.A*m.C - l.C*m.A) / det
	return Vec2{x, y}, nil
}

// Project returns the orthogonal projection of p onto the line.
func (l Line2) Project(p Vec2) Vec2 {
	n := Vec2{l.A, l.B}
	nn := n.NormSq()
	if nn == 0 {
		return p
	}
	t := l.Eval(p) / nn
	return p.Sub(n.Scale(t))
}

// String implements fmt.Stringer.
func (l Line2) String() string {
	return fmt.Sprintf("%.6g*x + %.6g*y = %.6g", l.A, l.B, l.C)
}

// Segment2 is a directed line segment in the plane.
type Segment2 struct {
	From, To Vec2
}

// Length returns the segment length.
func (s Segment2) Length() float64 { return s.From.Dist(s.To) }

// At returns the point at parameter t in [0, 1] along the segment.
func (s Segment2) At(t float64) Vec2 { return s.From.Lerp(s.To, t) }

// Midpoint returns the segment midpoint.
func (s Segment2) Midpoint() Vec2 { return s.At(0.5) }

// Line returns the supporting infinite line.
func (s Segment2) Line() Line2 { return LineThrough(s.From, s.To) }

// Segment3 is a directed line segment in space.
type Segment3 struct {
	From, To Vec3
}

// Length returns the segment length.
func (s Segment3) Length() float64 { return s.From.Dist(s.To) }

// At returns the point at parameter t in [0, 1] along the segment.
func (s Segment3) At(t float64) Vec3 { return s.From.Lerp(s.To, t) }

// Midpoint returns the segment midpoint.
func (s Segment3) Midpoint() Vec3 { return s.At(0.5) }
