package geom

import (
	"fmt"
	"math"
)

// Circle is a circle in the plane with the given center and radius.
type Circle struct {
	Center Vec2
	Radius float64
}

// Contains reports whether p lies on the circle within tolerance tol.
func (c Circle) Contains(p Vec2, tol float64) bool {
	return math.Abs(c.Center.Dist(p)-c.Radius) <= tol
}

// Power returns the power of the point p with respect to the circle,
// |p−center|² − r². Points on the circle have power zero; interior points
// negative power; exterior points positive power.
func (c Circle) Power(p Vec2) float64 {
	return c.Center.DistSq(p) - c.Radius*c.Radius
}

// PointAt returns the point on the circle at the given angle (radians,
// measured counter-clockwise from the +x axis).
func (c Circle) PointAt(rad float64) Vec2 {
	s, cs := math.Sincos(rad)
	return Vec2{c.Center.X + c.Radius*cs, c.Center.Y + c.Radius*s}
}

// String implements fmt.Stringer.
func (c Circle) String() string {
	return fmt.Sprintf("circle{c=%v r=%.6g}", c.Center, c.Radius)
}

// RadicalLine returns the radical line of two circles: the locus of points
// with equal power with respect to both circles. When the circles intersect,
// the radical line is the line through their two intersection points — this
// is Observation 1 of the LION paper (Eq. 5):
//
//	2(x_i−x_j)·x + 2(y_i−y_j)·y = x_i²−x_j² + y_i²−y_j² − d_i² + d_j²
//
// The line is degenerate (zero normal) when the circles are concentric.
func RadicalLine(ci, cj Circle) Line2 {
	return Line2{
		A: 2 * (ci.Center.X - cj.Center.X),
		B: 2 * (ci.Center.Y - cj.Center.Y),
		C: ci.Center.NormSq() - cj.Center.NormSq() -
			ci.Radius*ci.Radius + cj.Radius*cj.Radius,
	}
}

// IntersectCircles returns the intersection points of two circles. It returns
// zero points when the circles are disjoint or concentric, one point when
// they are tangent (within tol), and two otherwise.
func IntersectCircles(a, b Circle, tol float64) []Vec2 {
	d := a.Center.Dist(b.Center)
	if d == 0 {
		return nil // concentric: either no points or infinitely many
	}
	if d > a.Radius+b.Radius+tol || d < math.Abs(a.Radius-b.Radius)-tol {
		return nil
	}
	// Distance from a.Center to the chord midpoint along the center line.
	h := (d*d + a.Radius*a.Radius - b.Radius*b.Radius) / (2 * d)
	discr := a.Radius*a.Radius - h*h
	dir := b.Center.Sub(a.Center).Scale(1 / d)
	mid := a.Center.Add(dir.Scale(h))
	if discr <= tol*tol {
		return []Vec2{mid}
	}
	off := dir.Perp().Scale(math.Sqrt(discr))
	return []Vec2{mid.Add(off), mid.Sub(off)}
}

// Sphere is a sphere in space with the given center and radius.
type Sphere struct {
	Center Vec3
	Radius float64
}

// Contains reports whether p lies on the sphere within tolerance tol.
func (s Sphere) Contains(p Vec3, tol float64) bool {
	return math.Abs(s.Center.Dist(p)-s.Radius) <= tol
}

// Power returns the power of the point p with respect to the sphere.
func (s Sphere) Power(p Vec3) float64 {
	return s.Center.DistSq(p) - s.Radius*s.Radius
}

// String implements fmt.Stringer.
func (s Sphere) String() string {
	return fmt.Sprintf("sphere{c=%v r=%.6g}", s.Center, s.Radius)
}

// Plane3 is a plane in implicit form A·x + B·y + C·z = D.
type Plane3 struct {
	A, B, C, D float64
}

// IsDegenerate reports whether the plane has a zero normal.
func (p Plane3) IsDegenerate() bool { return p.A == 0 && p.B == 0 && p.C == 0 }

// Eval returns A·x + B·y + C·z − D, the signed (unnormalised) residual of v.
func (p Plane3) Eval(v Vec3) float64 {
	return p.A*v.X + p.B*v.Y + p.C*v.Z - p.D
}

// Dist returns the Euclidean distance from v to the plane.
func (p Plane3) Dist(v Vec3) float64 {
	n := math.Sqrt(p.A*p.A + p.B*p.B + p.C*p.C)
	if n == 0 {
		return math.Inf(1)
	}
	return math.Abs(p.Eval(v)) / n
}

// Normal returns the (unnormalised) plane normal.
func (p Plane3) Normal() Vec3 { return Vec3{p.A, p.B, p.C} }

// String implements fmt.Stringer.
func (p Plane3) String() string {
	return fmt.Sprintf("%.6g*x + %.6g*y + %.6g*z = %.6g", p.A, p.B, p.C, p.D)
}

// RadicalPlane returns the radical plane of two spheres: the locus of points
// with equal power with respect to both. When the spheres intersect, the
// radical plane contains their intersection circle — this is the 3-D
// extension used by LION (Eq. 8):
//
//	2(x_i−x_j)x + 2(y_i−y_j)y + 2(z_i−z_j)z
//	  = x_i²−x_j² + y_i²−y_j² + z_i²−z_j² − d_i² + d_j²
//
// The plane is degenerate when the spheres are concentric.
func RadicalPlane(si, sj Sphere) Plane3 {
	return Plane3{
		A: 2 * (si.Center.X - sj.Center.X),
		B: 2 * (si.Center.Y - sj.Center.Y),
		C: 2 * (si.Center.Z - sj.Center.Z),
		D: si.Center.NormSq() - sj.Center.NormSq() -
			si.Radius*si.Radius + sj.Radius*sj.Radius,
	}
}
