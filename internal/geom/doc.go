// Package geom provides the planar and spatial geometry primitives used by
// the LION localization model: vectors, lines, planes, circles, spheres, and
// the radical lines / radical planes that turn intersections of circles and
// spheres into linear constraints.
//
// All quantities are in metres unless stated otherwise. The package is pure
// and allocation-light; every type is a plain value type safe to copy.
package geom
