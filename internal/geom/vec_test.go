package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vec2AlmostEq(a, b Vec2, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol)
}

func vec3AlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVec2Arithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Vec2
		want Vec2
	}{
		{"add", V2(1, 2).Add(V2(3, -4)), V2(4, -2)},
		{"sub", V2(1, 2).Sub(V2(3, -4)), V2(-2, 6)},
		{"scale", V2(1, -2).Scale(2.5), V2(2.5, -5)},
		{"perp", V2(1, 0).Perp(), V2(0, 1)},
		{"lerp0", V2(1, 1).Lerp(V2(3, 5), 0), V2(1, 1)},
		{"lerp1", V2(1, 1).Lerp(V2(3, 5), 1), V2(3, 5)},
		{"lerpHalf", V2(1, 1).Lerp(V2(3, 5), 0.5), V2(2, 3)},
		{"rotate90", V2(1, 0).Rotate(math.Pi / 2), V2(0, 1)},
		{"unit", V2(3, 4).Unit(), V2(0.6, 0.8)},
		{"unitZero", V2(0, 0).Unit(), V2(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !vec2AlmostEq(tt.got, tt.want, eps) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVec2DotCrossNorm(t *testing.T) {
	if got := V2(1, 2).Dot(V2(3, 4)); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := V2(1, 0).Cross(V2(0, 1)); got != 1 {
		t.Errorf("Cross = %v, want 1", got)
	}
	if got := V2(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := V2(3, 4).NormSq(); got != 25 {
		t.Errorf("NormSq = %v, want 25", got)
	}
	if got := V2(1, 1).Dist(V2(4, 5)); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestVec2Angle(t *testing.T) {
	tests := []struct {
		v    Vec2
		want float64
	}{
		{V2(1, 0), 0},
		{V2(0, 1), math.Pi / 2},
		{V2(-1, 0), math.Pi},
		{V2(0, -1), -math.Pi / 2},
	}
	for _, tt := range tests {
		if got := tt.v.Angle(); !almostEq(got, tt.want, eps) {
			t.Errorf("Angle(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestVec2IsFinite(t *testing.T) {
	if !V2(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V2(math.NaN(), 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V2(0, math.Inf(1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVec3Arithmetic(t *testing.T) {
	a, b := V3(1, 2, 3), V3(-4, 5, 0.5)
	if got, want := a.Add(b), V3(-3, 7, 3.5); !vec3AlmostEq(got, want, eps) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := a.Sub(b), V3(5, -3, 2.5); !vec3AlmostEq(got, want, eps) {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := a.Scale(2), V3(2, 4, 6); !vec3AlmostEq(got, want, eps) {
		t.Errorf("Scale = %v, want %v", got, want)
	}
	if got := a.Dot(b); !almostEq(got, -4+10+1.5, eps) {
		t.Errorf("Dot = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	got := V3(1, 0, 0).Cross(V3(0, 1, 0))
	if !vec3AlmostEq(got, V3(0, 0, 1), eps) {
		t.Errorf("x cross y = %v, want (0,0,1)", got)
	}
	// Cross product is perpendicular to both operands.
	a, b := V3(1, 2, 3), V3(-2, 0.5, 4)
	c := a.Cross(b)
	if !almostEq(c.Dot(a), 0, eps) || !almostEq(c.Dot(b), 0, eps) {
		t.Errorf("cross product not perpendicular: %v", c)
	}
}

func TestVec3Projection(t *testing.T) {
	v := V3(1, 2, 3)
	if got := v.XY(); got != V2(1, 2) {
		t.Errorf("XY = %v", got)
	}
	if got := V2(1, 2).XYZ(7); got != V3(1, 2, 7) {
		t.Errorf("XYZ = %v", got)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, v := range []Vec3{
		{math.NaN(), 0, 0}, {0, math.Inf(-1), 0}, {0, 0, math.NaN()},
	} {
		if v.IsFinite() {
			t.Errorf("%v reported finite", v)
		}
	}
}

// clamp keeps quick-generated floats in a numerically sane range.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}

func TestVec2PropertyDotSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := V2(clamp(ax), clamp(ay))
		b := V2(clamp(bx), clamp(by))
		return a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec2PropertyCrossAntisymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := V2(clamp(ax), clamp(ay))
		b := V2(clamp(bx), clamp(by))
		return a.Cross(b) == -b.Cross(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec2PropertyTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := V2(clamp(ax), clamp(ay))
		b := V2(clamp(bx), clamp(by))
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3PropertyCrossPerpendicular(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3(clamp(ax), clamp(ay), clamp(az))
		b := V3(clamp(bx), clamp(by), clamp(bz))
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 {
			return true
		}
		return math.Abs(c.Dot(a)) <= 1e-6*scale*scale &&
			math.Abs(c.Dot(b)) <= 1e-6*scale*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec2PropertyRotatePreservesNorm(t *testing.T) {
	f := func(ax, ay, rad float64) bool {
		a := V2(clamp(ax), clamp(ay))
		r := a.Rotate(clamp(rad))
		return math.Abs(r.Norm()-a.Norm()) <= 1e-6*(1+a.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
