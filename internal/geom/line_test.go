package geom

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLineThrough(t *testing.T) {
	l := LineThrough(V2(0, 0), V2(1, 1))
	if !l.Contains(V2(0.5, 0.5), eps) {
		t.Errorf("midpoint not on line %v", l)
	}
	if l.Contains(V2(0, 1), 1e-3) {
		t.Errorf("off-line point reported on line %v", l)
	}
}

func TestLinePointDir(t *testing.T) {
	l := LinePointDir(V2(2, 3), V2(0, 1)) // vertical line x=2
	if !l.Contains(V2(2, -7), eps) {
		t.Errorf("(2,-7) not on vertical line %v", l)
	}
	if got := l.Dist(V2(5, 0)); !almostEq(got, 3, eps) {
		t.Errorf("Dist = %v, want 3", got)
	}
}

func TestLineIntersect(t *testing.T) {
	l := LineThrough(V2(0, 0), V2(1, 1))
	m := LineThrough(V2(0, 2), V2(2, 0))
	p, err := l.Intersect(m)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if !vec2AlmostEq(p, V2(1, 1), eps) {
		t.Errorf("intersection = %v, want (1,1)", p)
	}
}

func TestLineIntersectParallel(t *testing.T) {
	l := LineThrough(V2(0, 0), V2(1, 0))
	m := LineThrough(V2(0, 1), V2(1, 1))
	if _, err := l.Intersect(m); !errors.Is(err, ErrNoIntersection) {
		t.Errorf("parallel intersect err = %v, want ErrNoIntersection", err)
	}
	if _, err := l.Intersect(l); !errors.Is(err, ErrNoIntersection) {
		t.Errorf("self intersect err = %v, want ErrNoIntersection", err)
	}
}

func TestLineNormalize(t *testing.T) {
	l := Line2{A: 3, B: 4, C: 10}.Normalize()
	if !almostEq(math.Hypot(l.A, l.B), 1, eps) {
		t.Errorf("normal not unit: %v", l)
	}
	// Normalising must not move the line.
	p := V2(2, 1) // satisfies 3*2+4*1=10
	if !l.Contains(p, eps) {
		t.Errorf("point left the line after Normalize: %v", l)
	}
	var degenerate Line2
	if got := degenerate.Normalize(); got != degenerate {
		t.Errorf("degenerate Normalize changed value: %v", got)
	}
}

func TestLineProject(t *testing.T) {
	l := LineThrough(V2(0, 0), V2(1, 0)) // x-axis
	if got := l.Project(V2(3, 5)); !vec2AlmostEq(got, V2(3, 0), eps) {
		t.Errorf("Project = %v, want (3,0)", got)
	}
	// Projection is idempotent.
	p := l.Project(V2(-2, 7))
	if !vec2AlmostEq(l.Project(p), p, eps) {
		t.Errorf("projection not idempotent")
	}
}

func TestLineDirection(t *testing.T) {
	l := LineThrough(V2(0, 0), V2(2, 2))
	d := l.Direction()
	if !almostEq(d.Norm(), 1, eps) {
		t.Errorf("direction not unit: %v", d)
	}
	if !almostEq(math.Abs(d.Dot(V2(1, 1).Unit())), 1, eps) {
		t.Errorf("direction %v not along (1,1)", d)
	}
}

func TestLineIsDegenerate(t *testing.T) {
	if !(Line2{C: 1}).IsDegenerate() {
		t.Error("zero-normal line not reported degenerate")
	}
	if (Line2{A: 1}).IsDegenerate() {
		t.Error("valid line reported degenerate")
	}
}

func TestSegment2(t *testing.T) {
	s := Segment2{From: V2(0, 0), To: V2(4, 0)}
	if got := s.Length(); got != 4 {
		t.Errorf("Length = %v", got)
	}
	if got := s.Midpoint(); got != V2(2, 0) {
		t.Errorf("Midpoint = %v", got)
	}
	if got := s.At(0.25); got != V2(1, 0) {
		t.Errorf("At(0.25) = %v", got)
	}
	if !s.Line().Contains(V2(17, 0), eps) {
		t.Error("supporting line wrong")
	}
}

func TestSegment3(t *testing.T) {
	s := Segment3{From: V3(0, 0, 0), To: V3(0, 0, 2)}
	if got := s.Length(); got != 2 {
		t.Errorf("Length = %v", got)
	}
	if got := s.Midpoint(); got != V3(0, 0, 1) {
		t.Errorf("Midpoint = %v", got)
	}
	if got := s.At(0.5); got != V3(0, 0, 1) {
		t.Errorf("At = %v", got)
	}
}

func TestLinePropertyEndpointsOnLine(t *testing.T) {
	f := func(px, py, qx, qy float64) bool {
		p := V2(clamp(px), clamp(py))
		q := V2(clamp(qx), clamp(qy))
		if p.Dist(q) < 1e-9 {
			return true
		}
		l := LineThrough(p, q)
		tol := 1e-6 * (1 + p.Norm() + q.Norm())
		return l.Dist(p) <= tol && l.Dist(q) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinePropertyProjectOnLine(t *testing.T) {
	f := func(px, py, qx, qy, rx, ry float64) bool {
		p := V2(clamp(px), clamp(py))
		q := V2(clamp(qx), clamp(qy))
		r := V2(clamp(rx), clamp(ry))
		if p.Dist(q) < 1e-6 {
			return true
		}
		l := LineThrough(p, q)
		proj := l.Project(r)
		tol := 1e-5 * (1 + p.Norm() + q.Norm() + r.Norm())
		return l.Dist(proj) <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
