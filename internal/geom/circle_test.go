package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCircleBasics(t *testing.T) {
	c := Circle{Center: V2(1, 2), Radius: 3}
	if !c.Contains(V2(4, 2), eps) {
		t.Error("point on circle not contained")
	}
	if c.Contains(V2(1, 2), 1e-3) {
		t.Error("center reported on circle")
	}
	if got := c.Power(V2(1, 2)); !almostEq(got, -9, eps) {
		t.Errorf("Power(center) = %v, want -9", got)
	}
	if got := c.Power(V2(4, 2)); !almostEq(got, 0, eps) {
		t.Errorf("Power(on circle) = %v, want 0", got)
	}
	p := c.PointAt(math.Pi / 2)
	if !vec2AlmostEq(p, V2(1, 5), eps) {
		t.Errorf("PointAt(pi/2) = %v, want (1,5)", p)
	}
}

func TestRadicalLinePassesThroughIntersections(t *testing.T) {
	a := Circle{Center: V2(0, 0), Radius: 2}
	b := Circle{Center: V2(2, 0), Radius: 2}
	l := RadicalLine(a, b)
	pts := IntersectCircles(a, b, eps)
	if len(pts) != 2 {
		t.Fatalf("expected 2 intersection points, got %d", len(pts))
	}
	for _, p := range pts {
		if !l.Contains(p, 1e-9) {
			t.Errorf("intersection %v not on radical line %v", p, l)
		}
	}
}

func TestRadicalLineConcentricDegenerate(t *testing.T) {
	a := Circle{Center: V2(1, 1), Radius: 1}
	b := Circle{Center: V2(1, 1), Radius: 2}
	if l := RadicalLine(a, b); !l.IsDegenerate() {
		t.Errorf("concentric radical line not degenerate: %v", l)
	}
}

func TestIntersectCircles(t *testing.T) {
	tests := []struct {
		name string
		a, b Circle
		want int
	}{
		{
			"two points",
			Circle{V2(0, 0), 1}, Circle{V2(1, 0), 1}, 2,
		},
		{
			"tangent external",
			Circle{V2(0, 0), 1}, Circle{V2(2, 0), 1}, 1,
		},
		{
			"disjoint",
			Circle{V2(0, 0), 1}, Circle{V2(5, 0), 1}, 0,
		},
		{
			"contained disjoint",
			Circle{V2(0, 0), 5}, Circle{V2(1, 0), 1}, 0,
		},
		{
			"concentric",
			Circle{V2(0, 0), 1}, Circle{V2(0, 0), 2}, 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pts := IntersectCircles(tt.a, tt.b, 1e-12)
			if len(pts) != tt.want {
				t.Fatalf("got %d points, want %d", len(pts), tt.want)
			}
			for _, p := range pts {
				if !tt.a.Contains(p, 1e-9) || !tt.b.Contains(p, 1e-9) {
					t.Errorf("point %v not on both circles", p)
				}
			}
		})
	}
}

func TestSphereBasics(t *testing.T) {
	s := Sphere{Center: V3(0, 0, 0), Radius: 2}
	if !s.Contains(V3(0, 0, 2), eps) {
		t.Error("pole not on sphere")
	}
	if got := s.Power(V3(0, 0, 0)); !almostEq(got, -4, eps) {
		t.Errorf("Power = %v, want -4", got)
	}
}

func TestRadicalPlaneContainsIntersectionCircle(t *testing.T) {
	a := Sphere{Center: V3(0, 0, 0), Radius: 2}
	b := Sphere{Center: V3(2, 0, 0), Radius: 2}
	p := RadicalPlane(a, b)
	// The intersection circle lives in the plane x=1; sample points on it.
	r := math.Sqrt(4 - 1) // radius of intersection circle
	for _, ang := range []float64{0, 1, 2, 3, 4, 5} {
		q := V3(1, r*math.Cos(ang), r*math.Sin(ang))
		if !a.Contains(q, 1e-9) || !b.Contains(q, 1e-9) {
			t.Fatalf("sample point %v not on spheres", q)
		}
		if p.Dist(q) > 1e-9 {
			t.Errorf("point %v not on radical plane %v", q, p)
		}
	}
}

func TestRadicalPlaneConcentricDegenerate(t *testing.T) {
	a := Sphere{Center: V3(1, 1, 1), Radius: 1}
	b := Sphere{Center: V3(1, 1, 1), Radius: 3}
	if p := RadicalPlane(a, b); !p.IsDegenerate() {
		t.Errorf("concentric radical plane not degenerate: %v", p)
	}
}

func TestPlane3DistAndNormal(t *testing.T) {
	p := Plane3{A: 0, B: 0, C: 2, D: 4} // plane z=2
	if got := p.Dist(V3(10, -3, 5)); !almostEq(got, 3, eps) {
		t.Errorf("Dist = %v, want 3", got)
	}
	if got := p.Normal(); got != V3(0, 0, 2) {
		t.Errorf("Normal = %v", got)
	}
	var degenerate Plane3
	if !math.IsInf(degenerate.Dist(V3(0, 0, 0)), 1) {
		t.Error("degenerate plane distance not +Inf")
	}
}

// Property: every point on the radical line has equal power with respect to
// both circles.
func TestRadicalLinePropertyEqualPower(t *testing.T) {
	f := func(ax, ay, ar, bx, by, br, s float64) bool {
		a := Circle{V2(clamp(ax), clamp(ay)), math.Abs(clamp(ar)) + 0.1}
		b := Circle{V2(clamp(bx), clamp(by)), math.Abs(clamp(br)) + 0.1}
		if a.Center.Dist(b.Center) < 1e-6 {
			return true
		}
		l := RadicalLine(a, b)
		// Any point on the line: project an arbitrary point onto it.
		p := l.Project(V2(clamp(s), clamp(s*0.7)))
		scale := 1 + a.Center.NormSq() + b.Center.NormSq() + p.NormSq() +
			a.Radius*a.Radius + b.Radius*b.Radius
		return math.Abs(a.Power(p)-b.Power(p)) <= 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: radical plane of two spheres holds points of equal power.
func TestRadicalPlanePropertyEqualPower(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, ar, br float64) bool {
		a := Sphere{V3(clamp(ax), clamp(ay), clamp(az)), math.Abs(clamp(ar)) + 0.1}
		b := Sphere{V3(clamp(bx), clamp(by), clamp(bz)), math.Abs(clamp(br)) + 0.1}
		if a.Center.Dist(b.Center) < 1e-6 {
			return true
		}
		p := RadicalPlane(a, b)
		// Construct a point on the plane by walking from an arbitrary point
		// along the normal to the plane.
		n := p.Normal()
		q := V3(1, 2, -0.5)
		q = q.Sub(n.Scale(p.Eval(q) / n.NormSq()))
		scale := 1 + a.Center.NormSq() + b.Center.NormSq() + q.NormSq() +
			a.Radius*a.Radius + b.Radius*b.Radius
		return math.Abs(a.Power(q)-b.Power(q)) <= 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
