// Package calib is the reusable antenna-calibration solver core: given a
// scan of (tag position, wrapped phase) measurements it estimates the
// antenna's phase center with the linear localization model and the
// combined tag+antenna phase offset Δθ via the paper's Eq. 17 circular
// mean. It is the engine behind both the offline cmd/lioncal pipeline and
// the online internal/recal closed-loop recalibration controller, which is
// why it lives below the command layer and speaks internal types only.
package calib

import (
	"errors"
	"fmt"
	"math"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/traject"
)

// ErrTooFewSamples is returned when a calibration solve has fewer samples
// than Config.MinSamples (or the absolute floor of 8).
var ErrTooFewSamples = errors.New("calib: too few samples for a calibration solve")

// DefaultIntervals is the pairing-interval sweep used when Config.Intervals
// is nil — the same grid the adaptive offline pipeline sweeps.
var DefaultIntervals = []float64{0.15, 0.2, 0.25}

// Config controls a line-scan calibration solve (EstimateLine).
type Config struct {
	// Lambda is the carrier wavelength in metres. Required.
	Lambda float64
	// Smooth is the centred moving-average window applied during
	// preprocessing (odd, 0 or 1 disables).
	Smooth int
	// Intervals are the pairing intervals x_o to sweep; nil selects
	// DefaultIntervals.
	Intervals []float64
	// PositiveSide places the antenna on the positive side of the scan
	// line (the +90° half-plane).
	PositiveSide bool
	// Adaptive fuses the interval sweep by the paper's residual rule
	// instead of solving one joint system over all intervals.
	Adaptive bool
	// MinSamples is the minimum number of samples accepted; values below
	// 8 are raised to 8 (a line solve needs enough pairs to be
	// overdetermined).
	MinSamples int
	// Solve configures the least-squares core. A zero value selects
	// core.DefaultSolveOptions (IRWLS enabled).
	Solve core.SolveOptions
}

func (c Config) minSamples() int {
	if c.MinSamples < 8 {
		return 8
	}
	return c.MinSamples
}

func (c Config) intervals() []float64 {
	if len(c.Intervals) == 0 {
		return DefaultIntervals
	}
	return c.Intervals
}

func (c Config) solve() core.SolveOptions {
	if c.Solve == (core.SolveOptions{}) {
		return core.DefaultSolveOptions()
	}
	return c.Solve
}

// Result is one full antenna-calibration estimate.
type Result struct {
	// Center is the estimated phase center.
	Center geom.Vec3
	// Offset is the Eq. 17 phase offset Δθ = θ_T + θ_R in [0, 2π),
	// estimated against Center.
	Offset float64
	// Samples is the number of measurements the solve consumed.
	Samples int
	// RMS is the offset-model residual (OffsetResidualRMS) of the
	// estimate over its own input — the fit quality in radians.
	RMS float64
}

// EstimateLine runs the full single-line calibration pipeline: unwrap and
// smooth the raw wrapped phases, estimate the phase center with the linear
// model (adaptive interval sweep or one joint multi-interval system), then
// estimate the Eq. 17 phase offset against that center and report the
// resulting model-fit RMS.
func EstimateLine(positions []geom.Vec3, wrapped []float64, cfg Config) (Result, error) {
	if cfg.Lambda <= 0 {
		return Result{}, core.ErrBadLambda
	}
	if len(positions) != len(wrapped) {
		return Result{}, fmt.Errorf("calib: %d positions vs %d phases", len(positions), len(wrapped))
	}
	if len(positions) < cfg.minSamples() {
		return Result{}, fmt.Errorf("%w: have %d, need %d",
			ErrTooFewSamples, len(positions), cfg.minSamples())
	}
	obs, err := core.Preprocess(positions, wrapped, cfg.Smooth)
	if err != nil {
		return Result{}, err
	}
	var center geom.Vec3
	if cfg.Adaptive {
		res, err := core.AdaptiveLocate2DLine(obs, cfg.Lambda, cfg.intervals(),
			cfg.PositiveSide, cfg.solve())
		if err != nil {
			return Result{}, err
		}
		center = res.Position
	} else {
		sol, err := core.Locate2DLineIntervals(obs, cfg.Lambda, cfg.intervals(),
			cfg.PositiveSide, cfg.solve())
		if err != nil {
			return Result{}, err
		}
		center = sol.Position
	}
	offset, err := core.PhaseOffset(positions, wrapped, center, cfg.Lambda)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Center:  center,
		Offset:  offset,
		Samples: len(positions),
		RMS:     OffsetResidualRMS(positions, wrapped, center, offset, cfg.Lambda),
	}, nil
}

// OffsetResidualRMS scores a calibration (center, offset) against raw
// wrapped measurements: the RMS of the wrapped signed residual
// measured − Δθ − 4π·d/λ per sample, in radians. It is the validation
// metric the recalibration loop uses on held-out windows — lower is a
// better fit, and it needs no unwrapping so it works on any sample subset.
// Returns NaN for empty input.
func OffsetResidualRMS(positions []geom.Vec3, wrapped []float64, center geom.Vec3, offset, lambda float64) float64 {
	if len(positions) == 0 || len(positions) != len(wrapped) || lambda <= 0 {
		return math.NaN()
	}
	var sum float64
	for i, pos := range positions {
		r := rf.WrapPhaseSigned(wrapped[i] - offset -
			rf.PhaseOfDistance(center.Dist(pos), lambda))
		sum += r * r
	}
	return math.Sqrt(sum / float64(len(positions)))
}

// ScanConfig controls a structured-scan center solve (LocateScan) — the
// offline lioncal dispatch over the paper's scan geometries.
type ScanConfig struct {
	// Lambda is the carrier wavelength in metres. Required.
	Lambda float64
	// Interval is the pairing interval x_o for non-adaptive solves.
	Interval float64
	// ScanRange bounds the scan extent used by the structured solvers
	// (0 = use everything).
	ScanRange float64
	// Adaptive sweeps ranges {0.6, 0.8, 1.0} and intervals
	// {0.15, 0.2, 0.25} and fuses by the residual rule.
	Adaptive bool
	// PositiveSide places the target on the positive side (above the
	// plane / +90° of the line).
	PositiveSide bool
	// Solve configures the least-squares core. A zero value selects
	// core.DefaultSolveOptions.
	Solve core.SolveOptions
}

func (c ScanConfig) solve() core.SolveOptions {
	if c.Solve == (core.SolveOptions{}) {
		return core.DefaultSolveOptions()
	}
	return c.Solve
}

// LocateScan dispatches on the scan mode (threeline, twoline, line,
// planar) and returns the estimated phase center. labels carries the
// per-observation trajectory segment (traject.LineL1/L2/L3) and is only
// consulted by the multi-line modes; it may be nil for line/planar.
func LocateScan(mode string, obs []core.PosPhase, labels []int, cfg ScanConfig) (geom.Vec3, error) {
	if cfg.Lambda <= 0 {
		return geom.Vec3{}, core.ErrBadLambda
	}
	split := func(label int) []core.PosPhase {
		var out []core.PosPhase
		for i := range obs {
			if i < len(labels) && labels[i] == label {
				out = append(out, obs[i])
			}
		}
		return out
	}
	opts := core.StructuredOptions{
		ScanRange: cfg.ScanRange,
		Interval:  cfg.Interval,
		Solve:     cfg.solve(),
	}
	ranges := []float64{cfg.ScanRange}
	intervals := []float64{cfg.Interval}
	if cfg.Adaptive {
		ranges = []float64{0.6, 0.8, 1.0}
		intervals = []float64{0.15, 0.2, 0.25}
	}
	switch mode {
	case "threeline":
		in := core.ThreeLineInput{
			L1:     split(traject.LineL1),
			L2:     split(traject.LineL2),
			L3:     split(traject.LineL3),
			Lambda: cfg.Lambda,
		}
		if cfg.Adaptive {
			res, err := core.AdaptiveLocateThreeLine(in, ranges, intervals,
				core.StructuredOptions{Solve: cfg.solve()})
			if err != nil {
				return geom.Vec3{}, err
			}
			return res.Position, nil
		}
		sol, err := core.LocateThreeLine(in, opts)
		if err != nil {
			return geom.Vec3{}, err
		}
		return sol.Position, nil
	case "twoline":
		in := core.TwoLineInput{
			L1:     split(traject.LineL1),
			L2:     split(traject.LineL2),
			Lambda: cfg.Lambda,
		}
		if cfg.Adaptive {
			res, err := core.AdaptiveLocateTwoLine(in, cfg.PositiveSide, ranges, intervals,
				core.StructuredOptions{Solve: cfg.solve()})
			if err != nil {
				return geom.Vec3{}, err
			}
			return res.Position, nil
		}
		sol, err := core.LocateTwoLine(in, cfg.PositiveSide, opts)
		if err != nil {
			return geom.Vec3{}, err
		}
		return sol.Position, nil
	case "line":
		sol, err := core.Locate2DLine(obs, cfg.Lambda, cfg.Interval,
			cfg.PositiveSide, cfg.solve())
		if err != nil {
			return geom.Vec3{}, err
		}
		return sol.Position, nil
	case "planar":
		pairs := core.StridePairs(len(obs), len(obs)/4)
		sol, err := core.Locate3DPlanar(obs, cfg.Lambda, pairs,
			cfg.PositiveSide, cfg.solve())
		if err != nil {
			return geom.Vec3{}, err
		}
		return sol.Position, nil
	default:
		return geom.Vec3{}, fmt.Errorf("calib: unknown mode %q", mode)
	}
}
