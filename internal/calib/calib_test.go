package calib

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// lineScan synthesizes a clean single-line scan past an antenna: positions
// marching along x, phases following Eq. 2 exactly with a constant offset.
func lineScan(center geom.Vec3, lambda, offset float64, n int) ([]geom.Vec3, []float64) {
	positions := make([]geom.Vec3, n)
	wrapped := make([]float64, n)
	for i := range positions {
		x := -0.6 + 1.2*float64(i)/float64(n-1)
		positions[i] = geom.V3(x, 0, 0)
		wrapped[i] = rf.WrapPhase(rf.PhaseOfDistance(center.Dist(positions[i]), lambda) + offset)
	}
	return positions, wrapped
}

func TestEstimateLineRecoversCenterAndOffset(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	truth := geom.V3(0.07, 0.82, 0)
	const trueOffset = 2.31
	positions, wrapped := lineScan(truth, lambda, trueOffset, 400)

	for _, adaptive := range []bool{false, true} {
		res, err := EstimateLine(positions, wrapped, Config{
			Lambda:       lambda,
			PositiveSide: true,
			Adaptive:     adaptive,
		})
		if err != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, err)
		}
		if d := res.Center.Dist(truth); d > 0.02 {
			t.Errorf("adaptive=%v: center %v is %.4f m from truth %v", adaptive, res.Center, d, truth)
		}
		if d := math.Abs(rf.WrapPhaseSigned(res.Offset - trueOffset)); d > 0.15 {
			t.Errorf("adaptive=%v: offset %.4f vs truth %.4f (|Δ|=%.4f)", adaptive, res.Offset, trueOffset, d)
		}
		if res.Samples != len(positions) {
			t.Errorf("adaptive=%v: Samples = %d, want %d", adaptive, res.Samples, len(positions))
		}
		// A clean synthetic scan must fit its own model tightly.
		if !(res.RMS < 0.3) {
			t.Errorf("adaptive=%v: self-fit RMS = %v, want < 0.3 rad", adaptive, res.RMS)
		}
	}
}

func TestEstimateLineRejectsBadInput(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	positions, wrapped := lineScan(geom.V3(0, 0.8, 0), lambda, 1, 100)

	if _, err := EstimateLine(positions, wrapped, Config{}); !errors.Is(err, core.ErrBadLambda) {
		t.Errorf("zero lambda: err = %v, want ErrBadLambda", err)
	}
	if _, err := EstimateLine(positions[:5], wrapped[:5], Config{Lambda: lambda}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("short input: err = %v, want ErrTooFewSamples", err)
	}
	if _, err := EstimateLine(positions, wrapped[:50], Config{Lambda: lambda}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := EstimateLine(positions[:40], wrapped[:40],
		Config{Lambda: lambda, MinSamples: 64}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("below MinSamples: err = %v, want ErrTooFewSamples", err)
	}
}

func TestOffsetResidualRMSDiscriminates(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	center := geom.V3(0.07, 0.82, 0)
	const offset = 2.31
	positions, wrapped := lineScan(center, lambda, offset, 200)

	good := OffsetResidualRMS(positions, wrapped, center, offset, lambda)
	if !(good < 1e-9) {
		t.Errorf("exact model RMS = %v, want ~0", good)
	}
	// A wrong offset must score strictly worse; the residual is exactly the
	// offset error for a correct center.
	bad := OffsetResidualRMS(positions, wrapped, center, offset+0.5, lambda)
	if math.Abs(bad-0.5) > 1e-9 {
		t.Errorf("offset-perturbed RMS = %v, want 0.5", bad)
	}
	// A displaced center must also score worse.
	if worse := OffsetResidualRMS(positions, wrapped, center.Add(geom.V3(0, 0.1, 0)), offset, lambda); !(worse > good) {
		t.Errorf("center-perturbed RMS %v not worse than exact %v", worse, good)
	}
	if !math.IsNaN(OffsetResidualRMS(nil, nil, center, offset, lambda)) {
		t.Error("empty input did not return NaN")
	}
}

func TestLocateScanLineMode(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	truth := geom.V3(0.0, 0.8, 0)
	positions, wrapped := lineScan(truth, lambda, 1.2, 400)
	obs, err := core.Preprocess(positions, wrapped, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LocateScan("line", obs, nil, ScanConfig{
		Lambda: lambda, Interval: 0.2, PositiveSide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Dist(truth); d > 0.02 {
		t.Errorf("line mode center %v is %.4f m from truth %v", got, d, truth)
	}
	if _, err := LocateScan("bogus", obs, nil, ScanConfig{Lambda: lambda}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := LocateScan("line", obs, nil, ScanConfig{}); !errors.Is(err, core.ErrBadLambda) {
		t.Errorf("zero lambda: err = %v, want ErrBadLambda", err)
	}
}
