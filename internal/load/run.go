package load

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/wire"
)

// Config parameterises one load run.
type Config struct {
	// Target is the base URL of a liond node or lionroute router.
	Target string
	// Scenario is the workload; required.
	Scenario *Scenario
	// Rate is the peak samples/sec (phase RateScale multiplies it).
	// Zero uses the scenario default.
	Rate float64
	// Duration is the total run length. Zero uses the scenario default.
	Duration time.Duration
	// Batch is the samples per POST. Zero means 64.
	Batch int
	// Workers is the sender goroutine count. Zero means 2.
	Workers int
	// Codec encodes ingest bodies. Nil means the binary wire codec.
	Codec dataset.Codec
	// ScrapeEvery is the /v1/slo + /metrics poll interval. Zero means 1s.
	ScrapeEvery time.Duration
	// Settle is how long to wait after the last send before the final
	// scrape, letting server queues drain into the histograms. Zero means
	// 500ms.
	Settle time.Duration
	// Client is the HTTP client for both senders and scraper. Nil builds
	// one with a per-request timeout.
	Client *http.Client
	// NewSink overrides the sink per worker (tests). Nil posts to Target.
	NewSink func(worker int) Sink
	// Seed makes the fleet reproducible. Zero means 1.
	Seed int64
}

// slot is one precomputed schedule entry: a batch due at start+Due during
// phase Phase.
type slot struct {
	Due   time.Duration
	Phase int
}

// Result is everything one run measured.
type Result struct {
	Scenario  *Scenario
	Target    string
	CodecName string
	Rate      float64
	Duration  time.Duration
	Batch     int
	Workers   int
	Start     time.Time
	Elapsed   time.Duration
	Recorder  *Recorder
	Scrape    ScrapeSummary
}

// AchievedRate returns the samples/sec the run actually delivered.
func (r *Result) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	t := r.Recorder.Total()
	return float64(t.Samples) / r.Elapsed.Seconds()
}

// buildSchedule lays out every batch send of the run on the ideal clock:
// phase by phase, one slot every batch/rate seconds. The schedule is fixed
// before the first send, which is what makes the run open-loop.
func buildSchedule(phases []Phase, rate float64, total time.Duration, batch int) []slot {
	var slots []slot
	cursor := time.Duration(0)
	for pi, p := range phases {
		dur := time.Duration(p.Frac * float64(total))
		r := rate * p.RateScale
		if r > 0 {
			interval := time.Duration(float64(batch) / r * float64(time.Second))
			if interval <= 0 {
				interval = time.Microsecond
			}
			for off := time.Duration(0); off < dur; off += interval {
				slots = append(slots, slot{Due: cursor + off, Phase: pi})
			}
		}
		cursor += dur
	}
	return slots
}

// worker owns one partition of the fleet and one disjoint subset of the
// schedule. Everything it touches per step is preallocated.
type worker struct {
	fleet *Fleet
	sink  Sink
	rec   *Recorder
	slots []slot
	buf   []dataset.TaggedSample
	start time.Time
}

// step executes one schedule slot: wait for the ideal clock, fill, send,
// and record latency from the scheduled time. Allocation-steady — the only
// allocations are whatever the sink's transport makes.
func (w *worker) step(sl slot) {
	due := w.start.Add(sl.Due)
	wait := time.Until(due)
	if wait > 0 {
		time.Sleep(wait)
	}
	n := w.fleet.Fill(w.buf, sl.Due.Seconds())
	accepted, dropped, err := w.sink.Send(w.buf[:n])
	latency := time.Since(due)
	w.rec.Record(sl.Phase, latency, sl.Due, n, accepted, dropped, err != nil, wait < 0)
}

func (w *worker) run(ctx context.Context) {
	for _, sl := range w.slots {
		select {
		case <-ctx.Done():
			return
		default:
		}
		w.step(sl)
	}
}

// Run executes one load run to completion (or ctx cancellation) and returns
// the merged measurements. The scraper polls throughout and once more after
// the settle period, so the result always carries the post-drain server view.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Scenario == nil {
		return nil, errors.New("load: config needs a scenario")
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	rate := cfg.Rate
	if rate <= 0 {
		rate = cfg.Scenario.DefaultRate
	}
	total := cfg.Duration
	if total <= 0 {
		total = cfg.Scenario.DefaultDuration
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 64
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	codec := cfg.Codec
	if codec == nil {
		codec = wire.Codec{}
	}
	settle := cfg.Settle
	if settle <= 0 {
		settle = 500 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Target == "" && cfg.NewSink == nil {
		return nil, errors.New("load: config needs a target or a sink factory")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	fleet, err := BuildFleet(cfg.Scenario, seed)
	if err != nil {
		return nil, err
	}
	schedule := buildSchedule(cfg.Scenario.Phases, rate, total, batch)
	if len(schedule) == 0 {
		return nil, fmt.Errorf("load: empty schedule (rate %.0f, duration %s)", rate, total)
	}
	parts := fleet.Partition(workers)
	ws := make([]*worker, workers)
	for i := range ws {
		var sink Sink
		if cfg.NewSink != nil {
			sink = cfg.NewSink(i)
		} else {
			sink = NewHTTPSink(client, cfg.Target, codec)
		}
		ws[i] = &worker{
			fleet: parts[i],
			sink:  sink,
			rec:   NewRecorder(cfg.Scenario.Phases, total),
			buf:   make([]dataset.TaggedSample, batch),
		}
	}
	for i, sl := range schedule {
		w := ws[i%workers]
		w.slots = append(w.slots, sl)
	}

	var scraper *Scraper
	scrapeCtx, stopScrape := context.WithCancel(ctx)
	var scrapeDone chan struct{}
	if cfg.Target != "" {
		scraper = NewScraper(client, cfg.Target)
		scrapeDone = make(chan struct{})
		go func() {
			defer close(scrapeDone)
			scraper.Run(scrapeCtx, cfg.ScrapeEvery)
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range ws {
		w.start = start
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(ctx)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if scraper != nil {
		// Let server queues drain so staleness and ingest histograms cover
		// the whole run, then take the final scrape.
		select {
		case <-time.After(settle):
		case <-ctx.Done():
		}
	}
	stopScrape()
	if scrapeDone != nil {
		<-scrapeDone
	}

	rec := ws[0].rec
	for _, w := range ws[1:] {
		rec.Merge(w.rec)
	}
	res := &Result{
		Scenario:  cfg.Scenario,
		Target:    cfg.Target,
		CodecName: codec.Name(),
		Rate:      rate,
		Duration:  total,
		Batch:     batch,
		Workers:   workers,
		Start:     start,
		Elapsed:   elapsed,
		Recorder:  rec,
	}
	if scraper != nil {
		res.Scrape = scraper.Summary()
	} else {
		res.Scrape = ScrapeSummary{Dims: map[string]*DimSummary{}, Counters: map[string]float64{}}
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("load: run interrupted: %w", err)
	}
	return res, nil
}
