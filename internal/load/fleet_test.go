package load

import (
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/dataset"
)

func smokeScenario(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Lookup("smoke")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestBuildFleetDeterministic(t *testing.T) {
	sc := smokeScenario(t)
	a, err := BuildFleet(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFleet(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tags() != sc.Tags() || b.Tags() != sc.Tags() {
		t.Fatalf("fleet sizes %d/%d, want %d", a.Tags(), b.Tags(), sc.Tags())
	}
	bufA := make([]dataset.TaggedSample, 32)
	bufB := make([]dataset.TaggedSample, 32)
	a.Fill(bufA, 1.5)
	b.Fill(bufB, 1.5)
	for i := range bufA {
		if bufA[i] != bufB[i] {
			t.Fatalf("sample %d differs across same-seed fleets:\n%+v\n%+v", i, bufA[i], bufB[i])
		}
	}
	// A different seed produces different phases.
	c, err := BuildFleet(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	bufC := make([]dataset.TaggedSample, 32)
	c.Fill(bufC, 1.5)
	same := 0
	for i := range bufA {
		if bufA[i].Phase == bufC[i].Phase {
			same++
		}
	}
	if same == len(bufA) {
		t.Fatal("different seeds produced identical phase streams")
	}
}

func TestFleetFillStampsTime(t *testing.T) {
	f, err := BuildFleet(smokeScenario(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]dataset.TaggedSample, 16)
	f.Fill(buf, 2.25)
	for i, s := range buf {
		if s.TimeS != 2.25 {
			t.Fatalf("sample %d time %v, want the elapsed stamp 2.25", i, s.TimeS)
		}
		if s.Tag == "" {
			t.Fatalf("sample %d has no tag", i)
		}
	}
}

// TestFleetPingPongContinuity drives one tag stream through several full
// passes and checks the position never jumps more than one read step — the
// ping-pong replay must not seam at either end.
func TestFleetPingPongContinuity(t *testing.T) {
	f, err := BuildFleet(&Scenario{
		Name:            "one",
		Fleet:           []TagGroup{{Prefix: "T", Count: 1, Trajectory: "linear", Speed: 0.8, Span: 1.2}},
		Phases:          []Phase{{Name: "p", Frac: 1, RateScale: 1}},
		DefaultRate:     100,
		DefaultDuration: 1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := f.tags[0]
	n := len(ts.samples)
	if n < 10 {
		t.Fatalf("stream too short: %d", n)
	}
	// Max per-read travel: speed/rate with slack for float rounding.
	maxStep := 0.8/100*1.5 + 1e-9
	prev := *ts.next()
	for i := 0; i < 3*n; i++ {
		cur := *ts.next()
		d := math.Hypot(cur.X-prev.X, cur.Y-prev.Y)
		if d > maxStep {
			t.Fatalf("position jump %.4fm at replay step %d (max %.4f)", d, i, maxStep)
		}
		prev = cur
	}
}

func TestFleetPartitionDisjoint(t *testing.T) {
	f, err := BuildFleet(smokeScenario(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	parts := f.Partition(3)
	seen := map[string]int{}
	total := 0
	for _, p := range parts {
		total += p.Tags()
		for _, ts := range p.tags {
			seen[ts.tag]++
		}
	}
	if total != f.Tags() {
		t.Fatalf("partitions hold %d tags, fleet has %d", total, f.Tags())
	}
	for tag, n := range seen {
		if n != 1 {
			t.Fatalf("tag %s appears in %d partitions", tag, n)
		}
	}
	// More workers than tags: empty fleets fill nothing instead of panicking.
	many := f.Partition(1000)
	buf := make([]dataset.TaggedSample, 4)
	if n := many[999].Fill(buf, 0); n != 0 {
		t.Fatalf("empty fleet filled %d samples", n)
	}
}

func TestFleetFillZeroAlloc(t *testing.T) {
	f, err := BuildFleet(smokeScenario(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]dataset.TaggedSample, 64)
	el := 0.0
	if allocs := testing.AllocsPerRun(200, func() {
		el += 0.01
		f.Fill(buf, el)
	}); allocs != 0 {
		t.Fatalf("Fill allocates %.1f objects per call, want 0", allocs)
	}
}

func TestFleetRejectsUnknownTrajectory(t *testing.T) {
	_, err := BuildFleet(&Scenario{
		Name:            "bad",
		Fleet:           []TagGroup{{Prefix: "T", Count: 1, Trajectory: "teleport"}},
		Phases:          []Phase{{Name: "p", Frac: 1, RateScale: 1}},
		DefaultRate:     100,
		DefaultDuration: 1,
	}, 1)
	if err == nil {
		t.Fatal("unknown trajectory accepted")
	}
}
