package load

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestScraperFlatDoc(t *testing.T) {
	var call atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/slo":
			// First scrape reports the worse window.
			p99 := 0.5
			if call.Add(1) > 1 {
				p99 = 0.2
			}
			fmt.Fprintf(w, `{"staleness_seconds":{"p50":0.01,"p95":0.05,"p99":%g,"count":100},
				"alert_latency_seconds":2.5}`, p99)
		case "/metrics":
			fmt.Fprint(w, "# HELP lion_x_total x\n"+
				"lion_x_total 41\n"+
				"lion_y_total{shard=\"a\"} 1\n"+
				"lion_y_total{shard=\"b\"} 2\n")
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	s := NewScraper(nil, srv.URL)
	s.Scrape()
	s.Scrape()
	sum := s.Summary()
	if sum.Scrapes != 2 || sum.Errors != 0 {
		t.Fatalf("scrapes %d errors %d", sum.Scrapes, sum.Errors)
	}
	d := sum.Dims["staleness_seconds"]
	if d == nil {
		t.Fatal("staleness dimension missing")
	}
	if d.WorstP99 != 0.5 {
		t.Fatalf("worst p99 %v, want the first scrape's 0.5", d.WorstP99)
	}
	if d.Last.P99 != 0.2 || d.Last.Count != 100 {
		t.Fatalf("last quantiles %+v", d.Last)
	}
	if !sum.AlertSeen || sum.AlertLatency != 2.5 {
		t.Fatalf("alert latency %v seen=%v", sum.AlertLatency, sum.AlertSeen)
	}
	if sum.Counters["lion_x_total"] != 41 {
		t.Fatalf("lion_x_total = %v", sum.Counters["lion_x_total"])
	}
	if sum.Counters["lion_y_total"] != 3 {
		t.Fatalf("labelled counter not summed: %v", sum.Counters["lion_y_total"])
	}
}

func TestScraperClusterDoc(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/slo":
			fmt.Fprint(w, `{"shards":{"a":{"staleness_seconds":{"p99":9}}},
				"cluster":{"ingest_request_seconds":{"p50":0.001,"p95":0.002,"p99":0.003,"count":42}}}`)
		case "/metrics":
			fmt.Fprint(w, "")
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	s := NewScraper(nil, srv.URL)
	s.Scrape()
	sum := s.Summary()
	if d := sum.Dims["ingest_request_seconds"]; d == nil || d.WorstP99 != 0.003 {
		t.Fatalf("cluster rollup not used: %+v", sum.Dims)
	}
	// The raw per-shard section must not leak in as dimensions.
	if _, ok := sum.Dims["shards"]; ok {
		t.Fatal("shards section parsed as a dimension")
	}
	if _, ok := sum.Dims["staleness_seconds"]; ok {
		t.Fatal("per-shard dimension leaked past the cluster rollup")
	}
}

func TestScraperCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	s := NewScraper(nil, srv.URL)
	s.Scrape()
	if sum := s.Summary(); sum.Errors != 1 || sum.Scrapes != 1 {
		t.Fatalf("error scrape not counted: %+v", sum)
	}
}
