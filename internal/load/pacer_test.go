package load

import (
	"testing"
	"time"
)

func TestPacerSchedule(t *testing.T) {
	start := time.Unix(100, 0)
	p := NewPacer(start, 10*time.Millisecond)
	if got := p.ScheduledAt(0); !got.Equal(start) {
		t.Fatalf("tick 0 at %v, want %v", got, start)
	}
	if got := p.ScheduledAt(250); !got.Equal(start.Add(2500 * time.Millisecond)) {
		t.Fatalf("tick 250 at %v", got)
	}
	if got := PacerForRate(start, 200).Interval(); got != 5*time.Millisecond {
		t.Fatalf("200/s interval = %v, want 5ms", got)
	}
	// Unpaced pacers collapse every tick to the origin.
	if got := PacerForRate(start, 0).ScheduledAt(1000); !got.Equal(start) {
		t.Fatalf("unpaced tick at %v, want %v", got, start)
	}
}

func TestPacerWait(t *testing.T) {
	// A pacer whose schedule is in the past reports lateness immediately.
	p := NewPacer(time.Now().Add(-time.Second), 10*time.Millisecond)
	if late := p.Wait(0); late < 900*time.Millisecond {
		t.Fatalf("lateness %v, want ~1s", late)
	}
	// A future tick is waited for and reports zero lateness.
	p = NewPacer(time.Now(), 20*time.Millisecond)
	begin := time.Now()
	if late := p.Wait(1); late != 0 {
		t.Fatalf("future tick reported late %v", late)
	}
	if waited := time.Since(begin); waited < 10*time.Millisecond {
		t.Fatalf("Wait returned after %v, want ~20ms", waited)
	}
}
