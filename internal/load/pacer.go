package load

import "time"

// Pacer is the ideal-clock schedule of an open-loop sender: tick i is due
// at start + i·interval, independent of how long any send actually took.
// It is the shared pacing primitive of the lionload generator and
// `lionsim -pace`, and the heart of coordinated-omission safety — latency
// is measured against ScheduledAt, never against "when the loop got here".
//
// Pacer is a value type with no internal state mutation; it is safe to
// copy and to use from multiple goroutines (each goroutine paces its own
// tick indices).
type Pacer struct {
	start    time.Time
	interval time.Duration
}

// NewPacer returns a pacer whose tick 0 is due at start, with one tick
// every interval. A non-positive interval collapses every tick to start
// (send as fast as possible, still measured from a fixed origin).
func NewPacer(start time.Time, interval time.Duration) Pacer {
	if interval < 0 {
		interval = 0
	}
	return Pacer{start: start, interval: interval}
}

// PacerForRate returns a pacer emitting units (samples, batches, frames)
// at rate per second, starting at start. A non-positive rate returns an
// unpaced pacer.
func PacerForRate(start time.Time, rate float64) Pacer {
	if rate <= 0 {
		return NewPacer(start, 0)
	}
	return NewPacer(start, time.Duration(float64(time.Second)/rate))
}

// Start returns the schedule origin.
func (p Pacer) Start() time.Time { return p.start }

// Interval returns the tick spacing.
func (p Pacer) Interval() time.Duration { return p.interval }

// ScheduledAt returns the ideal-clock due time of tick i.
func (p Pacer) ScheduledAt(i int) time.Time {
	return p.start.Add(time.Duration(i) * p.interval)
}

// Wait sleeps until tick i is due and returns the lateness at wake-up:
// zero when the schedule was met, positive when the caller fell behind
// (the open-loop backlog that coordinated-omission-safe recording charges
// to every affected tick). Wait never sleeps when already late and
// allocates nothing.
func (p Pacer) Wait(i int) time.Duration {
	due := p.ScheduledAt(i)
	late := time.Since(due)
	if late < 0 {
		time.Sleep(-late)
		return 0
	}
	return late
}
