package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/rfid-lion/lion/internal/dataset"
)

// Sink delivers one batch of samples and reports the server's per-sample
// verdict. Implementations are used from exactly one worker goroutine each.
type Sink interface {
	// Send delivers batch and returns how many samples the server accepted
	// and how many it dropped or rejected. A transport or HTTP-status error
	// means the whole batch is unaccounted for.
	Send(batch []dataset.TaggedSample) (accepted, dropped int, err error)
}

// HTTPSink posts batches to a liond or lionroute /v1/samples endpoint with
// the chosen codec, reusing one encode buffer across sends. It understands
// both servers' ingest responses: liond answers {"accepted","dropped"},
// the router {"accepted","rejected"}.
type HTTPSink struct {
	client *http.Client
	url    string
	codec  dataset.Codec
	buf    bytes.Buffer
}

// NewHTTPSink builds a sink for the target base URL ("http://host:port").
// A nil client uses http.DefaultClient.
func NewHTTPSink(client *http.Client, base string, codec dataset.Codec) *HTTPSink {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPSink{client: client, url: base + "/v1/samples", codec: codec}
}

// ingestReply covers both server shapes.
type ingestReply struct {
	Accepted int    `json:"accepted"`
	Dropped  int    `json:"dropped"`
	Rejected int    `json:"rejected"`
	Error    string `json:"error"`
}

// Send implements Sink.
func (s *HTTPSink) Send(batch []dataset.TaggedSample) (int, int, error) {
	s.buf.Reset()
	if err := s.codec.Encode(&s.buf, batch); err != nil {
		return 0, 0, err
	}
	req, err := http.NewRequest(http.MethodPost, s.url, bytes.NewReader(s.buf.Bytes()))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", s.codec.ContentType())
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var reply ingestReply
	dec := json.NewDecoder(io.LimitReader(resp.Body, 1<<20))
	if err := dec.Decode(&reply); err != nil && resp.StatusCode == http.StatusOK {
		return 0, 0, fmt.Errorf("load: bad ingest reply: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("load: ingest status %d: %s", resp.StatusCode, reply.Error)
	}
	return reply.Accepted, reply.Dropped + reply.Rejected, nil
}
