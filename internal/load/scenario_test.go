package load

import (
	"strings"
	"testing"
)

func TestScenarioLibraryValid(t *testing.T) {
	lib := Scenarios()
	if len(lib) < 4 {
		t.Fatalf("library has %d scenarios, want at least 4", len(lib))
	}
	seen := map[string]bool{}
	for _, sc := range lib {
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario %s", sc.Name)
		}
		seen[sc.Name] = true
		if sc.DefaultRate <= 0 || sc.DefaultDuration <= 0 {
			t.Errorf("scenario %s has no defaults", sc.Name)
		}
		if sc.Tags() <= 0 {
			t.Errorf("scenario %s has no tags", sc.Name)
		}
		if sc.SLO.IngestP99 <= 0 {
			t.Errorf("scenario %s has no ingest p99 SLO", sc.Name)
		}
	}
	for _, want := range []string{"portal", "conveyor", "dockdoor", "turntable", "smoke"} {
		if !seen[want] {
			t.Errorf("library missing scenario %s", want)
		}
	}
}

func TestScenarioLookup(t *testing.T) {
	sc, err := Lookup("portal")
	if err != nil || sc.Name != "portal" {
		t.Fatalf("Lookup(portal) = %v, %v", sc, err)
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "portal") {
		t.Fatalf("unknown lookup error %v should list known scenarios", err)
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	bad := &Scenario{
		Name:   "bad",
		Fleet:  []TagGroup{{Prefix: "X", Count: 1}},
		Phases: []Phase{{Name: "only", Frac: 0.5, RateScale: 1}},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("phase fractions summing to 0.5 accepted")
	}
	bad.Phases = []Phase{{Name: "only", Frac: 1, RateScale: 1}}
	bad.Fleet[0].Count = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-count fleet group accepted")
	}
}
