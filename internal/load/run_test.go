package load

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
)

// nullSink accepts everything instantly; the measurement-path tests use it
// so only the harness's own work is on the clock.
type nullSink struct{ samples atomic.Int64 }

func (n *nullSink) Send(batch []dataset.TaggedSample) (int, int, error) {
	n.samples.Add(int64(len(batch)))
	return len(batch), 0, nil
}

// stallSink accepts instantly except for one call, which blocks — the
// simulated server stall of the coordinated-omission test.
type stallSink struct {
	nullSink
	calls    atomic.Int64
	stallAt  int64
	stallFor time.Duration
}

func (s *stallSink) Send(batch []dataset.TaggedSample) (int, int, error) {
	if s.calls.Add(1) == s.stallAt {
		time.Sleep(s.stallFor)
	}
	return s.nullSink.Send(batch)
}

func TestBuildSchedule(t *testing.T) {
	phases := []Phase{
		{Name: "ramp", Frac: 0.5, RateScale: 0.5},
		{Name: "steady", Frac: 0.5, RateScale: 1},
	}
	// 1000 samples/s peak, batch 50, 2s total: ramp sends 500/s = 10
	// batches/s for 1s, steady 20 batches/s for 1s.
	slots := buildSchedule(phases, 1000, 2*time.Second, 50)
	var ramp, steady int
	for _, sl := range slots {
		switch sl.Phase {
		case 0:
			ramp++
			if sl.Due >= time.Second {
				t.Fatalf("ramp slot due at %v, past the phase end", sl.Due)
			}
		case 1:
			steady++
			if sl.Due < time.Second || sl.Due >= 2*time.Second {
				t.Fatalf("steady slot due at %v, outside [1s,2s)", sl.Due)
			}
		}
	}
	if ramp != 10 || steady != 20 {
		t.Fatalf("schedule has %d ramp + %d steady batches, want 10 + 20", ramp, steady)
	}
	for i := 1; i < len(slots); i++ {
		if slots[i].Due < slots[i-1].Due {
			t.Fatalf("schedule not monotonic at slot %d", i)
		}
	}
	// A zero-rate phase contributes time but no slots.
	slots = buildSchedule([]Phase{
		{Name: "idle", Frac: 0.5, RateScale: 0},
		{Name: "go", Frac: 0.5, RateScale: 1},
	}, 100, 2*time.Second, 10)
	if len(slots) != 10 || slots[0].Due != time.Second {
		t.Fatalf("idle phase mishandled: %d slots, first at %v", len(slots), slots[0].Due)
	}
}

func TestRunNullSink(t *testing.T) {
	sc := smokeScenario(t)
	var sink nullSink
	res, err := Run(context.Background(), Config{
		Scenario: sc,
		Rate:     2000,
		Duration: 500 * time.Millisecond,
		Batch:    20,
		Workers:  2,
		NewSink:  func(int) Sink { return &sink },
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Recorder.Total()
	if total.Samples == 0 || int64(total.Samples) != sink.samples.Load() {
		t.Fatalf("recorder saw %d samples, sink saw %d", total.Samples, sink.samples.Load())
	}
	if total.Accepted != total.Samples || total.Dropped != 0 || total.Errors != 0 {
		t.Fatalf("null-sink accounting off: %+v", total)
	}
	// ~2000/s for 0.5s with ramp scaling: at least a few hundred samples.
	if total.Samples < 300 {
		t.Fatalf("only %d samples delivered", total.Samples)
	}
	if v := Evaluate(res); !v.Pass {
		t.Fatalf("null-sink run failed its verdict: %+v", v.failures())
	}
}

// TestRunCoordinatedOmissionSafe is the reason this package exists: when the
// server stalls once, every batch scheduled during the stall must record the
// backlog it suffered. A closed-loop harness would log exactly one slow
// batch; the open-loop schedule logs them all.
func TestRunCoordinatedOmissionSafe(t *testing.T) {
	sc := &Scenario{
		Name:            "co",
		Fleet:           []TagGroup{{Prefix: "T", Count: 4, Trajectory: "linear", Speed: 0.8, Span: 1.2}},
		Phases:          []Phase{{Name: "steady", Frac: 1, RateScale: 1}},
		DefaultRate:     1000,
		DefaultDuration: time.Second,
		SLO:             defaultSLO(),
	}
	stall := 300 * time.Millisecond
	sink := &stallSink{stallAt: 10, stallFor: stall}
	res, err := Run(context.Background(), Config{
		Scenario: sc,
		Rate:     1000,
		Duration: time.Second,
		Batch:    10, // 100 batches/s on one worker
		Workers:  1,
		NewSink:  func(int) Sink { return sink },
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Recorder.Total()
	// The stall delays every batch scheduled inside it: ~30 of the ~100
	// batches, with backlog spread up to the full stall length.
	if p99, ok := total.Hist.Quantile(0.99); !ok || p99 < 0.2 {
		t.Fatalf("p99 %.3fs after a %.1fs stall — the tail was coordinated away", p99, stall.Seconds())
	}
	// More than 10%% of batches must carry stall backlog (one slow batch
	// out of ~100 would be ~1%%: the closed-loop lie).
	if p90, ok := total.Hist.Quantile(0.90); !ok || p90 < 0.05 {
		t.Fatalf("p90 %.3fs: only the stalled batch itself recorded the stall", p90)
	}
	if total.Late == 0 {
		t.Fatal("no batch was marked late despite the backlog")
	}
}

// TestWorkerStepZeroAlloc pins the measurement path: pacing, fleet fill, and
// latency recording allocate nothing per batch. Only the sink's transport may
// allocate, and the null sink doesn't.
func TestWorkerStepZeroAlloc(t *testing.T) {
	f, err := BuildFleet(smokeScenario(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{
		fleet: f,
		sink:  &nullSink{},
		rec:   NewRecorder([]Phase{{Name: "p", Frac: 1, RateScale: 1}}, time.Second),
		buf:   make([]dataset.TaggedSample, 64),
		start: time.Now().Add(-time.Minute), // schedule in the past: no sleeps
	}
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		w.step(slot{Due: time.Duration(i) * time.Millisecond, Phase: 0})
		i++
	}); allocs != 0 {
		t.Fatalf("worker step allocates %.1f objects per batch, want 0", allocs)
	}
}

// TestGeneratorThroughput asserts the harness itself sustains at least 100k
// samples/sec against a free sink — if the generator is slower than the
// servers it measures, every result is generator-bound noise.
func TestGeneratorThroughput(t *testing.T) {
	f, err := BuildFleet(smokeScenario(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{
		fleet: f,
		sink:  &nullSink{},
		rec:   NewRecorder([]Phase{{Name: "p", Frac: 1, RateScale: 1}}, time.Second),
		buf:   make([]dataset.TaggedSample, 256),
		start: time.Now().Add(-time.Hour),
	}
	const batches = 400 // 102400 samples
	begin := time.Now()
	for i := 0; i < batches; i++ {
		w.step(slot{Due: time.Duration(i), Phase: 0})
	}
	elapsed := time.Since(begin)
	rate := float64(batches*256) / elapsed.Seconds()
	if rate < 100_000 {
		t.Fatalf("generator sustains %.0f samples/s, want >= 100k", rate)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("nil scenario accepted")
	}
	sc := smokeScenario(t)
	if _, err := Run(context.Background(), Config{Scenario: sc}); err == nil {
		t.Fatal("missing target and sink accepted")
	}
}

func TestRunHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	var sink nullSink
	begin := time.Now()
	_, err := Run(ctx, Config{
		Scenario: smokeScenario(t),
		Rate:     100,
		Duration: 30 * time.Second,
		Batch:    10,
		NewSink:  func(int) Sink { return &sink },
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if took := time.Since(begin); took > 5*time.Second {
		t.Fatalf("cancelled run took %v to stop", took)
	}
}

func BenchmarkWorkerStep(b *testing.B) {
	sc, err := Lookup("smoke")
	if err != nil {
		b.Fatal(err)
	}
	f, err := BuildFleet(sc, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := &worker{
		fleet: f,
		sink:  &nullSink{},
		rec:   NewRecorder([]Phase{{Name: "p", Frac: 1, RateScale: 1}}, time.Second),
		buf:   make([]dataset.TaggedSample, 256),
		start: time.Now().Add(-time.Hour),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.step(slot{Due: time.Duration(i), Phase: 0})
	}
	b.SetBytes(256)
}
