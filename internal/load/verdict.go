package load

import (
	"fmt"
	"time"
)

// Check is one scored SLO bound.
type Check struct {
	// Name identifies the bound ("ingest_p99", "drop_rate", ...).
	Name string
	// Value is what the run measured; Bound is the scenario's target.
	Value float64
	Bound float64
	// Unit labels both numbers ("s", "ratio").
	Unit string
	// OK reports whether the bound held. Skipped marks bounds that could
	// not be scored (dimension never observed); a skipped check does not
	// fail the verdict but is reported.
	OK      bool
	Skipped bool
	// Detail optionally explains the score.
	Detail string
}

// Verdict is the scored outcome of one run.
type Verdict struct {
	Checks []Check
	// Pass is true when every non-skipped check held.
	Pass bool
}

// String renders "PASS"/"FAIL".
func (v *Verdict) String() string {
	if v.Pass {
		return "PASS"
	}
	return "FAIL"
}

// failures returns the failed checks.
func (v *Verdict) failures() []Check {
	var out []Check
	for _, c := range v.Checks {
		if !c.OK && !c.Skipped {
			out = append(out, c)
		}
	}
	return out
}

// Evaluate scores a run against its scenario's SLOs: client-observed ingest
// quantiles, delivery rates, the server-reported staleness and alert
// latency from the scrape, and the client/server p99 agreement band.
func Evaluate(res *Result) *Verdict {
	slo := res.Scenario.SLO
	total := res.Recorder.Total()
	v := &Verdict{Pass: true}
	add := func(c Check) {
		if !c.OK && !c.Skipped {
			v.Pass = false
		}
		v.Checks = append(v.Checks, c)
	}
	quantile := func(name string, q float64, bound time.Duration) {
		if bound <= 0 {
			return
		}
		val, ok := total.Hist.Quantile(q)
		if !ok {
			add(Check{Name: name, Bound: bound.Seconds(), Unit: "s",
				Skipped: true, Detail: "no samples recorded"})
			return
		}
		add(Check{Name: name, Value: val, Bound: bound.Seconds(), Unit: "s",
			OK: val <= bound.Seconds()})
	}
	quantile("ingest_p50", 0.50, slo.IngestP50)
	quantile("ingest_p95", 0.95, slo.IngestP95)
	quantile("ingest_p99", 0.99, slo.IngestP99)

	if slo.MaxDropRate > 0 {
		add(Check{Name: "drop_rate", Value: total.DropRate(), Bound: slo.MaxDropRate,
			Unit: "ratio", OK: total.DropRate() <= slo.MaxDropRate})
	}
	if slo.MaxErrorRate > 0 {
		add(Check{Name: "error_rate", Value: total.ErrorRate(), Bound: slo.MaxErrorRate,
			Unit: "ratio", OK: total.ErrorRate() <= slo.MaxErrorRate})
	}

	if slo.StalenessP99 > 0 {
		if d := res.Scrape.Dims["staleness_seconds"]; d != nil {
			add(Check{Name: "staleness_p99", Value: d.WorstP99,
				Bound: slo.StalenessP99.Seconds(), Unit: "s",
				OK:     d.WorstP99 <= slo.StalenessP99.Seconds(),
				Detail: "worst scraped window"})
		} else {
			add(Check{Name: "staleness_p99", Bound: slo.StalenessP99.Seconds(),
				Unit: "s", Skipped: true, Detail: "dimension never scraped"})
		}
	}
	if slo.AlertLatencyMax > 0 {
		if res.Scrape.AlertSeen {
			add(Check{Name: "alert_latency", Value: res.Scrape.AlertLatency,
				Bound: slo.AlertLatencyMax.Seconds(), Unit: "s",
				OK: res.Scrape.AlertLatency <= slo.AlertLatencyMax.Seconds()})
		} else {
			add(Check{Name: "alert_latency", Bound: slo.AlertLatencyMax.Seconds(),
				Unit: "s", Skipped: true, OK: true, Detail: "no alert fired"})
		}
	}

	if slo.AgreeFactor > 0 {
		clientP99, okC := total.Hist.Quantile(0.99)
		d := res.Scrape.Dims["ingest_request_seconds"]
		switch {
		case !okC || d == nil || d.Last.Count == 0:
			add(Check{Name: "p99_agreement", Unit: "s", Skipped: true,
				Detail: "server ingest_request_seconds not scraped"})
		default:
			serverP99 := d.WorstP99
			slack := slo.AgreeSlack.Seconds()
			// Each side may exceed the other only by the factor+slack band.
			// The client's clock includes schedule wait and transport, so
			// client >= server is expected; a server p99 far above the
			// client's means the instrumentation disagrees about the run.
			ok := clientP99 <= slo.AgreeFactor*serverP99+slack &&
				serverP99 <= slo.AgreeFactor*clientP99+slack
			add(Check{Name: "p99_agreement", Value: clientP99, Bound: serverP99,
				Unit: "s", OK: ok,
				Detail: fmt.Sprintf("client %.4fs vs server %.4fs (factor %g, slack %s)",
					clientP99, serverP99, slo.AgreeFactor, slo.AgreeSlack)})
		}
	}
	return v
}
