package load

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/wire"
)

func testBatch(n int) []dataset.TaggedSample {
	out := make([]dataset.TaggedSample, n)
	for i := range out {
		out[i] = dataset.TaggedSample{Tag: fmt.Sprintf("T-%d", i), TimeS: float64(i), Phase: 1.5}
	}
	return out
}

func TestHTTPSinkCodecs(t *testing.T) {
	var gotCT string
	var gotN int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCT = r.Header.Get("Content-Type")
		codec := dataset.SelectCodec([]dataset.Codec{dataset.NDJSON{}, wire.Codec{}}, gotCT)
		samples, err := codec.Decode(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		gotN = len(samples)
		fmt.Fprintf(w, `{"accepted":%d,"dropped":1}`, len(samples)-1)
	}))
	defer srv.Close()

	for _, codec := range []dataset.Codec{dataset.NDJSON{}, wire.Codec{}} {
		s := NewHTTPSink(srv.Client(), srv.URL, codec)
		accepted, dropped, err := s.Send(testBatch(8))
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if gotCT != codec.ContentType() || gotN != 8 {
			t.Fatalf("%s: server saw ct=%q n=%d", codec.Name(), gotCT, gotN)
		}
		if accepted != 7 || dropped != 1 {
			t.Fatalf("%s: accepted=%d dropped=%d", codec.Name(), accepted, dropped)
		}
	}
}

func TestHTTPSinkRouterReply(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"accepted":5,"rejected":3}`)
	}))
	defer srv.Close()
	s := NewHTTPSink(srv.Client(), srv.URL, dataset.NDJSON{})
	accepted, dropped, err := s.Send(testBatch(8))
	if err != nil || accepted != 5 || dropped != 3 {
		t.Fatalf("router reply mishandled: accepted=%d dropped=%d err=%v", accepted, dropped, err)
	}
}

func TestHTTPSinkErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	s := NewHTTPSink(srv.Client(), srv.URL, dataset.NDJSON{})
	if _, _, err := s.Send(testBatch(2)); err == nil {
		t.Fatal("503 reply reported as success")
	}
	srv.Close()
	if _, _, err := s.Send(testBatch(2)); err == nil {
		t.Fatal("dead server reported as success")
	}
}
