// Package load is the million-tag load harness: a deterministic open-loop
// generator that drives synthetic tag fleets from internal/sim at a
// configured tags/sec against a liond node or a lionroute cluster, measures
// the end-to-end SLOs a deployment actually promises (ingest latency,
// estimate staleness, drop rate, alert latency), and scores them against
// per-scenario targets.
//
// The core design decision is coordinated-omission safety. A closed-loop
// blaster that waits for each response before sending the next request
// silently conspires with a stalling server: while the server is stuck, the
// client stops issuing requests, so the stall appears in the log as ONE
// slow request instead of the thousands that real independent clients would
// have experienced. This harness instead schedules every batch on an ideal
// clock fixed before the run starts (send i is due at start + i·interval)
// and measures each batch's latency from its scheduled time, not from the
// moment the sender got around to it. A stalled server therefore inflates
// the recorded tail by exactly the backlog it caused — the tail cannot
// hide. See DESIGN.md §15 for the full rationale.
//
// The measurement path is allocation-steady: schedules are precomputed,
// batches are filled into reused buffers, and latencies go into
// stats.Hist (a fixed-array HDR-style histogram), so the generator can
// sustain hundreds of thousands of samples per second without the harness
// distorting the tail it exists to measure.
//
// The same scenario run also drives the server-side half of the
// measurement: a scraper polls /v1/slo and /metrics during the run so
// client-observed latency can be correlated with server-reported
// staleness, queue wait, and alert-fire latency, and the verdict engine
// cross-checks that the client's p99 and the server's p99 agree — a
// disagreement means one side of the instrumentation is lying.
package load
