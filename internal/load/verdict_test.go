package load

import (
	"strings"
	"testing"
	"time"
)

// fakeResult builds a result with a controlled latency distribution and
// scrape summary.
func fakeResult(t *testing.T, latencies []float64, scrape ScrapeSummary) *Result {
	t.Helper()
	sc, err := Lookup("smoke")
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(sc.Phases, time.Second)
	for i, l := range latencies {
		rec.Record(i%len(sc.Phases), time.Duration(l*float64(time.Second)),
			time.Duration(i)*time.Millisecond, 10, 10, 0, false, false)
	}
	if scrape.Dims == nil {
		scrape.Dims = map[string]*DimSummary{}
	}
	return &Result{
		Scenario: sc,
		Target:   "http://test",
		Rate:     500,
		Duration: time.Second,
		Elapsed:  time.Second,
		Batch:    10,
		Workers:  1,
		Recorder: rec,
		Scrape:   scrape,
	}
}

func manyFast(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.002
	}
	return out
}

func TestEvaluatePasses(t *testing.T) {
	res := fakeResult(t, manyFast(200), ScrapeSummary{
		Dims: map[string]*DimSummary{
			"staleness_seconds":      {WorstP99: 0.5, Last: Quantiles{P99: 0.5, Count: 10}},
			"ingest_request_seconds": {WorstP99: 0.003, Last: Quantiles{P99: 0.003, Count: 10}},
		},
		Scrapes: 3,
	})
	v := Evaluate(res)
	if !v.Pass {
		t.Fatalf("clean run failed: %+v", v.failures())
	}
	names := map[string]bool{}
	for _, c := range v.Checks {
		names[c.Name] = true
	}
	for _, want := range []string{"ingest_p50", "ingest_p95", "ingest_p99",
		"drop_rate", "error_rate", "staleness_p99", "alert_latency", "p99_agreement"} {
		if !names[want] {
			t.Errorf("check %s missing from verdict", want)
		}
	}
}

func TestEvaluateFailsSlowTail(t *testing.T) {
	lats := manyFast(200)
	for i := 190; i < 200; i++ {
		lats[i] = 2.0 // 5% of batches at 2s blows the 500ms p99
	}
	v := Evaluate(fakeResult(t, lats, ScrapeSummary{}))
	if v.Pass {
		t.Fatal("2s tail passed the verdict")
	}
	found := false
	for _, c := range v.failures() {
		if c.Name == "ingest_p99" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingest_p99 not among failures: %+v", v.failures())
	}
}

func TestEvaluateFailsDrops(t *testing.T) {
	res := fakeResult(t, manyFast(100), ScrapeSummary{})
	// Re-record with drops: 5% dropped against a 1% budget.
	rec := NewRecorder(res.Scenario.Phases, time.Second)
	for i := 0; i < 100; i++ {
		dropped := 0
		if i < 5 {
			dropped = 10
		}
		rec.Record(0, 2*time.Millisecond, time.Duration(i)*time.Millisecond,
			10, 10-dropped, dropped, false, false)
	}
	res.Recorder = rec
	v := Evaluate(res)
	if v.Pass {
		t.Fatal("5% drop rate passed a 1% budget")
	}
}

func TestEvaluateAgreement(t *testing.T) {
	// Server claims a p99 wildly above the client's: instrumentation lies.
	res := fakeResult(t, manyFast(200), ScrapeSummary{
		Dims: map[string]*DimSummary{
			"ingest_request_seconds": {WorstP99: 5, Last: Quantiles{P99: 5, Count: 10}},
		},
	})
	v := Evaluate(res)
	var agree *Check
	for i := range v.Checks {
		if v.Checks[i].Name == "p99_agreement" {
			agree = &v.Checks[i]
		}
	}
	if agree == nil || agree.Skipped || agree.OK {
		t.Fatalf("divergent server p99 not failed: %+v", agree)
	}
	// Without the server dimension the check is skipped, not failed.
	v = Evaluate(fakeResult(t, manyFast(200), ScrapeSummary{}))
	for _, c := range v.Checks {
		if c.Name == "p99_agreement" && !c.Skipped {
			t.Fatalf("agreement scored without server data: %+v", c)
		}
	}
	if !v.Pass {
		t.Fatalf("skipped agreement failed the verdict: %+v", v.failures())
	}
}

func TestReportAndMacro(t *testing.T) {
	res := fakeResult(t, manyFast(200), ScrapeSummary{
		Dims: map[string]*DimSummary{
			"staleness_seconds": {WorstP99: 0.4, Last: Quantiles{P50: 0.1, P95: 0.3, P99: 0.4, Count: 7}},
		},
		Scrapes:      2,
		AlertSeen:    true,
		AlertLatency: 1.25,
	})
	v := Evaluate(res)
	var b strings.Builder
	Report(&b, res, v)
	out := b.String()
	for _, want := range []string{"smoke", "verdict", "staleness_seconds",
		"worst latency per second", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	macro := Macro(res, v)
	if len(macro) < 5 {
		t.Fatalf("macro section has %d entries: %+v", len(macro), macro)
	}
	byName := map[string]bool{}
	for _, m := range macro {
		byName[m.Name] = true
		if m.Scenario != "smoke" {
			t.Errorf("macro %s carries scenario %q", m.Name, m.Scenario)
		}
		if !m.Pass() {
			t.Errorf("macro %s over its own target: %+v", m.Name, m)
		}
	}
	for _, want := range []string{"smoke/ingest_p99", "smoke/drop_rate", "smoke/achieved_rate"} {
		if !byName[want] {
			t.Errorf("macro entry %s missing", want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 0.5, 1}); got != "▁▄█" {
		t.Fatalf("sparkline = %q", got)
	}
	if got := sparkline([]float64{0, 0}); got != "▁▁" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
}
