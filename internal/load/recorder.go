package load

import (
	"time"

	"github.com/rfid-lion/lion/internal/stats"
)

// Recorder accumulates one worker's measurements: a latency histogram and
// delivery counters per scenario phase, plus a per-second worst-latency
// series for the report's sparkline. All methods are zero-alloc after
// construction; workers each own a Recorder and the runner merges them when
// the run ends, so the hot path takes no locks.
type Recorder struct {
	phases []PhaseStats
	series []float64 // worst latency seconds observed in each run second
}

// PhaseStats is the per-phase half of a Recorder: client-observed latency
// plus delivery accounting.
type PhaseStats struct {
	Name string
	// Hist holds batch latencies in seconds, measured from each batch's
	// ideal-clock scheduled time (coordinated-omission safe).
	Hist stats.Hist
	// Batches and Samples count send attempts; Accepted and Dropped are the
	// server's per-sample verdicts; Errors counts failed POSTs.
	Batches  uint64
	Samples  uint64
	Accepted uint64
	Dropped  uint64
	Errors   uint64
	// Late counts ticks whose sender was already behind schedule when the
	// tick came due — the open-loop backlog signal.
	Late uint64
}

// NewRecorder sizes a recorder for the given phases and run length.
func NewRecorder(phases []Phase, d time.Duration) *Recorder {
	r := &Recorder{
		phases: make([]PhaseStats, len(phases)),
		series: make([]float64, int(d.Seconds())+2),
	}
	for i, p := range phases {
		r.phases[i].Name = p.Name
	}
	return r
}

// Record logs one batch send: its phase index, its latency measured from the
// scheduled time, the elapsed run time of the schedule slot (for the
// per-second series), the batch's sample counts, and whether the sender was
// late to the slot. Zero-alloc.
func (r *Recorder) Record(phase int, latency, elapsed time.Duration,
	samples, accepted, dropped int, failed, late bool) {
	p := &r.phases[phase]
	sec := latency.Seconds()
	p.Hist.Record(sec)
	p.Batches++
	p.Samples += uint64(samples)
	p.Accepted += uint64(accepted)
	p.Dropped += uint64(dropped)
	if failed {
		p.Errors++
	}
	if late {
		p.Late++
	}
	if i := int(elapsed.Seconds()); i >= 0 && i < len(r.series) && sec > r.series[i] {
		r.series[i] = sec
	}
}

// Merge folds another recorder (same phase layout) into this one.
func (r *Recorder) Merge(other *Recorder) {
	for i := range r.phases {
		if i >= len(other.phases) {
			break
		}
		p, q := &r.phases[i], &other.phases[i]
		p.Hist.Merge(&q.Hist)
		p.Batches += q.Batches
		p.Samples += q.Samples
		p.Accepted += q.Accepted
		p.Dropped += q.Dropped
		p.Errors += q.Errors
		p.Late += q.Late
	}
	for i, v := range other.series {
		if i < len(r.series) && v > r.series[i] {
			r.series[i] = v
		}
	}
}

// Phases returns the per-phase stats.
func (r *Recorder) Phases() []PhaseStats { return r.phases }

// Series returns the per-second worst-latency series in seconds.
func (r *Recorder) Series() []float64 { return r.series }

// Total merges every phase into one histogram plus run-wide counters.
func (r *Recorder) Total() PhaseStats {
	var t PhaseStats
	t.Name = "total"
	for i := range r.phases {
		p := &r.phases[i]
		t.Hist.Merge(&p.Hist)
		t.Batches += p.Batches
		t.Samples += p.Samples
		t.Accepted += p.Accepted
		t.Dropped += p.Dropped
		t.Errors += p.Errors
		t.Late += p.Late
	}
	return t
}

// DropRate returns (dropped samples)/(sent samples), 0 when nothing was sent.
func (p *PhaseStats) DropRate() float64 {
	if p.Samples == 0 {
		return 0
	}
	return float64(p.Dropped) / float64(p.Samples)
}

// ErrorRate returns (failed batches)/(batches), 0 when nothing was sent.
func (p *PhaseStats) ErrorRate() float64 {
	if p.Batches == 0 {
		return 0
	}
	return float64(p.Errors) / float64(p.Batches)
}
