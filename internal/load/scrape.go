package load

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Quantiles is one latency dimension as served by /v1/slo — liond's flat
// document and lionroute's cluster rollup share the shape.
type Quantiles struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Count uint64  `json:"count"`
}

// DimSummary is what the scraper retains about one SLO dimension over a run:
// the worst p99 any scrape reported (SLOs are judged against the worst
// window, not the last), and the final scrape's full quantile set.
type DimSummary struct {
	WorstP99 float64
	Last     Quantiles
}

// ScrapeSummary is the server-side half of a run's evidence.
type ScrapeSummary struct {
	// Dims maps /v1/slo dimension keys ("staleness_seconds", ...) to their
	// over-the-run summaries.
	Dims map[string]*DimSummary
	// AlertLatency is the worst alert_latency_seconds reported; AlertSeen
	// records whether any scrape reported one at all.
	AlertLatency float64
	AlertSeen    bool
	// Counters holds the final /metrics counter readings, summed across
	// label sets per metric name.
	Counters map[string]float64
	// Scrapes and Errors count poll attempts and failures.
	Scrapes int
	Errors  int
}

// Scraper polls a target's /v1/slo and /metrics during a load run so
// client-observed latency can be correlated with what the server believes
// about itself. It understands both document shapes: liond's flat map and
// lionroute's {"shards":…,"cluster":…} rollup (the cluster section is used).
type Scraper struct {
	client *http.Client
	base   string

	mu  sync.Mutex
	sum ScrapeSummary
}

// NewScraper builds a scraper for the target base URL. A nil client uses
// http.DefaultClient.
func NewScraper(client *http.Client, base string) *Scraper {
	if client == nil {
		client = http.DefaultClient
	}
	return &Scraper{
		client: client,
		base:   base,
		sum: ScrapeSummary{
			Dims:     map[string]*DimSummary{},
			Counters: map[string]float64{},
		},
	}
}

// Run polls every interval until ctx is cancelled, then takes one final
// scrape so the post-drain state is always captured.
func (s *Scraper) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			s.Scrape()
			return
		case <-t.C:
			s.Scrape()
		}
	}
}

// Scrape performs one poll of both endpoints.
func (s *Scraper) Scrape() {
	doc, sloErr := s.fetchSLO()
	counters, metErr := s.fetchCounters()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sum.Scrapes++
	if sloErr != nil || metErr != nil {
		s.sum.Errors++
	}
	for key, q := range doc.dims {
		d := s.sum.Dims[key]
		if d == nil {
			d = &DimSummary{}
			s.sum.Dims[key] = d
		}
		if q.P99 > d.WorstP99 {
			d.WorstP99 = q.P99
		}
		d.Last = q
	}
	if doc.alertSeen {
		s.sum.AlertSeen = true
		if doc.alert > s.sum.AlertLatency {
			s.sum.AlertLatency = doc.alert
		}
	}
	for name, v := range counters {
		s.sum.Counters[name] = v
	}
}

// Summary returns a copy of everything scraped so far.
func (s *Scraper) Summary() ScrapeSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ScrapeSummary{
		Dims:         make(map[string]*DimSummary, len(s.sum.Dims)),
		AlertLatency: s.sum.AlertLatency,
		AlertSeen:    s.sum.AlertSeen,
		Counters:     make(map[string]float64, len(s.sum.Counters)),
		Scrapes:      s.sum.Scrapes,
		Errors:       s.sum.Errors,
	}
	for k, d := range s.sum.Dims {
		c := *d
		out.Dims[k] = &c
	}
	for k, v := range s.sum.Counters {
		out.Counters[k] = v
	}
	return out
}

// sloDoc is one parsed /v1/slo response.
type sloDoc struct {
	dims      map[string]Quantiles
	alert     float64
	alertSeen bool
}

// fetchSLO fetches and normalises /v1/slo. A router response carries the
// dimensions under "cluster"; a liond response is the flat document itself.
func (s *Scraper) fetchSLO() (sloDoc, error) {
	doc := sloDoc{dims: map[string]Quantiles{}}
	resp, err := s.client.Get(s.base + "/v1/slo")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return doc, err
	}
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("load: /v1/slo status %d", resp.StatusCode)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		return doc, fmt.Errorf("load: /v1/slo: %w", err)
	}
	if cluster, ok := raw["cluster"]; ok {
		var inner map[string]json.RawMessage
		if err := json.Unmarshal(cluster, &inner); err != nil {
			return doc, fmt.Errorf("load: /v1/slo cluster section: %w", err)
		}
		raw = inner
	}
	for key, msg := range raw {
		if key == "alert_latency_seconds" {
			if json.Unmarshal(msg, &doc.alert) == nil {
				doc.alertSeen = true
			}
			continue
		}
		var q Quantiles
		if json.Unmarshal(msg, &q) == nil {
			doc.dims[key] = q
		}
	}
	return doc, nil
}

// fetchCounters fetches /metrics and sums every sample per base metric name.
// The parser handles exactly the subset the registry emits: `name value` and
// `name{labels} value` lines plus # comments — it is a run correlator, not a
// general Prometheus client.
func (s *Scraper) fetchCounters() (map[string]float64, error) {
	resp, err := s.client.Get(s.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: /metrics status %d", resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 4<<20))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		name := line[:sp]
		if b := strings.IndexByte(name, '{'); b >= 0 {
			name = name[:b]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
		if err != nil {
			continue
		}
		out[name] += v
	}
	return out, sc.Err()
}
