package load

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Phase is one stage of a scenario's load shape. Durations and rates are
// declared as fractions of the run's total duration and peak rate, so one
// scenario definition scales from a 5-second smoke run to an hour-long
// soak without editing the library.
type Phase struct {
	// Name labels the phase in reports ("ramp", "steady", "spike", "drain").
	Name string
	// Frac is this phase's share of the total run duration; a scenario's
	// phase fractions must sum to 1.
	Frac float64
	// RateScale multiplies the run's peak rate during this phase (1 = peak).
	RateScale float64
}

// SLO declares the per-scenario service-level targets the verdict engine
// scores a run against. Zero-valued bounds are not scored.
type SLO struct {
	// IngestP50/P95/P99 bound the client-observed ingest latency —
	// measured from each batch's ideal-clock scheduled send time to its
	// acknowledged completion, so server stalls count fully.
	IngestP50 time.Duration
	IngestP95 time.Duration
	IngestP99 time.Duration
	// StalenessP99 bounds the server-reported estimate staleness p99
	// (scraped from /v1/slo during the run; worst scrape counts).
	StalenessP99 time.Duration
	// MaxDropRate bounds (server drops + rejected batches) / samples sent.
	MaxDropRate float64
	// MaxErrorRate bounds failed POSTs / batches sent.
	MaxErrorRate float64
	// AlertLatencyMax bounds the server-reported alert fire latency when
	// the scraped /v1/slo reports one (no alert firing is a pass).
	AlertLatencyMax time.Duration
	// AgreeFactor and AgreeSlack define the client/server p99 agreement
	// band: the run fails when either side's ingest p99 exceeds
	// factor × other + slack. Zero factor skips the check.
	AgreeFactor float64
	AgreeSlack  time.Duration
}

// TagGroup is one homogeneous slice of a scenario's fleet: Count tags on
// the same trajectory family, distinguished by seed and id suffix.
type TagGroup struct {
	// Prefix builds tag ids as "<Prefix>-<n>".
	Prefix string
	// Count is the number of distinct tags in the group.
	Count int
	// Trajectory selects the motion family: "linear" (conveyor/portal
	// pass), "circle" (turntable), "threeline" (calibration sweep).
	Trajectory string
	// Speed is the tag speed in m/s.
	Speed float64
	// Span is the scan extent in metres (linear/threeline) or the circle
	// radius.
	Span float64
}

// Scenario is one named workload from the library: a fleet mix, a load
// shape, and the SLOs the deployment must hold under it.
type Scenario struct {
	Name        string
	Description string
	Fleet       []TagGroup
	Phases      []Phase
	// DefaultRate is the peak samples/sec when the caller does not override.
	DefaultRate float64
	// DefaultDuration is the total run length when not overridden.
	DefaultDuration time.Duration
	SLO             SLO
}

// Validate checks the scenario's internal consistency.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("load: scenario without a name")
	}
	if len(s.Fleet) == 0 {
		return fmt.Errorf("load: scenario %s has no fleet", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("load: scenario %s has no phases", s.Name)
	}
	var frac float64
	for _, p := range s.Phases {
		if p.Frac <= 0 || p.RateScale < 0 {
			return fmt.Errorf("load: scenario %s phase %q: frac %v / scale %v out of range",
				s.Name, p.Name, p.Frac, p.RateScale)
		}
		frac += p.Frac
	}
	if frac < 0.999 || frac > 1.001 {
		return fmt.Errorf("load: scenario %s phase fractions sum to %v, want 1", s.Name, frac)
	}
	for _, g := range s.Fleet {
		if g.Count <= 0 {
			return fmt.Errorf("load: scenario %s group %s: count %d", s.Name, g.Prefix, g.Count)
		}
	}
	return nil
}

// Tags returns the total fleet size.
func (s *Scenario) Tags() int {
	n := 0
	for _, g := range s.Fleet {
		n += g.Count
	}
	return n
}

// defaultSLO is the baseline target set shared by the library; scenarios
// tighten or loosen individual bounds. The bounds are deliberately sized
// for a loaded single-machine CI box, not an idle workstation: macro SLO
// snapshots are committed and guarded per-PR, so a flaky bound would make
// every build a coin flip.
func defaultSLO() SLO {
	return SLO{
		IngestP50:       100 * time.Millisecond,
		IngestP95:       250 * time.Millisecond,
		IngestP99:       500 * time.Millisecond,
		StalenessP99:    5 * time.Second,
		MaxDropRate:     0.01,
		MaxErrorRate:    0.01,
		AlertLatencyMax: 30 * time.Second,
		AgreeFactor:     5,
		AgreeSlack:      100 * time.Millisecond,
	}
}

// Scenarios returns the built-in library, sorted by name. Each entry
// models one deployment pattern from the sim testbed's repertoire.
func Scenarios() []*Scenario {
	rampSteadySpikeDrain := []Phase{
		{Name: "ramp", Frac: 0.2, RateScale: 0.5},
		{Name: "steady", Frac: 0.45, RateScale: 1},
		{Name: "spike", Frac: 0.15, RateScale: 2},
		{Name: "drain", Frac: 0.2, RateScale: 0.25},
	}
	lib := []*Scenario{
		{
			Name: "portal",
			Description: "warehouse portal: pallets of tags pushed through a " +
				"dock-frame antenna in a steady stream with a receiving-dock spike",
			Fleet: []TagGroup{
				{Prefix: "PORTAL", Count: 48, Trajectory: "linear", Speed: 1.0, Span: 1.2},
				{Prefix: "PALLET", Count: 16, Trajectory: "linear", Speed: 0.6, Span: 1.2},
			},
			Phases:          rampSteadySpikeDrain,
			DefaultRate:     2000,
			DefaultDuration: 30 * time.Second,
			SLO:             defaultSLO(),
		},
		{
			Name: "conveyor",
			Description: "conveyor belt: a constant stream of single tags at " +
				"belt speed, the steadiest shape in the library",
			Fleet: []TagGroup{
				{Prefix: "BELT", Count: 32, Trajectory: "linear", Speed: 0.4, Span: 1.2},
			},
			Phases: []Phase{
				{Name: "ramp", Frac: 0.15, RateScale: 0.5},
				{Name: "steady", Frac: 0.7, RateScale: 1},
				{Name: "drain", Frac: 0.15, RateScale: 0.25},
			},
			DefaultRate:     1500,
			DefaultDuration: 30 * time.Second,
			SLO:             defaultSLO(),
		},
		{
			Name: "dockdoor",
			Description: "dock door: bursty truck arrivals — short violent " +
				"spikes over a low idle floor, the hardest tail shape",
			Fleet: []TagGroup{
				{Prefix: "DOCK", Count: 96, Trajectory: "linear", Speed: 1.2, Span: 1.6},
			},
			Phases: []Phase{
				{Name: "idle", Frac: 0.2, RateScale: 0.1},
				{Name: "arrival", Frac: 0.2, RateScale: 2},
				{Name: "lull", Frac: 0.2, RateScale: 0.1},
				{Name: "arrival2", Frac: 0.2, RateScale: 2},
				{Name: "drain", Frac: 0.2, RateScale: 0.05},
			},
			DefaultRate:     2500,
			DefaultDuration: 30 * time.Second,
			SLO:             defaultSLO(),
		},
		{
			Name: "turntable",
			Description: "turntable: few tags re-read continuously on a " +
				"rotating fixture — low fleet churn, high per-tag rate",
			Fleet: []TagGroup{
				{Prefix: "TABLE", Count: 8, Trajectory: "circle", Speed: 0.3, Span: 0.2},
			},
			Phases: []Phase{
				{Name: "ramp", Frac: 0.2, RateScale: 0.5},
				{Name: "steady", Frac: 0.6, RateScale: 1},
				{Name: "drain", Frac: 0.2, RateScale: 0.5},
			},
			DefaultRate:     1000,
			DefaultDuration: 30 * time.Second,
			SLO:             defaultSLO(),
		},
		{
			Name: "smoke",
			Description: "CI smoke: a two-phase miniature of portal sized for " +
				"`make load-smoke` — seconds long, modest rate, full verdict",
			Fleet: []TagGroup{
				{Prefix: "SMOKE", Count: 8, Trajectory: "linear", Speed: 0.8, Span: 1.2},
			},
			Phases: []Phase{
				{Name: "ramp", Frac: 0.4, RateScale: 0.5},
				{Name: "steady", Frac: 0.6, RateScale: 1},
			},
			DefaultRate:     500,
			DefaultDuration: 4 * time.Second,
			SLO:             defaultSLO(),
		},
	}
	sort.Slice(lib, func(i, j int) bool { return lib[i].Name < lib[j].Name })
	return lib
}

// Lookup returns the named library scenario.
func Lookup(name string) (*Scenario, error) {
	var names []string
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
		names = append(names, s.Name)
	}
	return nil, fmt.Errorf("load: unknown scenario %q (have %s)", name, strings.Join(names, ", "))
}
