package load

import (
	"fmt"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// tagStream is one tag's pre-generated read loop. The send path replays the
// samples in ping-pong order (forward, then backward, then forward again) so
// the tag's position never jumps across a wrap seam, and stamps each emitted
// sample with the run's elapsed time — timestamps stay monotonic per tag no
// matter how many passes the run makes.
type tagStream struct {
	tag     string
	samples []dataset.TaggedSample
	i       int
	dir     int
}

// next returns the stream's current sample and advances the ping-pong
// cursor. Zero-alloc.
func (t *tagStream) next() *dataset.TaggedSample {
	s := &t.samples[t.i]
	if len(t.samples) == 1 {
		return s
	}
	ni := t.i + t.dir
	if ni < 0 || ni >= len(t.samples) {
		t.dir = -t.dir
		ni = t.i + t.dir
	}
	t.i = ni
	return s
}

// Fleet is a set of tag streams feeding one sender. Fill is not safe for
// concurrent use; partition the fleet across workers instead of locking it.
type Fleet struct {
	tags []*tagStream
	next int
}

// BuildFleet pre-generates the scenario's tag fleet: every tag gets its own
// reproducible phase stream from the sim testbed (distinct seed, distinct
// trajectory offsets), generated once up front so the send path touches no
// RNG, no trig, and no allocator.
func BuildFleet(sc *Scenario, seed int64) (*Fleet, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	env, err := sim.NewEnvironment()
	if err != nil {
		return nil, err
	}
	ant := &sim.Antenna{
		ID:             "LOAD-ANT",
		PhysicalCenter: geom.V3(0, 1.5, 0.5),
	}
	f := &Fleet{}
	n := 0
	for _, g := range sc.Fleet {
		for k := 0; k < g.Count; k++ {
			id := fmt.Sprintf("%s-%04d", g.Prefix, k)
			reader, err := sim.NewReader(env, sim.ReaderConfig{
				RateHz: 100,
				Seed:   seed + int64(n) + 1,
			})
			if err != nil {
				return nil, err
			}
			trj, err := groupTrajectory(g, k)
			if err != nil {
				return nil, fmt.Errorf("load: fleet group %s: %w", g.Prefix, err)
			}
			raw, err := reader.Scan(ant, &sim.Tag{ID: id, PhaseOffset: float64(n%7) * 0.9}, trj)
			if err != nil {
				return nil, err
			}
			if len(raw) == 0 {
				return nil, fmt.Errorf("load: fleet group %s produced an empty scan", g.Prefix)
			}
			samples := make([]dataset.TaggedSample, len(raw))
			for i, s := range raw {
				samples[i] = dataset.Tagged(id, s)
			}
			f.tags = append(f.tags, &tagStream{tag: id, samples: samples, dir: 1})
			n++
		}
	}
	return f, nil
}

// groupTrajectory builds tag k's trajectory for a group, offsetting each tag
// slightly so fleet members never share a position.
func groupTrajectory(g TagGroup, k int) (traject.Trajectory, error) {
	span := g.Span
	if span <= 0 {
		span = 1.2
	}
	speed := g.Speed
	if speed <= 0 {
		speed = 0.5
	}
	dy := 0.05 * float64(k%8)
	dz := 0.05 * float64(k/8%8)
	switch g.Trajectory {
	case "", "linear":
		return traject.NewLinear(
			geom.V3(-span/2, dy, dz), geom.V3(span/2, dy, dz), speed)
	case "circle":
		return traject.NewCircularXY(
			geom.V3(0, dy, dz), span, speed, float64(k)*0.7, 1)
	case "threeline":
		return traject.NewThreeLineScan(traject.ThreeLineConfig{
			XMin: -span / 2, XMax: span / 2,
			YSpacing: 0.2 + dy, ZSpacing: 0.2 + dz,
			Speed: speed,
		})
	default:
		return nil, fmt.Errorf("unknown trajectory %q", g.Trajectory)
	}
}

// Tags returns the number of tags in the fleet.
func (f *Fleet) Tags() int { return len(f.tags) }

// Partition splits the fleet's tags round-robin into n disjoint sub-fleets,
// one per worker, so each worker fills batches lock-free. Workers beyond the
// tag count receive empty fleets; Fill on an empty fleet fills nothing.
func (f *Fleet) Partition(n int) []*Fleet {
	if n < 1 {
		n = 1
	}
	out := make([]*Fleet, n)
	for i := range out {
		out[i] = &Fleet{}
	}
	for i, t := range f.tags {
		w := out[i%n]
		w.tags = append(w.tags, t)
	}
	return out
}

// Fill writes the next batch into buf, interleaving the fleet's tags
// round-robin and stamping every sample with the run-elapsed timestamp.
// It returns the number of samples written (len(buf), or 0 for an empty
// fleet) and allocates nothing.
func (f *Fleet) Fill(buf []dataset.TaggedSample, elapsedS float64) int {
	if len(f.tags) == 0 {
		return 0
	}
	for i := range buf {
		t := f.tags[f.next]
		f.next++
		if f.next == len(f.tags) {
			f.next = 0
		}
		buf[i] = *t.next()
		buf[i].TimeS = elapsedS
	}
	return len(buf)
}
