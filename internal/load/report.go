package load

import (
	"fmt"
	"io"
	"strings"

	"github.com/rfid-lion/lion/internal/benchfmt"
)

// sparkTicks are the eight levels of the per-second latency sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as one rune per element, scaled to the series
// maximum. Empty seconds render as the lowest tick.
func sparkline(values []float64) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkTicks)-1))
			if i >= len(sparkTicks) {
				i = len(sparkTicks) - 1
			}
		}
		b.WriteRune(sparkTicks[i])
	}
	return b.String()
}

// q pulls a quantile out of a phase's histogram, rendering "-" when empty.
func q(p *PhaseStats, quant float64) string {
	v, ok := p.Hist.Quantile(quant)
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.1fms", v*1e3)
}

// Report writes the human-readable run report: configuration, per-phase
// latency table, the per-second worst-latency sparkline, the scraped server
// view, and the scored verdict.
func Report(w io.Writer, res *Result, v *Verdict) {
	fmt.Fprintf(w, "lionload %s against %s (%s codec)\n",
		res.Scenario.Name, res.Target, res.CodecName)
	fmt.Fprintf(w, "  %s\n", res.Scenario.Description)
	fmt.Fprintf(w, "  peak %.0f samples/s for %s, batch %d, %d workers, %d tags\n",
		res.Rate, res.Duration, res.Batch, res.Workers, res.Scenario.Tags())
	fmt.Fprintf(w, "  achieved %.0f samples/s over %.1fs\n\n",
		res.AchievedRate(), res.Elapsed.Seconds())

	fmt.Fprintf(w, "  %-10s %8s %9s %8s %8s %8s %6s %5s %5s\n",
		"phase", "batches", "samples", "p50", "p95", "p99", "drops", "errs", "late")
	rows := res.Recorder.Phases()
	for i := range rows {
		p := &rows[i]
		fmt.Fprintf(w, "  %-10s %8d %9d %8s %8s %8s %6d %5d %5d\n",
			p.Name, p.Batches, p.Samples, q(p, 0.50), q(p, 0.95), q(p, 0.99),
			p.Dropped, p.Errors, p.Late)
	}
	total := res.Recorder.Total()
	fmt.Fprintf(w, "  %-10s %8d %9d %8s %8s %8s %6d %5d %5d\n\n",
		"total", total.Batches, total.Samples,
		q(&total, 0.50), q(&total, 0.95), q(&total, 0.99),
		total.Dropped, total.Errors, total.Late)

	series := res.Recorder.Series()
	if n := int(res.Elapsed.Seconds()) + 1; n < len(series) {
		series = series[:n]
	}
	fmt.Fprintf(w, "  worst latency per second: %s\n\n", sparkline(series))

	if res.Scrape.Scrapes > 0 {
		fmt.Fprintf(w, "  server view (%d scrapes, %d failed):\n",
			res.Scrape.Scrapes, res.Scrape.Errors)
		for _, key := range sortedDimKeys(res.Scrape.Dims) {
			d := res.Scrape.Dims[key]
			fmt.Fprintf(w, "    %-26s worst p99 %8.1fms  last p50/p95/p99 %.1f/%.1f/%.1fms (n=%d)\n",
				key, d.WorstP99*1e3,
				d.Last.P50*1e3, d.Last.P95*1e3, d.Last.P99*1e3, d.Last.Count)
		}
		if res.Scrape.AlertSeen {
			fmt.Fprintf(w, "    %-26s %.2fs\n", "alert_latency", res.Scrape.AlertLatency)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "  verdict: %s\n", v)
	for _, c := range v.Checks {
		status := "ok  "
		switch {
		case c.Skipped:
			status = "skip"
		case !c.OK:
			status = "FAIL"
		}
		line := fmt.Sprintf("    [%s] %-14s", status, c.Name)
		if !c.Skipped {
			line += fmt.Sprintf(" %10.4f %-5s bound %.4f", c.Value, c.Unit, c.Bound)
		}
		if c.Detail != "" {
			line += "  (" + c.Detail + ")"
		}
		fmt.Fprintln(w, line)
	}
}

// sortedDimKeys returns the scrape dimension keys in stable order.
func sortedDimKeys(dims map[string]*DimSummary) []string {
	keys := make([]string, 0, len(dims))
	for k := range dims {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Macro converts a scored run into the benchfmt macro entries that lionload
// merges into a BENCH_*.json snapshot for benchguard to police: every scored
// check becomes one entry (its bound is the guarded target), plus the
// achieved rate as an unguarded trend entry.
func Macro(res *Result, v *Verdict) []benchfmt.Macro {
	scen := res.Scenario.Name
	unit := func(u string) string {
		if u == "s" {
			return "seconds"
		}
		return u
	}
	var out []benchfmt.Macro
	total := res.Recorder.Total()
	for _, c := range v.Checks {
		if c.Skipped || c.Name == "p99_agreement" {
			continue
		}
		out = append(out, benchfmt.Macro{
			Name:     scen + "/" + c.Name,
			Scenario: scen,
			Metric:   c.Name,
			Value:    c.Value,
			Target:   c.Bound,
			Unit:     unit(c.Unit),
			Count:    total.Samples,
		})
	}
	out = append(out, benchfmt.Macro{
		Name:     scen + "/achieved_rate",
		Scenario: scen,
		Metric:   "achieved_rate",
		Value:    res.AchievedRate(),
		Unit:     "samples_per_second",
		Count:    total.Samples,
	})
	return out
}
