// Package tracker turns LION into a streaming estimator for the paper's
// motivating IIoT application: items riding a conveyor past a calibrated
// antenna. It consumes the reader's phase stream one read at a time,
// unwraps incrementally, and re-solves the linear model over a sliding
// window, yielding a fresh position estimate every few reads — light-weight
// enough for an edge node, exactly the deployment the paper targets.
package tracker

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// Errors returned by the tracker.
var (
	ErrNotReady  = errors.New("tracker: not enough samples in the window yet")
	ErrBadConfig = errors.New("tracker: invalid configuration")
)

// Config describes the deployment the tracker runs in.
type Config struct {
	// Lambda is the carrier wavelength in metres.
	Lambda float64
	// AntennaPos is the calibrated phase center of the antenna in world
	// coordinates.
	AntennaPos geom.Vec3
	// TrackDir is the direction of belt travel (normalised internally).
	// The track is assumed straight and in a z = const plane.
	TrackDir geom.Vec3
	// Speed is the belt speed in m/s (from the conveyor encoder).
	Speed float64
	// WindowSize is the number of reads the sliding window holds; zero
	// defaults to 400 (≈4 s at 100 Hz).
	WindowSize int
	// MinWindow is the number of reads required before the first estimate;
	// zero defaults to WindowSize/2.
	MinWindow int
	// Every controls how often estimates are produced: one per Every
	// pushes. Zero defaults to 10.
	Every int
	// Intervals are the pairing separations; empty defaults to
	// {0.2, 0.4} metres.
	Intervals []float64
	// PositiveSide places the antenna on the +90°-rotated side of
	// TrackDir (see core.Locate2DLine).
	PositiveSide bool
	// SmoothWindow is the moving-average window; zero defaults to 9.
	SmoothWindow int
	// Solve configures the least-squares estimation; the zero value means
	// weighted least squares.
	Solve core.SolveOptions
}

func (c Config) withDefaults() (Config, error) {
	if c.Lambda <= 0 {
		return c, fmt.Errorf("%w: wavelength %v", ErrBadConfig, c.Lambda)
	}
	if c.Speed <= 0 {
		return c, fmt.Errorf("%w: speed %v", ErrBadConfig, c.Speed)
	}
	if c.TrackDir.Norm() == 0 {
		return c, fmt.Errorf("%w: zero track direction", ErrBadConfig)
	}
	if c.WindowSize == 0 {
		c.WindowSize = 400
	}
	if c.WindowSize < 8 {
		return c, fmt.Errorf("%w: window size %d", ErrBadConfig, c.WindowSize)
	}
	if c.MinWindow == 0 {
		c.MinWindow = c.WindowSize / 2
	}
	if c.MinWindow > c.WindowSize {
		return c, fmt.Errorf("%w: min window exceeds window", ErrBadConfig)
	}
	if c.Every == 0 {
		c.Every = 10
	}
	if len(c.Intervals) == 0 {
		c.Intervals = []float64{0.2, 0.4}
	}
	if c.SmoothWindow == 0 {
		c.SmoothWindow = 9
	}
	if c.SmoothWindow%2 == 0 {
		return c, fmt.Errorf("%w: smoothing window %d must be odd", ErrBadConfig, c.SmoothWindow)
	}
	if (c.Solve == core.SolveOptions{}) {
		c.Solve = core.DefaultSolveOptions()
	}
	return c, nil
}

// Estimate is one tracker output.
type Estimate struct {
	// Time is the read time of the sample that triggered the estimate.
	Time time.Duration
	// Position is the estimated tag position in world coordinates at Time.
	Position geom.Vec3
	// MeanAbsResidual carries the solve's residual magnitude — a live data
	// quality indicator.
	MeanAbsResidual float64
	// WindowReads is the number of reads the estimate used.
	WindowReads int
}

// Tracker is the streaming estimator. It is not safe for concurrent use.
type Tracker struct {
	cfg Config
	dir geom.Vec3

	times  []time.Duration
	thetas []float64 // unwrapped
	last   float64   // last wrapped phase
	offset float64   // unwrap accumulator
	count  int       // pushes since last estimate
	primed bool
}

// New builds a tracker for the deployment.
func New(cfg Config) (*Tracker, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tracker{cfg: c, dir: c.TrackDir.Unit()}, nil
}

// Push ingests one read (wrapped phase in [0, 2π)). It returns an Estimate
// every cfg.Every pushes once the window is primed, and ErrNotReady
// otherwise.
func (t *Tracker) Push(at time.Duration, wrappedPhase float64) (*Estimate, error) {
	// Incremental unwrap against the previous read.
	if t.primed {
		d := wrappedPhase - t.last
		for d >= math.Pi {
			t.offset -= 2 * math.Pi
			d -= 2 * math.Pi
		}
		for d <= -math.Pi {
			t.offset += 2 * math.Pi
			d += 2 * math.Pi
		}
	}
	t.last = wrappedPhase
	t.primed = true
	t.times = append(t.times, at)
	t.thetas = append(t.thetas, wrappedPhase+t.offset)
	if len(t.times) > t.cfg.WindowSize {
		drop := len(t.times) - t.cfg.WindowSize
		t.times = t.times[drop:]
		t.thetas = t.thetas[drop:]
	}

	t.count++
	if len(t.times) < t.cfg.MinWindow || t.count < t.cfg.Every {
		return nil, ErrNotReady
	}
	t.count = 0
	return t.estimate()
}

// estimate solves the window. Positions are relative to the window's first
// read: o_i = speed·(t_i − t_0)·dir.
func (t *Tracker) estimate() (*Estimate, error) {
	n := len(t.times)
	obs := make([]core.PosPhase, n)
	t0 := t.times[0]
	for i := 0; i < n; i++ {
		arc := t.cfg.Speed * (t.times[i] - t0).Seconds()
		obs[i] = core.PosPhase{
			Pos:   t.dir.Scale(arc),
			Theta: t.thetas[i],
		}
	}
	obs, err := smooth(obs, t.cfg.SmoothWindow)
	if err != nil {
		return nil, err
	}
	sol, err := core.Locate2DLineIntervals(obs, t.cfg.Lambda,
		t.usableIntervals(obs), t.cfg.PositiveSide, t.cfg.Solve)
	if err != nil {
		return nil, fmt.Errorf("tracker solve: %w", err)
	}
	// sol.Position is the antenna in the window-start frame; invert to get
	// the tag's window-start world position, then advance to "now".
	windowStart := t.cfg.AntennaPos.Sub(sol.Position)
	arcNow := t.cfg.Speed * (t.times[n-1] - t0).Seconds()
	pos := windowStart.Add(t.dir.Scale(arcNow))
	return &Estimate{
		Time:            t.times[n-1],
		Position:        pos,
		MeanAbsResidual: sol.MeanAbsResidual,
		WindowReads:     n,
	}, nil
}

// usableIntervals keeps the configured pairing separations that fit inside
// the window's current spatial span, falling back to span-relative
// separations when the window is still short — right after priming, the tag
// has not travelled far enough for the configured intervals to pair.
func (t *Tracker) usableIntervals(obs []core.PosPhase) []float64 {
	span := obs[len(obs)-1].Pos.Dist(obs[0].Pos)
	// Span-relative separations are always included: they guarantee a
	// well-conditioned mix of pair geometries at every window size. A
	// configured interval equal to the span would pair only a handful of
	// nearly identical rows and leave the normal equations near-singular.
	out := []float64{span / 4, span / 2}
	for _, iv := range t.cfg.Intervals {
		if iv < span*0.7 {
			out = append(out, iv)
		}
	}
	return out
}

// Reset clears the window, e.g. when a new item enters the read zone.
func (t *Tracker) Reset() {
	t.times = t.times[:0]
	t.thetas = t.thetas[:0]
	t.offset = 0
	t.count = 0
	t.primed = false
}

// Len returns the current window occupancy.
func (t *Tracker) Len() int { return len(t.times) }

// smooth applies a centred moving average to the unwrapped phases.
func smooth(obs []core.PosPhase, window int) ([]core.PosPhase, error) {
	if window <= 1 {
		return obs, nil
	}
	half := window / 2
	out := make([]core.PosPhase, len(obs))
	for i := range obs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(obs) {
			hi = len(obs) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += obs[j].Theta
		}
		out[i] = core.PosPhase{
			Pos:   obs[i].Pos,
			Theta: s / float64(hi-lo+1),
		}
	}
	return out, nil
}

// UnwrapSanity reports whether the stream's consecutive wrapped-phase steps
// stay safely below the unwrap limit for the given belt speed and read
// rate; callers can use it to validate a deployment (tag displacement per
// read must stay well under λ/4, Sec. IV-A-1).
func UnwrapSanity(lambda, speed, rateHz float64) bool {
	if rateHz <= 0 {
		return false
	}
	displacementPerRead := speed / rateHz
	return rf.PhaseOfDistance(displacementPerRead, lambda) < math.Pi/2
}
