package tracker

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

func baseConfig(lambda float64) Config {
	return Config{
		Lambda:       lambda,
		AntennaPos:   geom.V3(0, 0.8, 0),
		TrackDir:     geom.V3(1, 0, 0),
		Speed:        0.1,
		WindowSize:   500,
		MinWindow:    200,
		Every:        25,
		PositiveSide: true,
	}
}

func TestConfigValidation(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	good := baseConfig(lambda)
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Speed = 0 },
		func(c *Config) { c.TrackDir = geom.Vec3{} },
		func(c *Config) { c.WindowSize = 4 },
		func(c *Config) { c.MinWindow = 1000 },
		func(c *Config) { c.SmoothWindow = 8 },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if _, err := New(c); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestTrackerFollowsMovingTag(t *testing.T) {
	env, err := sim.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := sim.NewReader(env, sim.ReaderConfig{RateHz: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ant := &sim.Antenna{ID: "A", PhysicalCenter: geom.V3(0, 0.8, 0)}
	tag := &sim.Tag{ID: "T", PhaseOffset: 0.7}
	start := geom.V3(-0.6, 0, 0)
	trj, err := traject.NewLinear(start, geom.V3(0.8, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}

	trk, err := New(baseConfig(env.Wavelength()))
	if err != nil {
		t.Fatal(err)
	}
	var estimates []*Estimate
	truthAt := map[time.Duration]geom.Vec3{}
	for _, s := range samples {
		est, err := trk.Push(s.Time, s.Phase)
		if errors.Is(err, ErrNotReady) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		estimates = append(estimates, est)
		truthAt[est.Time] = s.TagPos
	}
	if len(estimates) < 20 {
		t.Fatalf("only %d estimates", len(estimates))
	}
	// Skip the earliest estimates (short windows); the steady-state ones
	// must track within a few centimetres on average.
	var sum, worst float64
	rest := estimates[5:]
	for _, est := range rest {
		e := est.Position.Dist(truthAt[est.Time])
		sum += e
		if e > worst {
			worst = e
		}
	}
	if mean := sum / float64(len(rest)); mean > 0.025 {
		t.Errorf("mean steady-state tracking error %v m", mean)
	}
	if worst > 0.10 {
		t.Errorf("worst steady-state tracking error %v m", worst)
	}
}

func TestTrackerSurvivesWrapBoundaries(t *testing.T) {
	// The raw phases wrap dozens of times over a 1.4 m pass; the
	// incremental unwrap must keep the window consistent throughout.
	env, err := sim.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	env.PhaseNoiseStd = 0
	reader, err := sim.NewReader(env, sim.ReaderConfig{RateHz: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ant := &sim.Antenna{PhysicalCenter: geom.V3(0, 0.8, 0)}
	trj, err := traject.NewLinear(geom.V3(-0.7, 0, 0), geom.V3(0.7, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, &sim.Tag{}, trj)
	if err != nil {
		t.Fatal(err)
	}
	trk, err := New(baseConfig(env.Wavelength()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		est, err := trk.Push(s.Time, s.Phase)
		if errors.Is(err, ErrNotReady) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if d := est.Position.Dist(s.TagPos); d > 0.01 {
			t.Fatalf("noiseless tracking error %v m at %v", d, s.Time)
		}
	}
}

func TestTrackerReset(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	trk, err := New(baseConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_, _ = trk.Push(time.Duration(i)*10*time.Millisecond, rf.WrapPhase(float64(i)*0.05))
	}
	if trk.Len() == 0 {
		t.Fatal("window empty before reset")
	}
	trk.Reset()
	if trk.Len() != 0 {
		t.Errorf("window not cleared: %d", trk.Len())
	}
	if _, err := trk.Push(0, 1); !errors.Is(err, ErrNotReady) {
		t.Errorf("post-reset push err = %v", err)
	}
}

func TestTrackerWindowBound(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	cfg := baseConfig(lambda)
	cfg.WindowSize = 60
	cfg.MinWindow = 30
	cfg.Every = 1000000 // never estimate; we only check the buffer bound
	trk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		_, _ = trk.Push(time.Duration(i)*10*time.Millisecond, 0.1)
	}
	if trk.Len() != 60 {
		t.Errorf("window length = %d, want 60", trk.Len())
	}
}

func TestUnwrapSanity(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	if !UnwrapSanity(lambda, 0.1, 100) {
		t.Error("paper conditions (10 cm/s at 100 Hz) reported unsafe")
	}
	if UnwrapSanity(lambda, 10, 100) {
		t.Error("10 m/s at 100 Hz reported safe")
	}
	if UnwrapSanity(lambda, 0.1, 0) {
		t.Error("zero read rate reported safe")
	}
	// The safety boundary is a quarter-wavelength displacement per read...
	// with margin: π/2 of round-trip phase is λ/8 of motion.
	limit := lambda / 8
	if !UnwrapSanity(lambda, limit*0.9*100, 100) {
		t.Error("just-below-limit speed reported unsafe")
	}
	if UnwrapSanity(lambda, limit*1.1*100, 100) {
		t.Error("just-above-limit speed reported safe")
	}
}

func TestTrackerEstimateResidualSignal(t *testing.T) {
	// Corrupted reads inside the window should surface as a larger
	// residual in the estimates — the live data-quality signal.
	env, err := sim.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	env.PhaseNoiseStd = 0.05
	reader, err := sim.NewReader(env, sim.ReaderConfig{RateHz: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ant := &sim.Antenna{PhysicalCenter: geom.V3(0, 0.8, 0)}
	trj, err := traject.NewLinear(geom.V3(-0.7, 0, 0), geom.V3(0.7, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, &sim.Tag{}, trj)
	if err != nil {
		t.Fatal(err)
	}
	run := func(corrupt bool) float64 {
		trk, err := New(baseConfig(env.Wavelength()))
		if err != nil {
			t.Fatal(err)
		}
		var maxRes float64
		for i, s := range samples {
			phase := s.Phase
			if corrupt && i > 600 && i < 700 {
				phase = rf.WrapPhase(phase + 0.8)
			}
			est, err := trk.Push(s.Time, phase)
			if errors.Is(err, ErrNotReady) {
				continue
			}
			if err != nil {
				// A window too polluted to solve is itself the strongest
				// quality signal.
				if corrupt {
					return math.Inf(1)
				}
				t.Fatal(err)
			}
			if est.MeanAbsResidual > maxRes {
				maxRes = est.MeanAbsResidual
			}
		}
		return maxRes
	}
	clean := run(false)
	dirty := run(true)
	if dirty <= clean {
		t.Errorf("corruption did not raise residual: clean %v, dirty %v", clean, dirty)
	}
}

func TestSmoothShortWindowIdentity(t *testing.T) {
	obs := []core.PosPhase{{Theta: 1}, {Theta: 2}}
	out, err := smooth(obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Theta != 1 || out[1].Theta != 2 {
		t.Errorf("window-1 smooth changed data: %v", out)
	}
}

func TestSmoothReducesJitter(t *testing.T) {
	var obs []core.PosPhase
	for i := 0; i < 100; i++ {
		v := 0.0
		if i%2 == 0 {
			v = 1.0
		}
		obs = append(obs, core.PosPhase{Theta: v})
	}
	out, err := smooth(obs, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 90; i++ {
		if math.Abs(out[i].Theta-0.5) > 0.1 {
			t.Fatalf("sample %d not smoothed: %v", i, out[i].Theta)
		}
	}
}
