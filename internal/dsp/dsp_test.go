package dsp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/rfid-lion/lion/internal/rf"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func sliceAlmostEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestUnwrapRecoversLinearRamp(t *testing.T) {
	// A linear phase ramp wrapped into [0,2π) must unwrap back to a ramp
	// (up to the initial value's branch).
	n := 500
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := range truth {
		truth[i] = 0.5 + 0.11*float64(i)
		wrapped[i] = rf.WrapPhase(truth[i])
	}
	un := Unwrap(wrapped)
	for i := range un {
		if !almostEq(un[i]-un[0], truth[i]-truth[0], 1e-9) {
			t.Fatalf("sample %d: unwrapped delta %v, want %v",
				i, un[i]-un[0], truth[i]-truth[0])
		}
	}
}

func TestUnwrapDescendingRamp(t *testing.T) {
	n := 300
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := range truth {
		truth[i] = 100 - 0.2*float64(i)
		wrapped[i] = rf.WrapPhase(truth[i])
	}
	un := Unwrap(wrapped)
	for i := range un {
		if !almostEq(un[i]-un[0], truth[i]-truth[0], 1e-9) {
			t.Fatalf("sample %d: unwrapped delta %v, want %v",
				i, un[i]-un[0], truth[i]-truth[0])
		}
	}
}

func TestUnwrapEdgeCases(t *testing.T) {
	if got := Unwrap(nil); len(got) != 0 {
		t.Errorf("Unwrap(nil) = %v", got)
	}
	if got := Unwrap([]float64{1.5}); !sliceAlmostEq(got, []float64{1.5}, 0) {
		t.Errorf("Unwrap(single) = %v", got)
	}
	// Input must not be modified.
	in := []float64{0.1, 6.2, 0.2}
	_ = Unwrap(in)
	if in[1] != 6.2 {
		t.Error("Unwrap mutated input")
	}
}

func TestUnwrapPropertyConsecutiveJumpsBelowPi(t *testing.T) {
	f := func(raw []float64) bool {
		in := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			in = append(in, rf.WrapPhase(x))
		}
		un := Unwrap(in)
		for i := 1; i < len(un); i++ {
			if math.Abs(un[i]-un[i-1]) >= math.Pi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnwrapPropertyWrapInverts(t *testing.T) {
	// Wrapping the unwrapped sequence returns the original wrapped values.
	f := func(raw []float64) bool {
		in := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			in = append(in, rf.WrapPhase(x))
		}
		back := Wrap(Unwrap(in))
		for i := range in {
			d := math.Abs(back[i] - in[i])
			if d > 1e-9 && math.Abs(d-2*math.Pi) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got, err := MovingAverage(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 3, 4, 4.5}
	if !sliceAlmostEq(got, want, 1e-12) {
		t.Errorf("MovingAverage = %v, want %v", got, want)
	}
	// Window 1 is the identity.
	id, err := MovingAverage(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sliceAlmostEq(id, xs, 0) {
		t.Errorf("window-1 = %v", id)
	}
}

func TestMovingAverageValidation(t *testing.T) {
	if _, err := MovingAverage([]float64{1}, 0); !errors.Is(err, ErrBadWindow) {
		t.Errorf("window 0 err = %v", err)
	}
	if _, err := MovingAverage([]float64{1}, 2); !errors.Is(err, ErrBadWindow) {
		t.Errorf("even window err = %v", err)
	}
}

func TestMovingAverageReducesNoiseVariance(t *testing.T) {
	// Smoothing white noise must shrink its variance by roughly the window
	// size.
	n := 5000
	xs := make([]float64, n)
	seed := uint64(12345)
	for i := range xs {
		// Cheap deterministic pseudo-noise.
		seed = seed*6364136223846793005 + 1442695040888963407
		xs[i] = float64(int64(seed>>11))/float64(1<<52) - 0.5
	}
	sm, err := MovingAverage(xs, 9)
	if err != nil {
		t.Fatal(err)
	}
	varOf := func(v []float64) float64 {
		var m float64
		for _, x := range v {
			m += x
		}
		m /= float64(len(v))
		var s float64
		for _, x := range v {
			s += (x - m) * (x - m)
		}
		return s / float64(len(v))
	}
	if r := varOf(sm) / varOf(xs); r > 0.25 {
		t.Errorf("smoothing reduced variance only by factor %v", 1/r)
	}
}

func TestStitchSegments(t *testing.T) {
	// Two segments of one continuous ramp, each re-based by a 2π multiple.
	segA := []float64{0, 0.5, 1.0, 1.5}
	segB := []float64{2.0 - 4*math.Pi, 2.5 - 4*math.Pi, 3.0 - 4*math.Pi}
	out := StitchSegments([][]float64{segA, segB})
	want := []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	if !sliceAlmostEq(out, want, 1e-9) {
		t.Errorf("stitched = %v, want %v", out, want)
	}
}

func TestStitchSegmentsEdgeCases(t *testing.T) {
	if out := StitchSegments(nil); len(out) != 0 {
		t.Errorf("nil segments = %v", out)
	}
	if out := StitchSegments([][]float64{nil, {1, 2}, nil}); !sliceAlmostEq(out, []float64{1, 2}, 0) {
		t.Errorf("empty-segment handling = %v", out)
	}
	single := StitchSegments([][]float64{{3, 4}})
	if !sliceAlmostEq(single, []float64{3, 4}, 0) {
		t.Errorf("single segment = %v", single)
	}
}

func TestStitchPropertyResidualJumpUnderPi(t *testing.T) {
	f := func(aRaw, bRaw []float64, k int8) bool {
		a := make([]float64, 0, len(aRaw))
		for _, x := range aRaw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 100 {
				a = append(a, x)
			}
		}
		if len(a) == 0 {
			return true
		}
		// Second segment continues the first within (−π, π), then is
		// re-based by k·2π; stitching must undo the re-basing.
		start := a[len(a)-1] + math.Mod(float64(k)*0.37, 1)
		b := []float64{start + float64(k)*2*math.Pi}
		out := StitchSegments([][]float64{a, b})
		jump := out[len(out)-1] - a[len(a)-1]
		return math.Abs(jump) < math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearResample(t *testing.T) {
	times := []float64{0, 1, 2}
	values := []float64{0, 10, 0}
	got, err := LinearResample(times, values, []float64{-1, 0, 0.5, 1.5, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0, 5, 5, 0, 0}
	if !sliceAlmostEq(got, want, 1e-12) {
		t.Errorf("resample = %v, want %v", got, want)
	}
}

func TestLinearResampleValidation(t *testing.T) {
	if _, err := LinearResample([]float64{0, 1}, []float64{0}, nil); !errors.Is(err, ErrMismatch) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := LinearResample(nil, nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := LinearResample([]float64{0, 0}, []float64{1, 2}, nil); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestHampelFilterRemovesSpike(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1.0, 9.0, 1.1, 0.95, 1.05, 1.0}
	out, replaced, err := HampelFilter(xs, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(replaced) != 1 || replaced[0] != 4 {
		t.Fatalf("replaced = %v, want [4]", replaced)
	}
	if out[4] > 2 {
		t.Errorf("spike survived: %v", out[4])
	}
	// Non-outliers untouched.
	for i, v := range xs {
		if i == 4 {
			continue
		}
		if out[i] != v {
			t.Errorf("sample %d modified: %v -> %v", i, v, out[i])
		}
	}
}

func TestHampelFilterValidation(t *testing.T) {
	if _, _, err := HampelFilter([]float64{1}, 2, 3); !errors.Is(err, ErrBadWindow) {
		t.Errorf("even window err = %v", err)
	}
	if _, _, err := HampelFilter([]float64{1}, 3, 0); err == nil {
		t.Error("zero nSigma accepted")
	}
	// Constant series: MAD 0, nothing replaced.
	out, replaced, err := HampelFilter([]float64{2, 2, 2, 2}, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(replaced) != 0 || !sliceAlmostEq(out, []float64{2, 2, 2, 2}, 0) {
		t.Errorf("constant series altered: %v %v", out, replaced)
	}
}

func TestDiff(t *testing.T) {
	if got := Diff([]float64{1, 3, 6}); !sliceAlmostEq(got, []float64{2, 3}, 0) {
		t.Errorf("Diff = %v", got)
	}
	if got := Diff([]float64{1}); got != nil {
		t.Errorf("Diff(single) = %v", got)
	}
}

// TestUnwrapIntoMatchesUnwrap: the Into variant is bit-identical to Unwrap,
// reuses a caller buffer without reallocating, supports in-place aliasing,
// and grows a too-small destination.
func TestUnwrapIntoMatchesUnwrap(t *testing.T) {
	wrapped := make([]float64, 200)
	for i := range wrapped {
		wrapped[i] = rf.WrapPhase(0.37 * float64(i))
	}
	want := Unwrap(wrapped)

	buf := make([]float64, len(wrapped))
	got := UnwrapInto(buf, wrapped)
	if &got[0] != &buf[0] {
		t.Error("UnwrapInto reallocated despite sufficient capacity")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UnwrapInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// In-place: dst aliases the input.
	inPlace := append([]float64(nil), wrapped...)
	got = UnwrapInto(inPlace, inPlace)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-place UnwrapInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Growth: nil dst is legal and the result is still correct.
	got = UnwrapInto(nil, wrapped)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grown UnwrapInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := UnwrapInto(nil, nil); len(out) != 0 {
		t.Errorf("UnwrapInto(nil, nil) = %v, want empty", out)
	}
}

// TestMovingAverageIntoMatchesMovingAverage mirrors the Unwrap test for the
// smoothing filter (no aliasing allowed — the filter reads neighbours).
func TestMovingAverageIntoMatchesMovingAverage(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = math.Sin(0.1 * float64(i))
	}
	want, err := MovingAverage(xs, 9)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, len(xs))
	got, err := MovingAverageInto(buf, xs, 9)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Error("MovingAverageInto reallocated despite sufficient capacity")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MovingAverageInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := MovingAverageInto(buf, xs, 4); !errors.Is(err, ErrBadWindow) {
		t.Errorf("even window error = %v, want ErrBadWindow", err)
	}
}
