// Package dsp implements the signal-preprocessing stage of LION
// (Sec. IV-A): phase unwrapping, moving-average smoothing, stitching of
// phase profiles collected on separate trajectory segments, resampling, and
// outlier rejection.
package dsp

import (
	"errors"
	"math"
	"sort"
)

// Errors returned by the preprocessing functions.
var (
	ErrBadWindow = errors.New("dsp: window must be positive and odd")
	ErrMismatch  = errors.New("dsp: input slices must have equal length")
)

// Unwrap removes the modulo-2π jumps from a wrapped phase sequence.
// Whenever the jump between consecutive samples is at least π radians, it
// adds or subtracts multiples of 2π until the jump falls below π
// (Sec. IV-A-1). The input is not modified.
func Unwrap(wrapped []float64) []float64 {
	return UnwrapInto(make([]float64, len(wrapped)), wrapped)
}

// UnwrapInto is Unwrap writing into dst, which is grown as needed and
// returned resliced to len(wrapped). dst may alias wrapped (in-place
// unwrapping), and the arithmetic is identical to Unwrap's, so streamed
// callers reusing a buffer get bit-identical profiles with zero allocations
// in steady state.
func UnwrapInto(dst, wrapped []float64) []float64 {
	if cap(dst) < len(wrapped) {
		dst = make([]float64, len(wrapped))
	}
	dst = dst[:len(wrapped)]
	if len(wrapped) == 0 {
		return dst
	}
	prev := wrapped[0]
	dst[0] = prev
	offset := 0.0
	for i := 1; i < len(wrapped); i++ {
		cur := wrapped[i]
		d := cur - prev
		for d >= math.Pi {
			offset -= 2 * math.Pi
			d -= 2 * math.Pi
		}
		for d <= -math.Pi {
			offset += 2 * math.Pi
			d += 2 * math.Pi
		}
		dst[i] = cur + offset
		prev = cur
	}
	return dst
}

// Wrap maps every element of xs onto [0, 2π). The input is not modified.
func Wrap(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		t := math.Mod(x, 2*math.Pi)
		if t < 0 {
			t += 2 * math.Pi
			// Negative values within one ulp of zero round up to exactly
			// 2π, which would escape the half-open interval.
			if t >= 2*math.Pi {
				t = 0
			}
		}
		out[i] = t
	}
	return out
}

// MovingAverage smooths xs with a centred moving-average filter of the given
// odd window length (Sec. IV-A-2). Windows are truncated at the boundaries
// so the output has the same length as the input. The input is not modified.
func MovingAverage(xs []float64, window int) ([]float64, error) {
	return MovingAverageInto(make([]float64, len(xs)), xs, window)
}

// MovingAverageInto is MovingAverage writing into dst, which is grown as
// needed and returned resliced to len(xs). dst must not alias xs: the filter
// reads neighbours on both sides of each output index.
func MovingAverageInto(dst, xs []float64, window int) ([]float64, error) {
	if window <= 0 || window%2 == 0 {
		return nil, ErrBadWindow
	}
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	out := dst[:len(xs)]
	half := window / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out, nil
}

// StitchSegments joins phase profiles that were unwrapped independently per
// trajectory segment. Each subsequent segment is shifted by the integer
// multiple of 2π that minimises the jump between the last sample of the
// previous segment and the first sample of the next (Sec. IV-B: "adjust the
// unwrapped phase profiles to make them consecutive"). The result is one
// concatenated profile. Empty segments are skipped.
func StitchSegments(segments [][]float64) []float64 {
	var out []float64
	for _, seg := range segments {
		if len(seg) == 0 {
			continue
		}
		if len(out) == 0 {
			out = append(out, seg...)
			continue
		}
		last := out[len(out)-1]
		jump := seg[0] - last
		shift := -2 * math.Pi * math.Round(jump/(2*math.Pi))
		for _, v := range seg {
			out = append(out, v+shift)
		}
	}
	return out
}

// LinearResample interpolates the series (times, values) at the query
// instants. Times must be strictly increasing. Queries outside the range
// clamp to the boundary values.
func LinearResample(times, values, queries []float64) ([]float64, error) {
	if len(times) != len(values) {
		return nil, ErrMismatch
	}
	if len(times) == 0 {
		return nil, errors.New("dsp: empty series")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, errors.New("dsp: times must be strictly increasing")
		}
	}
	out := make([]float64, len(queries))
	for qi, q := range queries {
		switch {
		case q <= times[0]:
			out[qi] = values[0]
		case q >= times[len(times)-1]:
			out[qi] = values[len(values)-1]
		default:
			i := sort.SearchFloat64s(times, q)
			// times[i-1] < q <= times[i]
			t0, t1 := times[i-1], times[i]
			frac := (q - t0) / (t1 - t0)
			out[qi] = values[i-1] + frac*(values[i]-values[i-1])
		}
	}
	return out, nil
}

// HampelFilter replaces outliers with the local median. A sample is an
// outlier when it deviates from the median of its window by more than
// nSigma times the scaled median absolute deviation. It returns the filtered
// series and the indices that were replaced. The input is not modified.
func HampelFilter(xs []float64, window int, nSigma float64) ([]float64, []int, error) {
	if window <= 0 || window%2 == 0 {
		return nil, nil, ErrBadWindow
	}
	if nSigma <= 0 {
		return nil, nil, errors.New("dsp: nSigma must be positive")
	}
	const madScale = 1.4826 // MAD → σ for Gaussian data
	out := make([]float64, len(xs))
	copy(out, xs)
	var replaced []int
	half := window / 2
	buf := make([]float64, 0, window)
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		buf = buf[:0]
		buf = append(buf, xs[lo:hi+1]...)
		med := medianInPlace(buf)
		for j := range buf {
			buf[j] = math.Abs(buf[j] - med)
		}
		mad := medianInPlace(buf) * madScale
		if mad == 0 {
			continue
		}
		if math.Abs(xs[i]-med) > nSigma*mad {
			out[i] = med
			replaced = append(replaced, i)
		}
	}
	return out, replaced, nil
}

// medianInPlace sorts buf and returns its median.
func medianInPlace(buf []float64) float64 {
	sort.Float64s(buf)
	n := len(buf)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return buf[n/2]
	}
	return (buf[n/2-1] + buf[n/2]) / 2
}

// Diff returns the first difference of xs (length len(xs)−1).
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}
