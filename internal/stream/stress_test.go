package stream

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	lionobs "github.com/rfid-lion/lion/internal/obs"
)

// TestStressConcurrentPublishers hammers one engine from many goroutines:
// 8+ publishers on distinct tags, 2 publishers sharing a tag, a subscriber
// draining estimates, and pollers reading Latest/Metrics/Tags throughout.
// Run under -race this exercises every lock in the engine.
func TestStressConcurrentPublishers(t *testing.T) {
	trace, lambda := testTrace(t, 77)
	cfg := Config{
		WindowSize: 64,
		MinSamples: 8,
		SolveEvery: 8,
		Smooth:     5,
		Workers:    4,
		Solver:     Line2DSolver(lambda, []float64{0.02}, true, core.DefaultSolveOptions()),
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const (
		publishers = 10 // 8 distinct tags + 2 sharing "shared"
		perPub     = 300
	)
	tagOf := func(i int) string {
		if i >= 8 {
			return "shared"
		}
		return string(rune('A' + i))
	}

	ch, cancelSub := e.Subscribe()
	var delivered atomic.Uint64
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for range ch {
			delivered.Add(1)
		}
	}()

	pollCtx, stopPoll := context.WithCancel(context.Background())
	var pollWG sync.WaitGroup
	for range 2 {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for pollCtx.Err() == nil {
				e.Latest("A")
				e.Metrics()
				e.Tags()
				e.WindowLen("shared")
			}
		}()
	}

	var pubWG sync.WaitGroup
	var accepted atomic.Uint64
	for i := range publishers {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			tag := tagOf(i)
			for j := range perPub {
				s := FromSim(trace[j%len(trace)])
				// Distinct timestamps per publisher keep span logic exercised.
				s.Time += time.Duration(i) * time.Millisecond
				if err := e.Ingest(tag, s); err != nil {
					t.Errorf("publisher %d: %v", i, err)
					return
				}
				accepted.Add(1)
			}
		}()
	}
	pubWG.Wait()
	stopPoll()
	pollWG.Wait()

	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	<-subDone
	cancelSub()

	m := e.Metrics()
	if got, want := m.Ingested, uint64(publishers*perPub); got != want {
		t.Errorf("ingested %d, want %d", got, want)
	}
	if accepted.Load() != uint64(publishers*perPub) {
		t.Errorf("accepted %d, want %d", accepted.Load(), publishers*perPub)
	}
	if m.Tags != 9 {
		t.Errorf("tags %d, want 9", m.Tags)
	}
	if m.Solves == 0 {
		t.Error("no solves completed under load")
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth %d after close, want 0", m.QueueDepth)
	}
	// Every tag saw enough samples for at least one estimate.
	for i := range publishers {
		if _, ok := e.Latest(tagOf(i)); !ok {
			t.Errorf("tag %s has no estimate", tagOf(i))
		}
	}
	t.Logf("solves=%d coalesced=%d delivered=%d subDropped=%d",
		m.Solves, m.Coalesced, delivered.Load(), m.SubDropped)
}

// TestStressCloseWhileIngesting races Close against active publishers: every
// Ingest must return either nil or ErrClosed, never panic or deadlock, and
// Close must still drain cleanly.
func TestStressCloseWhileIngesting(t *testing.T) {
	trace, lambda := testTrace(t, 78)
	e, err := New(Config{
		WindowSize: 32, MinSamples: 4, SolveEvery: 4, Workers: 2,
		Solver: Line2DSolver(lambda, []float64{0.02}, true, core.DefaultSolveOptions()),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tag := string(rune('A' + i))
			for j := 0; ; j++ {
				err := e.Ingest(tag, FromSim(trace[j%len(trace)]))
				if err == ErrClosed {
					return
				}
				if err != nil {
					t.Errorf("publisher %d: %v", i, err)
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(10 * time.Millisecond)
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if m := e.Metrics(); m.QueueDepth != 0 {
		t.Errorf("queue depth %d after close", m.QueueDepth)
	}
}

// TestStressSlowSubscriberNeverBlocksSolves checks the non-blocking publish
// path: a subscriber that never reads must not stall solving, only lose
// estimates (counted in SubDropped).
func TestStressSlowSubscriberNeverBlocksSolves(t *testing.T) {
	solver := func(obs []core.PosPhase, _ *lionobs.Tracer) (*core.Solution, error) {
		return &core.Solution{Position: geom.V3(0, 0, 0)}, nil
	}
	e, err := New(Config{
		WindowSize: 8, MinSamples: 1, SolveEvery: 1, Workers: 2,
		SubBuffer: 2, Solver: solver,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := e.Subscribe()
	defer cancel()
	_ = ch // deliberately never drained
	// Flush after each ingest so every sample completes a solve — otherwise
	// coalescing collapses the burst into too few estimates to overflow the
	// subscriber buffer.
	for i := range 20 {
		if err := e.Ingest("T1", Sample{Pos: geom.V3(float64(i), 0, 0), Phase: 1}); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- e.Close(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("close deadlocked behind a slow subscriber")
	}
	m := e.Metrics()
	if m.Solves == 0 {
		t.Fatal("no solves")
	}
	if m.SubDropped == 0 {
		t.Error("expected dropped subscriber estimates with an undrained channel")
	}
	// With no reader the buffer fills once, then every further estimate drops.
	if want := m.Solves - uint64(cap(ch)); m.SubDropped != want {
		t.Errorf("subDropped=%d, want %d (solves=%d, buffer=%d)",
			m.SubDropped, want, m.Solves, cap(ch))
	}
}
