package stream

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/obs"
)

// countSolver counts windows; the estimate itself is irrelevant here.
func countSolver(win []core.PosPhase, tr *obs.Tracer) (*core.Solution, error) {
	return &core.Solution{}, nil
}

func batchOf(tag string, n int, t0 time.Duration) []Tagged {
	out := make([]Tagged, n)
	for i := range out {
		out[i] = Tagged{Tag: tag, Sample: Sample{
			Time:  t0 + time.Duration(i)*time.Millisecond,
			Pos:   geom.V3(float64(i)*0.01, 0, 0.4),
			Phase: float64(i%628) / 100,
		}}
	}
	return out
}

// TestIngestTaggedMatchesPerSample feeds the same interleaved multi-tag
// stream through Ingest and through IngestTagged and asserts identical
// session state: window lengths, counters, and published estimates.
func TestIngestTaggedMatchesPerSample(t *testing.T) {
	mk := func() *Engine {
		e, err := New(Config{WindowSize: 32, MinSamples: 4, SolveEvery: 4, Workers: 1, Solver: countSolver})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	single, batched := mk(), mk()
	defer single.Close(context.Background())
	defer batched.Close(context.Background())

	var batch []Tagged
	for i := 0; i < 120; i++ {
		tag := [3]string{"A", "B", "C"}[i%3]
		batch = append(batch, Tagged{Tag: tag, Sample: Sample{
			Time:  time.Duration(i) * time.Millisecond,
			Pos:   geom.V3(float64(i)*0.01, 0, 0.4),
			Phase: float64(i) / 50,
		}})
	}
	for _, ts := range batch {
		if err := single.Ingest(ts.Tag, ts.Sample); err != nil {
			t.Fatal(err)
		}
	}
	accepted, dropped, err := batched.IngestTagged(batch)
	if err != nil || accepted != len(batch) || dropped != 0 {
		t.Fatalf("IngestTagged = %d/%d, %v; want %d/0, nil", accepted, dropped, err, len(batch))
	}
	ctx := context.Background()
	if err := single.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := batched.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"A", "B", "C"} {
		if a, b := single.WindowLen(tag), batched.WindowLen(tag); a != b {
			t.Errorf("tag %s window %d vs %d", tag, b, a)
		}
		ea, aok := single.Latest(tag)
		eb, bok := batched.Latest(tag)
		if aok != bok || ea.Window != eb.Window || ea.From != eb.From || ea.To != eb.To {
			t.Errorf("tag %s estimates diverge: %+v vs %+v", tag, eb, ea)
		}
	}
	ms, mb := single.Metrics(), batched.Metrics()
	if ms.Ingested != mb.Ingested || ms.Tags != mb.Tags {
		t.Errorf("counters diverge: single %+v batched %+v", ms, mb)
	}
}

func TestIngestTaggedDropsBadSamplesAndContinues(t *testing.T) {
	e, err := New(Config{WindowSize: 8, MinSamples: 4, Workers: 1, Solver: countSolver})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())

	batch := batchOf("T1", 4, 0)
	batch = append(batch, Tagged{Tag: "", Sample: Sample{Time: 99}})
	batch = append(batch, Tagged{Tag: "T1", Sample: Sample{Time: 100, Phase: math.NaN()}})
	batch = append(batch, batchOf("T1", 2, 200*time.Millisecond)...)

	accepted, dropped, err := e.IngestTagged(batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 6 || dropped != 2 {
		t.Errorf("accepted %d dropped %d, want 6/2", accepted, dropped)
	}
	if got := e.Metrics().Rejected; got != 1 {
		t.Errorf("rejected counter %d, want 1 (only the NaN sample)", got)
	}
	if n := e.WindowLen("T1"); n != 6 {
		t.Errorf("window length %d, want 6", n)
	}
}

func TestIngestTaggedRejectNewestOverflow(t *testing.T) {
	e, err := New(Config{WindowSize: 4, MinSamples: 4, Policy: RejectNewest, Workers: 1, Solver: countSolver})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())
	accepted, dropped, err := e.IngestTagged(batchOf("T1", 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 4 || dropped != 6 {
		t.Errorf("accepted %d dropped %d, want 4/6", accepted, dropped)
	}
}

func TestIngestTaggedClosed(t *testing.T) {
	e, err := New(Config{WindowSize: 8, Workers: 1, Solver: countSolver})
	if err != nil {
		t.Fatal(err)
	}
	e.Close(context.Background())
	if _, _, err := e.IngestTagged(batchOf("T1", 3, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}
