package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/rfid-lion/lion/internal/batch"
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/health"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/stats"
)

// Errors returned by the stream engine.
var (
	// ErrClosed is returned by Ingest and Close once the engine has shut down.
	ErrClosed = errors.New("stream: engine closed")
	// ErrWindowFull is returned under the RejectNewest policy when a sample
	// arrives at a full window.
	ErrWindowFull = errors.New("stream: window full")
	// ErrBadSample is returned for samples with non-finite position or phase.
	ErrBadSample = errors.New("stream: sample has non-finite fields")
	// ErrNoTag is returned for an empty tag id.
	ErrNoTag = errors.New("stream: tag id must be non-empty")
	// ErrBadConfig is returned by New for invalid configurations.
	ErrBadConfig = errors.New("stream: bad config")
)

// Sample is one timestamped read: the tag's known position and the wrapped
// phase the reader reported there. Samples of one tag must arrive in scan
// order — the window is an arrival-ordered phase profile, exactly like the
// offline trace the core solvers consume.
type Sample struct {
	Time  time.Duration
	Pos   geom.Vec3
	Phase float64
}

// Solver turns one window of preprocessed observations into an estimate.
// Solvers must be pure functions of their input: the streamed-equals-offline
// guarantee relies on it. The tracer is nil unless the engine was configured
// with TraceSolves (or an offline caller passes one); solvers forward it into
// core.SolveOptions so per-iteration solver events reach the trace.
type Solver func(win []core.PosPhase, tr *obs.Tracer) (*core.Solution, error)

// SessionSolver is the stateful per-tag counterpart of Solver: it receives
// the raw sample window (preprocessing included in its contract) and may keep
// state — incremental factorizations, scratch workspaces, a reusable Solution
// — between calls. The engine guarantees a SessionSolver is never invoked
// concurrently with itself (solves for one tag are serialized by the
// coalescing dispatcher), so implementations need no internal locking.
//
// The returned Solution may alias solver-owned storage; the engine copies it
// into per-tag publication storage before the next solve can start.
type SessionSolver interface {
	SolveWindow(samples []Sample, tr *obs.Tracer) (*core.Solution, error)
}

// DropPolicy selects what happens when a sample arrives at a full window.
type DropPolicy int

const (
	// EvictOldest slides the window: the oldest sample is dropped to make
	// room. This is the default and the natural streaming semantics.
	EvictOldest DropPolicy = iota
	// RejectNewest refuses the incoming sample and returns ErrWindowFull,
	// preserving the existing window.
	RejectNewest
)

// Config parameterises an Engine.
type Config struct {
	// WindowSize is the ring capacity per tag: the maximum number of samples
	// one solve sees. Required.
	WindowSize int
	// WindowSpan, when positive, additionally evicts samples older than this
	// relative to the newest sample's timestamp.
	WindowSpan time.Duration
	// MinSamples is the minimum window length before solves trigger.
	// Zero defaults to 4 (the smallest window core.Locate2DLine accepts).
	MinSamples int
	// SolveEvery triggers a solve after this many accepted samples since the
	// last snapshot. Zero defaults to 1 (solve on every sample).
	SolveEvery int
	// Smooth is the centred moving-average window passed to core.Preprocess;
	// zero or one disables smoothing, otherwise it must be odd.
	Smooth int
	// Policy selects the overflow behaviour; the zero value is EvictOldest.
	Policy DropPolicy
	// Workers sizes the solve pool; zero means runtime.GOMAXPROCS(0).
	Workers int
	// JobTimeout, when positive, bounds each window solve.
	JobTimeout time.Duration
	// SubBuffer is the per-subscriber channel depth; zero defaults to 64.
	// Slow subscribers lose estimates (counted), they never block solves.
	SubBuffer int
	// Solver produces estimates from window snapshots. Required unless
	// SolverFactory is set.
	Solver Solver
	// SolverFactory, when non-nil, supersedes Solver: every tag session gets
	// its own SessionSolver instance from the factory, enabling stateful
	// incremental solvers (see IncrementalLine2DFactory) whose steady-state
	// re-solves run without heap allocations. Factory solvers own their
	// preprocessing, so Smooth must be zero with a factory — centred
	// smoothing rewrites the window-overlap samples on every slide, which
	// would defeat incremental reuse; smooth inside the solver if needed.
	//
	// Estimates from factory-backed sessions share one Solution buffer per
	// tag, valid until the tag's next estimate is published; subscribers
	// that retain a Solution across estimates must copy it.
	SolverFactory func() SessionSolver
	// Registry receives the engine's lion_stream_* metrics. Nil means a
	// private registry, still reachable through Engine.Registry().
	Registry *obs.Registry
	// TraceSolves attaches a fresh obs.Tracer to every window solve and
	// retains the last completed trace per tag (Engine.LastTrace). Off by
	// default: the hot path then passes a nil tracer, which costs nothing.
	// A Monitor with an enabled flight recorder also turns tracing on.
	TraceSolves bool
	// Monitor, when non-nil, receives a health hook on every accepted
	// sample, every drop, and every completed window solve. Nil keeps the
	// solve path monitor-free at zero cost (one nil check).
	Monitor *health.Monitor
	// Antenna labels this engine's samples for the monitor's per-antenna
	// drift detector. Single-reader deployments run one engine per antenna;
	// the id must match a health.Calibration to enable drift estimation.
	Antenna string
	// Profile, when non-nil, is the initial antenna calibration profile
	// (version 1): window solves see offset-corrected phases. It can be
	// hot-swapped later with Engine.SwapProfile. The monitor always
	// receives raw phases regardless — drift is measured against the
	// health.Calibration record, not the stream profile.
	Profile *Profile
	// Spans, when non-nil, receives pipeline spans (queue wait, solve,
	// publish) for estimates whose triggering ingest carried a sampled
	// trace context (IngestTaggedTraced). Unsampled estimates never touch
	// the log, keeping the steady-state path allocation-free.
	Spans *obs.SpanLog
}

func (c Config) minSamples() int {
	if c.MinSamples <= 0 {
		return 4
	}
	return c.MinSamples
}

func (c Config) solveEvery() int {
	if c.SolveEvery <= 0 {
		return 1
	}
	return c.SolveEvery
}

func (c Config) subBuffer() int {
	if c.SubBuffer <= 0 {
		return 64
	}
	return c.SubBuffer
}

// Estimate is one published localization result.
type Estimate struct {
	// Tag identifies the session.
	Tag string
	// Seq counts published estimates per tag, starting at 1.
	Seq uint64
	// Window is the number of samples the solve consumed.
	Window int
	// From and To are the timestamps of the window's first and last sample.
	From, To time.Duration
	// Solution is the solver output; nil when Err is non-nil.
	Solution *core.Solution
	// Err is the solve error, if any.
	Err error
	// Latency is the wall time of the solve itself. It deliberately
	// excludes QueueWait — the two are separate SLO dimensions (solver
	// cost vs dispatch backlog) and are exported as separate histograms.
	Latency time.Duration
	// QueueWait is the wall time from the accept of the sample that
	// triggered this solve to the start of the solve (pool queueing plus
	// any coalescing delay).
	QueueWait time.Duration
	// ProfileVersion is the version of the antenna profile the whole
	// window was solved under — 0 when no profile was active. The swap
	// barrier guarantees a window is never split across versions.
	ProfileVersion uint64
}

// Metrics is a point-in-time snapshot of the engine's counters.
type Metrics struct {
	Tags            int
	Ingested        uint64
	Rejected        uint64 // non-finite samples refused at the boundary
	DroppedOverflow uint64 // samples evicted or refused at a full window
	DroppedAge      uint64 // samples evicted by WindowSpan
	Coalesced       uint64 // pending snapshots replaced before solving
	SubDropped      uint64 // estimates lost to slow subscribers
	Solves          uint64
	SolveErrors     uint64
	QueueDepth      int // solve jobs queued behind the workers

	// Solve latency over the recent window (last 1024 solves), seconds.
	LatencyCount uint64
	LatencyMean  float64
	LatencyP50   float64
	LatencyP90   float64
	LatencyP99   float64
}

// Engine ingests per-tag sample streams and publishes estimates.
type Engine struct {
	cfg Config
	// traceSolves caches TraceSolves || Monitor.WantsTraces(): the flight
	// recorder needs tracer events even when LastTrace retention is off.
	traceSolves bool
	pool        *batch.Pool

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[string]*session
	subs     map[int]chan Estimate
	nextSub  int
	closed   bool
	snapFree []*snapshot // recycled window snapshots (guarded by mu)

	// profile is the active antenna calibration profile (guarded by mu);
	// profVersion counts swaps, 0 = never set. Snapshots pin the profile
	// under mu at dispatch, so a window solves under exactly one version.
	profile     Profile
	profVersion uint64
	profActive  bool

	reg             *obs.Registry
	ingested        *obs.Counter
	rejected        *obs.Counter
	dropped         *obs.CounterVec // reason: overflow | age | subscriber
	coalesced       *obs.Counter
	solves          *obs.Counter
	solveErrors     *obs.Counter
	latency         *obs.Histogram
	droppedOverflow *obs.Counter // cached dropped children, hot path
	droppedAge      *obs.Counter
	droppedSub      *obs.Counter
	profileSwaps    *obs.Counter
	queueWait       *obs.Histogram
	publishLatency  *obs.Histogram
	staleness       *obs.Histogram
}

// stalenessSeriesCap bounds the per-tag staleness series retained for the
// dashboard sparkline.
const stalenessSeriesCap = 128

// session is the per-tag state: the ring-buffered window plus dispatch
// book-keeping. All fields are guarded by the engine mutex, except solver,
// which is written once at session creation and thereafter touched only by
// the (serialized) solve jobs of this tag.
type session struct {
	tag    string
	buf    []Sample
	start  int
	n      int
	since  int // samples accepted since the last snapshot
	solver SessionSolver

	seq       uint64
	inFlight  bool
	pending   *snapshot
	latest    *Estimate
	latestBuf Estimate      // backing storage for latest (reused)
	pubSol    core.Solution // published copy of a factory solver's Solution
	lastTrace []obs.Event

	// Pipeline-trace state of the most recent accepted sample, pinned into
	// the snapshot at dispatch. origin is the staleness zero point (router
	// receive wall clock, or local accept when standalone); accepted is the
	// local accept wall clock the queue-wait measurement starts from.
	tc       obs.TraceContext
	origin   time.Time
	accepted time.Time
	// stale is the per-tag recent staleness series (seconds), feeding the
	// dashboard sparkline. Allocated once at session creation; Add is free.
	stale *stats.Recorder
}

// snapshot is one frozen window awaiting a solve. Snapshots are pooled on the
// engine free list: the sample buffer, the solve/done closures, and the
// solved carrier are built once per object and reused across dispatches, so
// a steady-state dispatch performs no heap allocations.
type snapshot struct {
	e       *Engine
	sess    *session
	tag     string
	samples []Sample
	sv      solved
	run     func(context.Context) (any, error)
	done    func(batch.Outcome)

	// Profile pinned under e.mu when the window was frozen — the swap
	// consistency barrier. The solve applies profOffset to its private
	// sample copy, so the whole window is corrected under one version.
	profOffset  float64
	profVersion uint64
	profActive  bool

	// Trace state pinned under e.mu when the window was frozen: the
	// estimate this snapshot produces is attributed to the trace (and
	// staleness origin) of the newest sample in the window.
	tc       obs.TraceContext
	origin   time.Time
	accepted time.Time
}

// solved carries a finished solve through the pool's Outcome.Value.
type solved struct {
	sol     *core.Solution
	err     error
	start   time.Time // solve start wall clock (queue-wait end)
	latency time.Duration
	trace   []obs.Event
}

// New validates the configuration and starts the solve pool.
func New(cfg Config) (*Engine, error) {
	if cfg.WindowSize <= 0 {
		return nil, fmt.Errorf("%w: window size %d must be positive", ErrBadConfig, cfg.WindowSize)
	}
	if cfg.Solver == nil && cfg.SolverFactory == nil {
		return nil, fmt.Errorf("%w: a solver is required", ErrBadConfig)
	}
	if cfg.SolverFactory != nil && cfg.Smooth > 1 {
		return nil, fmt.Errorf("%w: Smooth is incompatible with SolverFactory (session solvers own their preprocessing)", ErrBadConfig)
	}
	if cfg.Smooth > 1 && cfg.Smooth%2 == 0 {
		return nil, fmt.Errorf("%w: smoothing window %d must be odd", ErrBadConfig, cfg.Smooth)
	}
	if cfg.WindowSpan < 0 {
		return nil, fmt.Errorf("%w: window span %v must not be negative", ErrBadConfig, cfg.WindowSpan)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		cfg:         cfg,
		traceSolves: cfg.TraceSolves || cfg.Monitor.WantsTraces(),
		pool:        batch.NewPool(batch.Options{Workers: cfg.Workers, JobTimeout: cfg.JobTimeout, Registry: reg}),
		sessions:    make(map[string]*session),
		subs:        make(map[int]chan Estimate),

		reg:         reg,
		ingested:    reg.Counter("lion_stream_ingested_total", "Samples accepted into a window."),
		rejected:    reg.Counter("lion_stream_rejected_total", "Non-finite samples refused at the boundary."),
		dropped:     reg.CounterVec("lion_stream_dropped_total", "Samples or estimates lost, by reason.", "reason"),
		coalesced:   reg.Counter("lion_stream_coalesced_total", "Pending window snapshots replaced before solving."),
		solves:      reg.Counter("lion_stream_solves_total", "Window solves completed (including failures)."),
		solveErrors: reg.Counter("lion_stream_solve_errors_total", "Window solves that returned an error."),
		latency:     reg.Histogram("lion_stream_solve_latency_seconds", "Wall time of one window solve.", obs.DefBuckets),
		profileSwaps: reg.Counter("lion_stream_profile_swaps_total",
			"Antenna profile hot-swaps applied to the engine."),
		queueWait: reg.Histogram("lion_stream_queue_wait_seconds",
			"Wall time from sample accept to the start of the solve it triggered.", obs.DefBuckets),
		publishLatency: reg.Histogram("lion_stream_publish_latency_seconds",
			"Wall time from solve completion to estimate publication.", obs.DefBuckets),
		staleness: reg.Histogram("lion_stream_staleness_seconds",
			"Age of an estimate at publication, measured from its origin ingest wall clock (router receive when available).", obs.DefBuckets),
	}
	if cfg.Profile != nil {
		if err := cfg.Profile.validate(cfg.Antenna); err != nil {
			return nil, err
		}
		e.profile = *cfg.Profile
		e.profVersion = 1
		e.profActive = true
	}
	e.droppedOverflow = e.dropped.With("overflow")
	e.droppedAge = e.dropped.With("age")
	e.droppedSub = e.dropped.With("subscriber")
	reg.GaugeFunc("lion_stream_tags", "Tags with an active window session.", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(len(e.sessions))
	})
	reg.GaugeFunc("lion_stream_solve_queue_depth", "Window solves queued behind the pool workers.", func() float64 {
		return float64(e.pool.Len())
	})
	reg.GaugeFunc("lion_stream_profile_version", "Version of the active antenna profile (0 = none).", func() float64 {
		e.mu.Lock()
		defer e.mu.Unlock()
		return float64(e.profVersion)
	})
	e.cond = sync.NewCond(&e.mu)
	return e, nil
}

// Registry returns the metrics registry backing the engine's counters —
// Config.Registry when one was supplied, otherwise the engine's private one.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// SolveWindow runs the exact offline pipeline over one window: unwrap and
// smooth the phases with core.Preprocess, then apply the solver. The engine
// itself solves through this function, which is what makes a streamed
// window's estimate bit-identical to an offline solve of the same samples.
// A nil tracer is free; a non-nil one records the solver's spans and
// iteration events.
func SolveWindow(samples []Sample, smooth int, solver Solver, tr *obs.Tracer) (*core.Solution, error) {
	positions := make([]geom.Vec3, len(samples))
	phases := make([]float64, len(samples))
	for i, s := range samples {
		positions[i] = s.Pos
		phases[i] = s.Phase
	}
	win, err := core.Preprocess(positions, phases, smooth)
	if err != nil {
		return nil, err
	}
	return solver(win, tr)
}

// Ingest accepts one sample for the tag. Under RejectNewest it returns
// ErrWindowFull when the window is full; under EvictOldest it never rejects a
// valid sample. Safe for concurrent use.
func (e *Engine) Ingest(tag string, s Sample) error {
	if tag == "" {
		return ErrNoTag
	}
	if !s.Pos.IsFinite() || !finite(s.Phase) {
		e.rejected.Inc()
		return fmt.Errorf("%w: tag %q at t=%v", ErrBadSample, tag, s.Time)
	}
	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	return e.ingestLocked(tag, s, obs.TraceContext{}, now, now)
}

// Tagged couples a tag id with one sample for batched ingest.
type Tagged struct {
	Tag    string
	Sample Sample
}

// IngestTagged accepts a mixed-tag batch under a single lock acquisition —
// the ingest entry point for the HTTP daemons, where a decoded request body
// arrives as one slice and per-sample locking would dominate at cluster
// ingest rates. Semantics match per-sample Ingest: samples are applied in
// order; a non-finite sample, an empty tag, or a RejectNewest overflow drops
// that sample (counted) without poisoning the rest of the batch. The only
// error returned is ErrClosed, with accepted/dropped covering the samples
// processed before the engine closed.
func (e *Engine) IngestTagged(batch []Tagged) (accepted, dropped int, err error) {
	return e.IngestTaggedTraced(batch, obs.TraceContext{}, time.Time{})
}

// IngestTaggedTraced is IngestTagged carrying pipeline-trace context. tc is
// the trace decision made upstream (the sampling router, or a local sampler);
// origin is the staleness zero point — the wall clock at which the batch
// first entered the pipeline (the router's receive time for forwarded
// batches). A zero origin means the batch entered here: local accept time is
// used. Estimates triggered by this batch inherit tc and origin; when tc is
// sampled, Config.Spans receives their queue-wait/solve/publish spans and the
// staleness histogram gets an exemplar. An unsampled tc costs nothing beyond
// one clock read per batch.
func (e *Engine) IngestTaggedTraced(batch []Tagged, tc obs.TraceContext, origin time.Time) (accepted, dropped int, err error) {
	now := time.Now()
	if origin.IsZero() {
		origin = now
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ts := range batch {
		if e.closed {
			return accepted, dropped, ErrClosed
		}
		if ts.Tag == "" {
			dropped++
			continue
		}
		if !ts.Sample.Pos.IsFinite() || !finite(ts.Sample.Phase) {
			e.rejected.Inc()
			dropped++
			continue
		}
		if e.ingestLocked(ts.Tag, ts.Sample, tc, origin, now) != nil {
			dropped++
			continue
		}
		accepted++
	}
	return accepted, dropped, nil
}

// ingestLocked applies one validated sample to its session. The caller holds
// e.mu and has checked closed, tag, and finiteness. tc/origin/accepted are
// the pipeline-trace context and clocks of the enclosing batch.
func (e *Engine) ingestLocked(tag string, s Sample, tc obs.TraceContext, origin, accepted time.Time) error {
	sess := e.sessions[tag]
	if sess == nil {
		sess = &session{tag: tag, buf: make([]Sample, e.cfg.WindowSize), stale: stats.NewRecorder(stalenessSeriesCap)}
		if e.cfg.SolverFactory != nil {
			sess.solver = e.cfg.SolverFactory()
		}
		e.sessions[tag] = sess
	}
	if span := e.cfg.WindowSpan; span > 0 {
		for sess.n > 0 && s.Time-sess.at(0).Time > span {
			sess.evictOldest()
			e.droppedAge.Inc()
			e.cfg.Monitor.ObserveDrop(s.Time)
		}
	}
	if sess.n == len(sess.buf) {
		if e.cfg.Policy == RejectNewest {
			e.droppedOverflow.Inc()
			e.cfg.Monitor.ObserveDrop(s.Time)
			return fmt.Errorf("%w: tag %q holds %d samples", ErrWindowFull, tag, sess.n)
		}
		sess.evictOldest()
		e.droppedOverflow.Inc()
		// EvictOldest rotation is not reported to the monitor: in steady
		// state every full window rotates on each sample, and the evicted
		// sample has already contributed to solves. Health drop accounting
		// covers real losses only — RejectNewest refusals and age evictions.
	}
	sess.push(s)
	sess.since++
	sess.tc = tc
	sess.origin = origin
	sess.accepted = accepted
	e.ingested.Inc()
	e.cfg.Monitor.ObserveSample(e.cfg.Antenna, s.Time, s.Pos, s.Phase)
	if sess.n >= e.cfg.minSamples() && sess.since >= e.cfg.solveEvery() {
		e.dispatchLocked(sess)
	}
	return nil
}

// IngestBatch accepts samples in order and returns how many were accepted;
// it stops at the first error.
func (e *Engine) IngestBatch(tag string, samples []Sample) (int, error) {
	for i, s := range samples {
		if err := e.Ingest(tag, s); err != nil {
			return i, err
		}
	}
	return len(samples), nil
}

// Latest returns the most recent estimate for the tag, if any.
func (e *Engine) Latest(tag string) (Estimate, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sess := e.sessions[tag]; sess != nil && sess.latest != nil {
		return *sess.latest, true
	}
	return Estimate{}, false
}

// Tags returns the known tag ids, sorted.
func (e *Engine) Tags() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.sessions))
	for tag := range e.sessions {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// StalenessSeries returns the tag's recent per-estimate staleness values in
// seconds, oldest first (at most stalenessSeriesCap points) — the dashboard
// sparkline feed. Nil when the tag is unknown or has published nothing.
func (e *Engine) StalenessSeries(tag string) []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sess := e.sessions[tag]; sess != nil {
		return sess.stale.Snapshot()
	}
	return nil
}

// WindowLen returns the current window length for the tag.
func (e *Engine) WindowLen(tag string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sess := e.sessions[tag]; sess != nil {
		return sess.n
	}
	return 0
}

// Subscribe registers an estimate listener. The returned cancel function
// unregisters it and closes the channel; Close does the same for all
// remaining subscribers. Estimates that find a subscriber's buffer full are
// dropped for that subscriber (and counted), never blocking the solve path.
func (e *Engine) Subscribe() (<-chan Estimate, func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextSub
	e.nextSub++
	ch := make(chan Estimate, e.cfg.subBuffer())
	e.subs[id] = ch
	cancel := func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if c, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

// Metrics returns a snapshot of the engine's counters. The same numbers are
// exported in Prometheus form through Registry(); this struct remains for
// in-process callers (drain logs, tests).
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	tags := len(e.sessions)
	e.mu.Unlock()
	m := Metrics{
		Tags:            tags,
		Ingested:        e.ingested.Value(),
		Rejected:        e.rejected.Value(),
		DroppedOverflow: e.droppedOverflow.Value(),
		DroppedAge:      e.droppedAge.Value(),
		Coalesced:       e.coalesced.Value(),
		SubDropped:      e.droppedSub.Value(),
		Solves:          e.solves.Value(),
		SolveErrors:     e.solveErrors.Value(),
		QueueDepth:      e.pool.Len(),
		LatencyCount:    e.latency.Count(),
	}
	if m.LatencyCount > 0 {
		m.LatencyMean = e.latency.WindowMean()
		m.LatencyP50, _ = e.latency.Quantile(50)
		m.LatencyP90, _ = e.latency.Quantile(90)
		m.LatencyP99, _ = e.latency.Quantile(99)
	}
	return m
}

// LastTrace returns the solve trace of the tag's most recently completed
// solve. Traces are only retained when Config.TraceSolves is set.
func (e *Engine) LastTrace(tag string) ([]obs.Event, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if sess := e.sessions[tag]; sess != nil && sess.lastTrace != nil {
		out := make([]obs.Event, len(sess.lastTrace))
		copy(out, sess.lastTrace)
		return out, true
	}
	return nil, false
}

// Flush snapshots every window holding unsolved samples (of at least
// MinSamples), then waits until all queued and in-flight solves complete or
// ctx expires.
func (e *Engine) Flush(ctx context.Context) error {
	e.mu.Lock()
	e.flushLocked()
	e.mu.Unlock()
	return e.wait(ctx)
}

// Close drains and shuts down: ingestion stops, every dirty window is given
// a final solve, in-flight solves complete, and subscriber channels close.
// Even when ctx expires before the drain finishes, the pool still runs its
// queue to completion before Close returns; the ctx error is reported.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	e.flushLocked()
	e.mu.Unlock()
	err := e.wait(ctx)
	e.pool.Close()
	e.mu.Lock()
	for id, ch := range e.subs {
		delete(e.subs, id)
		close(ch)
	}
	e.mu.Unlock()
	return err
}

// flushLocked dispatches a snapshot for every session with unsolved samples.
func (e *Engine) flushLocked() {
	for _, sess := range e.sessions {
		if sess.since > 0 && sess.n >= e.cfg.minSamples() {
			e.dispatchLocked(sess)
		}
	}
}

// getSnapLocked returns a snapshot loaded with the session's current window,
// reusing a pooled object (buffer, closures and all) when one is free.
func (e *Engine) getSnapLocked(sess *session) *snapshot {
	var snap *snapshot
	if n := len(e.snapFree); n > 0 {
		snap = e.snapFree[n-1]
		e.snapFree[n-1] = nil
		e.snapFree = e.snapFree[:n-1]
	} else {
		snap = &snapshot{e: e}
		snap.run = snap.solve
		snap.done = func(o batch.Outcome) { snap.e.complete(snap, o) }
	}
	snap.sess = sess
	snap.tag = sess.tag
	snap.profOffset = e.profile.Offset
	snap.profVersion = e.profVersion
	snap.profActive = e.profActive
	snap.tc = sess.tc
	snap.origin = sess.origin
	snap.accepted = sess.accepted
	snap.samples = snap.samples[:0]
	for i := 0; i < sess.n; i++ {
		snap.samples = append(snap.samples, sess.at(i))
	}
	return snap
}

// putSnapLocked recycles a snapshot whose solve has fully completed (or that
// was coalesced away before solving).
func (e *Engine) putSnapLocked(snap *snapshot) {
	snap.sess = nil
	snap.sv = solved{}
	e.snapFree = append(e.snapFree, snap)
}

// dispatchLocked freezes the session's window and routes it to the pool,
// coalescing when a solve for this tag is already in flight.
func (e *Engine) dispatchLocked(sess *session) {
	snap := e.getSnapLocked(sess)
	sess.since = 0
	if sess.inFlight {
		if sess.pending != nil {
			e.coalesced.Inc()
			e.putSnapLocked(sess.pending)
		}
		sess.pending = snap
		return
	}
	sess.inFlight = true
	e.submitLocked(sess, snap)
}

// submitLocked hands one snapshot to the pool. The session must already be
// marked in flight.
func (e *Engine) submitLocked(sess *session, snap *snapshot) {
	err := e.pool.Submit(snap.run, snap.done)
	if err != nil {
		// Pool closed: only reachable through Close, which drains first, so
		// losing this snapshot cannot violate the drain guarantee.
		sess.inFlight = false
		if sess.pending != nil {
			e.putSnapLocked(sess.pending)
			sess.pending = nil
		}
		e.putSnapLocked(snap)
		e.cond.Broadcast()
	}
}

// solve runs the window solve in a pool worker. It writes into the
// snapshot-owned solved carrier and returns its address, so a steady-state
// solve boxes no new values.
func (snap *snapshot) solve(ctx context.Context) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e := snap.e
	var tr *obs.Tracer
	if e.traceSolves {
		tr = obs.NewTracer()
	}
	snap.applyProfile()
	begin := time.Now()
	mark := tr.SpanAt("window_solve")
	var sol *core.Solution
	var serr error
	if s := snap.sess.solver; s != nil {
		sol, serr = s.SolveWindow(snap.samples, tr)
	} else {
		sol, serr = SolveWindow(snap.samples, e.cfg.Smooth, e.cfg.Solver, tr)
	}
	mark.End()
	snap.sv = solved{sol: sol, err: serr, start: begin, latency: time.Since(begin), trace: tr.Events()}
	return &snap.sv, nil
}

// complete publishes one finished solve and chains any pending snapshot.
func (e *Engine) complete(snap *snapshot, o batch.Outcome) {
	sess := snap.sess
	var sv solved
	if o.Err != nil {
		sv.err = o.Err
	} else if v, ok := o.Value.(*solved); ok {
		sv = *v
	}
	e.mu.Lock()
	sess.seq++
	est := Estimate{
		Tag:            snap.tag,
		Seq:            sess.seq,
		Window:         len(snap.samples),
		Solution:       sv.sol,
		Err:            sv.err,
		Latency:        sv.latency,
		ProfileVersion: snap.profVersion,
	}
	if !sv.start.IsZero() && !snap.accepted.IsZero() {
		if qw := sv.start.Sub(snap.accepted); qw > 0 {
			est.QueueWait = qw
		}
	}
	if len(snap.samples) > 0 {
		est.From = snap.samples[0].Time
		est.To = snap.samples[len(snap.samples)-1].Time
	}
	if sess.solver != nil && sv.sol != nil {
		// A session solver reuses its Solution storage on the next solve,
		// which may start as soon as the pending snapshot is chained below.
		// Publish a per-tag copy instead of the solver's working struct.
		copySolution(&sess.pubSol, sv.sol)
		est.Solution = &sess.pubSol
	}
	sess.latestBuf = est
	sess.latest = &sess.latestBuf
	if sv.trace != nil {
		sess.lastTrace = sv.trace
	}
	e.solves.Inc()
	if sv.err != nil {
		e.solveErrors.Inc()
	}
	if sv.latency > 0 {
		e.latency.Observe(sv.latency.Seconds())
	}
	// SLO clocks: queue wait (accept → solve start), publish latency (solve
	// end → now), and staleness (origin → now). All three observe into
	// preallocated histogram rings; the exemplar and span writes engage only
	// for sampled traces, so the untraced path stays allocation-free.
	now := time.Now()
	if est.QueueWait > 0 {
		e.queueWait.Observe(est.QueueWait.Seconds())
	}
	var solveEnd time.Time
	if !sv.start.IsZero() {
		solveEnd = sv.start.Add(sv.latency)
		if pl := now.Sub(solveEnd); pl > 0 {
			e.publishLatency.Observe(pl.Seconds())
		}
	}
	if !snap.origin.IsZero() {
		stale := now.Sub(snap.origin)
		if stale < 0 {
			stale = 0
		}
		e.staleness.ObserveExemplar(stale.Seconds(), snap.tc)
		sess.stale.Add(stale.Seconds())
	}
	if l := e.cfg.Spans; l != nil && snap.tc.Sampled {
		if est.QueueWait > 0 {
			l.Record(snap.tc, "queue_wait", snap.tag, snap.accepted, est.QueueWait)
		}
		if !sv.start.IsZero() {
			l.Record(snap.tc, "solve", snap.tag, sv.start, sv.latency)
			l.Record(snap.tc, "publish", snap.tag, solveEnd, now.Sub(solveEnd))
		}
	}
	for _, ch := range e.subs {
		select {
		case ch <- est:
		default:
			e.droppedSub.Inc()
		}
	}
	e.putSnapLocked(snap) // everything needed from snap is copied into est
	if next := sess.pending; next != nil {
		sess.pending = nil
		e.submitLocked(sess, next)
	} else {
		sess.inFlight = false
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	// The health hook runs outside the engine mutex: a full rule pass (and
	// a possible evidence snapshot) must never serialise against ingest.
	if m := e.cfg.Monitor; m != nil {
		obsv := health.SolveObservation{
			Tag:     est.Tag,
			Antenna: e.cfg.Antenna,
			Time:    est.To,
			Window:  est.Window,
			Seq:     est.Seq,
			Latency: est.Latency,
			Trace:   sv.trace,
		}
		if sv.err != nil {
			obsv.Failed = true
			obsv.Err = sv.err.Error()
		} else if sol := sv.sol; sol != nil {
			obsv.Residual = sol.FinalResidual
			obsv.Condition = sol.ConditionEstimate
			obsv.Iterations = sol.Iterations
		}
		m.ObserveSolve(obsv)
	}
}

// wait blocks until no session has an in-flight or pending solve, or ctx
// expires.
func (e *Engine) wait(ctx context.Context) error {
	var watcher chan struct{}
	if ctx != nil && ctx.Done() != nil {
		watcher = make(chan struct{})
		defer close(watcher)
		go func() {
			select {
			case <-ctx.Done():
				e.mu.Lock()
				e.cond.Broadcast()
				e.mu.Unlock()
			case <-watcher:
			}
		}()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for !e.quiescentLocked() {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e.cond.Wait()
	}
	return nil
}

func (e *Engine) quiescentLocked() bool {
	for _, sess := range e.sessions {
		if sess.inFlight || sess.pending != nil {
			return false
		}
	}
	return true
}

// at returns the i-th oldest sample of the window.
func (s *session) at(i int) Sample { return s.buf[(s.start+i)%len(s.buf)] }

func (s *session) push(v Sample) {
	s.buf[(s.start+s.n)%len(s.buf)] = v
	s.n++
}

func (s *session) evictOldest() {
	s.start = (s.start + 1) % len(s.buf)
	s.n--
}

// copySolution copies src into dst, reusing dst's slice backing so a
// steady-state publication from a session solver does not allocate.
func copySolution(dst, src *core.Solution) {
	res, w, rd := dst.Residuals, dst.Weights, dst.RefDistances
	*dst = *src
	dst.Residuals = append(res[:0], src.Residuals...)
	dst.Weights = append(w[:0], src.Weights...)
	dst.RefDistances = append(rd[:0], src.RefDistances...)
}

func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
