// Package stream is the real-time localization subsystem: it turns the
// offline solvers of internal/core into a continuously operating service.
//
// Readers push timestamped (position, wrapped phase) samples into per-tag
// sessions. Each session keeps a bounded sliding window — by sample count and
// optionally by time-span — in a ring buffer. When enough new samples have
// accumulated, the engine snapshots the window and hands it to the configured
// solver on a persistent batch.Pool; finished estimates are published to
// subscribers and retained as the tag's latest estimate.
//
// The key correctness invariant, enforced by tests: solving a streamed
// window is bit-identical to running the offline pipeline
// (core.Preprocess + solver) over the same samples, because both paths share
// SolveWindow. Streaming changes *when* windows are solved, never *what* a
// solve computes.
//
// Back-pressure is per tag: at most one window per tag is in flight and at
// most one is pending. When solves cannot keep up with ingest, intermediate
// windows are coalesced — the pending snapshot is replaced by the newest one
// and a counter records the skip — so the engine degrades by lowering the
// estimate update rate, never by queueing unboundedly or blocking ingest.
package stream
