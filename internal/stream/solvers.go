package stream

import (
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/obs"
)

// Line2DSolver returns a Solver running core.Locate2DLineIntervals: the
// lower-dimension 2-D case for tags moving along a straight line (conveyor
// belts, sliding tracks). This is liond's default solver.
func Line2DSolver(lambda float64, intervals []float64, positiveSide bool, opts core.SolveOptions) Solver {
	ivs := make([]float64, len(intervals))
	copy(ivs, intervals)
	return func(win []core.PosPhase, tr *obs.Tracer) (*core.Solution, error) {
		o := opts
		o.Trace = tr
		return core.Locate2DLineIntervals(win, lambda, ivs, positiveSide, o)
	}
}

// Free2DSolver returns a Solver running core.Locate2D with stride pairing
// over the window, for arbitrary known 2-D trajectories. A stride of zero
// pairs each sample with the one a quarter-window ahead.
func Free2DSolver(lambda float64, stride int, opts core.SolveOptions) Solver {
	return func(win []core.PosPhase, tr *obs.Tracer) (*core.Solution, error) {
		o := opts
		o.Trace = tr
		return core.Locate2D(win, lambda, core.StridePairs(len(win), strideFor(len(win), stride)), o)
	}
}

// Free3DSolver is Free2DSolver for trajectories with full 3-D diversity.
func Free3DSolver(lambda float64, stride int, opts core.SolveOptions) Solver {
	return func(win []core.PosPhase, tr *obs.Tracer) (*core.Solution, error) {
		o := opts
		o.Trace = tr
		return core.Locate3D(win, lambda, core.StridePairs(len(win), strideFor(len(win), stride)), o)
	}
}

func strideFor(n, stride int) int {
	if stride > 0 {
		return stride
	}
	s := n / 4
	if s < 1 {
		s = 1
	}
	return s
}
