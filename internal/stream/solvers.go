package stream

import (
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/dsp"
	"github.com/rfid-lion/lion/internal/obs"
)

// Line2DSolver returns a Solver running core.Locate2DLineIntervals: the
// lower-dimension 2-D case for tags moving along a straight line (conveyor
// belts, sliding tracks). This is liond's default solver.
func Line2DSolver(lambda float64, intervals []float64, positiveSide bool, opts core.SolveOptions) Solver {
	ivs := make([]float64, len(intervals))
	copy(ivs, intervals)
	return func(win []core.PosPhase, tr *obs.Tracer) (*core.Solution, error) {
		o := opts
		o.Trace = tr
		return core.Locate2DLineIntervals(win, lambda, ivs, positiveSide, o)
	}
}

// Free2DSolver returns a Solver running core.Locate2D with stride pairing
// over the window, for arbitrary known 2-D trajectories. A stride of zero
// pairs each sample with the one a quarter-window ahead.
func Free2DSolver(lambda float64, stride int, opts core.SolveOptions) Solver {
	return func(win []core.PosPhase, tr *obs.Tracer) (*core.Solution, error) {
		o := opts
		o.Trace = tr
		return core.Locate2D(win, lambda, core.StridePairs(len(win), strideFor(len(win), stride)), o)
	}
}

// Free3DSolver is Free2DSolver for trajectories with full 3-D diversity.
func Free3DSolver(lambda float64, stride int, opts core.SolveOptions) Solver {
	return func(win []core.PosPhase, tr *obs.Tracer) (*core.Solution, error) {
		o := opts
		o.Trace = tr
		return core.Locate3D(win, lambda, core.StridePairs(len(win), strideFor(len(win), stride)), o)
	}
}

// IncrementalLine2DFactory returns a Config.SolverFactory for the sliding-
// window line solver: every tag session gets its own core.LineSession plus
// preprocessing buffers, so a steady-state window re-solve — unwrap, slide
// detection, rank-1 normal-equation update, IRLS refinement, publication —
// performs zero heap allocations. Rebuild-path solves are bit-identical to
// Line2DSolver over the same window; slide-path solves agree within the
// documented 1e-9 bound (see core.LineSession).
//
// The parameters are validated eagerly, not at first solve.
func IncrementalLine2DFactory(lambda float64, intervals []float64, positiveSide bool, opts core.SolveOptions) (func() SessionSolver, error) {
	if _, err := core.NewLineSession(lambda, intervals, positiveSide); err != nil {
		return nil, err
	}
	ivs := make([]float64, len(intervals))
	copy(ivs, intervals)
	return func() SessionSolver {
		sess, err := core.NewLineSession(lambda, ivs, positiveSide)
		if err != nil {
			// Unreachable: the parameters were validated above and the copied
			// intervals cannot change.
			panic(err)
		}
		return &incrLineSolver{sess: sess, opts: opts}
	}, nil
}

// incrLineSolver adapts a core.LineSession to the SessionSolver contract,
// owning the unwrap buffer, the observation window, and the result Solution.
type incrLineSolver struct {
	sess  *core.LineSession
	opts  core.SolveOptions
	theta []float64
	win   []core.PosPhase
	sol   core.Solution
}

// SolveWindow preprocesses exactly like the stateless path with Smooth=0 —
// copy phases, unwrap — then runs the incremental locate. Finite validation
// happens inside the session (rebuilds and appended slide samples alike),
// matching core.Preprocess's rejection of non-finite input.
func (s *incrLineSolver) SolveWindow(samples []Sample, tr *obs.Tracer) (*core.Solution, error) {
	if cap(s.theta) < len(samples) {
		s.theta = make([]float64, 0, len(samples))
	}
	s.theta = s.theta[:0]
	for _, sm := range samples {
		s.theta = append(s.theta, sm.Phase)
	}
	s.theta = dsp.UnwrapInto(s.theta, s.theta)
	if cap(s.win) < len(samples) {
		s.win = make([]core.PosPhase, 0, len(samples))
	}
	s.win = s.win[:0]
	for i, sm := range samples {
		s.win = append(s.win, core.PosPhase{Pos: sm.Pos, Theta: s.theta[i]})
	}
	o := s.opts
	o.Trace = tr
	if err := s.sess.Locate(s.win, o, &s.sol); err != nil {
		return nil, err
	}
	return &s.sol, nil
}

// Stats exposes the underlying session's slide/rebuild counters.
func (s *incrLineSolver) Stats() core.LineSessionStats { return s.sess.Stats() }

func strideFor(n, stride int) int {
	if stride > 0 {
		return stride
	}
	s := n / 4
	if s < 1 {
		s = 1
	}
	return s
}
