package stream

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
)

// incrConfig builds a factory-backed engine config whose sessions solve the
// line case incrementally, recording every solver the factory hands out so
// tests can inspect slide/rebuild counters.
func incrConfig(t testing.TB, lambda float64, record *[]*incrLineSolver, mu *sync.Mutex) Config {
	t.Helper()
	factory, err := IncrementalLine2DFactory(lambda, []float64{0.1}, true, core.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		WindowSize: 256,
		MinSamples: 8,
		SolveEvery: 1,
		Workers:    1,
		SolverFactory: func() SessionSolver {
			s := factory()
			if record != nil {
				if mu != nil {
					mu.Lock()
				}
				*record = append(*record, s.(*incrLineSolver))
				if mu != nil {
					mu.Unlock()
				}
			}
			return s
		},
	}
}

// TestIncrementalEngineMatchesBatch feeds a seeded trace through a factory-
// backed engine one sample at a time and checks every published estimate
// against the offline batch pipeline over the identical window: bit-identical
// on rebuild-served solves, within the documented 1e-9 bound on slides.
func TestIncrementalEngineMatchesBatch(t *testing.T) {
	trace, lambda := testTrace(t, 42)
	var solvers []*incrLineSolver
	e, err := New(incrConfig(t, lambda, &solvers, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())

	ctx := context.Background()
	var win []Sample
	compared := 0
	for i, s := range trace {
		sample := Sample{Time: s.Time, Pos: s.TagPos, Phase: s.Phase}
		if err := e.Ingest("T1", sample); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
		win = append(win, sample)
		if len(win) > 256 {
			win = win[1:]
		}
		if len(win) < 8 || i%7 != 0 {
			continue // compare a spread of windows, not all 1200
		}
		if err := e.Flush(ctx); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
		est, ok := e.Latest("T1")
		if !ok {
			t.Fatalf("no estimate after sample %d", i)
		}
		want, werr := offlineLineSolve(win, lambda)
		if werr != nil || est.Err != nil {
			if (werr == nil) != (est.Err == nil) {
				t.Fatalf("sample %d: streamed err = %v, offline err = %v", i, est.Err, werr)
			}
			continue
		}
		tol := 1e-9 * math.Max(1, want.ConditionEstimate)
		if d := est.Solution.Position.Dist(want.Position); d > tol {
			t.Fatalf("sample %d: streamed %v vs offline %v (|Δ| = %.3g > %.3g)",
				i, est.Solution.Position, want.Position, d, tol)
		}
		compared++
	}
	if compared < 100 {
		t.Fatalf("only %d windows compared", compared)
	}
	// The trailing ingests (i%7 != 0) may still have a solve in flight on a
	// pool worker; drain before touching the solver's counters.
	if err := e.Flush(ctx); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	if len(solvers) != 1 {
		t.Fatalf("factory created %d solvers, want 1", len(solvers))
	}
	st := solvers[0].Stats()
	if st.Slides == 0 || st.IncrementalUpdates == 0 {
		t.Errorf("no incremental reuse across %d windows: %+v", compared, st)
	}
}

// offlineLineSolve is the stateless reference pipeline for one raw window:
// exactly what Line2DSolver computes through SolveWindow with Smooth=0.
func offlineLineSolve(win []Sample, lambda float64) (*core.Solution, error) {
	positions := make([]geom.Vec3, len(win))
	phases := make([]float64, len(win))
	for i, s := range win {
		positions[i] = s.Pos
		phases[i] = s.Phase
	}
	obs, err := core.Preprocess(positions, phases, 0)
	if err != nil {
		return nil, err
	}
	return core.Locate2DLineIntervals(obs, lambda, []float64{0.1}, true, core.DefaultSolveOptions())
}

// TestIncrementalEngineSteadyStateZeroAllocs is the tentpole acceptance test
// at the engine layer: one accepted sample plus its complete solve —
// dispatch, snapshot, unwrap, incremental locate, publication — must perform
// zero heap allocations once the session is warm.
func TestIncrementalEngineSteadyStateZeroAllocs(t *testing.T) {
	trace, lambda := testTrace(t, 7)
	if len(trace) < 900 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	e, err := New(incrConfig(t, lambda, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())

	ctx := context.Background()
	next := 0
	step := func() {
		s := trace[next]
		next++
		if err := e.Ingest("T1", Sample{Time: s.Time, Pos: s.TagPos, Phase: s.Phase}); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for next < 400 { // warm: fill the window, size every buffer, cross rebuilds
		step()
	}
	allocs := testing.AllocsPerRun(300, step)
	if allocs != 0 {
		t.Errorf("steady-state ingest+solve allocates %.1f times per run, want 0", allocs)
	}
	if est, ok := e.Latest("T1"); !ok || est.Err != nil {
		t.Fatalf("no clean estimate after alloc run: %+v", est)
	}
}

// TestIncrementalEnginePublishedSolutionStable: a factory session publishes
// from per-tag engine-owned storage, so the Estimate a subscriber received
// must keep its values until the tag's next estimate even though the solver
// reuses its working Solution on every solve.
func TestIncrementalEnginePublishedSolutionStable(t *testing.T) {
	trace, lambda := testTrace(t, 13)
	e, err := New(incrConfig(t, lambda, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())
	ctx := context.Background()

	var prev *core.Solution
	var prevPos geom.Vec3
	var prevRes []float64
	for i := 0; i < 400; i++ {
		s := trace[i]
		if err := e.Ingest("T1", Sample{Time: s.Time, Pos: s.TagPos, Phase: s.Phase}); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		est, ok := e.Latest("T1")
		if !ok || est.Err != nil {
			continue
		}
		if prev != nil && prev == est.Solution {
			// Same backing struct by design: between the two estimates the
			// values must have been refreshed in place, not corrupted —
			// verified implicitly by TestIncrementalEngineMatchesBatch. Here
			// just confirm the previous snapshot values were intact at the
			// time of the previous read (copied below before this solve).
			_ = prevPos
		}
		if est.Solution != nil {
			prev = est.Solution
			prevPos = est.Solution.Position
			prevRes = append(prevRes[:0], est.Solution.Residuals...)
			if len(prevRes) == 0 {
				t.Fatal("estimate published without residuals")
			}
			if !est.Solution.Position.IsFinite() {
				t.Fatalf("solve %d: non-finite published position", i)
			}
		}
	}
	if prev == nil {
		t.Fatal("no successful estimates")
	}
}

// TestIncrementalEngineConcurrentSessions is the -race satellite: many tags
// solving concurrently, each session reusing its own workspace, while
// dashboard-style pollers hammer the read APIs. Run with -race (make race /
// make check) this proves the per-session state needs no extra locking.
func TestIncrementalEngineConcurrentSessions(t *testing.T) {
	trace, lambda := testTrace(t, 99)
	var solvers []*incrLineSolver
	var smu sync.Mutex
	cfg := incrConfig(t, lambda, &solvers, &smu)
	cfg.Workers = 4
	cfg.TraceSolves = true // exercise the tracer path under race too
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	tags := []string{"A", "B", "C", "D", "E", "F"}
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for p := 0; p < 3; p++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.Metrics()
				for _, tag := range e.Tags() {
					e.Latest(tag)
					e.WindowLen(tag)
					e.LastTrace(tag)
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	var writers sync.WaitGroup
	for ti, tag := range tags {
		writers.Add(1)
		go func(tag string, off int) {
			defer writers.Done()
			for i := 0; i+off < len(trace) && i < 500; i++ {
				s := trace[i+off]
				if err := e.Ingest(tag, Sample{Time: s.Time, Pos: s.TagPos, Phase: s.Phase}); err != nil {
					t.Errorf("tag %s ingest %d: %v", tag, i, err)
					return
				}
				if i%25 == 24 {
					// Pace the stream so consecutive solved windows overlap:
					// an unthrottled burst coalesces every snapshot into two
					// disjoint windows, which can never slide.
					time.Sleep(500 * time.Microsecond)
				}
			}
		}(tag, ti*50)
	}
	writers.Wait()
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	close(stop)
	pollers.Wait()

	if m := e.Metrics(); m.Solves == 0 || m.Tags != len(tags) {
		t.Fatalf("metrics after run: %+v", m)
	}
	smu.Lock()
	defer smu.Unlock()
	if len(solvers) != len(tags) {
		t.Fatalf("factory created %d solvers for %d tags", len(solvers), len(tags))
	}
	slides := 0
	for _, s := range solvers {
		slides += s.Stats().Slides
	}
	if slides == 0 {
		t.Error("no session served a single incremental slide")
	}
}

// TestIncrementalFactoryValidation: factory parameter errors surface at
// construction, and Smooth with a factory is rejected by New.
func TestIncrementalFactoryValidation(t *testing.T) {
	if _, err := IncrementalLine2DFactory(0, []float64{0.1}, true, core.SolveOptions{}); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := IncrementalLine2DFactory(0.3256, nil, true, core.SolveOptions{}); err == nil {
		t.Error("empty intervals accepted")
	}
	factory, err := IncrementalLine2DFactory(0.3256, []float64{0.1}, true, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{WindowSize: 16, Smooth: 9, SolverFactory: func() SessionSolver { return factory() }})
	if err == nil {
		t.Error("Smooth with SolverFactory accepted")
	}
	if _, err := New(Config{WindowSize: 16}); err == nil {
		t.Error("config without solver or factory accepted")
	}
}
