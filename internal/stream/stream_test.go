package stream

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	lionobs "github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// testTrace generates a seeded linear-scan trace with the software testbed:
// tag sliding 1.2 m along x at 0.1 m/s, antenna 0.8 m deep, 100 Hz reads.
func testTrace(t testing.TB, seed int64) ([]sim.Sample, float64) {
	t.Helper()
	env, err := sim.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := sim.NewReader(env, sim.ReaderConfig{RateHz: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ant := &sim.Antenna{
		PhysicalCenter:    geom.V3(0.1, 0.8, 0),
		PhaseCenterOffset: geom.V3(0.02, -0.015, 0),
		PhaseOffset:       2.74,
	}
	tag := &sim.Tag{PhaseOffset: 0.4}
	trj, err := traject.NewLinear(geom.V3(-0.6, 0, 0), geom.V3(0.6, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := reader.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}
	return samples, env.Wavelength()
}

func lineConfig(lambda float64) Config {
	// At 100 Hz and 0.1 m/s a 256-sample window spans 0.255 m, so the
	// 0.1 m pairing interval always finds pairs.
	return Config{
		WindowSize: 256,
		MinSamples: 8,
		SolveEvery: 16,
		Smooth:     9,
		Workers:    2,
		Solver:     Line2DSolver(lambda, []float64{0.1}, true, core.DefaultSolveOptions()),
	}
}

// TestStreamedMatchesBatch is the subsystem's core invariant: after replaying
// a seeded trace, the final window's streamed estimate is bit-identical to
// the offline pipeline run directly over the same samples — identical float
// operations, not merely close results.
func TestStreamedMatchesBatch(t *testing.T) {
	trace, lambda := testTrace(t, 42)
	if len(trace) <= 256 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	e, err := New(lineConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := Replay(context.Background(), e, "T1", trace, 0); err != nil || n != len(trace) {
		t.Fatalf("replay: %d, %v", n, err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	est, ok := e.Latest("T1")
	if !ok {
		t.Fatal("no estimate after replay")
	}
	if est.Err != nil {
		t.Fatalf("final solve error: %v", est.Err)
	}
	if est.Window != 256 {
		t.Fatalf("final window %d, want 256", est.Window)
	}

	// Offline reference: the identical computation through core directly,
	// without going through SolveWindow.
	tail := trace[len(trace)-256:]
	positions := make([]geom.Vec3, len(tail))
	phases := make([]float64, len(tail))
	for i, s := range tail {
		positions[i] = s.TagPos
		phases[i] = s.Phase
	}
	obs, err := core.Preprocess(positions, phases, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Locate2DLineIntervals(obs, lambda, []float64{0.1}, true, core.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}

	got := est.Solution
	if got.Position != want.Position {
		t.Errorf("streamed position %v != offline %v", got.Position, want.Position)
	}
	if got.RefDistance != want.RefDistance {
		t.Errorf("streamed d_r %v != offline %v", got.RefDistance, want.RefDistance)
	}
	if got.MeanResidual != want.MeanResidual || got.RMSResidual != want.RMSResidual {
		t.Errorf("streamed residuals (%v, %v) != offline (%v, %v)",
			got.MeanResidual, got.RMSResidual, want.MeanResidual, want.RMSResidual)
	}
	if est.From != tail[0].Time || est.To != tail[len(tail)-1].Time {
		t.Errorf("window span [%v, %v], want [%v, %v]", est.From, est.To, tail[0].Time, tail[len(tail)-1].Time)
	}
	// Sanity: the estimate lands near the true phase center (0.12, 0.785, 0).
	// A 0.255 m aperture at 0.8 m depth conditions the depth axis weakly, so
	// this is a plausibility guard, not an accuracy claim.
	if d := got.Position.Dist(geom.V3(0.12, 0.785, 0)); d > 0.15 {
		t.Errorf("estimate %v is %.3f m from truth", got.Position, d)
	}
}

func TestEmptyWindowNeverSolves(t *testing.T) {
	_, lambda := testTrace(t, 1)
	e, err := New(lineConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, ok := e.Latest("T1"); ok {
		t.Error("estimate for a tag that never ingested")
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if m := e.Metrics(); m.Solves != 0 {
		t.Errorf("solves = %d, want 0", m.Solves)
	}
}

func TestSingleSampleBelowMinimumNeverSolves(t *testing.T) {
	trace, lambda := testTrace(t, 2)
	e, err := New(lineConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("T1", FromSim(trace[0])); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Latest("T1"); ok {
		t.Error("estimate from a single sample below MinSamples")
	}
	if m := e.Metrics(); m.Solves != 0 || m.Ingested != 1 {
		t.Errorf("solves=%d ingested=%d, want 0/1", m.Solves, m.Ingested)
	}
}

func TestSolveErrorIsSurfaced(t *testing.T) {
	trace, lambda := testTrace(t, 3)
	cfg := lineConfig(lambda)
	cfg.MinSamples = 2
	cfg.SolveEvery = 2
	cfg.Smooth = 0
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two samples cannot feed Locate2DLineIntervals (needs >= 4).
	for _, s := range trace[:2] {
		if err := e.Ingest("T1", FromSim(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	est, ok := e.Latest("T1")
	if !ok {
		t.Fatal("no estimate recorded")
	}
	if !errors.Is(est.Err, core.ErrTooFewObservations) {
		t.Errorf("estimate err = %v, want ErrTooFewObservations", est.Err)
	}
	if m := e.Metrics(); m.SolveErrors == 0 {
		t.Error("solve error not counted")
	}
}

func TestExactCapacityThenOverflow(t *testing.T) {
	trace, lambda := testTrace(t, 4)
	cfg := lineConfig(lambda)
	cfg.WindowSize = 16
	cfg.SolveEvery = 1 << 30 // only the Close flush solves
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range trace[:16] {
		if err := e.Ingest("T1", FromSim(s)); err != nil {
			t.Fatal(err)
		}
	}
	if m := e.Metrics(); m.DroppedOverflow != 0 {
		t.Errorf("dropped %d at exact capacity, want 0", m.DroppedOverflow)
	}
	if got := e.WindowLen("T1"); got != 16 {
		t.Errorf("window length %d, want 16", got)
	}
	if err := e.Ingest("T1", FromSim(trace[16])); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.DroppedOverflow != 1 {
		t.Errorf("dropped %d after overflow, want 1", m.DroppedOverflow)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	est, ok := e.Latest("T1")
	if !ok {
		t.Fatal("no final estimate recorded")
	}
	// The solve itself may fail on the tiny 15 mm aperture; this test is
	// about eviction bookkeeping, not solvability.
	// The window slid: it must start at trace[1], not trace[0].
	if est.From != trace[1].Time || est.To != trace[16].Time {
		t.Errorf("window [%v, %v], want [%v, %v]", est.From, est.To, trace[1].Time, trace[16].Time)
	}
}

func TestRejectNewestPolicy(t *testing.T) {
	trace, lambda := testTrace(t, 5)
	cfg := lineConfig(lambda)
	cfg.WindowSize = 8
	cfg.Policy = RejectNewest
	cfg.SolveEvery = 1 << 30
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range trace[:8] {
		if err := e.Ingest("T1", FromSim(s)); err != nil {
			t.Fatal(err)
		}
	}
	err = e.Ingest("T1", FromSim(trace[8]))
	if !errors.Is(err, ErrWindowFull) {
		t.Fatalf("ingest at full window = %v, want ErrWindowFull", err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	est, ok := e.Latest("T1")
	if !ok {
		t.Fatal("no estimate")
	}
	// The original window is preserved: it still starts at trace[0].
	if est.From != trace[0].Time || est.To != trace[7].Time {
		t.Errorf("window [%v, %v], want [%v, %v]", est.From, est.To, trace[0].Time, trace[7].Time)
	}
}

func TestWindowSpanEviction(t *testing.T) {
	_, lambda := testTrace(t, 6)
	cfg := lineConfig(lambda)
	cfg.WindowSpan = time.Second
	cfg.SolveEvery = 1 << 30
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(t time.Duration, x float64) Sample {
		return Sample{Time: t, Pos: geom.V3(x, 0, 0), Phase: 1}
	}
	for _, s := range []Sample{
		mk(0, 0), mk(500*time.Millisecond, 0.05), mk(2*time.Second, 0.2),
	} {
		if err := e.Ingest("T1", s); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.WindowLen("T1"); got != 1 {
		t.Errorf("window length %d after span eviction, want 1", got)
	}
	if m := e.Metrics(); m.DroppedAge != 2 {
		t.Errorf("dropped by age = %d, want 2", m.DroppedAge)
	}
	e.Close(context.Background())
}

func TestSubscribePublishesEstimates(t *testing.T) {
	trace, lambda := testTrace(t, 7)
	e, err := New(lineConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := e.Subscribe()
	defer cancel()
	if _, err := Replay(context.Background(), e, "T1", trace[:256], 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	var got []Estimate
	for est := range ch {
		got = append(got, est)
	}
	if len(got) == 0 {
		t.Fatal("no estimates published")
	}
	var lastSeq uint64
	for _, est := range got {
		if est.Tag != "T1" {
			t.Errorf("estimate for tag %q", est.Tag)
		}
		if est.Seq <= lastSeq {
			t.Errorf("sequence went %d -> %d", lastSeq, est.Seq)
		}
		lastSeq = est.Seq
	}
	latest, _ := e.Latest("T1")
	if got[len(got)-1].Seq != latest.Seq {
		t.Errorf("last published seq %d != latest %d", got[len(got)-1].Seq, latest.Seq)
	}
}

func TestCoalescingUnderSlowSolver(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	solver := func(obs []core.PosPhase, _ *lionobs.Tracer) (*core.Solution, error) {
		started <- struct{}{}
		<-release
		return &core.Solution{}, nil
	}
	e, err := New(Config{
		WindowSize: 8, MinSamples: 1, SolveEvery: 1, Workers: 1, Solver: solver,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First sample dispatches and blocks in the solver; three more samples
	// each trigger a snapshot: one becomes pending, two replace it.
	if err := e.Ingest("T1", Sample{Pos: geom.V3(0, 0, 0), Phase: 1}); err != nil {
		t.Fatal(err)
	}
	<-started // the solver now owns the only worker
	for i := 1; i < 4; i++ {
		if err := e.Ingest("T1", Sample{Pos: geom.V3(float64(i)*0.1, 0, 0), Phase: 1}); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Solves != 2 {
		t.Errorf("solves = %d, want 2 (first + coalesced latest)", m.Solves)
	}
	if m.Coalesced != 2 {
		t.Errorf("coalesced = %d, want 2", m.Coalesced)
	}
	est, _ := e.Latest("T1")
	if est.Window != 4 {
		t.Errorf("final window %d, want 4 (the newest snapshot)", est.Window)
	}
}

func TestIngestValidation(t *testing.T) {
	_, lambda := testTrace(t, 8)
	e, err := New(lineConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())
	if err := e.Ingest("", Sample{Phase: 1}); !errors.Is(err, ErrNoTag) {
		t.Errorf("empty tag = %v, want ErrNoTag", err)
	}
	if err := e.Ingest("T1", Sample{Phase: math.NaN()}); !errors.Is(err, ErrBadSample) {
		t.Errorf("NaN phase = %v, want ErrBadSample", err)
	}
	if err := e.Ingest("T1", Sample{Pos: geom.V3(math.Inf(1), 0, 0), Phase: 1}); !errors.Is(err, ErrBadSample) {
		t.Errorf("Inf position = %v, want ErrBadSample", err)
	}
	if m := e.Metrics(); m.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", m.Rejected)
	}
}

func TestCloseSemantics(t *testing.T) {
	trace, lambda := testTrace(t, 9)
	e, err := New(lineConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestBatch("T1", toStream(trace[:64])); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("T1", FromSim(trace[64])); !errors.Is(err, ErrClosed) {
		t.Errorf("ingest after close = %v, want ErrClosed", err)
	}
	if err := e.Close(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("second close = %v, want ErrClosed", err)
	}
	// Close flushed the dirty window even though SolveEvery hadn't fired.
	if _, ok := e.Latest("T1"); !ok {
		t.Error("close did not flush the dirty window")
	}
}

func TestBadConfigs(t *testing.T) {
	_, lambda := testTrace(t, 10)
	solver := Line2DSolver(lambda, []float64{0.2}, true, core.DefaultSolveOptions())
	cases := []Config{
		{WindowSize: 0, Solver: solver},
		{WindowSize: 8},
		{WindowSize: 8, Smooth: 4, Solver: solver},
		{WindowSize: 8, WindowSpan: -time.Second, Solver: solver},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func toStream(trace []sim.Sample) []Sample {
	out := make([]Sample, len(trace))
	for i, s := range trace {
		out[i] = FromSim(s)
	}
	return out
}

// TestReplayPacing replays at a finite speed and checks both the pacing
// (duration scales with 1/speed) and ctx cancellation.
func TestReplayPacing(t *testing.T) {
	trace, lambda := testTrace(t, 11)
	e, err := New(lineConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())
	// 50 samples at 100 Hz = 490 ms of trace; at 100x it should take ~5 ms.
	begin := time.Now()
	if _, err := Replay(context.Background(), e, "T1", trace[:50], 100); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(begin); took > 2*time.Second {
		t.Errorf("100x replay of 0.5 s took %v", took)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Replay(ctx, e, "T2", trace[:50], 1); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled replay = %v, want context.Canceled", err)
	}
}

var _ = rf.DefaultBand // keep the import for wavelength-related helpers
