package stream

import (
	"fmt"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// Profile is the antenna calibration profile an engine applies to its
// windows: solvers see offset-corrected phases (measured − Δθ, the
// distance-only phase of Eq. 2) instead of raw reader phases. Profiles are
// the unit of closed-loop recalibration — the recal controller re-solves
// (Center, Offset) from live evidence and hot-swaps the active profile
// under load.
//
// Swap consistency barrier: a profile is pinned per window snapshot, under
// the same lock that freezes the sample window, so every solve sees one
// profile applied uniformly to its whole window. A constant offset shifts
// the unwrapped phase profile by a constant, which the pair-difference
// linear model cancels exactly — so a uniformly-applied swap never moves
// position estimates, while a torn window (half old offset, half new)
// would put a phase step mid-profile and corrupt the unwrap. The barrier
// is what makes hot swapping safe.
type Profile struct {
	// Antenna identifies the antenna the profile calibrates. When the
	// engine was configured with an antenna id, it must match.
	Antenna string
	// Center is the calibrated phase center (carried for audit and for
	// consumers that need the full calibration; the engine's correction
	// itself only uses Offset).
	Center geom.Vec3
	// Offset is the phase offset Δθ = θ_T + θ_R subtracted from every
	// sample phase before solving, radians.
	Offset float64
	// Lambda is the carrier wavelength, metres (audit metadata).
	Lambda float64
}

func (p Profile) validate(engineAntenna string) error {
	if !finite(p.Offset) || !p.Center.IsFinite() || !finite(p.Lambda) {
		return fmt.Errorf("%w: profile has non-finite fields", ErrBadConfig)
	}
	if engineAntenna != "" && p.Antenna != "" && p.Antenna != engineAntenna {
		return fmt.Errorf("%w: profile antenna %q does not match engine antenna %q",
			ErrBadConfig, p.Antenna, engineAntenna)
	}
	return nil
}

// SwapProfile atomically replaces the engine's active profile and returns
// the new profile version. In-flight and queued snapshots keep the profile
// they were pinned with; every snapshot taken after SwapProfile returns
// solves entirely under the new profile. The version counter starts at 1
// for the first profile (Config.Profile or first swap) so version 0 always
// means "uncorrected raw phases".
func (e *Engine) SwapProfile(p Profile) (uint64, error) {
	if err := p.validate(e.cfg.Antenna); err != nil {
		return 0, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	e.profile = p
	e.profActive = true
	e.profVersion++
	e.profileSwaps.Inc()
	return e.profVersion, nil
}

// ActiveProfile returns the engine's current profile and its version.
// ok is false (and the version 0) while no profile has ever been set.
func (e *Engine) ActiveProfile() (p Profile, version uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.profile, e.profVersion, e.profActive
}

// WindowSamples returns a copy of the tag's current window, oldest first,
// with raw (uncorrected) phases exactly as ingested — the evidence the
// recalibration controller re-solves from. Nil when the tag is unknown.
func (e *Engine) WindowSamples(tag string) []Sample {
	e.mu.Lock()
	defer e.mu.Unlock()
	sess := e.sessions[tag]
	if sess == nil || sess.n == 0 {
		return nil
	}
	out := make([]Sample, sess.n)
	for i := 0; i < sess.n; i++ {
		out[i] = sess.at(i)
	}
	return out
}

// applyProfile rewrites the snapshot's (solve-private) sample copy with the
// pinned profile's offset correction. Runs in the pool worker, outside the
// engine lock, and allocates nothing.
func (snap *snapshot) applyProfile() {
	if !snap.profActive {
		return
	}
	for i := range snap.samples {
		snap.samples[i].Phase = rf.WrapPhase(snap.samples[i].Phase - snap.profOffset)
	}
}
