package stream

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/obs"
)

// TestTracedIngestPublishesSpansAndSLOs drives one sampled batch through a
// factory-backed engine and checks the observability fan-out: the estimate
// carries a QueueWait distinct from Latency, the span log receives
// queue_wait/solve/publish spans under the trace id, the staleness histogram
// carries that trace as an exemplar, and the per-tag staleness series grows.
func TestTracedIngestPublishesSpansAndSLOs(t *testing.T) {
	trace, lambda := testTrace(t, 11)
	cfg := incrConfig(t, lambda, nil, nil)
	cfg.Spans = obs.NewSpanLog("liond", 256)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())
	ctx := context.Background()

	// Warm with untraced samples so the traced batch triggers exactly one
	// additional solve.
	var batch []Tagged
	for _, s := range trace[:300] {
		batch = append(batch, Tagged{Tag: "T1", Sample: Sample{Time: s.Time, Pos: s.TagPos, Phase: s.Phase}})
	}
	if acc, _, err := e.IngestTagged(batch); err != nil || acc != 300 {
		t.Fatalf("warm ingest: accepted %d err %v", acc, err)
	}
	if err := e.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if cfg.Spans.Len() != 0 {
		t.Fatalf("untraced ingest recorded %d spans", cfg.Spans.Len())
	}

	tc := obs.TraceContext{ID: 0xfeed, Sampled: true}
	origin := time.Now().Add(-50 * time.Millisecond) // upstream receive, in the past
	s := trace[300]
	traced := []Tagged{{Tag: "T1", Sample: Sample{Time: s.Time, Pos: s.TagPos, Phase: s.Phase}}}
	if acc, _, err := e.IngestTaggedTraced(traced, tc, origin); err != nil || acc != 1 {
		t.Fatalf("traced ingest: accepted %d err %v", acc, err)
	}
	if err := e.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	est, ok := e.Latest("T1")
	if !ok || est.Err != nil {
		t.Fatalf("no clean estimate: %+v", est)
	}
	if est.QueueWait <= 0 {
		t.Errorf("estimate queue wait = %v, want > 0", est.QueueWait)
	}

	spans := cfg.Spans.Spans(tc.ID)
	stages := make(map[string]obs.PipeSpan, len(spans))
	for _, sp := range spans {
		stages[sp.Stage] = sp
	}
	for _, stage := range []string{"queue_wait", "solve", "publish"} {
		sp, ok := stages[stage]
		if !ok {
			t.Fatalf("missing %q span; got %+v", stage, spans)
		}
		if sp.Tag != "T1" || sp.Service != "liond" {
			t.Errorf("%q span mis-attributed: %+v", stage, sp)
		}
	}
	if stages["queue_wait"].Start > stages["solve"].Start || stages["solve"].Start > stages["publish"].Start {
		t.Errorf("span starts out of pipeline order: %+v", stages)
	}

	// Staleness was measured from the upstream origin, so it must exceed the
	// 50ms head start, and the exemplar carries the trace id.
	series := e.StalenessSeries("T1")
	if len(series) == 0 || series[len(series)-1] < 0.05 {
		t.Fatalf("staleness series %v, want last >= 0.05", series)
	}
	if _, ok := e.Registry().FindHistogram("lion_stream_staleness_seconds"); !ok {
		t.Fatal("staleness histogram not registered")
	}
	var sb strings.Builder
	e.Registry().WritePrometheus(&sb)
	if want := `trace_id="000000000000feed"`; !strings.Contains(sb.String(), want) {
		t.Errorf("exposition lacks staleness exemplar %s", want)
	}
	for _, name := range []string{"lion_stream_queue_wait_seconds", "lion_stream_publish_latency_seconds"} {
		if h, ok := e.Registry().FindHistogram(name); !ok || h.Count() == 0 {
			t.Errorf("%s recorded no observations", name)
		}
	}
	if unknown := e.StalenessSeries("nope"); unknown != nil {
		t.Errorf("unknown tag staleness series = %v", unknown)
	}
}

// TestUntracedZeroAllocs is the PR's carrying constraint at the engine layer:
// with a span log configured but sampling off, the complete pipeline step —
// batched ingest, dispatch, incremental solve, SLO observation, publication —
// allocates nothing in steady state.
func TestUntracedZeroAllocs(t *testing.T) {
	trace, lambda := testTrace(t, 7)
	if len(trace) < 900 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	cfg := incrConfig(t, lambda, nil, nil)
	cfg.Spans = obs.NewSpanLog("liond", 256)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close(context.Background())
	ctx := context.Background()

	sampler := obs.NewSampler(1<<30, 1) // samples once, then never again
	sampler.Next()
	batch := make([]Tagged, 1)
	next := 0
	step := func() {
		s := trace[next]
		next++
		batch[0] = Tagged{Tag: "T1", Sample: Sample{Time: s.Time, Pos: s.TagPos, Phase: s.Phase}}
		tc := sampler.Next()
		if tc.Sampled {
			t.Fatal("sampler unexpectedly sampled")
		}
		if acc, _, err := e.IngestTaggedTraced(batch, tc, time.Time{}); err != nil || acc != 1 {
			t.Fatalf("ingest: accepted %d err %v", acc, err)
		}
		if err := e.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for next < 400 { // warm: fill window, size buffers, cross rebuilds
		step()
	}
	allocs := testing.AllocsPerRun(300, step)
	if allocs != 0 {
		t.Errorf("untraced ingest+solve+publish allocates %.1f times per run, want 0", allocs)
	}
	if est, ok := e.Latest("T1"); !ok || est.Err != nil {
		t.Fatalf("no clean estimate after alloc run: %+v", est)
	}
	if cfg.Spans.Len() != 0 {
		t.Errorf("untraced run recorded %d spans", cfg.Spans.Len())
	}
	if h, ok := e.Registry().FindHistogram("lion_stream_staleness_seconds"); !ok || h.Count() == 0 {
		t.Error("staleness histogram idle despite published estimates")
	}
}
