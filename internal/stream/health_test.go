package stream

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/health"
	lionobs "github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/rf"
)

// driftTrace synthesizes n clean linear-model samples: a tag marching along
// x past an antenna, phases following Eq. 2 exactly with the given constant
// offset. Clean phases keep the drift estimate noise-free, so the test's
// thresholds are exact.
func driftTrace(antenna geom.Vec3, lambda, offset float64, n int, start time.Duration) []Sample {
	out := make([]Sample, n)
	for i := range out {
		pos := geom.V3(-0.6+0.001*float64(i%1200), 0, 0)
		out[i] = Sample{
			Time:  start + time.Duration(i)*10*time.Millisecond,
			Pos:   pos,
			Phase: rf.WrapPhase(rf.PhaseOfDistance(antenna.Dist(pos), lambda) + offset),
		}
	}
	return out
}

// TestDriftAlertEndToEnd replays a stream whose phase offset steps mid-way —
// the uncalibrated-drift failure mode the paper's calibration exists to
// prevent — and walks the full loop: monitor sees every ingest, the drift
// rule goes pending then firing within the hold-down, the alert names the
// offending antenna with the drift estimate, the flight recorder holds the
// confirming traces, and correcting the offset resolves the alert.
func TestDriftAlertEndToEnd(t *testing.T) {
	antenna := geom.V3(0.1, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	const calOffset = 2.74
	const holdDown = 200 * time.Millisecond

	mon, err := health.New(health.Config{
		Rules: []health.Rule{{
			Name: "calibration_drift", Signal: health.SignalDrift, Kind: health.KindStatic,
			Threshold: 0.02, HoldDown: holdDown, Severity: health.SevCritical,
		}},
		Calibrations: []health.Calibration{{
			Antenna: "A1", Center: antenna, Offset: calOffset, Lambda: lambda,
			Window: 64, MinSamples: 32,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		WindowSize: 128,
		MinSamples: 8,
		SolveEvery: 16,
		Smooth:     5,
		Workers:    2,
		Solver:     Line2DSolver(lambda, []float64{0.1}, true, core.DefaultSolveOptions()),
		Monitor:    mon,
		Antenna:    "A1",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Feed in bursts with a Flush between them: unpaced ingest would
	// coalesce the whole phase into one or two solve ticks at the final
	// stream time, which starves the hold-down state machine of distinct
	// evaluation times. Chunking reproduces what paced replay delivers.
	feed := func(samples []Sample) {
		t.Helper()
		for i := 0; i < len(samples); i += 40 {
			end := min(i+40, len(samples))
			for _, s := range samples[i:end] {
				if err := e.Ingest("T1", s); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Flush(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: the calibrated offset. No drift, no alerts.
	phase1 := driftTrace(antenna, lambda, calOffset, 400, 0)
	feed(phase1)
	if got := mon.Alerts(); len(got) != 0 {
		t.Fatalf("healthy replay raised alerts: %+v", got)
	}

	// Phase 2: the offset steps by 0.05 λ worth of ranging error — an
	// uncalibrated antenna swap. The rule thresholds at 0.02 λ.
	step := 0.05 * 4 * math.Pi
	t2 := phase1[len(phase1)-1].Time + 10*time.Millisecond
	feed(driftTrace(antenna, lambda, calOffset+step, 400, t2))

	firing := findHealthAlert(mon.Alerts(), health.StateFiring)
	if firing == nil {
		t.Fatalf("drift alert not firing after offset step: %+v", mon.Alerts())
	}
	if firing.Scope != "antenna:A1" {
		t.Errorf("alert scope = %q, want antenna:A1", firing.Scope)
	}
	if math.Abs(firing.Value-0.05) > 0.005 {
		t.Errorf("alert drift estimate = %v λ, want ≈0.05", firing.Value)
	}
	// Firing happened within the hold-down of pending, on stream time.
	if d := firing.FiredAt - firing.StartedAt; d < holdDown || d > holdDown+time.Second {
		t.Errorf("fired %v after pending, want hold-down %v (+ solve cadence)", d, holdDown)
	}
	if !mon.CriticalFiring() {
		t.Error("CriticalFiring false while drift alert fires")
	}
	// Evidence: the flight recorder snapshot at fire time holds the solve
	// traces that confirmed the alert.
	if len(firing.Evidence) == 0 {
		t.Fatal("firing alert carries no flight-recorder evidence")
	}
	for _, rec := range firing.Evidence {
		if rec.Tag != "T1" || len(rec.Events) == 0 {
			t.Fatalf("evidence record without trace events: %+v", rec)
		}
	}
	// The live recorder agrees.
	if got := mon.Flight("T1"); len(got) == 0 {
		t.Error("flight recorder empty after traced solves")
	}
	// Drift status names the antenna with the re-estimated offset.
	drifts := mon.Drifts()
	if len(drifts) != 1 || drifts[0].Antenna != "A1" || !drifts[0].Valid {
		t.Fatalf("Drifts() = %+v", drifts)
	}
	if math.Abs(drifts[0].DriftLambda-0.05) > 0.005 {
		t.Errorf("DriftLambda = %v, want ≈0.05", drifts[0].DriftLambda)
	}

	// Phase 3: offset corrected. The sliding window flushes and the alert
	// resolves after the hysteresis.
	t3 := t2 + 400*10*time.Millisecond
	feed(driftTrace(antenna, lambda, calOffset, 400, t3))
	resolved := findHealthAlert(mon.Alerts(), health.StateResolved)
	if resolved == nil {
		t.Fatalf("drift alert did not resolve after correction: %+v", mon.Alerts())
	}
	if mon.CriticalFiring() {
		t.Error("CriticalFiring true after resolution")
	}
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func findHealthAlert(alerts []health.Alert, state health.State) *health.Alert {
	for i := range alerts {
		if alerts[i].State == state {
			return &alerts[i]
		}
	}
	return nil
}

// TestMonitorDropAccounting checks that real sample losses — age evictions
// here; RejectNewest refusals count the same way — reach the monitor's
// drop-rate signal. Routine EvictOldest rotation must NOT: in steady state a
// full window rotates on every sample, and flagging that as loss would fire
// the drop rule on every healthy long-running stream.
func TestMonitorDropAccounting(t *testing.T) {
	mon, err := health.New(health.Config{
		Rules: []health.Rule{{
			Name: "stream_drops", Signal: health.SignalDropRate, Kind: health.KindStatic,
			Threshold: 0.25, HoldDown: 0, Severity: health.SevWarning,
		}},
		RateAlpha:   0.99,
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	solver := func(win []core.PosPhase, _ *lionobs.Tracer) (*core.Solution, error) {
		return &core.Solution{Position: geom.V3(0, 0, 0)}, nil
	}
	e, err := New(Config{
		WindowSize: 64, WindowSpan: 5 * time.Millisecond,
		MinSamples: 1, SolveEvery: 1, Workers: 1,
		Solver: solver, Monitor: mon, Antenna: "A1",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Samples 10 ms apart against a 5 ms span: every ingest age-evicts its
	// predecessor, a sustained ~50% loss rate.
	for i := range 64 {
		s := Sample{Time: time.Duration(i) * 10 * time.Millisecond, Pos: geom.V3(float64(i), 0, 0), Phase: 1}
		if err := e.Ingest("T1", s); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if a := findHealthAlert(mon.Alerts(), health.StateFiring); a == nil {
		t.Fatalf("drop-rate alert not firing at ~50%% drops: %+v", mon.Alerts())
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The contrast case: a full window rotating under EvictOldest is healthy
	// and must leave the drop signal at zero.
	mon2, err := health.New(health.Config{
		Rules: []health.Rule{{
			Name: "stream_drops", Signal: health.SignalDropRate, Kind: health.KindStatic,
			Threshold: 0.25, HoldDown: 0, Severity: health.SevWarning,
		}},
		RateAlpha:   0.99,
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(Config{
		WindowSize: 4, MinSamples: 1, SolveEvery: 1, Workers: 1,
		Solver: solver, Monitor: mon2, Antenna: "A1",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range 64 {
		s := Sample{Time: time.Duration(i) * time.Millisecond, Pos: geom.V3(float64(i), 0, 0), Phase: 1}
		if err := e2.Ingest("T1", s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := mon2.Alerts(); len(got) != 0 {
		t.Fatalf("EvictOldest rotation raised drop alerts: %+v", got)
	}
}

// TestStressMonitorConcurrent feeds concurrent window solves through a fully
// armed monitor while pollers hammer the read APIs the liond endpoints use
// (/v1/alerts → Alerts/Drifts, /metrics → WritePrometheus, /debug/flight →
// Flight, dashboard → Series). Run under -race this exercises the
// engine-mutex → monitor-mutex lock ordering from every side.
func TestStressMonitorConcurrent(t *testing.T) {
	antenna := geom.V3(0.1, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	reg := lionobs.NewRegistry()
	mon, err := health.New(health.Config{
		Calibrations: []health.Calibration{{
			Antenna: "A1", Center: antenna, Offset: 2.74, Lambda: lambda,
		}},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		WindowSize: 64, MinSamples: 8, SolveEvery: 8, Smooth: 5, Workers: 4,
		Solver:   Line2DSolver(lambda, []float64{0.05}, true, core.DefaultSolveOptions()),
		Registry: reg,
		Monitor:  mon,
		Antenna:  "A1",
	})
	if err != nil {
		t.Fatal(err)
	}

	pollCtx, stopPoll := context.WithCancel(context.Background())
	var pollWG sync.WaitGroup
	for range 3 {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			for pollCtx.Err() == nil {
				mon.Alerts()
				mon.Drifts()
				mon.CriticalFiring()
				mon.Flight("A")
				mon.FlightTags()
				mon.Series("A", health.SignalResidual)
				var sb strings.Builder
				reg.WritePrometheus(&sb)
			}
		}()
	}

	const publishers = 6
	const perPub = 400
	var pubWG sync.WaitGroup
	for i := range publishers {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			tag := string(rune('A' + i))
			trace := driftTrace(antenna, lambda, 2.74, perPub, 0)
			for _, s := range trace {
				if err := e.Ingest(tag, s); err != nil {
					t.Errorf("publisher %s: %v", tag, err)
					return
				}
			}
		}()
	}
	pubWG.Wait()
	if err := e.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	stopPoll()
	pollWG.Wait()

	if got := e.Metrics().Solves; got == 0 {
		t.Fatal("no solves completed under load")
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "lion_health_solves_observed_total") {
		t.Error("health metrics missing from shared registry")
	}
	if len(mon.FlightTags()) == 0 {
		t.Error("flight recorder empty after traced load")
	}
}
