package stream

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// profileTrace synthesizes n clean samples of a tag marching monotonically
// along x past an antenna at center (5 mm steps, so any 64-sample window
// spans 0.32 m — enough for the 0.2 m pairing interval), phases following
// Eq. 2 with a constant offset.
func profileTrace(center geom.Vec3, lambda, offset float64, n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		pos := geom.V3(-1.0+0.005*float64(i), 0, 0)
		out[i] = Sample{
			Time:  time.Duration(i) * 10 * time.Millisecond,
			Pos:   pos,
			Phase: rf.WrapPhase(rf.PhaseOfDistance(center.Dist(pos), lambda) + offset),
		}
	}
	return out
}

func lineEngine(t *testing.T, lambda float64, p *Profile) *Engine {
	t.Helper()
	e, err := New(Config{
		WindowSize: 64,
		MinSamples: 32,
		Solver:     Line2DSolver(lambda, []float64{0.2}, true, core.DefaultSolveOptions()),
		Antenna:    "A1",
		Profile:    p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestProfileCorrectionPositionInvariant: a constant-offset profile applied
// uniformly must not move the position estimate — the pair-difference model
// cancels constant phase shifts. The corrected engine's estimate therefore
// has to land on the same center as an uncorrected engine fed offset-free
// phases.
func TestProfileCorrectionPositionInvariant(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	center := geom.V3(0.05, 0.8, 0)
	const offset = 2.7

	raw := lineEngine(t, lambda, nil)
	corrected := lineEngine(t, lambda, &Profile{Antenna: "A1", Offset: offset, Lambda: lambda})
	defer raw.Close(context.Background())
	defer corrected.Close(context.Background())

	clean := profileTrace(center, lambda, 0, 64)
	offsetted := profileTrace(center, lambda, offset, 64)
	if _, err := raw.IngestBatch("T1", clean); err != nil {
		t.Fatal(err)
	}
	if _, err := corrected.IngestBatch("T1", offsetted); err != nil {
		t.Fatal(err)
	}
	if err := raw.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := corrected.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	er, ok := raw.Latest("T1")
	if !ok || er.Err != nil {
		t.Fatalf("raw estimate: ok=%v err=%v", ok, er.Err)
	}
	ec, ok := corrected.Latest("T1")
	if !ok || ec.Err != nil {
		t.Fatalf("corrected estimate: ok=%v err=%v", ok, ec.Err)
	}
	if er.ProfileVersion != 0 {
		t.Errorf("raw engine ProfileVersion = %d, want 0", er.ProfileVersion)
	}
	if ec.ProfileVersion != 1 {
		t.Errorf("corrected engine ProfileVersion = %d, want 1", ec.ProfileVersion)
	}
	if d := er.Solution.Position.Dist(ec.Solution.Position); d > 1e-6 {
		t.Errorf("corrected estimate %.6v differs from raw %.6v by %v m",
			ec.Solution.Position, er.Solution.Position, d)
	}
	if d := ec.Solution.Position.Dist(center); d > 0.02 {
		t.Errorf("corrected estimate %v is %v m from truth %v", ec.Solution.Position, d, center)
	}
}

func TestSwapProfileVersioningAndValidation(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	e := lineEngine(t, lambda, nil)

	if _, _, ok := e.ActiveProfile(); ok {
		t.Error("fresh engine reports an active profile")
	}
	v, err := e.SwapProfile(Profile{Antenna: "A1", Offset: 1.0, Lambda: lambda})
	if err != nil || v != 1 {
		t.Fatalf("first swap: v=%d err=%v, want 1", v, err)
	}
	v, err = e.SwapProfile(Profile{Antenna: "A1", Offset: 2.0, Lambda: lambda})
	if err != nil || v != 2 {
		t.Fatalf("second swap: v=%d err=%v, want 2", v, err)
	}
	p, pv, ok := e.ActiveProfile()
	if !ok || pv != 2 || p.Offset != 2.0 {
		t.Fatalf("ActiveProfile = %+v v=%d ok=%v", p, pv, ok)
	}

	if _, err := e.SwapProfile(Profile{Antenna: "A9", Offset: 1}); err == nil {
		t.Error("antenna mismatch accepted")
	}
	if _, err := e.SwapProfile(Profile{Antenna: "A1", Offset: math.NaN()}); err == nil {
		t.Error("non-finite offset accepted")
	}

	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SwapProfile(Profile{Antenna: "A1", Offset: 3}); !errors.Is(err, ErrClosed) {
		t.Errorf("swap after close: err = %v, want ErrClosed", err)
	}
}

func TestWindowSamplesRawCopy(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	e := lineEngine(t, lambda, &Profile{Antenna: "A1", Offset: 1.5, Lambda: lambda})
	defer e.Close(context.Background())

	trace := profileTrace(geom.V3(0, 0.8, 0), lambda, 1.5, 40)
	if _, err := e.IngestBatch("T1", trace); err != nil {
		t.Fatal(err)
	}
	got := e.WindowSamples("T1")
	if len(got) != 40 {
		t.Fatalf("WindowSamples returned %d samples, want 40", len(got))
	}
	// Phases must be the raw ingested values, untouched by the profile.
	for i, s := range got {
		if s != trace[i] {
			t.Fatalf("sample %d = %+v, want raw %+v", i, s, trace[i])
		}
	}
	// Mutating the copy must not reach the engine.
	got[0].Phase = 99
	if again := e.WindowSamples("T1"); again[0].Phase == 99 {
		t.Error("WindowSamples aliases the session ring")
	}
	if e.WindowSamples("nope") != nil {
		t.Error("unknown tag returned samples")
	}
}

// TestProfileSwapBarrierRaceStress hammers the swap path while solves are in
// flight: several tags ingesting clean offsetted streams, one goroutine
// hot-swapping between two wildly different profiles. Either profile applied
// uniformly yields the true center (constant shifts cancel in the pair
// model); only a torn window — part corrected under the old offset, part
// under the new — can move an estimate. Every published estimate landing on
// the truth is therefore a direct proof of the swap consistency barrier,
// and the -race run proves the locking.
func TestProfileSwapBarrierRaceStress(t *testing.T) {
	lambda := rf.DefaultBand().Wavelength()
	center := geom.V3(0.05, 0.8, 0)
	const trueOffset = 2.0

	factory, err := IncrementalLine2DFactory(lambda, []float64{0.2}, true, core.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		WindowSize:    64,
		MinSamples:    32,
		SolverFactory: factory,
		Antenna:       "A1",
		Profile:       &Profile{Antenna: "A1", Offset: 0.3, Lambda: lambda},
	})
	if err != nil {
		t.Fatal(err)
	}

	ests, cancel := e.Subscribe()
	defer cancel()
	var checked int
	var worst float64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for est := range ests {
			if est.Err != nil || est.Solution == nil {
				continue
			}
			checked++
			if d := est.Solution.Position.Dist(center); d > worst {
				worst = d
			}
		}
	}()

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		offsets := []float64{0.3, 5.1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.SwapProfile(Profile{
				Antenna: "A1", Offset: offsets[i%len(offsets)], Lambda: lambda,
			}); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("swap: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	tags := []string{"T1", "T2", "T3", "T4"}
	var ingest sync.WaitGroup
	for _, tag := range tags {
		trace := profileTrace(center, lambda, trueOffset, 400)
		ingest.Add(1)
		go func(tag string, trace []Sample) {
			defer ingest.Done()
			for _, s := range trace {
				if err := e.Ingest(tag, s); err != nil {
					t.Errorf("ingest %s: %v", tag, err)
					return
				}
			}
		}(tag, trace)
	}
	ingest.Wait()
	close(stop)
	swapper.Wait()
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done

	if checked == 0 {
		t.Fatal("no successful estimates published")
	}
	// Clean synthetic data: a uniformly-corrected window solves to the
	// exact center; a torn window would be centimetres-to-metres off.
	if worst > 0.02 {
		t.Errorf("worst estimate error %v m across %d estimates — swap barrier torn a window", worst, checked)
	}
}
