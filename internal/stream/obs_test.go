package stream

import (
	"context"
	"strings"
	"testing"

	lionobs "github.com/rfid-lion/lion/internal/obs"
)

// TestEngineExportsRegistryMetrics checks that the engine's counters land in
// its registry under the lion_stream_* names and agree with the Metrics()
// snapshot after a replayed trace.
func TestEngineExportsRegistryMetrics(t *testing.T) {
	trace, lambda := testTrace(t, 55)
	cfg := lineConfig(lambda)
	reg := lionobs.NewRegistry()
	cfg.Registry = reg
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Registry() != reg {
		t.Fatal("Registry() did not return the configured registry")
	}
	for _, s := range toStream(trace[:128]) {
		if err := e.Ingest("T1", s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	reg.WritePrometheus(&buf)
	exp := buf.String()
	m := e.Metrics()
	for _, want := range []string{
		"lion_stream_ingested_total 128",
		"lion_stream_solve_latency_seconds_count",
		"lion_batch_jobs_total{result=\"ok\"}",
		"lion_stream_tags 1",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
	if m.Ingested != 128 {
		t.Errorf("Metrics().Ingested = %d, want 128", m.Ingested)
	}
	if m.Solves == 0 || m.LatencyCount == 0 {
		t.Errorf("solves/latency not recorded: %+v", m)
	}
}

// TestEngineLastTrace checks that TraceSolves retains the latest per-tag
// solve trace with solver iteration events, and that tracing stays off (and
// LastTrace empty) by default.
func TestEngineLastTrace(t *testing.T) {
	trace, lambda := testTrace(t, 56)
	cfg := lineConfig(lambda)
	cfg.TraceSolves = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range toStream(trace[:160]) {
		if err := e.Ingest("T1", s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	events, ok := e.LastTrace("T1")
	if !ok || len(events) == 0 {
		t.Fatal("no trace retained with TraceSolves on")
	}
	var iters int
	for _, ev := range events {
		if ev.Kind == lionobs.KindIRLSIter {
			iters++
		}
	}
	if iters == 0 {
		t.Errorf("trace has no irls_iter events: %d events total", len(events))
	}
	if _, ok := e.LastTrace("T2"); ok {
		t.Error("unknown tag reported a trace")
	}

	// Default config: no traces retained.
	e2, err := New(lineConfig(lambda))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range toStream(trace[:160]) {
		if err := e2.Ingest("T1", s); err != nil {
			t.Fatal(err)
		}
	}
	if err := e2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.LastTrace("T1"); ok {
		t.Error("trace retained without TraceSolves")
	}
}
