package stream

import (
	"context"
	"testing"

	"github.com/rfid-lion/lion/internal/core"
)

// BenchmarkStreamIngest measures the pure ingest path — ring-buffer push,
// span eviction check, trigger bookkeeping — with solving disabled by an
// unreachable SolveEvery.
func BenchmarkStreamIngest(b *testing.B) {
	trace, lambda := testTrace(b, 100)
	e, err := New(Config{
		WindowSize: 256,
		MinSamples: 8,
		SolveEvery: 1 << 30,
		Workers:    1,
		Solver:     Line2DSolver(lambda, []float64{0.1}, true, core.DefaultSolveOptions()),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close(context.Background())
	samples := toStream(trace)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		if err := e.Ingest("T1", samples[i%len(samples)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowSolve measures one full window solve: preprocessing
// (unwrap + smooth) plus the interval-paired WLS line localization over a
// 256-sample window — the unit of work the pool executes per trigger.
func BenchmarkWindowSolve(b *testing.B) {
	trace, lambda := testTrace(b, 101)
	window := toStream(trace[:256])
	solver := Line2DSolver(lambda, []float64{0.1}, true, core.DefaultSolveOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		if _, err := SolveWindow(window, 9, solver, nil); err != nil {
			b.Fatal(err)
		}
	}
}
