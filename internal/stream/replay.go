package stream

import (
	"context"
	"time"

	"github.com/rfid-lion/lion/internal/sim"
)

// FromSim converts one testbed read into a stream sample.
func FromSim(s sim.Sample) Sample {
	return Sample{Time: s.Time, Pos: s.TagPos, Phase: s.Phase}
}

// Replay feeds a recorded trace into the engine under one tag, pacing the
// sends by the samples' own timestamps scaled by speed: 1 replays in real
// time, 10 replays ten times faster, and speed <= 0 pushes as fast as the
// engine accepts. It returns the number of samples accepted and the first
// error (context cancellation, or an ingest rejection).
//
// Replay is how the whole streaming pipeline is exercised deterministically
// without hardware: a seeded lionsim trace replayed at any speed produces
// the same final-window estimate as the offline batch solve.
func Replay(ctx context.Context, e *Engine, tag string, trace []sim.Sample, speed float64) (int, error) {
	var prev time.Duration
	for i, s := range trace {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return i, err
			}
		}
		if speed > 0 && i > 0 {
			if d := s.Time - prev; d > 0 {
				if err := sleepCtx(ctx, time.Duration(float64(d)/speed)); err != nil {
					return i, err
				}
			}
		}
		prev = s.Time
		if err := e.Ingest(tag, FromSim(s)); err != nil {
			return i, err
		}
	}
	return len(trace), nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
