package sim

import (
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/traject"
)

func fccHopPlan() *HopPlan {
	return &HopPlan{
		FrequenciesHz: []float64{902.75e6, 915.25e6, 927.25e6},
		Dwell:         200 * time.Millisecond,
	}
}

func TestHoppingReaderLabelsChannels(t *testing.T) {
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(env, ReaderConfig{RateHz: 100, Seed: 1, Hopping: fccHopPlan()})
	if err != nil {
		t.Fatal(err)
	}
	trj, err := traject.NewLinear(geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := r.Scan(&Antenna{PhysicalCenter: geom.V3(0, 0.8, 0)}, &Tag{}, trj)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, s := range samples {
		seen[s.Channel]++
	}
	if len(seen) != 3 {
		t.Fatalf("channels used = %v, want 3", seen)
	}
	// Dwell 200 ms at 100 Hz → runs of 20 reads per channel.
	runLen := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].Channel == samples[i-1].Channel {
			runLen++
			continue
		}
		if runLen < 15 {
			t.Fatalf("channel run of %d reads, want ~20", runLen+1)
		}
		runLen = 0
	}
	wl := r.ChannelWavelengths()
	if len(wl) != 3 {
		t.Fatalf("wavelengths = %v", wl)
	}
	for c, l := range wl {
		want := rf.SpeedOfLight / fccHopPlan().FrequenciesHz[c]
		if d := l - want; d > 1e-9 || d < -1e-9 {
			t.Errorf("channel %d wavelength = %v, want %v", c, l, want)
		}
	}
}

func TestHoppingValidation(t *testing.T) {
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(env, ReaderConfig{
		RateHz: 100, Hopping: &HopPlan{},
	}); err == nil {
		t.Error("empty hop plan accepted")
	}
	if _, err := NewReader(env, ReaderConfig{
		RateHz: 100, Hopping: &HopPlan{FrequenciesHz: []float64{-1}},
	}); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestFixedReaderReportsSingleChannel(t *testing.T) {
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(env, DefaultReaderConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl := r.ChannelWavelengths()
	if len(wl) != 1 || wl[0] != env.Wavelength() {
		t.Errorf("fixed-carrier wavelengths = %v", wl)
	}
}

// TestHoppedEndToEndLocalization drives the full multi-channel pipeline:
// hopped scan → split by channel → per-channel unwrap → joint solve.
func TestHoppedEndToEndLocalization(t *testing.T) {
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	env.PhaseNoiseStd = 0.05
	r, err := NewReader(env, ReaderConfig{RateHz: 100, Seed: 9, Hopping: fccHopPlan()})
	if err != nil {
		t.Fatal(err)
	}
	ant := &Antenna{
		PhysicalCenter:    geom.V3(0.1, 0.8, 0),
		PhaseCenterOffset: geom.V3(0.02, -0.01, 0),
		PhaseOffset:       1.7,
	}
	tag := &Tag{PhaseOffset: 0.4}
	trj, err := traject.NewCircularXY(geom.V3(0, 0, 0), 0.3, 0.1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := r.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}

	// Split raw samples by channel and preprocess each channel separately
	// (phases are only continuous within a channel).
	byChannel := map[int][]Sample{}
	for _, s := range samples {
		byChannel[s.Channel] = append(byChannel[s.Channel], s)
	}
	wl := r.ChannelWavelengths()
	var chans []core.ChannelObservations
	for c, chSamples := range byChannel {
		obs, err := core.Preprocess(Positions(chSamples), Phases(chSamples), 9)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, core.ChannelObservations{Lambda: wl[c], Obs: obs})
	}
	sol, err := core.Locate2DMultiChannel(chans, 20, core.DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant.PhaseCenter()); got > 0.03 {
		t.Errorf("hopped end-to-end error %v m (got %v)", got, sol.Position)
	}
}
