// Package sim is the software RFID testbed that stands in for the paper's
// hardware (Impinj Speedway R420 reader, Laird S9028PCL antenna, Impinj
// E41-B/E51 tags, sliding track and turntable).
//
// The calibration and localization algorithms consume only
// (time, tag position, wrapped phase) tuples, so a simulator that produces
// exactly those — with the modulo-2π wrap, per-device phase offsets, the
// antenna's phase-center displacement, Gaussian phase noise, and
// image-method multipath — exercises the identical code path as the real
// testbed. See DESIGN.md §3 for the substitution argument.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
	"github.com/rfid-lion/lion/internal/traject"
)

// Errors returned by the simulator.
var (
	ErrBadRate    = errors.New("sim: read rate must be positive")
	ErrBadDropout = errors.New("sim: dropout probability must be in [0, 1)")
	ErrNilDevice  = errors.New("sim: antenna and tag must be non-nil")
)

// Antenna models one reader antenna. Its true phase center — the point that
// actually transmits and receives — is displaced from the physical center by
// PhaseCenterOffset (the paper measures 2–3 cm on real hardware, Fig. 2).
type Antenna struct {
	// ID identifies the antenna in logs and calibration reports.
	ID string
	// PhysicalCenter is the manually measured mounting position.
	PhysicalCenter geom.Vec3
	// PhaseCenterOffset is the displacement from the physical center to the
	// true phase center.
	PhaseCenterOffset geom.Vec3
	// PhaseOffset is θ_R, the constant phase rotation contributed by the
	// reader/antenna circuitry (Eq. 1).
	PhaseOffset float64
	// Beam optionally models the directional gain pattern; nil means
	// isotropic.
	Beam *rf.Beam
}

// PhaseCenter returns the true phase center.
func (a *Antenna) PhaseCenter() geom.Vec3 {
	return a.PhysicalCenter.Add(a.PhaseCenterOffset)
}

// Tag models one RFID tag with its reflection phase offset θ_T (Eq. 1).
type Tag struct {
	ID          string
	PhaseOffset float64
}

// Environment bundles the RF conditions of a deployment.
type Environment struct {
	// Propagation carries the carrier wavelength and multipath reflectors.
	Propagation *rf.Propagation
	// PhaseNoiseStd is the baseline standard deviation of the Gaussian
	// phase noise in radians. The paper's own simulations use N(0, 0.1).
	PhaseNoiseStd float64
	// TxPowerDBm is the reader transmit power (the paper uses 32 dBm).
	TxPowerDBm float64
	// NoiseDistanceRef optionally inflates noise with distance: at distance
	// d the noise standard deviation is multiplied by max(1, d/ref),
	// modelling the SNR loss the paper observes at large depth (Fig. 14b).
	// Zero disables the effect.
	NoiseDistanceRef float64
	// Fading optionally models bursty multipath fades during tag movement;
	// nil disables the effect.
	Fading *FadeModel
}

// FadeModel describes deep multipath fades: as the tag travels, the channel
// occasionally drops into a fade where the reported phase acquires a large
// bias and extra jitter. Fades become more frequent as the line-of-sight
// weakens with distance, which is the mechanism the paper blames for DAH's
// degradation at large depth (Sec. V-C-2).
type FadeModel struct {
	// RatePerMeter is the expected number of fade onsets per metre of tag
	// travel when the tag is at RefDistance from the antenna. The rate
	// scales with (d/RefDistance)².
	RatePerMeter float64
	// RefDistance anchors the rate scaling.
	RefDistance float64
	// MinLength and MaxLength bound the spatial extent of one fade, metres.
	MinLength, MaxLength float64
	// MaxBias bounds the constant phase bias a fade adds, radians.
	MaxBias float64
}

// rate returns the fade onset rate per metre at distance d.
func (f *FadeModel) rate(d float64) float64 {
	if f.RefDistance <= 0 {
		return f.RatePerMeter
	}
	s := d / f.RefDistance
	return f.RatePerMeter * s * s
}

// DefaultPhaseNoiseStd matches the Gaussian noise of the paper's
// simulations, N(0, 0.1) radians.
const DefaultPhaseNoiseStd = 0.1

// NewEnvironment returns a free-space environment on the paper's band with
// the default noise level.
func NewEnvironment() (*Environment, error) {
	prop, err := rf.NewPropagation(rf.DefaultBand())
	if err != nil {
		return nil, err
	}
	return &Environment{
		Propagation:   prop,
		PhaseNoiseStd: DefaultPhaseNoiseStd,
		TxPowerDBm:    32,
	}, nil
}

// Wavelength returns the carrier wavelength in metres.
func (e *Environment) Wavelength() float64 { return e.Propagation.Lambda }

// AddReflector adds a multipath reflector to the environment.
func (e *Environment) AddReflector(r rf.Reflector) {
	e.Propagation.Reflectors = append(e.Propagation.Reflectors, r)
}

// Sample is one read delivered by the simulated reader. Phase is the
// wrapped reported phase in [0, 2π); TagPos is the commanded (ground-truth)
// tag position, which the algorithms know because the trajectory is known.
type Sample struct {
	Time    time.Duration
	TagPos  geom.Vec3
	Phase   float64
	RSSI    float64
	Segment int
	// Channel is the hop channel index the read was taken on (0 for a
	// fixed-frequency reader).
	Channel int
}

// Reader drives scans: it samples a trajectory at the configured read rate
// and produces the phase stream a real reader would report via LLRP.
type Reader struct {
	env     *Environment
	rateHz  float64
	dropout float64
	rng     *stats.RNG

	// Hopping state: per-channel propagation (shared reflectors, distinct
	// wavelengths) and per-channel stable phase offsets. Nil when fixed.
	hop        *HopPlan
	hopProps   []*rf.Propagation
	hopOffsets []float64
}

// HopPlan describes frequency hopping. The paper's testbed runs on a fixed
// 920.625 MHz carrier (China band), but FCC-region readers hop across up to
// 50 channels with ~200 ms dwells. Each channel keeps a stable but unknown
// phase offset (the PLL re-locks reproducibly per frequency), so phases are
// continuous within a channel and unrelated across channels — the situation
// core.Locate2DMultiChannel solves.
type HopPlan struct {
	// FrequenciesHz lists the hop channels.
	FrequenciesHz []float64
	// Dwell is the time spent on each channel before hopping. Zero means
	// 200 ms.
	Dwell time.Duration
}

func (h *HopPlan) dwell() time.Duration {
	if h.Dwell <= 0 {
		return 200 * time.Millisecond
	}
	return h.Dwell
}

// ReaderConfig parameterises a Reader.
type ReaderConfig struct {
	// RateHz is the per-tag read rate; the paper reports over 100 Hz.
	RateHz float64
	// DropoutProb is the probability that an individual read is missed,
	// modelling the bursty delivery of real inventory rounds.
	DropoutProb float64
	// Seed makes the run reproducible.
	Seed int64
	// Hopping optionally makes the reader hop channels; nil keeps the
	// paper's fixed carrier.
	Hopping *HopPlan
}

// DefaultReaderConfig matches the paper's testbed conditions.
func DefaultReaderConfig() ReaderConfig {
	return ReaderConfig{RateHz: 100, DropoutProb: 0, Seed: 1}
}

// NewReader builds a reader for the environment.
func NewReader(env *Environment, cfg ReaderConfig) (*Reader, error) {
	if env == nil {
		return nil, errors.New("sim: environment must be non-nil")
	}
	if cfg.RateHz <= 0 {
		return nil, ErrBadRate
	}
	if cfg.DropoutProb < 0 || cfg.DropoutProb >= 1 {
		return nil, ErrBadDropout
	}
	r := &Reader{
		env:     env,
		rateHz:  cfg.RateHz,
		dropout: cfg.DropoutProb,
		rng:     stats.NewRNG(cfg.Seed),
	}
	if cfg.Hopping != nil {
		if len(cfg.Hopping.FrequenciesHz) == 0 {
			return nil, errors.New("sim: hop plan needs at least one frequency")
		}
		r.hop = cfg.Hopping
		for _, f := range cfg.Hopping.FrequenciesHz {
			prop, err := rf.NewPropagation(rf.Band{FrequencyHz: f})
			if err != nil {
				return nil, err
			}
			prop.Reflectors = env.Propagation.Reflectors
			r.hopProps = append(r.hopProps, prop)
			// The PLL re-locks reproducibly per frequency: a stable,
			// channel-specific offset.
			r.hopOffsets = append(r.hopOffsets, r.rng.Angle())
		}
	}
	return r, nil
}

// channelAt returns the active hop channel index at elapsed scan time t, or
// 0 when the reader runs on a fixed carrier.
func (r *Reader) channelAt(t time.Duration) int {
	if r.hop == nil {
		return 0
	}
	return int(t/r.hop.dwell()) % len(r.hopProps)
}

// ChannelWavelengths returns the wavelength of each hop channel (a single
// entry when the carrier is fixed), for feeding core.SplitChannels.
func (r *Reader) ChannelWavelengths() map[int]float64 {
	out := make(map[int]float64)
	if r.hop == nil {
		out[0] = r.env.Wavelength()
		return out
	}
	for i, p := range r.hopProps {
		out[i] = p.Lambda
	}
	return out
}

// Scan moves the tag along the trajectory and returns the reads collected by
// the antenna. When the trajectory implements traject.Segmented, each sample
// carries its segment label.
func (r *Reader) Scan(ant *Antenna, tag *Tag, trj traject.Trajectory) ([]Sample, error) {
	if ant == nil || tag == nil {
		return nil, ErrNilDevice
	}
	if trj == nil {
		return nil, errors.New("sim: trajectory must be non-nil")
	}
	seg, _ := trj.(traject.Segmented)
	step := time.Duration(float64(time.Second) / r.rateHz)
	if step <= 0 {
		return nil, ErrBadRate
	}
	total := trj.Duration()
	n := int(total/step) + 1
	out := make([]Sample, 0, n)
	fade := newFadeState(r.env.Fading, r.rng)
	prev := trj.Position(0)
	for t := time.Duration(0); t <= total; t += step {
		pos := trj.Position(t)
		// Fades strike when the line-of-sight is weak: far away, or
		// moderately off the antenna's main beam. The beam contribution is
		// capped so side-lobe floor gains do not saturate the fade process.
		center := ant.PhaseCenter()
		effDist := center.Dist(pos)
		if ant.Beam != nil {
			g := math.Max(ant.Beam.Gain(center, pos), 0.5)
			effDist /= math.Sqrt(g)
		}
		bias, extraNoise := fade.advance(effDist, pos.Dist(prev))
		prev = pos
		if r.dropout > 0 && r.rng.Float64() < r.dropout {
			continue
		}
		s := r.read(ant, tag, pos, r.channelAt(t))
		if bias != 0 || extraNoise > 0 {
			s.Phase = rf.WrapPhase(s.Phase + bias + r.rng.Normal(0, extraNoise))
		}
		s.Time = t
		if seg != nil {
			s.Segment = seg.SegmentAt(t)
		}
		out = append(out, s)
	}
	return out, nil
}

// fadeState tracks the bursty-fade process along one scan.
type fadeState struct {
	model     *FadeModel
	rng       *stats.RNG
	remaining float64 // metres of fade left; <= 0 means not fading
	bias      float64
}

func newFadeState(model *FadeModel, rng *stats.RNG) *fadeState {
	return &fadeState{model: model, rng: rng}
}

// advance moves the process by travelled metres at antenna distance d and
// returns the phase bias plus extra noise std to apply to the next read.
func (f *fadeState) advance(d, travelled float64) (bias, extraNoise float64) {
	if f.model == nil {
		return 0, 0
	}
	if f.remaining > 0 {
		f.remaining -= travelled
		return f.bias, f.model.MaxBias / 8
	}
	if f.rng.Float64() < f.model.rate(d)*travelled {
		f.remaining = f.rng.Uniform(f.model.MinLength, f.model.MaxLength)
		f.bias = f.rng.Uniform(-f.model.MaxBias, f.model.MaxBias)
		return f.bias, f.model.MaxBias / 8
	}
	return 0, 0
}

// ReadStatic collects n reads with the tag fixed at pos, as in the paper's
// phase-offset study (Fig. 3: 500 reads per antenna-tag pair).
func (r *Reader) ReadStatic(ant *Antenna, tag *Tag, pos geom.Vec3, n int) ([]Sample, error) {
	if ant == nil || tag == nil {
		return nil, ErrNilDevice
	}
	if n <= 0 {
		return nil, fmt.Errorf("sim: read count %d must be positive", n)
	}
	step := time.Duration(float64(time.Second) / r.rateHz)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		s := r.read(ant, tag, pos, r.channelAt(time.Duration(i)*step))
		s.Time = time.Duration(i) * step
		out = append(out, s)
	}
	return out, nil
}

// read produces a single sample for the tag at pos.
func (r *Reader) read(ant *Antenna, tag *Tag, pos geom.Vec3, channel int) Sample {
	center := ant.PhaseCenter()
	prop := r.env.Propagation
	extraOffset := 0.0
	if r.hop != nil {
		prop = r.hopProps[channel]
		extraOffset = r.hopOffsets[channel]
	}
	channelPhase := prop.ChannelPhase(center, pos)

	noiseStd := r.env.PhaseNoiseStd
	gain := 1.0
	if ant.Beam != nil {
		noiseStd *= ant.Beam.NoiseScale(center, pos)
		gain = ant.Beam.Gain(center, pos)
	}
	if ref := r.env.NoiseDistanceRef; ref > 0 {
		if d := center.Dist(pos); d > ref {
			noiseStd *= d / ref
		}
	}
	noise := 0.0
	if noiseStd > 0 {
		noise = r.rng.Normal(0, noiseStd)
	}

	phase := rf.WrapPhase(channelPhase + tag.PhaseOffset + ant.PhaseOffset +
		extraOffset + noise)
	mag := prop.ChannelMagnitude(center, pos) * gain
	return Sample{
		TagPos:  pos,
		Phase:   phase,
		RSSI:    rf.RSSI(mag, r.env.TxPowerDBm),
		Channel: channel,
	}
}

// Phases extracts the wrapped phases of a sample slice.
func Phases(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Phase
	}
	return out
}

// Positions extracts the ground-truth tag positions of a sample slice.
func Positions(samples []Sample) []geom.Vec3 {
	out := make([]geom.Vec3, len(samples))
	for i, s := range samples {
		out[i] = s.TagPos
	}
	return out
}

// FilterSegment returns only the samples carrying the given segment label.
func FilterSegment(samples []Sample, segment int) []Sample {
	out := make([]Sample, 0, len(samples))
	for _, s := range samples {
		if s.Segment == segment {
			out = append(out, s)
		}
	}
	return out
}
