package sim

import (
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/traject"
)

func TestFadeModelRate(t *testing.T) {
	f := &FadeModel{RatePerMeter: 0.5, RefDistance: 0.8}
	if got := f.rate(0.8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("rate at ref = %v", got)
	}
	if got := f.rate(1.6); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("rate at 2x ref = %v, want 4x base", got)
	}
	// Zero ref distance disables scaling.
	f.RefDistance = 0
	if got := f.rate(3); got != 0.5 {
		t.Errorf("unscaled rate = %v", got)
	}
}

// fadeDeviationFraction scans and returns the fraction of samples whose
// phase deviates from the noiseless model by more than threshold radians.
func fadeDeviationFraction(t *testing.T, env *Environment, depth float64, seed int64) float64 {
	t.Helper()
	r, err := NewReader(env, ReaderConfig{RateHz: 100, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ant := &Antenna{PhysicalCenter: geom.V3(0, depth, 0)}
	tag := &Tag{}
	trj, err := traject.NewLinear(geom.V3(-1, 0, 0), geom.V3(1, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := r.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, s := range samples {
		truth := rf.WrapPhase(rf.PhaseOfDistance(
			ant.PhaseCenter().Dist(s.TagPos), env.Wavelength()))
		if math.Abs(rf.WrapPhaseSigned(s.Phase-truth)) > 0.5 {
			bad++
		}
	}
	return float64(bad) / float64(len(samples))
}

func TestFadingCorruptsSamplesInBursts(t *testing.T) {
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	env.PhaseNoiseStd = 0
	env.Fading = &FadeModel{
		RatePerMeter: 1.0, RefDistance: 0.8,
		MinLength: 0.05, MaxLength: 0.15, MaxBias: 1.5,
	}
	frac := fadeDeviationFraction(t, env, 0.8, 3)
	if frac == 0 {
		t.Fatal("no fades occurred at rate 1/m over 2 m")
	}
	if frac > 0.6 {
		t.Fatalf("fades corrupted %v of samples — too aggressive", frac)
	}
}

func TestFadingGrowsWithDistance(t *testing.T) {
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	env.PhaseNoiseStd = 0
	env.Fading = &FadeModel{
		RatePerMeter: 0.5, RefDistance: 0.8,
		MinLength: 0.05, MaxLength: 0.15, MaxBias: 1.5,
	}
	// Average over several seeds to smooth the Poisson noise.
	var near, far float64
	const seeds = 10
	for s := int64(0); s < seeds; s++ {
		near += fadeDeviationFraction(t, env, 0.6, 100+s)
		far += fadeDeviationFraction(t, env, 1.8, 100+s)
	}
	if far <= near {
		t.Errorf("fade fraction did not grow with depth: near %v, far %v",
			near/seeds, far/seeds)
	}
}

func TestFadingNilIsNoop(t *testing.T) {
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	env.PhaseNoiseStd = 0
	if frac := fadeDeviationFraction(t, env, 0.8, 3); frac != 0 {
		t.Errorf("clean environment deviated: %v", frac)
	}
}

func TestFadingDoesNotBreakUnwrap(t *testing.T) {
	// Steps into and out of fades must stay below π between consecutive
	// samples, or unwrapping would slip by 2π and corrupt everything after.
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	env.PhaseNoiseStd = 0.05
	env.Fading = &FadeModel{
		RatePerMeter: 1.5, RefDistance: 0.8,
		MinLength: 0.05, MaxLength: 0.15, MaxBias: 1.5,
	}
	r, err := NewReader(env, ReaderConfig{RateHz: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ant := &Antenna{PhysicalCenter: geom.V3(0, 0.8, 0)}
	trj, err := traject.NewLinear(geom.V3(-1, 0, 0), geom.V3(1, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := r.Scan(ant, &Tag{}, trj)
	if err != nil {
		t.Fatal(err)
	}
	big := 0
	for i := 1; i < len(samples); i++ {
		d := math.Abs(rf.WrapPhaseSigned(samples[i].Phase - samples[i-1].Phase))
		if d > math.Pi*0.95 {
			big++
		}
	}
	// Allow a tiny number of near-π steps from coincident fade boundaries
	// plus noise, but nothing systematic.
	if float64(big) > 0.005*float64(len(samples)) {
		t.Errorf("%d of %d consecutive steps near π — unwrap hazard", big, len(samples))
	}
}
