package sim

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/dsp"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/traject"
)

func newTestEnv(t *testing.T) *Environment {
	t.Helper()
	env, err := NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func newTestReader(t *testing.T, env *Environment, cfg ReaderConfig) *Reader {
	t.Helper()
	r, err := NewReader(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAntennaPhaseCenter(t *testing.T) {
	a := &Antenna{
		PhysicalCenter:    geom.V3(1, 2, 3),
		PhaseCenterOffset: geom.V3(0.02, -0.01, 0.03),
	}
	if got := a.PhaseCenter(); got != geom.V3(1.02, 1.99, 3.03) {
		t.Errorf("PhaseCenter = %v", got)
	}
}

func TestNewReaderValidation(t *testing.T) {
	env := newTestEnv(t)
	if _, err := NewReader(nil, DefaultReaderConfig()); err == nil {
		t.Error("nil environment accepted")
	}
	if _, err := NewReader(env, ReaderConfig{RateHz: 0}); !errors.Is(err, ErrBadRate) {
		t.Errorf("zero rate err = %v", err)
	}
	if _, err := NewReader(env, ReaderConfig{RateHz: 100, DropoutProb: 1}); !errors.Is(err, ErrBadDropout) {
		t.Errorf("dropout=1 err = %v", err)
	}
	if _, err := NewReader(env, ReaderConfig{RateHz: 100, DropoutProb: -0.1}); !errors.Is(err, ErrBadDropout) {
		t.Errorf("negative dropout err = %v", err)
	}
}

func TestReadStaticNoiselessPhaseMatchesModel(t *testing.T) {
	env := newTestEnv(t)
	env.PhaseNoiseStd = 0
	r := newTestReader(t, env, DefaultReaderConfig())
	ant := &Antenna{PhysicalCenter: geom.V3(0, 1, 0), PhaseOffset: 0.7}
	tag := &Tag{PhaseOffset: 0.3}
	pos := geom.V3(0, 0, 0)
	samples, err := r.ReadStatic(ant, tag, pos, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("len = %d", len(samples))
	}
	d := ant.PhaseCenter().Dist(pos)
	want := rf.WrapPhase(rf.PhaseOfDistance(d, env.Wavelength()) + 0.7 + 0.3)
	for _, s := range samples {
		if math.Abs(s.Phase-want) > 1e-9 {
			t.Fatalf("phase = %v, want %v", s.Phase, want)
		}
		if s.TagPos != pos {
			t.Fatalf("TagPos = %v", s.TagPos)
		}
	}
}

func TestPhaseCenterDisplacementShiftsValley(t *testing.T) {
	// Reproduces the Fig. 2 effect in miniature: sweeping the tag past the
	// antenna, the minimum of the unwrapped phase appears at the projection
	// of the *phase* center, not the physical center.
	env := newTestEnv(t)
	env.PhaseNoiseStd = 0
	r := newTestReader(t, env, DefaultReaderConfig())
	ant := &Antenna{
		PhysicalCenter:    geom.V3(0, 0.65, 0),
		PhaseCenterOffset: geom.V3(0.025, 0, 0), // 2.5 cm along the sweep
	}
	tag := &Tag{}
	trj, err := traject.NewLinear(geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := r.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}
	un := dsp.Unwrap(Phases(samples))
	minI := 0
	for i, v := range un {
		if v < un[minI] {
			minI = i
		}
	}
	valleyX := samples[minI].TagPos.X
	if math.Abs(valleyX-0.025) > 0.01 {
		t.Errorf("phase valley at x=%v, want ~0.025 (phase center)", valleyX)
	}
}

func TestScanSampleCountMatchesRateAndDuration(t *testing.T) {
	env := newTestEnv(t)
	r := newTestReader(t, env, ReaderConfig{RateHz: 50, Seed: 1})
	trj, err := traject.NewLinear(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 0.1) // 10 s
	if err != nil {
		t.Fatal(err)
	}
	samples, err := r.Scan(&Antenna{PhysicalCenter: geom.V3(0, 1, 0)}, &Tag{}, trj)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples); got < 499 || got > 502 {
		t.Errorf("sample count = %d, want ~501", got)
	}
	// Times strictly increasing.
	for i := 1; i < len(samples); i++ {
		if samples[i].Time <= samples[i-1].Time {
			t.Fatal("times not increasing")
		}
	}
}

func TestScanDropout(t *testing.T) {
	env := newTestEnv(t)
	full := newTestReader(t, env, ReaderConfig{RateHz: 100, Seed: 1})
	lossy := newTestReader(t, env, ReaderConfig{RateHz: 100, DropoutProb: 0.5, Seed: 1})
	trj, err := traject.NewLinear(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ant, tag := &Antenna{PhysicalCenter: geom.V3(0, 1, 0)}, &Tag{}
	fs, err := full.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := lossy.Scan(ant, tag, trj)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(ls)) / float64(len(fs))
	if ratio < 0.35 || ratio > 0.65 {
		t.Errorf("dropout ratio = %v, want ~0.5", ratio)
	}
}

func TestScanSegmentLabels(t *testing.T) {
	env := newTestEnv(t)
	r := newTestReader(t, env, DefaultReaderConfig())
	scan, err := traject.NewThreeLineScan(traject.ThreeLineConfig{
		XMin: -0.3, XMax: 0.3, YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := r.Scan(&Antenna{PhysicalCenter: geom.V3(0, 0.8, 0)}, &Tag{}, scan)
	if err != nil {
		t.Fatal(err)
	}
	l1 := FilterSegment(samples, traject.LineL1)
	l2 := FilterSegment(samples, traject.LineL2)
	l3 := FilterSegment(samples, traject.LineL3)
	if len(l1) == 0 || len(l2) == 0 || len(l3) == 0 {
		t.Fatalf("segment counts: %d %d %d", len(l1), len(l2), len(l3))
	}
	for _, s := range l2 {
		if math.Abs(s.TagPos.Z-0.2) > 1e-9 {
			t.Fatalf("L2 sample off line: %v", s.TagPos)
		}
	}
}

func TestScanValidation(t *testing.T) {
	env := newTestEnv(t)
	r := newTestReader(t, env, DefaultReaderConfig())
	trj, err := traject.NewLinear(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Scan(nil, &Tag{}, trj); !errors.Is(err, ErrNilDevice) {
		t.Errorf("nil antenna err = %v", err)
	}
	if _, err := r.Scan(&Antenna{}, nil, trj); !errors.Is(err, ErrNilDevice) {
		t.Errorf("nil tag err = %v", err)
	}
	if _, err := r.Scan(&Antenna{}, &Tag{}, nil); err == nil {
		t.Error("nil trajectory accepted")
	}
	if _, err := r.ReadStatic(&Antenna{}, &Tag{}, geom.Vec3{}, 0); err == nil {
		t.Error("zero read count accepted")
	}
}

func TestNoiseStatistics(t *testing.T) {
	env := newTestEnv(t)
	env.PhaseNoiseStd = 0.1
	r := newTestReader(t, env, ReaderConfig{RateHz: 100, Seed: 42})
	ant := &Antenna{PhysicalCenter: geom.V3(0, 1, 0)}
	tag := &Tag{}
	samples, err := r.ReadStatic(ant, tag, geom.V3(0, 0, 0), 5000)
	if err != nil {
		t.Fatal(err)
	}
	// Phase scatter around the true value should have std ≈ 0.1 rad.
	d := ant.PhaseCenter().Dist(geom.V3(0, 0, 0))
	truth := rf.WrapPhase(rf.PhaseOfDistance(d, env.Wavelength()))
	var devs []float64
	for _, s := range samples {
		devs = append(devs, rf.WrapPhaseSigned(s.Phase-truth))
	}
	var m float64
	for _, v := range devs {
		m += v
	}
	m /= float64(len(devs))
	var varSum float64
	for _, v := range devs {
		varSum += (v - m) * (v - m)
	}
	std := math.Sqrt(varSum / float64(len(devs)))
	if math.Abs(std-0.1) > 0.01 {
		t.Errorf("noise std = %v, want ~0.1", std)
	}
	if math.Abs(m) > 0.01 {
		t.Errorf("noise mean = %v, want ~0", m)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	env := newTestEnv(t)
	mk := func() []Sample {
		r := newTestReader(t, env, ReaderConfig{RateHz: 100, Seed: 7})
		trj, err := traject.NewLinear(geom.V3(0, 0, 0), geom.V3(0.5, 0, 0), 0.1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := r.Scan(&Antenna{PhysicalCenter: geom.V3(0, 1, 0)}, &Tag{}, trj)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Phase != b[i].Phase {
			t.Fatal("same seed produced different phases")
		}
	}
}

func TestDistanceDependentNoise(t *testing.T) {
	env := newTestEnv(t)
	env.NoiseDistanceRef = 1.0
	env.PhaseNoiseStd = 0.05
	r := newTestReader(t, env, ReaderConfig{RateHz: 100, Seed: 3})
	ant := &Antenna{PhysicalCenter: geom.V3(0, 0, 0)}
	tag := &Tag{}
	spread := func(depth float64) float64 {
		samples, err := r.ReadStatic(ant, tag, geom.V3(0, depth, 0), 2000)
		if err != nil {
			t.Fatal(err)
		}
		truth := rf.WrapPhase(rf.PhaseOfDistance(depth, env.Wavelength()))
		var s2 float64
		for _, s := range samples {
			d := rf.WrapPhaseSigned(s.Phase - truth)
			s2 += d * d
		}
		return math.Sqrt(s2 / float64(len(samples)))
	}
	near, far := spread(0.5), spread(2.0)
	if far < 1.5*near {
		t.Errorf("noise did not grow with distance: near %v, far %v", near, far)
	}
}

func TestMultipathEnvironmentBiasesPhase(t *testing.T) {
	clean := newTestEnv(t)
	clean.PhaseNoiseStd = 0
	dirty := newTestEnv(t)
	dirty.PhaseNoiseStd = 0
	dirty.AddReflector(rf.Reflector{
		Plane: geom.Plane3{C: 1, D: -1}, Coeff: 0.4, // floor at z = −1
	})
	ant := &Antenna{PhysicalCenter: geom.V3(0, 1, 0)}
	tag := &Tag{}
	rc := newTestReader(t, clean, DefaultReaderConfig())
	rd := newTestReader(t, dirty, DefaultReaderConfig())
	sc, err := rc.ReadStatic(ant, tag, geom.V3(0, 0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := rd.ReadStatic(ant, tag, geom.V3(0, 0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc[0].Phase == sd[0].Phase {
		t.Error("reflector did not alter the reported phase")
	}
	if sd[0].RSSI == sc[0].RSSI {
		t.Error("reflector did not alter RSSI")
	}
}

func TestHelperExtractors(t *testing.T) {
	samples := []Sample{
		{Phase: 1, TagPos: geom.V3(1, 0, 0), Segment: 1},
		{Phase: 2, TagPos: geom.V3(2, 0, 0), Segment: 2},
	}
	if got := Phases(samples); got[0] != 1 || got[1] != 2 {
		t.Errorf("Phases = %v", got)
	}
	if got := Positions(samples); got[1] != geom.V3(2, 0, 0) {
		t.Errorf("Positions = %v", got)
	}
	if got := FilterSegment(samples, 2); len(got) != 1 || got[0].Phase != 2 {
		t.Errorf("FilterSegment = %v", got)
	}
}
