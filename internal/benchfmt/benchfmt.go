// Package benchfmt is the shared schema of the committed BENCH_<pr>.json
// performance snapshots. Three tools speak it: cmd/lionbench writes the
// micro-benchmark section, cmd/lionload merges the macro SLO section from a
// measured load run, and tools/benchguard reads both sections to fail the
// build on regressions. The schema is additive-only — old snapshots must
// keep parsing forever, because the committed files ARE the project's perf
// trajectory.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Schema is the current snapshot schema identifier. Readers accept any
// "lionbench/" prefix (additive evolution), writers emit this one.
const Schema = "lionbench/1"

// Bench is one micro-benchmark's measurements (testing.Benchmark units).
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Macro is one macro-level SLO measurement from a lionload run: a scenario
// driven against a real deployment, one scored metric, and the declared
// target it was scored against. Unlike micro-benchmarks these are
// end-to-end wall-clock numbers, so benchguard guards them against their
// declared Target (an absolute SLO), not against the previous snapshot.
type Macro struct {
	// Name is the stable identifier snapshots are compared on,
	// "<scenario>/<metric>" (e.g. "portal/ingest_p99_seconds").
	Name string `json:"name"`
	// Scenario is the load scenario that produced the measurement.
	Scenario string `json:"scenario"`
	// Metric names the scored quantity (ingest_p99_seconds, drop_rate, ...).
	Metric string `json:"metric"`
	// Value is the measured quantity in Unit.
	Value float64 `json:"value"`
	// Target is the declared SLO bound; Value must stay <= Target. A zero
	// target means the field is recorded for trending but not guarded.
	Target float64 `json:"target,omitempty"`
	// Unit is "seconds" for latency/staleness metrics, "ratio" for rates.
	Unit string `json:"unit"`
	// Count is the number of observations behind Value (0 for scalars).
	Count uint64 `json:"count,omitempty"`
}

// Pass reports whether the measurement meets its declared target (always
// true for untargeted trend-only fields).
func (m Macro) Pass() bool { return m.Target == 0 || m.Value <= m.Target }

// Snapshot is the top-level BENCH_<pr>.json document.
type Snapshot struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	MaxProcs   int     `json:"gomaxprocs"`
	Benchmarks []Bench `json:"benchmarks"`
	// Macro is the macro SLO section, absent from pure lionbench snapshots.
	Macro []Macro `json:"macro,omitempty"`
}

// Read parses a snapshot file and validates its schema line.
func Read(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(snap.Schema, "lionbench/") {
		return nil, fmt.Errorf("%s: unknown schema %q", path, snap.Schema)
	}
	return &snap, nil
}

// Write marshals the snapshot with the canonical indentation and trailing
// newline the committed files use.
func (s *Snapshot) Write(path string) error {
	if s.Schema == "" {
		s.Schema = Schema
	}
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// MergeMacro replaces the snapshot's macro entries for the given scenario
// with the new measurements (other scenarios' entries survive, so several
// lionload runs can accumulate into one snapshot), keeping entries sorted
// by name for deterministic diffs.
func (s *Snapshot) MergeMacro(scenario string, entries []Macro) {
	kept := s.Macro[:0]
	for _, m := range s.Macro {
		if m.Scenario != scenario {
			kept = append(kept, m)
		}
	}
	s.Macro = append(kept, entries...)
	for i := 1; i < len(s.Macro); i++ {
		for j := i; j > 0 && s.Macro[j-1].Name > s.Macro[j].Name; j-- {
			s.Macro[j-1], s.Macro[j] = s.Macro[j], s.Macro[j-1]
		}
	}
}
