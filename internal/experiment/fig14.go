package experiment

import (
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/hologram"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// Fig14aRow is one antenna position of the 3-D height/depth study.
type Fig14aRow struct {
	Label   string
	Antenna geom.Vec3
	XErr    float64
	YErr    float64
	ZErr    float64
	DistErr float64
}

// Fig14a3D locates the antenna in 3-D at six positions (depth 0.6/0.8/1.0 m,
// height 0/0.2 m) with the two-line scan (Δy = 0.2 m). The paper's shape:
// errors below ~1.5 cm per axis at depth ≤ 0.8 m, growing with depth,
// especially along y and z.
func Fig14a3D(cfg Config) ([]Fig14aRow, *Table, error) {
	tb, err := newTestbed(cfg.seed())
	if err != nil {
		return nil, nil, err
	}
	trials := cfg.trials(10, 3)
	tag := &sim.Tag{ID: "T1", PhaseOffset: tb.rng.Angle()}

	positions := []struct {
		label string
		pos   geom.Vec3
	}{
		{"P1 (y=0.6, z=0)", geom.V3(0, 0.6, 0)},
		{"P2 (y=0.6, z=0.2)", geom.V3(0, 0.6, 0.2)},
		{"P3 (y=0.8, z=0)", geom.V3(0, 0.8, 0)},
		{"P4 (y=0.8, z=0.2)", geom.V3(0, 0.8, 0.2)},
		{"P5 (y=1.0, z=0)", geom.V3(0, 1.0, 0)},
		{"P6 (y=1.0, z=0.2)", geom.V3(0, 1.0, 0.2)},
	}

	var rows []Fig14aRow
	for _, p := range positions {
		// A calibrated antenna: the estimate is judged against the true
		// phase center, so the antenna model needs no displacement here.
		beam, err := rf.NewBeam(geom.V3(0, -1, 0), rf.DefaultBeamwidthRad)
		if err != nil {
			return nil, nil, err
		}
		ant := &sim.Antenna{ID: "A", PhysicalCenter: p.pos, Beam: beam}
		var xe, ye, ze, de float64
		for trial := 0; trial < trials; trial++ {
			scan, err := traject.NewTwoLineScan(-0.6, 0.6, 0.2, 0.1)
			if err != nil {
				return nil, nil, err
			}
			samples, err := tb.reader.Scan(ant, tag, scan)
			if err != nil {
				return nil, nil, err
			}
			obs, err := core.Preprocess(sim.Positions(samples), sim.Phases(samples), smoothWindow)
			if err != nil {
				return nil, nil, err
			}
			in, err := splitTwoLine(obs, samples, tb.lambda)
			if err != nil {
				return nil, nil, err
			}
			// A 0.6 m scanning range keeps the whole scan inside the main
			// beam even at the nearest depth (0.6 m).
			sol, err := core.LocateTwoLine(in, true, core.StructuredOptions{
				ScanRange: 0.6,
				Intervals: []float64{0.2, 0.4, 0.55},
				Solve:     core.DefaultSolveOptions(),
			})
			if err != nil {
				return nil, nil, err
			}
			truth := ant.PhaseCenter()
			xe += absf(sol.Position.X - truth.X)
			ye += absf(sol.Position.Y - truth.Y)
			ze += absf(sol.Position.Z - truth.Z)
			de += sol.Position.Dist(truth)
		}
		n := float64(trials)
		rows = append(rows, Fig14aRow{
			Label:   p.label,
			Antenna: p.pos,
			XErr:    xe / n,
			YErr:    ye / n,
			ZErr:    ze / n,
			DistErr: de / n,
		})
	}
	tbl := &Table{
		Title:   "Fig. 14a — 3-D localization vs height and depth (two-line scan, Δy = 0.2 m)",
		Columns: []string{"position", "x err (cm)", "y err (cm)", "z err (cm)", "dist err (cm)"},
		Notes: []string{
			"paper: all-axis errors < 1.5 cm at depth <= 0.8 m; error grows with depth, mostly on y/z",
		},
	}
	for _, r := range rows {
		tbl.AddRow(r.Label, cm(r.XErr), cm(r.YErr), cm(r.ZErr), cm(r.DistErr))
	}
	return rows, tbl, nil
}

// Fig14bRow is one (depth, method) cell of the 2-D depth sweep.
type Fig14bRow struct {
	Depth   float64
	Method  string
	MeanErr float64
}

// Fig14b2DDepth sweeps the tag-antenna depth from 0.6 m to 1.6 m in the
// conveyor scenario. The environment carries distance-growing noise and
// bursty multipath fades whose rate rises as the line-of-sight weakens, so
// data quality degrades with depth. LION's adaptive window selection keeps
// it in the sub-centimetre regime deep into the sweep; DAH, which ingests
// every sample, degrades with depth (the paper's observation — see
// EXPERIMENTS.md for the crossover deviation).
func Fig14b2DDepth(cfg Config) ([]Fig14bRow, *Table, error) {
	tb, err := newTestbed(cfg.seed())
	if err != nil {
		return nil, nil, err
	}
	// Depth-growing noise plus bursty multipath fades: as the line-of-sight
	// weakens with depth, the channel drops into fades more often — the
	// mechanism the paper blames for DAH's degradation past 1.4 m.
	tb.env.NoiseDistanceRef = 0.8
	tb.env.Fading = &sim.FadeModel{
		RatePerMeter: 0.4,
		RefDistance:  0.8,
		MinLength:    0.05,
		MaxLength:    0.15,
		MaxBias:      1.5,
	}

	trials := cfg.trials(10, 3)
	gridStep := 0.002
	if cfg.Fast {
		gridStep = 0.01
	}
	tag := &sim.Tag{ID: "T1", PhaseOffset: tb.rng.Angle()}
	depths := []float64{0.6, 0.8, 1.0, 1.2, 1.4, 1.6}

	var rows []Fig14bRow
	for _, depth := range depths {
		beam, err := rf.NewBeam(geom.V3(0, -1, 0), rf.DefaultBeamwidthRad)
		if err != nil {
			return nil, nil, err
		}
		ant := &sim.Antenna{ID: "A", PhysicalCenter: geom.V3(0, depth, 0), Beam: beam}
		var lionSum, dahSum float64
		for trial := 0; trial < trials; trial++ {
			// The paper's sliding track is 2.5 m long; the adaptive scheme
			// then picks how much of it to trust.
			p0 := geom.V3(tb.rng.Uniform(-0.1, 0.1), 0, 0)
			trj, err := traject.NewLinear(
				p0.Add(geom.V3(-1.25, 0, 0)), p0.Add(geom.V3(1.25, 0, 0)), 0.1)
			if err != nil {
				return nil, nil, err
			}
			obs, _, err := tb.scanToObs(ant, tag, trj)
			if err != nil {
				return nil, nil, err
			}
			rel := relativeObs(obs, p0)
			trueT := ant.PhaseCenter().Sub(p0)

			// Adaptive selection (Sec. IV-C-1) over scanning windows: both
			// the window *width* and its *position* are swept, since a
			// multipath fade pollutes a localized stretch of the track —
			// some window is clean, and the residual rule finds it.
			// Multi-interval pairing keeps d_r (and therefore depth) well
			// conditioned in every window.
			intervals := []float64{0.2, 0.4, 0.8, 1.2}
			lo, hi := spanX(rel)
			mid := (lo + hi) / 2
			var cands []core.Candidate
			for _, w := range []struct{ center, width float64 }{
				{mid, 2.4},
				{mid, 1.6}, {mid - 0.4, 1.6}, {mid + 0.4, 1.6},
			} {
				sub := windowX(rel, w.center, w.width)
				sol, err := core.Locate2DLineIntervals(sub, tb.lambda,
					intervals, true,
					core.SolveOptions{Weighted: true, MaxIterations: 20})
				cands = append(cands, core.Candidate{
					ScanRange: w.width, Solution: sol, Err: err,
				})
			}
			res, err := core.SelectByAbsResidual(cands)
			if err != nil {
				return nil, nil, err
			}
			lionSum += res.Position.XY().Dist(trueT.XY())

			// DAH searches a box around the nominal deployment (track
			// center at the known depth), not the exact truth — the same
			// knowledge LION starts from.
			prior := geom.V3(0, depth, 0)
			hres, err := hologram.Locate(rel, hologram.Config{
				Lambda:   tb.lambda,
				GridMin:  prior.Add(geom.V3(-0.2, -0.2, 0)),
				GridMax:  prior.Add(geom.V3(0.2, 0.2, 0)),
				GridStep: gridStep,
				Weighted: true,
			})
			if err != nil {
				return nil, nil, err
			}
			dahSum += hres.Position.XY().Dist(trueT.XY())
		}
		n := float64(trials)
		rows = append(rows,
			Fig14bRow{depth, "LION", lionSum / n},
			Fig14bRow{depth, "DAH", dahSum / n},
		)
	}
	tbl := &Table{
		Title:   "Fig. 14b — 2-D localization vs depth (conveyor scenario, multipath fades)",
		Columns: []string{"depth (m)", "method", "mean err (cm)"},
		Notes: []string{
			"paper: LION stays ~0.45 cm through 1.6 m; DAH exceeds 2.5 cm past 1.4 m",
		},
	}
	for _, r := range rows {
		tbl.AddRow(f3(r.Depth), r.Method, cm(r.MeanErr))
	}
	return rows, tbl, nil
}
