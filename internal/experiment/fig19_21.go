package experiment

import (
	"fmt"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/hologram"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// Fig19Antenna is one antenna's calibration report (Fig. 19b).
type Fig19Antenna struct {
	ID               string
	TrueDisplacement geom.Vec3
	EstDisplacement  geom.Vec3
	TrueOffset       float64
	EstOffset        float64
}

// Fig20Row is one calibration level of the multi-antenna case study.
type Fig20Row struct {
	Calibration string // "none", "center", "center+offset"
	TagErr      float64
}

// Fig19_20MultiAntenna reproduces the case study of Sec. V-F-1: three
// antennas in a line at 0.3 m spacing, each with its own phase-center
// displacement and hardware offset. Every antenna is calibrated with the
// three-line scan; a static tag at (−0.1, 0.8) is then located with the
// differential hologram under three calibration levels. The paper's shape:
// 8.49 cm (none) → 5.76 cm (center) → 4.68 cm (center+offset).
func Fig19_20MultiAntenna(cfg Config) ([]Fig19Antenna, []Fig20Row, *Table, error) {
	tb, err := newTestbed(cfg.seed())
	if err != nil {
		return nil, nil, nil, err
	}
	tag := &sim.Tag{ID: "T", PhaseOffset: tb.rng.Angle()}

	// The paper's measured offsets: A2 differs because it is mounted on the
	// integrated machine.
	trueOffsets := []float64{3.98, 2.74, 4.07}
	xs := []float64{-0.3, 0, 0.3}
	antennas := make([]*sim.Antenna, 3)
	var reports []Fig19Antenna
	for i := range antennas {
		beam, err := rf.NewBeam(geom.V3(0, 1, 0), rf.DefaultBeamwidthRad)
		if err != nil {
			return nil, nil, nil, err
		}
		antennas[i] = &sim.Antenna{
			ID:                fmt.Sprintf("A%d", i+1),
			PhysicalCenter:    geom.V3(xs[i], 0, 0),
			PhaseCenterOffset: tb.randomDisplacement(),
			PhaseOffset:       trueOffsets[i],
			Beam:              beam,
		}
	}

	// Calibrate each antenna with a three-line scan in front of it
	// (L1 depth 0.7 m, y_o = z_o = 0.2 m, as in the paper).
	estOffsets := make([]float64, 3)
	estCenters := make([]geom.Vec3, 3)
	for i, ant := range antennas {
		calib, offset, err := tb.calibrateAntenna(ant, tag,
			geom.V3(ant.PhysicalCenter.X, 0.7, 0))
		if err != nil {
			return nil, nil, nil, err
		}
		estCenters[i] = calib.EstimatedCenter
		estOffsets[i] = offset
		reports = append(reports, Fig19Antenna{
			ID:               ant.ID,
			TrueDisplacement: ant.PhaseCenterOffset,
			EstDisplacement:  calib.Displacement(),
			TrueOffset:       ant.PhaseOffset,
			EstOffset:        offset,
		})
	}

	// Static tag reads per antenna (500 reads averaged, as in Fig. 3).
	tagPos := geom.V3(-0.1, 0.8, 0)
	reads := cfg.trials(500, 50)
	meanPhases := make([]float64, 3)
	for i, ant := range antennas {
		samples, err := tb.reader.ReadStatic(ant, tag, tagPos, reads)
		if err != nil {
			return nil, nil, nil, err
		}
		meanPhases[i] = circularMean(sim.Phases(samples))
	}

	gridStep := 0.002
	if cfg.Fast {
		gridStep = 0.005
	}
	// With only three antennas the pairwise hyperbolas re-intersect
	// periodically (phase ambiguity), so the search is bounded to a
	// neighbourhood of the deployment's region of interest — the same
	// search-area reduction the paper applies to control DAH's cost.
	hcfg := hologram.Config{
		Lambda:   tb.lambda,
		GridMin:  tagPos.Add(geom.V3(-0.15, -0.15, 0)),
		GridMax:  tagPos.Add(geom.V3(0.15, 0.15, 0)),
		GridStep: gridStep,
	}
	locate := func(centers []geom.Vec3, offsets []float64) (float64, error) {
		readings := make([]hologram.AntennaReading, 3)
		for i := range readings {
			readings[i] = hologram.AntennaReading{
				Center: centers[i],
				Phase:  meanPhases[i],
				Offset: offsets[i],
			}
		}
		res, err := hologram.LocateTagMultiAntenna(readings, hcfg)
		if err != nil {
			return 0, err
		}
		return res.Position.Dist(tagPos), nil
	}

	physCenters := make([]geom.Vec3, 3)
	zeroOffsets := make([]float64, 3)
	for i, ant := range antennas {
		physCenters[i] = ant.PhysicalCenter
	}
	errNone, err := locate(physCenters, zeroOffsets)
	if err != nil {
		return nil, nil, nil, err
	}
	errCenter, err := locate(estCenters, zeroOffsets)
	if err != nil {
		return nil, nil, nil, err
	}
	errFull, err := locate(estCenters, estOffsets)
	if err != nil {
		return nil, nil, nil, err
	}
	rows := []Fig20Row{
		{"none", errNone},
		{"center", errCenter},
		{"center+offset", errFull},
	}

	tbl := &Table{
		Title:   "Figs. 19-20 — multi-antenna tag localization vs calibration level",
		Columns: []string{"calibration", "tag error (cm)"},
		Notes: []string{
			"paper: 8.49 cm (none) -> 5.76 cm (center) -> 4.68 cm (center+offset), a 1.8x gain",
		},
	}
	for _, r := range rows {
		tbl.AddRow(r.Calibration, cm(r.TagErr))
	}
	for _, rep := range reports {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"%s: displacement true %v est %v; offset true %.2f est %.2f rad",
			rep.ID, rep.TrueDisplacement, rep.EstDisplacement,
			rep.TrueOffset, rep.EstOffset))
	}
	return reports, rows, tbl, nil
}

// Fig21Row is one turntable radius of the rotating-tag study.
type Fig21Row struct {
	Radius  float64
	XErr    float64
	YErr    float64
	DistErr float64
}

// Fig21Turntable locates a calibrated antenna with a tag rotating on a
// turntable 0.7 m away, for several rotation radii. The paper's shape: the
// error along x (perpendicular to the center→antenna line) is smaller than
// along y, and the error shrinks as the radius grows.
func Fig21Turntable(cfg Config) ([]Fig21Row, *Table, error) {
	tb, err := newTestbed(cfg.seed())
	if err != nil {
		return nil, nil, err
	}
	trials := cfg.trials(20, 4)
	tag := &sim.Tag{ID: "T", PhaseOffset: tb.rng.Angle()}
	beam, err := rf.NewBeam(geom.V3(0, -1, 0), rf.DefaultBeamwidthRad)
	if err != nil {
		return nil, nil, err
	}
	ant := &sim.Antenna{ID: "A", PhysicalCenter: geom.V3(0, 0.7, 0), Beam: beam}

	var rows []Fig21Row
	for _, radius := range []float64{0.10, 0.15, 0.20, 0.25} {
		var xe, ye, de float64
		for trial := 0; trial < trials; trial++ {
			trj, err := traject.NewCircularXY(geom.V3(0, 0, 0), radius, 0.1,
				tb.rng.Angle(), 1)
			if err != nil {
				return nil, nil, err
			}
			obs, _, err := tb.scanToObs(ant, tag, trj)
			if err != nil {
				return nil, nil, err
			}
			stride := len(obs) / 4
			sol, err := core.Locate2D(obs, tb.lambda,
				core.StridePairs(len(obs), stride), core.DefaultSolveOptions())
			if err != nil {
				return nil, nil, err
			}
			truth := ant.PhaseCenter()
			xe += absf(sol.Position.X - truth.X)
			ye += absf(sol.Position.Y - truth.Y)
			de += sol.Position.XY().Dist(truth.XY())
		}
		n := float64(trials)
		rows = append(rows, Fig21Row{
			Radius:  radius,
			XErr:    xe / n,
			YErr:    ye / n,
			DistErr: de / n,
		})
	}
	tbl := &Table{
		Title:   "Fig. 21 — antenna localization with a rotating tag (turntable at 0.7 m)",
		Columns: []string{"radius (m)", "x err (cm)", "y err (cm)", "dist err (cm)"},
		Notes: []string{
			"paper: x error < y error (errors lie along center->antenna); error shrinks with radius",
		},
	}
	for _, r := range rows {
		tbl.AddRow(f3(r.Radius), cm(r.XErr), cm(r.YErr), cm(r.DistErr))
	}
	return rows, tbl, nil
}
