package experiment

import (
	"math"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/hologram"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
)

// simLambda is the wavelength used by the pure-simulation studies, matching
// the paper's testbed carrier.
var simLambda = rf.DefaultBand().Wavelength()

// genCircleObs synthesises one noisy scan of a tag circling the origin,
// observed by an antenna at ant. The noise is the paper's N(0, 0.1).
func genCircleObs(ant geom.Vec3, radius float64, n int, noiseStd float64, rng *stats.RNG) []core.PosPhase {
	obs := make([]core.PosPhase, n)
	for i := range obs {
		a := 2 * math.Pi * float64(i) / float64(n)
		p := geom.V3(radius*math.Cos(a), radius*math.Sin(a), 0)
		theta := rf.PhaseOfDistance(ant.Dist(p), simLambda)
		if noiseStd > 0 {
			theta += rng.Normal(0, noiseStd)
		}
		obs[i] = core.PosPhase{Pos: p, Theta: theta}
	}
	return obs
}

// smoothObs applies the preprocessing moving average to an already-unwrapped
// profile, mirroring the smoothing stage every pipeline runs (Sec. IV-A-2).
func smoothObs(obs []core.PosPhase, window int) []core.PosPhase {
	positions := make([]geom.Vec3, len(obs))
	wrapped := make([]float64, len(obs))
	for i, o := range obs {
		positions[i] = o.Pos
		wrapped[i] = rf.WrapPhase(o.Theta)
	}
	out, err := core.Preprocess(positions, wrapped, window)
	if err != nil {
		return obs
	}
	return out
}

// Fig6Row is one (direction, method) cell of Fig. 6.
type Fig6Row struct {
	Direction string
	Method    string
	DistErr   float64 // mean distance error, metres
	XErr      float64 // mean |error| along x, metres
	YErr      float64 // mean |error| along y, metres
}

// Fig6Directions compares LION with the hologram baseline for a single
// antenna at three directions (0°, 45°, 90°) around a circular tag
// trajectory of radius 0.3 m, repeated over noisy trials. The paper's two
// observations to reproduce: the two methods are comparable, and the
// per-axis errors rotate with the antenna direction (errors distribute along
// the trajectory-center → antenna line).
func Fig6Directions(cfg Config) ([]Fig6Row, *Table, error) {
	rng := stats.NewRNG(cfg.seed())
	trials := cfg.trials(100, 8)
	gridStep := 0.002
	if cfg.Fast {
		gridStep = 0.01
	}
	directions := []struct {
		name string
		ant  geom.Vec3
	}{
		{"0 deg", geom.V3(1, 0, 0)},
		{"45 deg", geom.V3(0.7071, 0.7071, 0)},
		{"90 deg", geom.V3(0, 1, 0)},
	}

	var rows []Fig6Row
	for _, d := range directions {
		var lionDist, lionX, lionY float64
		var dahDist, dahX, dahY float64
		for trial := 0; trial < trials; trial++ {
			obs := smoothObs(genCircleObs(d.ant, 0.3, 120, 0.1, rng), smoothWindow)
			pairs := core.StridePairs(len(obs), 30)
			sol, err := core.Locate2D(obs, simLambda, pairs, core.DefaultSolveOptions())
			if err != nil {
				return nil, nil, err
			}
			lionDist += sol.Position.Dist(d.ant)
			lionX += absf(sol.Position.X - d.ant.X)
			lionY += absf(sol.Position.Y - d.ant.Y)

			hres, err := hologram.Locate(obs, hologram.Config{
				Lambda:   simLambda,
				GridMin:  d.ant.Add(geom.V3(-0.1, -0.1, 0)),
				GridMax:  d.ant.Add(geom.V3(0.1, 0.1, 0)),
				GridStep: gridStep,
				Weighted: true,
			})
			if err != nil {
				return nil, nil, err
			}
			dahDist += hres.Position.Dist(d.ant)
			dahX += absf(hres.Position.X - d.ant.X)
			dahY += absf(hres.Position.Y - d.ant.Y)
		}
		n := float64(trials)
		rows = append(rows,
			Fig6Row{d.name, "LION", lionDist / n, lionX / n, lionY / n},
			Fig6Row{d.name, "Hologram", dahDist / n, dahX / n, dahY / n},
		)
	}
	tbl := &Table{
		Title:   "Fig. 6 — single-antenna localization at different directions (circle r=0.3 m, noise N(0,0.1))",
		Columns: []string{"direction", "method", "dist err (cm)", "x err (cm)", "y err (cm)"},
		Notes: []string{
			"LION is comparable to the hologram baseline",
			"axis errors rotate with the antenna direction (error lies along center->antenna)",
		},
	}
	for _, r := range rows {
		tbl.AddRow(r.Direction, r.Method, cm(r.DistErr), cm(r.XErr), cm(r.YErr))
	}
	return rows, tbl, nil
}

// Fig9Row is one method's accuracy in the lower-dimension 2-D study.
type Fig9Row struct {
	Method  string
	MeanErr float64
	P90Err  float64
}

// Fig9LowerDim reproduces the 2-D lower-dimension simulation: the tag moves
// along the x-axis from −0.3 m to 0.3 m, the antenna sits at (0.2, 1) m, and
// the perpendicular coordinate is recovered through d_r. LION is compared
// with the hologram baseline over noisy trials.
func Fig9LowerDim(cfg Config) ([]Fig9Row, *Table, error) {
	rng := stats.NewRNG(cfg.seed())
	trials := cfg.trials(100, 8)
	gridStep := 0.002
	if cfg.Fast {
		gridStep = 0.01
	}
	ant := geom.V3(0.2, 1, 0)

	var lionErrs, dahErrs []float64
	for trial := 0; trial < trials; trial++ {
		n := 120
		obs := make([]core.PosPhase, n)
		for i := range obs {
			p := geom.V3(-0.3+0.6*float64(i)/float64(n-1), 0, 0)
			obs[i] = core.PosPhase{
				Pos:   p,
				Theta: rf.PhaseOfDistance(ant.Dist(p), simLambda) + rng.Normal(0, 0.1),
			}
		}
		obs = smoothObs(obs, smoothWindow)
		sol, err := core.Locate2DLine(obs, simLambda, 0.2, true, core.DefaultSolveOptions())
		if err != nil {
			return nil, nil, err
		}
		lionErrs = append(lionErrs, sol.Position.Dist(ant))

		hres, err := hologram.Locate(obs, hologram.Config{
			Lambda:   simLambda,
			GridMin:  ant.Add(geom.V3(-0.1, -0.1, 0)),
			GridMax:  ant.Add(geom.V3(0.1, 0.1, 0)),
			GridStep: gridStep,
			Weighted: true,
		})
		if err != nil {
			return nil, nil, err
		}
		dahErrs = append(dahErrs, hres.Position.Dist(ant))
	}
	lionP90, _ := stats.Percentile(lionErrs, 90)
	dahP90, _ := stats.Percentile(dahErrs, 90)
	rows := []Fig9Row{
		{"LION", stats.Mean(lionErrs), lionP90},
		{"Hologram", stats.Mean(dahErrs), dahP90},
	}
	tbl := &Table{
		Title:   "Fig. 9 — 2-D localization with a linear trajectory (lower-dimension case)",
		Columns: []string{"method", "mean err (cm)", "p90 err (cm)"},
		Notes: []string{
			"LION works with a linear trajectory and matches the hologram baseline",
		},
	}
	for _, r := range rows {
		tbl.AddRow(r.Method, cm(r.MeanErr), cm(r.P90Err))
	}
	return rows, tbl, nil
}
