package experiment

import (
	"context"
	"fmt"

	"github.com/rfid-lion/lion/internal/batch"
)

// solveTrials fans one solver job per trial across a bounded worker pool and
// returns the results in trial order. Trial inputs must already be
// materialised (the RNG-consuming generation phase is inherently serial);
// solve must be a pure function of its input so that results[i] is
// bit-identical regardless of worker count. The first failed trial's error
// (lowest index, hence deterministic) aborts the whole run.
func solveTrials[T any](workers, n int, solve func(trial int) (T, error)) ([]T, error) {
	eng := batch.New(batch.Options{Workers: workers})
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	results, errs := batch.Map(context.Background(), eng, indices,
		func(_ context.Context, i int) (T, error) { return solve(i) })
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: trial %d: %w", i, err)
		}
	}
	return results, nil
}
