package experiment

import (
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/dsp"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/hologram"
	"github.com/rfid-lion/lion/internal/mat"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/stats"
	"github.com/rfid-lion/lion/internal/traject"
)

// Fig2Result captures the phase-center empirical study (Fig. 2): the valley
// of the unwrapped phase profile appears at the projection of the true phase
// center, not at the physical center.
type Fig2Result struct {
	// Axis is the sweep direction ("horizontal" or "vertical").
	Axis string
	// ValleyOffset is where the measured phase valley sits relative to the
	// physical center, in metres.
	ValleyOffset float64
	// TrueOffset is the injected phase-center displacement along the sweep
	// axis, in metres.
	TrueOffset float64
}

// Fig2PhaseCenter sweeps a tag past an antenna horizontally and vertically
// at 65 cm depth (the paper's setup) and reports where the phase valley
// lands. The physical center is the origin of each sweep axis.
func Fig2PhaseCenter(cfg Config) ([]Fig2Result, *Table, error) {
	tb, err := newTestbed(cfg.seed())
	if err != nil {
		return nil, nil, err
	}
	// The injected displacement mirrors the 2–3 cm the paper measures.
	ant := &sim.Antenna{
		ID:                "A1",
		PhysicalCenter:    geom.V3(0, 0.65, 0),
		PhaseCenterOffset: geom.V3(0.025, 0, -0.02),
	}
	tag := &sim.Tag{ID: "T1"}

	sweep := func(axis string, from, to geom.Vec3, trueOffset float64) (Fig2Result, error) {
		trj, err := traject.NewLinear(from, to, 0.1)
		if err != nil {
			return Fig2Result{}, err
		}
		samples, err := tb.reader.Scan(ant, tag, trj)
		if err != nil {
			return Fig2Result{}, err
		}
		un := dsp.Unwrap(sim.Phases(samples))
		sm, err := dsp.MovingAverage(un, smoothWindow)
		if err != nil {
			return Fig2Result{}, err
		}
		coord := func(i int) float64 {
			if axis == "vertical" {
				return samples[i].TagPos.Z
			}
			return samples[i].TagPos.X
		}
		minI := 0
		for i, v := range sm {
			if v < sm[minI] {
				minI = i
			}
		}
		// The profile is locally quadratic and shallow around the minimum,
		// so a parabola fit over a ±20 cm window locates the valley far more
		// robustly than the raw argmin.
		valley, err := parabolaVertex(sm, coord, minI, 0.2)
		if err != nil {
			return Fig2Result{}, err
		}
		return Fig2Result{Axis: axis, ValleyOffset: valley, TrueOffset: trueOffset}, nil
	}

	horizontal, err := sweep("horizontal",
		geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), ant.PhaseCenterOffset.X)
	if err != nil {
		return nil, nil, err
	}
	vertical, err := sweep("vertical",
		geom.V3(0, 0, -0.5), geom.V3(0, 0, 0.5), ant.PhaseCenterOffset.Z)
	if err != nil {
		return nil, nil, err
	}
	results := []Fig2Result{horizontal, vertical}

	tbl := &Table{
		Title:   "Fig. 2 — phase valley vs physical center (65 cm depth)",
		Columns: []string{"sweep", "valley offset (cm)", "true phase-center offset (cm)"},
		Notes: []string{
			"paper: measured valleys appear 2-3 cm away from the physical center",
		},
	}
	for _, r := range results {
		tbl.AddRow(r.Axis, cm(r.ValleyOffset), cm(r.TrueOffset))
	}
	return results, tbl, nil
}

// parabolaVertex fits θ = a·x² + b·x + c over the samples whose coordinate
// lies within window of the coarse minimum, and returns the vertex −b/2a.
func parabolaVertex(theta []float64, coord func(int) float64, minI int, window float64) (float64, error) {
	center := coord(minI)
	a := mat.NewDense(len(theta), 3)
	var rows [][3]float64
	var rhs []float64
	for i, v := range theta {
		x := coord(i)
		if absf(x-center) > window {
			continue
		}
		rows = append(rows, [3]float64{x * x, x, 1})
		rhs = append(rhs, v)
	}
	if len(rows) < 3 {
		return center, nil
	}
	a = mat.NewDense(len(rows), 3)
	for r, row := range rows {
		a.Set(r, 0, row[0])
		a.Set(r, 1, row[1])
		a.Set(r, 2, row[2])
	}
	coef, err := mat.LeastSquares(a, rhs)
	if err != nil {
		return 0, err
	}
	if coef[0] <= 0 {
		return center, nil // not convex: fall back to the argmin
	}
	return -coef[1] / (2 * coef[0]), nil
}

// Fig3Result is one antenna-tag pair's static phase statistics (Fig. 3).
type Fig3Result struct {
	Antenna   string
	Tag       string
	MeanPhase float64 // circular mean of the reported phase, radians
	StdPhase  float64 // dispersion around the mean, radians
}

// Fig3PhaseOffsets reproduces the hardware-interference study: four antennas
// and four tags, 500 reads per pair with the tag fixed 1 m in front of the
// antenna. Different pairs land on visibly different mean phases while each
// pair stays tight — the per-device offsets of Eq. 1.
func Fig3PhaseOffsets(cfg Config) ([]Fig3Result, *Table, error) {
	tb, err := newTestbed(cfg.seed())
	if err != nil {
		return nil, nil, err
	}
	reads := cfg.trials(500, 50)

	const n = 4
	antennas := make([]*sim.Antenna, n)
	tags := make([]*sim.Tag, n)
	for i := 0; i < n; i++ {
		antennas[i] = &sim.Antenna{
			ID:             string(rune('A' + i)),
			PhysicalCenter: geom.V3(0, 0, 0),
			PhaseOffset:    tb.rng.Angle(),
		}
		tags[i] = &sim.Tag{
			ID:          string(rune('W' + i)),
			PhaseOffset: tb.rng.Angle(),
		}
	}
	tagPos := geom.V3(0, 1, 0)

	var results []Fig3Result
	for _, ant := range antennas {
		for _, tag := range tags {
			samples, err := tb.reader.ReadStatic(ant, tag, tagPos, reads)
			if err != nil {
				return nil, nil, err
			}
			mean := circularMean(sim.Phases(samples))
			var devs []float64
			for _, s := range samples {
				devs = append(devs, rf.WrapPhaseSigned(s.Phase-mean))
			}
			results = append(results, Fig3Result{
				Antenna:   ant.ID,
				Tag:       tag.ID,
				MeanPhase: mean,
				StdPhase:  stats.StdDev(devs),
			})
		}
	}
	tbl := &Table{
		Title:   "Fig. 3 — phase offsets across antenna-tag pairs (static, 1 m)",
		Columns: []string{"antenna", "tag", "mean phase (rad)", "std (rad)"},
		Notes: []string{
			"pairs differ by device-dependent offsets while each pair stays tight",
		},
	}
	for _, r := range results {
		tbl.AddRow(r.Antenna, r.Tag, f3(r.MeanPhase), f3(r.StdPhase))
	}
	return results, tbl, nil
}

func circularMean(phases []float64) float64 {
	var s, c float64
	for _, p := range phases {
		sp, cp := sincos(p)
		s += sp
		c += cp
	}
	return rf.WrapPhase(atan2(s, c))
}

// Fig4Result summarises the hologram illustration (Fig. 4).
type Fig4Result struct {
	Weighted bool
	// RidgeDistance is the distance from the true antenna position to the
	// nearest high-likelihood cell: with only two measurements the
	// candidates trace a hyperbola, and that hyperbola must pass through
	// the antenna even though no single peak is identifiable.
	RidgeDistance float64
	// HighLikelihoodCells counts grid cells scoring above 95% of the peak —
	// the hyperbola-shaped ridge that weighting is supposed to thin out.
	HighLikelihoodCells int
	// Elapsed is the wall-clock hologram build time.
	Elapsed time.Duration
}

// Fig4Hologram rebuilds the example hologram: two tag positions at
// (±0.3, 0), antenna at (0.5, 0.5), millimetre grid. With only two
// measurements the high-likelihood cells trace a hyperbola; the augmented
// weights concentrate the mass. It also demonstrates the cost the paper
// quotes (~0.8 s for a simple hologram).
func Fig4Hologram(cfg Config) ([]Fig4Result, *Table, error) {
	ant := geom.V3(0.5, 0.5, 0)
	lambda := rf.DefaultBand().Wavelength()
	rng := stats.NewRNG(cfg.seed())
	tagPositions := []geom.Vec3{geom.V3(-0.3, 0, 0), geom.V3(0.3, 0, 0)}
	obs := make([]core.PosPhase, len(tagPositions))
	for i, p := range tagPositions {
		obs[i] = core.PosPhase{
			Pos:   p,
			Theta: rf.WrapPhase(rf.PhaseOfDistance(ant.Dist(p), lambda) + rng.Normal(0, 0.1)),
		}
	}
	step := 0.001
	if cfg.Fast {
		step = 0.01
	}
	hcfg := hologram.Config{
		Lambda:  lambda,
		GridMin: geom.V3(0, 0, 0), GridMax: geom.V3(1, 1, 0),
		GridStep: step,
	}

	run := func(weighted bool) (Fig4Result, error) {
		hc := hcfg
		hc.Weighted = weighted
		start := time.Now()
		res, err := hologram.Locate(obs, hc)
		if err != nil {
			return Fig4Result{}, err
		}
		elapsed := time.Since(start)
		// Trace the high-likelihood ridge with a second scoring pass.
		count, ridgeDist := ridgeStats(obs, hc, res.Likelihood*0.95, ant)
		return Fig4Result{
			Weighted:            weighted,
			RidgeDistance:       ridgeDist,
			HighLikelihoodCells: count,
			Elapsed:             elapsed,
		}, nil
	}
	plain, err := run(false)
	if err != nil {
		return nil, nil, err
	}
	weighted, err := run(true)
	if err != nil {
		return nil, nil, err
	}
	results := []Fig4Result{plain, weighted}
	tbl := &Table{
		Title:   "Fig. 4 — differential hologram from two tag positions",
		Columns: []string{"weights", "ridge dist to antenna (cm)", "cells >95% of peak", "build time (s)"},
		Notes: []string{
			"two measurements leave a hyperbola-shaped ridge of candidates passing through the antenna",
			"paper: building this simple hologram takes ~0.8 s at 1 mm",
		},
	}
	for _, r := range results {
		label := "off"
		if r.Weighted {
			label = "on"
		}
		tbl.AddRow(label, cm(r.RidgeDistance), itoa(r.HighLikelihoodCells), secs(r.Elapsed.Seconds()))
	}
	return results, tbl, nil
}

// ridgeStats scores the grid once more, counting cells above the threshold
// and finding the ridge's closest approach to the true antenna position.
func ridgeStats(obs []core.PosPhase, hc hologram.Config, threshold float64, ant geom.Vec3) (int, float64) {
	ref := len(obs) / 2
	k := 4 * 3.141592653589793 / hc.Lambda
	refPos, refTheta := obs[ref].Pos, obs[ref].Theta
	count := 0
	closest := hc.GridMax.Dist(hc.GridMin)
	nx := int((hc.GridMax.X-hc.GridMin.X)/hc.GridStep) + 1
	ny := int((hc.GridMax.Y-hc.GridMin.Y)/hc.GridStep) + 1
	for iy := 0; iy < ny; iy++ {
		y := hc.GridMin.Y + float64(iy)*hc.GridStep
		for ix := 0; ix < nx; ix++ {
			p := geom.V3(hc.GridMin.X+float64(ix)*hc.GridStep, y, hc.GridMin.Z)
			dRef := p.Dist(refPos)
			var re, im float64
			for _, o := range obs {
				predicted := k * (p.Dist(o.Pos) - dRef)
				s, c := sincos((o.Theta - refTheta) - predicted)
				re += c
				im += s
			}
			if hypot(re, im)/float64(len(obs)) >= threshold {
				count++
				if d := p.Dist(ant); d < closest {
					closest = d
				}
			}
		}
	}
	return count, closest
}
