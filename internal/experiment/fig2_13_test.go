package experiment

import (
	"math"
	"os"
	"testing"
)

var fastCfg = Config{Seed: 7, Fast: true}

func TestFig2PhaseCenter(t *testing.T) {
	results, tbl, err := Fig2PhaseCenter(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		// The valley must land near the true offset (2–3 cm from the
		// physical center), definitely not at the origin.
		if math.Abs(r.ValleyOffset-r.TrueOffset) > 0.015 {
			t.Errorf("%s: valley %v vs true %v", r.Axis, r.ValleyOffset, r.TrueOffset)
		}
	}
	if err := tbl.Render(os.Stderr); err != nil {
		t.Fatal(err)
	}
}

func TestFig3PhaseOffsets(t *testing.T) {
	results, _, err := Fig3PhaseOffsets(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 16 {
		t.Fatalf("results = %d, want 16 pairs", len(results))
	}
	// Each pair is tight...
	for _, r := range results {
		if r.StdPhase > 0.3 {
			t.Errorf("pair %s/%s std = %v", r.Antenna, r.Tag, r.StdPhase)
		}
	}
	// ...but pairs differ: the spread of means must dwarf the within-pair std.
	var means []float64
	for _, r := range results {
		means = append(means, r.MeanPhase)
	}
	var spread float64
	for _, m := range means {
		for _, m2 := range means {
			if d := math.Abs(m - m2); d > spread {
				spread = d
			}
		}
	}
	if spread < 0.5 {
		t.Errorf("mean-phase spread = %v, want device-dependent offsets", spread)
	}
}

func TestFig4Hologram(t *testing.T) {
	results, _, err := Fig4Hologram(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	plain, weighted := results[0], results[1]
	if plain.Weighted || !weighted.Weighted {
		t.Fatal("result order wrong")
	}
	// Two measurements leave a hyperbola-shaped ridge: many cells near the
	// peak.
	if plain.HighLikelihoodCells < 10 {
		t.Errorf("ridge cells = %d, expected a hyperbola ridge", plain.HighLikelihoodCells)
	}
	// The ridge must pass close to the true antenna position.
	if plain.RidgeDistance > 0.05 {
		t.Errorf("ridge misses the antenna by %v m", plain.RidgeDistance)
	}
	// Weighting must not expand the ridge.
	if weighted.HighLikelihoodCells > plain.HighLikelihoodCells {
		t.Errorf("weights grew the ridge: %d > %d",
			weighted.HighLikelihoodCells, plain.HighLikelihoodCells)
	}
}

func TestFig6Directions(t *testing.T) {
	rows, _, err := Fig6Directions(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DistErr > 0.08 {
			t.Errorf("%s/%s dist err = %v m", r.Direction, r.Method, r.DistErr)
		}
	}
	// Axis-error rotation: at 0° (antenna on +x) the error concentrates on
	// x; at 90° on y.
	var lion0, lion90 Fig6Row
	for _, r := range rows {
		if r.Method != "LION" {
			continue
		}
		switch r.Direction {
		case "0 deg":
			lion0 = r
		case "90 deg":
			lion90 = r
		}
	}
	if lion0.XErr < lion0.YErr {
		t.Errorf("0 deg: x err %v should dominate y err %v", lion0.XErr, lion0.YErr)
	}
	if lion90.YErr < lion90.XErr {
		t.Errorf("90 deg: y err %v should dominate x err %v", lion90.YErr, lion90.XErr)
	}
}

func TestFig9LowerDim(t *testing.T) {
	rows, _, err := Fig9LowerDim(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanErr > 0.06 {
			t.Errorf("%s mean err = %v m", r.Method, r.MeanErr)
		}
	}
}

func TestFig13Overall(t *testing.T) {
	rows, tbl, err := Fig13Overall(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(c, m string) Fig13Row {
		for _, r := range rows {
			if r.Case == c && r.Method == m {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", c, m)
		return Fig13Row{}
	}
	// Calibration must improve accuracy substantially in both dimensions.
	if plus, minus := get("2D+", "LION"), get("2D-", "LION"); minus.MeanErr < 1.5*plus.MeanErr {
		t.Errorf("2D calibration gain too small: %v vs %v", minus.MeanErr, plus.MeanErr)
	}
	if plus, minus := get("3D+", "LION"), get("3D-", "LION"); minus.MeanErr <= plus.MeanErr {
		t.Errorf("3D calibration did not help: %v vs %v", minus.MeanErr, plus.MeanErr)
	}
	// LION must be far cheaper than DAH.
	if lion, dah := get("2D+", "LION"), get("2D+", "DAH"); lion.MeanTime >= dah.MeanTime {
		t.Errorf("LION 2D time %v not below DAH %v", lion.MeanTime, dah.MeanTime)
	}
	if lion, dah := get("3D+", "LION"), get("3D+", "DAH"); lion.MeanTime >= dah.MeanTime {
		t.Errorf("LION 3D time %v not below DAH %v", lion.MeanTime, dah.MeanTime)
	}
	if err := tbl.Render(os.Stderr); err != nil {
		t.Fatal(err)
	}
}
