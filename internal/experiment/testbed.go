package experiment

import (
	"fmt"
	"math"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/dsp"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/stats"
	"github.com/rfid-lion/lion/internal/traject"
)

// smoothWindow is the moving-average window applied to every phase profile,
// matching the paper's preprocessing stage.
const smoothWindow = 9

// testbed bundles the simulated deployment shared by the experiments.
type testbed struct {
	env    *sim.Environment
	reader *sim.Reader
	rng    *stats.RNG
	lambda float64
}

// newTestbed builds a free-space testbed with the paper's defaults and a
// deterministic seed.
func newTestbed(seed int64) (*testbed, error) {
	env, err := sim.NewEnvironment()
	if err != nil {
		return nil, err
	}
	reader, err := sim.NewReader(env, sim.ReaderConfig{RateHz: 100, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &testbed{
		env:    env,
		reader: reader,
		rng:    stats.NewRNG(seed + 1000),
		lambda: env.Wavelength(),
	}, nil
}

// defaultAntenna builds an antenna at the physical center with a realistic
// phase-center displacement (2–3 cm, Fig. 2) and hardware offset, both drawn
// deterministically from the testbed RNG.
func (tb *testbed) defaultAntenna(id string, physical geom.Vec3, boresight geom.Vec3) (*sim.Antenna, error) {
	beam, err := rf.NewBeam(boresight, rf.DefaultBeamwidthRad)
	if err != nil {
		return nil, err
	}
	return &sim.Antenna{
		ID:                id,
		PhysicalCenter:    physical,
		PhaseCenterOffset: tb.randomDisplacement(),
		PhaseOffset:       tb.rng.Uniform(0, 2*math.Pi),
		Beam:              beam,
	}, nil
}

// randomDisplacement draws a phase-center displacement with a guaranteed
// per-axis magnitude of 1.5–3 cm and a random sign, matching the 2–3 cm
// valley offsets the paper measures on real hardware (Fig. 2).
func (tb *testbed) randomDisplacement() geom.Vec3 {
	axis := func() float64 {
		m := tb.rng.Uniform(0.015, 0.03)
		if tb.rng.Float64() < 0.5 {
			return -m
		}
		return m
	}
	return geom.V3(axis(), axis(), axis())
}

// scanToObs runs a scan and preprocesses the samples into a continuous
// (position, unwrapped phase) profile.
func (tb *testbed) scanToObs(ant *sim.Antenna, tag *sim.Tag, trj traject.Trajectory) ([]core.PosPhase, []sim.Sample, error) {
	samples, err := tb.reader.Scan(ant, tag, trj)
	if err != nil {
		return nil, nil, err
	}
	obs, err := core.Preprocess(sim.Positions(samples), sim.Phases(samples), smoothWindow)
	if err != nil {
		return nil, nil, err
	}
	return obs, samples, nil
}

// splitThreeLine converts a labelled three-line scan into the structured
// solver input. The unwrapped profile stays continuous because the scan is
// one uninterrupted movement.
func splitThreeLine(obs []core.PosPhase, samples []sim.Sample, lambda float64) (core.ThreeLineInput, error) {
	if len(obs) != len(samples) {
		return core.ThreeLineInput{}, fmt.Errorf("experiment: %d obs vs %d samples", len(obs), len(samples))
	}
	var in core.ThreeLineInput
	in.Lambda = lambda
	for i, s := range samples {
		switch s.Segment {
		case traject.LineL1:
			in.L1 = append(in.L1, obs[i])
		case traject.LineL2:
			in.L2 = append(in.L2, obs[i])
		case traject.LineL3:
			in.L3 = append(in.L3, obs[i])
		}
	}
	return in, nil
}

// splitTwoLine converts a labelled two-line scan into the structured solver
// input.
func splitTwoLine(obs []core.PosPhase, samples []sim.Sample, lambda float64) (core.TwoLineInput, error) {
	if len(obs) != len(samples) {
		return core.TwoLineInput{}, fmt.Errorf("experiment: %d obs vs %d samples", len(obs), len(samples))
	}
	var in core.TwoLineInput
	in.Lambda = lambda
	for i, s := range samples {
		switch s.Segment {
		case traject.LineL1:
			in.L1 = append(in.L1, obs[i])
		case traject.LineL2:
			in.L2 = append(in.L2, obs[i])
		}
	}
	return in, nil
}

// calibrateAntenna runs the full calibration pipeline of Sec. IV for one
// antenna: a three-line scan around scanCenter estimates the phase center,
// then the same data estimates the hardware offset.
func (tb *testbed) calibrateAntenna(ant *sim.Antenna, tag *sim.Tag, scanCenter geom.Vec3) (core.CenterCalibration, float64, error) {
	// A slow calibration scan doubles the sample density — calibration is a
	// one-off, so the extra scan time is well spent.
	scan, err := traject.NewThreeLineScan(traject.ThreeLineConfig{
		XMin: scanCenter.X - 0.6, XMax: scanCenter.X + 0.6,
		YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.05,
	})
	if err != nil {
		return core.CenterCalibration{}, 0, err
	}
	// The scan trajectory is defined around the origin of the tag track;
	// shift it to the requested center.
	offset := geom.V3(0, scanCenter.Y, scanCenter.Z)
	samples, err := tb.reader.Scan(ant, tag, &shiftedTrajectory{inner: scan, offset: offset})
	if err != nil {
		return core.CenterCalibration{}, 0, err
	}
	obs, err := core.Preprocess(sim.Positions(samples), sim.Phases(samples), smoothWindow)
	if err != nil {
		return core.CenterCalibration{}, 0, err
	}
	in, err := splitThreeLine(obs, samples, tb.lambda)
	if err != nil {
		return core.CenterCalibration{}, 0, err
	}
	// Adaptive parameter selection (Sec. IV-C-1): sweep scanning range and
	// interval, keep the estimates whose weighted mean residual is closest
	// to zero, and average them.
	res, err := core.AdaptiveLocateThreeLine(in,
		[]float64{0.6, 0.8, 1.0},
		[]float64{0.15, 0.2, 0.25},
		core.StructuredOptions{Solve: core.DefaultSolveOptions()})
	if err != nil {
		return core.CenterCalibration{}, 0, err
	}
	calib := core.CenterCalibration{
		AntennaID:       ant.ID,
		PhysicalCenter:  ant.PhysicalCenter,
		EstimatedCenter: res.Position,
	}
	// Offset calibration against the estimated center, on the raw wrapped
	// phases of the whole scan.
	positions := sim.Positions(samples)
	wrapped := dsp.Wrap(sim.Phases(samples))
	offsetEst, err := core.PhaseOffset(positions, wrapped, calib.EstimatedCenter, tb.lambda)
	if err != nil {
		return core.CenterCalibration{}, 0, err
	}
	return calib, offsetEst, nil
}

// shiftedTrajectory translates an inner trajectory by a constant offset,
// preserving segment labels.
type shiftedTrajectory struct {
	inner  traject.Segmented
	offset geom.Vec3
}

var _ traject.Segmented = (*shiftedTrajectory)(nil)

func (s *shiftedTrajectory) Position(t time.Duration) geom.Vec3 {
	return s.inner.Position(t).Add(s.offset)
}

func (s *shiftedTrajectory) Duration() time.Duration { return s.inner.Duration() }

func (s *shiftedTrajectory) SegmentAt(t time.Duration) int { return s.inner.SegmentAt(t) }
