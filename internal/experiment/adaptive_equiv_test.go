package experiment

import (
	"reflect"
	"testing"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// adaptiveScenario builds one seeded three-line and two-line scan pair on
// the simulated testbed, the same way the calibration pipeline does.
func adaptiveScenario(t *testing.T, seed int64) (core.ThreeLineInput, core.TwoLineInput) {
	t.Helper()
	tb, err := newTestbed(seed)
	if err != nil {
		t.Fatal(err)
	}
	ant, err := tb.defaultAntenna("A", geom.V3(0, 0.8, 0.1), geom.V3(0, -1, 0))
	if err != nil {
		t.Fatal(err)
	}
	tag := &sim.Tag{ID: "T", PhaseOffset: tb.rng.Angle()}

	scan3, err := traject.NewThreeLineScan(traject.ThreeLineConfig{
		XMin: -0.6, XMax: 0.6, YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs3, samples3, err := tb.scanToObs(ant, tag, scan3)
	if err != nil {
		t.Fatal(err)
	}
	in3, err := splitThreeLine(obs3, samples3, tb.lambda)
	if err != nil {
		t.Fatal(err)
	}

	scan2, err := traject.NewTwoLineScan(-0.5, 0.5, 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	obs2, samples2, err := tb.scanToObs(ant, tag, scan2)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := splitTwoLine(obs2, samples2, tb.lambda)
	if err != nil {
		t.Fatal(err)
	}
	return in3, in2
}

// TestAdaptiveParallelEquivalentToSerial proves the parallel adaptive sweep
// returns a bit-identical AdaptiveResult — chosen candidates (range,
// interval), fused position, and the full sweep — to the serial path, on
// seeded testbed scenarios and across several pool sizes.
func TestAdaptiveParallelEquivalentToSerial(t *testing.T) {
	ranges := []float64{0.6, 0.8, 1.0}
	intervals := []float64{0.15, 0.2, 0.25}
	base := core.StructuredOptions{Solve: core.DefaultSolveOptions()}

	for _, seed := range []int64{1, 7, 42} {
		in3, in2 := adaptiveScenario(t, seed)

		serial3, err := core.AdaptiveLocateThreeLineWorkers(in3, ranges, intervals, base, 1)
		if err != nil {
			t.Fatalf("seed %d: serial three-line: %v", seed, err)
		}
		serial2, err := core.AdaptiveLocateTwoLineWorkers(in2, true, ranges, intervals, base, 1)
		if err != nil {
			t.Fatalf("seed %d: serial two-line: %v", seed, err)
		}

		for _, workers := range []int{0, 2, 4, 8} {
			par3, err := core.AdaptiveLocateThreeLineWorkers(in3, ranges, intervals, base, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: three-line: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(par3, serial3) {
				t.Errorf("seed %d workers %d: three-line AdaptiveResult differs from serial", seed, workers)
			}
			par2, err := core.AdaptiveLocateTwoLineWorkers(in2, true, ranges, intervals, base, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: two-line: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(par2, serial2) {
				t.Errorf("seed %d workers %d: two-line AdaptiveResult differs from serial", seed, workers)
			}
		}

		// The bit-identity must cover the selected parameters, not just the
		// fused position: spot-check the chosen (range, interval) pairs.
		par3, err := core.AdaptiveLocateThreeLine(in3, ranges, intervals, base)
		if err != nil {
			t.Fatal(err)
		}
		if len(par3.Selected) != len(serial3.Selected) {
			t.Fatalf("seed %d: %d selected vs %d serial", seed, len(par3.Selected), len(serial3.Selected))
		}
		for i := range par3.Selected {
			if par3.Selected[i].ScanRange != serial3.Selected[i].ScanRange ||
				par3.Selected[i].Interval != serial3.Selected[i].Interval {
				t.Errorf("seed %d: selected candidate %d params differ", seed, i)
			}
		}
	}
}

// TestFig13WorkersEquivalence runs the full Fig. 13 harness serially and on
// a 4-worker pool: every error cell must be bit-identical (solver times are
// wall-clock and naturally vary).
func TestFig13WorkersEquivalence(t *testing.T) {
	serial, _, err := Fig13Overall(Config{Seed: 5, Fast: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := Fig13Overall(Config{Seed: 5, Fast: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("%d serial rows vs %d parallel", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Case != parallel[i].Case || serial[i].Method != parallel[i].Method {
			t.Fatalf("row %d identity differs", i)
		}
		if serial[i].MeanErr != parallel[i].MeanErr {
			t.Errorf("row %d (%s/%s): serial err %v != parallel err %v",
				i, serial[i].Case, serial[i].Method, serial[i].MeanErr, parallel[i].MeanErr)
		}
		if serial[i].MeanTime <= 0 || parallel[i].MeanTime <= 0 {
			t.Errorf("row %d: non-positive solver time", i)
		}
	}
}
