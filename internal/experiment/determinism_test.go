package experiment

import (
	"testing"
)

// TestExperimentsDeterministic verifies that a fixed Config reproduces
// byte-identical results — the property EXPERIMENTS.md relies on.
func TestExperimentsDeterministic(t *testing.T) {
	cfg := Config{Seed: 3, Fast: true}

	a1, _, err := Fig21Turntable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Fig21Turntable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("Fig21 row %d differs across runs: %+v vs %+v", i, a1[i], a2[i])
		}
	}

	b1, _, err := Fig15Weights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b2, _, err := Fig15Weights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1 {
		if b1[i].MeanErr != b2[i].MeanErr || b1[i].P90Err != b2[i].P90Err {
			t.Fatalf("Fig15 row %d differs across runs", i)
		}
	}
}

// TestExperimentsSeedSensitivity verifies that changing the seed actually
// changes the noise realisation (no accidental fixed seeding inside).
func TestExperimentsSeedSensitivity(t *testing.T) {
	r1, _, err := Fig21Turntable(Config{Seed: 3, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Fig21Turntable(Config{Seed: 4, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1 {
		if r1[i].DistErr != r2[i].DistErr {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical results")
	}
}
