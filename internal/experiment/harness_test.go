package experiment

import (
	"strings"
	"testing"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("alpha", "1.00")
	tbl.AddRow("b", "22.50")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== Demo ==", "name", "alpha", "22.50", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line starts with the padded first column.
	lines := strings.Split(out, "\n")
	var nameCol, alphaCol int
	for _, l := range lines {
		if strings.HasPrefix(l, "name") {
			nameCol = strings.Index(l, "value")
		}
		if strings.HasPrefix(l, "alpha") {
			alphaCol = strings.Index(l, "1.00")
		}
	}
	if nameCol == 0 || nameCol != alphaCol {
		t.Errorf("columns misaligned: header %d vs row %d", nameCol, alphaCol)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if got := c.seed(); got != 1 {
		t.Errorf("default seed = %d", got)
	}
	if got := c.trials(100, 5); got != 100 {
		t.Errorf("default trials = %d", got)
	}
	c.Fast = true
	if got := c.trials(100, 5); got != 5 {
		t.Errorf("fast trials = %d", got)
	}
	c.Trials = 42
	if got := c.trials(100, 5); got != 42 {
		t.Errorf("override trials = %d", got)
	}
	c.Seed = 9
	if got := c.seed(); got != 9 {
		t.Errorf("seed override = %d", got)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := cm(0.1234); got != "12.34" {
		t.Errorf("cm = %q", got)
	}
	if got := f3(1.23456); got != "1.235" {
		t.Errorf("f3 = %q", got)
	}
	if got := secs(0.12345); got != "0.1234" && got != "0.1235" {
		t.Errorf("secs = %q", got)
	}
	if got := itoa(42); got != "42" {
		t.Errorf("itoa = %q", got)
	}
	if got := absf(-2.5); got != 2.5 {
		t.Errorf("absf = %v", got)
	}
}

func TestWindowHelpers(t *testing.T) {
	obs := []core.PosPhase{
		{Pos: geom.V3(-0.5, 0, 0)}, {Pos: geom.V3(-0.1, 0, 0)},
		{Pos: geom.V3(0.2, 0, 0)}, {Pos: geom.V3(0.5, 0, 0)},
	}
	lo, hi := spanX(obs)
	if lo != -0.5 || hi != 0.5 {
		t.Errorf("spanX = %v, %v", lo, hi)
	}
	in := windowX(obs, 0, 0.5)
	if len(in) != 2 {
		t.Errorf("windowX kept %d, want 2", len(in))
	}
	if got := restrictRange(obs, 0); len(got) != len(obs) {
		t.Error("zero range should keep everything")
	}
	if got := restrictRange(obs, 0.6); len(got) != 2 {
		t.Errorf("restrictRange kept %d", len(got))
	}
}
