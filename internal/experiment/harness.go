// Package experiment regenerates every table and figure of the paper's
// evaluation (Sec. II empirical studies and Sec. V performance evaluation)
// on the simulated testbed. Each FigNN function reproduces one figure and
// returns both typed results (for tests and benchmarks) and a rendered
// table (for the lionbench CLI and EXPERIMENTS.md).
//
// Absolute centimetre values depend on the authors' room and hardware; what
// these experiments preserve is the shape of each result — who wins, by
// roughly what factor, and where the crossovers fall. See DESIGN.md §3.
package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Config controls the scale of every experiment run.
type Config struct {
	// Seed makes runs reproducible. Zero means 1.
	Seed int64
	// Trials scales the repetition count. Zero uses each experiment's
	// paper-faithful default.
	Trials int
	// Fast shrinks grids and repetition counts so the full suite runs in
	// seconds — used by unit tests; benchmarks and the CLI use the full
	// configuration.
	Fast bool
	// Workers sizes the worker pool for per-trial solver fan-out. Zero
	// means runtime.GOMAXPROCS(0); one forces the serial path. Results are
	// identical for any value — trial inputs are generated serially from
	// the seeded RNG and solver results are reduced in submission order.
	Workers int
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) trials(def, fast int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Fast {
		return fast
	}
	return def
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: " + n + "\n")
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// cm formats metres as centimetres with two decimals.
func cm(metres float64) string { return fmt.Sprintf("%.2f", metres*100) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// secs formats a duration in seconds with four decimals.
func secs(s float64) string { return fmt.Sprintf("%.4f", s) }
