package experiment

import (
	"math"
	"strconv"
)

// Thin wrappers keep the experiment files terse.

func sincos(x float64) (float64, float64) { return math.Sincos(x) }

func atan2(y, x float64) float64 { return math.Atan2(y, x) }

func hypot(x, y float64) float64 { return math.Hypot(x, y) }

func itoa(v int) string { return strconv.Itoa(v) }

func absf(v float64) float64 { return math.Abs(v) }
