package experiment

import (
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/stats"
	"github.com/rfid-lion/lion/internal/traject"
)

// fig15Deployment is the default methodology of Secs. V-D/E: tag on the
// x-axis track, antenna 0.8 m deep, multipath floor, random tag positions.
type fig15Deployment struct {
	tb  *testbed
	ant *sim.Antenna
	tag *sim.Tag
}

func newFig15Deployment(seed int64) (*fig15Deployment, error) {
	tb, err := newTestbed(seed)
	if err != nil {
		return nil, err
	}
	// Bursty multipath fades model the room's noise pollution; they are
	// what the weighting and the parameter selection are built to reject.
	tb.env.Fading = &sim.FadeModel{
		RatePerMeter: 0.6, RefDistance: 0.8,
		MinLength: 0.05, MaxLength: 0.15, MaxBias: 1.5,
	}
	beam, err := rf.NewBeam(geom.V3(0, -1, 0), rf.DefaultBeamwidthRad)
	if err != nil {
		return nil, err
	}
	return &fig15Deployment{
		tb:  tb,
		ant: &sim.Antenna{ID: "A", PhysicalCenter: geom.V3(0, 0.8, 0), Beam: beam},
		tag: &sim.Tag{ID: "T", PhaseOffset: tb.rng.Angle()},
	}, nil
}

// scanRelative runs one conveyor scan from a random start and returns the
// track-frame observations plus the true antenna position in that frame.
func (d *fig15Deployment) scanRelative(halfSpan float64) ([]core.PosPhase, geom.Vec3, error) {
	p0 := geom.V3(d.tb.rng.Uniform(-0.1, 0.1), 0, 0)
	trj, err := traject.NewLinear(
		p0.Add(geom.V3(-halfSpan, 0, 0)), p0.Add(geom.V3(halfSpan, 0, 0)), 0.1)
	if err != nil {
		return nil, geom.Vec3{}, err
	}
	obs, _, err := d.tb.scanToObs(d.ant, d.tag, trj)
	if err != nil {
		return nil, geom.Vec3{}, err
	}
	return relativeObs(obs, p0), d.ant.PhaseCenter().Sub(p0), nil
}

// Fig15Row is one estimator's accuracy in the weighting study.
type Fig15Row struct {
	Method  string
	MeanErr float64
	P90Err  float64
	Errors  []float64
}

// Fig15Weights compares weighted least squares with plain least squares over
// randomly placed tags at 0.8 m depth (the paper: WLS 0.43 cm vs LS
// 0.92 cm).
func Fig15Weights(cfg Config) ([]Fig15Row, *Table, error) {
	d, err := newFig15Deployment(cfg.seed())
	if err != nil {
		return nil, nil, err
	}
	trials := cfg.trials(30, 5)

	var wlsErrs, lsErrs []float64
	for trial := 0; trial < trials; trial++ {
		rel, trueT, err := d.scanRelative(0.55)
		if err != nil {
			return nil, nil, err
		}
		wls, err := core.Locate2DLine(rel, d.tb.lambda, 0.2, true, core.DefaultSolveOptions())
		if err != nil {
			return nil, nil, err
		}
		ls, err := core.Locate2DLine(rel, d.tb.lambda, 0.2, true,
			core.SolveOptions{Weighted: false})
		if err != nil {
			return nil, nil, err
		}
		wlsErrs = append(wlsErrs, wls.Position.XY().Dist(trueT.XY()))
		lsErrs = append(lsErrs, ls.Position.XY().Dist(trueT.XY()))
	}
	wlsP90, _ := stats.Percentile(wlsErrs, 90)
	lsP90, _ := stats.Percentile(lsErrs, 90)
	rows := []Fig15Row{
		{"WLS", stats.Mean(wlsErrs), wlsP90, wlsErrs},
		{"LS", stats.Mean(lsErrs), lsP90, lsErrs},
	}
	tbl := &Table{
		Title:   "Fig. 15 — weighted vs ordinary least squares (depth 0.8 m, multipath)",
		Columns: []string{"method", "mean err (cm)", "p90 err (cm)"},
		Notes: []string{
			"paper: WLS 0.43 cm vs LS 0.92 cm on average",
		},
	}
	for _, r := range rows {
		tbl.AddRow(r.Method, cm(r.MeanErr), cm(r.P90Err))
	}
	return rows, tbl, nil
}

// Fig16Row is one scanning-range cell of the range study (Figs. 16–17).
type Fig16Row struct {
	Range       float64
	MeanAbsRes  float64 // mean absolute WLS residual (data-quality signal)
	MeanDistErr float64
}

// restrictRange keeps only observations with |x| ≤ range/2 around the scan
// center.
func restrictRange(obs []core.PosPhase, scanRange float64) []core.PosPhase {
	if scanRange <= 0 {
		return obs
	}
	lo, hi := spanX(obs)
	return windowX(obs, (lo+hi)/2, scanRange)
}

// spanX returns the x-extent of the observations.
func spanX(obs []core.PosPhase) (lo, hi float64) {
	lo, hi = obs[0].Pos.X, obs[0].Pos.X
	for _, o := range obs {
		if o.Pos.X < lo {
			lo = o.Pos.X
		}
		if o.Pos.X > hi {
			hi = o.Pos.X
		}
	}
	return lo, hi
}

// windowX keeps observations with |x − center| ≤ width/2.
func windowX(obs []core.PosPhase, center, width float64) []core.PosPhase {
	out := make([]core.PosPhase, 0, len(obs))
	for _, o := range obs {
		if absf(o.Pos.X-center) <= width/2 {
			out = append(out, o)
		}
	}
	return out
}

// Fig16_17Range sweeps the scanning range from 0.6 m to 1.1 m with the
// interval fixed at 0.25 m and reports both the WLS residual and the
// distance error per range. The paper's shape: the residual closest to zero
// coincides with the minimum error (at ~0.8 m); too small a range is poorly
// conditioned, too large a range pulls in off-beam noise.
func Fig16_17Range(cfg Config) ([]Fig16Row, *Table, error) {
	d, err := newFig15Deployment(cfg.seed())
	if err != nil {
		return nil, nil, err
	}
	trials := cfg.trials(30, 5)
	ranges := []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1}

	sums := make(map[float64]*[2]float64, len(ranges))
	for _, rg := range ranges {
		sums[rg] = &[2]float64{}
	}
	for trial := 0; trial < trials; trial++ {
		rel, trueT, err := d.scanRelative(0.62)
		if err != nil {
			return nil, nil, err
		}
		for _, rg := range ranges {
			sub := restrictRange(rel, rg)
			sol, err := core.Locate2DLine(sub, d.tb.lambda, 0.25, true, core.DefaultSolveOptions())
			if err != nil {
				return nil, nil, err
			}
			s := sums[rg]
			s[0] += sol.MeanAbsResidual
			s[1] += sol.Position.XY().Dist(trueT.XY())
		}
	}
	var rows []Fig16Row
	for _, rg := range ranges {
		s := sums[rg]
		rows = append(rows, Fig16Row{
			Range:       rg,
			MeanAbsRes:  s[0] / float64(trials),
			MeanDistErr: s[1] / float64(trials),
		})
	}
	tbl := &Table{
		Title:   "Figs. 16-17 — scanning range vs WLS residual and distance error (interval 0.25 m)",
		Columns: []string{"range (m)", "mean |residual|", "dist err (cm)"},
		Notes: []string{
			"paper: the range whose residual is closest to zero (0.8 m) also minimises the error",
			"this reproduction reports the mean |residual|; see EXPERIMENTS.md for the deviation note",
		},
	}
	for _, r := range rows {
		tbl.AddRow(f3(r.Range), f3(r.MeanAbsRes), cm(r.MeanDistErr))
	}
	return rows, tbl, nil
}

// Fig18Row is one scanning-interval cell of the interval study.
type Fig18Row struct {
	Interval    float64
	MeanAbsRes  float64
	MeanDistErr float64
}

// Fig18Interval sweeps the pairing interval from 0.10 m to 0.35 m with the
// scanning range fixed at 0.8 m. The paper's shape: the error drops sharply
// once the interval reaches ~0.2 m (larger intervals mean larger phase
// differences, so relatively less noise), and the residual again identifies
// the good choice.
func Fig18Interval(cfg Config) ([]Fig18Row, *Table, error) {
	d, err := newFig15Deployment(cfg.seed())
	if err != nil {
		return nil, nil, err
	}
	trials := cfg.trials(30, 5)
	intervals := []float64{0.10, 0.15, 0.20, 0.25, 0.30, 0.35}

	sums := make(map[float64]*[2]float64, len(intervals))
	for _, iv := range intervals {
		sums[iv] = &[2]float64{}
	}
	for trial := 0; trial < trials; trial++ {
		rel, trueT, err := d.scanRelative(0.62)
		if err != nil {
			return nil, nil, err
		}
		sub := restrictRange(rel, 0.8)
		for _, iv := range intervals {
			sol, err := core.Locate2DLine(sub, d.tb.lambda, iv, true, core.DefaultSolveOptions())
			if err != nil {
				return nil, nil, err
			}
			s := sums[iv]
			s[0] += sol.MeanAbsResidual
			s[1] += sol.Position.XY().Dist(trueT.XY())
		}
	}
	var rows []Fig18Row
	for _, iv := range intervals {
		s := sums[iv]
		rows = append(rows, Fig18Row{
			Interval:    iv,
			MeanAbsRes:  s[0] / float64(trials),
			MeanDistErr: s[1] / float64(trials),
		})
	}
	tbl := &Table{
		Title:   "Fig. 18 — scanning interval vs distance error (range 0.8 m)",
		Columns: []string{"interval (m)", "mean |residual|", "dist err (cm)"},
		Notes: []string{
			"paper: error drops markedly once the interval reaches ~0.2 m",
		},
	}
	for _, r := range rows {
		tbl.AddRow(f3(r.Interval), f3(r.MeanAbsRes), cm(r.MeanDistErr))
	}
	return rows, tbl, nil
}
