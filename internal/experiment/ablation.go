package experiment

import (
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/hologram"
	"github.com/rfid-lion/lion/internal/hyperbola"
	"github.com/rfid-lion/lion/internal/stats"
)

// AblationRow is one solver's accuracy/cost on the shared workload.
type AblationRow struct {
	Solver   string
	MeanErr  float64
	MeanTime time.Duration
}

// AblationSolvers compares the three solver families on an identical
// workload (circle trajectory, antenna at 1 m, N(0,0.1) noise): LION's
// linear model, the Gauss–Newton hyperbola baseline, and the DAH grid
// search. This is the design-choice ablation DESIGN.md calls out — the
// radical-line reduction buys orders of magnitude in time at equal or
// better accuracy.
func AblationSolvers(cfg Config) ([]AblationRow, *Table, error) {
	rng := stats.NewRNG(cfg.seed())
	trials := cfg.trials(50, 5)
	gridStep := 0.002
	if cfg.Fast {
		gridStep = 0.01
	}
	ant := geom.V3(0.8, 0.4, 0)

	type acc struct {
		err  float64
		time time.Duration
	}
	sums := map[string]*acc{
		"LION (WLS)": {}, "LION (LS)": {}, "Hyperbola GN": {}, "DAH grid": {},
	}
	add := func(k string, e float64, d time.Duration) {
		sums[k].err += e
		sums[k].time += d
	}

	for trial := 0; trial < trials; trial++ {
		obs := smoothObs(genCircleObs(ant, 0.3, 120, 0.1, rng), smoothWindow)
		pairs := core.StridePairs(len(obs), 30)

		start := time.Now()
		wls, err := core.Locate2D(obs, simLambda, pairs, core.DefaultSolveOptions())
		if err != nil {
			return nil, nil, err
		}
		add("LION (WLS)", wls.Position.Dist(ant), time.Since(start))

		start = time.Now()
		ls, err := core.Locate2D(obs, simLambda, pairs, core.SolveOptions{})
		if err != nil {
			return nil, nil, err
		}
		add("LION (LS)", ls.Position.Dist(ant), time.Since(start))

		start = time.Now()
		hyp, err := hyperbola.Locate(obs, simLambda, pairs, geom.V3(0.5, 0.5, 0),
			hyperbola.Options{})
		if err != nil && hyp == nil {
			return nil, nil, err
		}
		add("Hyperbola GN", hyp.Position.Dist(ant), time.Since(start))

		start = time.Now()
		dah, err := hologram.Locate(obs, hologram.Config{
			Lambda:   simLambda,
			GridMin:  ant.Add(geom.V3(-0.1, -0.1, 0)),
			GridMax:  ant.Add(geom.V3(0.1, 0.1, 0)),
			GridStep: gridStep,
			Weighted: true,
		})
		if err != nil {
			return nil, nil, err
		}
		add("DAH grid", dah.Position.Dist(ant), time.Since(start))
	}

	order := []string{"LION (WLS)", "LION (LS)", "Hyperbola GN", "DAH grid"}
	var rows []AblationRow
	for _, k := range order {
		rows = append(rows, AblationRow{
			Solver:   k,
			MeanErr:  sums[k].err / float64(trials),
			MeanTime: sums[k].time / time.Duration(trials),
		})
	}
	tbl := &Table{
		Title:   "Ablation — solver families on an identical workload (circle r=0.3 m, N(0,0.1))",
		Columns: []string{"solver", "mean err (cm)", "time (s)"},
		Notes: []string{
			"the radical-line reduction turns a quadratic problem into a linear one",
		},
	}
	for _, r := range rows {
		tbl.AddRow(r.Solver, cm(r.MeanErr), secs(r.MeanTime.Seconds()))
	}
	return rows, tbl, nil
}

// AblationIRWLSRow is one iteration budget's accuracy.
type AblationIRWLSRow struct {
	MaxIterations int
	MeanErr       float64
}

// AblationIRWLS sweeps the IRWLS iteration budget under burst corruption to
// show where the re-weighting converges.
func AblationIRWLS(cfg Config) ([]AblationIRWLSRow, *Table, error) {
	rng := stats.NewRNG(cfg.seed())
	trials := cfg.trials(40, 6)
	ant := geom.V3(1, 0, 0)

	budgets := []int{1, 2, 3, 5, 10, 20}
	sums := make([]float64, len(budgets))
	for trial := 0; trial < trials; trial++ {
		obs := genCircleObs(ant, 0.3, 120, 0.05, rng)
		start := 5 + rng.Intn(10)
		for i := start; i < start+12; i++ {
			obs[i].Theta += 2.0
		}
		obs = smoothObs(obs, smoothWindow)
		pairs := core.StridePairs(len(obs), 30)
		for bi, b := range budgets {
			sol, err := core.Locate2D(obs, simLambda, pairs, core.SolveOptions{
				Weighted:      true,
				MaxIterations: b,
			})
			if err != nil {
				return nil, nil, err
			}
			sums[bi] += sol.Position.Dist(ant)
		}
	}
	var rows []AblationIRWLSRow
	for bi, b := range budgets {
		rows = append(rows, AblationIRWLSRow{
			MaxIterations: b,
			MeanErr:       sums[bi] / float64(trials),
		})
	}
	tbl := &Table{
		Title:   "Ablation — IRWLS iteration budget under burst corruption",
		Columns: []string{"max iterations", "mean err (cm)"},
	}
	for _, r := range rows {
		tbl.AddRow(itoa(r.MaxIterations), cm(r.MeanErr))
	}
	return rows, tbl, nil
}

// AblationSmoothingRow is one smoothing window's accuracy.
type AblationSmoothingRow struct {
	Window  int
	MeanErr float64
}

// AblationSmoothing sweeps the moving-average window of the preprocessing
// stage on a noisy linear scan: no smoothing wastes SNR, oversmoothing
// distorts the profile near the boundaries.
func AblationSmoothing(cfg Config) ([]AblationSmoothingRow, *Table, error) {
	rng := stats.NewRNG(cfg.seed())
	trials := cfg.trials(40, 6)
	ant := geom.V3(0.2, 1, 0)
	windows := []int{0, 3, 9, 15, 31, 61}

	sums := make([]float64, len(windows))
	for trial := 0; trial < trials; trial++ {
		n := 200
		positions := make([]geom.Vec3, n)
		wrapped := make([]float64, n)
		for i := range positions {
			positions[i] = geom.V3(-0.5+float64(i)/float64(n-1), 0, 0)
			theta := 4 * 3.141592653589793 * ant.Dist(positions[i]) / simLambda
			wrapped[i] = theta + rng.Normal(0, 0.15)
		}
		for wi, w := range windows {
			obs, err := core.Preprocess(positions, wrapSlice(wrapped), w)
			if err != nil {
				return nil, nil, err
			}
			sol, err := core.Locate2DLine(obs, simLambda, 0.2, true,
				core.DefaultSolveOptions())
			if err != nil {
				return nil, nil, err
			}
			sums[wi] += sol.Position.Dist(ant)
		}
	}
	var rows []AblationSmoothingRow
	for wi, w := range windows {
		rows = append(rows, AblationSmoothingRow{
			Window:  w,
			MeanErr: sums[wi] / float64(trials),
		})
	}
	tbl := &Table{
		Title:   "Ablation — moving-average smoothing window (noisy linear scan)",
		Columns: []string{"window", "mean err (cm)"},
	}
	for _, r := range rows {
		tbl.AddRow(itoa(r.Window), cm(r.MeanErr))
	}
	return rows, tbl, nil
}

// wrapSlice wraps each phase onto [0, 2π).
func wrapSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		t := x
		for t >= 2*3.141592653589793 {
			t -= 2 * 3.141592653589793
		}
		for t < 0 {
			t += 2 * 3.141592653589793
		}
		out[i] = t
	}
	return out
}
