package experiment

import (
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/hologram"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// Fig13Row is one (case, method) cell of the overall-accuracy study.
type Fig13Row struct {
	Case    string // "2D+", "2D-", "3D+", "3D-"
	Method  string // "LION" or "DAH"
	MeanErr float64
	// MeanTime is the average solver wall-clock per localization.
	MeanTime time.Duration
}

// fig13Setup holds the calibrated deployment shared by all Fig. 13 trials.
// The paper's 2-D experiments put the antenna at the tag's height; the 3-D
// experiments raise it by up to 20 cm, so the two cases use separate
// antennas, each calibrated in advance.
type fig13Setup struct {
	tb      *testbed
	ant2D   *sim.Antenna
	ant3D   *sim.Antenna
	tag     *sim.Tag
	calib2D core.CenterCalibration
	calib3D core.CenterCalibration
}

func newFig13Setup(cfg Config) (*fig13Setup, error) {
	tb, err := newTestbed(cfg.seed())
	if err != nil {
		return nil, err
	}
	ant2D, err := tb.defaultAntenna("A-2D", geom.V3(0, 0.8, 0), geom.V3(0, -1, 0))
	if err != nil {
		return nil, err
	}
	ant3D, err := tb.defaultAntenna("A-3D", geom.V3(0, 0.8, 0.12), geom.V3(0, -1, 0))
	if err != nil {
		return nil, err
	}
	tag := &sim.Tag{ID: "T1", PhaseOffset: tb.rng.Angle()}
	calib2D, _, err := tb.calibrateAntenna(ant2D, tag, geom.V3(0, 0, 0))
	if err != nil {
		return nil, err
	}
	calib3D, _, err := tb.calibrateAntenna(ant3D, tag, geom.V3(0, 0, 0))
	if err != nil {
		return nil, err
	}
	return &fig13Setup{
		tb:      tb,
		ant2D:   ant2D,
		ant3D:   ant3D,
		tag:     tag,
		calib2D: calib2D,
		calib3D: calib3D,
	}, nil
}

// relativeObs shifts a scan's ground-truth positions into the track frame
// anchored at p0: the algorithms know the tag's motion but not its absolute
// start.
func relativeObs(obs []core.PosPhase, p0 geom.Vec3) []core.PosPhase {
	out := make([]core.PosPhase, len(obs))
	for i, o := range obs {
		out[i] = core.PosPhase{Pos: o.Pos.Sub(p0), Theta: o.Theta}
	}
	return out
}

// fig13Trial carries one trial's pre-generated scan data, so the solver
// phase is a pure function of it and can fan out across workers. Generation
// consumes the shared testbed RNG and therefore stays serial.
type fig13Trial struct {
	rel2D  []core.PosPhase
	p02D   geom.Vec3
	true2D geom.Vec3 // antenna in the 2-D track frame

	in3D   core.TwoLineInput
	sub3D  []core.PosPhase // subsampled observations for the DAH grid
	p03D   geom.Vec3
	true3D geom.Vec3
}

// fig13Result is one trial's solver outputs: errors with[+]/without[-]
// calibration for both methods, plus solver wall-clock.
type fig13Result struct {
	lionPlus2D, lionMinus2D, dahPlus2D, dahMinus2D float64
	lionTime2D, dahTime2D                          time.Duration
	lionPlus3D, lionMinus3D, dahPlus3D, dahMinus3D float64
	lionTime3D, dahTime3D                          time.Duration
}

// gen2D draws one 2-D trial: a random tag start and a linear scan past the
// antenna.
func (s *fig13Setup) gen2D(t *fig13Trial) error {
	p0 := geom.V3(s.tb.rng.Uniform(-0.2, 0.2), 0, 0)
	trj, err := traject.NewLinear(p0.Add(geom.V3(-0.5, 0, 0)), p0.Add(geom.V3(0.5, 0, 0)), 0.1)
	if err != nil {
		return err
	}
	obs, _, err := s.tb.scanToObs(s.ant2D, s.tag, trj)
	if err != nil {
		return err
	}
	t.rel2D = relativeObs(obs, p0)
	t.p02D = p0
	t.true2D = s.ant2D.PhaseCenter().Sub(p0)
	return nil
}

// gen3D draws one 3-D trial over the two-line scan with 20 cm depth
// interval, including the DAH subsample (the paper shrinks the 3-D search
// volume to (20 cm)³ the same way).
func (s *fig13Setup) gen3D(t *fig13Trial) error {
	p0 := geom.V3(s.tb.rng.Uniform(-0.2, 0.2), 0, 0)
	scan, err := traject.NewTwoLineScan(-0.5, 0.5, 0.2, 0.1)
	if err != nil {
		return err
	}
	shifted := &shiftedTrajectory{inner: scan, offset: p0}
	samples, err := s.tb.reader.Scan(s.ant3D, s.tag, shifted)
	if err != nil {
		return err
	}
	obs, err := core.Preprocess(sim.Positions(samples), sim.Phases(samples), smoothWindow)
	if err != nil {
		return err
	}
	rel := relativeObs(obs, p0)
	in, err := splitTwoLine(rel, samples, s.tb.lambda)
	if err != nil {
		return err
	}
	sub := rel
	if len(sub) > 150 {
		step := len(sub) / 150
		ds := make([]core.PosPhase, 0, 150)
		for i := 0; i < len(sub); i += step {
			ds = append(ds, sub[i])
		}
		sub = ds
	}
	t.in3D = in
	t.sub3D = sub
	t.p03D = p0
	t.true3D = s.ant3D.PhaseCenter().Sub(p0)
	return nil
}

// solve2D runs both solvers on a pre-generated 2-D trial.
func (s *fig13Setup) solve2D(t *fig13Trial, dahStep float64, r *fig13Result) error {
	start := time.Now()
	sol, err := core.Locate2DLine(t.rel2D, s.tb.lambda, 0.2, true, core.DefaultSolveOptions())
	if err != nil {
		return err
	}
	r.lionTime2D = time.Since(start)

	estimate := func(anchor geom.Vec3, tHat geom.Vec3) float64 {
		p0Hat := anchor.Sub(tHat)
		return p0Hat.XY().Dist(t.p02D.XY())
	}
	r.lionPlus2D = estimate(s.calib2D.EstimatedCenter, sol.Position)
	r.lionMinus2D = estimate(s.ant2D.PhysicalCenter, sol.Position)

	// DAH over a 20 cm box around the true relative antenna position
	// (the paper reduces the search area the same way).
	start = time.Now()
	hres, err := hologram.Locate(t.rel2D, hologram.Config{
		Lambda:   s.tb.lambda,
		GridMin:  t.true2D.Add(geom.V3(-0.1, -0.1, 0)),
		GridMax:  t.true2D.Add(geom.V3(0.1, 0.1, 0)),
		GridStep: dahStep,
		Weighted: true,
	})
	if err != nil {
		return err
	}
	r.dahTime2D = time.Since(start)
	hpos := hres.Position
	hpos.Z = 0
	r.dahPlus2D = estimate(s.calib2D.EstimatedCenter, hpos)
	r.dahMinus2D = estimate(s.ant2D.PhysicalCenter, hpos)
	return nil
}

// solve3D runs both solvers on a pre-generated 3-D trial.
func (s *fig13Setup) solve3D(t *fig13Trial, dahStep float64, r *fig13Result) error {
	start := time.Now()
	twoOpts := core.DefaultStructuredOptions()
	twoOpts.Intervals = []float64{0.2, 0.4, 0.7} // long pairs pin d_r and z
	sol, err := core.LocateTwoLine(t.in3D, true, twoOpts)
	if err != nil {
		return err
	}
	r.lionTime3D = time.Since(start)

	estimate := func(anchor geom.Vec3, tHat geom.Vec3) float64 {
		return anchor.Sub(tHat).Dist(t.p03D)
	}
	r.lionPlus3D = estimate(s.calib3D.EstimatedCenter, sol.Position)
	r.lionMinus3D = estimate(s.ant3D.PhysicalCenter, sol.Position)

	start = time.Now()
	hres, err := hologram.Locate(t.sub3D, hologram.Config{
		Lambda:   s.tb.lambda,
		GridMin:  t.true3D.Add(geom.V3(-0.1, -0.1, -0.1)),
		GridMax:  t.true3D.Add(geom.V3(0.1, 0.1, 0.1)),
		GridStep: dahStep,
		Weighted: true,
	})
	if err != nil {
		return err
	}
	r.dahTime3D = time.Since(start)
	r.dahPlus3D = estimate(s.calib3D.EstimatedCenter, hres.Position)
	r.dahMinus3D = estimate(s.ant3D.PhysicalCenter, hres.Position)
	return nil
}

// Fig13Overall reproduces the headline result: phase calibration improves
// accuracy by large factors (paper: 6× in 2-D, 2.1× in 3-D), LION edges out
// DAH at a fraction of the compute (Figs. 13a and 13b).
func Fig13Overall(cfg Config) ([]Fig13Row, *Table, error) {
	s, err := newFig13Setup(cfg)
	if err != nil {
		return nil, nil, err
	}
	trials := cfg.trials(20, 3)
	dahStep2D := 0.002
	dahStep3D := 0.005
	if cfg.Fast {
		dahStep2D, dahStep3D = 0.01, 0.02
	}

	type acc struct {
		errSum  float64
		timeSum time.Duration
	}
	cases := map[string]*acc{}
	add := func(key string, e float64, d time.Duration) {
		a := cases[key]
		if a == nil {
			a = &acc{}
			cases[key] = a
		}
		a.errSum += e
		a.timeSum += d
	}

	// Phase 1 — serial: draw every trial's scan data from the seeded RNG in
	// the fixed order (2-D then 3-D per trial, matching the serial harness).
	inputs := make([]fig13Trial, trials)
	for i := range inputs {
		if err := s.gen2D(&inputs[i]); err != nil {
			return nil, nil, err
		}
		if err := s.gen3D(&inputs[i]); err != nil {
			return nil, nil, err
		}
	}
	// Phase 2 — parallel: solve every trial on the worker pool. Each solve
	// is a pure function of its pre-generated input, and solveTrials keys
	// results by trial index, so the reduction below is order-identical to
	// the serial loop.
	results, err := solveTrials(cfg.Workers, trials, func(i int) (fig13Result, error) {
		var r fig13Result
		if err := s.solve2D(&inputs[i], dahStep2D, &r); err != nil {
			return r, err
		}
		if err := s.solve3D(&inputs[i], dahStep3D, &r); err != nil {
			return r, err
		}
		return r, nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Phase 3 — serial reduction in trial order.
	for _, r := range results {
		add("2D+/LION", r.lionPlus2D, r.lionTime2D)
		add("2D-/LION", r.lionMinus2D, r.lionTime2D)
		add("2D+/DAH", r.dahPlus2D, r.dahTime2D)
		add("2D-/DAH", r.dahMinus2D, r.dahTime2D)

		add("3D+/LION", r.lionPlus3D, r.lionTime3D)
		add("3D-/LION", r.lionMinus3D, r.lionTime3D)
		add("3D+/DAH", r.dahPlus3D, r.dahTime3D)
		add("3D-/DAH", r.dahMinus3D, r.dahTime3D)
	}

	order := []struct{ c, m string }{
		{"2D+", "LION"}, {"2D+", "DAH"},
		{"2D-", "LION"}, {"2D-", "DAH"},
		{"3D+", "LION"}, {"3D+", "DAH"},
		{"3D-", "LION"}, {"3D-", "DAH"},
	}
	var rows []Fig13Row
	for _, o := range order {
		a := cases[o.c+"/"+o.m]
		rows = append(rows, Fig13Row{
			Case:     o.c,
			Method:   o.m,
			MeanErr:  a.errSum / float64(trials),
			MeanTime: a.timeSum / time.Duration(trials),
		})
	}
	tbl := &Table{
		Title:   "Fig. 13 — overall accuracy and cost (with[+]/without[-] calibration)",
		Columns: []string{"case", "method", "mean err (cm)", "solver time (s)"},
		Notes: []string{
			"paper: calibration improves 2D accuracy ~6x and 3D ~2.1x",
			"paper: LION 0.48 cm vs DAH 0.69 cm (2D); 2.33 vs 2.61 cm (3D)",
			"paper: LION is dramatically cheaper than DAH, especially in 3D",
		},
	}
	for _, r := range rows {
		tbl.AddRow(r.Case, r.Method, cm(r.MeanErr), secs(r.MeanTime.Seconds()))
	}
	return rows, tbl, nil
}
