package experiment

import (
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/hologram"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// Fig13Row is one (case, method) cell of the overall-accuracy study.
type Fig13Row struct {
	Case    string // "2D+", "2D-", "3D+", "3D-"
	Method  string // "LION" or "DAH"
	MeanErr float64
	// MeanTime is the average solver wall-clock per localization.
	MeanTime time.Duration
}

// fig13Setup holds the calibrated deployment shared by all Fig. 13 trials.
// The paper's 2-D experiments put the antenna at the tag's height; the 3-D
// experiments raise it by up to 20 cm, so the two cases use separate
// antennas, each calibrated in advance.
type fig13Setup struct {
	tb      *testbed
	ant2D   *sim.Antenna
	ant3D   *sim.Antenna
	tag     *sim.Tag
	calib2D core.CenterCalibration
	calib3D core.CenterCalibration
}

func newFig13Setup(cfg Config) (*fig13Setup, error) {
	tb, err := newTestbed(cfg.seed())
	if err != nil {
		return nil, err
	}
	ant2D, err := tb.defaultAntenna("A-2D", geom.V3(0, 0.8, 0), geom.V3(0, -1, 0))
	if err != nil {
		return nil, err
	}
	ant3D, err := tb.defaultAntenna("A-3D", geom.V3(0, 0.8, 0.12), geom.V3(0, -1, 0))
	if err != nil {
		return nil, err
	}
	tag := &sim.Tag{ID: "T1", PhaseOffset: tb.rng.Angle()}
	calib2D, _, err := tb.calibrateAntenna(ant2D, tag, geom.V3(0, 0, 0))
	if err != nil {
		return nil, err
	}
	calib3D, _, err := tb.calibrateAntenna(ant3D, tag, geom.V3(0, 0, 0))
	if err != nil {
		return nil, err
	}
	return &fig13Setup{
		tb:      tb,
		ant2D:   ant2D,
		ant3D:   ant3D,
		tag:     tag,
		calib2D: calib2D,
		calib3D: calib3D,
	}, nil
}

// relativeObs shifts a scan's ground-truth positions into the track frame
// anchored at p0: the algorithms know the tag's motion but not its absolute
// start.
func relativeObs(obs []core.PosPhase, p0 geom.Vec3) []core.PosPhase {
	out := make([]core.PosPhase, len(obs))
	for i, o := range obs {
		out[i] = core.PosPhase{Pos: o.Pos.Sub(p0), Theta: o.Theta}
	}
	return out
}

// trial2D runs one 2-D localization of a random tag start and returns the
// position errors with and without calibration, for both methods, plus the
// solver times.
func (s *fig13Setup) trial2D(dahStep float64) (lionErrPlus, lionErrMinus, dahErrPlus, dahErrMinus float64, lionTime, dahTime time.Duration, err error) {
	p0 := geom.V3(s.tb.rng.Uniform(-0.2, 0.2), 0, 0)
	trj, err := traject.NewLinear(p0.Add(geom.V3(-0.5, 0, 0)), p0.Add(geom.V3(0.5, 0, 0)), 0.1)
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	obs, _, err := s.tb.scanToObs(s.ant2D, s.tag, trj)
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	rel := relativeObs(obs, p0)

	start := time.Now()
	sol, err := core.Locate2DLine(rel, s.tb.lambda, 0.2, true, core.DefaultSolveOptions())
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	lionTime = time.Since(start)

	trueT := s.ant2D.PhaseCenter().Sub(p0) // antenna in track frame
	estimate := func(anchor geom.Vec3, tHat geom.Vec3) float64 {
		p0Hat := anchor.Sub(tHat)
		return p0Hat.XY().Dist(p0.XY())
	}
	lionErrPlus = estimate(s.calib2D.EstimatedCenter, sol.Position)
	lionErrMinus = estimate(s.ant2D.PhysicalCenter, sol.Position)

	// DAH over a 20 cm box around the true relative antenna position
	// (the paper reduces the search area the same way).
	start = time.Now()
	hres, err := hologram.Locate(rel, hologram.Config{
		Lambda:   s.tb.lambda,
		GridMin:  trueT.Add(geom.V3(-0.1, -0.1, 0)),
		GridMax:  trueT.Add(geom.V3(0.1, 0.1, 0)),
		GridStep: dahStep,
		Weighted: true,
	})
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	dahTime = time.Since(start)
	hpos := hres.Position
	hpos.Z = 0
	dahErrPlus = estimate(s.calib2D.EstimatedCenter, hpos)
	dahErrMinus = estimate(s.ant2D.PhysicalCenter, hpos)
	return lionErrPlus, lionErrMinus, dahErrPlus, dahErrMinus, lionTime, dahTime, nil
}

// trial3D is the 3-D analogue over the two-line scan with 20 cm depth
// interval.
func (s *fig13Setup) trial3D(dahStep float64) (lionErrPlus, lionErrMinus, dahErrPlus, dahErrMinus float64, lionTime, dahTime time.Duration, err error) {
	p0 := geom.V3(s.tb.rng.Uniform(-0.2, 0.2), 0, 0)
	scan, err := traject.NewTwoLineScan(-0.5, 0.5, 0.2, 0.1)
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	shifted := &shiftedTrajectory{inner: scan, offset: p0}
	samples, err := s.tb.reader.Scan(s.ant3D, s.tag, shifted)
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	obs, err := core.Preprocess(sim.Positions(samples), sim.Phases(samples), smoothWindow)
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	rel := relativeObs(obs, p0)
	in, err := splitTwoLine(rel, samples, s.tb.lambda)
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}

	start := time.Now()
	twoOpts := core.DefaultStructuredOptions()
	twoOpts.Intervals = []float64{0.2, 0.4, 0.7} // long pairs pin d_r and z
	sol, err := core.LocateTwoLine(in, true, twoOpts)
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	lionTime = time.Since(start)

	trueT := s.ant3D.PhaseCenter().Sub(p0)
	estimate := func(anchor geom.Vec3, tHat geom.Vec3) float64 {
		return anchor.Sub(tHat).Dist(p0)
	}
	lionErrPlus = estimate(s.calib3D.EstimatedCenter, sol.Position)
	lionErrMinus = estimate(s.ant3D.PhysicalCenter, sol.Position)

	// DAH 3-D: subsample the observations to bound the grid-scan cost, as
	// even the paper shrinks the 3-D search volume to (20 cm)³.
	sub := rel
	if len(sub) > 150 {
		step := len(sub) / 150
		ds := make([]core.PosPhase, 0, 150)
		for i := 0; i < len(sub); i += step {
			ds = append(ds, sub[i])
		}
		sub = ds
	}
	start = time.Now()
	hres, err := hologram.Locate(sub, hologram.Config{
		Lambda:   s.tb.lambda,
		GridMin:  trueT.Add(geom.V3(-0.1, -0.1, -0.1)),
		GridMax:  trueT.Add(geom.V3(0.1, 0.1, 0.1)),
		GridStep: dahStep,
		Weighted: true,
	})
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	dahTime = time.Since(start)
	dahErrPlus = estimate(s.calib3D.EstimatedCenter, hres.Position)
	dahErrMinus = estimate(s.ant3D.PhysicalCenter, hres.Position)
	return lionErrPlus, lionErrMinus, dahErrPlus, dahErrMinus, lionTime, dahTime, nil
}

// Fig13Overall reproduces the headline result: phase calibration improves
// accuracy by large factors (paper: 6× in 2-D, 2.1× in 3-D), LION edges out
// DAH at a fraction of the compute (Figs. 13a and 13b).
func Fig13Overall(cfg Config) ([]Fig13Row, *Table, error) {
	s, err := newFig13Setup(cfg)
	if err != nil {
		return nil, nil, err
	}
	trials := cfg.trials(20, 3)
	dahStep2D := 0.002
	dahStep3D := 0.005
	if cfg.Fast {
		dahStep2D, dahStep3D = 0.01, 0.02
	}

	type acc struct {
		errSum  float64
		timeSum time.Duration
	}
	cases := map[string]*acc{}
	add := func(key string, e float64, d time.Duration) {
		a := cases[key]
		if a == nil {
			a = &acc{}
			cases[key] = a
		}
		a.errSum += e
		a.timeSum += d
	}

	for trial := 0; trial < trials; trial++ {
		lp, lm, dp, dm, lt, dt, err := s.trial2D(dahStep2D)
		if err != nil {
			return nil, nil, err
		}
		add("2D+/LION", lp, lt)
		add("2D-/LION", lm, lt)
		add("2D+/DAH", dp, dt)
		add("2D-/DAH", dm, dt)

		lp, lm, dp, dm, lt, dt, err = s.trial3D(dahStep3D)
		if err != nil {
			return nil, nil, err
		}
		add("3D+/LION", lp, lt)
		add("3D-/LION", lm, lt)
		add("3D+/DAH", dp, dt)
		add("3D-/DAH", dm, dt)
	}

	order := []struct{ c, m string }{
		{"2D+", "LION"}, {"2D+", "DAH"},
		{"2D-", "LION"}, {"2D-", "DAH"},
		{"3D+", "LION"}, {"3D+", "DAH"},
		{"3D-", "LION"}, {"3D-", "DAH"},
	}
	var rows []Fig13Row
	for _, o := range order {
		a := cases[o.c+"/"+o.m]
		rows = append(rows, Fig13Row{
			Case:     o.c,
			Method:   o.m,
			MeanErr:  a.errSum / float64(trials),
			MeanTime: a.timeSum / time.Duration(trials),
		})
	}
	tbl := &Table{
		Title:   "Fig. 13 — overall accuracy and cost (with[+]/without[-] calibration)",
		Columns: []string{"case", "method", "mean err (cm)", "solver time (s)"},
		Notes: []string{
			"paper: calibration improves 2D accuracy ~6x and 3D ~2.1x",
			"paper: LION 0.48 cm vs DAH 0.69 cm (2D); 2.33 vs 2.61 cm (3D)",
			"paper: LION is dramatically cheaper than DAH, especially in 3D",
		},
	}
	for _, r := range rows {
		tbl.AddRow(r.Case, r.Method, cm(r.MeanErr), secs(r.MeanTime.Seconds()))
	}
	return rows, tbl, nil
}
