package experiment

import (
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// SplitThreeLine converts a labelled three-line scan into the structured
// solver input. Exported for the CLI tools (lionsim -trace localizes the
// scans it just generated).
func SplitThreeLine(obs []core.PosPhase, samples []sim.Sample, lambda float64) (core.ThreeLineInput, error) {
	return splitThreeLine(obs, samples, lambda)
}

// SplitTwoLine converts a labelled two-line scan into the structured solver
// input.
func SplitTwoLine(obs []core.PosPhase, samples []sim.Sample, lambda float64) (core.TwoLineInput, error) {
	return splitTwoLine(obs, samples, lambda)
}

// TraceCalibration runs one instrumented calibration solve on the simulated
// testbed: a three-line scan of a default antenna followed by the adaptive
// range/interval sweep of Sec. IV-C-1, with every candidate solve and IRWLS
// iteration recorded on tr. It returns the adaptive result so callers can
// report the selected estimate alongside the trace.
func TraceCalibration(seed int64, tr *obs.Tracer) (*core.AdaptiveResult, error) {
	tb, err := newTestbed(seed)
	if err != nil {
		return nil, err
	}
	ant, err := tb.defaultAntenna("A1", geom.V3(0.1, 0.8, 0), geom.V3(0, -1, 0))
	if err != nil {
		return nil, err
	}
	tag := &sim.Tag{ID: "T1", PhaseOffset: 0.4}
	scan, err := traject.NewThreeLineScan(traject.ThreeLineConfig{
		XMin: -0.6, XMax: 0.6,
		YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.05,
	})
	if err != nil {
		return nil, err
	}
	samples, err := tb.reader.Scan(ant, tag, scan)
	if err != nil {
		return nil, err
	}
	obsv, err := core.Preprocess(sim.Positions(samples), sim.Phases(samples), smoothWindow)
	if err != nil {
		return nil, err
	}
	in, err := splitThreeLine(obsv, samples, tb.lambda)
	if err != nil {
		return nil, err
	}
	solve := core.DefaultSolveOptions()
	solve.Trace = tr
	return core.AdaptiveLocateThreeLine(in,
		[]float64{0.6, 0.8, 1.0},
		[]float64{0.15, 0.2, 0.25},
		core.StructuredOptions{Solve: solve})
}
