package experiment

import (
	"math"
	"testing"
)

func TestFig14a3D(t *testing.T) {
	rows, _, err := Fig14a3D(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Near positions (depth 0.6/0.8) must stay reasonably accurate.
	for _, r := range rows {
		if r.Antenna.Y <= 0.8 && r.DistErr > 0.05 {
			t.Errorf("%s: dist err %v m", r.Label, r.DistErr)
		}
	}
	// Errors grow with depth (compare the z=0 rows at 0.6 and 1.0 m).
	var near, far Fig14aRow
	for _, r := range rows {
		if r.Antenna.Z != 0 {
			continue
		}
		switch r.Antenna.Y {
		case 0.6:
			near = r
		case 1.0:
			far = r
		}
	}
	if far.DistErr < near.DistErr {
		t.Errorf("error did not grow with depth: near %v, far %v", near.DistErr, far.DistErr)
	}
}

func TestFig14b2DDepth(t *testing.T) {
	rows, _, err := Fig14b2DDepth(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Method+f3(r.Depth)] = r.MeanErr
	}
	// LION must stay flat and usable across the sweep (the paper's claim).
	for _, r := range rows {
		if r.Method == "LION" && r.MeanErr > 0.04 {
			t.Errorf("LION at depth %v: err %v m", r.Depth, r.MeanErr)
		}
	}
	// DAH must degrade with depth: clearly worse at the far end than at the
	// near end.
	if byKey["DAH"+f3(1.6)] < 1.5*byKey["DAH"+f3(0.6)] {
		t.Errorf("DAH did not degrade with depth: near %v, far %v",
			byKey["DAH"+f3(0.6)], byKey["DAH"+f3(1.6)])
	}
}

func TestFig15Weights(t *testing.T) {
	rows, _, err := Fig15Weights(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	wls, ls := rows[0], rows[1]
	if wls.Method != "WLS" || ls.Method != "LS" {
		t.Fatalf("row order: %v, %v", wls.Method, ls.Method)
	}
	if wls.MeanErr > ls.MeanErr*1.15 {
		t.Errorf("WLS (%v) clearly worse than LS (%v)", wls.MeanErr, ls.MeanErr)
	}
	if len(wls.Errors) != len(ls.Errors) {
		t.Error("per-trial error lists unequal")
	}
}

func TestFig16_17Range(t *testing.T) {
	rows, _, err := Fig16_17Range(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The residual-selected range must be among the better-performing ones:
	// its error within 2x of the global minimum.
	bestRes, bestErr := rows[0], rows[0]
	minErr := math.Inf(1)
	for _, r := range rows {
		if r.MeanAbsRes < bestRes.MeanAbsRes {
			bestRes = r
		}
		if r.MeanDistErr < bestErr.MeanDistErr {
			bestErr = r
		}
		if r.MeanDistErr < minErr {
			minErr = r.MeanDistErr
		}
	}
	if bestRes.MeanDistErr > 2*minErr+0.002 {
		t.Errorf("residual picked range %v (err %v) vs best err %v",
			bestRes.Range, bestRes.MeanDistErr, minErr)
	}
}

func TestFig18Interval(t *testing.T) {
	rows, _, err := Fig18Interval(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Large intervals (>= 0.2) must beat the smallest interval on average.
	small := rows[0]
	var largeSum float64
	var largeN int
	for _, r := range rows {
		if r.Interval >= 0.2 {
			largeSum += r.MeanDistErr
			largeN++
		}
	}
	if largeSum/float64(largeN) > small.MeanDistErr {
		t.Errorf("large intervals (%v) no better than 0.1 m (%v)",
			largeSum/float64(largeN), small.MeanDistErr)
	}
}

func TestFig19_20MultiAntenna(t *testing.T) {
	reports, rows, _, err := Fig19_20MultiAntenna(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, rep := range reports {
		// The estimated displacement must resemble the injected one.
		if rep.EstDisplacement.Sub(rep.TrueDisplacement).Norm() > 0.03 {
			t.Errorf("%s displacement: est %v vs true %v",
				rep.ID, rep.EstDisplacement, rep.TrueDisplacement)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, center, full := rows[0].TagErr, rows[1].TagErr, rows[2].TagErr
	// Full calibration must beat no calibration; center-only sits between
	// (allow slack for the coarse fast grid).
	if full > none {
		t.Errorf("full calibration (%v) worse than none (%v)", full, none)
	}
	if center > none+0.01 {
		t.Errorf("center-only (%v) clearly worse than none (%v)", center, none)
	}
}

func TestFig21Turntable(t *testing.T) {
	rows, _, err := Fig21Turntable(fastCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Error shrinks with radius: the largest radius must beat the smallest.
	if rows[3].DistErr > rows[0].DistErr {
		t.Errorf("error did not shrink with radius: r=0.10 %v vs r=0.25 %v",
			rows[0].DistErr, rows[3].DistErr)
	}
	// x error below y error at the largest radius (errors lie along the
	// center→antenna direction, which is y here).
	if rows[3].XErr > rows[3].YErr {
		t.Errorf("x err %v above y err %v at r=0.25", rows[3].XErr, rows[3].YErr)
	}
}
