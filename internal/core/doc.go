// Package core implements LION, the linear localization model of the paper:
//
//   - radical-line (2-D, Eq. 7) and radical-plane (3-D, Eq. 9) equation
//     builders that turn pairs of phase measurements into linear constraints
//     on the target position and the reference distance d_r;
//   - the structured three-line coefficient matrix of Eqs. 10–12;
//   - ordinary and iteratively re-weighted least-squares solvers
//     (Eqs. 13–16) with residual-based Gaussian weights;
//   - lower-dimension recovery of the missing coordinate through d_r
//     (Sec. III-C);
//   - the adaptive scanning-range / interval selection scheme
//     (Sec. IV-C-1); and
//   - phase-center and phase-offset calibration (Sec. IV-C, Eq. 17).
//
// The package is deliberately free of simulation concerns: it consumes
// (position, unwrapped phase) pairs and produces position estimates with
// residual diagnostics. Preprocessing raw wrapped phases into continuous
// profiles is provided by Preprocess, which wraps package dsp.
package core
