package core

import (
	"fmt"
	"math"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/stats"
)

// WeightFloor is the IRWLS weight below which an equation is effectively
// discarded: exp(−d²/2) < 1e-6 corresponds to a residual more than ~5.3σ
// from the mean. The per-iteration trace events report how many rows fell
// below it.
const WeightFloor = 1e-6

// SolveOptions controls the least-squares estimation.
type SolveOptions struct {
	// Weighted enables the iteratively re-weighted least-squares refinement
	// of Eqs. 14–16. When false a single ordinary least-squares solve is
	// performed (Eq. 13).
	Weighted bool
	// MaxIterations bounds the IRWLS refinement. Zero means the default of
	// 10 iterations.
	MaxIterations int
	// Tolerance stops the refinement when the solution moves less than
	// this distance (metres) between iterations. Zero means 1e-6.
	Tolerance float64
	// Trace, when non-nil, records the solve: a span around the estimation
	// plus one event per IRWLS iteration carrying the residual norm, the
	// number of weight-floor hits, and the system's condition estimate. The
	// nil default costs nothing on the hot path.
	Trace *obs.Tracer
	// TraceSpan names this solve's span in the trace; empty means "solve".
	// Adaptive sweeps label each candidate's solve distinctly.
	TraceSpan string
}

func (o SolveOptions) traceSpan() string {
	if o.TraceSpan == "" {
		return "solve"
	}
	return o.TraceSpan
}

// DefaultSolveOptions returns the paper's default configuration: weighted
// least squares.
func DefaultSolveOptions() SolveOptions {
	return SolveOptions{Weighted: true}
}

func (o SolveOptions) maxIter() int {
	if o.MaxIterations <= 0 {
		return 10
	}
	return o.MaxIterations
}

func (o SolveOptions) tol() float64 {
	if o.Tolerance <= 0 {
		return 1e-6
	}
	return o.Tolerance
}

// Solution is the result of solving one localization system.
type Solution struct {
	// Position is the estimated target position. Coordinates whose Known
	// flag is false could not be determined from the linear system (the
	// lower-dimension case) and are NaN until RecoverMissing fills them.
	Position geom.Vec3
	// Known records which coordinates the linear solve determined.
	Known [3]bool
	// Dim is the dimensionality of the system that produced the solution.
	Dim int
	// RefDistance is the estimated reference distance d_r (the first
	// channel's, in the multi-channel case).
	RefDistance float64
	// RefDistances holds every channel's estimated reference distance.
	RefDistances []float64
	// Residuals are the per-equation residuals r_i = A_i·X − k_i at the
	// final estimate.
	Residuals []float64
	// Weights are the final IRWLS weights (all ones for plain LS).
	Weights []float64
	// MeanResidual is the weighted mean residual — the quantity the
	// adaptive parameter selection scheme drives toward zero (Sec. IV-C-1).
	MeanResidual float64
	// MeanAbsResidual and RMSResidual summarise the residual magnitude.
	MeanAbsResidual float64
	RMSResidual     float64
	// Iterations is the number of IRWLS iterations performed.
	Iterations int
	// FinalResidual is the 2-norm of the residual vector at the final
	// estimate, ‖A·X − k‖₂.
	FinalResidual float64
	// ConditionEstimate is a cheap lower-bound estimate of the unweighted
	// system's 2-norm condition number (mat.ConditionEst); large values
	// flag near-degenerate geometry before accuracy visibly collapses.
	ConditionEstimate float64
}

// XY returns the in-plane position estimate.
func (s *Solution) XY() geom.Vec2 { return s.Position.XY() }

// FullyKnown reports whether every coordinate of the system's dimension was
// determined directly.
func (s *Solution) FullyKnown() bool {
	for c := 0; c < s.Dim; c++ {
		if !s.Known[c] {
			return false
		}
	}
	return true
}

// SolveSystem estimates the target position from the linear system.
// Coordinate columns that are (numerically) zero — the lower-dimension case
// of Sec. III-C — are dropped from the solve; the corresponding coordinates
// are reported as unknown and can be recovered with RecoverMissing.
//
// SolveSystem allocates a fresh workspace per call; hot paths that solve in
// a loop should hold a SolveWorkspace and call SolveSystemInto, which is the
// same code with zero steady-state allocations.
func SolveSystem(sys *System, opts SolveOptions) (*Solution, error) {
	var ws SolveWorkspace
	sol := &Solution{}
	if err := SolveSystemInto(&ws, sys, opts, sol); err != nil {
		return nil, err
	}
	return sol, nil
}

// RecoverMissingMedian fills in the single unknown coordinate like
// RecoverMissing, but instead of relying solely on d_r at the reference
// position it forms one distance estimate per observation,
//
//	d̂_t = d_r + Δd_t,
//
// solves the recovery at every observation, and takes the median. Two
// robustness properties follow: a corrupted reference sample biases d_r and
// every Δd_t by opposite amounts, so the per-sample distances are unaffected;
// and a multipath fade corrupting a minority of samples is voted down by the
// median. This is a strict extension of the paper's recovery (with one clean
// reference the two coincide).
func (s *Solution) RecoverMissingMedian(p *Profile, positive bool) error {
	missing, err := s.missingCoordinate()
	if err != nil || missing < 0 {
		return err
	}
	// The unknown coordinate is constant across observations (its
	// coefficient column vanished precisely because every observation
	// shares it), so the per-sample squared offsets can be medianed first
	// and square-rooted once. Taking the median over the *discriminants*
	// keeps negative noise excursions as evidence, which matters when the
	// target sits close to the trajectory's plane or line — discarding them
	// would bias the recovered coordinate away from zero.
	est := [3]float64{s.Position.X, s.Position.Y, s.Position.Z}
	base := [3]float64{p.Obs[0].Pos.X, p.Obs[0].Pos.Y, p.Obs[0].Pos.Z}
	discs := make([]float64, 0, p.Len())
	for t := 0; t < p.Len(); t++ {
		dt := s.RefDistance + p.DeltaDist(t)
		pos := [3]float64{p.Obs[t].Pos.X, p.Obs[t].Pos.Y, p.Obs[t].Pos.Z}
		kss := 0.0
		for c := 0; c < s.Dim; c++ {
			if c == missing {
				continue
			}
			d := est[c] - pos[c]
			kss += d * d
		}
		discs = append(discs, dt*dt-kss)
	}
	if len(discs) < 3 {
		return s.RecoverMissing(p.RefPos(), positive)
	}
	med, err := stats.Median(discs)
	if err != nil {
		return err
	}
	if med < 0 {
		if med < -0.02*s.RefDistance*s.RefDistance {
			return ErrNoSolution
		}
		med = 0
	}
	off := math.Sqrt(med)
	if !positive {
		off = -off
	}
	est[missing] = base[missing] + off
	s.Position = geom.Vec3{X: est[0], Y: est[1], Z: est[2]}
	s.Known[missing] = true
	return nil
}

// missingCoordinate returns the index of the single unknown coordinate, −1
// when everything is known, or ErrDegenerateGeometry when more than one
// coordinate is unknown.
func (s *Solution) missingCoordinate() (int, error) {
	missing := -1
	for c := 0; c < s.Dim; c++ {
		if !s.Known[c] {
			if missing >= 0 {
				return -1, fmt.Errorf("core: more than one unknown coordinate: %w",
					ErrDegenerateGeometry)
			}
			missing = c
		}
	}
	return missing, nil
}

// RecoverMissing fills in the single coordinate that the linear system could
// not determine, using the reference distance d_r (Observation 2 and
// Sec. IV-B-3):
//
//	missing = ref ± √(d_r² − Σ_known (coord − ref)²)
//
// refPos is the tag's reference position (Profile.RefPos). positive selects
// the branch on the positive side of the axis — e.g. "the antenna is above
// the tag trajectory". Small negative discriminants caused by noise are
// clamped to zero; large ones return ErrNoSolution.
func (s *Solution) RecoverMissing(refPos geom.Vec3, positive bool) error {
	missing, err := s.missingCoordinate()
	if err != nil || missing < 0 {
		return err
	}
	ref := [3]float64{refPos.X, refPos.Y, refPos.Z}
	est := [3]float64{s.Position.X, s.Position.Y, s.Position.Z}
	kss := 0.0
	for c := 0; c < s.Dim; c++ {
		if c == missing {
			continue
		}
		d := est[c] - ref[c]
		kss += d * d
	}
	disc := s.RefDistance*s.RefDistance - kss
	if disc < 0 {
		// Tolerate small noise-induced negatives.
		if disc > -0.02*s.RefDistance*s.RefDistance {
			disc = 0
		} else {
			return ErrNoSolution
		}
	}
	off := math.Sqrt(disc)
	if !positive {
		off = -off
	}
	est[missing] = ref[missing] + off
	s.Position = geom.Vec3{X: est[0], Y: est[1], Z: est[2]}
	s.Known[missing] = true
	return nil
}
