package core

import (
	"fmt"

	"github.com/rfid-lion/lion/internal/mat"
)

// Multi-channel localization. Readers outside the paper's fixed-frequency
// China band hop among channels (FCC: 50 channels, 200 ms dwell), and each
// hop re-locks the PLL with a fresh unknown phase offset, so one continuous
// unwrapped profile cannot span a hop. The radical-line model extends
// naturally: keep one reference distance unknown *per channel* and pair
// measurements only within their channel,
//
//	α·x + β·y [+ γ·z] + ω_c·d_r,c = κ      (pair from channel c)
//
// All channels share the target coordinates, so every channel's data
// sharpens the estimate even though their phase references are unrelated.

// ChannelObservations is one channel's measurement set: the channel's
// wavelength plus observations whose phases form a continuous unwrapped
// profile within the channel.
type ChannelObservations struct {
	Lambda float64
	Obs    []PosPhase
}

// BuildMultiChannelSystem stacks per-channel radical-line equations with one
// reference-distance column per channel. pairs[c] indexes into channels[c].
func BuildMultiChannelSystem(channels []ChannelObservations, pairs [][]Pair, dim int) (*System, []*Profile, error) {
	if dim != 2 && dim != 3 {
		return nil, nil, fmt.Errorf("core: dimension %d not supported", dim)
	}
	if len(channels) == 0 || len(pairs) != len(channels) {
		return nil, nil, fmt.Errorf("core: %d channels with %d pair sets: %w",
			len(channels), len(pairs), ErrTooFewObservations)
	}
	profiles := make([]*Profile, len(channels))
	totalRows := 0
	for c, ch := range channels {
		p, err := NewProfile(ch.Obs, ch.Lambda)
		if err != nil {
			return nil, nil, fmt.Errorf("channel %d: %w", c, err)
		}
		profiles[c] = p
		totalRows += len(pairs[c])
	}
	nCols := dim + len(channels)
	if totalRows < nCols {
		return nil, nil, fmt.Errorf("core: %d equations for %d unknowns: %w",
			totalRows, nCols, ErrTooFewObservations)
	}
	a := mat.NewDense(totalRows, nCols)
	k := make([]float64, totalRows)
	row := 0
	for c, p := range profiles {
		for _, pr := range pairs[c] {
			if pr.I < 0 || pr.I >= p.Len() || pr.J < 0 || pr.J >= p.Len() || pr.I == pr.J {
				return nil, nil, fmt.Errorf("core: channel %d invalid pair (%d,%d)",
					c, pr.I, pr.J)
			}
			if dim == 2 {
				r, rhs := p.equation2D(pr)
				a.Set(row, 0, r[0])
				a.Set(row, 1, r[1])
				a.Set(row, dim+c, r[2])
				k[row] = rhs
			} else {
				r, rhs := p.equation3D(pr)
				a.Set(row, 0, r[0])
				a.Set(row, 1, r[1])
				a.Set(row, 2, r[2])
				a.Set(row, dim+c, r[3])
				k[row] = rhs
			}
			row++
		}
	}
	return &System{A: a, K: k, Dim: dim, NumRefs: len(channels)}, profiles, nil
}

// Locate2DMultiChannel estimates a planar target from channel-hopped scans:
// each channel contributes its own continuous profile and reference
// distance, while the coordinates are shared. stride is the within-channel
// pairing stride (as in StridePairs).
func Locate2DMultiChannel(channels []ChannelObservations, stride int, opts SolveOptions) (*Solution, error) {
	pairs := make([][]Pair, len(channels))
	for c, ch := range channels {
		pairs[c] = StridePairs(len(ch.Obs), stride)
	}
	sys, profiles, err := BuildMultiChannelSystem(channels, pairs, 2)
	if err != nil {
		return nil, err
	}
	sol, err := SolveSystem(sys, opts)
	if err != nil {
		return nil, err
	}
	sol.Position.Z = profiles[0].RefPos().Z
	return sol, nil
}

// Locate3DMultiChannel is the spatial analogue of Locate2DMultiChannel.
func Locate3DMultiChannel(channels []ChannelObservations, stride int, opts SolveOptions) (*Solution, error) {
	pairs := make([][]Pair, len(channels))
	for c, ch := range channels {
		pairs[c] = StridePairs(len(ch.Obs), stride)
	}
	sys, _, err := BuildMultiChannelSystem(channels, pairs, 3)
	if err != nil {
		return nil, err
	}
	return SolveSystem(sys, opts)
}

// SplitChannels groups samples by a channel label into per-channel
// observation sets, preserving order. labels[i] tags obs[i]; lambdas maps a
// label to its wavelength.
func SplitChannels(obs []PosPhase, labels []int, lambdas map[int]float64) ([]ChannelObservations, error) {
	if len(obs) != len(labels) {
		return nil, fmt.Errorf("core: %d observations with %d labels: %w",
			len(obs), len(labels), ErrTooFewObservations)
	}
	index := map[int]int{}
	var out []ChannelObservations
	for i, o := range obs {
		label := labels[i]
		ci, ok := index[label]
		if !ok {
			lambda, ok := lambdas[label]
			if !ok {
				return nil, fmt.Errorf("core: no wavelength for channel %d", label)
			}
			ci = len(out)
			index[label] = ci
			out = append(out, ChannelObservations{Lambda: lambda})
		}
		out[ci].Obs = append(out[ci].Obs, o)
	}
	return out, nil
}
