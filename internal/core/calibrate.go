package core

import (
	"errors"
	"math"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// ErrNoSamples is returned when calibration receives no measurements.
var ErrNoSamples = errors.New("core: calibration needs at least one sample")

// CenterCalibration records the phase-center calibration of one antenna
// (Sec. IV-C-1): the displacement between the manually measured physical
// center and the estimated phase center.
type CenterCalibration struct {
	AntennaID       string
	PhysicalCenter  geom.Vec3
	EstimatedCenter geom.Vec3
}

// Displacement returns the center displacement vector (estimated − physical).
func (c CenterCalibration) Displacement() geom.Vec3 {
	return c.EstimatedCenter.Sub(c.PhysicalCenter)
}

// DisplacementNorm returns the magnitude of the center displacement.
func (c CenterCalibration) DisplacementNorm() float64 {
	return c.Displacement().Norm()
}

// PhaseOffset estimates Δθ = θ_T + θ_R (Eq. 17): the constant rotation
// between the distance-induced phase θ_d = 4π·d/λ and the measured wrapped
// phase, averaged over the samples. center must be the *calibrated* phase
// center of the antenna. The mean is circular, which makes the estimate
// robust to the 2π wrap that a plain arithmetic mean would trip over. The
// result is in [0, 2π).
//
// Sign convention: the reported phase satisfies
// measured = (θ_d + Δθ) mod 2π, i.e. Δθ = measured − θ_d.
func PhaseOffset(positions []geom.Vec3, wrapped []float64, center geom.Vec3, lambda float64) (float64, error) {
	if lambda <= 0 {
		return 0, ErrBadLambda
	}
	if len(positions) == 0 || len(positions) != len(wrapped) {
		return 0, ErrNoSamples
	}
	var sumSin, sumCos float64
	for i, pos := range positions {
		d := center.Dist(pos)
		diff := wrapped[i] - rf.PhaseOfDistance(d, lambda)
		s, c := math.Sincos(diff)
		sumSin += s
		sumCos += c
	}
	if sumSin == 0 && sumCos == 0 {
		return 0, errors.New("core: phase offset is ambiguous (antipodal samples)")
	}
	return rf.WrapPhase(math.Atan2(sumSin, sumCos)), nil
}

// ApplyPhaseOffset removes a calibrated offset from a wrapped measurement,
// returning the distance-only phase in [0, 2π).
func ApplyPhaseOffset(measured, offset float64) float64 {
	return rf.WrapPhase(measured - offset)
}

// RelativeOffset returns the wrapped difference of two device offsets, the
// quantity multi-antenna systems need to align their phase references
// (Sec. IV-C-2).
func RelativeOffset(offsetA, offsetB float64) float64 {
	return rf.WrapPhase(offsetA - offsetB)
}
