package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/mat"
	"github.com/rfid-lion/lion/internal/stats"
)

// SolveWorkspace is the caller-owned scratch for SolveSystemInto. One
// workspace serves any number of sequential solves; after the first call
// sizes the buffers, a steady stream of same-shaped systems solves with
// zero heap allocations. A workspace must not be shared between goroutines
// without external serialization — stream sessions own one each.
//
// The zero value is ready to use.
type SolveWorkspace struct {
	ls      mat.Workspace
	reduced mat.Dense
	keep    []int
	x       []float64 // current iterate (owned copy, survives ls scratch reuse)
	weights []float64
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// SolveSystemInto is the workspace form of SolveSystem: identical
// arithmetic, routed through ws scratch, with the result written into sol.
// The Solution's slices (Residuals, Weights, RefDistances) are owned by sol
// itself — they are appended into sol's existing backing arrays, never
// aliased to workspace scratch — so callers may retain or mutate a Solution
// freely without corrupting later solves that reuse the same workspace.
// SolveSystem delegates here, which keeps the two entry points bit-identical
// by construction.
func SolveSystemInto(ws *SolveWorkspace, sys *System, opts SolveOptions, sol *Solution) error {
	defer opts.Trace.Span(opts.traceSpan())()
	numRefs := sys.NumRefs
	if numRefs <= 0 {
		numRefs = 1
	}
	nCols := sys.Dim + numRefs
	if sys.A.Cols() != nCols {
		return fmt.Errorf("core: system has %d columns, want %d: %w",
			sys.A.Cols(), nCols, mat.ErrShape)
	}
	rows := sys.A.Rows()

	// Detect zero coordinate columns relative to the matrix scale.
	scale := sys.A.MaxAbs()
	if scale == 0 {
		return ErrDegenerateGeometry
	}
	tol := 1e-9 * scale
	ws.keep = ws.keep[:0]
	known := [3]bool{}
	for c := 0; c < sys.Dim; c++ {
		colMax := 0.0
		for r := 0; r < rows; r++ {
			if v := math.Abs(sys.A.At(r, c)); v > colMax {
				colMax = v
			}
		}
		if colMax > tol {
			ws.keep = append(ws.keep, c)
			known[c] = true
		}
	}
	if len(ws.keep) == 0 {
		return ErrDegenerateGeometry
	}
	for r := 0; r < numRefs; r++ {
		ws.keep = append(ws.keep, sys.Dim+r) // reference-distance columns always kept
	}

	a := sys.A
	if len(ws.keep) != nCols {
		ws.reduced.Reshape(rows, len(ws.keep))
		for r := 0; r < rows; r++ {
			for ci, c := range ws.keep {
				ws.reduced.Set(r, ci, sys.A.At(r, c))
			}
		}
		a = &ws.reduced
	}

	if rows < len(ws.keep) {
		return ErrTooFewObservations
	}

	x0, err := ws.ls.LeastSquares(a, sys.K)
	if err != nil {
		if errors.Is(err, mat.ErrSingular) {
			return fmt.Errorf("%w: %v", ErrDegenerateGeometry, err)
		}
		return fmt.Errorf("least squares: %w", err)
	}
	// x0 aliases ls scratch that the IRLS calls below overwrite; keep the
	// iterate in workspace-owned storage.
	ws.x = append(ws.x[:0], x0...)

	// One condition estimate per solve, on the unweighted reduced system —
	// cheap next to the IRWLS loop and enough to flag near-degenerate
	// geometry in both the Solution and every iteration's trace event.
	condEst := ws.ls.ConditionEst(a)

	ws.weights = growFloats(ws.weights, rows)
	for i := range ws.weights {
		ws.weights[i] = 1
	}
	iterations, err := irlsRefine(&ws.ls, a, sys.K, &ws.x, ws.weights, opts, condEst)
	if err != nil {
		return err
	}

	res, err := ws.ls.Residuals(a, ws.x, sys.K)
	if err != nil {
		return fmt.Errorf("residuals: %w", err)
	}

	fillSolution(sol, sys.Dim, numRefs, known, ws.keep, ws.x, res, ws.weights,
		iterations, condEst)
	return nil
}

// irlsRefine runs the IRWLS refinement of Eqs. 14–16 over the reduced
// system: weights exp(−d²/2) from standardised residuals, re-solve, repeat
// until the iterate moves less than the tolerance. xp points at the
// workspace-owned iterate and is updated in place (the slice may be
// re-appended); weights must be pre-initialised to ones and is overwritten.
// Both SolveSystemInto and the incremental LineSession route through this
// one loop, which is what keeps their IRLS arithmetic identical.
func irlsRefine(ls *mat.Workspace, a *mat.Dense, k []float64, xp *[]float64,
	weights []float64, opts SolveOptions, condEst float64) (int, error) {
	iterations := 0
	if !opts.Weighted {
		return 0, nil
	}
	x := *xp
	defer func() { *xp = x }()
	for iterations < opts.maxIter() {
		res, rerr := ls.Residuals(a, x, k)
		if rerr != nil {
			return iterations, fmt.Errorf("residuals: %w", rerr)
		}
		mu, sigma := stats.MeanStd(res)
		if sigma == 0 {
			break // exact fit: all weights stay 1
		}
		floorHits := 0
		for i, r := range res {
			d := (r - mu) / sigma
			weights[i] = math.Exp(-d * d / 2) // Eq. 15
			if weights[i] < WeightFloor {
				floorHits++
			}
		}
		xNew, werr := ls.WeightedLeastSquares(a, k, weights)
		if werr != nil {
			if errors.Is(werr, mat.ErrSingular) {
				return iterations, fmt.Errorf("%w: %v", ErrDegenerateGeometry, werr)
			}
			return iterations, fmt.Errorf("weighted least squares: %w", werr)
		}
		iterations++
		opts.Trace.IRLSIter(opts.traceSpan(), iterations, mat.Norm2(res), floorHits, condEst)
		moved := 0.0
		for i := range x {
			if d := math.Abs(xNew[i] - x[i]); d > moved {
				moved = d
			}
		}
		x = append(x[:0], xNew...)
		if moved < opts.tol() {
			break
		}
	}
	return iterations, nil
}

// fillSolution populates sol from the reduced solve results, copying every
// slice into sol-owned backing storage. Shared by SolveSystemInto and the
// incremental line session so the scatter/summary arithmetic has exactly one
// definition.
func fillSolution(sol *Solution, dim, numRefs int, known [3]bool, keep []int,
	x, res, weights []float64, iterations int, condEst float64) {
	sol.Known = known
	sol.Dim = dim
	sol.Residuals = append(sol.Residuals[:0], res...)
	sol.Weights = append(sol.Weights[:0], weights...)
	sol.Iterations = iterations
	sol.FinalResidual = mat.Norm2(res)
	sol.ConditionEstimate = condEst

	// Scatter the reduced solution back onto (x, y, z, d_r...).
	coords := [3]float64{math.NaN(), math.NaN(), math.NaN()}
	sol.RefDistances = growFloats(sol.RefDistances, numRefs)
	for i := range sol.RefDistances {
		sol.RefDistances[i] = 0
	}
	for xi, c := range keep {
		if c >= dim {
			sol.RefDistances[c-dim] = x[xi]
		} else {
			coords[c] = x[xi]
		}
	}
	sol.RefDistance = sol.RefDistances[0]
	if dim == 2 {
		coords[2] = 0
	}
	sol.Position = geom.Vec3{X: coords[0], Y: coords[1], Z: coords[2]}

	var wSum, wrSum float64
	for i, r := range res {
		wSum += weights[i]
		wrSum += weights[i] * r
	}
	sol.MeanResidual = 0
	if wSum > 0 {
		sol.MeanResidual = wrSum / wSum
	}
	sol.MeanAbsResidual = stats.MeanAbs(res)
	sol.RMSResidual = stats.RMS(res)
}
