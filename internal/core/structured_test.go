package core

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
)

// genThreeLine synthesises a Fig. 11 scan for a target at ant: three
// parallel x-lines with the given spacings, all phases on one continuous
// unwrapped profile.
func genThreeLine(ant geom.Vec3, xMin, xMax, yo, zo float64, nPerLine int, noiseStd float64, rng *stats.RNG) ThreeLineInput {
	mkLine := func(y, z float64) []PosPhase {
		positions := make([]geom.Vec3, nPerLine)
		for i := range positions {
			x := xMin + (xMax-xMin)*float64(i)/float64(nPerLine-1)
			positions[i] = geom.V3(x, y, z)
		}
		return genObs(ant, positions, noiseStd, 0, rng)
	}
	return ThreeLineInput{
		L1:     mkLine(0, 0),
		L2:     mkLine(0, zo),
		L3:     mkLine(-yo, 0),
		Lambda: testLambda,
	}
}

func genTwoLine(ant geom.Vec3, xMin, xMax, yo float64, nPerLine int, noiseStd float64, rng *stats.RNG) TwoLineInput {
	mkLine := func(y float64) []PosPhase {
		positions := make([]geom.Vec3, nPerLine)
		for i := range positions {
			x := xMin + (xMax-xMin)*float64(i)/float64(nPerLine-1)
			positions[i] = geom.V3(x, y, 0)
		}
		return genObs(ant, positions, noiseStd, 0, rng)
	}
	return TwoLineInput{L1: mkLine(0), L2: mkLine(-yo), Lambda: testLambda}
}

func TestLocateThreeLineNoiseless(t *testing.T) {
	ant := geom.V3(0.05, 0.8, 0.1)
	in := genThreeLine(ant, -0.6, 0.6, 0.2, 0.2, 200, 0, nil)
	sol, err := LocateThreeLine(in, DefaultStructuredOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-4 {
		t.Errorf("error %v m (got %v)", got, sol.Position)
	}
	if !sol.FullyKnown() {
		t.Error("three-line solve should determine all coordinates")
	}
}

func TestLocateThreeLineNoisy(t *testing.T) {
	rng := stats.NewRNG(5)
	ant := geom.V3(0, 0.8, 0.2)
	var errSum float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		in := genThreeLine(ant, -0.6, 0.6, 0.2, 0.2, 300, 0.1, rng)
		sol, err := LocateThreeLine(in, DefaultStructuredOptions())
		if err != nil {
			t.Fatal(err)
		}
		errSum += sol.Position.Dist(ant)
	}
	// The paper reports ~2.3 cm average 3-D error; allow generous slack.
	if avg := errSum / trials; avg > 0.05 {
		t.Errorf("average 3-D error %v m", avg)
	}
}

func TestLocateThreeLineValidation(t *testing.T) {
	ant := geom.V3(0, 0.8, 0)
	in := genThreeLine(ant, -0.5, 0.5, 0.2, 0.2, 100, 0, nil)
	bad := in
	bad.L1 = nil
	if _, err := LocateThreeLine(bad, DefaultStructuredOptions()); err == nil {
		t.Error("missing L1 accepted")
	}
	opts := DefaultStructuredOptions()
	opts.Interval = 0
	if _, err := LocateThreeLine(in, opts); err == nil {
		t.Error("zero interval accepted")
	}
	opts = DefaultStructuredOptions()
	opts.ScanRange = 0.01 // grid collapses
	if _, err := LocateThreeLine(in, opts); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("tiny range err = %v", err)
	}
}

func TestLocateTwoLineRecoversZ(t *testing.T) {
	ant := geom.V3(0, 0.7, 0.25)
	in := genTwoLine(ant, -0.5, 0.5, 0.2, 200, 0, nil)
	sol, err := LocateTwoLine(in, true, DefaultStructuredOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-4 {
		t.Errorf("error %v m (got %v)", got, sol.Position)
	}
	// Below-plane branch mirrors z.
	sol2, err := LocateTwoLine(in, false, DefaultStructuredOptions())
	if err != nil {
		t.Fatal(err)
	}
	mirror := geom.V3(ant.X, ant.Y, -ant.Z)
	if got := sol2.Position.Dist(mirror); got > 1e-4 {
		t.Errorf("mirror error %v m (got %v)", got, sol2.Position)
	}
}

func TestLocateTwoLineDepthSensitivity(t *testing.T) {
	// Fig. 14a: with only Δy = 0.2 m of diversity, accuracy degrades as
	// depth grows. Verify the trend under noise.
	rng := stats.NewRNG(11)
	avgErr := func(depth float64) float64 {
		ant := geom.V3(0, depth, 0.2)
		var sum float64
		const trials = 8
		for i := 0; i < trials; i++ {
			in := genTwoLine(ant, -0.6, 0.6, 0.2, 240, 0.1, rng)
			sol, err := LocateTwoLine(in, true, DefaultStructuredOptions())
			if err != nil {
				t.Fatal(err)
			}
			sum += sol.Position.Dist(ant)
		}
		return sum / trials
	}
	near := avgErr(0.6)
	far := avgErr(1.4)
	if far < near {
		t.Errorf("error did not grow with depth: near %v, far %v", near, far)
	}
}

func TestAdaptiveThreeLineSelectsReasonableParams(t *testing.T) {
	rng := stats.NewRNG(17)
	ant := geom.V3(0, 0.8, 0.1)
	in := genThreeLine(ant, -0.6, 0.6, 0.2, 0.2, 300, 0.1, rng)
	res, err := AdaptiveLocateThreeLine(in,
		[]float64{0.6, 0.8, 1.0},
		[]float64{0.1, 0.2, 0.3},
		StructuredOptions{Solve: DefaultSolveOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) == 0 {
		t.Fatal("nothing selected")
	}
	if len(res.All) != 9 {
		t.Fatalf("sweep size = %d, want 9", len(res.All))
	}
	if got := res.Position.Dist(ant); got > 0.06 {
		t.Errorf("adaptive error %v m (got %v)", got, res.Position)
	}
}

func TestAdaptiveEmptySweeps(t *testing.T) {
	in := ThreeLineInput{Lambda: testLambda}
	if _, err := AdaptiveLocateThreeLine(in, nil, []float64{0.2}, StructuredOptions{}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("empty ranges err = %v", err)
	}
	if _, err := AdaptiveLocate2DLine(nil, testLambda, nil, true, SolveOptions{}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("empty intervals err = %v", err)
	}
}

func TestSelectByResidual(t *testing.T) {
	mk := func(pos geom.Vec3, mr float64) Candidate {
		return Candidate{Solution: &Solution{Position: pos, MeanResidual: mr}}
	}
	cands := []Candidate{
		mk(geom.V3(1, 0, 0), 0.001),
		mk(geom.V3(1.1, 0, 0), 0.0012),
		mk(geom.V3(5, 5, 5), 0.5), // bad: excluded
		{Err: errors.New("boom")}, // failed: excluded
		{Solution: &Solution{Position: geom.V3(math.NaN(), 0, 0), MeanResidual: 0}}, // NaN: excluded
	}
	res, err := SelectByResidual(cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %d, want 2", len(res.Selected))
	}
	if got := res.Position.Dist(geom.V3(1.05, 0, 0)); got > 1e-9 {
		t.Errorf("averaged position = %v", res.Position)
	}
	if _, err := SelectByResidual([]Candidate{{Err: errors.New("x")}}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("all-failed err = %v", err)
	}
}

func TestAdaptiveLocate2DLine(t *testing.T) {
	rng := stats.NewRNG(23)
	ant := geom.V3(0.2, 1, 0)
	positions := make([]geom.Vec3, 200)
	for i := range positions {
		positions[i] = geom.V3(-0.5+float64(i)/199, 0, 0)
	}
	obs := genObs(ant, positions, 0.1, 0, rng)
	res, err := AdaptiveLocate2DLine(obs, testLambda,
		[]float64{0.1, 0.15, 0.2, 0.25, 0.3}, true, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Position.Dist(ant); got > 0.03 {
		t.Errorf("adaptive 2-D error %v m", got)
	}
}

func TestPhaseOffsetCalibration(t *testing.T) {
	center := geom.V3(0, 1, 0)
	const trueOffset = 3.98 // paper's A1 offset
	positions := []geom.Vec3{
		geom.V3(-0.3, 0, 0), geom.V3(0, 0, 0), geom.V3(0.3, 0, 0), geom.V3(0.1, 0.2, 0),
	}
	wrapped := make([]float64, len(positions))
	for i, p := range positions {
		wrapped[i] = rf.WrapPhase(rf.PhaseOfDistance(center.Dist(p), testLambda) + trueOffset)
	}
	got, err := PhaseOffset(positions, wrapped, center, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rf.WrapPhaseSigned(got-trueOffset)) > 1e-9 {
		t.Errorf("offset = %v, want %v", got, rf.WrapPhase(trueOffset))
	}
}

func TestPhaseOffsetCircularMeanAcrossWrap(t *testing.T) {
	// Offsets straddling the 0/2π boundary break an arithmetic mean but not
	// a circular one.
	center := geom.V3(0, 1, 0)
	rng := stats.NewRNG(31)
	const trueOffset = 0.05
	n := 500
	positions := make([]geom.Vec3, n)
	wrapped := make([]float64, n)
	for i := range positions {
		positions[i] = geom.V3(rng.Uniform(-0.5, 0.5), 0, 0)
		noisy := rf.PhaseOfDistance(center.Dist(positions[i]), testLambda) +
			trueOffset + rng.Normal(0, 0.2)
		wrapped[i] = rf.WrapPhase(noisy)
	}
	got, err := PhaseOffset(positions, wrapped, center, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rf.WrapPhaseSigned(got-trueOffset)) > 0.05 {
		t.Errorf("offset = %v, want ~%v", got, trueOffset)
	}
}

func TestPhaseOffsetValidation(t *testing.T) {
	if _, err := PhaseOffset(nil, nil, geom.Vec3{}, testLambda); !errors.Is(err, ErrNoSamples) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := PhaseOffset([]geom.Vec3{{}}, nil, geom.Vec3{}, testLambda); !errors.Is(err, ErrNoSamples) {
		t.Errorf("mismatch err = %v", err)
	}
	if _, err := PhaseOffset([]geom.Vec3{{}}, []float64{1}, geom.Vec3{}, 0); !errors.Is(err, ErrBadLambda) {
		t.Errorf("lambda err = %v", err)
	}
}

func TestApplyAndRelativeOffset(t *testing.T) {
	if got := ApplyPhaseOffset(1.0, 0.3); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("ApplyPhaseOffset = %v", got)
	}
	if got := ApplyPhaseOffset(0.1, 0.3); math.Abs(got-(2*math.Pi-0.2)) > 1e-12 {
		t.Errorf("wrapped ApplyPhaseOffset = %v", got)
	}
	if got := RelativeOffset(4.07, 2.74); math.Abs(got-1.33) > 1e-12 {
		t.Errorf("RelativeOffset = %v", got)
	}
}

func TestCenterCalibration(t *testing.T) {
	c := CenterCalibration{
		AntennaID:       "A1",
		PhysicalCenter:  geom.V3(0, 0, 1),
		EstimatedCenter: geom.V3(0.02, -0.01, 1.02),
	}
	if got := c.Displacement(); got.Sub(geom.V3(0.02, -0.01, 0.02)).Norm() > 1e-12 {
		t.Errorf("Displacement = %v", got)
	}
	want := math.Sqrt(0.02*0.02 + 0.01*0.01 + 0.02*0.02)
	if got := c.DisplacementNorm(); math.Abs(got-want) > 1e-12 {
		t.Errorf("DisplacementNorm = %v", got)
	}
}

func TestFullCalibrationPipeline(t *testing.T) {
	// End-to-end: simulate an antenna whose phase center is displaced from
	// its physical center and whose hardware adds a constant offset. The
	// pipeline must recover both.
	rng := stats.NewRNG(41)
	physical := geom.V3(0, 0.8, 0)
	displacement := geom.V3(0.025, 0.01, -0.02)
	truePhaseCenter := physical.Add(displacement)
	const hwOffset = 2.74

	// Three-line scan with phases generated from the *true* phase center
	// plus the hardware offset.
	mkLine := func(y, z float64, n int) ([]geom.Vec3, []PosPhase) {
		positions := make([]geom.Vec3, n)
		for i := range positions {
			positions[i] = geom.V3(-0.6+1.2*float64(i)/float64(n-1), y, z)
		}
		obs := make([]PosPhase, n)
		for i, p := range positions {
			theta := rf.PhaseOfDistance(truePhaseCenter.Dist(p), testLambda) +
				hwOffset + rng.Normal(0, 0.05)
			obs[i] = PosPhase{Pos: p, Theta: theta}
		}
		return positions, obs
	}
	_, l1 := mkLine(0, 0, 300)
	_, l2 := mkLine(0, 0.2, 300)
	_, l3 := mkLine(-0.2, 0, 300)
	in := ThreeLineInput{L1: l1, L2: l2, L3: l3, Lambda: testLambda}
	sol, err := LocateThreeLine(in, DefaultStructuredOptions())
	if err != nil {
		t.Fatal(err)
	}
	calib := CenterCalibration{
		AntennaID:       "A1",
		PhysicalCenter:  physical,
		EstimatedCenter: sol.Position,
	}
	if got := calib.EstimatedCenter.Dist(truePhaseCenter); got > 0.03 {
		t.Errorf("estimated center off by %v m", got)
	}
	if got := calib.Displacement().Sub(displacement).Norm(); got > 0.03 {
		t.Errorf("displacement off by %v m", got)
	}
	// Offset calibration against the estimated center.
	positions := make([]geom.Vec3, 0, len(l1))
	wrapped := make([]float64, 0, len(l1))
	for _, o := range l1 {
		positions = append(positions, o.Pos)
		wrapped = append(wrapped, rf.WrapPhase(o.Theta))
	}
	offset, err := PhaseOffset(positions, wrapped, calib.EstimatedCenter, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rf.WrapPhaseSigned(offset-hwOffset)) > 0.35 {
		t.Errorf("offset = %v, want ~%v", offset, hwOffset)
	}
}
