package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/rfid-lion/lion/internal/batch"
	"github.com/rfid-lion/lion/internal/geom"
	lionobs "github.com/rfid-lion/lion/internal/obs"
)

// ErrNoCandidates is returned when no parameter combination produced a
// usable solution.
var ErrNoCandidates = errors.New("core: no parameter combination produced a solution")

// Candidate is one parameter combination evaluated by the adaptive scheme.
type Candidate struct {
	ScanRange float64
	Interval  float64
	Solution  *Solution
	Err       error
}

// AdaptiveResult is the outcome of the adaptive parameter selection scheme
// (Sec. IV-C-1): the averaged position of the selected candidates plus the
// full sweep for inspection.
type AdaptiveResult struct {
	// Position is the average of the selected candidates' estimates.
	Position geom.Vec3
	// Selected are the candidates whose |mean residual| was closest to
	// zero.
	Selected []Candidate
	// All is the full sweep, including failures.
	All []Candidate
}

// selectionSlack is the multiplicative band above the best |mean residual|
// within which candidates are still averaged. The paper selects "the
// estimations with absolute residual around zero"; a tight band around the
// minimum realises that rule deterministically.
const selectionSlack = 1.5

// SelectByResidual implements the paper's rule on an existing sweep: keep
// the candidates whose |mean residual| is within a small band of the best,
// and average their positions.
func SelectByResidual(cands []Candidate) (*AdaptiveResult, error) {
	best := math.Inf(1)
	for _, c := range cands {
		if c.Err != nil || c.Solution == nil || !c.Solution.Position.IsFinite() {
			continue
		}
		if r := math.Abs(c.Solution.MeanResidual); r < best {
			best = r
		}
	}
	if math.IsInf(best, 1) {
		return nil, ErrNoCandidates
	}
	limit := best*selectionSlack + 1e-12
	res := &AdaptiveResult{All: cands}
	var sum geom.Vec3
	for _, c := range cands {
		if c.Err != nil || c.Solution == nil || !c.Solution.Position.IsFinite() {
			continue
		}
		if math.Abs(c.Solution.MeanResidual) <= limit {
			res.Selected = append(res.Selected, c)
			sum = sum.Add(c.Solution.Position)
		}
	}
	res.Position = sum.Scale(1 / float64(len(res.Selected)))
	return res, nil
}

// SelectByAbsResidual ranks candidates by their mean *absolute* residual and
// averages the best band. The signed-mean rule of SelectByResidual detects
// systematic bias; this variant detects bursty corruption (multipath fades),
// where the offending samples inflate the residual magnitude but cancel in
// the signed mean.
func SelectByAbsResidual(cands []Candidate) (*AdaptiveResult, error) {
	best := math.Inf(1)
	for _, c := range cands {
		if c.Err != nil || c.Solution == nil || !c.Solution.Position.IsFinite() {
			continue
		}
		if r := c.Solution.MeanAbsResidual; r < best {
			best = r
		}
	}
	if math.IsInf(best, 1) {
		return nil, ErrNoCandidates
	}
	limit := best*selectionSlack + 1e-12
	res := &AdaptiveResult{All: cands}
	var sum geom.Vec3
	for _, c := range cands {
		if c.Err != nil || c.Solution == nil || !c.Solution.Position.IsFinite() {
			continue
		}
		if c.Solution.MeanAbsResidual <= limit {
			res.Selected = append(res.Selected, c)
			sum = sum.Add(c.Solution.Position)
		}
	}
	res.Position = sum.Scale(1 / float64(len(res.Selected)))
	return res, nil
}

// gridSpec is one (range, interval) cell of an adaptive sweep, in the
// deterministic row-major order the serial loops used: ranges outer,
// intervals inner.
type gridSpec struct {
	scanRange float64
	interval  float64
}

func gridSpecs(ranges, intervals []float64) []gridSpec {
	specs := make([]gridSpec, 0, len(ranges)*len(intervals))
	for _, rg := range ranges {
		for _, iv := range intervals {
			specs = append(specs, gridSpec{scanRange: rg, interval: iv})
		}
	}
	return specs
}

// sweep evaluates every candidate with eval. Each candidate is an
// independent solve, so the sweep fans out across a batch worker pool;
// results land in the slice slot matching their candidate index, which keeps
// the output bit-identical to a serial loop (ties in SelectByResidual are
// broken by candidate order, i.e. deterministically by index). workers ≤ 1
// runs serially on the calling goroutine; workers == 0 uses GOMAXPROCS.
// A non-nil tracer receives one candidate event per evaluated cell with the
// weighted mean residual the selection rule ranks by.
func sweep(specs []gridSpec, workers int, tr *lionobs.Tracer, eval func(gridSpec) (*Solution, error)) []Candidate {
	cands := make([]Candidate, len(specs))
	fill := func(i int) {
		sol, err := eval(specs[i])
		cands[i] = Candidate{
			ScanRange: specs[i].scanRange,
			Interval:  specs[i].interval,
			Solution:  sol,
			Err:       err,
		}
		wres := 0.0
		if sol != nil {
			wres = sol.MeanResidual
		}
		tr.Candidate("adaptive", specs[i].scanRange, specs[i].interval, wres, err)
	}
	if workers == 1 || len(specs) < 2 {
		for i := range specs {
			fill(i)
		}
		return cands
	}
	jobs := make([]batch.Job, len(specs))
	for i := range specs {
		i := i
		jobs[i] = func(context.Context) (any, error) {
			fill(i)
			return nil, nil
		}
	}
	batch.New(batch.Options{Workers: workers}).Run(context.Background(), jobs)
	return cands
}

// AdaptiveLocateThreeLine sweeps the scanning range and interval over the
// given values, runs the structured three-line localization for each
// combination in parallel, and fuses the estimates with SelectByResidual.
// base provides the grid step and solve options shared by all combinations.
func AdaptiveLocateThreeLine(in ThreeLineInput, ranges, intervals []float64, base StructuredOptions) (*AdaptiveResult, error) {
	return AdaptiveLocateThreeLineWorkers(in, ranges, intervals, base, 0)
}

// AdaptiveLocateThreeLineWorkers is AdaptiveLocateThreeLine with an explicit
// pool size: 0 means GOMAXPROCS, 1 forces the serial path. Both paths return
// bit-identical results.
func AdaptiveLocateThreeLineWorkers(in ThreeLineInput, ranges, intervals []float64, base StructuredOptions, workers int) (*AdaptiveResult, error) {
	if len(ranges) == 0 || len(intervals) == 0 {
		return nil, ErrNoCandidates
	}
	tr := base.Solve.Trace
	defer tr.Span("adaptive_three_line")()
	cands := sweep(gridSpecs(ranges, intervals), workers, tr, func(s gridSpec) (*Solution, error) {
		opts := base
		opts.ScanRange = s.scanRange
		opts.Interval = s.interval
		opts.Solve.TraceSpan = candidateSpan(tr, s)
		return LocateThreeLine(in, opts)
	})
	return SelectByResidual(cands)
}

// candidateSpan labels one candidate's solve span; building the label is
// skipped entirely when tracing is off.
func candidateSpan(tr *lionobs.Tracer, s gridSpec) string {
	if !tr.Enabled() {
		return ""
	}
	return fmt.Sprintf("cand[range=%g,interval=%g]", s.scanRange, s.interval)
}

// AdaptiveLocateTwoLine is the two-line analogue of AdaptiveLocateThreeLine.
func AdaptiveLocateTwoLine(in TwoLineInput, abovePlane bool, ranges, intervals []float64, base StructuredOptions) (*AdaptiveResult, error) {
	return AdaptiveLocateTwoLineWorkers(in, abovePlane, ranges, intervals, base, 0)
}

// AdaptiveLocateTwoLineWorkers is AdaptiveLocateTwoLine with an explicit
// pool size: 0 means GOMAXPROCS, 1 forces the serial path.
func AdaptiveLocateTwoLineWorkers(in TwoLineInput, abovePlane bool, ranges, intervals []float64, base StructuredOptions, workers int) (*AdaptiveResult, error) {
	if len(ranges) == 0 || len(intervals) == 0 {
		return nil, ErrNoCandidates
	}
	tr := base.Solve.Trace
	defer tr.Span("adaptive_two_line")()
	cands := sweep(gridSpecs(ranges, intervals), workers, tr, func(s gridSpec) (*Solution, error) {
		opts := base
		opts.ScanRange = s.scanRange
		opts.Interval = s.interval
		opts.Solve.TraceSpan = candidateSpan(tr, s)
		return LocateTwoLine(in, abovePlane, opts)
	})
	return SelectByResidual(cands)
}

// AdaptiveLocate2DLine sweeps the pairing interval for the single-line 2-D
// case and fuses the estimates with SelectByResidual.
func AdaptiveLocate2DLine(obs []PosPhase, lambda float64, intervals []float64, positiveSide bool, opts SolveOptions) (*AdaptiveResult, error) {
	return AdaptiveLocate2DLineWorkers(obs, lambda, intervals, positiveSide, opts, 0)
}

// AdaptiveLocate2DLineWorkers is AdaptiveLocate2DLine with an explicit pool
// size: 0 means GOMAXPROCS, 1 forces the serial path.
func AdaptiveLocate2DLineWorkers(obs []PosPhase, lambda float64, intervals []float64, positiveSide bool, opts SolveOptions, workers int) (*AdaptiveResult, error) {
	if len(intervals) == 0 {
		return nil, ErrNoCandidates
	}
	tr := opts.Trace
	defer tr.Span("adaptive_line_2d")()
	specs := make([]gridSpec, len(intervals))
	for i, iv := range intervals {
		specs[i] = gridSpec{interval: iv}
	}
	cands := sweep(specs, workers, tr, func(s gridSpec) (*Solution, error) {
		o := opts
		o.TraceSpan = candidateSpan(tr, s)
		return Locate2DLine(obs, lambda, s.interval, positiveSide, o)
	})
	return SelectByResidual(cands)
}
