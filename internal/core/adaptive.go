package core

import (
	"errors"
	"math"

	"github.com/rfid-lion/lion/internal/geom"
)

// ErrNoCandidates is returned when no parameter combination produced a
// usable solution.
var ErrNoCandidates = errors.New("core: no parameter combination produced a solution")

// Candidate is one parameter combination evaluated by the adaptive scheme.
type Candidate struct {
	ScanRange float64
	Interval  float64
	Solution  *Solution
	Err       error
}

// AdaptiveResult is the outcome of the adaptive parameter selection scheme
// (Sec. IV-C-1): the averaged position of the selected candidates plus the
// full sweep for inspection.
type AdaptiveResult struct {
	// Position is the average of the selected candidates' estimates.
	Position geom.Vec3
	// Selected are the candidates whose |mean residual| was closest to
	// zero.
	Selected []Candidate
	// All is the full sweep, including failures.
	All []Candidate
}

// selectionSlack is the multiplicative band above the best |mean residual|
// within which candidates are still averaged. The paper selects "the
// estimations with absolute residual around zero"; a tight band around the
// minimum realises that rule deterministically.
const selectionSlack = 1.5

// SelectByResidual implements the paper's rule on an existing sweep: keep
// the candidates whose |mean residual| is within a small band of the best,
// and average their positions.
func SelectByResidual(cands []Candidate) (*AdaptiveResult, error) {
	best := math.Inf(1)
	for _, c := range cands {
		if c.Err != nil || c.Solution == nil || !c.Solution.Position.IsFinite() {
			continue
		}
		if r := math.Abs(c.Solution.MeanResidual); r < best {
			best = r
		}
	}
	if math.IsInf(best, 1) {
		return nil, ErrNoCandidates
	}
	limit := best*selectionSlack + 1e-12
	res := &AdaptiveResult{All: cands}
	var sum geom.Vec3
	for _, c := range cands {
		if c.Err != nil || c.Solution == nil || !c.Solution.Position.IsFinite() {
			continue
		}
		if math.Abs(c.Solution.MeanResidual) <= limit {
			res.Selected = append(res.Selected, c)
			sum = sum.Add(c.Solution.Position)
		}
	}
	res.Position = sum.Scale(1 / float64(len(res.Selected)))
	return res, nil
}

// SelectByAbsResidual ranks candidates by their mean *absolute* residual and
// averages the best band. The signed-mean rule of SelectByResidual detects
// systematic bias; this variant detects bursty corruption (multipath fades),
// where the offending samples inflate the residual magnitude but cancel in
// the signed mean.
func SelectByAbsResidual(cands []Candidate) (*AdaptiveResult, error) {
	best := math.Inf(1)
	for _, c := range cands {
		if c.Err != nil || c.Solution == nil || !c.Solution.Position.IsFinite() {
			continue
		}
		if r := c.Solution.MeanAbsResidual; r < best {
			best = r
		}
	}
	if math.IsInf(best, 1) {
		return nil, ErrNoCandidates
	}
	limit := best*selectionSlack + 1e-12
	res := &AdaptiveResult{All: cands}
	var sum geom.Vec3
	for _, c := range cands {
		if c.Err != nil || c.Solution == nil || !c.Solution.Position.IsFinite() {
			continue
		}
		if c.Solution.MeanAbsResidual <= limit {
			res.Selected = append(res.Selected, c)
			sum = sum.Add(c.Solution.Position)
		}
	}
	res.Position = sum.Scale(1 / float64(len(res.Selected)))
	return res, nil
}

// AdaptiveLocateThreeLine sweeps the scanning range and interval over the
// given values, runs the structured three-line localization for each
// combination, and fuses the estimates with SelectByResidual. base provides
// the grid step and solve options shared by all combinations.
func AdaptiveLocateThreeLine(in ThreeLineInput, ranges, intervals []float64, base StructuredOptions) (*AdaptiveResult, error) {
	if len(ranges) == 0 || len(intervals) == 0 {
		return nil, ErrNoCandidates
	}
	cands := make([]Candidate, 0, len(ranges)*len(intervals))
	for _, rg := range ranges {
		for _, iv := range intervals {
			opts := base
			opts.ScanRange = rg
			opts.Interval = iv
			sol, err := LocateThreeLine(in, opts)
			cands = append(cands, Candidate{
				ScanRange: rg,
				Interval:  iv,
				Solution:  sol,
				Err:       err,
			})
		}
	}
	return SelectByResidual(cands)
}

// AdaptiveLocateTwoLine is the two-line analogue of AdaptiveLocateThreeLine.
func AdaptiveLocateTwoLine(in TwoLineInput, abovePlane bool, ranges, intervals []float64, base StructuredOptions) (*AdaptiveResult, error) {
	if len(ranges) == 0 || len(intervals) == 0 {
		return nil, ErrNoCandidates
	}
	cands := make([]Candidate, 0, len(ranges)*len(intervals))
	for _, rg := range ranges {
		for _, iv := range intervals {
			opts := base
			opts.ScanRange = rg
			opts.Interval = iv
			sol, err := LocateTwoLine(in, abovePlane, opts)
			cands = append(cands, Candidate{
				ScanRange: rg,
				Interval:  iv,
				Solution:  sol,
				Err:       err,
			})
		}
	}
	return SelectByResidual(cands)
}

// AdaptiveLocate2DLine sweeps the pairing interval for the single-line 2-D
// case and fuses the estimates with SelectByResidual.
func AdaptiveLocate2DLine(obs []PosPhase, lambda float64, intervals []float64, positiveSide bool, opts SolveOptions) (*AdaptiveResult, error) {
	if len(intervals) == 0 {
		return nil, ErrNoCandidates
	}
	cands := make([]Candidate, 0, len(intervals))
	for _, iv := range intervals {
		sol, err := Locate2DLine(obs, lambda, iv, positiveSide, opts)
		cands = append(cands, Candidate{Interval: iv, Solution: sol, Err: err})
	}
	return SelectByResidual(cands)
}
