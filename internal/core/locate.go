package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/rfid-lion/lion/internal/dsp"
	"github.com/rfid-lion/lion/internal/geom"
)

// Locate2D estimates a target position in the plane from observations on an
// arbitrary known 2-D trajectory (e.g. the turntable circle of Sec. V-F-2),
// using the supplied pairs. Observation z-coordinates are carried through to
// the result unchanged; the solve itself uses x and y.
func Locate2D(obs []PosPhase, lambda float64, pairs []Pair, opts SolveOptions) (*Solution, error) {
	p, err := NewProfile(obs, lambda)
	if err != nil {
		return nil, err
	}
	sys, err := BuildSystem(p, pairs, 2)
	if err != nil {
		return nil, err
	}
	sol, err := SolveSystem(sys, opts)
	if err != nil {
		return nil, err
	}
	sol.Position.Z = p.RefPos().Z
	return sol, nil
}

// Locate3D estimates a target position in space from observations on an
// arbitrary known trajectory with full 3-D displacement diversity.
func Locate3D(obs []PosPhase, lambda float64, pairs []Pair, opts SolveOptions) (*Solution, error) {
	p, err := NewProfile(obs, lambda)
	if err != nil {
		return nil, err
	}
	sys, err := BuildSystem(p, pairs, 3)
	if err != nil {
		return nil, err
	}
	return SolveSystem(sys, opts)
}

// Locate2DLine solves the 2-D lower-dimension case of Sec. III-C-1: the tag
// moves along a single straight line (any direction) in a z = const plane.
// The solve runs in the line's own frame, where the perpendicular coordinate
// column vanishes and is recovered from d_r. positiveSide selects the branch:
// the target lies on the side of û rotated +90° (counter-clockwise), where û
// points from the first to the last observation.
//
// interval is the pairing separation along the line in metres (the paper's
// scanning interval); values around 0.2 m work well at UHF wavelengths.
func Locate2DLine(obs []PosPhase, lambda float64, interval float64, positiveSide bool, opts SolveOptions) (*Solution, error) {
	return Locate2DLineIntervals(obs, lambda, []float64{interval}, positiveSide, opts)
}

// Locate2DLineIntervals is Locate2DLine with several pairing separations
// combined into one system. Short pairs pin the along-track coordinate;
// long pairs capture the curvature of the distance profile, which is what
// determines d_r (and therefore the recovered perpendicular coordinate) at
// large depth.
func Locate2DLineIntervals(obs []PosPhase, lambda float64, intervals []float64, positiveSide bool, opts SolveOptions) (*Solution, error) {
	if len(obs) < 4 {
		return nil, ErrTooFewObservations
	}
	if len(intervals) == 0 {
		return nil, fmt.Errorf("core: at least one interval required")
	}
	for _, iv := range intervals {
		if iv <= 0 {
			return nil, fmt.Errorf("core: interval %v must be positive", iv)
		}
	}
	first, last := obs[0].Pos.XY(), obs[len(obs)-1].Pos.XY()
	dir := last.Sub(first)
	if dir.Norm() == 0 {
		return nil, ErrDegenerateGeometry
	}
	u := dir.Unit()
	v := u.Perp()
	origin := obs[len(obs)/2].Pos

	local := make([]PosPhase, len(obs))
	positions := make([]geom.Vec3, len(obs))
	for i, o := range obs {
		pu := o.Pos.XY().Sub(origin.XY()).Dot(u)
		local[i] = PosPhase{Pos: geom.V3(pu, 0, 0), Theta: o.Theta}
		positions[i] = local[i].Pos
	}
	var pairs []Pair
	for _, iv := range intervals {
		pairs = append(pairs, SeparationPairs(positions, iv)...)
	}
	if len(pairs) < 3 {
		return nil, fmt.Errorf("core: intervals %v leave %d pairs: %w",
			intervals, len(pairs), ErrTooFewObservations)
	}
	p, err := NewProfile(local, lambda)
	if err != nil {
		return nil, err
	}
	sys, err := BuildSystem(p, pairs, 2)
	if err != nil {
		return nil, err
	}
	sol, err := SolveSystem(sys, opts)
	if err != nil {
		return nil, err
	}
	if err := sol.RecoverMissingMedian(p, positiveSide); err != nil {
		return nil, err
	}
	// Map the line-frame estimate back into world coordinates.
	est := origin.XY().
		Add(u.Scale(sol.Position.X)).
		Add(v.Scale(sol.Position.Y))
	sol.Position = est.XYZ(origin.Z)
	return sol, nil
}

// Locate3DPlanar solves the 3-D lower-dimension case of Sec. III-C-2: the
// tag moves along a non-linear trajectory confined to a plane (e.g. a
// turntable circle, or the two-line scan). The out-of-plane coordinate is
// recovered from d_r. positiveSide places the target on the +normal side,
// where the normal is û×v̂ of the fitted plane frame.
func Locate3DPlanar(obs []PosPhase, lambda float64, pairs []Pair, positiveSide bool, opts SolveOptions) (*Solution, error) {
	if len(obs) < 5 {
		return nil, ErrTooFewObservations
	}
	origin := obs[len(obs)/2].Pos
	u, v, w, err := planeFrame(obs, origin)
	if err != nil {
		return nil, err
	}
	local := make([]PosPhase, len(obs))
	for i, o := range obs {
		d := o.Pos.Sub(origin)
		local[i] = PosPhase{
			Pos:   geom.V3(d.Dot(u), d.Dot(v), 0),
			Theta: o.Theta,
		}
	}
	p, err := NewProfile(local, lambda)
	if err != nil {
		return nil, err
	}
	sys, err := BuildSystem(p, pairs, 3)
	if err != nil {
		return nil, err
	}
	sol, err := SolveSystem(sys, opts)
	if err != nil {
		return nil, err
	}
	if err := sol.RecoverMissingMedian(p, positiveSide); err != nil {
		return nil, err
	}
	est := origin.
		Add(u.Scale(sol.Position.X)).
		Add(v.Scale(sol.Position.Y)).
		Add(w.Scale(sol.Position.Z))
	sol.Position = est
	return sol, nil
}

// planeFrame fits an orthonormal in-plane basis (u, v) and normal w to the
// observation positions around origin. It returns ErrDegenerateGeometry when
// the points are collinear — a single straight line cannot fix a 3-D
// position (Sec. III-C-2).
func planeFrame(obs []PosPhase, origin geom.Vec3) (u, v, w geom.Vec3, err error) {
	u = obs[len(obs)-1].Pos.Sub(obs[0].Pos)
	if u.Norm() == 0 {
		// Closed trajectory (full circle): use the widest chord from the
		// first point instead.
		for _, o := range obs[1:] {
			if d := o.Pos.Sub(obs[0].Pos); d.Norm() > u.Norm() {
				u = d
			}
		}
	}
	if u.Norm() == 0 {
		return u, v, w, ErrDegenerateGeometry
	}
	u = u.Unit()
	// Find the direction with the largest out-of-u component.
	best := geom.Vec3{}
	bestNorm := 0.0
	for _, o := range obs {
		d := o.Pos.Sub(origin)
		perp := d.Sub(u.Scale(d.Dot(u)))
		if n := perp.Norm(); n > bestNorm {
			best, bestNorm = perp, n
		}
	}
	span := obs[len(obs)-1].Pos.Dist(obs[0].Pos)
	if span == 0 {
		span = 1
	}
	if bestNorm < 1e-9*span {
		return u, v, w, ErrDegenerateGeometry
	}
	v = best.Unit()
	w = u.Cross(v)
	return u, v, w, nil
}

// lineProfile is one scan line reduced to sorted (x, θ) samples plus the
// line's constant (y, z) offset.
type lineProfile struct {
	xs    []float64
	theta []float64
	y, z  float64
}

// newLineProfile sorts the samples of one line by x and averages duplicate
// positions.
func newLineProfile(obs []PosPhase) (*lineProfile, error) {
	if len(obs) < 2 {
		return nil, ErrTooFewObservations
	}
	idx := make([]int, len(obs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return obs[idx[a]].Pos.X < obs[idx[b]].Pos.X
	})
	lp := &lineProfile{}
	var ySum, zSum float64
	for _, i := range idx {
		o := obs[i]
		ySum += o.Pos.Y
		zSum += o.Pos.Z
		if n := len(lp.xs); n > 0 && o.Pos.X-lp.xs[n-1] < 1e-9 {
			// Average duplicates at (numerically) identical x.
			lp.theta[n-1] = (lp.theta[n-1] + o.Theta) / 2
			continue
		}
		lp.xs = append(lp.xs, o.Pos.X)
		lp.theta = append(lp.theta, o.Theta)
	}
	if len(lp.xs) < 2 {
		return nil, ErrTooFewObservations
	}
	lp.y = ySum / float64(len(obs))
	lp.z = zSum / float64(len(obs))
	return lp, nil
}

// sample interpolates θ at the grid positions.
func (lp *lineProfile) sample(grid []float64) ([]float64, error) {
	return dsp.LinearResample(lp.xs, lp.theta, grid)
}

// StructuredOptions configures the structured multi-line localization of
// Sec. IV-B: the x_i grid, the scanning range and the pairing interval x_o.
type StructuredOptions struct {
	// ScanRange restricts the grid to |x − center| ≤ ScanRange/2, where the
	// center is the midpoint of the usable overlap. Zero uses the full
	// overlap. This is the "scanning range" swept in Figs. 16–17.
	ScanRange float64
	// Interval is x_o, the pairing interval along the line for the
	// x-coordinate equations (Fig. 18 sweeps it).
	Interval float64
	// Intervals optionally combines several pairing intervals in one
	// system; when non-empty it supersedes Interval for the x-equations.
	// Long pairs capture the profile curvature that pins d_r, short pairs
	// keep the x-estimate crisp.
	Intervals []float64
	// GridStep is the spacing of the x_i grid; zero defaults to
	// Interval/5 (at least 5 mm).
	GridStep float64
	// Solve configures the least-squares estimation.
	Solve SolveOptions
}

// DefaultStructuredOptions matches the paper's defaults: scanning range
// 0.8 m, interval 0.2 m, weighted least squares.
func DefaultStructuredOptions() StructuredOptions {
	return StructuredOptions{
		ScanRange: 0.8,
		Interval:  0.2,
		Solve:     DefaultSolveOptions(),
	}
}

func (o StructuredOptions) gridStep() float64 {
	if o.GridStep > 0 {
		return o.GridStep
	}
	s := o.smallestInterval() / 5
	if s < 0.005 {
		s = 0.005
	}
	return s
}

// intervals returns the effective pairing intervals.
func (o StructuredOptions) intervals() []float64 {
	if len(o.Intervals) > 0 {
		return o.Intervals
	}
	return []float64{o.Interval}
}

func (o StructuredOptions) smallestInterval() float64 {
	ivs := o.intervals()
	min := ivs[0]
	for _, iv := range ivs[1:] {
		if iv < min {
			min = iv
		}
	}
	return min
}

// xPairs emits the along-line pairs for every configured interval over a
// grid of n points with the given step, using base as the index offset of
// the line's block in the stacked observation list.
func (o StructuredOptions) xPairs(n int, step float64, base int) []Pair {
	var out []Pair
	for _, iv := range o.intervals() {
		k := int(math.Round(iv / step))
		if k < 1 {
			k = 1
		}
		for g := 0; g+k < n; g++ {
			out = append(out, Pair{I: base + g, J: base + g + k})
		}
	}
	return out
}

// buildGrid computes the shared x_i grid over the usable overlap of the
// lines.
func buildGrid(opts StructuredOptions, lines ...*lineProfile) ([]float64, error) {
	for _, iv := range opts.intervals() {
		if iv <= 0 {
			return nil, fmt.Errorf("core: interval %v must be positive", iv)
		}
	}
	lo := math.Inf(-1)
	hi := math.Inf(1)
	for _, lp := range lines {
		lo = math.Max(lo, lp.xs[0])
		hi = math.Min(hi, lp.xs[len(lp.xs)-1])
	}
	if !(hi > lo) {
		return nil, ErrDegenerateGeometry
	}
	if opts.ScanRange > 0 {
		c := (lo + hi) / 2
		lo = math.Max(lo, c-opts.ScanRange/2)
		hi = math.Min(hi, c+opts.ScanRange/2)
	}
	step := opts.gridStep()
	n := int((hi-lo)/step) + 1
	if n < 4 {
		return nil, ErrTooFewObservations
	}
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = lo + float64(i)*step
	}
	return grid, nil
}

// ThreeLineInput carries the per-line observations of a Fig. 11 scan. The
// phases of all three slices must share one continuous unwrapped profile
// (scan the lines in one continuous movement, or stitch with
// dsp.StitchSegments first).
type ThreeLineInput struct {
	L1, L2, L3 []PosPhase
	Lambda     float64
}

// LocateThreeLine runs the full 3-D structured localization of
// Eqs. 10–12: for every grid position x_i it emits one x-equation pairing
// (P_{i,1}, P_{i+k,1}) along L1, one y-equation pairing (P_{i,1}, P_{i,3}),
// and one z-equation pairing (P_{i,1}, P_{i,2}), then solves the stacked
// system.
func LocateThreeLine(in ThreeLineInput, opts StructuredOptions) (*Solution, error) {
	l1, err := newLineProfile(in.L1)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := newLineProfile(in.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	l3, err := newLineProfile(in.L3)
	if err != nil {
		return nil, fmt.Errorf("L3: %w", err)
	}
	grid, err := buildGrid(opts, l1, l2, l3)
	if err != nil {
		return nil, err
	}
	t1, err := l1.sample(grid)
	if err != nil {
		return nil, err
	}
	t2, err := l2.sample(grid)
	if err != nil {
		return nil, err
	}
	t3, err := l3.sample(grid)
	if err != nil {
		return nil, err
	}

	n := len(grid)
	obs := make([]PosPhase, 0, 3*n)
	for g, x := range grid {
		obs = append(obs, PosPhase{Pos: geom.V3(x, l1.y, l1.z), Theta: t1[g]})
	}
	for g, x := range grid {
		obs = append(obs, PosPhase{Pos: geom.V3(x, l2.y, l2.z), Theta: t2[g]})
	}
	for g, x := range grid {
		obs = append(obs, PosPhase{Pos: geom.V3(x, l3.y, l3.z), Theta: t3[g]})
	}

	pairs := opts.xPairs(n, opts.gridStep(), 0) // x along L1
	for g := 0; g < n; g++ {
		pairs = append(pairs, Pair{I: g, J: 2*n + g}) // y: L1 vs L3
		pairs = append(pairs, Pair{I: g, J: n + g})   // z: L1 vs L2
	}

	p, err := NewProfileRef(obs, in.Lambda, n/2)
	if err != nil {
		return nil, err
	}
	sys, err := BuildSystem(p, pairs, 3)
	if err != nil {
		return nil, err
	}
	return SolveSystem(sys, opts.Solve)
}

// TwoLineInput carries the reduced two-line planar scan used for the 3-D
// lower-dimension experiments (Fig. 14a): both lines lie in the z = const
// plane, offset along y.
type TwoLineInput struct {
	L1, L2 []PosPhase
	Lambda float64
}

// LocateTwoLine runs the planar structured localization and recovers the
// out-of-plane z-coordinate from d_r. abovePlane selects the branch (the
// antenna above the tag trajectory, as the paper assumes).
func LocateTwoLine(in TwoLineInput, abovePlane bool, opts StructuredOptions) (*Solution, error) {
	l1, err := newLineProfile(in.L1)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	l2, err := newLineProfile(in.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	grid, err := buildGrid(opts, l1, l2)
	if err != nil {
		return nil, err
	}
	t1, err := l1.sample(grid)
	if err != nil {
		return nil, err
	}
	t2, err := l2.sample(grid)
	if err != nil {
		return nil, err
	}
	n := len(grid)
	obs := make([]PosPhase, 0, 2*n)
	for g, x := range grid {
		obs = append(obs, PosPhase{Pos: geom.V3(x, l1.y, l1.z), Theta: t1[g]})
	}
	for g, x := range grid {
		obs = append(obs, PosPhase{Pos: geom.V3(x, l2.y, l2.z), Theta: t2[g]})
	}
	pairs := opts.xPairs(n, opts.gridStep(), 0)
	for g := 0; g < n; g++ {
		pairs = append(pairs, Pair{I: g, J: n + g})
	}
	p, err := NewProfileRef(obs, in.Lambda, n/2)
	if err != nil {
		return nil, err
	}
	sys, err := BuildSystem(p, pairs, 3)
	if err != nil {
		return nil, err
	}
	sol, err := SolveSystem(sys, opts.Solve)
	if err != nil {
		return nil, err
	}
	if err := sol.RecoverMissingMedian(p, abovePlane); err != nil {
		return nil, err
	}
	return sol, nil
}
