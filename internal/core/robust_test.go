package core

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
)

// solveLinearX builds and solves the lower-dimension 2-D system for a target
// above an x-axis trajectory, returning solution and profile.
func solveLinearX(t *testing.T, obs []PosPhase) (*Solution, *Profile) {
	t.Helper()
	p, err := NewProfile(obs, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	positions := make([]geom.Vec3, len(obs))
	for i, o := range obs {
		positions[i] = o.Pos
	}
	var pairs []Pair
	for _, sep := range []float64{0.2, 0.4} {
		pairs = append(pairs, SeparationPairs(positions, sep)...)
	}
	sys, err := BuildSystem(p, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveSystem(sys, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sol, p
}

func TestRecoverMissingMedianMatchesReferenceWhenClean(t *testing.T) {
	ant := geom.V3(0.1, 0.9, 0)
	positions := linePositions(geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), 120)
	obs := genObs(ant, positions, 0, 0, nil)

	solRef, p := solveLinearX(t, obs)
	solMed, _ := solveLinearX(t, obs)
	if err := solRef.RecoverMissing(p.RefPos(), true); err != nil {
		t.Fatal(err)
	}
	if err := solMed.RecoverMissingMedian(p, true); err != nil {
		t.Fatal(err)
	}
	if d := solRef.Position.Dist(solMed.Position); d > 1e-6 {
		t.Errorf("clean-data recoveries disagree by %v m", d)
	}
	if d := solMed.Position.Dist(ant); d > 1e-6 {
		t.Errorf("median recovery error %v m", d)
	}
}

func TestRecoverMissingMedianSurvivesCorruptedReference(t *testing.T) {
	// Bias a chunk of samples covering the reference (middle index). The
	// reference-only rule inherits the bias through d_r; the median rule
	// cancels it.
	ant := geom.V3(0.1, 0.9, 0)
	positions := linePositions(geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), 200)
	obs := genObs(ant, positions, 0.02, 0, stats.NewRNG(4))
	for i := 90; i < 110; i++ { // the reference (index 100) sits inside
		obs[i].Theta += 1.2
	}
	solRef, p := solveLinearX(t, obs)
	solMed, _ := solveLinearX(t, obs)
	if err := solRef.RecoverMissing(p.RefPos(), true); err != nil {
		t.Fatal(err)
	}
	if err := solMed.RecoverMissingMedian(p, true); err != nil {
		t.Fatal(err)
	}
	refErr := solRef.Position.Dist(ant)
	medErr := solMed.Position.Dist(ant)
	if medErr >= refErr {
		t.Errorf("median (%v) did not beat reference-only (%v) under corrupted reference",
			medErr, refErr)
	}
	if medErr > 0.02 {
		t.Errorf("median recovery error %v m", medErr)
	}
}

func TestRecoverMissingMedianUnbiasedNearZero(t *testing.T) {
	// Target almost in the trajectory plane: discriminants hover around
	// zero, and discarding negative ones would bias the estimate upward.
	rng := stats.NewRNG(8)
	ant := geom.V3(0, 0.8, 0.015)
	var sum float64
	const trials = 20
	for i := 0; i < trials; i++ {
		in := genTwoLine(ant, -0.5, 0.5, 0.2, 200, 0.05, rng)
		opts := DefaultStructuredOptions()
		opts.Intervals = []float64{0.2, 0.4, 0.7}
		sol, err := LocateTwoLine(in, true, opts)
		if err != nil {
			t.Fatal(err)
		}
		sum += absf(sol.Position.Z - ant.Z)
	}
	if avg := sum / trials; avg > 0.025 {
		t.Errorf("near-zero z recovery biased: mean |z err| = %v m", avg)
	}
}

func absf(v float64) float64 { return math.Abs(v) }

func TestRecoverMissingMedianNoSolution(t *testing.T) {
	sol := &Solution{
		Position:    geom.V3(0.5, math.NaN(), 0),
		Known:       [3]bool{true, false, false},
		Dim:         2,
		RefDistance: 0.1, // far smaller than the ~0.5 m offsets
	}
	obs := genObs(geom.V3(0.5, 1, 0),
		linePositions(geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), 20), 0, 0, nil)
	p, err := NewProfile(obs, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.RecoverMissingMedian(p, true); !errors.Is(err, ErrNoSolution) {
		t.Errorf("err = %v, want ErrNoSolution", err)
	}
}

func TestLocate2DLineIntervalsValidation(t *testing.T) {
	obs := genObs(geom.V3(0, 1, 0),
		linePositions(geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), 50), 0, 0, nil)
	if _, err := Locate2DLineIntervals(obs, testLambda, nil, true, SolveOptions{}); err == nil {
		t.Error("empty intervals accepted")
	}
	if _, err := Locate2DLineIntervals(obs, testLambda, []float64{0.2, -1}, true, SolveOptions{}); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestLocate2DLineIntervalsImprovesDepthConditioning(t *testing.T) {
	// At a large depth, adding long pairing intervals should reduce the
	// depth (y) error relative to the single short interval.
	rng := stats.NewRNG(13)
	ant := geom.V3(0, 1.6, 0)
	var single, multi float64
	const trials = 15
	for i := 0; i < trials; i++ {
		positions := linePositions(geom.V3(-1.2, 0, 0), geom.V3(1.2, 0, 0), 480)
		obs := genObs(ant, positions, 0.08, 0, rng)
		s1, err := Locate2DLine(obs, testLambda, 0.2, true, DefaultSolveOptions())
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Locate2DLineIntervals(obs, testLambda,
			[]float64{0.2, 0.5, 1.0, 1.5}, true, DefaultSolveOptions())
		if err != nil {
			t.Fatal(err)
		}
		single += absf(s1.Position.Y - ant.Y)
		multi += absf(s2.Position.Y - ant.Y)
	}
	if multi >= single {
		t.Errorf("multi-interval y err (%v) not below single-interval (%v)",
			multi/trials, single/trials)
	}
}

func TestStructuredOptionsIntervals(t *testing.T) {
	o := StructuredOptions{Interval: 0.2}
	if got := o.intervals(); len(got) != 1 || got[0] != 0.2 {
		t.Errorf("intervals = %v", got)
	}
	o.Intervals = []float64{0.3, 0.1}
	if got := o.smallestInterval(); got != 0.1 {
		t.Errorf("smallestInterval = %v", got)
	}
	pairs := o.xPairs(10, 0.1, 5)
	for _, pr := range pairs {
		if pr.I < 5 || pr.J < 5 {
			t.Fatalf("pair %v ignored base offset", pr)
		}
	}
	if len(pairs) == 0 {
		t.Fatal("no pairs generated")
	}
}

func TestSelectByAbsResidualPrefersCleanCandidate(t *testing.T) {
	mk := func(pos geom.Vec3, mar float64) Candidate {
		return Candidate{Solution: &Solution{Position: pos, MeanAbsResidual: mar}}
	}
	cands := []Candidate{
		mk(geom.V3(1, 0, 0), 0.001),
		mk(geom.V3(1.02, 0, 0), 0.0011),
		mk(geom.V3(9, 9, 9), 0.08), // polluted candidate
		{Err: errors.New("x")},
	}
	res, err := SelectByAbsResidual(cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %d, want 2", len(res.Selected))
	}
	if res.Position.Dist(geom.V3(1.01, 0, 0)) > 1e-9 {
		t.Errorf("position = %v", res.Position)
	}
	if _, err := SelectByAbsResidual(nil); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("empty err = %v", err)
	}
}

func TestThreeLineMultiIntervals(t *testing.T) {
	ant := geom.V3(0.05, 0.8, 0.1)
	in := genThreeLine(ant, -0.6, 0.6, 0.2, 0.2, 240, 0, nil)
	opts := DefaultStructuredOptions()
	opts.Intervals = []float64{0.15, 0.3, 0.6}
	sol, err := LocateThreeLine(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-4 {
		t.Errorf("error %v m", got)
	}
}

// Property-style check: the median recovery agrees with the truth over many
// random geometries.
func TestRecoverMissingMedianPropertyRandomGeometry(t *testing.T) {
	rng := stats.NewRNG(21)
	for trial := 0; trial < 25; trial++ {
		ant := geom.V3(rng.Uniform(-0.3, 0.3), rng.Uniform(0.5, 1.2), 0)
		positions := linePositions(geom.V3(-0.6, 0, 0), geom.V3(0.6, 0, 0), 100)
		obs := genObs(ant, positions, 0, 0, nil)
		sol, p := solveLinearX(t, obs)
		if err := sol.RecoverMissingMedian(p, true); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := sol.Position.Dist(ant); d > 1e-5 {
			t.Fatalf("trial %d: error %v for antenna %v", trial, d, ant)
		}
	}
}

func TestWrapOffsetInvarianceOfCoordinates(t *testing.T) {
	// A constant phase offset on every sample (device offset) must not
	// change the coordinate estimate at all — only d_r absorbs it.
	ant := geom.V3(0.2, 0.9, 0)
	positions := circlePositions(geom.V3(0, 0, 0), 0.3, 90)
	clean := genObs(ant, positions, 0, 0, nil)
	shifted := genObs(ant, positions, 0, 2.13, nil)
	pairs := StridePairs(len(clean), 22)
	s1, err := Locate2D(clean, testLambda, pairs, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Locate2D(shifted, testLambda, pairs, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := s1.Position.Dist(s2.Position); d > 1e-9 {
		t.Errorf("constant offset moved the estimate by %v m", d)
	}
}

func TestReferenceBiasAbsorbedByRefDistance(t *testing.T) {
	// Corrupting only the reference sample's phase must leave the
	// coordinates untouched (the bias folds into d_r exactly).
	ant := geom.V3(0.2, 0.9, 0)
	positions := circlePositions(geom.V3(0, 0, 0), 0.3, 91)
	obs := genObs(ant, positions, 0, 0, nil)
	ref := len(obs) / 2
	biased := make([]PosPhase, len(obs))
	copy(biased, obs)
	biased[ref].Theta += 0.8

	pairs := StridePairs(len(obs), 22)
	// Exclude pairs touching the reference so its bias enters only via Δd.
	filtered := pairs[:0:0]
	for _, pr := range pairs {
		if pr.I != ref && pr.J != ref {
			filtered = append(filtered, pr)
		}
	}
	s1, err := Locate2D(obs, testLambda, filtered, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Locate2D(biased, testLambda, filtered, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := s1.Position.Dist(s2.Position); d > 1e-9 {
		t.Errorf("reference bias moved coordinates by %v m", d)
	}
	wantShift := rf.DistanceOfPhaseDelta(0.8, testLambda)
	if got := s2.RefDistance - s1.RefDistance; absf(got-wantShift) > 1e-9 {
		t.Errorf("d_r shift = %v, want %v", got, wantShift)
	}
}
