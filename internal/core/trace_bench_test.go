package core

import (
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	lionobs "github.com/rfid-lion/lion/internal/obs"
	lionstats "github.com/rfid-lion/lion/internal/stats"
)

func benchLineObs() []PosPhase {
	positions := linePositions(geom.V3(-0.4, 0, 0.4), geom.V3(0.4, 0, 0.4), 120)
	ant := geom.V3(0, 0.9, 0.4)
	return genObs(ant, positions, 0.02, 0, lionstats.NewRNG(13))
}

// BenchmarkLocate2DLine is the untraced baseline for the tracing-overhead
// claim in bench_report.txt: a nil tracer must cost nothing on this path.
func BenchmarkLocate2DLine(b *testing.B) {
	obs := benchLineObs()
	opts := DefaultSolveOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Locate2DLine(obs, testLambda, 0.2, true, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocate2DLineTraced runs the same solve with a live tracer,
// resetting it each iteration so the event buffer does not grow unbounded.
func BenchmarkLocate2DLineTraced(b *testing.B) {
	obs := benchLineObs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := DefaultSolveOptions()
		opts.Trace = lionobs.NewTracer()
		if _, err := Locate2DLine(obs, testLambda, 0.2, true, opts); err != nil {
			b.Fatal(err)
		}
	}
}
