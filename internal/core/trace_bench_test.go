package core

import (
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	lionobs "github.com/rfid-lion/lion/internal/obs"
	lionstats "github.com/rfid-lion/lion/internal/stats"
)

func benchLineObs() []PosPhase {
	positions := linePositions(geom.V3(-0.4, 0, 0.4), geom.V3(0.4, 0, 0.4), 120)
	ant := geom.V3(0, 0.9, 0.4)
	return genObs(ant, positions, 0.02, 0, lionstats.NewRNG(13))
}

// BenchmarkLocate2DLine is the untraced baseline for the tracing-overhead
// claim in bench_report.txt: a nil tracer must cost nothing on this path.
func BenchmarkLocate2DLine(b *testing.B) {
	obs := benchLineObs()
	opts := DefaultSolveOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Locate2DLine(obs, testLambda, 0.2, true, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLineSessionSlide measures one slid window through a warm
// incremental session on the unweighted linear path — the steady-state
// streamed re-solve (lionbench's stream_resolve_incremental).
func BenchmarkLineSessionSlide(b *testing.B) {
	positions := linePositions(geom.V3(-1.2, 0, 0.4), geom.V3(1.2, 0, 0.4), 960)
	ant := geom.V3(0, 0.9, 0.4)
	strm := genObs(ant, positions, 0.02, 0, lionstats.NewRNG(13))
	const window = 120
	sess, err := NewLineSession(testLambda, []float64{0.05, 0.12}, true)
	if err != nil {
		b.Fatal(err)
	}
	var sol Solution
	lo := 0
	step := func() {
		if lo+window > len(strm) {
			lo = 0
		}
		if err := sess.Locate(strm[lo:lo+window], SolveOptions{}, &sol); err != nil {
			b.Fatal(err)
		}
		lo++
	}
	for i := 0; i < 400; i++ {
		step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkLocate2DLineTraced runs the same solve with a live tracer,
// resetting it each iteration so the event buffer does not grow unbounded.
func BenchmarkLocate2DLineTraced(b *testing.B) {
	obs := benchLineObs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := DefaultSolveOptions()
		opts.Trace = lionobs.NewTracer()
		if _, err := Locate2DLine(obs, testLambda, 0.2, true, opts); err != nil {
			b.Fatal(err)
		}
	}
}
