package core

import (
	"math"
	"strings"
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	lionobs "github.com/rfid-lion/lion/internal/obs"
	lionstats "github.com/rfid-lion/lion/internal/stats"
)

// TestSolveSystemEmitsIRLSTrace attaches a tracer to a weighted solve and
// checks that every IRWLS iteration lands in the trace with its residual
// norm and the condition estimate.
func TestSolveSystemEmitsIRLSTrace(t *testing.T) {
	ant := geom.V3(1, 0, 0)
	positions := circlePositions(geom.V3(0, 0, 0), 0.3, 60)
	obs := genObs(ant, positions, 0.05, 0, lionstats.NewRNG(11))
	p, err := NewProfile(obs, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildSystem(p, StridePairs(len(obs), 15), 2)
	if err != nil {
		t.Fatal(err)
	}

	tr := lionobs.NewTracer()
	opts := DefaultSolveOptions()
	opts.Trace = tr
	opts.TraceSpan = "unit"
	sol, err := SolveSystem(sys, opts)
	if err != nil {
		t.Fatal(err)
	}

	events := tr.Events()
	var iters []lionobs.Event
	var sawStart, sawEnd bool
	for _, ev := range events {
		switch ev.Kind {
		case lionobs.KindSpanStart:
			sawStart = sawStart || ev.Span == "unit"
		case lionobs.KindSpanEnd:
			sawEnd = sawEnd || ev.Span == "unit"
		case lionobs.KindIRLSIter:
			iters = append(iters, ev)
		}
	}
	if !sawStart || !sawEnd {
		t.Errorf("span events missing: start=%v end=%v", sawStart, sawEnd)
	}
	if len(iters) != sol.Iterations {
		t.Fatalf("trace has %d irls_iter events, solution reports %d iterations", len(iters), sol.Iterations)
	}
	for i, ev := range iters {
		if ev.Iter != i+1 {
			t.Errorf("event %d: Iter = %d, want %d", i, ev.Iter, i+1)
		}
		if ev.Residual < 0 {
			t.Errorf("event %d: negative residual norm %v", i, ev.Residual)
		}
		if ev.Condition < 1 {
			t.Errorf("event %d: condition estimate %v < 1", i, ev.Condition)
		}
	}
	// Traced residuals enter each re-weighting step, so the last event sits
	// one update before Solution.FinalResidual — close, but not equal.
	last := iters[len(iters)-1]
	if rel := math.Abs(last.Residual-sol.FinalResidual) / sol.FinalResidual; rel > 0.05 {
		t.Errorf("last traced residual %v far from Solution.FinalResidual %v", last.Residual, sol.FinalResidual)
	}
}

// TestAdaptiveSweepEmitsCandidateTrace runs an adaptive interval sweep with a
// tracer attached and checks that each grid cell produced a candidate event
// and each candidate solve its own labelled span with irls_iter events.
func TestAdaptiveSweepEmitsCandidateTrace(t *testing.T) {
	positions := linePositions(geom.V3(-0.4, 0, 0.4), geom.V3(0.4, 0, 0.4), 120)
	ant := geom.V3(0, 0.9, 0.4)
	obs := genObs(ant, positions, 0.02, 0, lionstats.NewRNG(12))
	intervals := []float64{0.15, 0.2, 0.25}

	tr := lionobs.NewTracer()
	opts := DefaultSolveOptions()
	opts.Trace = tr
	res, err := AdaptiveLocate2DLineWorkers(obs, testLambda, intervals, true, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != len(intervals) {
		t.Fatalf("sweep evaluated %d candidates, want %d", len(res.All), len(intervals))
	}

	var cands, irls, candSpans int
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case lionobs.KindCandidate:
			cands++
			if ev.Interval <= 0 {
				t.Errorf("candidate event missing interval: %+v", ev)
			}
		case lionobs.KindIRLSIter:
			irls++
			if strings.HasPrefix(ev.Span, "cand[") {
				candSpans++
			}
		}
	}
	if cands != len(intervals) {
		t.Errorf("candidate events = %d, want %d", cands, len(intervals))
	}
	if irls == 0 {
		t.Error("no irls_iter events inside the adaptive sweep")
	}
	if candSpans == 0 {
		t.Error("no irls_iter event carried a cand[...] span label")
	}
}
