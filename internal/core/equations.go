package core

import (
	"fmt"

	"github.com/rfid-lion/lion/internal/mat"
)

// System is a stack of linear radical-line / radical-plane equations
// A·X = K with unknown X = [coords..., d_r]ᵀ. Dim is 2 or 3: the number of
// coordinate columns preceding the d_r column.
type System struct {
	A   *mat.Dense
	K   []float64
	Dim int
	// NumRefs is the number of reference-distance columns following the
	// coordinate columns; zero means one (the single-channel case).
	NumRefs int
}

// equation2D computes one radical-line equation (Eq. 7) for the pair (i, j):
//
//	α·x + β·y + ω·d_r = κ
//	α = 2(x_i−x_j), β = 2(y_i−y_j), ω = 2(Δd_i−Δd_j)
//	κ = x_i²−x_j² + y_i²−y_j² − Δd_i² + Δd_j²
func (p *Profile) equation2D(pr Pair) (row [3]float64, rhs float64) {
	pi, pj := p.Obs[pr.I].Pos, p.Obs[pr.J].Pos
	di, dj := p.deltaD[pr.I], p.deltaD[pr.J]
	row[0] = 2 * (pi.X - pj.X)
	row[1] = 2 * (pi.Y - pj.Y)
	row[2] = 2 * (di - dj)
	rhs = pi.X*pi.X - pj.X*pj.X + pi.Y*pi.Y - pj.Y*pj.Y - di*di + dj*dj
	return row, rhs
}

// equation3D computes one radical-plane equation (Eq. 9) for the pair (i, j).
func (p *Profile) equation3D(pr Pair) (row [4]float64, rhs float64) {
	pi, pj := p.Obs[pr.I].Pos, p.Obs[pr.J].Pos
	di, dj := p.deltaD[pr.I], p.deltaD[pr.J]
	row[0] = 2 * (pi.X - pj.X)
	row[1] = 2 * (pi.Y - pj.Y)
	row[2] = 2 * (pi.Z - pj.Z)
	row[3] = 2 * (di - dj)
	rhs = pi.X*pi.X - pj.X*pj.X +
		pi.Y*pi.Y - pj.Y*pj.Y +
		pi.Z*pi.Z - pj.Z*pj.Z -
		di*di + dj*dj
	return row, rhs
}

// BuildSystem assembles the linear system from the given pairs. dim must be
// 2 (unknowns x, y, d_r) or 3 (unknowns x, y, z, d_r). Pairs referencing
// out-of-range observations are rejected.
func BuildSystem(p *Profile, pairs []Pair, dim int) (*System, error) {
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("core: dimension %d not supported", dim)
	}
	if len(pairs) < dim+1 {
		return nil, fmt.Errorf("core: %d pairs cannot determine %d unknowns: %w",
			len(pairs), dim+1, ErrTooFewObservations)
	}
	for _, pr := range pairs {
		if pr.I < 0 || pr.I >= p.Len() || pr.J < 0 || pr.J >= p.Len() || pr.I == pr.J {
			return nil, fmt.Errorf("core: invalid pair (%d,%d) for %d observations",
				pr.I, pr.J, p.Len())
		}
	}
	a := mat.NewDense(len(pairs), dim+1)
	k := make([]float64, len(pairs))
	for r, pr := range pairs {
		if dim == 2 {
			row, rhs := p.equation2D(pr)
			a.Set(r, 0, row[0])
			a.Set(r, 1, row[1])
			a.Set(r, 2, row[2])
			k[r] = rhs
		} else {
			row, rhs := p.equation3D(pr)
			for c := 0; c < 4; c++ {
				a.Set(r, c, row[c])
			}
			k[r] = rhs
		}
	}
	return &System{A: a, K: k, Dim: dim}, nil
}
