package core

import (
	"github.com/rfid-lion/lion/internal/geom"
)

// Pair indexes two observations whose radical line / plane contributes one
// linear equation. The principle of pair selection is to guarantee
// displacement diversity along the axes of interest (Sec. IV-B-1).
type Pair struct {
	I, J int
}

// StridePairs pairs each observation i with observation i+stride. This is
// the generic strategy for arbitrary trajectories: on a circle a stride of a
// quarter revolution yields well-conditioned crossings.
func StridePairs(n, stride int) []Pair {
	if stride <= 0 || n <= stride {
		return nil
	}
	out := make([]Pair, 0, n-stride)
	for i := 0; i+stride < n; i++ {
		out = append(out, Pair{I: i, J: i + stride})
	}
	return out
}

// SeparationPairs pairs each observation with the first later observation at
// least sep metres away. Larger separations produce larger phase differences
// and therefore equations less sensitive to noise (the paper's scanning
// interval x_o plays this role in Fig. 18).
func SeparationPairs(pos []geom.Vec3, sep float64) []Pair {
	if sep <= 0 {
		return nil
	}
	out := make([]Pair, 0, len(pos))
	j := 0
	for i := range pos {
		if j <= i {
			j = i + 1
		}
		for j < len(pos) && pos[i].Dist(pos[j]) < sep {
			j++
		}
		if j >= len(pos) {
			break
		}
		out = append(out, Pair{I: i, J: j})
	}
	return out
}

// SubsampledAllPairs returns up to maxPairs pairs drawn evenly from the set
// of all (i, j) combinations with i < j. It gives maximal geometric
// diversity for small observation sets (e.g. gridded circle scans) while
// bounding the system size.
func SubsampledAllPairs(n, maxPairs int) []Pair {
	if n < 2 || maxPairs <= 0 {
		return nil
	}
	total := n * (n - 1) / 2
	if total <= maxPairs {
		out := make([]Pair, 0, total)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				out = append(out, Pair{I: i, J: j})
			}
		}
		return out
	}
	out := make([]Pair, 0, maxPairs)
	stride := float64(total) / float64(maxPairs)
	next := 0.0
	idx := 0
	for i := 0; i < n && len(out) < maxPairs; i++ {
		for j := i + 1; j < n && len(out) < maxPairs; j++ {
			if float64(idx) >= next {
				out = append(out, Pair{I: i, J: j})
				next += stride
			}
			idx++
		}
	}
	return out
}
