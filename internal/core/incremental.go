package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/mat"
	"github.com/rfid-lion/lion/internal/rf"
)

const (
	// defaultRebuildEvery bounds how many consecutive slides a LineSession
	// accepts before re-anchoring from scratch, regardless of drift. It
	// caps incremental rounding accumulation and keeps the reported
	// RefDistance's anchor from receding arbitrarily far behind the window.
	defaultRebuildEvery = 256
	// driftRebuildRatio triggers a re-anchor when the maintained normal
	// equations have decayed this far below their historical peak magnitude
	// (see mat.NormalEq.DriftRatio): past it, the cancellation error frozen
	// into the Gram entries threatens the 1e-9 equivalence bound.
	driftRebuildRatio = 1e3
)

// lineKeep is the reduced-column map of every 2-D line solve: the local
// frame zeroes the y column, so the kept columns are x and d_r.
var lineKeep = []int{0, 2}

// linePair is one cached radical-line equation: the pair's absolute sample
// indices plus its reduced row [α, ω] and right-hand side κ. Rows are cached
// because removal from the normal equations must subtract exactly the values
// that were added, and because retained pairs' coefficients are invariant
// under a window slide (positions and Δd of retained samples don't change).
type linePair struct {
	i, j int
	a    [2]float64
	k    float64
}

// LineSessionStats counts the work a session has done, for tests and
// observability.
type LineSessionStats struct {
	// Solves is the number of successful Locate calls.
	Solves int
	// Rebuilds counts full re-anchors (first call, slide-detection misses,
	// drift and budget triggers).
	Rebuilds int
	// Slides counts Locate calls served incrementally.
	Slides int
	// Refactorizations and IncrementalUpdates are the underlying normal-
	// equation counters (mat.NormalEq).
	Refactorizations   int
	IncrementalUpdates int
}

// LineSession is the incremental form of Locate2DLineIntervals for sliding
// windows: a stateful solver that recognises when the current window is the
// previous one slid forward (samples evicted at the front, appended at the
// back) and reuses the previous window's pair rows and normal-equation
// factorization instead of rebuilding the system from scratch.
//
// Equivalence contract:
//
//   - A rebuild solve (the first call, or any call where slide detection
//     fails) is bit-identical to Locate2DLineIntervals on the same window.
//   - A slide solve agrees with Locate2DLineIntervals to within ~1e-9 on
//     Position for well-conditioned windows of collinear samples in a
//     z = const plane. Two effects contribute the difference: the session
//     keeps its anchor frame (origin, reference sample) from the last
//     rebuild while the batch path re-anchors at every window's midpoint —
//     the solutions map between the frames exactly in real arithmetic — and
//     the factorization is maintained by rank-1 update/downdate rather than
//     recomputed. RefDistance is reported relative to the session's anchor
//     reference sample, not the current window midpoint.
//   - Sessions re-anchor automatically every RebuildEvery slides, when the
//     normal equations drift past mat.NormalEq's documented bound, when the
//     anchor reference sample is evicted, and whenever the incoming window
//     is not a forward slide of the previous one (including any smoothing
//     that rewrites overlap samples — feed unsmoothed profiles).
//
// Steady-state slides perform zero heap allocations. A session must not be
// shared between goroutines; the stream engine owns one per tag session.
type LineSession struct {
	lambda       float64
	intervals    []float64
	positiveSide bool

	// RebuildEvery overrides the re-anchor cadence; zero means the default
	// of 256 slides.
	RebuildEvery int

	// Anchor frame, fixed between rebuilds.
	valid  bool
	origin geom.Vec3
	u, v   geom.Vec2
	base   int // absolute index of window[0]
	refAbs int // absolute index of the anchor reference sample

	world []geom.Vec3 // world positions of the current window (slide matching)
	prof  Profile     // local-frame profile: Obs=(pu,0,0), session-frame θ, cached Δd

	pairs [][]linePair // per interval, sorted by first index
	next  [][]linePair // scratch buffers for rescans (double-buffered)

	ne  mat.NormalEq
	ls  mat.Workspace
	a   mat.Dense // assembled reduced system (rows×2) for IRLS/residuals
	kv  []float64
	x   []float64
	wts []float64
	dsc []float64 // median-recovery scratch

	sinceRebuild int
	stats        LineSessionStats
}

// NewLineSession returns an incremental sliding-window solver with the same
// parameters as Locate2DLineIntervals. The intervals are copied.
func NewLineSession(lambda float64, intervals []float64, positiveSide bool) (*LineSession, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, ErrBadLambda
	}
	if len(intervals) == 0 {
		return nil, fmt.Errorf("core: at least one interval required")
	}
	for _, iv := range intervals {
		if iv <= 0 {
			return nil, fmt.Errorf("core: interval %v must be positive", iv)
		}
	}
	s := &LineSession{
		lambda:       lambda,
		intervals:    append([]float64(nil), intervals...),
		positiveSide: positiveSide,
	}
	s.prof.Lambda = lambda
	s.pairs = make([][]linePair, len(intervals))
	s.next = make([][]linePair, len(intervals))
	s.ne.Reset(2)
	return s, nil
}

// Stats returns the session's work counters.
func (s *LineSession) Stats() LineSessionStats {
	st := s.stats
	st.Refactorizations = s.ne.Refactorizations()
	st.IncrementalUpdates = s.ne.IncrementalUpdates()
	return st
}

func (s *LineSession) rebuildEvery() int {
	if s.RebuildEvery > 0 {
		return s.RebuildEvery
	}
	return defaultRebuildEvery
}

// Locate estimates the target position from the window, writing the result
// into sol (whose slices are reused across calls — the caller owns sol and
// may retain or mutate it freely between calls). The window is the full
// current sample set, exactly as Locate2DLineIntervals would receive it.
func (s *LineSession) Locate(win []PosPhase, opts SolveOptions, sol *Solution) error {
	if len(win) < 4 {
		return ErrTooFewObservations
	}
	first, last := win[0].Pos.XY(), win[len(win)-1].Pos.XY()
	dir := last.Sub(first)
	if dir.Norm() == 0 {
		return ErrDegenerateGeometry
	}

	slid := false
	if s.valid && s.sinceRebuild < s.rebuildEvery() && s.ne.DriftRatio() <= driftRebuildRatio {
		slid = s.trySlide(win)
	}
	if slid {
		s.sinceRebuild++
		s.stats.Slides++
	} else {
		if err := s.rebuild(win, dir); err != nil {
			return err
		}
	}
	if err := s.solve(opts, sol); err != nil {
		return err
	}
	if err := s.recoverMissingMedian(sol); err != nil {
		return err
	}
	// Map the line-frame estimate back into world coordinates.
	est := s.origin.XY().
		Add(s.u.Scale(sol.Position.X)).
		Add(s.v.Scale(sol.Position.Y))
	sol.Position = est.XYZ(s.origin.Z)
	s.stats.Solves++
	return nil
}

// trySlide checks whether win is the previous window slid forward — an
// eviction prefix followed by the exact retained overlap (bit-equal
// positions, phases shifted by one global unwrap constant) and appended new
// samples — and commits the incremental update when it is. It reports false
// (leaving the session unchanged) when the window must be rebuilt.
func (s *LineSession) trySlide(win []PosPhase) bool {
	m := len(s.prof.Obs)
	k := -1
	for c := 0; c <= m-2; c++ {
		if s.world[c] == win[0].Pos && m-c <= len(win) {
			k = c
			break
		}
	}
	if k < 0 {
		return false
	}
	overlap := m - k
	if s.refAbs-(s.base+k) < 0 {
		return false // anchor reference sample would be evicted
	}
	// The window re-unwraps from its own first sample, so the overlap's
	// phases differ from the stored session-frame phases by one global
	// constant (a 2π multiple plus the anchor shift). Estimate it from the
	// first overlap sample and require it to be constant across the rest.
	c0 := s.prof.Obs[k].Theta - win[0].Theta
	for i := 1; i < overlap; i++ {
		if s.world[k+i] != win[i].Pos {
			return false
		}
		if d := math.Abs(s.prof.Obs[k+i].Theta - (win[i].Theta + c0)); d > 1e-9*math.Max(1, math.Abs(win[i].Theta)) {
			return false
		}
	}
	for i := overlap; i < len(win); i++ {
		o := win[i]
		if !o.Pos.IsFinite() || math.IsNaN(o.Theta) || math.IsInf(o.Theta, 0) {
			return false // rebuild path reports ErrNonFiniteInput with the index
		}
	}

	// Commit: evict the k oldest samples, append the new tail.
	if k > 0 {
		s.base += k
		s.world = s.world[:copy(s.world, s.world[k:])]
		s.prof.Obs = s.prof.Obs[:copy(s.prof.Obs, s.prof.Obs[k:])]
		s.prof.deltaD = s.prof.deltaD[:copy(s.prof.deltaD, s.prof.deltaD[k:])]
	}
	s.prof.RefIndex = s.refAbs - s.base
	refTheta := s.prof.Obs[s.prof.RefIndex].Theta
	for i := overlap; i < len(win); i++ {
		o := win[i]
		pu := o.Pos.XY().Sub(s.origin.XY()).Dot(s.u)
		th := o.Theta + c0 // translate into the session's phase frame
		s.world = append(s.world, o.Pos)
		s.prof.Obs = append(s.prof.Obs, PosPhase{Pos: geom.V3(pu, 0, 0), Theta: th})
		s.prof.deltaD = append(s.prof.deltaD, rf.DistanceOfPhaseDelta(th-refTheta, s.lambda))
	}
	s.diffPairs()
	return true
}

// rebuild re-anchors the session on win, exactly as Locate2DLineIntervals
// sets up a fresh solve: origin at the window midpoint, û from first to last
// sample, reference sample at the midpoint index.
func (s *LineSession) rebuild(win []PosPhase, dir geom.Vec2) error {
	for i, o := range win {
		if !o.Pos.IsFinite() || math.IsNaN(o.Theta) || math.IsInf(o.Theta, 0) {
			return fmt.Errorf("core: observation %d is %v: %w", i, o, ErrNonFiniteInput)
		}
	}
	s.u = dir.Unit()
	s.v = s.u.Perp()
	s.origin = win[len(win)/2].Pos
	s.base = 0
	s.refAbs = len(win) / 2
	s.prof.RefIndex = s.refAbs

	s.world = s.world[:0]
	s.prof.Obs = s.prof.Obs[:0]
	s.prof.deltaD = s.prof.deltaD[:0]
	for _, o := range win {
		pu := o.Pos.XY().Sub(s.origin.XY()).Dot(s.u)
		s.world = append(s.world, o.Pos)
		s.prof.Obs = append(s.prof.Obs, PosPhase{Pos: geom.V3(pu, 0, 0), Theta: o.Theta})
	}
	refTheta := s.prof.Obs[s.refAbs].Theta
	for _, o := range s.prof.Obs {
		s.prof.deltaD = append(s.prof.deltaD, rf.DistanceOfPhaseDelta(o.Theta-refTheta, s.lambda))
	}

	s.ne.Reset(2)
	for ivi, iv := range s.intervals {
		s.pairs[ivi] = s.scanPairs(iv, s.pairs[ivi][:0])
		for pi := range s.pairs[ivi] {
			s.addPair(&s.pairs[ivi][pi])
		}
	}
	s.valid = true
	s.sinceRebuild = 0
	s.stats.Rebuilds++
	return nil
}

// scanPairs runs the SeparationPairs greedy scan (shared monotone second
// index, first qualifying partner, at most one pair per i) over the current
// local positions, appending pairs with absolute indices into out.
func (s *LineSession) scanPairs(sep float64, out []linePair) []linePair {
	n := len(s.prof.Obs)
	j := 0
	for i := 0; i < n; i++ {
		if j <= i {
			j = i + 1
		}
		for j < n && s.prof.Obs[i].Pos.Dist(s.prof.Obs[j].Pos) < sep {
			j++
		}
		if j >= n {
			break
		}
		out = append(out, linePair{i: s.base + i, j: s.base + j})
	}
	return out
}

// addPair computes and caches the pair's reduced equation row via the shared
// equation2D kernel, then accumulates it into the normal equations.
func (s *LineSession) addPair(p *linePair) {
	row, rhs := s.prof.equation2D(Pair{I: p.i - s.base, J: p.j - s.base})
	p.a = [2]float64{row[0], row[2]}
	p.k = rhs
	s.ne.AddRow(p.a[:], p.k)
}

// diffPairs rescans the pair lists over the slid window and applies the
// difference to the normal equations: rows for pairs that left the window
// are downdated out, rows for new pairs are updated in, retained pairs keep
// their cached coefficients (which a slide provably does not change).
func (s *LineSession) diffPairs() {
	for ivi, iv := range s.intervals {
		fresh := s.scanPairs(iv, s.next[ivi][:0])
		old := s.pairs[ivi]
		oi, ni := 0, 0
		for oi < len(old) || ni < len(fresh) {
			switch {
			case ni >= len(fresh):
				s.ne.RemoveRow(old[oi].a[:], old[oi].k)
				oi++
			case oi >= len(old):
				s.addPair(&fresh[ni])
				ni++
			case old[oi].i == fresh[ni].i && old[oi].j == fresh[ni].j:
				fresh[ni].a, fresh[ni].k = old[oi].a, old[oi].k
				oi++
				ni++
			case old[oi].i < fresh[ni].i:
				s.ne.RemoveRow(old[oi].a[:], old[oi].k)
				oi++
			case fresh[ni].i < old[oi].i:
				s.addPair(&fresh[ni])
				ni++
			default: // same first index, different partner: replace
				s.ne.RemoveRow(old[oi].a[:], old[oi].k)
				s.addPair(&fresh[ni])
				oi++
				ni++
			}
		}
		s.pairs[ivi], s.next[ivi] = fresh, old // double-buffer swap
	}
}

// solve runs the reduced least-squares solve over the cached pair rows,
// mirroring SolveSystem's degeneracy checks and IRLS loop, with the initial
// factorization served incrementally by the normal equations.
func (s *LineSession) solve(opts SolveOptions, sol *Solution) error {
	defer opts.Trace.Span(opts.traceSpan())()
	nPairs := 0
	for _, pl := range s.pairs {
		nPairs += len(pl)
	}
	if nPairs < 3 {
		return fmt.Errorf("core: intervals %v leave %d pairs: %w",
			s.intervals, nPairs, ErrTooFewObservations)
	}

	// Assemble the reduced system for the IRLS loop and residuals, and run
	// the same scale/column checks SolveSystem applies to the full matrix
	// (whose y column is identically zero in the line frame).
	s.a.Reshape(nPairs, 2)
	s.kv = growFloats(s.kv, nPairs)
	r := 0
	scale, colMaxX := 0.0, 0.0
	for _, pl := range s.pairs {
		for _, p := range pl {
			s.a.Set(r, 0, p.a[0])
			s.a.Set(r, 1, p.a[1])
			s.kv[r] = p.k
			if v := math.Abs(p.a[0]); v > colMaxX {
				colMaxX = v
			}
			if v := math.Abs(p.a[1]); v > scale {
				scale = v
			}
			r++
		}
	}
	if colMaxX > scale {
		scale = colMaxX
	}
	if scale == 0 {
		return ErrDegenerateGeometry
	}
	if colMaxX <= 1e-9*scale {
		return ErrDegenerateGeometry
	}

	x0, err := s.ne.Solve()
	if err != nil {
		// Not SPD: fall back to the same Cholesky-then-QR chain the batch
		// path uses over the assembled rows.
		x0, err = s.ls.LeastSquares(&s.a, s.kv)
		if err != nil {
			if errors.Is(err, mat.ErrSingular) {
				return fmt.Errorf("%w: %v", ErrDegenerateGeometry, err)
			}
			return fmt.Errorf("least squares: %w", err)
		}
	}
	s.x = append(s.x[:0], x0...)
	condEst := s.ne.ConditionEst()

	s.wts = growFloats(s.wts, nPairs)
	for i := range s.wts {
		s.wts[i] = 1
	}
	iterations, err := irlsRefine(&s.ls, &s.a, s.kv, &s.x, s.wts, opts, condEst)
	if err != nil {
		return err
	}
	res, err := s.ls.Residuals(&s.a, s.x, s.kv)
	if err != nil {
		return fmt.Errorf("residuals: %w", err)
	}
	fillSolution(sol, 2, 1, [3]bool{true, false, false}, lineKeep,
		s.x, res, s.wts, iterations, condEst)
	return nil
}

// recoverMissingMedian is the in-place form of Solution.RecoverMissingMedian
// for the line session's fixed shape (Dim 2, missing coordinate y, local
// frame with all sample y exactly zero): same discriminants, same median
// interpolation as stats.Percentile, same negative-median tolerance.
func (s *LineSession) recoverMissingMedian(sol *Solution) error {
	n := s.prof.Len()
	if n < 3 {
		return sol.RecoverMissing(s.prof.RefPos(), s.positiveSide)
	}
	s.dsc = growFloats(s.dsc, n)
	estX := sol.Position.X
	for t := 0; t < n; t++ {
		dt := sol.RefDistance + s.prof.deltaD[t]
		d := estX - s.prof.Obs[t].Pos.X
		s.dsc[t] = dt*dt - d*d
	}
	// Median via selection, not a full sort: the order statistics are the
	// same values sort.Float64s would put at lo and hi, so the interpolated
	// median is bit-identical to stats.Percentile's — at O(n) instead of
	// O(n log n), which matters because this runs on every streamed re-solve.
	var med float64
	rank := 50.0 / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	quickselectFloat(s.dsc, lo)
	if lo == hi {
		med = s.dsc[lo]
	} else {
		vhi := s.dsc[lo+1]
		for _, v := range s.dsc[lo+2:] {
			if v < vhi {
				vhi = v
			}
		}
		frac := rank - float64(lo)
		med = s.dsc[lo]*(1-frac) + vhi*frac
	}
	if med < 0 {
		if med < -0.02*sol.RefDistance*sol.RefDistance {
			return ErrNoSolution
		}
		med = 0
	}
	off := math.Sqrt(med)
	if !s.positiveSide {
		off = -off
	}
	sol.Position = geom.Vec3{X: sol.Position.X, Y: off, Z: sol.Position.Z}
	sol.Known[1] = true
	return nil
}

// quickselectFloat rearranges xs in place so xs[k] holds the value a full
// ascending sort would put there, with xs[:k] ≤ xs[k] ≤ xs[k+1:]. Hoare
// partitioning with median-of-three pivots; O(len(xs)) expected, zero
// allocations.
func quickselectFloat(xs []float64, k int) {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return // xs[j+1 : i] all equal the pivot, k among them
		}
	}
}
