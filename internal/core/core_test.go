package core

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
)

const testLambda = 0.3256 // ~920.625 MHz

// genObs produces exact unwrapped observations for a target at ant, with
// optional Gaussian phase noise and a constant phase offset.
func genObs(ant geom.Vec3, positions []geom.Vec3, noiseStd, offset float64, rng *stats.RNG) []PosPhase {
	obs := make([]PosPhase, len(positions))
	for i, p := range positions {
		theta := rf.PhaseOfDistance(ant.Dist(p), testLambda) + offset
		if noiseStd > 0 {
			theta += rng.Normal(0, noiseStd)
		}
		obs[i] = PosPhase{Pos: p, Theta: theta}
	}
	return obs
}

// circlePositions returns n points on a circle of the given radius in the
// z = zc plane.
func circlePositions(center geom.Vec3, radius float64, n int) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = geom.V3(
			center.X+radius*math.Cos(a),
			center.Y+radius*math.Sin(a),
			center.Z,
		)
	}
	return out
}

// linePositions returns n evenly spaced points from a to b.
func linePositions(a, b geom.Vec3, n int) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		out[i] = a.Lerp(b, float64(i)/float64(n-1))
	}
	return out
}

func TestPreprocess(t *testing.T) {
	ant := geom.V3(0.3, 1, 0)
	positions := linePositions(geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), 200)
	wrapped := make([]float64, len(positions))
	for i, p := range positions {
		wrapped[i] = rf.WrapPhase(rf.PhaseOfDistance(ant.Dist(p), testLambda))
	}
	obs, err := Preprocess(positions, wrapped, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Away from the boundary (where the smoothing window truncates),
	// unwrapped deltas must match true distance-induced deltas.
	base := 5
	for i := base + 1; i < len(obs)-base; i++ {
		wantDelta := rf.PhaseOfDistance(ant.Dist(positions[i]), testLambda) -
			rf.PhaseOfDistance(ant.Dist(positions[base]), testLambda)
		gotDelta := obs[i].Theta - obs[base].Theta
		if math.Abs(gotDelta-wantDelta) > 0.05 { // smoothing tolerance
			t.Fatalf("sample %d: delta %v, want %v", i, gotDelta, wantDelta)
		}
	}
	if _, err := Preprocess(positions[:2], wrapped, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Preprocess(positions, wrapped, 4); err == nil {
		t.Error("even smoothing window accepted")
	}
}

func TestProfileDeltaDist(t *testing.T) {
	ant := geom.V3(0, 1, 0)
	positions := linePositions(geom.V3(-0.3, 0, 0), geom.V3(0.3, 0, 0), 50)
	obs := genObs(ant, positions, 0, 1.234, nil)
	p, err := NewProfile(obs, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	refD := ant.Dist(p.RefPos())
	for i := range positions {
		want := ant.Dist(positions[i]) - refD
		if math.Abs(p.DeltaDist(i)-want) > 1e-9 {
			t.Fatalf("Δd[%d] = %v, want %v", i, p.DeltaDist(i), want)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	obs := genObs(geom.V3(0, 1, 0), linePositions(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 5), 0, 0, nil)
	if _, err := NewProfile(obs, 0); !errors.Is(err, ErrBadLambda) {
		t.Errorf("zero lambda err = %v", err)
	}
	if _, err := NewProfile(obs[:1], testLambda); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("single obs err = %v", err)
	}
	if _, err := NewProfileRef(obs, testLambda, 5); err == nil {
		t.Error("out-of-range ref accepted")
	}
	if _, err := NewProfileRef(obs, testLambda, -1); err == nil {
		t.Error("negative ref accepted")
	}
}

func TestEquationSatisfiedByTruth(t *testing.T) {
	// The exact target position and reference distance must satisfy every
	// generated equation when phases are noiseless.
	ant := geom.V3(0.7, 0.9, 0.4)
	positions := []geom.Vec3{
		geom.V3(-0.3, 0, 0), geom.V3(0.1, -0.2, 0.1),
		geom.V3(0.3, 0.1, -0.2), geom.V3(0, 0.3, 0.2), geom.V3(-0.1, 0.2, 0.3),
	}
	obs := genObs(ant, positions, 0, 0.5, nil)
	p, err := NewProfile(obs, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	dr := ant.Dist(p.RefPos())
	pairs := SubsampledAllPairs(len(obs), 100)
	sys, err := BuildSystem(p, pairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{ant.X, ant.Y, ant.Z, dr}
	ax, err := sys.A.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ax {
		if math.Abs(ax[i]-sys.K[i]) > 1e-9 {
			t.Fatalf("equation %d: %v != %v", i, ax[i], sys.K[i])
		}
	}
}

func TestBuildSystemValidation(t *testing.T) {
	obs := genObs(geom.V3(0, 1, 0), linePositions(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 5), 0, 0, nil)
	p, err := NewProfile(obs, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSystem(p, StridePairs(5, 1), 4); err == nil {
		t.Error("dim 4 accepted")
	}
	if _, err := BuildSystem(p, []Pair{{0, 1}}, 2); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("too-few-pairs err = %v", err)
	}
	if _, err := BuildSystem(p, []Pair{{0, 9}, {0, 1}, {1, 2}, {2, 3}}, 2); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := BuildSystem(p, []Pair{{1, 1}, {0, 1}, {1, 2}, {2, 3}}, 2); err == nil {
		t.Error("self pair accepted")
	}
}

func TestSolve2DCircleNoiseless(t *testing.T) {
	// Paper Fig. 6 setup: circle radius 0.3 m, antenna 1 m away.
	for _, ant := range []geom.Vec3{
		geom.V3(1, 0, 0), geom.V3(0.7071, 0.7071, 0), geom.V3(0, 1, 0),
	} {
		positions := circlePositions(geom.V3(0, 0, 0), 0.3, 90)
		obs := genObs(ant, positions, 0, 0, nil)
		sol, err := Locate2D(obs, testLambda, StridePairs(len(obs), 22), SolveOptions{})
		if err != nil {
			t.Fatalf("ant %v: %v", ant, err)
		}
		if got := sol.Position.Dist(ant); got > 1e-6 {
			t.Errorf("ant %v: error %v m", ant, got)
		}
		wantDr := ant.Dist(obs[len(obs)/2].Pos)
		if math.Abs(sol.RefDistance-wantDr) > 1e-6 {
			t.Errorf("ant %v: d_r = %v, want %v", ant, sol.RefDistance, wantDr)
		}
		if !sol.FullyKnown() {
			t.Errorf("ant %v: coordinates not fully known", ant)
		}
	}
}

func TestSolve2DCircleNoisy(t *testing.T) {
	// With the paper's N(0, 0.1) noise the error should be sub-centimetre
	// on average.
	rng := stats.NewRNG(99)
	ant := geom.V3(1, 0, 0)
	var errsum float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		positions := circlePositions(geom.V3(0, 0, 0), 0.3, 180)
		obs := genObs(ant, positions, 0.1, 0, rng)
		sol, err := Locate2D(obs, testLambda, StridePairs(len(obs), 45), DefaultSolveOptions())
		if err != nil {
			t.Fatal(err)
		}
		errsum += sol.Position.Dist(ant)
	}
	// The shared reference-sample noise bounds accuracy from below; the
	// experiment harness additionally smooths, which the paper also does.
	if avg := errsum / trials; avg > 0.035 {
		t.Errorf("average error %v m, want < 3.5 cm", avg)
	}
}

func TestSolve3DNoiseless(t *testing.T) {
	ant := geom.V3(0.2, 0.9, 0.3)
	// Helix: genuine 3-D diversity.
	var positions []geom.Vec3
	for i := 0; i < 120; i++ {
		a := 4 * math.Pi * float64(i) / 120
		positions = append(positions, geom.V3(
			0.3*math.Cos(a), 0.3*math.Sin(a), 0.2*float64(i)/120))
	}
	obs := genObs(ant, positions, 0, 0, nil)
	sol, err := Locate3D(obs, testLambda, StridePairs(len(obs), 30), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-6 {
		t.Errorf("error %v m", got)
	}
}

func TestLowerDimensionLinearTrajectory(t *testing.T) {
	// Paper Fig. 9 setup: tag from −0.3 to 0.3 on the x-axis, antenna at
	// (0.2, 1). The y column vanishes and is recovered through d_r.
	ant := geom.V3(0.2, 1, 0)
	positions := linePositions(geom.V3(-0.3, 0, 0), geom.V3(0.3, 0, 0), 100)
	obs := genObs(ant, positions, 0, 0, nil)
	p, err := NewProfile(obs, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	pairs := SeparationPairs(positions, 0.2)
	sys, err := BuildSystem(p, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveSystem(sys, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Known[1] {
		t.Fatal("y unexpectedly known for a linear x trajectory")
	}
	if math.IsNaN(sol.Position.X) || math.Abs(sol.Position.X-0.2) > 1e-6 {
		t.Fatalf("x = %v, want 0.2", sol.Position.X)
	}
	if err := sol.RecoverMissing(p.RefPos(), true); err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-6 {
		t.Errorf("error after recovery: %v m", got)
	}
	// The negative branch lands on the mirror image.
	sol2, err := SolveSystem(sys, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol2.RecoverMissing(p.RefPos(), false); err != nil {
		t.Fatal(err)
	}
	mirror := geom.V3(0.2, -1, 0)
	if got := sol2.Position.Dist(mirror); got > 1e-6 {
		t.Errorf("negative branch error: %v m", got)
	}
}

func TestRecoverMissingEdgeCases(t *testing.T) {
	sol := &Solution{
		Position:    geom.V3(0.5, math.NaN(), 0),
		Known:       [3]bool{true, false, false},
		Dim:         2,
		RefDistance: 0.3, // smaller than |x − x_r| = 0.5: no real solution
	}
	if err := sol.RecoverMissing(geom.V3(0, 0, 0), true); !errors.Is(err, ErrNoSolution) {
		t.Errorf("err = %v, want ErrNoSolution", err)
	}
	// Slight negative discriminant clamps to zero.
	sol2 := &Solution{
		Position:    geom.V3(0.5, math.NaN(), 0),
		Known:       [3]bool{true, false, false},
		Dim:         2,
		RefDistance: 0.4999,
	}
	if err := sol2.RecoverMissing(geom.V3(0, 0, 0), true); err != nil {
		t.Errorf("clamp failed: %v", err)
	}
	if math.Abs(sol2.Position.Y) > 0.03 {
		t.Errorf("clamped y = %v", sol2.Position.Y)
	}
	// Fully known: no-op.
	sol3 := &Solution{
		Position: geom.V3(1, 2, 0),
		Known:    [3]bool{true, true, false},
		Dim:      2,
	}
	if err := sol3.RecoverMissing(geom.V3(0, 0, 0), true); err != nil {
		t.Errorf("no-op recovery errored: %v", err)
	}
	// Two unknowns cannot be recovered.
	sol4 := &Solution{
		Known: [3]bool{true, false, false},
		Dim:   3,
	}
	if err := sol4.RecoverMissing(geom.V3(0, 0, 0), true); !errors.Is(err, ErrDegenerateGeometry) {
		t.Errorf("double-unknown err = %v", err)
	}
}

func TestLocate2DLineWorldFrame(t *testing.T) {
	// An oblique line (not axis aligned) in the z = 0.4 plane. The frame
	// transform must bring the estimate back to world coordinates.
	dir := geom.V2(1, 0.5).Unit()
	from := geom.V2(-0.4, -0.2)
	var positions []geom.Vec3
	for i := 0; i < 120; i++ {
		p := from.Add(dir.Scale(0.8 * float64(i) / 119))
		positions = append(positions, p.XYZ(0.4))
	}
	// Target on the +perp side of the line direction.
	mid := positions[len(positions)/2].XY()
	ant := mid.Add(dir.Perp().Scale(0.9)).XYZ(0.4)
	obs := genObs(ant, positions, 0, 0, nil)
	sol, err := Locate2DLine(obs, testLambda, 0.2, true, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-6 {
		t.Errorf("error %v m (got %v, want %v)", got, sol.Position, ant)
	}
	// The diagnostics added with the observability layer are populated even
	// without a tracer attached. This solve is unweighted, so Iterations
	// stays 0; the residual and condition fields must still be filled in.
	if sol.FinalResidual < 0 || math.IsNaN(sol.FinalResidual) {
		t.Errorf("FinalResidual = %v, want finite >= 0", sol.FinalResidual)
	}
	if sol.ConditionEstimate < 1 || math.IsNaN(sol.ConditionEstimate) {
		t.Errorf("ConditionEstimate = %v, want >= 1", sol.ConditionEstimate)
	}
	// Wrong side lands on the mirror image.
	sol2, err := Locate2DLine(obs, testLambda, 0.2, false, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mirror := mid.Add(dir.Perp().Scale(-0.9)).XYZ(0.4)
	if got := sol2.Position.Dist(mirror); got > 1e-6 {
		t.Errorf("mirror error %v m", got)
	}
}

func TestLocate2DLineValidation(t *testing.T) {
	positions := linePositions(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 10)
	obs := genObs(geom.V3(0, 1, 0), positions, 0, 0, nil)
	if _, err := Locate2DLine(obs[:3], testLambda, 0.2, true, SolveOptions{}); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("too-few err = %v", err)
	}
	if _, err := Locate2DLine(obs, testLambda, 0, true, SolveOptions{}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Locate2DLine(obs, testLambda, 5, true, SolveOptions{}); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("oversized interval err = %v", err)
	}
	same := genObs(geom.V3(0, 1, 0), []geom.Vec3{{}, {}, {}, {}}, 0, 0, nil)
	if _, err := Locate2DLine(same, testLambda, 0.2, true, SolveOptions{}); !errors.Is(err, ErrDegenerateGeometry) {
		t.Errorf("degenerate err = %v", err)
	}
}

func TestLocate3DPlanarCircle(t *testing.T) {
	// Circle in the z = 0 plane, antenna above and off-axis: the planar
	// lower-dimension 3-D case (Sec. III-C-2).
	ant := geom.V3(0.3, 0.8, 0.5)
	positions := circlePositions(geom.V3(0, 0, 0), 0.4, 120)
	obs := genObs(ant, positions, 0, 0, nil)
	pairs := StridePairs(len(obs), 30)
	sol, err := Locate3DPlanar(obs, testLambda, pairs, planarSideFor(ant, positions), SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-6 {
		t.Errorf("error %v m (got %v)", got, sol.Position)
	}
}

// planarSideFor determines which branch of the planar recovery corresponds
// to the true target, by reconstructing the frame the same way
// Locate3DPlanar does.
func planarSideFor(ant geom.Vec3, positions []geom.Vec3) bool {
	obs := make([]PosPhase, len(positions))
	for i, p := range positions {
		obs[i] = PosPhase{Pos: p}
	}
	origin := positions[len(positions)/2]
	u, v, w, err := planeFrame(obs, origin)
	_ = u
	_ = v
	if err != nil {
		return true
	}
	return ant.Sub(origin).Dot(w) >= 0
}

func TestLocate3DPlanarRejectsLine(t *testing.T) {
	// A single straight line cannot fix a 3-D position (Sec. III-C-2).
	positions := linePositions(geom.V3(-0.5, 0, 0), geom.V3(0.5, 0, 0), 50)
	obs := genObs(geom.V3(0, 1, 0.3), positions, 0, 0, nil)
	pairs := StridePairs(len(obs), 10)
	if _, err := Locate3DPlanar(obs, testLambda, pairs, true, SolveOptions{}); !errors.Is(err, ErrDegenerateGeometry) {
		t.Errorf("collinear err = %v", err)
	}
}

func TestWLSBeatsLSUnderOutliers(t *testing.T) {
	// Corrupt a contiguous chunk of phases (multipath burst); weighted
	// least squares should localise markedly better than plain LS.
	rng := stats.NewRNG(7)
	ant := geom.V3(1, 0, 0)
	var lsErr, wlsErr float64
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		positions := circlePositions(geom.V3(0, 0, 0), 0.3, 120)
		obs := genObs(ant, positions, 0.05, 0, rng)
		// Corrupt ~10% of samples with a strong multipath-like bias,
		// keeping the reference sample (index 60) clean: a corrupted
		// reference biases every equation identically, which no weighting
		// can undo.
		start := 5 + rng.Intn(10)
		for i := start; i < start+12; i++ {
			obs[i].Theta += 2.0
		}
		pairs := StridePairs(len(obs), 30)
		ls, err := Locate2D(obs, testLambda, pairs, SolveOptions{Weighted: false})
		if err != nil {
			t.Fatal(err)
		}
		wls, err := Locate2D(obs, testLambda, pairs, DefaultSolveOptions())
		if err != nil {
			t.Fatal(err)
		}
		lsErr += ls.Position.Dist(ant)
		wlsErr += wls.Position.Dist(ant)
	}
	if wlsErr >= lsErr {
		t.Errorf("WLS (%v) did not beat LS (%v)", wlsErr/trials, lsErr/trials)
	}
}

func TestSolveSystemReportsResidualDiagnostics(t *testing.T) {
	rng := stats.NewRNG(3)
	ant := geom.V3(1, 0, 0)
	positions := circlePositions(geom.V3(0, 0, 0), 0.3, 60)
	obs := genObs(ant, positions, 0.1, 0, rng)
	p, err := NewProfile(obs, testLambda)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := BuildSystem(p, StridePairs(len(obs), 15), 2)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveSystem(sys, DefaultSolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Residuals) != sys.A.Rows() || len(sol.Weights) != sys.A.Rows() {
		t.Fatal("diagnostics missing")
	}
	if sol.RMSResidual <= 0 || sol.MeanAbsResidual <= 0 {
		t.Error("residual magnitudes not positive under noise")
	}
	if sol.Iterations == 0 {
		t.Error("IRWLS did not iterate")
	}
	if sol.FinalResidual <= 0 || math.IsInf(sol.FinalResidual, 0) || math.IsNaN(sol.FinalResidual) {
		t.Errorf("FinalResidual = %v, want finite positive under noise", sol.FinalResidual)
	}
	if sol.ConditionEstimate < 1 || math.IsNaN(sol.ConditionEstimate) {
		t.Errorf("ConditionEstimate = %v, want >= 1", sol.ConditionEstimate)
	}
	for _, w := range sol.Weights {
		if w < 0 || w > 1 {
			t.Fatalf("weight %v outside [0,1]", w)
		}
	}
}

func TestStridePairs(t *testing.T) {
	if got := StridePairs(5, 2); len(got) != 3 || got[0] != (Pair{0, 2}) {
		t.Errorf("StridePairs = %v", got)
	}
	if got := StridePairs(3, 0); got != nil {
		t.Errorf("zero stride = %v", got)
	}
	if got := StridePairs(3, 3); got != nil {
		t.Errorf("oversized stride = %v", got)
	}
}

func TestSeparationPairs(t *testing.T) {
	positions := linePositions(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 11) // 0.1 spacing
	pairs := SeparationPairs(positions, 0.25)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	for _, pr := range pairs {
		if d := positions[pr.I].Dist(positions[pr.J]); d < 0.25-1e-9 {
			t.Errorf("pair %v separation %v < 0.25", pr, d)
		}
	}
	if got := SeparationPairs(positions, 0); got != nil {
		t.Errorf("zero separation = %v", got)
	}
	if got := SeparationPairs(positions, 10); len(got) != 0 {
		t.Errorf("unreachable separation = %v", got)
	}
}

func TestSubsampledAllPairs(t *testing.T) {
	all := SubsampledAllPairs(5, 100)
	if len(all) != 10 {
		t.Errorf("full set = %d pairs, want 10", len(all))
	}
	capped := SubsampledAllPairs(20, 30)
	if len(capped) > 30 || len(capped) < 25 {
		t.Errorf("capped = %d pairs", len(capped))
	}
	seen := map[Pair]bool{}
	for _, p := range capped {
		if p.I >= p.J {
			t.Fatalf("unordered pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	if got := SubsampledAllPairs(1, 10); got != nil {
		t.Errorf("n=1 pairs = %v", got)
	}
}
