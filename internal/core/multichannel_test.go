package core

import (
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
)

// hopLambdas are three FCC-style channels around 915 MHz.
var hopLambdas = []float64{
	rf.SpeedOfLight / 902.75e6,
	rf.SpeedOfLight / 915.25e6,
	rf.SpeedOfLight / 927.25e6,
}

// genHoppedChannels synthesises a circular scan split across hop channels,
// each with its own stable random offset.
func genHoppedChannels(ant geom.Vec3, n int, noiseStd float64, rng *stats.RNG) []ChannelObservations {
	offsets := []float64{rng.Angle(), rng.Angle(), rng.Angle()}
	chans := make([]ChannelObservations, len(hopLambdas))
	for c := range chans {
		chans[c].Lambda = hopLambdas[c]
	}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		p := geom.V3(0.3*math.Cos(a), 0.3*math.Sin(a), 0)
		c := (i / 10) % len(hopLambdas) // hop every 10 reads
		theta := rf.PhaseOfDistance(ant.Dist(p), hopLambdas[c]) + offsets[c]
		if noiseStd > 0 {
			theta += rng.Normal(0, noiseStd)
		}
		chans[c].Obs = append(chans[c].Obs, PosPhase{Pos: p, Theta: theta})
	}
	return chans
}

func TestLocate2DMultiChannelNoiseless(t *testing.T) {
	rng := stats.NewRNG(3)
	ant := geom.V3(0.9, 0.3, 0)
	chans := genHoppedChannels(ant, 240, 0, rng)
	sol, err := Locate2DMultiChannel(chans, 20, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-6 {
		t.Errorf("error %v m (got %v)", got, sol.Position)
	}
	if len(sol.RefDistances) != 3 {
		t.Fatalf("RefDistances = %d, want 3", len(sol.RefDistances))
	}
	// Each channel's reference distance must equal the distance from the
	// antenna to that channel's reference position, shifted by the
	// channel's offset converted to distance. The *coordinates* absorb
	// nothing; each d_r,c absorbs its channel's offset exactly.
	for c, dr := range sol.RefDistances {
		if math.IsNaN(dr) || dr <= 0 {
			t.Errorf("channel %d d_r = %v", c, dr)
		}
	}
}

func TestLocate2DMultiChannelNoisy(t *testing.T) {
	rng := stats.NewRNG(5)
	ant := geom.V3(1, 0, 0)
	var sum float64
	const trials = 15
	for i := 0; i < trials; i++ {
		chans := genHoppedChannels(ant, 360, 0.1, rng)
		sol, err := Locate2DMultiChannel(chans, 30, DefaultSolveOptions())
		if err != nil {
			t.Fatal(err)
		}
		sum += sol.Position.Dist(ant)
	}
	if avg := sum / trials; avg > 0.04 {
		t.Errorf("average hopped error %v m", avg)
	}
}

func TestNaiveSingleProfileFailsUnderHopping(t *testing.T) {
	// Treating hopped phases as one continuous profile (ignoring the
	// per-channel offsets) must do clearly worse than the multi-channel
	// solve — the motivation for the extension.
	rng := stats.NewRNG(7)
	ant := geom.V3(0.9, 0.3, 0)
	var naive, multi float64
	const trials = 10
	for i := 0; i < trials; i++ {
		chans := genHoppedChannels(ant, 240, 0.02, rng)
		// Naive: concatenate everything, pretend one wavelength.
		var all []PosPhase
		for _, ch := range chans {
			all = append(all, ch.Obs...)
		}
		sol, err := Locate2D(all, hopLambdas[1], StridePairs(len(all), 20),
			DefaultSolveOptions())
		if err == nil {
			naive += sol.Position.Dist(ant)
		} else {
			naive += 1 // count a failed solve as a 1 m error
		}
		msol, err := Locate2DMultiChannel(chans, 20, DefaultSolveOptions())
		if err != nil {
			t.Fatal(err)
		}
		multi += msol.Position.Dist(ant)
	}
	if multi >= naive {
		t.Errorf("multi-channel (%v) not better than naive (%v)",
			multi/trials, naive/trials)
	}
	if avg := multi / trials; avg > 0.02 {
		t.Errorf("multi-channel error %v m", avg)
	}
}

func TestLocate3DMultiChannel(t *testing.T) {
	rng := stats.NewRNG(11)
	ant := geom.V3(0.2, 0.9, 0.3)
	offsets := []float64{rng.Angle(), rng.Angle(), rng.Angle()}
	chans := make([]ChannelObservations, 3)
	for c := range chans {
		chans[c].Lambda = hopLambdas[c]
	}
	// Helix for 3-D diversity.
	n := 300
	for i := 0; i < n; i++ {
		a := 4 * math.Pi * float64(i) / float64(n)
		p := geom.V3(0.3*math.Cos(a), 0.3*math.Sin(a), 0.25*float64(i)/float64(n))
		c := (i / 10) % 3
		chans[c].Obs = append(chans[c].Obs, PosPhase{
			Pos:   p,
			Theta: rf.PhaseOfDistance(ant.Dist(p), hopLambdas[c]) + offsets[c],
		})
	}
	sol, err := Locate3DMultiChannel(chans, 25, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Position.Dist(ant); got > 1e-5 {
		t.Errorf("3-D hopped error %v m", got)
	}
}

func TestBuildMultiChannelSystemValidation(t *testing.T) {
	good := genHoppedChannels(geom.V3(1, 0, 0), 120, 0, stats.NewRNG(1))
	if _, _, err := BuildMultiChannelSystem(nil, nil, 2); err == nil {
		t.Error("empty channels accepted")
	}
	if _, _, err := BuildMultiChannelSystem(good, make([][]Pair, 1), 2); err == nil {
		t.Error("mismatched pair sets accepted")
	}
	if _, _, err := BuildMultiChannelSystem(good, make([][]Pair, 3), 4); err == nil {
		t.Error("dim 4 accepted")
	}
	pairs := [][]Pair{{{0, 1}}, {}, {}}
	if _, _, err := BuildMultiChannelSystem(good, pairs, 2); err == nil {
		t.Error("underdetermined system accepted")
	}
	bad := [][]Pair{{{0, 999}}, {{0, 1}, {1, 2}, {2, 3}}, {{0, 1}, {1, 2}}}
	if _, _, err := BuildMultiChannelSystem(good, bad, 2); err == nil {
		t.Error("out-of-range pair accepted")
	}
}

func TestSplitChannels(t *testing.T) {
	obs := []PosPhase{{Theta: 1}, {Theta: 2}, {Theta: 3}, {Theta: 4}}
	labels := []int{7, 9, 7, 9}
	lambdas := map[int]float64{7: 0.32, 9: 0.33}
	chans, err := SplitChannels(obs, labels, lambdas)
	if err != nil {
		t.Fatal(err)
	}
	if len(chans) != 2 {
		t.Fatalf("channels = %d", len(chans))
	}
	if chans[0].Lambda != 0.32 || len(chans[0].Obs) != 2 {
		t.Errorf("channel 0 = %+v", chans[0])
	}
	if chans[1].Obs[1].Theta != 4 {
		t.Errorf("channel 1 order broken: %+v", chans[1])
	}
	if _, err := SplitChannels(obs, labels[:2], lambdas); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SplitChannels(obs, labels, map[int]float64{7: 0.32}); err == nil {
		t.Error("missing wavelength accepted")
	}
}
