package core

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
)

// The solve boundary must reject malformed input with typed errors instead of
// letting NaN/Inf propagate silently through the WLS normal equations. One
// test per rejection path.

func finitePositions(n int) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		out[i] = geom.V3(float64(i)*0.01, 0, 0)
	}
	return out
}

func TestPreprocessRejectsNaNPosition(t *testing.T) {
	pos := finitePositions(8)
	pos[3] = geom.V3(math.NaN(), 0, 0)
	_, err := Preprocess(pos, make([]float64, 8), 0)
	if !errors.Is(err, ErrNonFiniteInput) {
		t.Errorf("err = %v, want ErrNonFiniteInput", err)
	}
}

func TestPreprocessRejectsInfPosition(t *testing.T) {
	pos := finitePositions(8)
	pos[7] = geom.V3(0, math.Inf(-1), 0)
	_, err := Preprocess(pos, make([]float64, 8), 0)
	if !errors.Is(err, ErrNonFiniteInput) {
		t.Errorf("err = %v, want ErrNonFiniteInput", err)
	}
}

func TestPreprocessRejectsNaNPhase(t *testing.T) {
	phases := make([]float64, 8)
	phases[0] = math.NaN()
	_, err := Preprocess(finitePositions(8), phases, 0)
	if !errors.Is(err, ErrNonFiniteInput) {
		t.Errorf("err = %v, want ErrNonFiniteInput", err)
	}
}

func TestPreprocessRejectsInfPhase(t *testing.T) {
	phases := make([]float64, 8)
	phases[5] = math.Inf(1)
	_, err := Preprocess(finitePositions(8), phases, 0)
	if !errors.Is(err, ErrNonFiniteInput) {
		t.Errorf("err = %v, want ErrNonFiniteInput", err)
	}
}

func TestPreprocessRejectsMismatchedLengths(t *testing.T) {
	_, err := Preprocess(finitePositions(8), make([]float64, 7), 0)
	if !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("err = %v, want ErrTooFewObservations", err)
	}
}

func TestNewProfileRejectsNonFiniteLambda(t *testing.T) {
	obs := []PosPhase{
		{Pos: geom.V3(0, 0, 0), Theta: 0},
		{Pos: geom.V3(0.1, 0, 0), Theta: 1},
	}
	for _, lambda := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.3} {
		if _, err := NewProfile(obs, lambda); !errors.Is(err, ErrBadLambda) {
			t.Errorf("lambda %v: err = %v, want ErrBadLambda", lambda, err)
		}
	}
}

func TestNewProfileRejectsNonFiniteObservation(t *testing.T) {
	cases := map[string][]PosPhase{
		"NaN theta": {
			{Pos: geom.V3(0, 0, 0), Theta: 0},
			{Pos: geom.V3(0.1, 0, 0), Theta: math.NaN()},
		},
		"Inf position": {
			{Pos: geom.V3(math.Inf(1), 0, 0), Theta: 0},
			{Pos: geom.V3(0.1, 0, 0), Theta: 1},
		},
	}
	for name, obs := range cases {
		if _, err := NewProfile(obs, 0.3257); !errors.Is(err, ErrNonFiniteInput) {
			t.Errorf("%s: err = %v, want ErrNonFiniteInput", name, err)
		}
	}
}

// TestLocatorsRejectNonFiniteObservations checks that the public locators
// refuse poisoned observation sets at the boundary rather than returning a
// NaN estimate.
func TestLocatorsRejectNonFiniteObservations(t *testing.T) {
	obs := make([]PosPhase, 16)
	for i := range obs {
		obs[i] = PosPhase{Pos: geom.V3(float64(i)*0.02, 0, 0), Theta: float64(i) * 0.1}
	}
	obs[9].Theta = math.NaN()
	lambda := 0.3257
	if _, err := Locate2D(obs, lambda, StridePairs(len(obs), 4), DefaultSolveOptions()); !errors.Is(err, ErrNonFiniteInput) {
		t.Errorf("Locate2D: err = %v, want ErrNonFiniteInput", err)
	}
	if _, err := Locate2DLineIntervals(obs, lambda, []float64{0.1}, true, DefaultSolveOptions()); !errors.Is(err, ErrNonFiniteInput) {
		t.Errorf("Locate2DLineIntervals: err = %v, want ErrNonFiniteInput", err)
	}
	if _, err := Locate3D(obs, lambda, StridePairs(len(obs), 4), DefaultSolveOptions()); !errors.Is(err, ErrNonFiniteInput) {
		t.Errorf("Locate3D: err = %v, want ErrNonFiniteInput", err)
	}
}
