package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/rfid-lion/lion/internal/dsp"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// Errors returned by the localization pipeline.
var (
	// ErrTooFewObservations is returned when the input cannot produce
	// enough independent equations.
	ErrTooFewObservations = errors.New("core: too few observations")
	// ErrBadLambda is returned for non-positive wavelengths.
	ErrBadLambda = errors.New("core: wavelength must be positive")
	// ErrDegenerateGeometry is returned when the trajectory geometry cannot
	// determine the requested coordinates (e.g. a single straight line for
	// full 3-D localization, Sec. III-C).
	ErrDegenerateGeometry = errors.New("core: trajectory geometry is degenerate for the requested dimension")
	// ErrNoSolution is returned when the lower-dimension recovery has no
	// real solution (d_r smaller than the in-plane displacement).
	ErrNoSolution = errors.New("core: no real solution for the recovered coordinate")
	// ErrNonFiniteInput is returned when an observation carries a NaN or
	// infinite position or phase. Rejecting these at the solve boundary keeps
	// malformed network input (the liond ingest path) from poisoning a WLS
	// solve: one NaN anywhere in the system silently NaNs the whole estimate.
	ErrNonFiniteInput = errors.New("core: non-finite observation input")
)

// PosPhase is one calibrated measurement: the known tag position and the
// unwrapped phase observed there. All phases in one localization run must
// belong to a single continuous unwrapped profile so that phase differences
// translate to distance differences (Eq. 6).
type PosPhase struct {
	Pos   geom.Vec3
	Theta float64
}

// Preprocess converts raw wrapped phases into a continuous profile: it
// unwraps the modulo-2π jumps and optionally smooths with a centred
// moving-average window (Sec. IV-A). A window of zero or one disables
// smoothing; the window must be odd otherwise. Positions and phases must
// have equal length.
func Preprocess(positions []geom.Vec3, wrapped []float64, smoothWindow int) ([]PosPhase, error) {
	if len(positions) != len(wrapped) {
		return nil, fmt.Errorf("core: %d positions vs %d phases: %w",
			len(positions), len(wrapped), ErrTooFewObservations)
	}
	for i, p := range positions {
		if !p.IsFinite() {
			return nil, fmt.Errorf("core: position %d is %v: %w", i, p, ErrNonFiniteInput)
		}
	}
	for i, th := range wrapped {
		if math.IsNaN(th) || math.IsInf(th, 0) {
			return nil, fmt.Errorf("core: phase %d is %v: %w", i, th, ErrNonFiniteInput)
		}
	}
	theta := dsp.Unwrap(wrapped)
	if smoothWindow > 1 {
		sm, err := dsp.MovingAverage(theta, smoothWindow)
		if err != nil {
			return nil, fmt.Errorf("smooth: %w", err)
		}
		theta = sm
	}
	out := make([]PosPhase, len(positions))
	for i := range positions {
		out[i] = PosPhase{Pos: positions[i], Theta: theta[i]}
	}
	return out, nil
}

// Profile is a preprocessed measurement set ready for equation generation.
// Distance differences are taken relative to the sample at RefIndex
// (Eq. 6): Δd_t = λ/4π · (θ_t − θ_ref).
type Profile struct {
	Obs      []PosPhase
	Lambda   float64
	RefIndex int

	deltaD []float64 // cached Δd per observation
}

// NewProfile builds a profile over the observations with the middle sample
// as the reference position. At least two observations are required.
func NewProfile(obs []PosPhase, lambda float64) (*Profile, error) {
	return NewProfileRef(obs, lambda, len(obs)/2)
}

// NewProfileRef builds a profile with an explicit reference index.
func NewProfileRef(obs []PosPhase, lambda float64, refIndex int) (*Profile, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, ErrBadLambda
	}
	if len(obs) < 2 {
		return nil, ErrTooFewObservations
	}
	if refIndex < 0 || refIndex >= len(obs) {
		return nil, fmt.Errorf("core: reference index %d out of range [0,%d)",
			refIndex, len(obs))
	}
	for i, o := range obs {
		if !o.Pos.IsFinite() || math.IsNaN(o.Theta) || math.IsInf(o.Theta, 0) {
			return nil, fmt.Errorf("core: observation %d is %v: %w", i, o, ErrNonFiniteInput)
		}
	}
	cp := make([]PosPhase, len(obs))
	copy(cp, obs)
	p := &Profile{Obs: cp, Lambda: lambda, RefIndex: refIndex}
	p.deltaD = make([]float64, len(cp))
	ref := cp[refIndex].Theta
	for i, o := range cp {
		p.deltaD[i] = rf.DistanceOfPhaseDelta(o.Theta-ref, lambda)
	}
	return p, nil
}

// Len returns the number of observations.
func (p *Profile) Len() int { return len(p.Obs) }

// RefPos returns the reference tag position used for Δd.
func (p *Profile) RefPos() geom.Vec3 { return p.Obs[p.RefIndex].Pos }

// DeltaDist returns Δd_i, the distance difference of observation i relative
// to the reference observation.
func (p *Profile) DeltaDist(i int) float64 { return p.deltaD[i] }
