package core

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/stats"
)

// lineStream generates a long straight-line scan past a target, the exact
// shape the streaming engine feeds to a sliding-window line solver.
func lineStream(ant geom.Vec3, n int, noiseStd float64, seed int64) []PosPhase {
	positions := linePositions(geom.V3(-1.5, 0, 0), geom.V3(1.5, 0, 0), n)
	return genObs(ant, positions, noiseStd, 0, stats.NewRNG(seed))
}

var lineTestIntervals = []float64{0.2, 0.5}

// TestLineSessionRebuildMatchesBatch: the rebuild path (every first call) and
// Locate2DLineIntervals share assembly order, kernels, IRLS loop, and
// recovery arithmetic, so their Solutions must be bit-identical — not merely
// close.
func TestLineSessionRebuildMatchesBatch(t *testing.T) {
	ant := geom.V3(0.2, 0.9, 0)
	for _, noise := range []float64{0, 0.05} {
		stream := lineStream(ant, 40, noise, 7)
		opts := DefaultSolveOptions()
		want, err := Locate2DLineIntervals(stream, testLambda, lineTestIntervals, true, opts)
		if err != nil {
			t.Fatalf("noise %v: batch: %v", noise, err)
		}
		s, err := NewLineSession(testLambda, lineTestIntervals, true)
		if err != nil {
			t.Fatal(err)
		}
		var got Solution
		if err := s.Locate(stream, opts, &got); err != nil {
			t.Fatalf("noise %v: session: %v", noise, err)
		}
		if got.Position != want.Position {
			t.Errorf("noise %v: Position = %v, want %v (bit-identical)", noise, got.Position, want.Position)
		}
		if got.RefDistance != want.RefDistance {
			t.Errorf("noise %v: RefDistance = %v, want %v", noise, got.RefDistance, want.RefDistance)
		}
		if got.Iterations != want.Iterations {
			t.Errorf("noise %v: Iterations = %d, want %d", noise, got.Iterations, want.Iterations)
		}
		if got.FinalResidual != want.FinalResidual {
			t.Errorf("noise %v: FinalResidual = %v, want %v", noise, got.FinalResidual, want.FinalResidual)
		}
		if got.ConditionEstimate != want.ConditionEstimate {
			t.Errorf("noise %v: ConditionEstimate = %v, want %v", noise, got.ConditionEstimate, want.ConditionEstimate)
		}
		if len(got.Residuals) != len(want.Residuals) {
			t.Fatalf("noise %v: %d residuals, want %d", noise, len(got.Residuals), len(want.Residuals))
		}
		for i := range want.Residuals {
			if got.Residuals[i] != want.Residuals[i] {
				t.Fatalf("noise %v: residual %d = %v, want %v", noise, i, got.Residuals[i], want.Residuals[i])
			}
			if got.Weights[i] != want.Weights[i] {
				t.Fatalf("noise %v: weight %d = %v, want %v", noise, i, got.Weights[i], want.Weights[i])
			}
		}
		if st := s.Stats(); st.Rebuilds != 1 || st.Slides != 0 {
			t.Errorf("noise %v: stats = %+v, want 1 rebuild, 0 slides", noise, st)
		}
	}
}

// TestLineSessionSlideMatchesBatch drives a window sliding down a long scan
// and checks every incremental solve lands within the documented 1e-9 bound
// of the from-scratch batch solve, noiseless and noisy, including windows
// whose phases were re-unwrapped to a different 2π branch.
func TestLineSessionSlideMatchesBatch(t *testing.T) {
	ant := geom.V3(0.15, 0.8, 0)
	const window, step = 40, 2
	for _, noise := range []float64{0, 0.03} {
		stream := lineStream(ant, 160, noise, 11)
		opts := DefaultSolveOptions()
		s, err := NewLineSession(testLambda, lineTestIntervals, true)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(29)
		var got Solution
		for lo := 0; lo+window <= len(stream); lo += step {
			win := append([]PosPhase(nil), stream[lo:lo+window]...)
			// Model the per-window unwrap: each window's profile can sit on
			// its own 2π branch without changing the solution.
			off := 2 * math.Pi * float64(rng.Intn(7)-3)
			for i := range win {
				win[i].Theta += off
			}
			if err := s.Locate(win, opts, &got); err != nil {
				t.Fatalf("noise %v lo %d: session: %v", noise, lo, err)
			}
			want, err := Locate2DLineIntervals(win, testLambda, lineTestIntervals, true, opts)
			if err != nil {
				t.Fatalf("noise %v lo %d: batch: %v", noise, lo, err)
			}
			tol := 1e-9 * math.Max(1, want.ConditionEstimate)
			if d := got.Position.Dist(want.Position); d > tol {
				t.Fatalf("noise %v lo %d: position %v vs batch %v (|Δ| = %.3g > %.3g)",
					noise, lo, got.Position, want.Position, d, tol)
			}
		}
		st := s.Stats()
		if st.Slides == 0 {
			t.Errorf("noise %v: no slides served incrementally (stats %+v)", noise, st)
		}
		if st.IncrementalUpdates == 0 {
			t.Errorf("noise %v: no incremental normal-equation updates (stats %+v)", noise, st)
		}
		// The anchor reference sample is evicted every window/(2·step) slides,
		// so both paths must have been exercised.
		if st.Rebuilds < 2 {
			t.Errorf("noise %v: rebuilds = %d, want ≥ 2 (ref eviction)", noise, st.Rebuilds)
		}
	}
}

// TestLineSessionSteadyStateZeroAllocs is the tentpole acceptance test at the
// core layer: a warmed session locating a slid window into a reused Solution
// must not allocate, on slide-served and rebuild-served calls alike.
func TestLineSessionSteadyStateZeroAllocs(t *testing.T) {
	ant := geom.V3(0.1, 0.85, 0)
	stream := lineStream(ant, 160, 0.02, 3)
	const window, step = 40, 2
	opts := DefaultSolveOptions()
	s, err := NewLineSession(testLambda, lineTestIntervals, true)
	if err != nil {
		t.Fatal(err)
	}
	var sol Solution
	lo := 0
	locate := func() {
		if err := s.Locate(stream[lo:lo+window], opts, &sol); err != nil {
			t.Fatal(err)
		}
		lo += step
		if lo+window > len(stream) {
			lo = 0 // wrap: the jump back is a disjoint window → rebuild path
		}
	}
	for i := 0; i < 30; i++ { // warm-up: size every buffer, cross a rebuild
		locate()
	}
	allocs := testing.AllocsPerRun(200, locate)
	if allocs != 0 {
		t.Errorf("steady-state Locate allocates %.1f times per run, want 0", allocs)
	}
	if st := s.Stats(); st.Slides == 0 || st.Rebuilds < 2 {
		t.Errorf("alloc run did not cover both paths: %+v", st)
	}
}

// TestLineSessionSolutionMutationIsolated is the ownership satellite: a
// Solution filled by one Locate call is caller-owned, so scribbling over
// every field and slice must not perturb the next solve — neither through the
// session that produced it nor through the shared workspace scratch.
func TestLineSessionSolutionMutationIsolated(t *testing.T) {
	ant := geom.V3(0.2, 0.9, 0)
	stream := lineStream(ant, 80, 0.02, 19)
	const window, step = 40, 2
	opts := DefaultSolveOptions()

	run := func(vandalise bool) []Solution {
		s, err := NewLineSession(testLambda, lineTestIntervals, true)
		if err != nil {
			t.Fatal(err)
		}
		var out []Solution
		var sol Solution
		for lo := 0; lo+window <= len(stream); lo += step {
			if err := s.Locate(stream[lo:lo+window], opts, &sol); err != nil {
				t.Fatal(err)
			}
			cp := sol
			cp.Residuals = append([]float64(nil), sol.Residuals...)
			cp.Weights = append([]float64(nil), sol.Weights...)
			cp.RefDistances = append([]float64(nil), sol.RefDistances...)
			out = append(out, cp)
			if vandalise {
				for i := range sol.Residuals {
					sol.Residuals[i] = math.NaN()
				}
				for i := range sol.Weights {
					sol.Weights[i] = -1
				}
				for i := range sol.RefDistances {
					sol.RefDistances[i] = math.Inf(1)
				}
				sol.Position = geom.V3(math.NaN(), math.NaN(), math.NaN())
				sol.RefDistance = math.NaN()
			}
		}
		return out
	}

	clean := run(false)
	dirty := run(true)
	if len(clean) != len(dirty) {
		t.Fatalf("%d vs %d solves", len(clean), len(dirty))
	}
	for i := range clean {
		if clean[i].Position != dirty[i].Position {
			t.Fatalf("solve %d: mutation changed position: %v vs %v",
				i, clean[i].Position, dirty[i].Position)
		}
		if clean[i].RefDistance != dirty[i].RefDistance {
			t.Fatalf("solve %d: mutation changed RefDistance", i)
		}
		for j := range clean[i].Residuals {
			if clean[i].Residuals[j] != dirty[i].Residuals[j] {
				t.Fatalf("solve %d: mutation changed residual %d", i, j)
			}
		}
	}
}

// TestLineSessionRebuildTriggers covers each documented re-anchor condition.
func TestLineSessionRebuildTriggers(t *testing.T) {
	ant := geom.V3(0.2, 0.9, 0)
	stream := lineStream(ant, 200, 0.01, 31)
	const window = 40
	opts := DefaultSolveOptions()

	t.Run("RebuildEvery", func(t *testing.T) {
		s, err := NewLineSession(testLambda, lineTestIntervals, true)
		if err != nil {
			t.Fatal(err)
		}
		s.RebuildEvery = 2
		var sol Solution
		for lo := 0; lo < 10; lo++ {
			if err := s.Locate(stream[lo:lo+window], opts, &sol); err != nil {
				t.Fatal(err)
			}
		}
		if st := s.Stats(); st.Rebuilds < 4 {
			t.Errorf("RebuildEvery=2 over 10 solves: rebuilds = %d, want ≥ 4", st.Rebuilds)
		}
	})

	t.Run("RefEvicted", func(t *testing.T) {
		s, err := NewLineSession(testLambda, lineTestIntervals, true)
		if err != nil {
			t.Fatal(err)
		}
		var sol Solution
		if err := s.Locate(stream[:window], opts, &sol); err != nil {
			t.Fatal(err)
		}
		// Slide past the anchor reference sample (index window/2) in one hop
		// while keeping ≥2 samples of overlap.
		if err := s.Locate(stream[window/2+1:window/2+1+window], opts, &sol); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Rebuilds != 2 || st.Slides != 0 {
			t.Errorf("ref eviction: stats = %+v, want 2 rebuilds, 0 slides", st)
		}
	})

	t.Run("DisjointWindow", func(t *testing.T) {
		s, err := NewLineSession(testLambda, lineTestIntervals, true)
		if err != nil {
			t.Fatal(err)
		}
		var sol Solution
		if err := s.Locate(stream[:window], opts, &sol); err != nil {
			t.Fatal(err)
		}
		if err := s.Locate(stream[120:120+window], opts, &sol); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Rebuilds != 2 {
			t.Errorf("disjoint window: rebuilds = %d, want 2", st.Rebuilds)
		}
	})

	t.Run("IncoherentOverlap", func(t *testing.T) {
		s, err := NewLineSession(testLambda, lineTestIntervals, true)
		if err != nil {
			t.Fatal(err)
		}
		var sol Solution
		if err := s.Locate(stream[:window], opts, &sol); err != nil {
			t.Fatal(err)
		}
		// Same positions, but the overlap phases were rewritten (e.g. a
		// smoothing window ran over the seam): not a pure slide.
		win := append([]PosPhase(nil), stream[2:2+window]...)
		for i := range win[:10] {
			win[i].Theta += 0.05 * float64(i)
		}
		if err := s.Locate(win, opts, &sol); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Rebuilds != 2 || st.Slides != 0 {
			t.Errorf("incoherent overlap: stats = %+v, want 2 rebuilds, 0 slides", st)
		}
		// And the rebuild must still match batch bit-for-bit.
		want, err := Locate2DLineIntervals(win, testLambda, lineTestIntervals, true, opts)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Position != want.Position {
			t.Errorf("post-rebuild position %v, want %v", sol.Position, want.Position)
		}
	})

	t.Run("NonFiniteAppend", func(t *testing.T) {
		s, err := NewLineSession(testLambda, lineTestIntervals, true)
		if err != nil {
			t.Fatal(err)
		}
		var sol Solution
		if err := s.Locate(stream[:window], opts, &sol); err != nil {
			t.Fatal(err)
		}
		win := append([]PosPhase(nil), stream[2:2+window]...)
		win[window-1].Theta = math.NaN()
		if err := s.Locate(win, opts, &sol); !errors.Is(err, ErrNonFiniteInput) {
			t.Fatalf("NaN append: err = %v, want ErrNonFiniteInput", err)
		}
		// The failed call must not have corrupted the session.
		if err := s.Locate(stream[2:2+window], opts, &sol); err != nil {
			t.Fatalf("solve after rejected input: %v", err)
		}
	})
}

// TestLineSessionValidation mirrors the batch entry point's input contract.
func TestLineSessionValidation(t *testing.T) {
	if _, err := NewLineSession(0, []float64{0.2}, true); !errors.Is(err, ErrBadLambda) {
		t.Errorf("zero lambda: err = %v", err)
	}
	if _, err := NewLineSession(testLambda, nil, true); err == nil {
		t.Error("no intervals accepted")
	}
	if _, err := NewLineSession(testLambda, []float64{0.2, -1}, true); err == nil {
		t.Error("negative interval accepted")
	}
	s, err := NewLineSession(testLambda, []float64{0.2}, true)
	if err != nil {
		t.Fatal(err)
	}
	var sol Solution
	ant := geom.V3(0.2, 0.9, 0)
	stream := lineStream(ant, 40, 0, 1)
	if err := s.Locate(stream[:3], DefaultSolveOptions(), &sol); !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("3 observations: err = %v", err)
	}
	same := make([]PosPhase, 6)
	for i := range same {
		same[i] = PosPhase{Pos: geom.V3(1, 2, 0), Theta: 0}
	}
	if err := s.Locate(same, DefaultSolveOptions(), &sol); !errors.Is(err, ErrDegenerateGeometry) {
		t.Errorf("coincident observations: err = %v", err)
	}
	if err := s.Locate(stream, DefaultSolveOptions(), &sol); err != nil {
		t.Errorf("valid window after rejected ones: %v", err)
	}
}
