package recal

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/health"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stream"
)

// recalTrace synthesizes clean Eq. 2 samples of a tag marching monotonically
// along x (5 mm steps, 10 ms apart) past an antenna at center, phases
// shifted by a constant offset plus an optional per-sample perturbation.
// start indexes into the global trajectory so consecutive phases stay
// monotonic — windows never straddle a direction flip.
func recalTrace(center geom.Vec3, lambda, offset float64, start, n int, noise func(i int) float64) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		k := start + i
		pos := geom.V3(-1.0+0.005*float64(k), 0, 0)
		ph := rf.PhaseOfDistance(center.Dist(pos), lambda) + offset
		if noise != nil {
			ph += noise(k)
		}
		out[i] = stream.Sample{
			Time:  time.Duration(k) * 10 * time.Millisecond,
			Pos:   pos,
			Phase: rf.WrapPhase(ph),
		}
	}
	return out
}

// loopRig is an engine+monitor+controller stack wired the way cmd/liond
// wires them.
type loopRig struct {
	mon  *health.Monitor
	eng  *stream.Engine
	ctrl *Controller
}

func newLoopRig(t *testing.T, antenna geom.Vec3, lambda, calOffset float64, rules []health.Rule, ctrlCfg Config) *loopRig {
	t.Helper()
	mon, err := health.New(health.Config{
		Rules: rules,
		Calibrations: []health.Calibration{{
			Antenna: "A1", Center: antenna, Offset: calOffset, Lambda: lambda,
			Window: 64, MinSamples: 32,
		}},
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.New(stream.Config{
		WindowSize: 128,
		MinSamples: 32,
		SolveEvery: 16,
		Solver:     stream.Line2DSolver(lambda, []float64{0.2}, true, core.DefaultSolveOptions()),
		Monitor:    mon,
		Antenna:    "A1",
		Profile:    &stream.Profile{Antenna: "A1", Center: antenna, Offset: calOffset, Lambda: lambda},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrlCfg.Engine = eng
	ctrlCfg.Monitor = mon
	ctrlCfg.Antenna = "A1"
	ctrlCfg.Lambda = lambda
	ctrlCfg.PositiveSide = true
	ctrl, err := New(ctrlCfg)
	if err != nil {
		t.Fatal(err)
	}
	mon.SetOnTransition(ctrl.OnTransition)
	t.Cleanup(func() {
		ctrl.Close()
		eng.Close(context.Background())
	})
	return &loopRig{mon: mon, eng: eng, ctrl: ctrl}
}

// feed ingests samples in paced chunks with a Flush between them, the same
// cadence pattern the stream e2e tests use so the alert state machine sees
// distinct evaluation times.
func (r *loopRig) feed(t *testing.T, samples []stream.Sample) {
	t.Helper()
	for i := 0; i < len(samples); i += 40 {
		end := min(i+40, len(samples))
		for _, s := range samples[i:end] {
			if err := r.eng.Ingest("T1", s); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.eng.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

func findAlert(alerts []health.Alert, rule string, state health.State) *health.Alert {
	for i := range alerts {
		if alerts[i].Rule == rule && alerts[i].State == state {
			return &alerts[i]
		}
	}
	return nil
}

func (r *loopRig) waitOutcome(t *testing.T, want Outcome) Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range r.ctrl.History() {
			if ev.Outcome == want {
				return ev
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no %q event within deadline; history: %+v", want, r.ctrl.History())
	return Event{}
}

// TestClosedLoopEndToEnd walks the whole closed loop the paper stops short
// of: a calibrated stream drifts (antenna offset steps by 0.05 λ of ranging
// error), the drift alert fires, the controller re-solves the Eq. 17 offset
// and phase center from the live window, validates it on held-out samples,
// hot-swaps the profile with no restart — and the drift alert then resolves
// on its own because the monitor's reference moved with the swap.
func TestClosedLoopEndToEnd(t *testing.T) {
	antenna := geom.V3(0.05, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	const calOffset = 1.2
	step := 0.05 * 4 * math.Pi
	// Hold-down long enough (in stream time) that by the time the alert
	// fires, the 128-sample engine window holds only post-step samples —
	// the evidence the re-solve needs is then self-consistent.
	const holdDown = 1500 * time.Millisecond
	const resolveAfter = 300 * time.Millisecond

	rig := newLoopRig(t, antenna, lambda, calOffset, []health.Rule{{
		Name: "calibration_drift", Signal: health.SignalDrift, Kind: health.KindStatic,
		Threshold: 0.02, HoldDown: holdDown, ResolveAfter: resolveAfter,
		Severity: health.SevCritical,
	}}, Config{MinSamples: 64})

	// Phase 1: healthy stream at the calibrated offset. No alerts, no runs.
	rig.feed(t, recalTrace(antenna, lambda, calOffset, 0, 400, nil))
	if alerts := rig.mon.Alerts(); len(alerts) != 0 {
		t.Fatalf("healthy replay raised alerts: %+v", alerts)
	}
	if h := rig.ctrl.History(); len(h) != 0 {
		t.Fatalf("healthy replay triggered recalibration: %+v", h)
	}

	// Phase 2: the offset steps — an uncalibrated antenna swap mid-run.
	rig.feed(t, recalTrace(antenna, lambda, calOffset+step, 400, 400, nil))

	swapped := rig.waitOutcome(t, OutcomeSwapped)
	if swapped.Reason != "alert:calibration_drift" {
		t.Errorf("swap reason = %q, want alert:calibration_drift", swapped.Reason)
	}
	if math.Abs(swapped.DriftLambda-0.05) > 0.01 {
		t.Errorf("swap recorded drift %v λ, want ≈0.05", swapped.DriftLambda)
	}
	if swapped.Samples < 64 {
		t.Errorf("swap used %d evidence samples, want ≥64", swapped.Samples)
	}
	wantOffset := rf.WrapPhase(calOffset + step)
	if d := math.Abs(rf.WrapPhaseSigned(swapped.NewOffset - wantOffset)); d > 0.05 {
		t.Errorf("re-solved offset %v, want %v (Δ %v rad)", swapped.NewOffset, wantOffset, d)
	}
	if d := swapped.NewCenter.Dist(antenna); d > 0.02 {
		t.Errorf("re-solved center %v is %v m from truth %v", swapped.NewCenter, d, antenna)
	}
	if !(swapped.NewRMS < swapped.OldRMS) {
		t.Errorf("holdout RMS did not improve: old %v new %v", swapped.OldRMS, swapped.NewRMS)
	}
	prof, version, ok := rig.eng.ActiveProfile()
	if !ok || version != swapped.ProfileVersion || version < 2 {
		t.Fatalf("ActiveProfile version=%d ok=%v, want swap's %d", version, ok, swapped.ProfileVersion)
	}
	if d := math.Abs(rf.WrapPhaseSigned(prof.Offset - wantOffset)); d > 0.05 {
		t.Errorf("active profile offset %v, want %v", prof.Offset, wantOffset)
	}
	cal, ok := rig.mon.Calibration("A1")
	if !ok || math.Abs(rf.WrapPhaseSigned(cal.Offset-wantOffset)) > 0.05 {
		t.Errorf("monitor calibration offset %v ok=%v, want %v", cal.Offset, ok, wantOffset)
	}
	// Probation starts with the swap and clears when the alert resolves.
	// Phase 2 keeps streaming after the swap, so by now either is valid —
	// but probation without a resolving alert, or vice versa, is a bug.
	if !rig.ctrl.OnProbation() {
		if a := findAlert(rig.mon.Alerts(), "calibration_drift", health.StateResolved); a == nil {
			t.Errorf("probation cleared but drift alert never resolved: %+v", rig.mon.Alerts())
		}
	}

	// Phase 3: the stream continues at the new offset. Estimates stay on
	// the truth under the swapped profile, and with the drift reference
	// re-anchored the alert heals without intervention.
	rig.feed(t, recalTrace(antenna, lambda, calOffset+step, 800, 400, nil))
	est, ok := rig.eng.Latest("T1")
	if !ok || est.Err != nil {
		t.Fatalf("post-swap estimate: ok=%v err=%v", ok, est.Err)
	}
	if est.ProfileVersion != version {
		t.Errorf("post-swap estimate profile version %d, want %d", est.ProfileVersion, version)
	}
	if d := est.Solution.Position.Dist(antenna); d > 0.02 {
		t.Errorf("post-swap estimate %v is %v m from truth", est.Solution.Position, d)
	}
	resolved := false
	for _, a := range rig.mon.Alerts() {
		if a.Rule == "calibration_drift" && a.State == health.StateFiring {
			t.Errorf("drift alert still firing after recalibration: %+v", a)
		}
		if a.Rule == "calibration_drift" && a.State == health.StateResolved {
			resolved = true
		}
	}
	if !resolved {
		t.Errorf("drift alert did not resolve after swap: %+v", rig.mon.Alerts())
	}
	if rig.ctrl.OnProbation() {
		t.Error("probation not cleared by the alert resolving")
	}
}

// TestRejectedCandidateLeavesProfileUntouched: when the active profile is
// already the best explanation of the evidence (here: the truth, observed
// through zero-mean deterministic phase noise), a re-solve must not beat it
// by the margin — and a rejected candidate must leave the active profile,
// the monitor calibration, and the profile version exactly as they were.
func TestRejectedCandidateLeavesProfileUntouched(t *testing.T) {
	antenna := geom.V3(0.05, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	const calOffset = 2.1

	// Empty (not nil) rule set: no default rules, so only manual triggers run.
	rig := newLoopRig(t, antenna, lambda, calOffset, []health.Rule{}, Config{
		MinSamples: 64,
		Margin:     0.25,
	})
	// Zero-mean period-3 perturbation: balanced over both the training and
	// the every-4th holdout split, so no candidate offset can absorb it.
	noise := func(k int) float64 { return []float64{0.3, 0, -0.3}[k%3] }
	rig.feed(t, recalTrace(antenna, lambda, calOffset, 0, 128, noise))

	profBefore, verBefore, _ := rig.eng.ActiveProfile()
	ev, err := rig.ctrl.Trigger("manual")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Outcome != OutcomeRejected {
		t.Fatalf("outcome = %q (err %q), want rejected; event %+v", ev.Outcome, ev.Err, ev)
	}
	if ev.NewRMS <= (1-0.25)*ev.OldRMS {
		t.Errorf("event says candidate beat margin (old %v new %v) yet was rejected", ev.OldRMS, ev.NewRMS)
	}
	profAfter, verAfter, _ := rig.eng.ActiveProfile()
	if profAfter != profBefore || verAfter != verBefore {
		t.Errorf("rejected run changed profile: %+v v%d → %+v v%d", profBefore, verBefore, profAfter, verAfter)
	}
	cal, _ := rig.mon.Calibration("A1")
	if cal.Offset != calOffset {
		t.Errorf("rejected run changed monitor calibration offset to %v", cal.Offset)
	}
	if rig.ctrl.OnProbation() {
		t.Error("rejected run entered probation")
	}
}

// TestRollbackRestoresPreviousProfile: a swap enters probation; when the
// post-swap world turns out to match the previous profile again and the
// re-solve cannot produce a candidate (degenerate clustered geometry), the
// controller rolls the previous profile back in.
func TestRollbackRestoresPreviousProfile(t *testing.T) {
	antenna := geom.V3(0.05, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	const calOffset = 1.0
	const drifted = 2.3

	rig := newLoopRig(t, antenna, lambda, calOffset, []health.Rule{}, Config{MinSamples: 64})

	// Step 1: evidence at a drifted offset → manual trigger swaps.
	rig.feed(t, recalTrace(antenna, lambda, drifted, 0, 128, nil))
	ev, err := rig.ctrl.Trigger("manual")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Outcome != OutcomeSwapped {
		t.Fatalf("outcome = %q (err %q), want swapped", ev.Outcome, ev.Err)
	}
	if !rig.ctrl.OnProbation() {
		t.Fatal("no probation after swap")
	}

	// Step 2: the drift was transient — the stream reverts to the original
	// offset, but the tag now sits still (sub-millimetre jitter), so the
	// line solve has no pairing baseline and the re-solve must fail. The
	// previous profile explains this evidence exactly; the active one is
	// ~1.3 rad off. That is the rollback condition.
	clustered := make([]stream.Sample, 128)
	for i := range clustered {
		pos := geom.V3(0.2+0.0001*float64(i%7), 0, 0)
		clustered[i] = stream.Sample{
			Time:  time.Duration(128+i) * 10 * time.Millisecond,
			Pos:   pos,
			Phase: rf.WrapPhase(rf.PhaseOfDistance(antenna.Dist(pos), lambda) + calOffset),
		}
	}
	rig.feed(t, clustered)

	ev2, err := rig.ctrl.Trigger("manual")
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Outcome != OutcomeFailed {
		t.Fatalf("degenerate evidence outcome = %q, want failed", ev2.Outcome)
	}
	var rolled *Event
	for _, h := range rig.ctrl.History() {
		if h.Outcome == OutcomeRolledBack {
			rolled = &h
			break
		}
	}
	if rolled == nil {
		t.Fatalf("no rollback event; history: %+v", rig.ctrl.History())
	}
	if rolled.Reason != "rollback" {
		t.Errorf("rollback reason = %q", rolled.Reason)
	}
	prof, version, _ := rig.eng.ActiveProfile()
	if prof.Offset != calOffset {
		t.Errorf("active offset after rollback = %v, want original %v", prof.Offset, calOffset)
	}
	if version != rolled.ProfileVersion || version < 3 {
		t.Errorf("profile version %d, want rollback's %d (≥3)", version, rolled.ProfileVersion)
	}
	cal, _ := rig.mon.Calibration("A1")
	if cal.Offset != calOffset {
		t.Errorf("monitor calibration offset after rollback = %v", cal.Offset)
	}
	if rig.ctrl.OnProbation() {
		t.Error("probation survived the rollback")
	}
}

// TestControllerValidation covers New's configuration contract and the
// closed-controller behaviour.
func TestControllerValidation(t *testing.T) {
	antenna := geom.V3(0.05, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	mon, err := health.New(health.Config{
		Calibrations: []health.Calibration{{Antenna: "A1", Center: antenna, Offset: 1, Lambda: lambda}},
		FlightDepth:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := stream.New(stream.Config{
		WindowSize: 16, MinSamples: 8,
		Solver:  stream.Line2DSolver(lambda, []float64{0.2}, true, core.DefaultSolveOptions()),
		Antenna: "A1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close(context.Background())

	bad := []Config{
		{Monitor: mon, Antenna: "A1", Lambda: lambda},                                // no engine
		{Engine: eng, Antenna: "A1", Lambda: lambda},                                 // no monitor
		{Engine: eng, Monitor: mon, Lambda: lambda},                                  // no antenna
		{Engine: eng, Monitor: mon, Antenna: "A1"},                                   // no wavelength
		{Engine: eng, Monitor: mon, Antenna: "A1", Lambda: lambda, Margin: 1.5},      // margin out of range
		{Engine: eng, Monitor: mon, Antenna: "A1", Lambda: lambda, Margin: -0.1},     // negative margin
		{Engine: eng, Monitor: mon, Antenna: "uncalibrated-antenna", Lambda: lambda}, // no calibration
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}

	ctrl, err := New(Config{Engine: eng, Monitor: mon, Antenna: "A1", Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
	ctrl.Close() // idempotent
	if _, err := ctrl.Trigger("manual"); err != ErrClosed {
		t.Errorf("Trigger after Close: err = %v, want ErrClosed", err)
	}
}

// TestControllerRaceStress exercises every controller surface concurrently
// under the race detector: live ingest on several tags, manual triggers
// from two goroutines, synthetic alert transitions through the hook, and
// history/probation reads — while real swaps land on the engine. The
// invariants checked are modest (bounded history, monotonic sequence,
// consistent final profile); the -race run is the teeth.
func TestControllerRaceStress(t *testing.T) {
	antenna := geom.V3(0.05, 0.8, 0)
	lambda := rf.DefaultBand().Wavelength()
	const calOffset = 0.4
	const trueOffset = 2.9

	rig := newLoopRig(t, antenna, lambda, calOffset, []health.Rule{}, Config{
		MinSamples: 64,
		History:    8,
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, tag := range []string{"T1", "T2"} {
		wg.Add(1)
		go func(tag string) {
			defer wg.Done()
			for _, s := range recalTrace(antenna, lambda, trueOffset, 0, 600, nil) {
				if err := rig.eng.Ingest(tag, s); err != nil {
					t.Errorf("ingest %s: %v", tag, err)
					return
				}
			}
		}(tag)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := rig.ctrl.Trigger("stress"); err != nil {
					t.Errorf("trigger: %v", err)
					return
				}
			}
		}()
	}
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			state := health.StateFiring
			if i%2 == 1 {
				state = health.StateResolved
			}
			rig.ctrl.OnTransition(health.Alert{
				Rule: "calibration_drift", Scope: "antenna:A1", State: state, Value: 0.1,
			})
			rig.ctrl.History()
			rig.ctrl.OnProbation()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stop)
	churn.Wait()
	if err := rig.eng.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Let any queued alert-triggered run drain before asserting.
	if _, err := rig.ctrl.Trigger("drain"); err != nil {
		t.Fatal(err)
	}

	hist := rig.ctrl.History()
	if len(hist) == 0 || len(hist) > 8 {
		t.Fatalf("history length %d, want 1..8", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i-1].Seq <= hist[i].Seq {
			t.Errorf("history not newest-first by sequence: %d then %d", hist[i-1].Seq, hist[i].Seq)
		}
	}
	swappedSeen := false
	for _, ev := range hist {
		if ev.Outcome == OutcomeSwapped {
			swappedSeen = true
		}
	}
	prof, version, ok := rig.eng.ActiveProfile()
	if !ok {
		t.Fatal("no active profile after stress")
	}
	if swappedSeen && math.Abs(rf.WrapPhaseSigned(prof.Offset-trueOffset)) > 0.1 && prof.Offset != calOffset {
		t.Errorf("active profile offset %v is neither the re-solved %v nor the original %v", prof.Offset, trueOffset, calOffset)
	}
	_ = version
}
