// Package recal closes the calibration loop the paper leaves open: the
// drift detector (internal/health) can already *see* the Achilles' heel —
// a drifting antenna phase offset/center silently corrupting every linear
// localization — and this package *acts* on it. A Controller subscribes to
// the monitor's alert transitions; when a calibration-drift alert fires it
// pulls the firing antenna's live window evidence from the stream engine,
// re-solves the phase center and the Eq. 17 phase offset with the shared
// internal/calib solver core, validates the candidate against held-out
// samples, and — only if the fit improves by a configurable margin —
// atomically hot-swaps the antenna profile (stream.Engine.SwapProfile)
// and the drift reference (health.Monitor.SwapCalibration) with no
// restart. Every run is recorded in a bounded audit history; a swap
// enters probation until its alert resolves, with an automatic rollback
// to the previous profile if recalibration keeps failing while the old
// profile still fits the evidence better.
package recal

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/rfid-lion/lion/internal/calib"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/health"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/stream"
)

// ErrClosed is returned by Trigger after Close.
var ErrClosed = errors.New("recal: controller closed")

// Outcome classifies one recalibration run.
type Outcome string

const (
	// OutcomeSwapped: the candidate beat the active profile by the margin
	// and was hot-swapped in.
	OutcomeSwapped Outcome = "swapped"
	// OutcomeRejected: the candidate solved but did not improve the
	// held-out residual by the margin; the active profile is untouched.
	OutcomeRejected Outcome = "rejected"
	// OutcomeFailed: evidence was insufficient or the re-solve errored;
	// the active profile is untouched.
	OutcomeFailed Outcome = "failed"
	// OutcomeRolledBack: the previous profile was restored after the
	// post-swap profile kept drifting and could not be re-solved.
	OutcomeRolledBack Outcome = "rolled_back"
)

// Event is one audit-log entry: a recalibration run or a rollback.
type Event struct {
	// Seq numbers events from 1 in trigger order.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock start of the run.
	Time time.Time `json:"time"`
	// Reason is what triggered the run: "alert:<rule>", "manual", or
	// "rollback" for the synthetic rollback entry.
	Reason  string  `json:"reason"`
	Antenna string  `json:"antenna"`
	Outcome Outcome `json:"outcome"`
	// Err carries the failure detail for OutcomeFailed.
	Err string `json:"err,omitempty"`

	// Tag is the evidence tag whose window fed the re-solve; Samples the
	// number of window samples (training + holdout).
	Tag     string `json:"tag,omitempty"`
	Samples int    `json:"samples"`
	// DriftLambda is the drift alert's value at trigger time (fraction of
	// λ), zero for manual runs.
	DriftLambda float64 `json:"drift_lambda,omitempty"`

	// Old*/New* document the profile change: the active calibration at
	// trigger time and the candidate (populated when a candidate solved).
	OldCenter geom.Vec3 `json:"old_center"`
	OldOffset float64   `json:"old_offset"`
	NewCenter geom.Vec3 `json:"new_center,omitempty"`
	NewOffset float64   `json:"new_offset,omitempty"`
	// OldRMS/NewRMS are the held-out offset-model residuals (radians) of
	// the active and candidate profiles over the same holdout samples.
	OldRMS float64 `json:"old_rms,omitempty"`
	NewRMS float64 `json:"new_rms,omitempty"`
	// ProfileVersion is the stream profile version installed by a swap or
	// rollback, zero otherwise.
	ProfileVersion uint64 `json:"profile_version,omitempty"`
}

// Config parameterises a Controller.
type Config struct {
	// Engine is the stream engine whose windows provide evidence and whose
	// profile is swapped. Required.
	Engine *stream.Engine
	// Monitor provides the drift alerts, the active calibration record,
	// and receives the calibration swap. Required, and it must hold a
	// Calibration for Antenna.
	Monitor *health.Monitor
	// Antenna is the calibrated antenna this controller manages. Required.
	Antenna string
	// Lambda is the carrier wavelength, metres. Required.
	Lambda float64
	// Rule is the alert rule name that triggers recalibration; empty
	// defaults to "calibration_drift".
	Rule string
	// Margin is the required relative improvement of the held-out residual
	// before a candidate is accepted: candRMS ≤ (1−Margin)·activeRMS.
	// Zero defaults to 0.05; it may be set negative-free only in [0, 1).
	Margin float64
	// HoldoutEvery holds out every Nth evidence sample for validation
	// (the re-solve never sees them). Zero defaults to 4.
	HoldoutEvery int
	// MinSamples is the minimum evidence window length for a re-solve;
	// zero defaults to 64.
	MinSamples int
	// Intervals are the pairing intervals swept by the re-solve; nil
	// defaults to calib.DefaultIntervals.
	Intervals []float64
	// PositiveSide places the antenna on the positive side of the scan
	// line, as in the offline pipeline.
	PositiveSide bool
	// History bounds the audit log; zero defaults to 32.
	History int
	// Registry receives the lion_recal_* metrics. Nil means a private
	// registry.
	Registry *obs.Registry
	// Logger, when non-nil, gets one structured line per run and swap.
	Logger *obs.Logger
}

func (c Config) rule() string {
	if c.Rule == "" {
		return "calibration_drift"
	}
	return c.Rule
}

func (c Config) margin() float64 {
	if c.Margin == 0 {
		return 0.05
	}
	return c.Margin
}

func (c Config) holdoutEvery() int {
	if c.HoldoutEvery <= 1 {
		return 4
	}
	return c.HoldoutEvery
}

func (c Config) minSamples() int {
	if c.MinSamples <= 0 {
		return 64
	}
	return c.MinSamples
}

func (c Config) history() int {
	if c.History <= 0 {
		return 32
	}
	return c.History
}

// probation tracks a swap that has not yet proven itself: it clears when
// the drift alert resolves, and enables rollback while it lasts.
type probation struct {
	prev health.Calibration
}

// request is one coalesced trigger.
type request struct {
	reason string
	drift  float64
	tag    string // evidence tag hint from the alert
}

// Controller is the closed-loop recalibration worker. Wire it up with
// Monitor.SetOnTransition(ctrl.OnTransition); alert-triggered runs execute
// on the controller's own goroutine (coalesced — at most one queued), so
// the monitor's solve-path hook never blocks on a re-solve.
type Controller struct {
	cfg Config

	// runMu serializes recalibration runs (worker loop vs manual Trigger).
	runMu sync.Mutex

	mu        sync.Mutex
	seq       uint64
	history   []Event
	probation *probation
	closed    bool

	trigCh chan request
	stopCh chan struct{}
	wg     sync.WaitGroup

	runs         map[Outcome]*obs.Counter
	solveSeconds *obs.Histogram
	logger       *obs.Logger
}

// solveBuckets size the re-solve latency histogram: an adaptive Eq. 17
// re-solve over one window is sub-millisecond to tens of milliseconds.
var solveBuckets = []float64{1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 1}

// New validates the configuration and starts the controller's worker.
func New(cfg Config) (*Controller, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("recal: an engine is required")
	}
	if cfg.Monitor == nil {
		return nil, fmt.Errorf("recal: a monitor is required")
	}
	if cfg.Antenna == "" {
		return nil, fmt.Errorf("recal: an antenna id is required")
	}
	if !(cfg.Lambda > 0) {
		return nil, fmt.Errorf("recal: wavelength %v must be positive", cfg.Lambda)
	}
	if cfg.Margin < 0 || cfg.Margin >= 1 {
		return nil, fmt.Errorf("recal: margin %v must be in [0, 1)", cfg.Margin)
	}
	if _, ok := cfg.Monitor.Calibration(cfg.Antenna); !ok {
		return nil, fmt.Errorf("recal: monitor has no calibration for antenna %q", cfg.Antenna)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Controller{
		cfg:    cfg,
		trigCh: make(chan request, 1),
		stopCh: make(chan struct{}),
		runs:   make(map[Outcome]*obs.Counter, 4),
		solveSeconds: reg.Histogram("lion_recal_solve_seconds",
			"Wall time of one recalibration re-solve (evidence to verdict).", solveBuckets),
		logger: cfg.Logger,
	}
	runs := reg.CounterVec("lion_recal_runs_total",
		"Recalibration runs, by outcome.", "outcome")
	for _, o := range []Outcome{OutcomeSwapped, OutcomeRejected, OutcomeFailed, OutcomeRolledBack} {
		// metriclint:bounded outcomes are the four fixed Outcome constants
		c.runs[o] = runs.With(string(o))
	}
	reg.GaugeFunc("lion_recal_active_version",
		"Stream profile version installed by recalibration (0 = factory calibration).", func() float64 {
			_, v, _ := cfg.Engine.ActiveProfile()
			return float64(v)
		})
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// OnTransition is the health.Monitor alert hook: a firing drift alert for
// this controller's antenna queues a recalibration run (coalescing — a
// queued run always re-reads fresh evidence, so back-to-back transitions
// collapse into one run); a resolving one ends the post-swap probation.
func (c *Controller) OnTransition(a health.Alert) {
	if a.Rule != c.cfg.rule() || a.Scope != "antenna:"+c.cfg.Antenna {
		return
	}
	switch a.State {
	case health.StateFiring:
		req := request{reason: "alert:" + a.Rule, drift: a.Value}
		if n := len(a.Evidence); n > 0 {
			req.tag = a.Evidence[n-1].Tag
		}
		select {
		case c.trigCh <- req:
		default: // a run is already queued; it will see the same evidence
		}
	case health.StateResolved:
		c.mu.Lock()
		c.probation = nil
		c.mu.Unlock()
		c.logger.Info("recal probation cleared", "antenna", c.cfg.Antenna, "rule", a.Rule)
	}
}

// Trigger runs one recalibration synchronously (the manual path behind
// POST /v1/recal/trigger) and returns its audit event.
func (c *Controller) Trigger(reason string) (Event, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return Event{}, ErrClosed
	}
	if reason == "" {
		reason = "manual"
	}
	return c.run(request{reason: reason}), nil
}

// History returns the audit log, newest first.
func (c *Controller) History() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.history))
	for i, ev := range c.history {
		out[len(out)-1-i] = ev
	}
	return out
}

// OnProbation reports whether a swap is awaiting its alert resolution.
func (c *Controller) OnProbation() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.probation != nil
}

// Close stops the worker. Nil-safe and idempotent; concurrent Trigger
// calls finish.
func (c *Controller) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stopCh)
	c.wg.Wait()
}

func (c *Controller) loop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopCh:
			return
		case req := <-c.trigCh:
			c.run(req)
		}
	}
}

// evidence selects the re-solve input: the hinted tag's live window when it
// is long enough, otherwise the longest window the engine holds. Raw
// phases — profile-independent, so candidate and active profile can be
// scored on the same measurements.
func (c *Controller) evidence(hint string) (tag string, samples []stream.Sample) {
	if hint != "" {
		if ws := c.cfg.Engine.WindowSamples(hint); len(ws) >= c.cfg.minSamples() {
			return hint, ws
		}
	}
	for _, t := range c.cfg.Engine.Tags() {
		if ws := c.cfg.Engine.WindowSamples(t); len(ws) > len(samples) {
			tag, samples = t, ws
		}
	}
	return tag, samples
}

// split partitions evidence deterministically: every holdoutEvery-th sample
// is held out for validation, the rest train the re-solve.
func split(samples []stream.Sample, every int) (trainPos []geom.Vec3, trainPh []float64, holdPos []geom.Vec3, holdPh []float64) {
	for i, s := range samples {
		if i%every == every-1 {
			holdPos = append(holdPos, s.Pos)
			holdPh = append(holdPh, s.Phase)
		} else {
			trainPos = append(trainPos, s.Pos)
			trainPh = append(trainPh, s.Phase)
		}
	}
	return
}

// run executes one recalibration: evidence → Eq. 17 re-solve → held-out
// validation → swap or reject, with a rollback check while on probation.
func (c *Controller) run(req request) Event {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	begin := time.Now()

	ev := Event{
		Time: begin, Reason: req.reason, Antenna: c.cfg.Antenna,
		DriftLambda: req.drift,
	}
	active, ok := c.cfg.Monitor.Calibration(c.cfg.Antenna)
	if !ok {
		ev.Outcome = OutcomeFailed
		ev.Err = fmt.Sprintf("no calibration registered for antenna %q", c.cfg.Antenna)
		c.record(ev)
		return ev
	}
	ev.OldCenter, ev.OldOffset = active.Center, active.Offset

	tag, samples := c.evidence(req.tag)
	ev.Tag, ev.Samples = tag, len(samples)
	if len(samples) < c.cfg.minSamples() {
		ev.Outcome = OutcomeFailed
		ev.Err = fmt.Sprintf("insufficient evidence: %d samples across live windows, need %d",
			len(samples), c.cfg.minSamples())
		c.record(ev)
		c.solveSeconds.Observe(time.Since(begin).Seconds())
		return ev
	}

	trainPos, trainPh, holdPos, holdPh := split(samples, c.cfg.holdoutEvery())
	activeRMS := calib.OffsetResidualRMS(holdPos, holdPh, active.Center, active.Offset, c.cfg.Lambda)
	ev.OldRMS = activeRMS

	res, err := calib.EstimateLine(trainPos, trainPh, calib.Config{
		Lambda:       c.cfg.Lambda,
		Intervals:    c.cfg.Intervals,
		PositiveSide: c.cfg.PositiveSide,
		Adaptive:     true,
	})
	if err != nil {
		ev.Outcome = OutcomeFailed
		ev.Err = err.Error()
		c.record(ev)
		c.maybeRollback(active, holdPos, holdPh, activeRMS, math.Inf(1))
		c.solveSeconds.Observe(time.Since(begin).Seconds())
		return ev
	}
	candRMS := calib.OffsetResidualRMS(holdPos, holdPh, res.Center, res.Offset, c.cfg.Lambda)
	ev.NewCenter, ev.NewOffset, ev.NewRMS = res.Center, res.Offset, candRMS

	// Accept only a real improvement on samples the solve never saw. NaN
	// comparisons are false, so degenerate residuals reject safely.
	if candRMS <= (1-c.cfg.margin())*activeRMS {
		cal := active
		cal.Center, cal.Offset = res.Center, res.Offset
		version, swapErr := c.swap(cal)
		if swapErr != nil {
			ev.Outcome = OutcomeFailed
			ev.Err = swapErr.Error()
			c.record(ev)
			c.solveSeconds.Observe(time.Since(begin).Seconds())
			return ev
		}
		ev.Outcome = OutcomeSwapped
		ev.ProfileVersion = version
		c.mu.Lock()
		c.probation = &probation{prev: active}
		c.mu.Unlock()
		c.record(ev)
		c.logger.Info("recal profile swapped",
			"antenna", c.cfg.Antenna, "tag", tag, "version", version,
			"old_offset", active.Offset, "new_offset", res.Offset,
			"old_rms", activeRMS, "new_rms", candRMS)
	} else {
		ev.Outcome = OutcomeRejected
		c.record(ev)
		c.logger.Info("recal candidate rejected",
			"antenna", c.cfg.Antenna, "tag", tag,
			"active_rms", activeRMS, "candidate_rms", candRMS, "margin", c.cfg.margin())
		c.maybeRollback(active, holdPos, holdPh, activeRMS, candRMS)
	}
	c.solveSeconds.Observe(time.Since(begin).Seconds())
	return ev
}

// swap installs a calibration as both the engine's antenna profile and the
// monitor's drift reference. The engine swap carries the consistency
// barrier; the monitor swap resets the drift window so the alert heals
// under the new profile.
func (c *Controller) swap(cal health.Calibration) (uint64, error) {
	version, err := c.cfg.Engine.SwapProfile(stream.Profile{
		Antenna: cal.Antenna, Center: cal.Center, Offset: cal.Offset, Lambda: cal.Lambda,
	})
	if err != nil {
		return 0, err
	}
	if err := c.cfg.Monitor.SwapCalibration(cal); err != nil {
		return 0, err
	}
	return version, nil
}

// maybeRollback restores the pre-swap profile when a post-swap antenna
// keeps alerting but cannot be recalibrated (candidate failed or rejected)
// while the previous profile still fits the current evidence better than
// the active one by the margin — the escape hatch for a swap that made
// things worse.
func (c *Controller) maybeRollback(active health.Calibration, holdPos []geom.Vec3, holdPh []float64, activeRMS, candRMS float64) {
	c.mu.Lock()
	p := c.probation
	c.mu.Unlock()
	if p == nil || len(holdPos) == 0 {
		return
	}
	prevRMS := calib.OffsetResidualRMS(holdPos, holdPh, p.prev.Center, p.prev.Offset, c.cfg.Lambda)
	if !(prevRMS <= (1-c.cfg.margin())*activeRMS && prevRMS < candRMS) {
		return
	}
	ev := Event{
		Time: time.Now(), Reason: "rollback", Antenna: c.cfg.Antenna,
		OldCenter: active.Center, OldOffset: active.Offset, OldRMS: activeRMS,
		NewCenter: p.prev.Center, NewOffset: p.prev.Offset, NewRMS: prevRMS,
	}
	version, err := c.swap(p.prev)
	if err != nil {
		ev.Outcome = OutcomeFailed
		ev.Err = err.Error()
		c.record(ev)
		return
	}
	ev.Outcome = OutcomeRolledBack
	ev.ProfileVersion = version
	c.mu.Lock()
	c.probation = nil
	c.mu.Unlock()
	c.record(ev)
	c.logger.Warn("recal rolled back to previous profile",
		"antenna", c.cfg.Antenna, "version", version,
		"active_rms", activeRMS, "previous_rms", prevRMS)
}

// record appends one event to the bounded audit history.
func (c *Controller) record(ev Event) {
	c.mu.Lock()
	c.seq++
	ev.Seq = c.seq
	c.history = append(c.history, ev)
	if over := len(c.history) - c.cfg.history(); over > 0 {
		c.history = append(c.history[:0], c.history[over:]...)
	}
	c.mu.Unlock()
	c.runs[ev.Outcome].Inc()
}
