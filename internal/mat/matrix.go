package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Errors shared by the solvers in this package.
var (
	// ErrShape is returned when matrix dimensions are incompatible with the
	// requested operation.
	ErrShape = errors.New("mat: incompatible matrix shapes")
	// ErrSingular is returned when a factorization or solve encounters a
	// (numerically) singular matrix.
	ErrSingular = errors.New("mat: matrix is singular or ill-conditioned")
	// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
	// positive definite.
	ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")
)

// Dense is a row-major dense matrix of float64 values.
//
// Ownership rules: every method that returns a slice (Row, Col) or a matrix
// (Clone, T, Add, Sub, ScaleBy, Mul, Gram, ...) returns freshly allocated
// storage that never aliases the receiver's internal buffer — callers may
// mutate results freely. The zero-allocation variants live on Workspace and
// NormalEq, whose returned slices DO alias internal scratch; see their doc
// comments for the validity window.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero-initialised rows×cols matrix. It panics if either
// dimension is not positive — a programming error, not a runtime condition.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, ErrShape
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("row %d has %d entries, want %d: %w",
				i, len(r), cols, ErrShape)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// SetRow copies the given values into row i.
func (m *Dense) SetRow(i int, vals []float64) error {
	if len(vals) != m.cols {
		return ErrShape
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], vals)
	return nil
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Reshape resizes m in place to rows×cols, reusing the backing array when it
// has capacity and allocating a larger one otherwise. All entries are reset
// to zero. The zero value of Dense reshapes into a valid matrix, which is
// what lets Workspace scratch matrices grow on demand and then stay
// allocation-free in steady state. It panics on non-positive dimensions,
// like NewDense.
func (m *Dense) Reshape(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = rows, cols
	return m
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Add returns m + n.
func (m *Dense) Add(n *Dense) (*Dense, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += n.data[i]
	}
	return out, nil
}

// Sub returns m − n.
func (m *Dense) Sub(n *Dense) (*Dense, error) {
	if m.rows != n.rows || m.cols != n.cols {
		return nil, ErrShape
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= n.data[i]
	}
	return out, nil
}

// ScaleBy returns s·m.
func (m *Dense) ScaleBy(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the matrix product m·n.
func (m *Dense) Mul(n *Dense) (*Dense, error) {
	if m.cols != n.rows {
		return nil, ErrShape
	}
	out := NewDense(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			nk := n.data[k*n.cols : (k+1)*n.cols]
			for j, nkj := range nk {
				oi[j] += mik * nkj
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, ErrShape
	}
	out := make([]float64, m.rows)
	m.mulVecInto(out, v)
	return out, nil
}

// mulVecInto computes m·v into out (len m.rows, fully overwritten).
func (m *Dense) mulVecInto(out, v []float64) {
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, r := range row {
			s += r * v[j]
		}
		out[i] = s
	}
}

// Gram returns the Gram matrix mᵀ·m (cols×cols), computed directly without
// materialising the transpose.
func (m *Dense) Gram() *Dense {
	out := NewDense(m.cols, m.cols)
	m.gramInto(out)
	return out
}

// gramInto accumulates mᵀ·m into out, which must be cols×cols and zeroed.
// The row-by-row accumulation order is the contract shared with
// NormalEq.AddRow so that a freshly accumulated Gram matrix is bit-identical
// to an incrementally built one over the same row sequence.
func (m *Dense) gramInto(out *Dense) {
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a, ra := range row {
			if ra == 0 {
				continue
			}
			oa := out.data[a*m.cols : (a+1)*m.cols]
			for b, rb := range row {
				oa[b] += ra * rb
			}
		}
	}
}

// WeightedGram returns mᵀ·diag(w)·m. The weight slice must have one entry
// per row of m.
func (m *Dense) WeightedGram(w []float64) (*Dense, error) {
	if len(w) != m.rows {
		return nil, ErrShape
	}
	out := NewDense(m.cols, m.cols)
	m.weightedGramInto(out, w)
	return out, nil
}

// weightedGramInto accumulates mᵀ·diag(w)·m into out (cols×cols, zeroed).
func (m *Dense) weightedGramInto(out *Dense, w []float64) {
	for i := 0; i < m.rows; i++ {
		wi := w[i]
		if wi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a, ra := range row {
			if ra == 0 {
				continue
			}
			oa := out.data[a*m.cols : (a+1)*m.cols]
			s := wi * ra
			for b, rb := range row {
				oa[b] += s * rb
			}
		}
	}
}

// TMulVec returns mᵀ·v without materialising the transpose.
func (m *Dense) TMulVec(v []float64) ([]float64, error) {
	if m.rows != len(v) {
		return nil, ErrShape
	}
	out := make([]float64, m.cols)
	m.tMulVecInto(out, v)
	return out, nil
}

// tMulVecInto accumulates mᵀ·v into out (len m.cols, zeroed by the caller).
func (m *Dense) tMulVecInto(out, v []float64) {
	for i := 0; i < m.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, r := range row {
			out[j] += r * vi
		}
	}
}

// WeightedTMulVec returns mᵀ·diag(w)·v.
func (m *Dense) WeightedTMulVec(w, v []float64) ([]float64, error) {
	if m.rows != len(v) || m.rows != len(w) {
		return nil, ErrShape
	}
	out := make([]float64, m.cols)
	m.weightedTMulVecInto(out, w, v)
	return out, nil
}

// weightedTMulVecInto accumulates mᵀ·diag(w)·v into out (len m.cols, zeroed
// by the caller).
func (m *Dense) weightedTMulVecInto(out, w, v []float64) {
	for i := 0; i < m.rows; i++ {
		wv := w[i] * v[i]
		if wv == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, r := range row {
			out[j] += r * wv
		}
	}
}

// MaxAbs returns the largest absolute entry of m.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether m and n have the same shape and entries within tol.
func (m *Dense) Equal(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%10.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Vector helpers shared across the package.

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AXPY computes y ← y + a·x in place.
func AXPY(a float64, x, y []float64) {
	for i, xi := range x {
		y[i] += a * xi
	}
}
