package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

type obsRow struct {
	a []float64
	k float64
}

func randomRow(rng *rand.Rand, n int) obsRow {
	a := make([]float64, n)
	for j := range a {
		a[j] = rng.NormFloat64()
	}
	return obsRow{a: a, k: rng.NormFloat64()}
}

// freshSolve solves the system from scratch (fresh accumulation, fresh
// factorization) and returns the solution, a κ₂(A) estimate, and error. The
// condition estimate goes through the exact-inverse 1-norm bound on the Gram
// matrix (κ₂(A) ≈ √κ₁(AᵀA)) rather than the cheap Cholesky diagonal ratio,
// because the harness relies on it to scale tolerances and the diagonal
// ratio can underestimate badly on small near-singular windows.
func freshSolve(rows []obsRow, n int) ([]float64, float64, error) {
	if len(rows) == 0 {
		return nil, math.Inf(1), ErrShape
	}
	a := NewDense(len(rows), n)
	for i, r := range rows {
		copy(a.data[i*n:(i+1)*n], r.a)
	}
	ne := NewNormalEq(n)
	for _, r := range rows {
		ne.AddRow(r.a, r.k)
	}
	x, err := ne.Solve()
	if err != nil {
		return nil, math.Inf(1), err
	}
	out := make([]float64, len(x))
	copy(out, x)
	return out, math.Sqrt(ConditionEstimate(a.Gram())), nil
}

// TestNormalEqBuildMatchesLeastSquares: a system built purely by AddRow must
// solve bit-identically to the from-scratch LeastSquares path, because both
// accumulate the Gram matrix and right-hand side in the same order and share
// the Cholesky kernels.
func TestNormalEqBuildMatchesLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(2)
		rows := 4 + rng.Intn(20)
		a := randomTallMatrix(rng, rows, n)
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ne := NewNormalEq(n)
		for i := 0; i < rows; i++ {
			ne.AddRow(a.data[i*n:(i+1)*n], b[i])
		}
		got, err := ne.Solve()
		if err != nil {
			t.Fatalf("trial %d: NormalEq.Solve: %v", trial, err)
		}
		want, err := LeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: LeastSquares: %v", trial, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: x[%d] = %v, want %v (must be bit-identical)",
					trial, i, got[i], want[i])
			}
		}
		if gotC, wantC := ne.ConditionEst(), ConditionEst(a); gotC != wantC {
			t.Fatalf("trial %d: ConditionEst = %v, want %v", trial, gotC, wantC)
		}
		if ne.Refactorizations() != 1 {
			t.Fatalf("trial %d: refactorizations = %d, want 1", trial, ne.Refactorizations())
		}
	}
}

// TestNormalEqSlideMatchesFromScratch drives the sliding-window pattern the
// stream engine uses — remove oldest, add newest, re-solve — and checks the
// incrementally maintained factorization stays within 1e-9 of a from-scratch
// solve. A slide count past maxDowndates also proves the downdate budget
// forces a periodic refactorization.
func TestNormalEqSlideMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, window, slides = 3, 16, 100
	var rows []obsRow
	ne := NewNormalEq(n)
	for i := 0; i < window; i++ {
		r := randomRow(rng, n)
		rows = append(rows, r)
		ne.AddRow(r.a, r.k)
	}
	if _, err := ne.Solve(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < slides; s++ {
		old := rows[0]
		rows = rows[1:]
		ne.RemoveRow(old.a, old.k)
		r := randomRow(rng, n)
		rows = append(rows, r)
		ne.AddRow(r.a, r.k)

		got, err := ne.Solve()
		if err != nil {
			t.Fatalf("slide %d: incremental Solve: %v", s, err)
		}
		want, cond, err := freshSolve(rows, n)
		if err != nil || cond > 1e7 {
			continue // ill-conditioned window: equivalence bound not claimed
		}
		tol := 1e-9 * math.Max(1, cond)
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > tol*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("slide %d: x[%d] = %v, want %v (|Δ| = %.3g > %.3g)",
					s, i, got[i], want[i], d, tol)
			}
		}
	}
	if ne.IncrementalUpdates() == 0 {
		t.Error("no incremental updates applied across 100 slides")
	}
	if ne.Refactorizations() < 2 {
		t.Errorf("refactorizations = %d, want ≥ 2 (downdate budget of %d over %d slides)",
			ne.Refactorizations(), maxDowndates, slides)
	}
}

// TestNormalEqDowndateNearSingularFallback removes a row whose absence makes
// the Gram matrix singular: the hyperbolic downdate must refuse (dropping
// the cached factor), Solve must surface ErrNotSPD, and the system must
// recover by refactorizing once new rows restore definiteness.
func TestNormalEqDowndateNearSingularFallback(t *testing.T) {
	ne := NewNormalEq(2)
	ne.AddRow([]float64{1, 0}, 1)
	ne.AddRow([]float64{0, 1}, 1)
	if _, err := ne.Solve(); err != nil {
		t.Fatal(err)
	}
	ne.RemoveRow([]float64{0, 1}, 1) // leaves rank-1 Gram: downdate must bail
	if _, err := ne.Solve(); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("Solve after singular downdate: err = %v, want ErrNotSPD", err)
	}
	ne.AddRow([]float64{1, 1}, 2)
	x, err := ne.Solve()
	if err != nil {
		t.Fatalf("Solve after recovery: %v", err)
	}
	// Rows {1,0}·x=1 and {1,1}·x=2 are square and exactly solvable.
	if !vecAlmostEq(x, []float64{1, 1}, 1e-12) {
		t.Fatalf("recovered solution = %v, want [1 1]", x)
	}
	if ne.Refactorizations() != 2 {
		t.Errorf("refactorizations = %d, want 2", ne.Refactorizations())
	}
}

// TestNormalEqSteadyStateZeroAllocs: a slide + re-solve on a warmed NormalEq
// must not allocate.
func TestNormalEqSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, window = 3, 16
	var rows []obsRow
	ne := NewNormalEq(n)
	for i := 0; i < window+200; i++ {
		rows = append(rows, randomRow(rng, n))
	}
	for i := 0; i < window; i++ {
		ne.AddRow(rows[i].a, rows[i].k)
	}
	if _, err := ne.Solve(); err != nil {
		t.Fatal(err)
	}
	next := window
	allocs := testing.AllocsPerRun(100, func() {
		ne.RemoveRow(rows[next-window].a, rows[next-window].k)
		ne.AddRow(rows[next].a, rows[next].k)
		next++
		if _, err := ne.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state slide+solve allocates %.1f times per run, want 0", allocs)
	}
}

// TestNormalEqValidation covers the programmer-error panics and Reset.
func TestNormalEqValidation(t *testing.T) {
	ne := NewNormalEq(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AddRow with wrong length did not panic")
			}
		}()
		ne.AddRow([]float64{1, 2, 3}, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RemoveRow with wrong length did not panic")
			}
		}()
		ne.RemoveRow([]float64{1}, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewNormalEq(0) did not panic")
			}
		}()
		NewNormalEq(0)
	}()
	ne.AddRow([]float64{1, 0}, 1)
	ne.AddRow([]float64{0, 1}, 2)
	ne.Reset(3)
	if ne.N() != 3 {
		t.Fatalf("N after Reset = %d, want 3", ne.N())
	}
	if _, err := ne.Solve(); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("Solve of empty system: err = %v, want ErrNotSPD", err)
	}
}

// FuzzIncrementalSolveEquivalence is the satellite property test: random
// initial windows followed by random add/remove sequences must keep the
// incremental solution within 1e-9 of a from-scratch factorization, for
// every intermediate state, including states reached through the
// downdate-near-singular fallback (removals down to rank deficiency and
// back are part of the op stream).
func FuzzIncrementalSolveEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(0))
	f.Add(int64(2), uint8(60), uint8(1))
	f.Add(int64(3), uint8(90), uint8(0))  // past maxDowndates: budget fallback
	f.Add(int64(44), uint8(50), uint8(1)) // removal-heavy mix below
	f.Fuzz(func(t *testing.T, seed int64, nOps, colSel uint8) {
		n := 2 + int(colSel)%2
		rng := rand.New(rand.NewSource(seed))
		ne := NewNormalEq(n)
		var rows []obsRow
		for i := 0; i < n+2; i++ {
			r := randomRow(rng, n)
			rows = append(rows, r)
			ne.AddRow(r.a, r.k)
		}
		for op := 0; op < int(nOps); op++ {
			// Bias toward removal when the window is large so the stream
			// visits small, occasionally rank-deficient states too.
			if len(rows) > 0 && rng.Intn(3) < 2 && len(rows) > n {
				i := rng.Intn(len(rows))
				ne.RemoveRow(rows[i].a, rows[i].k)
				rows = append(rows[:i], rows[i+1:]...)
			} else {
				r := randomRow(rng, n)
				rows = append(rows, r)
				ne.AddRow(r.a, r.k)
			}
			// The production callers keep the raw rows and rebuild when the
			// maintained system drifts (see DriftRatio); the harness models
			// that fallback, so what it proves is the full contract:
			// incremental-with-documented-rebuild-triggers ≡ from-scratch.
			if ne.DriftRatio() > 1e3 {
				ne.Reset(n)
				for _, r := range rows {
					ne.AddRow(r.a, r.k)
				}
			}
			want, cond, err := freshSolve(rows, n)
			if err != nil {
				continue // rank-deficient from scratch: no equivalence claimed
			}
			if cond > 1e7 {
				continue // outside the claimed equivalence regime
			}
			got, err := ne.Solve()
			if err != nil {
				t.Fatalf("op %d: incremental Solve failed (%v) on well-conditioned system (cond %.3g)",
					op, err, cond)
			}
			// Forward error grows with conditioning (normal equations square
			// κ), so the tolerance is conditioning-aware: 1e-9 for κ ≈ 1,
			// relaxing proportionally for harder windows.
			tol := 1e-9 * math.Max(1, cond)
			for i := range want {
				if d := math.Abs(got[i] - want[i]); d > tol*math.Max(1, math.Abs(want[i])) {
					t.Fatalf("op %d: x[%d] = %v, want %v (|Δ| = %.3g > %.3g, cond %.3g)",
						op, i, got[i], want[i], d, tol, cond)
				}
			}
		}
	})
}
