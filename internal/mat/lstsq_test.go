package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randomTallMatrix(rng *rand.Rand, rows, cols int) *Dense {
	a := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	return a
}

func TestQRFactorReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomTallMatrix(rng, 8, 4)
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	// R must be upper triangular.
	for i := 0; i < 4; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Errorf("R not upper triangular at (%d,%d)", i, j)
			}
		}
	}
	// Solving with an exact RHS reproduces the solution.
	want := []float64{1, -2, 0.5, 3}
	b, err := a.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(got, want, 1e-9) {
		t.Errorf("QR solve = %v, want %v", got, want)
	}
}

func TestQRShapeAndRankErrors(t *testing.T) {
	if _, err := FactorQR(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("wide matrix err = %v", err)
	}
	// Rank-deficient: two identical columns.
	a := mustFromRows(t, [][]float64{{1, 1}, {2, 2}, {3, 3}})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("rank-deficient err = %v", err)
	}
	if _, err := f.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("rhs shape err = %v", err)
	}
}

func TestLeastSquaresExactSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		rows := 5 + rng.Intn(30)
		cols := 1 + rng.Intn(4)
		a := randomTallMatrix(rng, rows, cols)
		want := make([]float64, cols)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !vecAlmostEq(got, want, 1e-7) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestLeastSquaresMinimisesResidual(t *testing.T) {
	// Overdetermined inconsistent system: fit y = c0 + c1·x to noisy data.
	a := mustFromRows(t, [][]float64{
		{1, 0}, {1, 1}, {1, 2}, {1, 3},
	})
	b := []float64{0.1, 1.1, 1.9, 3.1}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ResidualNorm(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	// Perturbing the solution in any direction must not decrease the
	// residual norm.
	for _, d := range [][]float64{{1e-3, 0}, {-1e-3, 0}, {0, 1e-3}, {0, -1e-3}} {
		xp := []float64{x[0] + d[0], x[1] + d[1]}
		rn, err := ResidualNorm(a, xp, b)
		if err != nil {
			t.Fatal(err)
		}
		if rn < base-1e-12 {
			t.Errorf("perturbation %v decreased residual: %v < %v", d, rn, base)
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("underdetermined err = %v", err)
	}
	sq := Identity(2)
	if _, err := LeastSquares(sq, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("rhs mismatch err = %v", err)
	}
}

func TestLeastSquaresRankDeficientFallsBack(t *testing.T) {
	// Columns identical: Cholesky on the Gram matrix must fail; the QR
	// fallback then reports ErrSingular.
	a := mustFromRows(t, [][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestWeightedLeastSquaresMatchesOrdinaryWithUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randomTallMatrix(rng, 20, 3)
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	w := make([]float64, 20)
	for i := range w {
		w[i] = 1
	}
	x1, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := WeightedLeastSquares(a, b, w)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x1, x2, 1e-9) {
		t.Errorf("unit-weight WLS %v != OLS %v", x2, x1)
	}
}

func TestWeightedLeastSquaresDownweightsOutlier(t *testing.T) {
	// Fit a constant to data with one gross outlier. With the outlier
	// weighted to (almost) zero, the estimate must approach the clean mean.
	a := mustFromRows(t, [][]float64{{1}, {1}, {1}, {1}})
	b := []float64{1, 1, 1, 100}
	w := []float64{1, 1, 1, 1e-9}
	x, err := WeightedLeastSquares(a, b, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-4 {
		t.Errorf("weighted estimate = %v, want ~1", x[0])
	}
	// Zero weights are allowed and ignore the row entirely.
	w[3] = 0
	x, err = WeightedLeastSquares(a, b, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 {
		t.Errorf("zero-weight estimate = %v, want 1", x[0])
	}
}

func TestWeightedLeastSquaresErrors(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1}, {1}})
	if _, err := WeightedLeastSquares(a, []float64{1}, []float64{1, 1}); !errors.Is(err, ErrShape) {
		t.Errorf("rhs shape err = %v", err)
	}
	if _, err := WeightedLeastSquares(a, []float64{1, 1}, []float64{1, -1}); !errors.Is(err, ErrShape) {
		t.Errorf("negative weight err = %v", err)
	}
	if _, err := WeightedLeastSquares(a, []float64{1, 1}, []float64{1, math.NaN()}); !errors.Is(err, ErrShape) {
		t.Errorf("NaN weight err = %v", err)
	}
}

func TestResiduals(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 0}, {0, 1}})
	r, err := Residuals(a, []float64{2, 3}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(r, []float64{1, 2}, 0) {
		t.Errorf("Residuals = %v", r)
	}
	n, err := ResidualNorm(a, []float64{2, 3}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-math.Sqrt(5)) > 1e-12 {
		t.Errorf("ResidualNorm = %v", n)
	}
	if _, err := Residuals(a, []float64{1, 2}, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("shape err = %v", err)
	}
}

func TestSolveQRAgreesWithLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		a := randomTallMatrix(rng, 15, 3)
		b := make([]float64, 15)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err := SolveQR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !vecAlmostEq(x1, x2, 1e-7) {
			t.Fatalf("trial %d: QR %v vs normal equations %v", trial, x1, x2)
		}
	}
}
