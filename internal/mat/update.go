package mat

import (
	"fmt"
	"math"
)

// maxDowndates bounds how many hyperbolic downdates may touch a cached
// Cholesky factor before NormalEq forces a full refactorization. Each
// downdate loses roughly a digit of accuracy in the worst case, so a hard
// cap keeps the drift of a long-running sliding window bounded regardless
// of the data.
const maxDowndates = 64

// downdateTolFactor guards the hyperbolic downdate: when the downdated
// diagonal square r² = L_kk² − v_k² falls below this fraction of L_kk², the
// factor is numerically losing positive definiteness and NormalEq falls back
// to a full refactorization instead of committing a garbage factor.
const downdateTolFactor = 1e-12

// NormalEq maintains the normal equations AᵀA·x = Aᵀb of a least-squares
// system under row insertion and removal, together with a cached Cholesky
// factor kept current by rank-1 updates (LINPACK dchud) and hyperbolic
// downdates (dchdd). A sliding-window solve that slides by one sample calls
// RemoveRow + AddRow + Solve and reuses the previous window's factorization
// in O(n²) instead of refactorizing in O(n³) — for LION's tiny systems the
// win is mostly in allocations and cache traffic, not asymptotics.
//
// Fallback conditions — the cached factor is dropped and the next Solve
// refactorizes from the exactly-maintained Gram matrix when:
//
//   - a downdate drives a diagonal entry near zero (r² ≤ 1e-12·L_kk²),
//   - more than maxDowndates downdates have accumulated since the last full
//     factorization, or
//   - the caller Resets the system.
//
// The Gram matrix and right-hand side themselves are always maintained
// exactly (± r·rᵀ and ± k·r in the same accumulation order Dense.Gram and
// Dense.TMulVec use), so a refactorization is always available and a system
// built purely by AddRow calls solves bit-identically to the from-scratch
// Workspace/LeastSquares path. After RemoveRow the Gram entries carry the
// usual floating-point cancellation, which is what the documented 1e-9
// equivalence bound on the incremental path accounts for.
//
// Ownership: Solve returns a slice aliasing internal scratch, valid until
// the next call on the same NormalEq. Not safe for concurrent use.
type NormalEq struct {
	n    int
	gram Dense     // AᵀA, maintained exactly under add/remove
	rhs  []float64 // Aᵀb, maintained exactly under add/remove
	chol Dense     // cached lower-triangular factor of gram
	v    []float64 // rank-1 update scratch
	x    []float64 // solution scratch (returned, aliases internal storage)
	y    []float64 // forward-substitution scratch

	cholOK    bool    // chol currently factors gram
	downdates int     // downdates applied since the last full factorization
	peakDiag  float64 // largest Gram diagonal entry seen since Reset

	refactorizations   int
	incrementalUpdates int
}

// NewNormalEq returns a NormalEq for systems with n unknowns.
func NewNormalEq(n int) *NormalEq {
	ne := &NormalEq{}
	ne.Reset(n)
	return ne
}

// Reset clears the system to n unknowns with zero Gram matrix and
// right-hand side, dropping any cached factorization. Counters survive a
// Reset so long-running callers can report totals.
func (ne *NormalEq) Reset(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("mat: invalid NormalEq size %d", n))
	}
	ne.n = n
	ne.gram.Reshape(n, n)
	ne.rhs = grow(ne.rhs, n)
	for i := range ne.rhs {
		ne.rhs[i] = 0
	}
	ne.cholOK = false
	ne.downdates = 0
	ne.peakDiag = 0
}

// N returns the number of unknowns.
func (ne *NormalEq) N() int { return ne.n }

// AddRow accumulates one observation row a (with right-hand side k) into the
// normal equations: Gram += a·aᵀ, rhs += k·a. When a factorization is
// cached it is kept current with a rank-1 Cholesky update, which always
// succeeds. Panics if len(a) != N(); rows are copied, the caller keeps
// ownership of a.
func (ne *NormalEq) AddRow(a []float64, k float64) {
	if len(a) != ne.n {
		panic(fmt.Sprintf("mat: NormalEq.AddRow row length %d, want %d", len(a), ne.n))
	}
	// Accumulate in the exact order Dense.gramInto / tMulVecInto use for a
	// single row, so build-by-AddRow matches build-by-Gram bitwise.
	for ai, ra := range a {
		if ra == 0 {
			continue
		}
		oa := ne.gram.data[ai*ne.n : (ai+1)*ne.n]
		for b, rb := range a {
			oa[b] += ra * rb
		}
	}
	if k != 0 {
		for j, r := range a {
			ne.rhs[j] += r * k
		}
	}
	for i := 0; i < ne.n; i++ {
		if d := ne.gram.At(i, i); d > ne.peakDiag {
			ne.peakDiag = d
		}
	}
	if ne.cholOK {
		ne.cholUpdate(a)
		ne.incrementalUpdates++
	}
}

// DriftRatio reports how far the accumulated system has shrunk below its
// historical peak: the largest Gram diagonal entry seen since Reset divided
// by the current largest diagonal entry (+Inf when the current diagonal is
// non-positive). Row removal cancels contributions rather than erasing
// them, so the Gram entries carry absolute rounding error on the order of
// machine epsilon times the PEAK magnitude; once the live magnitude falls
// far below that peak, the maintained system has irrecoverably lost
// relative accuracy — refactorizing cannot help, because the error is in
// the Gram matrix itself. Callers that keep the raw rows (the sliding-
// window sessions do) should rebuild from scratch when this ratio grows
// past ~1e3. Windows whose samples have comparable magnitudes — the steady
// streaming case — keep the ratio near 1 indefinitely.
func (ne *NormalEq) DriftRatio() float64 {
	var cur float64
	for i := 0; i < ne.n; i++ {
		if d := ne.gram.At(i, i); d > cur {
			cur = d
		}
	}
	if cur <= 0 {
		return math.Inf(1)
	}
	return ne.peakDiag / cur
}

// RemoveRow removes an observation row previously passed to AddRow:
// Gram −= a·aᵀ, rhs −= k·a. The cached factorization is downdated in place;
// when the downdate hits the near-singular guard or the downdate budget is
// exhausted, the factor is dropped and the next Solve refactorizes from the
// exactly-maintained Gram matrix. Panics if len(a) != N().
func (ne *NormalEq) RemoveRow(a []float64, k float64) {
	if len(a) != ne.n {
		panic(fmt.Sprintf("mat: NormalEq.RemoveRow row length %d, want %d", len(a), ne.n))
	}
	for ai, ra := range a {
		if ra == 0 {
			continue
		}
		oa := ne.gram.data[ai*ne.n : (ai+1)*ne.n]
		for b, rb := range a {
			oa[b] -= ra * rb
		}
	}
	if k != 0 {
		for j, r := range a {
			ne.rhs[j] -= r * k
		}
	}
	if ne.cholOK {
		if ne.downdates >= maxDowndates || !ne.cholDowndate(a) {
			ne.cholOK = false
			return
		}
		ne.downdates++
		ne.incrementalUpdates++
	}
}

// cholUpdate applies the rank-1 update chol(G) → chol(G + a·aᵀ) in place
// (LINPACK dchud, Givens form). Always succeeds for a valid factor.
func (ne *NormalEq) cholUpdate(a []float64) {
	l := &ne.chol
	n := ne.n
	v := append(ne.v[:0], a...)
	ne.v = v
	for k := 0; k < n; k++ {
		lkk := l.At(k, k)
		r := math.Sqrt(lkk*lkk + v[k]*v[k])
		c := r / lkk
		s := v[k] / lkk
		l.Set(k, k, r)
		for i := k + 1; i < n; i++ {
			lik := (l.At(i, k) + s*v[i]) / c
			l.Set(i, k, lik)
			v[i] = c*v[i] - s*lik
		}
	}
}

// cholDowndate applies the hyperbolic rank-1 downdate chol(G) → chol(G −
// a·aᵀ) in place (LINPACK dchdd). It reports false — leaving the factor in
// an undefined state the caller must discard — when a downdated diagonal
// square falls to within downdateTolFactor of the original, i.e. the
// downdated matrix is no longer safely positive definite.
func (ne *NormalEq) cholDowndate(a []float64) bool {
	l := &ne.chol
	n := ne.n
	v := append(ne.v[:0], a...)
	ne.v = v
	for k := 0; k < n; k++ {
		lkk := l.At(k, k)
		r2 := lkk*lkk - v[k]*v[k]
		if r2 <= downdateTolFactor*lkk*lkk || math.IsNaN(r2) {
			return false
		}
		r := math.Sqrt(r2)
		c := r / lkk
		s := v[k] / lkk
		l.Set(k, k, r)
		for i := k + 1; i < n; i++ {
			lik := (l.At(i, k) - s*v[i]) / c
			l.Set(i, k, lik)
			v[i] = c*v[i] - s*lik
		}
	}
	return true
}

// factorize (re)computes the Cholesky factor from the exactly-maintained
// Gram matrix.
func (ne *NormalEq) factorize() error {
	ne.chol.Reshape(ne.n, ne.n)
	if err := choleskyInto(&ne.chol, &ne.gram); err != nil {
		ne.cholOK = false
		return err
	}
	ne.cholOK = true
	ne.downdates = 0
	ne.refactorizations++
	return nil
}

// Solve returns the least-squares solution of the accumulated system,
// reusing the cached factorization when one is current and refactorizing
// from the Gram matrix otherwise. It returns ErrNotSPD when the Gram matrix
// is not numerically SPD (rank-deficient geometry) — callers fall back to
// QR over the raw rows, exactly as the allocating LeastSquares path does.
// The returned slice aliases internal scratch, valid until the next call.
func (ne *NormalEq) Solve() ([]float64, error) {
	if !ne.cholOK {
		if err := ne.factorize(); err != nil {
			return nil, err
		}
	}
	ne.x = grow(ne.x, ne.n)
	ne.y = grow(ne.y, ne.n)
	choleskySolveFactorInto(ne.x, ne.y, &ne.chol, ne.rhs)
	return ne.x, nil
}

// ConditionEst returns the Cholesky-diagonal condition estimate
// max|L_ii|/min|L_ii| of the accumulated coefficient matrix — the same
// estimate ConditionEst(a) reports for the corresponding tall system —
// or +Inf when the Gram matrix is not numerically SPD.
func (ne *NormalEq) ConditionEst() float64 {
	if !ne.cholOK {
		if err := ne.factorize(); err != nil {
			return math.Inf(1)
		}
	}
	return cholDiagRatio(&ne.chol)
}

// Refactorizations returns how many full Cholesky factorizations this
// system has performed (initial factorizations and conditioning fallbacks).
func (ne *NormalEq) Refactorizations() int { return ne.refactorizations }

// IncrementalUpdates returns how many rank-1 update/downdate operations
// have been applied to a cached factor instead of refactorizing.
func (ne *NormalEq) IncrementalUpdates() int { return ne.incrementalUpdates }
