package mat

import (
	"math"
	"testing"
)

func TestConditionEstDiagonal(t *testing.T) {
	// For a diagonal matrix the Cholesky-diagonal estimate is exact.
	a, _ := FromRows([][]float64{{10, 0}, {0, 1}, {0, 0}})
	if got := ConditionEst(a); math.Abs(got-10) > 1e-12 {
		t.Errorf("cond est = %g, want 10", got)
	}
}

func TestConditionEstWellConditioned(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	got := ConditionEst(a)
	if got < 1 || got > 3 {
		t.Errorf("cond est = %g, want small (>=1)", got)
	}
}

func TestConditionEstSingular(t *testing.T) {
	// Duplicate columns: rank deficient, the Gram matrix is not SPD.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if got := ConditionEst(a); !math.IsInf(got, 1) {
		t.Errorf("cond est of singular system = %g, want +Inf", got)
	}
}
