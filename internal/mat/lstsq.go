package mat

import (
	"fmt"
	"math"
)

// LeastSquares returns the ordinary least-squares solution of the
// overdetermined system A·x = b, i.e. X* = (AᵀA)⁻¹Aᵀb (paper Eq. 13).
//
// The solve goes through the normal equations with a Cholesky factorization,
// which is both the formulation the paper states and the fastest path for
// LION's tall-skinny systems. When the Gram matrix is not numerically SPD
// (rank-deficient geometry), it falls back to Householder QR on the original
// system for better numerical behaviour, and returns ErrSingular only when
// that fails too.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	if a.Rows() != len(b) {
		return nil, ErrShape
	}
	if a.Rows() < a.Cols() {
		return nil, fmt.Errorf("underdetermined system %dx%d: %w",
			a.Rows(), a.Cols(), ErrShape)
	}
	gram := a.Gram()
	rhs, err := a.TMulVec(b)
	if err != nil {
		return nil, err
	}
	x, err := SolveCholesky(gram, rhs)
	if err == nil {
		return x, nil
	}
	return SolveQR(a, b)
}

// WeightedLeastSquares returns the weighted least-squares solution
// X* = (AᵀWA)⁻¹AᵀWb with W = diag(w) (paper Eq. 16). Weights must be
// non-negative; rows with zero weight are ignored.
func WeightedLeastSquares(a *Dense, b, w []float64) ([]float64, error) {
	if a.Rows() != len(b) || a.Rows() != len(w) {
		return nil, ErrShape
	}
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) {
			return nil, fmt.Errorf("weight %d is %v: %w", i, wi, ErrShape)
		}
	}
	gram, err := a.WeightedGram(w)
	if err != nil {
		return nil, err
	}
	rhs, err := a.WeightedTMulVec(w, b)
	if err != nil {
		return nil, err
	}
	x, err := SolveCholesky(gram, rhs)
	if err == nil {
		return x, nil
	}
	// Fall back to QR on the square-root-weighted system:
	// minimise ‖√W·(A·x − b)‖.
	aw := a.Clone()
	bw := make([]float64, len(b))
	for i := 0; i < a.Rows(); i++ {
		s := math.Sqrt(w[i])
		for j := 0; j < a.Cols(); j++ {
			aw.Set(i, j, aw.At(i, j)*s)
		}
		bw[i] = b[i] * s
	}
	return SolveQR(aw, bw)
}

// Residuals returns r = A·x − b.
func Residuals(a *Dense, x, b []float64) ([]float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	if len(ax) != len(b) {
		return nil, ErrShape
	}
	for i := range ax {
		ax[i] -= b[i]
	}
	return ax, nil
}

// ResidualNorm returns ‖A·x − b‖₂.
func ResidualNorm(a *Dense, x, b []float64) (float64, error) {
	r, err := Residuals(a, x, b)
	if err != nil {
		return 0, err
	}
	return Norm2(r), nil
}
