package mat

import (
	"math"
	"math/rand"
	"testing"
)

// TestWorkspaceMatchesAllocatingPath asserts the workspace solvers are
// bit-identical to the package-level functions — same kernels, same
// accumulation order — across random tall systems and weights.
func TestWorkspaceMatchesAllocatingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var ws Workspace
	for trial := 0; trial < 50; trial++ {
		rows := 4 + rng.Intn(30)
		cols := 2 + rng.Intn(3)
		a := randomTallMatrix(rng, rows, cols)
		b := make([]float64, rows)
		w := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
			w[i] = rng.Float64() + 1e-3
		}

		want, err := LeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: LeastSquares: %v", trial, err)
		}
		got, err := ws.LeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: ws.LeastSquares: %v", trial, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: LeastSquares[%d] = %v, want %v (must be bit-identical)",
					trial, i, got[i], want[i])
			}
		}

		wantR, err := Residuals(a, want, b)
		if err != nil {
			t.Fatal(err)
		}
		// got aliases ws scratch that ws.Residuals does not touch; using it
		// as x here is the IRLS pattern the doc comment promises works.
		gotR, err := ws.Residuals(a, got, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantR {
			if gotR[i] != wantR[i] {
				t.Fatalf("trial %d: Residuals[%d] = %v, want %v", trial, i, gotR[i], wantR[i])
			}
		}

		wantW, err := WeightedLeastSquares(a, b, w)
		if err != nil {
			t.Fatalf("trial %d: WeightedLeastSquares: %v", trial, err)
		}
		gotW, err := ws.WeightedLeastSquares(a, b, w)
		if err != nil {
			t.Fatalf("trial %d: ws.WeightedLeastSquares: %v", trial, err)
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("trial %d: WeightedLeastSquares[%d] = %v, want %v",
					trial, i, gotW[i], wantW[i])
			}
		}

		if gotC, wantC := ws.ConditionEst(a), ConditionEst(a); gotC != wantC {
			t.Fatalf("trial %d: ConditionEst = %v, want %v", trial, gotC, wantC)
		}
	}
}

// TestWorkspaceQRFallback drives the rank-deficient path: the Gram matrix of
// a matrix with duplicate columns is not SPD, so both the allocating and the
// workspace solvers must agree via the QR fallback (or agree on the error).
func TestWorkspaceQRFallback(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	b := []float64{1, 2, 3, 4}
	var ws Workspace

	want, wantErr := LeastSquares(a, b)
	got, gotErr := ws.LeastSquares(a, b)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("fallback error mismatch: allocating %v, workspace %v", wantErr, gotErr)
	}
	if wantErr == nil && !vecAlmostEq(got, want, 0) {
		t.Fatalf("fallback solution = %v, want %v", got, want)
	}

	w := []float64{1, 2, 1, 2}
	wantW, wantErr := WeightedLeastSquares(a, b, w)
	gotW, gotErr := ws.WeightedLeastSquares(a, b, w)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("weighted fallback error mismatch: allocating %v, workspace %v", wantErr, gotErr)
	}
	if wantErr == nil && !vecAlmostEq(gotW, wantW, 0) {
		t.Fatalf("weighted fallback solution = %v, want %v", gotW, wantW)
	}

	if c := ws.ConditionEst(a); !math.IsInf(c, 1) {
		t.Fatalf("ConditionEst of rank-deficient system = %v, want +Inf", c)
	}
}

// TestWorkspaceShapeErrors mirrors the allocating solvers' validation.
func TestWorkspaceShapeErrors(t *testing.T) {
	var ws Workspace
	a := mustFromRows(t, [][]float64{{1, 0}, {0, 1}, {1, 1}})
	if _, err := ws.LeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("LeastSquares with short b: want error")
	}
	if _, err := ws.LeastSquares(NewDense(2, 3), []float64{1, 2}); err == nil {
		t.Error("underdetermined system: want error")
	}
	if _, err := ws.WeightedLeastSquares(a, []float64{1, 2, 3}, []float64{1, -1, 1}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := ws.WeightedLeastSquares(a, []float64{1, 2, 3}, []float64{1, 1}); err == nil {
		t.Error("short weights: want error")
	}
	if _, err := ws.Residuals(a, []float64{1}, []float64{1, 2, 3}); err == nil {
		t.Error("short x: want error")
	}
}

// TestWorkspaceSteadyStateZeroAllocs enforces the zero-allocation contract:
// after the first (warm-up) call sizes the scratch, repeated solves of
// same-shaped systems must not touch the heap.
func TestWorkspaceSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomTallMatrix(rng, 24, 3)
	b := make([]float64, 24)
	w := make([]float64, 24)
	for i := range b {
		b[i] = rng.NormFloat64()
		w[i] = 1
	}
	var ws Workspace
	if _, err := ws.LeastSquares(a, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		x, err := ws.LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ws.Residuals(a, x, b); err != nil {
			t.Fatal(err)
		}
		if _, err := ws.WeightedLeastSquares(a, b, w); err != nil {
			t.Fatal(err)
		}
		ws.ConditionEst(a)
	})
	if allocs != 0 {
		t.Errorf("steady-state workspace solve allocates %.1f times per run, want 0", allocs)
	}
}

// TestWorkspaceScratchReuseAcrossShapes checks that a workspace survives
// being used for systems of different shapes back to back.
func TestWorkspaceScratchReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ws Workspace
	for _, shape := range [][2]int{{8, 2}, {30, 4}, {5, 3}, {8, 2}} {
		a := randomTallMatrix(rng, shape[0], shape[1])
		b := make([]float64, shape[0])
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ws.LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !vecAlmostEq(got, want, 0) {
			t.Fatalf("shape %v: ws solve = %v, want %v", shape, got, want)
		}
	}
}

// TestDenseReshape covers the in-place resize used by all scratch matrices.
func TestDenseReshape(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	data := m.data
	m.Reshape(2, 2)
	if &m.data[0] != &data[0] {
		t.Error("same-size Reshape reallocated backing array")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("Reshape left entry (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
	m.Reshape(1, 2)
	if &m.data[0] != &data[0] {
		t.Error("shrinking Reshape reallocated backing array")
	}
	m.Reshape(4, 4)
	if m.Rows() != 4 || m.Cols() != 4 {
		t.Fatalf("Reshape dims = %dx%d, want 4x4", m.Rows(), m.Cols())
	}
	var zero Dense
	zero.Reshape(2, 3)
	if zero.Rows() != 2 || zero.Cols() != 3 {
		t.Error("zero-value Dense did not Reshape")
	}
	defer func() {
		if recover() == nil {
			t.Error("Reshape(0, 1) did not panic")
		}
	}()
	m.Reshape(0, 1)
}
