// Package mat implements the small dense linear algebra kernel that LION
// needs: matrices, Gaussian elimination with partial pivoting, Cholesky and
// Householder-QR factorizations, and ordinary / weighted least squares.
//
// Go has no standard linear algebra library, and this reproduction is
// stdlib-only, so the weighted-least-squares machinery of the paper
// (Eqs. 13–16) is implemented by hand here. The matrices involved are tall
// and skinny (thousands of rows, 3–4 columns), so plain dense algorithms in
// row-major storage are more than fast enough.
package mat
