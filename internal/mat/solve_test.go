package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolveLUKnownSystem(t *testing.T) {
	a := mustFromRows(t, [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLU(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x, []float64{2, 3, -1}, 1e-10) {
		t.Errorf("x = %v, want [2 3 -1]", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLU(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("singular err = %v", err)
	}
	zero := NewDense(2, 2)
	if _, err := SolveLU(zero, []float64{0, 0}); !errors.Is(err, ErrSingular) {
		t.Errorf("zero-matrix err = %v", err)
	}
}

func TestSolveLUShape(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := SolveLU(a, []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("non-square err = %v", err)
	}
	sq := Identity(2)
	if _, err := SolveLU(sq, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("rhs-length err = %v", err)
	}
}

func TestSolveLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the system well conditioned.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !vecAlmostEq(got, want, 1e-8) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestCholeskyFactorReconstruction(t *testing.T) {
	a := mustFromRows(t, [][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{
		{2, 0, 0},
		{6, 1, 0},
		{-8, 5, 3},
	})
	if !l.Equal(want, 1e-10) {
		t.Errorf("L =\n%v\nwant\n%v", l, want)
	}
	recon, err := l.Mul(l.T())
	if err != nil {
		t.Fatal(err)
	}
	if !recon.Equal(a, 1e-10) {
		t.Errorf("LLᵀ != A")
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Errorf("indefinite err = %v", err)
	}
	if _, err := Cholesky(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("shape err = %v", err)
	}
}

func TestSolveCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		// Build SPD as BᵀB + I.
		b := NewDense(n+2, n)
		for i := 0; i < n+2; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		a := b.Gram()
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		rhs, err := a.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveCholesky(a, rhs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !vecAlmostEq(got, want, 1e-8) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestInverse(t *testing.T) {
	a := mustFromRows(t, [][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.Equal(Identity(2), 1e-12) {
		t.Errorf("A·A⁻¹ != I:\n%v", prod)
	}
	if _, err := Inverse(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("shape err = %v", err)
	}
	sing := mustFromRows(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(sing); !errors.Is(err, ErrSingular) {
		t.Errorf("singular err = %v", err)
	}
}

func TestDet(t *testing.T) {
	tests := []struct {
		rows [][]float64
		want float64
	}{
		{[][]float64{{3}}, 3},
		{[][]float64{{1, 2}, {3, 4}}, -2},
		{[][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}, 24},
		{[][]float64{{1, 2}, {2, 4}}, 0},
	}
	for _, tt := range tests {
		a := mustFromRows(t, tt.rows)
		got, err := Det(a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-10 {
			t.Errorf("Det = %v, want %v", got, tt.want)
		}
	}
	if _, err := Det(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("shape err = %v", err)
	}
}

func TestConditionEstimate(t *testing.T) {
	if got := ConditionEstimate(Identity(3)); math.Abs(got-1) > 1e-10 {
		t.Errorf("cond(I) = %v, want 1", got)
	}
	sing := mustFromRows(t, [][]float64{{1, 2}, {2, 4}})
	if got := ConditionEstimate(sing); !math.IsInf(got, 1) {
		t.Errorf("cond(singular) = %v, want +Inf", got)
	}
	// Ill-conditioned matrix should report a large condition number.
	ill := mustFromRows(t, [][]float64{{1, 1}, {1, 1 + 1e-10}})
	if got := ConditionEstimate(ill); got < 1e8 {
		t.Errorf("cond(ill) = %v, want large", got)
	}
}
