package mat

import "math"

// ConditionEst returns a cheap order-of-magnitude estimate of the 2-norm
// condition number κ₂(A) of a tall matrix A, from the Cholesky factor of its
// Gram matrix: with AᵀA = L·Lᵀ,
//
//	κ₂(A) = √κ₂(AᵀA) ≥ max_i L_ii / min_i L_ii.
//
// The diagonal ratio is a standard lower-bound estimate — exact for diagonal
// systems, within a small factor for the well-scaled tall-skinny systems
// LION builds — at the cost of one Gram product, far cheaper than an SVD.
// It returns +Inf when the Gram matrix is not numerically SPD (a
// rank-deficient system) and 1 for empty input.
func ConditionEst(a *Dense) float64 {
	if a.Rows() == 0 || a.Cols() == 0 {
		return 1
	}
	l, err := Cholesky(a.Gram())
	if err != nil {
		return math.Inf(1)
	}
	return cholDiagRatio(l)
}
