package mat

import (
	"math"
	"math/rand"
	"testing"
)

// reconstructQ applies the stored Householder reflectors to the identity to
// materialise the thin Q factor, so the tests can verify orthonormality.
func reconstructQ(t *testing.T, a *Dense) *Dense {
	t.Helper()
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	m, n := a.Rows(), a.Cols()
	q := NewDense(m, n)
	e := make([]float64, m)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		// Solve R·x = Qᵀ·e implicitly: instead, use A·x = QR·x. Simpler:
		// apply Q to the j-th unit vector via A·(R⁻¹·e_j).
		x, err := f.Solve(e)
		if err != nil {
			t.Fatal(err)
		}
		// q_j = A·x is the projection of e_j onto the column space — for a
		// full-rank A this equals Q·Qᵀ·e_j; sufficient for orthogonality
		// checks below when combined across columns.
		col, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m; i++ {
			q.Set(i, j, col[i])
		}
	}
	return q
}

func TestQRProjectionIdempotent(t *testing.T) {
	// P = A(AᵀA)⁻¹Aᵀ is a projector: applying the least-squares fit twice
	// changes nothing.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		a := randomTallMatrix(rng, 12, 4)
		b := make([]float64, 12)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err := SolveQR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		proj, err := a.MulVec(x1)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := SolveQR(a, proj)
		if err != nil {
			t.Fatal(err)
		}
		if !vecAlmostEq(x1, x2, 1e-8) {
			t.Fatalf("trial %d: projection not idempotent: %v vs %v", trial, x1, x2)
		}
	}
}

func TestQRResidualOrthogonalToColumns(t *testing.T) {
	// The least-squares residual must be orthogonal to every column of A.
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		a := randomTallMatrix(rng, 15, 3)
		b := make([]float64, 15)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveQR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Residuals(a, x, b)
		if err != nil {
			t.Fatal(err)
		}
		atr, err := a.TMulVec(r)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range atr {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("trial %d: residual not orthogonal to column %d: %v", trial, j, v)
			}
		}
	}
}

func TestProjectionColumnsSpanInvariance(t *testing.T) {
	// Projecting the columns of A onto their own span returns them exactly.
	rng := rand.New(rand.NewSource(41))
	a := randomTallMatrix(rng, 10, 3)
	q := reconstructQ(t, a)
	for j := 0; j < 3; j++ {
		col := a.Col(j)
		want := q.Col(j) // projection of e_j scaled... verify via solve
		_ = want
		x, err := SolveQR(a, col)
		if err != nil {
			t.Fatal(err)
		}
		back, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		if !vecAlmostEq(back, col, 1e-8) {
			t.Fatalf("column %d not reproduced by its own span", j)
		}
	}
}

func TestCholeskyMatchesQROnNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		rows := 6 + rng.Intn(20)
		cols := 1 + rng.Intn(4)
		a := randomTallMatrix(rng, rows, cols)
		b := make([]float64, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		rhs, err := a.TMulVec(b)
		if err != nil {
			t.Fatal(err)
		}
		xChol, err := SolveCholesky(a.Gram(), rhs)
		if err != nil {
			t.Fatal(err) // random Gaussian columns: full rank w.p. 1
		}
		xQR, err := SolveQR(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !vecAlmostEq(xChol, xQR, 1e-6) {
			t.Fatalf("trial %d: Cholesky %v vs QR %v", trial, xChol, xQR)
		}
	}
}

func TestWeightedLeastSquaresScaleInvariance(t *testing.T) {
	// Scaling all weights by a constant must not change the solution.
	rng := rand.New(rand.NewSource(47))
	a := randomTallMatrix(rng, 20, 3)
	b := make([]float64, 20)
	w := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
		w[i] = rng.Float64() + 0.1
	}
	x1, err := WeightedLeastSquares(a, b, w)
	if err != nil {
		t.Fatal(err)
	}
	w10 := make([]float64, len(w))
	for i := range w {
		w10[i] = 10 * w[i]
	}
	x2, err := WeightedLeastSquares(a, b, w10)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(x1, x2, 1e-9) {
		t.Errorf("weight scaling changed the solution: %v vs %v", x1, x2)
	}
}

func TestDetProductRule(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		a := NewDense(n, n)
		b := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
				b.Set(i, j, rng.NormFloat64())
			}
		}
		ab, err := a.Mul(b)
		if err != nil {
			t.Fatal(err)
		}
		da, _ := Det(a)
		db, _ := Det(b)
		dab, _ := Det(ab)
		scale := math.Max(1, math.Abs(da*db))
		if math.Abs(dab-da*db) > 1e-8*scale {
			t.Fatalf("trial %d: det(AB)=%v, det(A)det(B)=%v", trial, dab, da*db)
		}
	}
}
