package mat

import (
	"fmt"
	"math"
)

// Workspace is a caller-owned scratch arena for the small least-squares
// solves on LION's hot path. Its methods mirror the package-level functions
// (LeastSquares, WeightedLeastSquares, Residuals, ConditionEst) arithmetic-
// for-arithmetic — same kernels, same accumulation order — so results are
// bit-identical, but all intermediate storage lives in the workspace and is
// reused across calls. In steady state (stable problem dimensions) a
// workspace-based solve performs zero heap allocations.
//
// Ownership rules, unlike Dense methods:
//
//   - Returned slices ALIAS workspace scratch. They are valid only until the
//     next call of any method on the same Workspace; callers that need the
//     values longer must copy them out.
//   - A Workspace must not be shared between goroutines without external
//     serialization. The intended pattern is one Workspace per stream
//     session / worker.
//
// The zero value is ready to use; buffers grow on demand and are retained.
// The rare rank-deficient QR fallback still allocates — it is off the steady
// -state path by construction and keeping it on the shared allocating code
// path keeps the fallback arithmetic identical to the non-workspace solvers.
type Workspace struct {
	gram Dense     // AᵀA or AᵀWA scratch
	chol Dense     // Cholesky factor scratch
	aw   Dense     // sqrt-weighted copy of A for the QR fallback
	x    []float64 // solution vector (returned, aliases scratch)
	y    []float64 // forward-substitution scratch
	rhs  []float64 // Aᵀb / AᵀWb scratch
	res  []float64 // residual vector (returned, aliases scratch)
	bw   []float64 // sqrt-weighted copy of b for the QR fallback
}

// grow returns s resized to length n, reusing capacity when possible. The
// contents are unspecified; callers must fully overwrite.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// LeastSquares is the workspace form of the package-level LeastSquares: the
// ordinary least-squares solution of A·x = b via the normal equations with a
// Cholesky factorization, falling back to Householder QR when the Gram
// matrix is not numerically SPD. The returned slice aliases workspace
// scratch and is valid until the next call on ws.
func (ws *Workspace) LeastSquares(a *Dense, b []float64) ([]float64, error) {
	if a.Rows() != len(b) {
		return nil, ErrShape
	}
	if a.Rows() < a.Cols() {
		return nil, fmt.Errorf("underdetermined system %dx%d: %w",
			a.Rows(), a.Cols(), ErrShape)
	}
	n := a.Cols()
	ws.gram.Reshape(n, n)
	a.gramInto(&ws.gram)
	ws.rhs = grow(ws.rhs, n)
	for i := range ws.rhs {
		ws.rhs[i] = 0
	}
	a.tMulVecInto(ws.rhs, b)
	ws.chol.Reshape(n, n)
	if err := choleskyInto(&ws.chol, &ws.gram); err != nil {
		x, qerr := SolveQR(a, b)
		if qerr != nil {
			return nil, qerr
		}
		ws.x = append(ws.x[:0], x...)
		return ws.x, nil
	}
	ws.x = grow(ws.x, n)
	ws.y = grow(ws.y, n)
	choleskySolveFactorInto(ws.x, ws.y, &ws.chol, ws.rhs)
	return ws.x, nil
}

// WeightedLeastSquares is the workspace form of the package-level
// WeightedLeastSquares: X* = (AᵀWA)⁻¹AᵀWb with W = diag(w). The returned
// slice aliases workspace scratch and is valid until the next call on ws.
func (ws *Workspace) WeightedLeastSquares(a *Dense, b, w []float64) ([]float64, error) {
	if a.Rows() != len(b) || a.Rows() != len(w) {
		return nil, ErrShape
	}
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) {
			return nil, fmt.Errorf("weight %d is %v: %w", i, wi, ErrShape)
		}
	}
	n := a.Cols()
	ws.gram.Reshape(n, n)
	a.weightedGramInto(&ws.gram, w)
	ws.rhs = grow(ws.rhs, n)
	for i := range ws.rhs {
		ws.rhs[i] = 0
	}
	a.weightedTMulVecInto(ws.rhs, w, b)
	ws.chol.Reshape(n, n)
	if err := choleskyInto(&ws.chol, &ws.gram); err != nil {
		// Fall back to QR on the square-root-weighted system:
		// minimise ‖√W·(A·x − b)‖.
		ws.aw.Reshape(a.Rows(), a.Cols())
		copy(ws.aw.data, a.data)
		ws.bw = grow(ws.bw, len(b))
		for i := 0; i < a.Rows(); i++ {
			s := math.Sqrt(w[i])
			for j := 0; j < a.Cols(); j++ {
				ws.aw.Set(i, j, ws.aw.At(i, j)*s)
			}
			ws.bw[i] = b[i] * s
		}
		x, qerr := SolveQR(&ws.aw, ws.bw)
		if qerr != nil {
			return nil, qerr
		}
		ws.x = append(ws.x[:0], x...)
		return ws.x, nil
	}
	ws.x = grow(ws.x, n)
	ws.y = grow(ws.y, n)
	choleskySolveFactorInto(ws.x, ws.y, &ws.chol, ws.rhs)
	return ws.x, nil
}

// Residuals is the workspace form of the package-level Residuals,
// r = A·x − b. The returned slice aliases workspace scratch and is valid
// until the next call on ws. x may alias a previous return from ws (the
// common IRLS pattern) because it is fully read before res is written only
// when they do not overlap — res uses dedicated scratch, never ws.x.
func (ws *Workspace) Residuals(a *Dense, x, b []float64) ([]float64, error) {
	if a.Cols() != len(x) || a.Rows() != len(b) {
		return nil, ErrShape
	}
	ws.res = grow(ws.res, a.Rows())
	a.mulVecInto(ws.res, x)
	for i := range ws.res {
		ws.res[i] -= b[i]
	}
	return ws.res, nil
}

// ConditionEst is the workspace form of the package-level ConditionEst: the
// Cholesky-diagonal estimate of κ₂(A), +Inf when AᵀA is not numerically SPD,
// 1 for empty input.
func (ws *Workspace) ConditionEst(a *Dense) float64 {
	if a.Rows() == 0 || a.Cols() == 0 {
		return 1
	}
	n := a.Cols()
	ws.gram.Reshape(n, n)
	a.gramInto(&ws.gram)
	ws.chol.Reshape(n, n)
	if err := choleskyInto(&ws.chol, &ws.gram); err != nil {
		return math.Inf(1)
	}
	return cholDiagRatio(&ws.chol)
}

// cholDiagRatio returns max|L_ii| / min|L_ii| for a Cholesky factor, the
// condition estimate shared by ConditionEst and NormalEq.ConditionEst. It
// returns +Inf when the smallest diagonal entry is zero.
func cholDiagRatio(l *Dense) float64 {
	lo, hi := math.Inf(1), 0.0
	for i := 0; i < l.Rows(); i++ {
		d := math.Abs(l.At(i, i))
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}
