package mat

import (
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix (m ≥ n):
// A = Q·R with orthonormal Q (m×n, thin) and upper-triangular R (n×n).
// The factorization is stored compactly; use Solve to apply it.
type QR struct {
	qr   *Dense    // Householder vectors below the diagonal, R on and above
	tau  []float64 // Householder scalars
	rows int
	cols int
}

// FactorQR computes the Householder QR factorization of a. The matrix must
// have at least as many rows as columns.
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, ErrShape
	}
	qr := a.Clone()
	tau := make([]float64, n)

	for k := 0; k < n; k++ {
		// Compute the Householder reflector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		tau[k] = qr.At(k, k)

		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		qr.Set(k, k, -norm)
	}
	return &QR{qr: qr, tau: tau, rows: m, cols: n}, nil
}

// Solve returns the least-squares solution x minimising ‖A·x − b‖₂ using the
// factorization. It returns ErrSingular when R has a (numerically) zero
// diagonal entry, i.e. A is rank deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.rows, f.cols
	if len(b) != m {
		return nil, ErrShape
	}
	// y = Qᵀ·b, applied reflector by reflector.
	y := make([]float64, m)
	copy(y, b)
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		// The reflector for column k is stored with v_k = 1 implicit in
		// tau; here columns hold v directly with v[k] = tau[k].
		var s float64
		s += f.tau[k] * y[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.tau[k]
		y[k] += s * f.tau[k]
		for i := k + 1; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	scale := f.qr.MaxAbs()
	tol := 1e-13 * math.Max(scale, 1)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		rii := f.qr.At(i, i)
		if math.Abs(rii) <= tol {
			return nil, ErrSingular
		}
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / rii
	}
	return x, nil
}

// R returns a copy of the upper-triangular factor.
func (f *QR) R() *Dense {
	r := NewDense(f.cols, f.cols)
	for i := 0; i < f.cols; i++ {
		for j := i; j < f.cols; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// SolveQR is a convenience wrapper factoring a and solving in one call.
func SolveQR(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
