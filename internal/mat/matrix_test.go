package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromRows(t *testing.T, rows [][]float64) *Dense {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

func vecAlmostEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestNewDenseAndAccess(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At = %v", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("zero init broken: %v", got)
	}
}

func TestNewDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0x0 matrix")
		}
	}()
	NewDense(0, 0)
}

func TestFromRows(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged rows err = %v", err)
	}
	if _, err := FromRows(nil); !errors.Is(err, ErrShape) {
		t.Errorf("nil rows err = %v", err)
	}
}

func TestRowColCopySemantics(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row returned a live reference")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Error("Col returned a live reference")
	}
	if !vecAlmostEq(m.Col(1), []float64{2, 4}, 0) {
		t.Errorf("Col = %v", m.Col(1))
	}
	if err := m.SetRow(1, []float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 8 {
		t.Error("SetRow did not write")
	}
	if err := m.SetRow(1, []float64{7}); !errors.Is(err, ErrShape) {
		t.Errorf("SetRow short err = %v", err)
	}
}

func TestTranspose(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	want := mustFromRows(t, [][]float64{{1, 4}, {2, 5}, {3, 6}})
	if !tr.Equal(want, 0) {
		t.Errorf("T =\n%v", tr)
	}
}

func TestAddSubScale(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(mustFromRows(t, [][]float64{{6, 8}, {10, 12}}), 0) {
		t.Errorf("Add =\n%v", sum)
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(mustFromRows(t, [][]float64{{4, 4}, {4, 4}}), 0) {
		t.Errorf("Sub =\n%v", diff)
	}
	if got := a.ScaleBy(2); !got.Equal(mustFromRows(t, [][]float64{{2, 4}, {6, 8}}), 0) {
		t.Errorf("ScaleBy =\n%v", got)
	}
	bad := NewDense(1, 2)
	if _, err := a.Add(bad); !errors.Is(err, ErrShape) {
		t.Errorf("Add shape err = %v", err)
	}
	if _, err := a.Sub(bad); !errors.Is(err, ErrShape) {
		t.Errorf("Sub shape err = %v", err)
	}
}

func TestMul(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{{19, 22}, {43, 50}})
	if !p.Equal(want, 1e-12) {
		t.Errorf("Mul =\n%v", p)
	}
	if _, err := a.Mul(NewDense(3, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("Mul shape err = %v", err)
	}
	id := Identity(2)
	p2, _ := a.Mul(id)
	if !p2.Equal(a, 0) {
		t.Error("A*I != A")
	}
}

func TestMulVecAndTranspose(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	v, err := a.MulVec([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(v, []float64{-1, -1, -1}, 1e-12) {
		t.Errorf("MulVec = %v", v)
	}
	tv, err := a.TMulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(tv, []float64{9, 12}, 1e-12) {
		t.Errorf("TMulVec = %v", tv)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec shape err = %v", err)
	}
	if _, err := a.TMulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("TMulVec shape err = %v", err)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewDense(7, 3)
	for i := 0; i < 7; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	gram := a.Gram()
	explicit, err := a.T().Mul(a)
	if err != nil {
		t.Fatal(err)
	}
	if !gram.Equal(explicit, 1e-12) {
		t.Errorf("Gram mismatch:\n%v\nvs\n%v", gram, explicit)
	}
}

func TestWeightedGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewDense(6, 3)
	w := make([]float64, 6)
	b := make([]float64, 6)
	for i := 0; i < 6; i++ {
		w[i] = rng.Float64() + 0.1
		b[i] = rng.NormFloat64()
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	wg, err := a.WeightedGram(w)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit: Aᵀ diag(w) A.
	wa := a.Clone()
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			wa.Set(i, j, wa.At(i, j)*w[i])
		}
	}
	explicit, err := a.T().Mul(wa)
	if err != nil {
		t.Fatal(err)
	}
	if !wg.Equal(explicit, 1e-12) {
		t.Errorf("WeightedGram mismatch")
	}
	wtv, err := a.WeightedTMulVec(w, b)
	if err != nil {
		t.Fatal(err)
	}
	wb := make([]float64, 6)
	for i := range wb {
		wb[i] = w[i] * b[i]
	}
	explicitV, err := a.TMulVec(wb)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEq(wtv, explicitV, 1e-12) {
		t.Errorf("WeightedTMulVec mismatch: %v vs %v", wtv, explicitV)
	}
	if _, err := a.WeightedGram([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("WeightedGram shape err = %v", err)
	}
}

func TestNorms(t *testing.T) {
	m := mustFromRows(t, [][]float64{{3, -4}, {0, 0}})
	if got := m.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v", got)
	}
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v", got)
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if !vecAlmostEq(y, []float64{3, 5}, 0) {
		t.Errorf("AXPY = %v", y)
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(vals [6]float64) bool {
		m := NewDense(2, 3)
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				v := vals[i*3+j]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				m.Set(i, j, v)
			}
		}
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyGramSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		rows := 3 + rng.Intn(10)
		cols := 1 + rng.Intn(4)
		a := NewDense(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		g := a.Gram()
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
					t.Fatalf("Gram not symmetric at (%d,%d)", i, j)
				}
			}
			if g.At(i, i) < -1e-12 {
				t.Fatalf("Gram diagonal negative: %v", g.At(i, i))
			}
		}
	}
}
