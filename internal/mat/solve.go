package mat

import (
	"math"
)

// SolveLU solves the square linear system A·x = b with Gaussian elimination
// and partial pivoting. A and b are not modified. It returns ErrSingular when
// a pivot underflows the numerical tolerance.
func SolveLU(a *Dense, b []float64) ([]float64, error) {
	n := a.Rows()
	if a.Cols() != n || len(b) != n {
		return nil, ErrShape
	}
	lu := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	scale := lu.MaxAbs()
	if scale == 0 {
		return nil, ErrSingular
	}
	tol := 1e-13 * scale

	for k := 0; k < n; k++ {
		// Partial pivoting: largest |entry| in column k at or below the
		// diagonal.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				maxAbs, p = a, i
			}
		}
		if maxAbs <= tol {
			return nil, ErrSingular
		}
		if p != k {
			swapRows(lu, p, k)
			x[p], x[k] = x[k], x[p]
		}
		// Eliminate below the pivot.
		piv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / piv
			if f == 0 {
				continue
			}
			lu.Set(i, k, 0)
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
			x[i] -= f * x[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu.At(i, j) * x[j]
		}
		x[i] = s / lu.At(i, i)
	}
	return x, nil
}

func swapRows(m *Dense, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Cholesky computes the lower-triangular factor L of a symmetric positive
// definite matrix A, such that A = L·Lᵀ. It returns ErrNotSPD when A is not
// (numerically) SPD.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, ErrShape
	}
	l := NewDense(n, n)
	if err := choleskyInto(l, a); err != nil {
		return nil, err
	}
	return l, nil
}

// choleskyInto factors A = L·Lᵀ into l, which must be n×n and zeroed (the
// strict upper triangle is left untouched). The column-by-column elimination
// order here is the reference order: Workspace and NormalEq both route
// through this kernel so scratch-reusing solves stay bit-identical to the
// allocating path.
func choleskyInto(l, a *Dense) error {
	n := a.Rows()
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return nil
}

// SolveCholesky solves A·x = b for SPD A via the Cholesky factorization.
func SolveCholesky(a *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return solveCholeskyFactor(l, b)
}

func solveCholeskyFactor(l *Dense, b []float64) ([]float64, error) {
	n := l.Rows()
	if len(b) != n {
		return nil, ErrShape
	}
	x := make([]float64, n)
	y := make([]float64, n)
	choleskySolveFactorInto(x, y, l, b)
	return x, nil
}

// choleskySolveFactorInto solves L·Lᵀ·x = b given the factor l, writing the
// solution into x and using y (same length) as forward-substitution scratch.
// x and b may not alias; y may alias neither.
func choleskySolveFactorInto(x, y []float64, l *Dense, b []float64) {
	n := l.Rows()
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// Inverse returns A⁻¹ computed column-by-column via SolveLU. Intended for
// the small (3×3, 4×4) systems that appear in LION; not for large matrices.
func Inverse(a *Dense) (*Dense, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, ErrShape
	}
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := SolveLU(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Det returns the determinant of a square matrix via LU decomposition.
func Det(a *Dense) (float64, error) {
	n := a.Rows()
	if a.Cols() != n {
		return 0, ErrShape
	}
	lu := a.Clone()
	det := 1.0
	for k := 0; k < n; k++ {
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				maxAbs, p = a, i
			}
		}
		if maxAbs == 0 {
			return 0, nil
		}
		if p != k {
			swapRows(lu, p, k)
			det = -det
		}
		piv := lu.At(k, k)
		det *= piv
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / piv
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
		}
	}
	return det, nil
}

// ConditionEstimate returns a cheap estimate of the 1-norm condition number
// of a square matrix, κ₁(A) ≈ ‖A‖₁·‖A⁻¹‖₁. It returns +Inf for singular
// matrices. The estimate computes the exact inverse, which is fine for the
// tiny matrices LION solves.
func ConditionEstimate(a *Dense) float64 {
	inv, err := Inverse(a)
	if err != nil {
		return math.Inf(1)
	}
	return norm1(a) * norm1(inv)
}

func norm1(a *Dense) float64 {
	var mx float64
	for j := 0; j < a.Cols(); j++ {
		var s float64
		for i := 0; i < a.Rows(); i++ {
			s += math.Abs(a.At(i, j))
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}
