package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/wire"
)

// fakeShard is an httptest stand-in for one liond: it decodes wire-codec
// ingest bodies in arrival order and serves a scriptable /readyz.
type fakeShard struct {
	srv *httptest.Server

	mu      sync.Mutex
	samples []dataset.TaggedSample
	exts    []*wire.Ext                 // trace extension per ingest POST (nil = plain)
	ready   func(w http.ResponseWriter) // nil = 200 ok
	block   chan struct{}               // non-nil: ingest waits on it
}

func newFakeShard(t *testing.T) *fakeShard {
	t.Helper()
	f := &fakeShard{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/samples", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		block := f.block
		f.mu.Unlock()
		if block != nil {
			<-block
		}
		var samples []dataset.TaggedSample
		var ext *wire.Ext
		var err error
		if r.Header.Get("Content-Type") == wire.ContentType {
			samples, ext, err = wire.DecodeIngestExt(r.Body)
		} else {
			samples, err = dataset.NDJSON{}.Decode(r.Body)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.samples = append(f.samples, samples...)
		f.exts = append(f.exts, ext)
		f.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		ready := f.ready
		f.mu.Unlock()
		if ready != nil {
			ready(w)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /v1/tags/{id}/estimate", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"tag":%q,"served_by":"fake"}`, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/tags", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		seen := map[string]bool{}
		var tags []string
		for _, s := range f.samples {
			if !seen[s.Tag] {
				seen[s.Tag] = true
				tags = append(tags, s.Tag)
			}
		}
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string][]string{"tags": tags})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeShard) setReady(fn func(w http.ResponseWriter)) {
	f.mu.Lock()
	f.ready = fn
	f.mu.Unlock()
}

func (f *fakeShard) got() []dataset.TaggedSample {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]dataset.TaggedSample(nil), f.samples...)
}

// encodeWire renders a batch as wire frames for HTTP ingest tests.
func encodeWire(t *testing.T, samples []dataset.TaggedSample) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := (wire.Codec{}).Encode(&buf, samples); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func sampleFor(tag string, i int) dataset.TaggedSample {
	return dataset.TaggedSample{
		Tag: tag, TimeS: float64(i) * 0.01,
		X: 0.1, Y: 0.2, Z: 0.3, Phase: float64(i%628) / 100, RSSI: -55,
		Segment: i / 10, Channel: i % 16,
	}
}

// noHealth builds a 2-shard router with health checking disabled so tests
// control shard state directly.
func noHealth(t *testing.T, a, b *fakeShard, tune func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Shards: []ShardConfig{
			{ID: "s1", URL: a.srv.URL},
			{ID: "s2", URL: b.srv.URL},
		},
		HealthInterval: Duration(-1),
	}
	if tune != nil {
		tune(&cfg)
	}
	rt, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRouterPartitionsByOwnerInOrder(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := noHealth(t, a, b, nil)

	var batch []dataset.TaggedSample
	for i := 0; i < 200; i++ {
		batch = append(batch, sampleFor(fmt.Sprintf("TAG-%02d", i%7), i))
	}
	res, err := rt.Ingest(batch)
	if err != nil || res.Accepted != len(batch) || res.Rejected != 0 {
		t.Fatalf("Ingest = %+v, %v", res, err)
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Every sample must land on its ring owner, preserving per-tag order.
	want := map[string][]dataset.TaggedSample{}
	for _, ts := range batch {
		want[rt.Owner(ts.Tag)] = append(want[rt.Owner(ts.Tag)], ts)
	}
	for id, f := range map[string]*fakeShard{"s1": a, "s2": b} {
		got := f.got()
		if len(got) != len(want[id]) {
			t.Fatalf("shard %s got %d samples, want %d", id, len(got), len(want[id]))
		}
		for i := range got {
			if got[i] != want[id][i] {
				t.Fatalf("shard %s sample %d = %+v, want %+v", id, i, got[i], want[id][i])
			}
		}
	}
	if got := rt.forwarded.Value(); got != uint64(len(batch)) {
		t.Errorf("forwarded counter = %d, want %d", got, len(batch))
	}
}

func TestRouterQueueFullRejects(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	block := make(chan struct{})
	a.block = block
	b.block = block
	rt := noHealth(t, a, b, func(c *Config) { c.QueueSamples = 50 })
	defer func() {
		close(block)
		rt.Close(context.Background())
	}()

	// One hot tag pins every sample to a single shard, so the second batch
	// must overflow that shard's 50-sample bound while its POST is blocked.
	batch := make([]dataset.TaggedSample, 40)
	for i := range batch {
		batch[i] = sampleFor("HOT", i)
	}
	if res, err := rt.Ingest(batch); err != nil || res.Rejected != 0 {
		t.Fatalf("first batch: %+v, %v", res, err)
	}
	res, err := rt.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != len(batch) {
		t.Fatalf("second batch should be rejected whole: %+v", res)
	}
	if rt.rejQueueFull.Value() != uint64(res.Rejected) {
		t.Errorf("queue_full counter = %d, want %d", rt.rejQueueFull.Value(), res.Rejected)
	}
}

func TestRouterDrainingShardIsQueryOnly(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := noHealth(t, a, b, nil)
	defer rt.Close(context.Background())

	rt.shards[0].setState(ShardDraining)
	batch := make([]dataset.TaggedSample, 60)
	for i := range batch {
		batch[i] = sampleFor(fmt.Sprintf("T%d", i), i)
	}
	toS1 := 0
	for _, ts := range batch {
		if rt.Owner(ts.Tag) == "s1" {
			toS1++
		}
	}
	if toS1 == 0 || toS1 == len(batch) {
		t.Fatalf("degenerate split: %d/%d to s1", toS1, len(batch))
	}
	res, err := rt.Ingest(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != toS1 || res.Accepted != len(batch)-toS1 {
		t.Errorf("res = %+v, want rejected=%d", res, toS1)
	}
	if rt.rejDraining.Value() != uint64(toS1) {
		t.Errorf("draining counter = %d, want %d", rt.rejDraining.Value(), toS1)
	}

	// Queries to the draining shard still work.
	var s1Tag string
	for i := 0; ; i++ {
		if tag := fmt.Sprintf("T%d", i); rt.Owner(tag) == "s1" {
			s1Tag = tag
			break
		}
	}
	rec := httptest.NewRecorder()
	rt.Routes().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tags/"+s1Tag+"/estimate", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("estimate on draining shard: status %d, body %s", rec.Code, rec.Body)
	}
}

func TestRouterEjectedShardFailsFast(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := noHealth(t, a, b, nil)
	defer rt.Close(context.Background())

	rt.shards[1].setState(ShardEjected)
	var s2Tag string
	for i := 0; ; i++ {
		if tag := fmt.Sprintf("T%d", i); rt.Owner(tag) == "s2" {
			s2Tag = tag
			break
		}
	}
	res, err := rt.Ingest([]dataset.TaggedSample{sampleFor(s2Tag, 0)})
	if err != nil || res.Rejected != 1 {
		t.Errorf("ingest to ejected shard: %+v, %v", res, err)
	}
	if rt.rejDown.Value() != 1 {
		t.Errorf("down counter = %d, want 1", rt.rejDown.Value())
	}
	rec := httptest.NewRecorder()
	rt.Routes().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tags/"+s2Tag+"/estimate", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("estimate on ejected shard: status %d", rec.Code)
	}
}

func TestRouterHealthEjectionAndReadmission(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	b.setReady(func(w http.ResponseWriter) { http.Error(w, "boom", http.StatusInternalServerError) })
	cfg := Config{
		Shards: []ShardConfig{
			{ID: "s1", URL: a.srv.URL},
			{ID: "s2", URL: b.srv.URL},
		},
		HealthInterval: Duration(10 * time.Millisecond),
		FailThreshold:  2,
	}
	rt, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close(context.Background())

	waitState := func(id string, want ShardState) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for _, st := range rt.Status() {
				if st.ID == id && st.State == want.String() {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("shard %s never reached %v: %+v", id, want, rt.Status())
	}

	waitState("s2", ShardEjected)
	if rt.ejections.Value() != 1 {
		t.Errorf("ejections = %d, want 1", rt.ejections.Value())
	}
	// Shard recovers: router must readmit it.
	b.setReady(nil)
	waitState("s2", ShardHealthy)
	if rt.readmissions.Value() != 1 {
		t.Errorf("readmissions = %d, want 1", rt.readmissions.Value())
	}
	// Shard reports draining: router parks it query-only without ejecting.
	a.setReady(func(w http.ResponseWriter) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	})
	waitState("s1", ShardDraining)
	if rt.ejections.Value() != 1 {
		t.Errorf("draining shard was ejected: ejections = %d", rt.ejections.Value())
	}
	// Critical alert is treated the same as draining.
	a.setReady(func(w http.ResponseWriter) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "critical-alert"})
	})
	time.Sleep(30 * time.Millisecond)
	for _, st := range rt.Status() {
		if st.ID == "s1" && st.State != ShardDraining.String() {
			t.Errorf("critical-alert shard state = %s, want draining", st.State)
		}
	}
}

func TestRouterHTTPIngestAndFanOut(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := noHealth(t, a, b, nil)
	mux := rt.Routes()

	var batch []dataset.TaggedSample
	for i := 0; i < 50; i++ {
		batch = append(batch, sampleFor(fmt.Sprintf("TAG-%d", i%5), i))
	}
	body := encodeWire(t, batch)
	req := httptest.NewRequest("POST", "/v1/samples", body)
	req.Header.Set("Content-Type", wire.ContentType)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	var res IngestResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || res.Accepted != len(batch) {
		t.Fatalf("ingest result %s, err %v", rec.Body, err)
	}
	if err := rt.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// /v1/tags merges both shards' tag sets.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/tags", nil))
	var tags struct {
		Tags []string `json:"tags"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tags); err != nil {
		t.Fatal(err)
	}
	if len(tags.Tags) != 5 {
		t.Errorf("merged tags = %v, want 5 ids", tags.Tags)
	}

	// /v1/cluster reports both shards.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/cluster", nil))
	var cl struct {
		Shards []ShardStatus `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cl); err != nil || len(cl.Shards) != 2 {
		t.Errorf("cluster doc %s, err %v", rec.Body, err)
	}
}

func TestRouterIngestAfterClose(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := noHealth(t, a, b, nil)
	if err := rt.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Ingest([]dataset.TaggedSample{sampleFor("T", 0)}); err != ErrClosed {
		t.Errorf("Ingest after close: %v, want ErrClosed", err)
	}
	rec := httptest.NewRecorder()
	rt.Routes().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz after close: %d", rec.Code)
	}
}
