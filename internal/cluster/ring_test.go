package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"s3", "s1", "s2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"s1", "s2", "s3"}
	idsB := []string{"s3", "s1", "s2"}
	for i := 0; i < 1000; i++ {
		tag := fmt.Sprintf("TAG-%04d", i)
		if ids[a.Owner(tag)] != idsB[b.Owner(tag)] {
			t.Fatalf("tag %s owner differs by construction order", tag)
		}
	}
}

func TestRingBalance(t *testing.T) {
	ring, err := NewRing([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const tags = 9000
	for i := 0; i < tags; i++ {
		counts[ring.Owner(fmt.Sprintf("EPC-%06d", i))]++
	}
	for i, c := range counts {
		// Expect ~3000 each; 128 vnodes keeps the skew well under 2x.
		if c < tags/6 || c > tags/2 {
			t.Errorf("shard %d owns %d of %d tags — ring badly unbalanced: %v", i, c, tags, counts)
		}
	}
}

func TestRingStableUnderLookup(t *testing.T) {
	ring, err := NewRing([]string{"alpha", "beta"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tag := fmt.Sprintf("T%d", i)
		first := ring.Owner(tag)
		for j := 0; j < 5; j++ {
			if ring.Owner(tag) != first {
				t.Fatalf("tag %s owner not stable", tag)
			}
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty shard id accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard id accepted")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	ring, err := NewRing([]string{"s1", "s2", "s3", "s4", "s5"}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring.Owner("E280689400005012")
	}
}
