package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/wire"
)

// maxIngestBody bounds one router ingest request, mirroring liond.
const maxIngestBody = 64 << 20

// Routes builds the router's HTTP mux:
//
//	POST /v1/samples               ingest (NDJSON or binary wire frames)
//	GET  /v1/tags                  union of tag ids across live shards
//	GET  /v1/tags/{id}/estimate    proxied to the owning shard
//	GET  /v1/alerts                per-shard alert documents
//	GET  /v1/cluster               shard states and queue depths
//	GET  /v1/slo                   per-shard SLO documents + cluster rollup
//	GET  /v1/trace/{id}            assembled cross-process pipeline trace
//	GET  /debug/pipespans          router span log as NDJSON (?trace=<hex>)
//	GET  /healthz                  router liveness
//	GET  /readyz                   503 until at least one shard takes ingest
//	GET  /metrics                  lion_cluster_* Prometheus exposition
func (rt *Router) Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/samples", rt.handleIngest)
	mux.HandleFunc("GET /v1/tags", rt.handleTags)
	mux.HandleFunc("GET /v1/tags/{id}/estimate", rt.handleEstimate)
	mux.HandleFunc("GET /v1/alerts", rt.handleAlerts)
	mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	mux.HandleFunc("GET /v1/slo", rt.handleSLO)
	mux.HandleFunc("GET /v1/trace/{id}", rt.handleTrace)
	mux.HandleFunc("GET /debug/pipespans", rt.handlePipeSpans)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /readyz", rt.handleReady)
	mux.Handle("GET /metrics", rt.reg.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ingestCodecs is the negotiation list: NDJSON first so it is the fallback
// for curl-style clients, wire matched exactly by content type.
var ingestCodecs = []dataset.Codec{dataset.NDJSON{}, wire.Codec{}}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	recv := time.Now()
	// Full request wall time at the router: the server-side twin of a load
	// generator's client-observed ingest latency against a cluster.
	defer func() { rt.ingestReq.Observe(time.Since(recv).Seconds()) }()
	codec := dataset.SelectCodec(ingestCodecs, r.Header.Get("Content-Type"))
	samples, err := codec.Decode(http.MaxBytesReader(w, r.Body, maxIngestBody))
	decodeTook := time.Since(recv)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tc := rt.sampler.Next()
	rt.ingestDecode.ObserveExemplar(decodeTook.Seconds(), tc)
	if tc.Sampled && rt.spans != nil {
		rt.spans.Record(tc, "ingest_decode", "", recv, decodeTook)
	}
	res, err := rt.IngestTraced(samples, tc, recv)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	tag := r.PathValue("id")
	s := rt.shards[rt.ring.Owner(tag)]
	if s.State() == ShardEjected {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("shard %s owning tag %q is ejected", s.id, tag))
		return
	}
	rt.proxy(w, s, "/v1/tags/"+tag+"/estimate")
}

// proxy forwards one GET to a shard and relays status, content type, and
// body verbatim.
func (rt *Router) proxy(w http.ResponseWriter, s *shard, path string) {
	resp, err := rt.client.Get(s.base + path)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", s.id, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// fanOut issues one GET per non-ejected shard concurrently and returns each
// shard's body (or error) keyed by shard id.
func (rt *Router) fanOut(path string) map[string]json.RawMessage {
	out := make(map[string]json.RawMessage, len(rt.shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range rt.shards {
		if s.State() == ShardEjected {
			out[s.id] = errJSON(fmt.Errorf("shard ejected"))
			continue
		}
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			body, err := rt.get(s, path)
			if err != nil {
				body = errJSON(err)
			}
			mu.Lock()
			out[s.id] = body
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	return out
}

// get fetches one shard endpoint, insisting on a 200 JSON answer.
func (rt *Router) get(s *shard, path string) (json.RawMessage, error) {
	resp, err := rt.client.Get(s.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxIngestBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("shard returned non-JSON body")
	}
	return body, nil
}

func errJSON(err error) json.RawMessage {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return b
}

func (rt *Router) handleTags(w http.ResponseWriter, r *http.Request) {
	merged := make(map[string]bool)
	for _, body := range rt.fanOut("/v1/tags") {
		var doc struct {
			Tags []string `json:"tags"`
		}
		if json.Unmarshal(body, &doc) == nil {
			for _, t := range doc.Tags {
				merged[t] = true
			}
		}
	}
	tags := make([]string, 0, len(merged))
	for t := range merged {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	writeJSON(w, http.StatusOK, map[string][]string{"tags": tags})
}

func (rt *Router) handleAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"shards": rt.fanOut("/v1/alerts")})
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"shards": rt.Status()})
}

// sloQuantiles is one latency dimension of a shard's /v1/slo document and of
// the router's cluster rollup.
type sloQuantiles struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Count uint64  `json:"count"`
}

// handleSLO fans /v1/slo out to the live shards and rolls the answers up into
// a cluster-wide worst-case view: for every latency dimension the rollup
// quantile is the maximum across shards (an SLO holds for the cluster only if
// it holds for its slowest shard) and counts are summed exactly. Shards whose
// window for a dimension is still empty (count 0) contribute the dimension's
// presence but not its quantiles, so an idle shard never drags a rollup
// toward zero and a dimension no shard has observed still appears with an
// explicit zero count. alert_latency_seconds rolls up as the maximum reported
// by any shard. The router's own ingest request histogram is merged into
// ingest_request_seconds the same worst-case way: a cluster's ingest SLO is
// bounded by whichever hop — router or slowest shard — is slower.
func (rt *Router) handleSLO(w http.ResponseWriter, r *http.Request) {
	shards := rt.fanOut("/v1/slo")
	agg := make(map[string]*sloQuantiles)
	merge := func(key string, q sloQuantiles) {
		a := agg[key]
		if a == nil {
			a = &sloQuantiles{}
			agg[key] = a
		}
		if q.Count == 0 {
			return
		}
		a.P50 = math.Max(a.P50, q.P50)
		a.P95 = math.Max(a.P95, q.P95)
		a.P99 = math.Max(a.P99, q.P99)
		a.Count += q.Count
	}
	var alertMax float64
	alertSeen := false
	for _, body := range shards {
		var doc map[string]json.RawMessage
		if json.Unmarshal(body, &doc) != nil {
			continue
		}
		for key, raw := range doc {
			if key == "alert_latency_seconds" {
				var v float64
				if json.Unmarshal(raw, &v) == nil && (!alertSeen || v > alertMax) {
					alertMax, alertSeen = v, true
				}
				continue
			}
			var q sloQuantiles
			if json.Unmarshal(raw, &q) != nil {
				continue
			}
			merge(key, q)
		}
	}
	merge("ingest_request_seconds", rt.ownIngestQuantiles())
	cluster := make(map[string]any, len(agg)+1)
	for key, q := range agg {
		cluster[key] = q
	}
	if alertSeen {
		cluster["alert_latency_seconds"] = alertMax
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": shards, "cluster": cluster})
}

// ownIngestQuantiles summarises the router's own POST /v1/samples wall time
// in the /v1/slo dimension shape. An untouched histogram reports the explicit
// zero document.
func (rt *Router) ownIngestQuantiles() sloQuantiles {
	q := sloQuantiles{Count: rt.ingestReq.Count()}
	if q.Count > 0 {
		// Histogram.Quantile takes a percentile in [0, 100].
		if v, ok := rt.ingestReq.Quantile(50); ok {
			q.P50 = v
		}
		if v, ok := rt.ingestReq.Quantile(95); ok {
			q.P95 = v
		}
		if v, ok := rt.ingestReq.Quantile(99); ok {
			q.P99 = v
		}
	}
	return q
}

// handleTrace assembles one cross-process pipeline trace: the router's own
// spans plus every live shard's spans for the id, merged and sorted on the
// shared absolute-time axis (span start). The id is the 16-digit hex trace id
// returned by POST /v1/samples.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := obs.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace id: %w", err))
		return
	}
	var spans []obs.PipeSpan
	if rt.spans != nil {
		spans = rt.spans.Spans(id)
	}
	for _, body := range rt.fanOutRaw("/debug/pipespans?trace=" + obs.TraceIDString(id)) {
		sc := bufio.NewScanner(bytes.NewReader(body))
		for sc.Scan() {
			var sp obs.PipeSpan
			if json.Unmarshal(sc.Bytes(), &sp) == nil && sp.TraceID == id {
				spans = append(spans, sp)
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Service < spans[j].Service
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"trace_id": obs.TraceIDString(id),
		"spans":    spans,
	})
}

// fanOutRaw issues one GET per non-ejected shard and returns each 200 body
// verbatim (no JSON requirement — pipespan exports are NDJSON). Failed shards
// are simply omitted: trace assembly is best-effort by design.
func (rt *Router) fanOutRaw(path string) map[string][]byte {
	out := make(map[string][]byte, len(rt.shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range rt.shards {
		if s.State() == ShardEjected {
			continue
		}
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			resp, err := rt.client.Get(s.base + path)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, maxIngestBody))
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			mu.Lock()
			out[s.id] = body
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	return out
}

// handlePipeSpans exports the router's own span log as NDJSON, optionally
// filtered to one trace with ?trace=<hex id>.
func (rt *Router) handlePipeSpans(w http.ResponseWriter, r *http.Request) {
	var id uint64
	if q := r.URL.Query().Get("trace"); q != "" {
		var err error
		if id, err = obs.ParseTraceID(q); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad trace id: %w", err))
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if rt.spans != nil {
		rt.spans.WriteNDJSON(w, id)
	}
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if rt.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if !rt.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no-healthy-shards"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
