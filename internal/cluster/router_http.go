package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/wire"
)

// maxIngestBody bounds one router ingest request, mirroring liond.
const maxIngestBody = 64 << 20

// Routes builds the router's HTTP mux:
//
//	POST /v1/samples               ingest (NDJSON or binary wire frames)
//	GET  /v1/tags                  union of tag ids across live shards
//	GET  /v1/tags/{id}/estimate    proxied to the owning shard
//	GET  /v1/alerts                per-shard alert documents
//	GET  /v1/cluster               shard states and queue depths
//	GET  /healthz                  router liveness
//	GET  /readyz                   503 until at least one shard takes ingest
//	GET  /metrics                  lion_cluster_* Prometheus exposition
func (rt *Router) Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/samples", rt.handleIngest)
	mux.HandleFunc("GET /v1/tags", rt.handleTags)
	mux.HandleFunc("GET /v1/tags/{id}/estimate", rt.handleEstimate)
	mux.HandleFunc("GET /v1/alerts", rt.handleAlerts)
	mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /readyz", rt.handleReady)
	mux.Handle("GET /metrics", rt.reg.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ingestCodecs is the negotiation list: NDJSON first so it is the fallback
// for curl-style clients, wire matched exactly by content type.
var ingestCodecs = []dataset.Codec{dataset.NDJSON{}, wire.Codec{}}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	codec := dataset.SelectCodec(ingestCodecs, r.Header.Get("Content-Type"))
	samples, err := codec.Decode(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := rt.Ingest(samples)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	tag := r.PathValue("id")
	s := rt.shards[rt.ring.Owner(tag)]
	if s.State() == ShardEjected {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("shard %s owning tag %q is ejected", s.id, tag))
		return
	}
	rt.proxy(w, s, "/v1/tags/"+tag+"/estimate")
}

// proxy forwards one GET to a shard and relays status, content type, and
// body verbatim.
func (rt *Router) proxy(w http.ResponseWriter, s *shard, path string) {
	resp, err := rt.client.Get(s.base + path)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", s.id, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// fanOut issues one GET per non-ejected shard concurrently and returns each
// shard's body (or error) keyed by shard id.
func (rt *Router) fanOut(path string) map[string]json.RawMessage {
	out := make(map[string]json.RawMessage, len(rt.shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range rt.shards {
		if s.State() == ShardEjected {
			out[s.id] = errJSON(fmt.Errorf("shard ejected"))
			continue
		}
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			body, err := rt.get(s, path)
			if err != nil {
				body = errJSON(err)
			}
			mu.Lock()
			out[s.id] = body
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	return out
}

// get fetches one shard endpoint, insisting on a 200 JSON answer.
func (rt *Router) get(s *shard, path string) (json.RawMessage, error) {
	resp, err := rt.client.Get(s.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxIngestBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	if !json.Valid(body) {
		return nil, fmt.Errorf("shard returned non-JSON body")
	}
	return body, nil
}

func errJSON(err error) json.RawMessage {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return b
}

func (rt *Router) handleTags(w http.ResponseWriter, r *http.Request) {
	merged := make(map[string]bool)
	for _, body := range rt.fanOut("/v1/tags") {
		var doc struct {
			Tags []string `json:"tags"`
		}
		if json.Unmarshal(body, &doc) == nil {
			for _, t := range doc.Tags {
				merged[t] = true
			}
		}
	}
	tags := make([]string, 0, len(merged))
	for t := range merged {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	writeJSON(w, http.StatusOK, map[string][]string{"tags": tags})
}

func (rt *Router) handleAlerts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"shards": rt.fanOut("/v1/alerts")})
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"shards": rt.Status()})
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if rt.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if !rt.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no-healthy-shards"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
