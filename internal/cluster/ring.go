package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the number of virtual nodes per shard on the hash
// ring. 128 points per shard keeps the expected load imbalance across a
// handful of shards within a few percent while the ring stays small enough
// to search in a handful of cache lines.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring mapping tag ids to shard
// indices. Every shard contributes `replicas` virtual points; a tag is owned
// by the shard of the first point clockwise of the tag's hash. Lookups are
// allocation-free.
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for the given shard ids. Ids must be non-empty
// and unique; replicas <= 0 selects DefaultReplicas.
func NewRing(shardIDs []string, replicas int) (*Ring, error) {
	if len(shardIDs) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(shardIDs))
	points := make([]ringPoint, 0, len(shardIDs)*replicas)
	for i, id := range shardIDs {
		if id == "" {
			return nil, fmt.Errorf("cluster: shard %d has an empty id", i)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", id)
		}
		seen[id] = true
		for rep := 0; rep < replicas; rep++ {
			// The vnode key is "id#rep"; the separator keeps ids like "s1"
			// and "s11" from colliding on concatenation boundaries.
			h := fnv1a(id + "#" + strconv.Itoa(rep))
			points = append(points, ringPoint{hash: h, shard: i})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		// Deterministic tie-break so ring construction is order-independent.
		return points[a].shard < points[b].shard
	})
	return &Ring{points: points}, nil
}

// Owner returns the index of the shard owning the tag.
func (r *Ring) Owner(tag string) int {
	h := fnv1a(tag)
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].shard
}

// fnv1a is the 64-bit FNV-1a hash with an avalanche finalizer, inlined so
// Owner never allocates. Raw FNV-1a leaves the high bits of short sequential
// keys ("TAG-0001", "TAG-0002", ...) dominated by their shared prefix — the
// final byte is multiplied by the 40-bit prime only once — which clusters
// ring positions badly; the murmur3-style finalizer spreads every input bit
// across the full word.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
