package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/obs"
)

// drain polls until the shard received at least n samples or the deadline
// passes — forwards happen on background goroutines.
func drain(t *testing.T, f *fakeShard, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(f.got()) >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("shard received %d of %d samples before deadline", len(f.got()), n)
}

// TestRouterTracedForwardCarriesExt: a sampled batch bound for a shard that
// negotiated FlagTrace arrives in a flagged wire frame carrying the trace id
// and router receive clock; an unsampled batch arrives plain; and a sampled
// batch for a shard WITHOUT the capability also arrives plain — old decoders
// are never handed flagged frames.
func TestRouterTracedForwardCarriesExt(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := noHealth(t, a, b, nil)
	defer rt.Close(context.Background())
	rt.spans = obs.NewSpanLog("lionroute", 64)
	rt.shards[0].traceOK.Store(true) // s1 negotiated, s2 did not

	// One tag per shard so each group lands deterministically.
	var s1Tag, s2Tag string
	for i := 0; s1Tag == "" || s2Tag == ""; i++ {
		tag := fmt.Sprintf("T%d", i)
		if rt.Owner(tag) == "s1" {
			s1Tag = tag
		} else {
			s2Tag = tag
		}
	}

	tc := obs.TraceContext{ID: 0xabc123, Sampled: true}
	recv := time.Now().Add(-10 * time.Millisecond)
	res, err := rt.IngestTraced([]dataset.TaggedSample{sampleFor(s1Tag, 0), sampleFor(s2Tag, 1)}, tc, recv)
	if err != nil || res.Accepted != 2 {
		t.Fatalf("ingest: %+v err %v", res, err)
	}
	if res.TraceID != "0000000000abc123" {
		t.Fatalf("result trace id = %q", res.TraceID)
	}
	drain(t, a, 1)
	drain(t, b, 1)

	a.mu.Lock()
	extA := a.exts[0]
	a.mu.Unlock()
	if extA == nil || extA.TraceID != tc.ID || extA.RouterRecvUnixNano != recv.UnixNano() {
		t.Errorf("capable shard ext = %+v, want id %x recv %d", extA, tc.ID, recv.UnixNano())
	}
	b.mu.Lock()
	extB := b.exts[0]
	b.mu.Unlock()
	if extB != nil {
		t.Errorf("non-negotiated shard received flagged frame: %+v", extB)
	}

	// Unsampled ingest arrives plain even on the capable shard.
	if _, err := rt.Ingest([]dataset.TaggedSample{sampleFor(s1Tag, 2)}); err != nil {
		t.Fatal(err)
	}
	drain(t, a, 2)
	a.mu.Lock()
	extPlain := a.exts[len(a.exts)-1]
	a.mu.Unlock()
	if extPlain != nil {
		t.Errorf("unsampled batch carried ext %+v", extPlain)
	}

	// The router recorded queue-wait and forward spans for the trace, and
	// /v1/trace/{id} serves them sorted by start.
	spans := rt.spans.Spans(tc.ID)
	stages := map[string]bool{}
	for _, sp := range spans {
		stages[sp.Stage] = true
		if sp.Service != "lionroute" {
			t.Errorf("span service = %q", sp.Service)
		}
	}
	if !stages["queue_wait"] || !stages["forward"] {
		t.Fatalf("router spans missing stages: %+v", spans)
	}
	rec := httptest.NewRecorder()
	rt.Routes().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/trace/0000000000abc123", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/trace status %d: %s", rec.Code, rec.Body.String())
	}
	var doc struct {
		TraceID string         `json:"trace_id"`
		Spans   []obs.PipeSpan `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != "0000000000abc123" || len(doc.Spans) < 2 {
		t.Fatalf("trace doc = %+v", doc)
	}
	for i := 1; i < len(doc.Spans); i++ {
		if doc.Spans[i].Start < doc.Spans[i-1].Start {
			t.Errorf("spans not sorted by start: %+v", doc.Spans)
		}
	}

	// /debug/pipespans exports the same spans as NDJSON.
	rec = httptest.NewRecorder()
	rt.Routes().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pipespans?trace=0000000000abc123", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"queue_wait"`) {
		t.Errorf("/debug/pipespans: %d %q", rec.Code, rec.Body.String())
	}

	// The forward-latency exemplar surfaces the trace id on /metrics.
	rec = httptest.NewRecorder()
	rt.Routes().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `trace_id="0000000000abc123"`) {
		t.Error("metrics exposition lacks forward exemplar")
	}
}

// TestRouterReadyzNegotiatesWireTrace: the health probe learns (and unlearns)
// the shard's FlagTrace capability from the "wire_trace" field of /readyz.
func TestRouterReadyzNegotiatesWireTrace(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := noHealth(t, a, b, nil)
	defer rt.Close(context.Background())

	a.setReady(func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ok","wire_trace":true}`)
	})
	rt.probeShard(rt.shards[0])
	rt.probeShard(rt.shards[1]) // default fake readyz: no wire_trace field
	if !rt.shards[0].traceOK.Load() {
		t.Error("advertising shard not marked trace-capable")
	}
	if rt.shards[1].traceOK.Load() {
		t.Error("non-advertising shard marked trace-capable")
	}

	// A rollback (field gone) revokes the capability on the next probe.
	a.setReady(func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	rt.probeShard(rt.shards[0])
	if rt.shards[0].traceOK.Load() {
		t.Error("capability not revoked after readyz stopped advertising")
	}
}

// TestRouterUntracedZeroAllocs is the cluster layer's piece of the zero-alloc
// constraint: the per-batch tracing decision — sampler step, extension
// choice, exemplar observes, span no-ops — allocates nothing when the batch
// is unsampled, even on a trace-capable shard.
func TestRouterUntracedZeroAllocs(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	rt := noHealth(t, a, b, nil)
	defer rt.Close(context.Background())
	rt.spans = obs.NewSpanLog("lionroute", 64)
	s := rt.shards[0]
	s.traceOK.Store(true)

	sampler := obs.NewSampler(1<<30, 3) // samples once, then never again
	sampler.Next()
	recv := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		tc := sampler.Next()
		if tc.Sampled {
			t.Fatal("sampler unexpectedly sampled")
		}
		if ext := rt.traceExt(s, tc, recv); ext != nil {
			t.Fatal("unsampled batch got a wire extension")
		}
		rt.ingestDecode.ObserveExemplar(1e-4, tc)
		rt.queueWait.ObserveExemplar(1e-3, tc)
		if tc.Sampled && rt.spans != nil {
			rt.spans.Record(tc, "queue_wait", s.id, recv, 0)
		}
	})
	if allocs != 0 {
		t.Errorf("untraced decision path allocated %.1f times per run, want 0", allocs)
	}
}

// TestRouterSLORollup: /v1/slo merges shard SLO documents into a worst-case
// cluster view — max per quantile, summed counts, max alert latency.
func TestRouterSLORollup(t *testing.T) {
	newSrv := func(doc string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/slo", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, doc)
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	s1 := newSrv(`{"staleness_seconds":{"p50":0.01,"p95":0.05,"p99":0.2,"count":100},"alert_latency_seconds":1.5}`)
	s2 := newSrv(`{"staleness_seconds":{"p50":0.02,"p95":0.04,"p99":0.1,"count":50}}`)
	rt, err := New(Config{
		Shards: []ShardConfig{
			{ID: "s1", URL: s1.URL},
			{ID: "s2", URL: s2.URL},
		},
		HealthInterval: Duration(-1),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close(context.Background())

	rec := httptest.NewRecorder()
	rt.Routes().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/slo status %d", rec.Code)
	}
	var doc struct {
		Shards  map[string]json.RawMessage `json:"shards"`
		Cluster struct {
			Staleness    sloQuantiles `json:"staleness_seconds"`
			AlertLatency float64      `json:"alert_latency_seconds"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Shards) != 2 {
		t.Fatalf("shards = %v", doc.Shards)
	}
	c := doc.Cluster.Staleness
	if c.P50 != 0.02 || c.P95 != 0.05 || c.P99 != 0.2 || c.Count != 150 {
		t.Errorf("cluster staleness rollup = %+v", c)
	}
	if doc.Cluster.AlertLatency != 1.5 {
		t.Errorf("cluster alert latency = %g", doc.Cluster.AlertLatency)
	}
}
