// Package cluster shards the streaming localizer horizontally: a Router
// consistent-hashes tag ids onto a static ring of liond shards, forwards
// ingest batches over persistent connections with per-shard bounded queues
// and backpressure, and fans estimate/alert queries to the owning shards.
//
// The design invariant is per-tag session affinity: every sample of a tag
// lands on exactly one shard, in arrival order, so a shard's per-tag sliding
// window — and therefore its estimates — are bit-identical to what a single
// liond ingesting the same stream would produce. That is why the ring is
// static (membership comes from a config file, not from failure detection):
// re-hashing a live tag onto another shard would split its window across
// processes and silently change its estimates. Health checking instead
// gates traffic — an unreachable shard is ejected (its samples are rejected
// with a counter, its queries fail fast) and readmitted when its /readyz
// recovers; a draining or alert-degraded shard stays query-only.
//
// See DESIGN.md section 12 for the wire protocol, the ring parameters, the
// backpressure semantics, and the failure-mode table.
package cluster
