package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sloShard serves a fixed /v1/slo document and accepts forwarded ingest.
func sloShard(t *testing.T, doc string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, doc)
	})
	mux.HandleFunc("POST /v1/samples", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"accepted":1,"dropped":0}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func sloRouter(t *testing.T, shards ...*httptest.Server) *Router {
	t.Helper()
	cfgs := make([]ShardConfig, len(shards))
	for i, s := range shards {
		cfgs[i] = ShardConfig{ID: fmt.Sprintf("s%d", i+1), URL: s.URL}
	}
	rt, err := New(Config{Shards: cfgs, HealthInterval: Duration(-1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close(context.Background()) })
	return rt
}

func clusterSLO(t *testing.T, rt *Router) map[string]json.RawMessage {
	t.Helper()
	rec := httptest.NewRecorder()
	rt.Routes().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/slo status %d", rec.Code)
	}
	var doc struct {
		Cluster map[string]json.RawMessage `json:"cluster"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.Cluster
}

func dim(t *testing.T, doc map[string]json.RawMessage, key string) sloQuantiles {
	t.Helper()
	raw, ok := doc[key]
	if !ok {
		t.Fatalf("cluster rollup missing %s (have %v)", key, keysOf(doc))
	}
	var q sloQuantiles
	if err := json.Unmarshal(raw, &q); err != nil {
		t.Fatalf("%s does not parse: %v", key, err)
	}
	return q
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestRouterSLORollupShardAsymmetry: with one fast busy shard and one slow
// quiet shard, the cluster quantiles must come from the slow shard (an SLO
// holds for the cluster only if its slowest shard holds it) while the counts
// stay the exact sum — the fast shard's volume must not dilute the worst
// case, and the slow shard's low volume must not hide it.
func TestRouterSLORollupShardAsymmetry(t *testing.T) {
	fastBusy := sloShard(t, `{
		"staleness_seconds":{"p50":0.001,"p95":0.002,"p99":0.005,"count":100000},
		"queue_wait_seconds":{"p50":0.0001,"p95":0.0002,"p99":0.0004,"count":100000}}`)
	slowQuiet := sloShard(t, `{
		"staleness_seconds":{"p50":0.5,"p95":2.0,"p99":4.0,"count":37},
		"queue_wait_seconds":{"p50":0.1,"p95":0.3,"p99":0.9,"count":37}}`)
	rt := sloRouter(t, fastBusy, slowQuiet)
	doc := clusterSLO(t, rt)

	st := dim(t, doc, "staleness_seconds")
	if st.P50 != 0.5 || st.P95 != 2.0 || st.P99 != 4.0 {
		t.Errorf("staleness rollup %+v: slow shard must dominate every quantile", st)
	}
	if st.Count != 100037 {
		t.Errorf("staleness count %d, want the exact sum 100037", st.Count)
	}
	qw := dim(t, doc, "queue_wait_seconds")
	if qw.P99 != 0.9 || qw.Count != 100037 {
		t.Errorf("queue_wait rollup %+v", qw)
	}
}

// TestRouterSLORollupExplicitZeroCounts: shards reporting a dimension with an
// explicit zero count (the post-fix idle form) keep the dimension visible in
// the rollup as an explicit zero, and an idle shard's zeros never drag a busy
// shard's quantiles down.
func TestRouterSLORollupExplicitZeroCounts(t *testing.T) {
	idle := sloShard(t, `{
		"staleness_seconds":{"p50":0,"p95":0,"p99":0,"count":0},
		"solve_latency_seconds":{"p50":0,"p95":0,"p99":0,"count":0}}`)
	busy := sloShard(t, `{
		"staleness_seconds":{"p50":0.2,"p95":0.4,"p99":0.8,"count":500},
		"solve_latency_seconds":{"p50":0,"p95":0,"p99":0,"count":0}}`)
	rt := sloRouter(t, idle, busy)
	doc := clusterSLO(t, rt)

	st := dim(t, doc, "staleness_seconds")
	if st.P99 != 0.8 || st.Count != 500 {
		t.Errorf("idle shard corrupted the staleness rollup: %+v", st)
	}
	// A dimension every shard is idle on still appears, explicitly zero.
	sl := dim(t, doc, "solve_latency_seconds")
	if sl.Count != 0 || sl.P50 != 0 || sl.P99 != 0 {
		t.Errorf("all-idle dimension = %+v, want explicit zeros", sl)
	}
}

// TestRouterSLOOwnIngestRequest: the router merges its own POST /v1/samples
// wall-time histogram into the cluster's ingest_request_seconds — present as
// an explicit zero before any ingest, populated after.
func TestRouterSLOOwnIngestRequest(t *testing.T) {
	shard := sloShard(t, `{}`)
	rt := sloRouter(t, shard)

	if q := dim(t, clusterSLO(t, rt), "ingest_request_seconds"); q.Count != 0 {
		t.Fatalf("pre-ingest ingest_request_seconds = %+v, want zero count", q)
	}

	for i := 0; i < 5; i++ {
		body := strings.NewReader(`{"tag":"T1","time_s":1,"x_m":0,"y_m":0,"z_m":0,"phase_rad":1}`)
		req := httptest.NewRequest("POST", "/v1/samples", body)
		rec := httptest.NewRecorder()
		rt.Routes().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
		}
	}
	q := dim(t, clusterSLO(t, rt), "ingest_request_seconds")
	if q.Count != 5 {
		t.Fatalf("ingest_request_seconds count %d after 5 posts", q.Count)
	}
	if q.P99 < q.P50 || q.P99 <= 0 {
		t.Fatalf("ingest_request_seconds quantiles %+v", q)
	}
}
