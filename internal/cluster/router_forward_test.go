package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
)

// stallShard is a shard stand-in for forward-path failure tests: every
// ingest POST counts an attempt, then either fails fast or blocks until
// release is closed.
type stallShard struct {
	srv      *httptest.Server
	attempts atomic.Int32
	first    chan struct{} // closed when the first attempt arrives
	release  chan struct{} // non-nil: handler blocks on it before answering
}

func newStallShard(fail bool, block bool) *stallShard {
	f := &stallShard{first: make(chan struct{})}
	if block {
		f.release = make(chan struct{})
	}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.attempts.Add(1) == 1 {
			close(f.first)
		}
		if f.release != nil {
			<-f.release
		}
		if fail {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	return f
}

func oneShardRouter(t *testing.T, url string, opts Options, tune func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Shards:         []ShardConfig{{ID: "s1", URL: url}},
		HealthInterval: Duration(-1),
	}
	if tune != nil {
		tune(&cfg)
	}
	rt, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func waitFirstAttempt(t *testing.T, f *stallShard) {
	t.Helper()
	select {
	case <-f.first:
	case <-time.After(5 * time.Second):
		t.Fatal("shard never saw the forward POST")
	}
}

func waitCounter(t *testing.T, c interface{ Value() uint64 }, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Value() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s stuck at %d, want %d — forwarder never gave up", what, c.Value(), want)
}

// TestForwardShutdownDoesOneFinalAttempt: post's documented shutdown
// behaviour is one immediate final try, then give up. The pre-fix loop fell
// straight through the closed stop channel and burned the entire retry
// schedule with zero backoff, so a failing shard saw all ForwardAttempts
// POSTs during drain instead of one.
func TestForwardShutdownDoesOneFinalAttempt(t *testing.T) {
	f := newStallShard(true, false)
	defer f.srv.Close()
	rt := oneShardRouter(t, f.srv.URL, Options{}, func(c *Config) {
		c.ForwardAttempts = 10
	})

	res, err := rt.Ingest([]dataset.TaggedSample{sampleFor("drain-tag", 0)})
	if err != nil || res.Accepted != 1 {
		t.Fatalf("ingest: res=%+v err=%v", res, err)
	}
	waitFirstAttempt(t, f)

	// Close lands during the first retry backoff: the batch gets its one
	// immediate final attempt and is then dropped, so drain stays prompt.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Exactly the in-flight attempt plus one final; ≤3 tolerates one full
	// backoff elapsing before Close's stop signal lands. Pre-fix this is
	// the whole 10-attempt schedule.
	if got := f.attempts.Load(); got < 2 || got > 3 {
		t.Errorf("shard saw %d attempts across shutdown, want 2 (in-flight + one final)", got)
	}
	if got := rt.forwardErrors.Value(); got != 1 {
		t.Errorf("forward errors = %d, want 1 dropped sample", got)
	}
}

// TestForwardAttemptTimeoutUnsticksStalledShard: each forward attempt must
// carry its own deadline even when the caller supplies an http.Client with
// no timeout. Pre-fix, postOnce built a context-less request, so a shard
// that accepted the connection and never answered wedged the forwarder —
// and the batch behind it — forever.
func TestForwardAttemptTimeoutUnsticksStalledShard(t *testing.T) {
	f := newStallShard(false, true)
	defer f.srv.Close()
	defer close(f.release)
	rt := oneShardRouter(t, f.srv.URL, Options{Client: &http.Client{}}, func(c *Config) {
		c.ForwardTimeout = Duration(100 * time.Millisecond)
		c.ForwardAttempts = 2
	})

	if _, err := rt.Ingest([]dataset.TaggedSample{sampleFor("stall-tag", 0)}); err != nil {
		t.Fatal(err)
	}
	waitFirstAttempt(t, f)
	waitCounter(t, rt.forwardErrors, 1, "lion_cluster_forward_errors_total")
	if got := f.attempts.Load(); got != 2 {
		t.Errorf("stalled shard saw %d attempts, want the configured 2", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Close(ctx); err != nil {
		t.Fatalf("close after timeout drops: %v", err)
	}
}

// TestCloseDeadlineAbortsInFlightForward: when Close's context expires the
// router cancels its lifetime context, aborting the in-flight POST so the
// forwarder exits instead of leaking, blocked on a stalled shard for the
// rest of the process.
func TestCloseDeadlineAbortsInFlightForward(t *testing.T) {
	f := newStallShard(false, true)
	defer f.srv.Close()
	defer close(f.release)
	rt := oneShardRouter(t, f.srv.URL, Options{Client: &http.Client{}}, func(c *Config) {
		c.ForwardTimeout = Duration(30 * time.Second)
		c.ForwardAttempts = 1
	})

	if _, err := rt.Ingest([]dataset.TaggedSample{sampleFor("stall-tag", 0)}); err != nil {
		t.Fatal(err)
	}
	waitFirstAttempt(t, f)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := rt.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close against a stalled shard: err = %v, want deadline exceeded", err)
	}
	// The cancelled request must surface as a dropped batch promptly —
	// pre-fix the Do call hangs forever and this counter never moves.
	waitCounter(t, rt.forwardErrors, 1, "lion_cluster_forward_errors_total")
}
