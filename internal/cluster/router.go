package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rfid-lion/lion/internal/dataset"
	"github.com/rfid-lion/lion/internal/obs"
	"github.com/rfid-lion/lion/internal/wire"
)

// ShardState is a shard's traffic eligibility as seen by the router.
type ShardState int32

const (
	// ShardHealthy receives ingest and queries.
	ShardHealthy ShardState = iota
	// ShardDraining is alive but leaving (or degraded by a critical alert):
	// queries are still served from it, new samples are rejected.
	ShardDraining
	// ShardEjected is unreachable: ingest is rejected and queries fail fast
	// until /readyz recovers and the health checker readmits it.
	ShardEjected
)

// String names the state for logs and status documents.
func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardDraining:
		return "draining"
	case ShardEjected:
		return "ejected"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("cluster: router closed")

// Options tune a Router beyond the cluster config.
type Options struct {
	// Registry receives the lion_cluster_* metrics; nil means a private one.
	Registry *obs.Registry
	// Codec encodes forwarded batches; nil means the binary wire codec.
	// Shards must accept the chosen codec (liond takes wire unless started
	// with -wire=false, and always takes NDJSON).
	Codec dataset.Codec
	// Client performs forward and query requests; nil builds one with
	// keep-alive connections per shard. Health probes always use a separate
	// short-timeout client.
	Client *http.Client
	// Logger receives state transitions; nil silences them.
	Logger *obs.Logger
	// Sampler decides which ingest batches get a pipeline trace; nil never
	// samples, keeping the ingest path trace-free at zero cost.
	Sampler *obs.Sampler
	// Spans receives the router's pipeline spans (ingest decode, queue
	// wait, forward) for sampled batches; nil disables span retention.
	Spans *obs.SpanLog
}

// Router owns the ring, the per-shard forward queues, and the health
// checker. Create with New, serve its Routes, stop with Close.
type Router struct {
	cfg    Config
	ring   *Ring
	shards []*shard
	reg    *obs.Registry
	codec  dataset.Codec
	client *http.Client
	probe  *http.Client
	log    *obs.Logger

	sampler *obs.Sampler
	spans   *obs.SpanLog

	forwarded      *obs.Counter
	forwardErrors  *obs.Counter
	forwardLatency *obs.Histogram
	ingestDecode   *obs.Histogram
	ingestReq      *obs.Histogram
	queueWait      *obs.Histogram
	rejQueueFull   *obs.Counter
	rejDraining    *obs.Counter
	rejDown        *obs.Counter
	ejections      *obs.Counter
	readmissions   *obs.Counter

	closed atomic.Bool
	stop   chan struct{}
	// ctx spans the router's lifetime and parents every forward request;
	// cancel aborts in-flight POSTs when a Close deadline expires, so a
	// stalled shard cannot wedge a forwarder past the caller's patience.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// queuedBatch is one owner-partitioned sample group waiting on a shard's
// forward queue, carrying the clocks and trace context the observability
// layer needs: enqueued feeds the queue-wait histogram, recv is the router
// receive wall clock (the cluster staleness zero point, forwarded on the
// wire), and tc is the pipeline trace decision for this batch.
type queuedBatch struct {
	samples  []dataset.TaggedSample
	enqueued time.Time
	recv     time.Time
	tc       obs.TraceContext
}

// shard is the router-side state of one liond instance.
type shard struct {
	id   string
	base string // URL base without trailing slash

	queue  chan queuedBatch
	queued atomic.Int64 // samples currently queued (gauge backing)
	state  atomic.Int32 // ShardState
	// traceOK records whether the shard's /readyz advertised FlagTrace
	// support ("wire_trace": true). Flagged frames are only sent when it
	// did — a decoder predating the extension never sees one.
	traceOK atomic.Bool

	failures int // consecutive probe failures; health goroutine only

	queueGauge *obs.Gauge
	stateGauge *obs.Gauge
}

func (s *shard) State() ShardState { return ShardState(s.state.Load()) }

func (s *shard) setState(st ShardState) {
	s.state.Store(int32(st))
	s.stateGauge.Set(float64(st))
}

// New validates the config, builds the ring, registers metrics, and starts
// the per-shard forwarders plus (unless disabled) the health checker.
func New(cfg Config, opts Options) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ids := make([]string, len(cfg.Shards))
	for i, s := range cfg.Shards {
		ids[i] = s.ID
	}
	ring, err := NewRing(ids, cfg.replicas())
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	codec := opts.Codec
	if codec == nil {
		codec = wire.Codec{}
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.forwardTimeout()}
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		cfg:     cfg,
		ring:    ring,
		reg:     reg,
		codec:   codec,
		client:  client,
		probe:   &http.Client{Timeout: cfg.healthTimeout()},
		log:     opts.Logger,
		sampler: opts.Sampler,
		spans:   opts.Spans,
		stop:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,

		forwarded: reg.Counter("lion_cluster_forwarded_samples_total",
			"Samples successfully forwarded to a shard."),
		forwardErrors: reg.Counter("lion_cluster_forward_errors_total",
			"Samples dropped because a forward POST kept failing."),
		forwardLatency: reg.Histogram("lion_cluster_forward_latency_seconds",
			"Wall time of one successful forward POST.", obs.DefBuckets),
		ingestDecode: reg.Histogram("lion_cluster_ingest_decode_seconds",
			"Wall time to decode one router ingest request body.", obs.DefBuckets),
		ingestReq: reg.Histogram("lion_cluster_http_ingest_seconds",
			"Wall time of one POST /v1/samples at the router, receive to response.", obs.DefBuckets),
		queueWait: reg.Histogram("lion_cluster_queue_wait_seconds",
			"Wait of a batch on a shard's forward queue before its POST began.", obs.DefBuckets),
		ejections: reg.Counter("lion_cluster_ejections_total",
			"Shards ejected after consecutive failed health probes."),
		readmissions: reg.Counter("lion_cluster_readmissions_total",
			"Ejected shards readmitted after /readyz recovered."),
	}
	rejected := reg.CounterVec("lion_cluster_rejected_total",
		"Samples rejected at the router, by reason.", "reason")
	rt.rejQueueFull = rejected.With("queue_full")
	rt.rejDraining = rejected.With("draining")
	rt.rejDown = rejected.With("down")
	reg.GaugeFunc("lion_cluster_shards", "Shards in the configured ring.", func() float64 {
		return float64(len(cfg.Shards))
	})
	queueGauge := reg.GaugeVec("lion_cluster_queue_samples",
		"Samples waiting in a shard's forward queue.", "shard")
	stateGauge := reg.GaugeVec("lion_cluster_shard_state",
		"Shard state: 0 healthy, 1 draining (query-only), 2 ejected.", "shard")

	// Queue capacity counts batches; the sample bound is enforced on the
	// atomic counter, so the channel just needs room for a realistic number
	// of distinct pending batches.
	depth := max(16, cfg.queueSamples()/64)
	for _, sc := range cfg.Shards {
		s := &shard{
			id:    sc.ID,
			base:  strings.TrimRight(sc.URL, "/"),
			queue: make(chan queuedBatch, depth),
			// metriclint:bounded shard ids come from the static cluster config
			queueGauge: queueGauge.With(sc.ID),
			// metriclint:bounded shard ids come from the static cluster config
			stateGauge: stateGauge.With(sc.ID),
		}
		s.setState(ShardHealthy)
		rt.shards = append(rt.shards, s)
	}
	for _, s := range rt.shards {
		rt.wg.Add(1)
		go rt.forwardLoop(s)
	}
	if iv := cfg.healthInterval(); iv > 0 {
		rt.wg.Add(1)
		go rt.healthLoop(iv)
	}
	return rt, nil
}

// Registry returns the metrics registry backing the router's counters.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Owner returns the shard id owning the tag — exposed for tests and the
// cluster status document.
func (rt *Router) Owner(tag string) string { return rt.shards[rt.ring.Owner(tag)].id }

// IngestResult reports what happened to one decoded ingest batch. TraceID is
// the hex pipeline trace id when the batch was sampled, empty otherwise —
// clients follow it through GET /v1/trace/{id}.
type IngestResult struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected"`
	TraceID  string `json:"trace_id,omitempty"`
}

// Ingest partitions samples by ring owner and enqueues each group on its
// shard's forward queue. Samples for draining or ejected shards, and groups
// that would overflow a shard's bounded queue, are rejected whole and
// counted — the router never blocks an ingest request on a slow shard.
func (rt *Router) Ingest(samples []dataset.TaggedSample) (IngestResult, error) {
	return rt.IngestTraced(samples, obs.TraceContext{}, time.Time{})
}

// IngestTraced is Ingest with a pipeline trace decision attached: tc and the
// receive wall clock recv travel with every enqueued group and, for sampled
// batches bound for trace-capable shards, onto the wire. A zero recv means
// now. An unsampled tc adds nothing to the hot path.
func (rt *Router) IngestTraced(samples []dataset.TaggedSample, tc obs.TraceContext, recv time.Time) (IngestResult, error) {
	var res IngestResult
	if rt.closed.Load() {
		return res, ErrClosed
	}
	if tc.Sampled {
		res.TraceID = obs.TraceIDString(tc.ID)
	}
	if len(samples) == 0 {
		return res, nil
	}
	now := time.Now()
	if recv.IsZero() {
		recv = now
	}
	groups := make([][]dataset.TaggedSample, len(rt.shards))
	for _, ts := range samples {
		owner := rt.ring.Owner(ts.Tag)
		groups[owner] = append(groups[owner], ts)
	}
	for i, group := range groups {
		if len(group) == 0 {
			continue
		}
		s := rt.shards[i]
		n := len(group)
		switch s.State() {
		case ShardDraining:
			rt.rejDraining.Add(uint64(n))
			res.Rejected += n
			continue
		case ShardEjected:
			rt.rejDown.Add(uint64(n))
			res.Rejected += n
			continue
		}
		if int(s.queued.Load())+n > rt.cfg.queueSamples() {
			rt.rejQueueFull.Add(uint64(n))
			res.Rejected += n
			continue
		}
		select {
		case s.queue <- queuedBatch{samples: group, enqueued: now, recv: recv, tc: tc}:
			s.queueGauge.Set(float64(s.queued.Add(int64(n))))
			res.Accepted += n
		default:
			rt.rejQueueFull.Add(uint64(n))
			res.Rejected += n
		}
	}
	return res, nil
}

// forwardLoop drains one shard's queue, coalescing adjacent batches up to
// BatchSamples per POST. It exits when the queue is closed and empty. A
// coalesced POST inherits the first sampled trace context among its batches
// (and that batch's receive clock); queue wait is measured from the oldest
// batch's enqueue to the start of the POST.
func (rt *Router) forwardLoop(s *shard) {
	defer rt.wg.Done()
	limit := rt.cfg.batchSamples()
	var batch []dataset.TaggedSample
	for first := range s.queue {
		batch = append(batch[:0], first.samples...)
		tc, recv := first.tc, first.recv
	coalesce:
		for len(batch) < limit {
			select {
			case next, ok := <-s.queue:
				if !ok {
					break coalesce
				}
				batch = append(batch, next.samples...)
				if !tc.Sampled && next.tc.Sampled {
					tc, recv = next.tc, next.recv
				}
			default:
				break coalesce
			}
		}
		wait := time.Since(first.enqueued)
		rt.queueWait.ObserveExemplar(wait.Seconds(), tc)
		if tc.Sampled && rt.spans != nil {
			rt.spans.Record(tc, "queue_wait", s.id, first.enqueued, wait)
		}
		rt.post(s, batch, tc, recv)
		s.queueGauge.Set(float64(s.queued.Add(int64(-len(batch)))))
	}
}

// post forwards one batch, retrying a few times before dropping it. Order
// within the shard is preserved regardless: post returns only when the batch
// succeeded or was abandoned, and batches after a dropped one still arrive
// after it would have. Sampled batches bound for a shard that negotiated
// FlagTrace carry the trace id and receive clock in a wire extension.
func (rt *Router) post(s *shard, batch []dataset.TaggedSample, tc obs.TraceContext, recv time.Time) {
	var buf bytes.Buffer
	var err error
	if ext := rt.traceExt(s, tc, recv); ext != nil {
		err = wire.NewWriter(&buf, 0).WriteBatchExt(batch, ext)
	} else {
		err = rt.codec.Encode(&buf, batch)
	}
	if err != nil {
		// Unencodable batches cannot happen for validated ingest samples;
		// count and drop rather than wedging the queue.
		rt.forwardErrors.Add(uint64(len(batch)))
		rt.logf("forward encode failed", "shard", s.id, "err", err.Error())
		return
	}
	body := buf.Bytes()
	attempts := rt.cfg.forwardAttempts()
	final := false
	for attempt := 1; ; attempt++ {
		begin := time.Now()
		err := rt.postOnce(s, body)
		if err == nil {
			took := time.Since(begin)
			rt.forwardLatency.ObserveExemplar(took.Seconds(), tc)
			if tc.Sampled && rt.spans != nil {
				rt.spans.Record(tc, "forward", s.id, begin, took)
			}
			rt.forwarded.Add(uint64(len(batch)))
			return
		}
		if final || attempt >= attempts {
			rt.forwardErrors.Add(uint64(len(batch)))
			rt.logf("forward dropped batch", "shard", s.id, "samples", len(batch), "err", err.Error())
			return
		}
		select {
		case <-time.After(time.Duration(attempt) * 50 * time.Millisecond):
		case <-rt.stop:
			// Shutdown: skip the backoff for one immediate final try, then
			// give up — draining must not sit out the full retry schedule.
			final = true
		}
	}
}

// traceExt returns the wire extension to attach to one forward POST, or nil
// when the batch is unsampled, the shard has not negotiated FlagTrace
// support, or the forward codec is not the binary wire codec (the extension
// is a wire-frame feature; NDJSON forwards stay trace-free). The nil path is
// allocation-free — it is taken for every batch in an untraced steady state.
func (rt *Router) traceExt(s *shard, tc obs.TraceContext, recv time.Time) *wire.Ext {
	if !tc.Sampled || !s.traceOK.Load() {
		return nil
	}
	if _, ok := rt.codec.(wire.Codec); !ok {
		return nil
	}
	return &wire.Ext{TraceID: tc.ID, RouterRecvUnixNano: recv.UnixNano()}
}

// postOnce performs a single forward POST. The request carries a context
// bounded by both the per-attempt forward timeout and the router lifetime,
// so a stalled shard cannot hold a forwarder beyond either — even when the
// caller supplied an http.Client without its own timeout.
func (rt *Router) postOnce(s *shard, body []byte) error {
	ctx, cancel := context.WithTimeout(rt.ctx, rt.cfg.forwardTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/v1/samples", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", rt.codec.ContentType())
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %s: status %d", s.id, resp.StatusCode)
	}
	return nil
}

// healthLoop probes every shard's /readyz on a fixed period and drives the
// ejection/readmission state machine.
func (rt *Router) healthLoop(interval time.Duration) {
	defer rt.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			for _, s := range rt.shards {
				rt.probeShard(s)
			}
		}
	}
}

// probeShard classifies one /readyz answer:
//
//	200                      -> healthy (readmits an ejected shard)
//	503 status "draining"    -> draining: alive, query-only, never ejected
//	503 status "critical-alert" -> treated as draining: the shard's solves
//	                            are suspect but its estimates stay queryable
//	anything else            -> failure; FailThreshold consecutive ones eject
func (rt *Router) probeShard(s *shard) {
	ok, status, wireTrace := rt.readyz(s)
	s.traceOK.Store(wireTrace)
	prev := s.State()
	switch {
	case ok:
		s.failures = 0
		if prev != ShardHealthy {
			if prev == ShardEjected {
				rt.readmissions.Inc()
			}
			s.setState(ShardHealthy)
			rt.logf("shard healthy", "shard", s.id, "was", prev.String())
		}
	case status == "draining" || status == "critical-alert":
		s.failures = 0
		if prev != ShardDraining {
			if prev == ShardEjected {
				rt.readmissions.Inc()
			}
			s.setState(ShardDraining)
			rt.logf("shard query-only", "shard", s.id, "status", status)
		}
	default:
		s.failures++
		if s.failures >= rt.cfg.failThreshold() && prev != ShardEjected {
			s.setState(ShardEjected)
			rt.ejections.Inc()
			rt.logf("shard ejected", "shard", s.id, "failures", s.failures)
		}
	}
}

// readyz performs one probe. ok means HTTP 200; otherwise status carries the
// shard's self-reported state ("draining", "critical-alert") when the body
// was parseable, or "" for transport errors and foreign answers. wireTrace
// reports the shard's FlagTrace capability ("wire_trace": true in the body) —
// absent on older shards, which therefore never receive flagged frames.
func (rt *Router) readyz(s *shard) (ok bool, status string, wireTrace bool) {
	resp, err := rt.probe.Get(s.base + "/readyz")
	if err != nil {
		return false, "", false
	}
	defer resp.Body.Close()
	var body struct {
		Status    string `json:"status"`
		WireTrace bool   `json:"wire_trace"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
	if resp.StatusCode == http.StatusOK {
		return true, body.Status, body.WireTrace
	}
	return false, body.Status, body.WireTrace
}

// ShardStatus is one shard's row in the cluster status document.
type ShardStatus struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	State   string `json:"state"`
	Queued  int64  `json:"queued_samples"`
	MaxQ    int    `json:"queue_capacity_samples"`
	Healthy bool   `json:"accepts_ingest"`
}

// Status snapshots every shard for /v1/cluster and tests.
func (rt *Router) Status() []ShardStatus {
	out := make([]ShardStatus, len(rt.shards))
	for i, s := range rt.shards {
		st := s.State()
		out[i] = ShardStatus{
			ID:      s.id,
			URL:     s.base,
			State:   st.String(),
			Queued:  s.queued.Load(),
			MaxQ:    rt.cfg.queueSamples(),
			Healthy: st == ShardHealthy,
		}
	}
	return out
}

// Ready reports whether at least one shard accepts ingest.
func (rt *Router) Ready() bool {
	for _, s := range rt.shards {
		if s.State() == ShardHealthy {
			return true
		}
	}
	return false
}

// Close stops ingest, halts the health checker, drains every forward queue
// to its shard, and waits for the forwarders (or ctx). Queued samples are
// flushed, not dropped: Close returning nil means every accepted sample was
// handed to its shard (or counted as a forward error).
func (rt *Router) Close(ctx context.Context) error {
	if rt.closed.Swap(true) {
		return ErrClosed
	}
	close(rt.stop)
	for _, s := range rt.shards {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		rt.cancel()
		return nil
	case <-ctx.Done():
		// The caller is out of patience: abort in-flight forwards so the
		// forwarders exit promptly instead of hanging on a stalled shard.
		rt.cancel()
		return ctx.Err()
	}
}

// logf emits one structured log line when a logger is configured.
func (rt *Router) logf(msg string, kv ...any) {
	if rt.log != nil {
		rt.log.Info(msg, kv...)
	}
}
